// Microbenchmarks (google-benchmark) for the engine substrates: expression
// construction, interval propagation, solver queries (including the
// propagation-only and slicing ablations), concrete interpretation and
// symbolic execution throughput, and monitor logging overhead at different
// sampling rates.
//
// On top of the google-benchmark suite, a custom main runs a fork-heavy
// solver workload in two configurations — the full query-optimization
// pipeline (slicing + model reuse + cache) vs. the monolithic baseline —
// checks their verdicts agree query-by-query, and writes the comparison to
// a machine-readable JSON file (CI's bench-smoke gate):
//
//   bench_micro_engine --quick                 # solver suite only
//   bench_micro_engine --json out.json         # default BENCH_solver.json
//   bench_micro_engine --min-speedup 1.0       # exit 1 below this ratio
//
// Any other flags fall through to google-benchmark (skipped under --quick).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "apps/workload.h"
#include "monitor/monitor.h"
#include "solver/solver.h"
#include "statsym/engine.h"
#include "support/stopwatch.h"

using namespace statsym;

namespace {

void BM_ExprConstruction(benchmark::State& state) {
  for (auto _ : state) {
    solver::ExprPool pool;
    const auto x = pool.var_expr(pool.new_var("x", 0, 255));
    solver::ExprId e = pool.constant(0);
    for (int i = 0; i < 64; ++i) {
      e = pool.add(e, pool.eq(x, pool.constant(i)));
    }
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_ExprConstruction);

void BM_HashConsingHitPath(benchmark::State& state) {
  solver::ExprPool pool;
  const auto x = pool.var_expr(pool.new_var("x", 0, 255));
  for (auto _ : state) {
    // All constructions after the first are intern-table hits.
    benchmark::DoNotOptimize(pool.lt(x, pool.constant(57)));
  }
}
BENCHMARK(BM_HashConsingHitPath);

void BM_Propagation(benchmark::State& state) {
  solver::ExprPool pool;
  std::vector<solver::ExprId> cs;
  for (int i = 0; i < state.range(0); ++i) {
    const auto v = pool.new_var("b" + std::to_string(i), 0, 255);
    cs.push_back(pool.ne(pool.var_expr(v), pool.constant(0)));
  }
  for (auto _ : state) {
    solver::DomainMap d;
    bool ok = true;
    for (auto c : cs) ok = ok && solver::propagate(pool, c, true, d);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Propagation)->Arg(64)->Arg(512);

void BM_SolverQuery(benchmark::State& state) {
  const bool propagation_only = state.range(0) == 1;
  solver::ExprPool pool;
  solver::SolverOptions opts;
  opts.propagation_only = propagation_only;
  solver::Solver solver(pool, opts);
  const auto x = pool.var_expr(pool.new_var("x", 0, 255));
  const auto y = pool.var_expr(pool.new_var("y", 0, 255));
  const std::vector<solver::ExprId> cs{
      pool.lt(x, y), pool.eq(pool.add(x, y), pool.constant(300)),
      pool.ne(x, pool.constant(100))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.check(cs).sat);
  }
}
BENCHMARK(BM_SolverQuery)->Arg(0)->Arg(1);

void BM_SolverSlicing(benchmark::State& state) {
  // Many independent variable groups in one conjunction: slicing decides
  // each group once and caches it; the monolithic baseline re-solves the
  // full 3G-variable query. Arg: 1 = slicing+model reuse, 0 = baseline.
  const bool optimized = state.range(0) == 1;
  solver::ExprPool pool;
  solver::SolverOptions opts;
  opts.enable_slicing = optimized;
  opts.enable_model_reuse = optimized;
  solver::Solver solver(pool, opts);
  std::vector<solver::ExprId> cs;
  std::vector<solver::ExprId> knobs;
  for (int g = 0; g < 8; ++g) {
    const auto a = pool.var_expr(pool.new_var("a" + std::to_string(g), 0, 255));
    const auto b = pool.var_expr(pool.new_var("b" + std::to_string(g), 0, 255));
    const auto c = pool.var_expr(pool.new_var("c" + std::to_string(g), 0, 255));
    cs.push_back(pool.lt(a, b));
    cs.push_back(pool.eq(pool.add(pool.add(a, b), c), pool.constant(300 + g)));
    knobs.push_back(c);
  }
  int i = 0;
  for (auto _ : state) {
    // Each iteration perturbs one group, like a fork appending a branch
    // condition; the other seven groups are unchanged.
    std::vector<solver::ExprId> q = cs;
    q.push_back(pool.ne(knobs[i % 8], pool.constant(i % 97)));
    ++i;
    benchmark::DoNotOptimize(solver.check(q).sat);
  }
}
BENCHMARK(BM_SolverSlicing)->Arg(0)->Arg(1);

void BM_SolverCountingRepair(benchmark::State& state) {
  solver::ExprPool pool;
  solver::Solver solver(pool, {});
  solver::ExprId sum = pool.constant(0);
  for (int i = 0; i < 64; ++i) {
    const auto v = pool.new_var("b" + std::to_string(i), 1, 255);
    sum = pool.add(sum, pool.eq(pool.var_expr(v), pool.constant(46)));
  }
  const std::vector<solver::ExprId> cs{pool.le(pool.constant(20), sum)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.check(cs).sat);
  }
}
BENCHMARK(BM_SolverCountingRepair);

void BM_ConcreteRun(benchmark::State& state) {
  const apps::AppSpec app =
      apps::make_app(state.range(0) == 0 ? "polymorph" : "thttpd");
  Rng rng(7);
  for (auto _ : state) {
    Rng r = rng.split();
    interp::Interpreter it(app.module, app.workload(r));
    benchmark::DoNotOptimize(it.run().steps);
  }
}
BENCHMARK(BM_ConcreteRun)->Arg(0)->Arg(1);

void BM_MonitoredRun(benchmark::State& state) {
  const apps::AppSpec app = apps::make_polymorph();
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(7);
  for (auto _ : state) {
    Rng r = rng.split();
    auto run = monitor::run_monitored(app.module, app.workload(r),
                                      {.sampling_rate = rate}, rng.split(), 0);
    benchmark::DoNotOptimize(run.log.records.size());
  }
}
BENCHMARK(BM_MonitoredRun)->Arg(0)->Arg(30)->Arg(100);

void BM_CollectVars(benchmark::State& state) {
  // Variable collection runs on every solver query (slicing + canonical
  // orderings); the small-buffer fast path must keep shallow expressions —
  // the overwhelmingly common case — allocation-free past the output vector.
  solver::ExprPool pool;
  const auto x = pool.var_expr(pool.new_var("x", 0, 255));
  const auto y = pool.var_expr(pool.new_var("y", 0, 255));
  solver::ExprId deep = pool.constant(0);
  for (int i = 0; i < 48; ++i) {
    deep = pool.add(deep, pool.mul(x, pool.add(y, pool.constant(i))));
  }
  std::vector<solver::VarId> out;
  for (auto _ : state) {
    out.clear();
    pool.collect_vars(deep, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_CollectVars);

void BM_CowForkState(benchmark::State& state) {
  // Cost of one copy-on-write fork (clone_state's substrate): freeze the
  // parent's tails, share every prefix, account the shallow/eager byte gap.
  // The eager_clone_bytes term deliberately includes approx_bytes() — the
  // accounting walk is part of the real per-fork cost being tracked.
  solver::ExprPool pool;
  symexec::State parent;
  const auto obj = parent.mem.alloc(512, "buf");
  for (std::int64_t i = 0; i < 511; ++i) {
    const auto v = pool.new_var("buf[" + std::to_string(i) + "]", 0, 255);
    parent.mem.write(obj, i, symexec::SymByte::symbolic(pool.var_expr(v)));
    if (i < 64) {
      parent.pc.add(pool, pool.ne(pool.var_expr(v), pool.constant(0)));
    }
  }
  parent.stack.emplace_back();
  parent.stack.back().regs.assign(16, symexec::SymValue::concrete_int(0));
  for (auto _ : state) {
    symexec::State child;
    parent.fork_into(child);
    benchmark::DoNotOptimize(parent.approx_bytes());
    benchmark::DoNotOptimize(child.shallow_clone_bytes());
  }
}
BENCHMARK(BM_CowForkState);

void BM_SymbolicThroughput(benchmark::State& state) {
  // Instructions per second through the symbolic executor on the fig2
  // program (bounded exploration).
  const apps::AppSpec app = apps::make_fig2();
  for (auto _ : state) {
    symexec::ExecOptions opts;
    opts.stop_at_first_fault = true;
    symexec::SymExecutor ex(app.module, app.sym_spec, opts);
    const auto r = ex.run();
    benchmark::DoNotOptimize(r.stats.instructions);
  }
}
BENCHMARK(BM_SymbolicThroughput);

void BM_GuidedPolymorphEndToEnd(benchmark::State& state) {
  // Full pipeline cost on the flagship target (log collection + statistics
  // + guided search).
  const apps::AppSpec app = apps::make_polymorph();
  for (auto _ : state) {
    core::EngineOptions o;
    o.monitor.sampling_rate = 0.3;
    o.candidate_timeout_seconds = 60.0;
    o.seed = 5;
    core::StatSymEngine engine(app.module, app.sym_spec, o);
    engine.collect_logs(app.workload);
    benchmark::DoNotOptimize(engine.run().found);
  }
}
BENCHMARK(BM_GuidedPolymorphEndToEnd)->Unit(benchmark::kMillisecond);

// --- fork-heavy solver comparison (BENCH_solver.json) ----------------------

struct SuiteRun {
  double seconds{0.0};
  solver::SolverStats stats;
  std::vector<solver::Sat> verdicts;
};

// A fork-heavy path-constraint workload: G independent variable groups form
// the standing path condition; every "fork" appends one fresh branch
// condition on a single group and re-queries the full conjunction — the
// access pattern symbolic execution produces at every branch. The optimized
// configuration slices the query so only the touched group is re-decided;
// the baseline re-solves the whole 3G-variable conjunction every time.
SuiteRun run_fork_suite(bool optimized, std::size_t forks) {
  constexpr int kGroups = 8;
  solver::ExprPool pool;
  solver::SolverOptions opts;
  opts.enable_slicing = optimized;
  opts.enable_model_reuse = optimized;
  solver::Solver solver(pool, opts);

  std::vector<solver::ExprId> base;
  std::vector<solver::ExprId> knobs;  // per-group perturbation variable
  for (int g = 0; g < kGroups; ++g) {
    const auto a = pool.var_expr(pool.new_var("a" + std::to_string(g), 0, 255));
    const auto b = pool.var_expr(pool.new_var("b" + std::to_string(g), 0, 255));
    const auto c = pool.var_expr(pool.new_var("c" + std::to_string(g), 0, 255));
    base.push_back(pool.lt(a, b));
    base.push_back(
        pool.eq(pool.add(pool.add(a, b), c), pool.constant(300 + g)));
    knobs.push_back(c);
  }

  SuiteRun run;
  run.verdicts.reserve(forks);
  Stopwatch sw;
  for (std::size_t i = 0; i < forks; ++i) {
    std::vector<solver::ExprId> q = base;
    const int g = static_cast<int>(i % kGroups);
    // Cycle through 97 distinct branch conditions per group so the whole
    // query rarely repeats verbatim (defeating whole-query caching), while
    // the untouched groups repeat on every fork (rewarding slicing).
    q.push_back(pool.ne(knobs[g], pool.constant(static_cast<int>(i % 97))));
    run.verdicts.push_back(solver.check(q).sat);
  }
  run.seconds = sw.elapsed_seconds();
  run.stats = solver.stats();
  return run;
}

void write_json(const std::string& path, std::size_t forks,
                const SuiteRun& opt, const SuiteRun& base, double speedup) {
  auto config = [](std::ostream& os, const char* name, const SuiteRun& r,
                   std::size_t forks) {
    const double qps =
        r.seconds > 0.0 ? static_cast<double>(forks) / r.seconds : 0.0;
    os << "    \"" << name << "\": {\n"
       << "      \"seconds\": " << r.seconds << ",\n"
       << "      \"queries_per_second\": " << qps << ",\n"
       << "      \"slices\": " << r.stats.slices << ",\n"
       << "      \"cache_hits\": " << r.stats.cache_hits << ",\n"
       << "      \"model_reuse_hits\": " << r.stats.model_reuse_hits << ",\n"
       << "      \"shared_cache_hits\": " << r.stats.shared_cache_hits
       << ",\n"
       << "      \"solves\": " << r.stats.solves << ",\n"
       << "      \"fast_path_rate\": " << r.stats.fast_path_rate() << "\n"
       << "    }";
  };
  std::ofstream os(path);
  os << "{\n"
     << "  \"bench\": \"solver_fork_heavy\",\n"
     << "  \"queries\": " << forks << ",\n"
     << "  \"configs\": {\n";
  config(os, "optimized", opt, forks);
  os << ",\n";
  config(os, "baseline", base, forks);
  os << "\n  },\n"
     << "  \"speedup\": " << speedup << "\n"
     << "}\n";
}

int run_solver_comparison(const std::string& json_path, bool quick,
                          double min_speedup) {
  const std::size_t forks = quick ? 400 : 2000;
  // Baseline first so its (slower) run cannot benefit from a warmed CPU.
  const SuiteRun base = run_fork_suite(/*optimized=*/false, forks);
  const SuiteRun opt = run_fork_suite(/*optimized=*/true, forks);

  // The optimization layer must be invisible in the answers.
  if (opt.verdicts != base.verdicts) {
    std::fprintf(stderr,
                 "FAIL: sliced and monolithic verdicts diverge on the "
                 "fork-heavy suite\n");
    return 2;
  }

  const double speedup =
      opt.seconds > 0.0 ? base.seconds / opt.seconds : 0.0;
  std::printf("solver fork-heavy suite: %zu queries\n", forks);
  std::printf("  baseline : %.3fs (%llu solves)\n", base.seconds,
              static_cast<unsigned long long>(base.stats.solves));
  std::printf("  optimized: %.3fs (%llu solves, %llu cache + %llu model "
              "reuse hits, %.0f%% fast path)\n",
              opt.seconds,
              static_cast<unsigned long long>(opt.stats.solves),
              static_cast<unsigned long long>(opt.stats.cache_hits),
              static_cast<unsigned long long>(opt.stats.model_reuse_hits),
              100.0 * opt.stats.fast_path_rate());
  std::printf("  speedup  : %.2fx (gate: %.2fx)\n", speedup, min_speedup);

  write_json(json_path, forks, opt, base, speedup);
  std::printf("  wrote %s\n", json_path.c_str());
  if (speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below --min-speedup %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_solver.json";
  double min_speedup = 0.0;
  std::vector<char*> bench_argv{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else {
      bench_argv.push_back(argv[i]);
    }
  }

  const int rc = run_solver_comparison(json_path, quick, min_speedup);
  if (rc != 0 || quick) return rc;

  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
