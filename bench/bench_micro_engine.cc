// Microbenchmarks (google-benchmark) for the engine substrates: expression
// construction, interval propagation, solver queries (including the
// propagation-only ablation), concrete interpretation and symbolic
// execution throughput, and monitor logging overhead at different sampling
// rates.
#include <benchmark/benchmark.h>

#include "apps/registry.h"
#include "apps/workload.h"
#include "monitor/monitor.h"
#include "solver/solver.h"
#include "statsym/engine.h"

using namespace statsym;

namespace {

void BM_ExprConstruction(benchmark::State& state) {
  for (auto _ : state) {
    solver::ExprPool pool;
    const auto x = pool.var_expr(pool.new_var("x", 0, 255));
    solver::ExprId e = pool.constant(0);
    for (int i = 0; i < 64; ++i) {
      e = pool.add(e, pool.eq(x, pool.constant(i)));
    }
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_ExprConstruction);

void BM_HashConsingHitPath(benchmark::State& state) {
  solver::ExprPool pool;
  const auto x = pool.var_expr(pool.new_var("x", 0, 255));
  for (auto _ : state) {
    // All constructions after the first are intern-table hits.
    benchmark::DoNotOptimize(pool.lt(x, pool.constant(57)));
  }
}
BENCHMARK(BM_HashConsingHitPath);

void BM_Propagation(benchmark::State& state) {
  solver::ExprPool pool;
  std::vector<solver::ExprId> cs;
  for (int i = 0; i < state.range(0); ++i) {
    const auto v = pool.new_var("b" + std::to_string(i), 0, 255);
    cs.push_back(pool.ne(pool.var_expr(v), pool.constant(0)));
  }
  for (auto _ : state) {
    solver::DomainMap d;
    bool ok = true;
    for (auto c : cs) ok = ok && solver::propagate(pool, c, true, d);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Propagation)->Arg(64)->Arg(512);

void BM_SolverQuery(benchmark::State& state) {
  const bool propagation_only = state.range(0) == 1;
  solver::ExprPool pool;
  solver::SolverOptions opts;
  opts.propagation_only = propagation_only;
  solver::Solver solver(pool, opts);
  const auto x = pool.var_expr(pool.new_var("x", 0, 255));
  const auto y = pool.var_expr(pool.new_var("y", 0, 255));
  const std::vector<solver::ExprId> cs{
      pool.lt(x, y), pool.eq(pool.add(x, y), pool.constant(300)),
      pool.ne(x, pool.constant(100))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.check(cs).sat);
  }
}
BENCHMARK(BM_SolverQuery)->Arg(0)->Arg(1);

void BM_SolverCountingRepair(benchmark::State& state) {
  solver::ExprPool pool;
  solver::Solver solver(pool, {});
  solver::ExprId sum = pool.constant(0);
  for (int i = 0; i < 64; ++i) {
    const auto v = pool.new_var("b" + std::to_string(i), 1, 255);
    sum = pool.add(sum, pool.eq(pool.var_expr(v), pool.constant(46)));
  }
  const std::vector<solver::ExprId> cs{pool.le(pool.constant(20), sum)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.check(cs).sat);
  }
}
BENCHMARK(BM_SolverCountingRepair);

void BM_ConcreteRun(benchmark::State& state) {
  const apps::AppSpec app =
      apps::make_app(state.range(0) == 0 ? "polymorph" : "thttpd");
  Rng rng(7);
  for (auto _ : state) {
    Rng r = rng.split();
    interp::Interpreter it(app.module, app.workload(r));
    benchmark::DoNotOptimize(it.run().steps);
  }
}
BENCHMARK(BM_ConcreteRun)->Arg(0)->Arg(1);

void BM_MonitoredRun(benchmark::State& state) {
  const apps::AppSpec app = apps::make_polymorph();
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(7);
  for (auto _ : state) {
    Rng r = rng.split();
    auto run = monitor::run_monitored(app.module, app.workload(r),
                                      {.sampling_rate = rate}, rng.split(), 0);
    benchmark::DoNotOptimize(run.log.records.size());
  }
}
BENCHMARK(BM_MonitoredRun)->Arg(0)->Arg(30)->Arg(100);

void BM_SymbolicThroughput(benchmark::State& state) {
  // Instructions per second through the symbolic executor on the fig2
  // program (bounded exploration).
  const apps::AppSpec app = apps::make_fig2();
  for (auto _ : state) {
    symexec::ExecOptions opts;
    opts.stop_at_first_fault = true;
    symexec::SymExecutor ex(app.module, app.sym_spec, opts);
    const auto r = ex.run();
    benchmark::DoNotOptimize(r.stats.instructions);
  }
}
BENCHMARK(BM_SymbolicThroughput);

void BM_GuidedPolymorphEndToEnd(benchmark::State& state) {
  // Full pipeline cost on the flagship target (log collection + statistics
  // + guided search).
  const apps::AppSpec app = apps::make_polymorph();
  for (auto _ : state) {
    core::EngineOptions o;
    o.monitor.sampling_rate = 0.3;
    o.candidate_timeout_seconds = 60.0;
    o.seed = 5;
    core::StatSymEngine engine(app.module, app.sym_spec, o);
    engine.collect_logs(app.workload);
    benchmark::DoNotOptimize(engine.run().found);
  }
}
BENCHMARK(BM_GuidedPolymorphEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
