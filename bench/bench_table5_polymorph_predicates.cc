// Table V + Fig. 8: the instrumented locations of polymorph and the top-10
// ranked predicates. The paper's list is dominated by len(suspect)/
// len(original) lower bounds just above the 512-byte buffer, followed by
// "< -infinity" predicates at locations only correct runs reach.
#include "bench_common.h"
#include "statsym/report.h"

using namespace statsym;

int main() {
  bench::print_header(
      "Table V / Fig. 8: polymorph instrumented locations & top predicates",
      "P1 len(suspect FUNCPARAM) > 536.5 @ does_newnameExist():enter ... "
      "P7-P10 track/wd/clean GLOBAL < -infinity @ convert_fileName():leave, "
      "main():leave");

  const bench::StatSymRun g = bench::run_statsym("polymorph", 0.3);

  std::printf("%s\n",
              core::format_locations(g.app.module).c_str());
  std::printf("Instrumented variables: GLOBAL: target, wd, hidden, track, "
              "clean, init_file, hidden_file, have_target; FUNCPARAM: argc, "
              "original, suspect\n\n");

  // Top 10 with the threshold kind, plus the first unreached predicates to
  // show the "< -infinity" rows.
  std::printf("%s\n",
              core::format_predicates(g.app.module, g.result.predicates, 10)
                  .c_str());
  std::printf("Unreached-location predicates (paper's P7-P10 style):\n");
  TextTable t({"Predicate", "Score", "Loc"});
  std::size_t shown = 0;
  for (const auto& p : g.result.predicates) {
    if (p.pk != stats::PredKind::kUnreached) continue;
    t.add_row({p.display(), fmt_double(p.score, 3),
               monitor::loc_name(g.app.module, p.loc)});
    if (++shown == 6) break;
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
