// Shared helpers for the experiment harness. Each bench binary regenerates
// one table or figure from the paper's evaluation (§VII) and prints the
// paper's reported values alongside for shape comparison.
#pragma once

#include <cstdio>
#include <string>

#include "apps/registry.h"
#include "statsym/engine.h"
#include "support/stopwatch.h"
#include "support/strings.h"
#include "support/table.h"

namespace statsym::bench {

// The paper's evaluation configuration (§VII-A), scaled to the simulator:
// 100 + 100 logs, 30% or 100% sampling, τ = 10, per-candidate timeout.
inline core::EngineOptions engine_options(double sampling_rate,
                                          std::uint64_t seed = 424242) {
  core::EngineOptions o;
  o.monitor.sampling_rate = sampling_rate;
  o.target_correct_logs = 100;
  o.target_faulty_logs = 100;
  o.guidance.tau = 10;
  o.candidate_timeout_seconds = 120.0;
  o.exec.max_memory_bytes = 256ull << 20;
  o.exec.max_instructions = 400'000'000;
  o.seed = seed;
  return o;
}

// Pure-KLEE baseline configuration: the random-path searcher (KLEE's
// default flavour) bounded by the modelled memory budget — the analogue of
// the paper's 12 GB testbed limit.
inline symexec::ExecOptions pure_options() {
  symexec::ExecOptions o;
  o.searcher = symexec::SearcherKind::kRandomPath;
  o.max_memory_bytes = 256ull << 20;
  o.max_seconds = 300.0;
  o.max_instructions = 400'000'000;
  o.seed = 1;
  return o;
}

struct StatSymRun {
  core::EngineResult result;
  apps::AppSpec app;
};

inline StatSymRun run_statsym(const std::string& name, double sampling,
                              std::uint64_t seed = 424242,
                              std::size_t jobs = 0,
                              std::size_t portfolio = 4) {
  StatSymRun out{.result = {}, .app = apps::make_app(name)};
  core::EngineOptions o = engine_options(sampling, seed);
  o.num_threads = jobs;
  o.candidate_portfolio_width = portfolio;
  core::StatSymEngine engine(out.app.module, out.app.sym_spec, o);
  engine.collect_logs(out.app.workload);
  out.result = engine.run();
  return out;
}

inline std::string seconds(double s) { return fmt_double(s, 3); }

inline void print_header(const char* what, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what);
  std::printf("(paper reference: %s)\n", paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace statsym::bench
