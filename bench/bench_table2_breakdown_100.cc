// Table II: number of detours and per-module time breakdown (statistical
// analysis vs statistics-guided symbolic execution) at 100% sampling.
#include "bench_common.h"

using namespace statsym;

int main() {
  bench::print_header(
      "Table II: detours and module time breakdown, sampling 100%",
      "polymorph 0 detours, 1.9s/180.6s — CTree 0, 58.4s/1.6s — "
      "thttpd 6, 561.2s/247s — Grep 12, 661.4s/37.7s");

  TextTable t({"Benchmark", "detours", "stat time(s)", "symexec time(s)",
               "log KB", "found"});
  for (const std::string& name : apps::app_names()) {
    const bench::StatSymRun g = bench::run_statsym(name, 1.0);
    t.add_row({name, std::to_string(g.result.construction.detours.size()),
               bench::seconds(g.result.stat_seconds),
               bench::seconds(g.result.symexec_seconds),
               std::to_string(g.result.log_bytes / 1024),
               g.result.found ? "yes" : "NO"});
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
