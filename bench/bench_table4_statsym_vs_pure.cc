// Table IV: paths explored and time to find the bug — StatSym (guided KLEE)
// versus pure symbolic execution, at 30% sampling. The paper's shape:
// StatSym succeeds on all four targets with far fewer paths; pure symbolic
// execution succeeds only on polymorph (15x slower) and fails on
// CTree/Grep/thttpd by exhausting memory.
//
//   bench_table4_statsym_vs_pure [--jobs N[,N...]] [--json FILE]
//                                [--engines-json FILE]
//
// With a --jobs list (e.g. --jobs 1,2,4,8) the StatSym pipeline additionally
// runs once per worker count and the per-app wall-clock speedup over the
// first count is printed; --json writes the sweep as JSON for the bench
// trajectory. Results are identical at every worker count — only the clock
// moves.
//
// --engines-json races all three engines (guided | pure | concolic) per app
// and writes per-lane timings (the BENCH_concolic.json baseline): which lane
// won, each counted lane's wall-clock, paths, instructions, and for the
// concolic lane its concrete-run count.
#include <cstring>
#include <fstream>
#include <vector>

#include "bench_common.h"
#include "support/stopwatch.h"

using namespace statsym;

namespace {

struct SweepRun {
  std::size_t jobs{0};
  double wall_seconds{0.0};
  core::EngineResult result;
};

struct AppSweep {
  std::string app;
  std::vector<SweepRun> runs;
};

void write_json(const std::vector<AppSweep>& sweeps, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  os << "{\n  \"bench\": \"table4_jobs_sweep\",\n  \"apps\": [\n";
  for (std::size_t a = 0; a < sweeps.size(); ++a) {
    os << "    {\"app\": \"" << sweeps[a].app << "\", \"runs\": [\n";
    for (std::size_t r = 0; r < sweeps[a].runs.size(); ++r) {
      const SweepRun& run = sweeps[a].runs[r];
      // Per-phase wall times come from the pipeline metrics registry — the
      // same gauges --metrics-out serialises — so the bench rows and the
      // observability layer cannot drift apart.
      const obs::MetricsRegistry& m = run.result.metrics;
      os << "      {\"jobs\": " << run.jobs
         << ", \"wall_seconds\": " << fmt_double(run.wall_seconds, 4)
         << ", \"log_seconds\": "
         << fmt_double(m.gauge("phase.log.seconds"), 4)
         << ", \"stat_seconds\": "
         << fmt_double(m.gauge("phase.stat.seconds"), 4)
         << ", \"symexec_seconds\": "
         << fmt_double(m.gauge("phase.symexec.seconds"), 4)
         << ", \"pipeline_seconds\": "
         << fmt_double(m.gauge("phase.total.seconds"), 4)
         << ", \"solve_seconds\": "
         << fmt_double(m.gauge("solver.solve.seconds"), 4)
         << ", \"found\": " << (run.result.found ? "true" : "false")
         << ", \"winning_candidate\": " << run.result.winning_candidate
         << ", \"paths_explored\": " << run.result.paths_explored
         << ", \"solver_queries\": " << run.result.solver_stats.queries
         << ", \"solver_slices\": " << run.result.solver_stats.slices
         << ", \"solver_cache_hits\": " << run.result.solver_stats.cache_hits
         << ", \"solver_model_reuse_hits\": "
         << run.result.solver_stats.model_reuse_hits
         << ", \"solver_shared_cache_hits\": "
         << run.result.solver_stats.shared_cache_hits
         << ", \"solver_solves\": " << run.result.solver_stats.solves
         << ", \"solver_fast_path_rate\": "
         << fmt_double(run.result.solver_stats.fast_path_rate(), 4) << "}"
         << (r + 1 < sweeps[a].runs.size() ? "," : "") << "\n";
    }
    os << "    ]}" << (a + 1 < sweeps.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::printf("wrote sweep JSON to %s\n", path.c_str());
}

// --- engine race: per-lane timings (BENCH_concolic.json) ------------------

core::EngineResult run_engine_race(const apps::AppSpec& app) {
  core::EngineOptions o = bench::engine_options(0.3);
  o.engines = {core::EngineKind::kGuided, core::EngineKind::kPure,
               core::EngineKind::kConcolic};
  core::StatSymEngine engine(app.module, app.sym_spec, o);
  engine.collect_logs(app.workload);
  return engine.run();
}

void write_engines_json(const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  TextTable t({"Benchmark", "winner", "lane", "outcome", "time(s)", "#paths",
               "instrs", "concolic runs"});
  os << "{\n  \"bench\": \"table4_engine_race\",\n  \"apps\": [\n";
  const auto names = apps::app_names();
  for (std::size_t a = 0; a < names.size(); ++a) {
    const apps::AppSpec app = apps::make_app(names[a]);
    const core::EngineResult res = run_engine_race(app);
    const char* winner =
        res.found ? core::engine_kind_name(res.winning_engine) : "none";
    os << "    {\"app\": \"" << names[a] << "\", \"found\": "
       << (res.found ? "true" : "false") << ", \"winner\": \"" << winner
       << "\", \"lanes\": [\n";
    for (std::size_t l = 0; l < res.lanes.size(); ++l) {
      const core::EngineLaneResult& lane = res.lanes[l];
      os << "      {\"engine\": \"" << core::engine_kind_name(lane.kind)
         << "\", \"priority\": " << lane.priority
         << ", \"found\": " << (lane.found ? "true" : "false")
         << ", \"termination\": \""
         << symexec::termination_name(lane.termination)
         << "\", \"seconds\": " << fmt_double(lane.seconds, 4)
         << ", \"paths_explored\": " << lane.paths_explored
         << ", \"instructions\": " << lane.instructions
         << ", \"concolic_runs\": " << lane.concolic_runs
         << ", \"solver_queries\": " << lane.solver_stats.queries << "}"
         << (l + 1 < res.lanes.size() ? "," : "") << "\n";
      t.add_row({names[a], winner, core::engine_kind_name(lane.kind),
                 symexec::termination_name(lane.termination),
                 bench::seconds(lane.seconds),
                 std::to_string(lane.paths_explored),
                 std::to_string(lane.instructions),
                 std::to_string(lane.concolic_runs)});
    }
    os << "    ]}" << (a + 1 < names.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::printf("Engine race: per-lane timings (cancelled lanes report zero)\n");
  std::printf("%s\n", t.render().c_str());
  std::printf("wrote engine-race JSON to %s\n", path.c_str());
}

std::vector<std::size_t> parse_jobs_list(const char* s) {
  std::vector<std::size_t> jobs;
  for (const std::string& part : split(s, ',')) {
    if (!part.empty()) jobs.push_back(std::strtoull(part.c_str(), nullptr, 10));
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> jobs_sweep;
  std::string json_path;
  std::string engines_json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs_sweep = parse_jobs_list(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--engines-json") == 0 && i + 1 < argc) {
      engines_json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--jobs N[,N...]] [--json FILE] "
                   "[--engines-json FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::print_header(
      "Table IV: StatSym vs pure symbolic execution (30% sampling)",
      "polymorph 63/214.6s vs 8368/3252s — CTree 112/45.6s vs 17575/Failed — "
      "thttpd 5168/1691s vs 17882/Failed — Grep 11462/563s vs 38708/Failed");

  TextTable t({"Benchmark", "StatSym #paths", "StatSym time(s)", "found",
               "Pure #paths", "Pure time(s)", "pure outcome"});
  for (const std::string& name : apps::app_names()) {
    const bench::StatSymRun g = bench::run_statsym(name, 0.3);
    const double g_time =
        g.result.stat_seconds + g.result.symexec_seconds;

    const auto pure = core::run_pure_symbolic(g.app.module, g.app.sym_spec,
                                              bench::pure_options());
    const bool pure_found =
        pure.termination == symexec::Termination::kFoundFault;
    t.add_row({name, std::to_string(g.result.paths_explored),
               bench::seconds(g_time), g.result.found ? "yes" : "NO",
               std::to_string(pure.stats.paths_explored),
               pure_found ? bench::seconds(pure.stats.seconds) : "-",
               pure_found ? "found" : std::string("Failed (") +
                                          symexec::termination_name(
                                              pure.termination) +
                                          ")"});
    if (g.result.found && pure_found) {
      std::printf("  %s speedup: %.1fx time, %.1fx fewer paths\n",
                  name.c_str(), pure.stats.seconds / std::max(g_time, 1e-9),
                  static_cast<double>(pure.stats.paths_explored) /
                      std::max<double>(g.result.paths_explored, 1));
    }
    std::printf("  %s solver fast-path: %.0f%% of %llu slices\n", name.c_str(),
                100.0 * g.result.solver_stats.fast_path_rate(),
                static_cast<unsigned long long>(g.result.solver_stats.slices));
  }
  std::printf("%s\n", t.render().c_str());

  if (!engines_json_path.empty()) write_engines_json(engines_json_path);

  if (jobs_sweep.empty()) return 0;

  // --- --jobs sweep: the same pipeline, wall-clock per worker count -------
  std::printf("StatSym --jobs sweep (full pipeline wall-clock per app)\n");
  std::vector<AppSweep> sweeps;
  TextTable sweep_table({"Benchmark", "jobs", "wall(s)", "log(s)", "stat(s)",
                         "exec(s)", "speedup", "found", "cand"});
  for (const std::string& name : apps::app_names()) {
    AppSweep sweep{.app = name, .runs = {}};
    for (const std::size_t jobs : jobs_sweep) {
      Stopwatch sw;
      const bench::StatSymRun g = bench::run_statsym(name, 0.3, 424242, jobs);
      SweepRun run{.jobs = jobs, .wall_seconds = sw.elapsed_seconds(),
                   .result = g.result};
      const double base = sweep.runs.empty() ? run.wall_seconds
                                             : sweep.runs[0].wall_seconds;
      sweep_table.add_row(
          {name, std::to_string(jobs), bench::seconds(run.wall_seconds),
           bench::seconds(run.result.log_seconds),
           bench::seconds(run.result.stat_seconds),
           bench::seconds(run.result.symexec_seconds),
           fmt_double(base / std::max(run.wall_seconds, 1e-9), 2) + "x",
           run.result.found ? "yes" : "NO",
           std::to_string(run.result.winning_candidate)});
      sweep.runs.push_back(std::move(run));
    }
    sweeps.push_back(std::move(sweep));
  }
  std::printf("%s\n", sweep_table.render().c_str());
  if (!json_path.empty()) write_json(sweeps, json_path);
  return 0;
}
