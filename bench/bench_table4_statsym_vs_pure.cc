// Table IV: paths explored and time to find the bug — StatSym (guided KLEE)
// versus pure symbolic execution, at 30% sampling. The paper's shape:
// StatSym succeeds on all four targets with far fewer paths; pure symbolic
// execution succeeds only on polymorph (15x slower) and fails on
// CTree/Grep/thttpd by exhausting memory.
#include "bench_common.h"

using namespace statsym;

int main() {
  bench::print_header(
      "Table IV: StatSym vs pure symbolic execution (30% sampling)",
      "polymorph 63/214.6s vs 8368/3252s — CTree 112/45.6s vs 17575/Failed — "
      "thttpd 5168/1691s vs 17882/Failed — Grep 11462/563s vs 38708/Failed");

  TextTable t({"Benchmark", "StatSym #paths", "StatSym time(s)", "found",
               "Pure #paths", "Pure time(s)", "pure outcome"});
  for (const std::string& name : apps::app_names()) {
    const bench::StatSymRun g = bench::run_statsym(name, 0.3);
    const double g_time =
        g.result.stat_seconds + g.result.symexec_seconds;

    const auto pure = core::run_pure_symbolic(g.app.module, g.app.sym_spec,
                                              bench::pure_options());
    const bool pure_found =
        pure.termination == symexec::Termination::kFoundFault;
    t.add_row({name, std::to_string(g.result.paths_explored),
               bench::seconds(g_time), g.result.found ? "yes" : "NO",
               std::to_string(pure.stats.paths_explored),
               pure_found ? bench::seconds(pure.stats.seconds) : "-",
               pure_found ? "found" : std::string("Failed (") +
                                          symexec::termination_name(
                                              pure.termination) +
                                          ")"});
    if (g.result.found && pure_found) {
      std::printf("  %s speedup: %.1fx time, %.1fx fewer paths\n",
                  name.c_str(), pure.stats.seconds / std::max(g_time, 1e-9),
                  static_cast<double>(pure.stats.paths_explored) /
                      std::max<double>(g.result.paths_explored, 1));
    }
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
