// Ablation study over StatSym's design choices (DESIGN.md §5):
//   1. hop threshold τ (paper default 10),
//   2. intra-function predicate injection on/off,
//   3. guided scheduler vs plain DFS under the same guidance,
// measured on polymorph and ctree at 30% sampling.
#include "bench_common.h"
#include "statsym/guidance.h"
#include "statsym/guided_searcher.h"
#include "stats/suff_stats.h"

using namespace statsym;

namespace {

struct AblationResult {
  bool found{false};
  std::uint64_t paths{0};
  double seconds{0.0};
};

AblationResult run_variant(const apps::AppSpec& app,
                           const std::vector<monitor::RunLog>& logs,
                           core::GuidanceOptions gopts, bool guided_sched) {
  stats::SuffStats suff;
  suff.ingest(logs);
  stats::PredicateManager preds;
  preds.build(suff);
  stats::TransitionGraph graph;
  graph.ingest(suff);
  graph.rerank();
  stats::PathBuilder builder(graph, preds);
  const auto pc = builder.build(
      stats::TransitionGraph::failure_node(suff, &app.module));
  AblationResult out;
  if (!pc.has_value() || pc->candidates.empty()) return out;

  Stopwatch sw;
  for (std::size_t ci = 0; ci < pc->candidates.size() && !out.found; ++ci) {
    core::CandidateGuidance guidance(app.module, pc->candidates[ci],
                                     preds.ranked(), gopts);
    symexec::ExecOptions eo;
    eo.wake_suspended = false;
    eo.max_seconds = 60.0;
    eo.max_memory_bytes = 256ull << 20;
    symexec::SymExecutor ex(app.module, app.sym_spec, eo);
    ex.set_guidance(&guidance);
    if (guided_sched) {
      ex.set_searcher(std::make_unique<core::GuidedSearcher>());
    }
    const auto r = ex.run();
    out.paths += r.stats.paths_explored;
    if (r.termination == symexec::Termination::kFoundFault) out.found = true;
  }
  out.seconds = sw.elapsed_seconds();
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: hop threshold tau, predicate injection, guided scheduler",
      "design-choice study; no direct paper counterpart (paper fixes tau=10 "
      "and always injects)");

  for (const std::string& name : {std::string("polymorph"),
                                  std::string("ctree")}) {
    const apps::AppSpec app = apps::make_app(name);
    core::StatSymEngine collector(app.module, app.sym_spec,
                                  bench::engine_options(0.3));
    collector.collect_logs(app.workload);
    const auto& logs = collector.logs();

    std::printf("-- %s --\n", name.c_str());
    TextTable t({"variant", "found", "paths", "time(s)"});

    for (const int tau : {0, 2, 10, 50}) {
      core::GuidanceOptions g;
      g.tau = tau;
      const auto r = run_variant(app, logs, g, /*guided_sched=*/true);
      t.add_row({"tau=" + std::to_string(tau), r.found ? "yes" : "NO",
                 std::to_string(r.paths), bench::seconds(r.seconds)});
    }
    {
      core::GuidanceOptions g;
      g.inject_predicates = false;
      const auto r = run_variant(app, logs, g, /*guided_sched=*/true);
      t.add_row({"no predicate injection", r.found ? "yes" : "NO",
                 std::to_string(r.paths), bench::seconds(r.seconds)});
    }
    {
      const auto r = run_variant(app, logs, {}, /*guided_sched=*/false);
      t.add_row({"DFS instead of guided scheduler", r.found ? "yes" : "NO",
                 std::to_string(r.paths), bench::seconds(r.seconds)});
    }
    std::printf("%s\n", t.render().c_str());
  }
  return 0;
}
