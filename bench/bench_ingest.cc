// Streaming-ingestion throughput (DESIGN.md §10): pushes synthetic sampled
// run logs through a ShardedCollector that folds each completed shard into
// mergeable sufficient statistics and drops the raw logs — the engine's
// --stream pipeline minus workload execution — and measures sustained
// runs/sec and the peak retained log footprint at several shard sizes.
//
// The memory gate is the point of the architecture: peak retained log bytes
// must be bounded by the shard size (shard_size * max per-log footprint),
// never by the total number of runs. The binary exits nonzero if any
// configuration breaks that bound, if the folded statistics diverge from a
// one-shot batch ingest, or if throughput falls below --min-runs-per-sec.
//
//   bench_ingest --quick                 # 1e5 runs/config (CI smoke)
//   bench_ingest                         # 1e6 runs/config
//   bench_ingest --json out.json         # default BENCH_ingest.json
//   bench_ingest --min-runs-per-sec 1e5  # throughput gate (default 0 = off)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "monitor/shard.h"
#include "stats/predicate_manager.h"
#include "stats/suff_stats.h"
#include "support/rng.h"
#include "support/stopwatch.h"

using namespace statsym;

namespace {

// Synthetic sampled monitor output: a pool of distinct run shapes (enter/
// leave locations, integer globals, one length-logged parameter) generated
// once, then cycled with fresh run ids. Cycling keeps the generator cost off
// the measured path's critical resource (allocation) without retaining
// O(total runs) logs anywhere in the harness itself.
std::vector<monitor::RunLog> make_templates(std::size_t n, Rng& rng) {
  std::vector<monitor::RunLog> pool;
  pool.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    monitor::RunLog log;
    log.faulty = rng.uniform(0, 1) < 0.3;
    if (log.faulty) log.fault_function = "sink";
    const int depth = 2 + static_cast<int>(rng.uniform(0, 4));
    log.records_considered = 2 * depth;
    for (int d = 0; d < depth; ++d) {
      monitor::LogRecord rec;
      rec.loc = monitor::enter_loc(static_cast<ir::FuncId>(d));
      monitor::VarSample len;
      len.name = "input";
      len.kind = monitor::VarKind::kParam;
      len.is_len = true;
      len.value = std::floor(rng.uniform(0, 64)) + (log.faulty ? 512 : 0);
      rec.vars.push_back(len);
      monitor::VarSample g;
      g.name = "g_total";
      g.kind = monitor::VarKind::kGlobal;
      g.value = std::floor(rng.uniform(-100, 100));
      rec.vars.push_back(g);
      log.records.push_back(rec);
      rec.loc = monitor::leave_loc(static_cast<ir::FuncId>(d));
      log.records.push_back(rec);
    }
    pool.push_back(std::move(log));
  }
  return pool;
}

struct ConfigResult {
  std::size_t shard_size{0};
  std::size_t runs{0};
  double seconds{0.0};
  double runs_per_sec{0.0};
  std::uint32_t shards{0};
  std::size_t peak_retained_bytes{0};
  std::size_t retained_bound{0};  // shard_size * max per-log footprint
  std::size_t ranked_predicates{0};
};

ConfigResult run_config(const std::vector<monitor::RunLog>& templates,
                        std::size_t max_log_bytes, std::size_t runs,
                        std::size_t shard_size,
                        const stats::SuffStats& expect) {
  ConfigResult r;
  r.shard_size = shard_size;
  r.runs = runs;
  r.retained_bound = shard_size * max_log_bytes;

  stats::SuffStats suff;
  monitor::ShardedCollector collector(
      shard_size, [&](monitor::LogShard&& s) { suff.ingest(s); });

  Stopwatch sw;
  for (std::size_t i = 0; i < runs; ++i) {
    monitor::RunLog log = templates[i % templates.size()];
    log.run_id = static_cast<std::int32_t>(i);
    collector.add(std::move(log));
  }
  collector.flush();
  r.seconds = sw.elapsed_seconds();
  r.runs_per_sec = r.seconds > 0.0 ? static_cast<double>(runs) / r.seconds
                                   : 0.0;
  r.shards = collector.shards_emitted();
  r.peak_retained_bytes = collector.peak_retained_bytes();

  // The statistics the stream produced must equal the batch fit exactly
  // (run_id differences don't enter any sufficient statistic).
  if (suff.num_correct_runs() != expect.num_correct_runs() ||
      suff.num_faulty_runs() != expect.num_faulty_runs() ||
      suff.records_considered() != expect.records_considered() ||
      suff.vars().size() != expect.vars().size()) {
    std::fprintf(stderr,
                 "FAIL: shard_size=%zu streamed statistics diverge from the "
                 "batch ingest\n",
                 shard_size);
    std::exit(2);
  }
  // And they must be fit-ready: rerank from the folded statistics.
  stats::PredicateManager pm;
  pm.build(suff);
  r.ranked_predicates = pm.ranked().size();
  return r;
}

void write_json(const std::string& path, std::size_t runs,
                std::size_t batch_bytes,
                const std::vector<ConfigResult>& configs) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"bench\": \"stream_ingest\",\n"
     << "  \"runs_per_config\": " << runs << ",\n"
     << "  \"batch_retained_bytes\": " << batch_bytes << ",\n"
     << "  \"configs\": [\n";
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const ConfigResult& r = configs[i];
    os << "    {\n"
       << "      \"shard_size\": " << r.shard_size << ",\n"
       << "      \"seconds\": " << r.seconds << ",\n"
       << "      \"runs_per_second\": " << r.runs_per_sec << ",\n"
       << "      \"shards\": " << r.shards << ",\n"
       << "      \"peak_retained_log_bytes\": " << r.peak_retained_bytes
       << ",\n"
       << "      \"retained_bound_bytes\": " << r.retained_bound << ",\n"
       << "      \"ranked_predicates\": " << r.ranked_predicates << "\n"
       << "    }" << (i + 1 < configs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_ingest.json";
  double min_runs_per_sec = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-runs-per-sec") == 0 &&
               i + 1 < argc) {
      min_runs_per_sec = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 64;
    }
  }

  const std::size_t runs = quick ? 100'000 : 1'000'000;
  Rng rng(20260807);
  const std::vector<monitor::RunLog> templates = make_templates(256, rng);
  std::size_t max_log_bytes = 0;
  std::size_t batch_bytes = 0;  // what batch mode would retain for `runs`
  stats::SuffStats expect;
  for (std::size_t i = 0; i < templates.size(); ++i) {
    const std::size_t b = monitor::approx_log_bytes(templates[i]);
    max_log_bytes = std::max(max_log_bytes, b);
    expect.ingest(templates[i]);
  }
  {
    stats::SuffStats full;
    for (std::size_t i = 1; i * templates.size() <= runs; ++i) {
      full.merge(expect);
    }
    expect = std::move(full);
    // Remainder runs beyond the last full template cycle.
    for (std::size_t i = (runs / templates.size()) * templates.size();
         i < runs; ++i) {
      expect.ingest(templates[i % templates.size()]);
    }
  }
  for (std::size_t i = 0; i < runs; ++i) {
    batch_bytes += monitor::approx_log_bytes(templates[i % templates.size()]);
  }

  std::printf("stream ingest: %zu synthetic sampled runs per config\n", runs);
  std::printf("  batch mode would retain %.1f MiB of raw logs\n",
              static_cast<double>(batch_bytes) / (1024.0 * 1024.0));

  std::vector<ConfigResult> configs;
  int rc = 0;
  for (const std::size_t shard_size : {std::size_t{1}, std::size_t{64},
                                       std::size_t{1024}}) {
    const ConfigResult r =
        run_config(templates, max_log_bytes, runs, shard_size, expect);
    std::printf(
        "  shard=%-5zu %8.0f runs/s  %u shards  peak retained %zu B "
        "(bound %zu B)\n",
        r.shard_size, r.runs_per_sec, r.shards, r.peak_retained_bytes,
        r.retained_bound);
    if (r.peak_retained_bytes > r.retained_bound) {
      std::fprintf(stderr,
                   "FAIL: shard=%zu retained %zu B exceeds the O(shard "
                   "size) bound %zu B\n",
                   r.shard_size, r.peak_retained_bytes, r.retained_bound);
      rc = 1;
    }
    if (r.runs_per_sec < min_runs_per_sec) {
      std::fprintf(stderr,
                   "FAIL: shard=%zu %.0f runs/s below --min-runs-per-sec "
                   "%.0f\n",
                   r.shard_size, r.runs_per_sec, min_runs_per_sec);
      rc = 1;
    }
    configs.push_back(r);
  }

  write_json(json_path, runs, batch_bytes, configs);
  std::printf("  wrote %s\n", json_path.c_str());
  return rc;
}
