// Fig. 2: the motivating example — pure symbolic execution explores both
// sides of every branch and forks a fresh state per loop iteration, while
// statistics-guided execution prunes everything outside the x >= ~3 region.
// We reproduce the search-space reduction by comparing explored paths and
// forks on the Fig. 2a program.
#include "bench_common.h"
#include "statsym/report.h"

using namespace statsym;

int main() {
  bench::print_header(
      "Fig. 2: pure vs statistics-guided search space on the sample program",
      "pure explores every loop iteration subtree (Fig. 2b); guided prunes "
      "to the x >= 3 region (Fig. 2c)");

  const apps::AppSpec app = apps::make_fig2();

  // Pure symbolic execution, exhaustive: keep exploring after faults to
  // measure the whole space of Fig. 2b (every loop-iteration subtree).
  symexec::ExecOptions pure;
  pure.stop_at_first_fault = false;
  pure.max_instructions = 200'000'000;
  const auto pr = core::run_pure_symbolic(app.module, app.sym_spec, pure);

  // Pure again, but stopping at the first fault — time-to-bug.
  symexec::ExecOptions pure_first;
  pure_first.searcher = symexec::SearcherKind::kBFS;
  const auto pf =
      core::run_pure_symbolic(app.module, app.sym_spec, pure_first);

  const bench::StatSymRun g = bench::run_statsym("fig2", 0.3);

  TextTable t({"engine", "paths", "forks", "instrs", "outcome"});
  t.add_row({"pure KLEE (full tree)",
             std::to_string(pr.stats.paths_explored),
             std::to_string(pr.stats.forks),
             std::to_string(pr.stats.instructions),
             symexec::termination_name(pr.termination)});
  t.add_row({"pure KLEE (first fault)",
             std::to_string(pf.stats.paths_explored),
             std::to_string(pf.stats.forks),
             std::to_string(pf.stats.instructions),
             symexec::termination_name(pf.termination)});
  t.add_row({"StatSym", std::to_string(g.result.paths_explored),
             std::to_string(g.result.last_exec_stats.forks),
             std::to_string(g.result.instructions),
             g.result.found ? "found-fault" : "not-found"});
  std::printf("%s\n", t.render().c_str());

  std::printf("Learned predicate (paper: x >= 3):\n%s\n",
              core::format_predicates(g.app.module, g.result.predicates, 1)
                  .c_str());
  return 0;
}
