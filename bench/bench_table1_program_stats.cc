// Table I: program statistics — SLOC, external calls, internal user-level
// calls, global variables, function parameters — for the four target
// applications.
#include "bench_common.h"
#include "ir/program_stats.h"

using namespace statsym;

int main() {
  bench::print_header(
      "Table I: program statistics of the target applications",
      "polymorph 506/29/16/36/253 — CTree 3011/50/1568/52/532 — "
      "Grep 6660/143/15760/145/545 — thttpd 7939/114/718/?/7420 "
      "(SLOC/Ext/Inter/GV/Params; ours are mini-IR scale, ordering is the "
      "reproduced shape)");

  TextTable t({"Program", "SLOC", "Ext. Call", "Inter. Call", "G.V.",
               "Params", "Branches", "Loops", "Functions"});
  for (const std::string& name : apps::app_names()) {
    const apps::AppSpec app = apps::make_app(name);
    const ir::ProgramStats s = ir::compute_stats(app.module);
    t.add_row({s.program, std::to_string(s.sloc),
               std::to_string(s.ext_call_sites),
               std::to_string(s.internal_call_sites),
               std::to_string(s.globals), std::to_string(s.params),
               std::to_string(s.branches), std::to_string(s.loops),
               std::to_string(s.functions)});
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
