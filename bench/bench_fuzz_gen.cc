// Microbenchmarks (google-benchmark) for the fuzzing harness: program
// generation throughput, per-oracle cost on a representative generated
// program, and end-to-end campaign rates — the numbers that size CI smoke
// budgets (--programs N in a 2-minute job).
#include <benchmark/benchmark.h>

#include "fuzz/diff_driver.h"

using namespace statsym;

namespace {

void BM_GenerateProgram(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const fuzz::GeneratedProgram p = fuzz::generate_program(seed++);
    benchmark::DoNotOptimize(p.app.module.functions().size());
  }
}
BENCHMARK(BM_GenerateProgram);

void BM_OracleDifferentialOnly(benchmark::State& state) {
  fuzz::DiffOptions opts;
  opts.check_pipeline = false;
  opts.check_soundness = false;
  opts.shrink = false;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fuzz::run_program(i++, opts).ok());
  }
}
BENCHMARK(BM_OracleDifferentialOnly);

void BM_AllOraclesPerProgram(benchmark::State& state) {
  fuzz::DiffOptions opts;
  opts.shrink = false;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fuzz::run_program(i++, opts).ok());
  }
}
BENCHMARK(BM_AllOraclesPerProgram);

void BM_Campaign(benchmark::State& state) {
  fuzz::DiffOptions opts;
  opts.num_programs = static_cast<std::size_t>(state.range(0));
  opts.shrink = false;
  for (auto _ : state) {
    const fuzz::CampaignResult cr = fuzz::run_campaign(opts);
    benchmark::DoNotOptimize(cr.pipeline_rate());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Campaign)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
