// Fig. 10: sensitivity to sampling — the per-module time breakdown for
// polymorph and CTree as the sampling rate sweeps 20%..100%. The paper's
// trend: statistical-analysis time grows with the log volume while the
// symbolic-execution time shrinks as the inference sharpens, and the
// vulnerable path is found at every rate.
#include "bench_common.h"

using namespace statsym;

int main() {
  bench::print_header(
      "Fig. 10: module time breakdown vs sampling rate (polymorph, CTree)",
      "polymorph stat 1.6s->1.9s, symexec 213.0s->179.5s over 20%..100%; "
      "CTree stat 43.2s->58.7s, symexec 2.4s->1.6s; found at every rate");

  for (const std::string& name : {std::string("polymorph"),
                                  std::string("ctree")}) {
    std::printf("-- %s --\n", name.c_str());
    TextTable t({"sampling", "log KB", "stat time(s)", "symexec time(s)",
                 "paths", "found"});
    for (const double rate : {0.2, 0.4, 0.6, 0.8, 1.0}) {
      const bench::StatSymRun g = bench::run_statsym(name, rate);
      t.add_row({std::to_string(static_cast<int>(rate * 100)) + "%",
                 std::to_string(g.result.log_bytes / 1024),
                 bench::seconds(g.result.stat_seconds),
                 bench::seconds(g.result.symexec_seconds),
                 std::to_string(g.result.paths_explored),
                 g.result.found ? "yes" : "NO"});
    }
    std::printf("%s\n", t.render().c_str());
  }
  return 0;
}
