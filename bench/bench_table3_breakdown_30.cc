// Table III: number of detours and per-module time breakdown at 30%
// sampling — partial logging increases detours slightly and shifts the
// balance between the modules.
#include "bench_common.h"

using namespace statsym;

int main() {
  bench::print_header(
      "Table III: detours and module time breakdown, sampling 30%",
      "polymorph 2 detours, 1.6s/213.0s — CTree 1, 43.2s/2.4s — "
      "thttpd 7, 428.0s/1263.0s — Grep 31, 518.7s/44.3s");

  TextTable t({"Benchmark", "detours", "stat time(s)", "symexec time(s)",
               "log KB", "candidates", "won with", "found"});
  for (const std::string& name : apps::app_names()) {
    const bench::StatSymRun g = bench::run_statsym(name, 0.3);
    t.add_row({name, std::to_string(g.result.construction.detours.size()),
               bench::seconds(g.result.stat_seconds),
               bench::seconds(g.result.symexec_seconds),
               std::to_string(g.result.log_bytes / 1024),
               std::to_string(g.result.construction.candidates.size()),
               "#" + std::to_string(g.result.winning_candidate),
               g.result.found ? "yes" : "NO"});
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
