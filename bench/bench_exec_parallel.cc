// Work-stealing intra-run exploration: determinism and copy-on-write gates.
//
//   bench_exec_parallel [--quick] [--json FILE] [--jobs N[,N...]]
//
// For each app, runs the symbolic executor with a fixed exploration batch
// at every requested worker count and enforces the two gates of the
// parallel-executor design (DESIGN.md §13):
//
//   1. Verdict equality — termination, paths, forks, instructions, the
//      witness (fault kind/function/input) and the invariant solver
//      counters must be identical at every --exec-jobs value.
//   2. COW effectiveness — bytes actually copied per fork (clone_bytes)
//      must be strictly below what eagerly deep-copying the parent would
//      have cost (eager_clone_bytes).
//
// Wall-clock and steal counts are reported for the record but never gated
// (they are the schedule-dependent part). Exits nonzero when a gate fails,
// so CI can run it directly; --json writes the sweep for the bench
// trajectory (BENCH_exec_parallel.json).
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "symexec/executor.h"

using namespace statsym;

namespace {

struct JobsRun {
  std::size_t jobs{0};
  double wall_seconds{0.0};
  symexec::ExecResult result;
  symexec::SchedStats sched;
};

struct AppReport {
  std::string app;
  std::uint32_t batch{8};
  std::vector<JobsRun> runs;
  bool verdicts_equal{true};
  bool cow_reduces{true};
};

symexec::ExecOptions exec_options(std::size_t jobs, std::uint32_t batch,
                                  std::uint64_t max_instructions) {
  symexec::ExecOptions o;
  o.searcher = symexec::SearcherKind::kDFS;
  o.max_memory_bytes = 256ull << 20;
  o.max_seconds = 300.0;
  o.max_instructions = max_instructions;
  o.jobs = jobs;
  o.batch = batch;
  return o;
}

JobsRun run_once(const apps::AppSpec& app, std::size_t jobs,
                 std::uint32_t batch, std::uint64_t max_instructions) {
  JobsRun r;
  r.jobs = jobs;
  Stopwatch sw;
  symexec::SymExecutor ex(app.module, app.sym_spec,
                          exec_options(jobs, batch, max_instructions));
  r.result = ex.run();
  r.sched = ex.sched_stats();
  r.wall_seconds = sw.elapsed_seconds();
  return r;
}

bool same_verdict(const symexec::ExecResult& a, const symexec::ExecResult& b) {
  if (a.termination != b.termination) return false;
  const auto& sa = a.stats;
  const auto& sb = b.stats;
  if (sa.instructions != sb.instructions || sa.forks != sb.forks ||
      sa.paths_explored != sb.paths_explored ||
      sa.paths_completed != sb.paths_completed ||
      sa.faults_found != sb.faults_found ||
      sa.clone_bytes != sb.clone_bytes ||
      sa.eager_clone_bytes != sb.eager_clone_bytes) {
    return false;
  }
  const auto& qa = a.solver_stats;
  const auto& qb = b.solver_stats;
  if (qa.queries != qb.queries || qa.sat != qb.sat || qa.unsat != qb.unsat ||
      qa.slices != qb.slices ||
      qa.solves + qa.shared_cache_hits != qb.solves + qb.shared_cache_hits) {
    return false;
  }
  if (a.vuln.has_value() != b.vuln.has_value()) return false;
  if (a.vuln.has_value()) {
    if (a.vuln->kind != b.vuln->kind || a.vuln->function != b.vuln->function ||
        a.vuln->detail != b.vuln->detail ||
        a.vuln->input.argv != b.vuln->input.argv ||
        a.vuln->input.env != b.vuln->input.env) {
      return false;
    }
  }
  return true;
}

AppReport sweep_app(const std::string& name,
                    const std::vector<std::size_t>& jobs_list,
                    std::uint64_t max_instructions) {
  const apps::AppSpec app = apps::make_app(name);
  AppReport rep;
  rep.app = name;
  for (const std::size_t jobs : jobs_list) {
    rep.runs.push_back(run_once(app, jobs, rep.batch, max_instructions));
  }
  const JobsRun& base = rep.runs.front();
  for (std::size_t i = 1; i < rep.runs.size(); ++i) {
    if (!same_verdict(base.result, rep.runs[i].result)) {
      rep.verdicts_equal = false;
    }
  }
  // The COW gate is meaningful only when the run actually forked.
  const auto& st = base.result.stats;
  rep.cow_reduces =
      st.forks > 0 && st.clone_bytes > 0 && st.clone_bytes < st.eager_clone_bytes;
  return rep;
}

void print_report(const AppReport& rep) {
  TextTable t({"jobs", "time(s)", "paths", "forks", "steals", "clone KB",
               "eager KB", "verdict"});
  for (const JobsRun& r : rep.runs) {
    t.add_row({std::to_string(r.jobs), bench::seconds(r.wall_seconds),
           std::to_string(r.result.stats.paths_explored),
           std::to_string(r.result.stats.forks),
           std::to_string(r.sched.steals),
           std::to_string(r.result.stats.clone_bytes >> 10),
           std::to_string(r.result.stats.eager_clone_bytes >> 10),
           symexec::termination_name(r.result.termination)});
  }
  std::printf("%s (batch %u):\n%s", rep.app.c_str(), rep.batch,
              t.render().c_str());
  const auto& st = rep.runs.front().result.stats;
  const double ratio =
      st.eager_clone_bytes > 0
          ? static_cast<double>(st.clone_bytes) /
                static_cast<double>(st.eager_clone_bytes)
          : 0.0;
  std::printf("  verdicts identical across jobs: %s\n",
              rep.verdicts_equal ? "yes" : "NO");
  std::printf("  cow copies %.1f%% of an eager clone: %s\n", ratio * 100.0,
              rep.cow_reduces ? "reduced" : "NOT REDUCED");
}

void write_json(const std::vector<AppReport>& reports,
                const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  os << "{\n  \"bench\": \"exec_parallel\",\n  \"apps\": [\n";
  for (std::size_t a = 0; a < reports.size(); ++a) {
    const AppReport& rep = reports[a];
    os << "    {\"app\": \"" << rep.app << "\", \"batch\": " << rep.batch
       << ", \"verdicts_equal\": " << (rep.verdicts_equal ? "true" : "false")
       << ", \"cow_reduces\": " << (rep.cow_reduces ? "true" : "false")
       << ", \"runs\": [\n";
    for (std::size_t r = 0; r < rep.runs.size(); ++r) {
      const JobsRun& run = rep.runs[r];
      const auto& st = run.result.stats;
      os << "      {\"jobs\": " << run.jobs
         << ", \"wall_seconds\": " << fmt_double(run.wall_seconds, 4)
         << ", \"termination\": \""
         << symexec::termination_name(run.result.termination) << "\""
         << ", \"found\": "
         << (run.result.vuln.has_value() ? "true" : "false")
         << ", \"paths_explored\": " << st.paths_explored
         << ", \"forks\": " << st.forks
         << ", \"instructions\": " << st.instructions
         << ", \"clone_bytes\": " << st.clone_bytes
         << ", \"eager_clone_bytes\": " << st.eager_clone_bytes
         << ", \"rounds\": " << run.sched.rounds
         << ", \"tasks\": " << run.sched.tasks
         << ", \"steals\": " << run.sched.steals
         << ", \"workers\": " << run.sched.workers << "}"
         << (r + 1 < rep.runs.size() ? "," : "") << "\n";
    }
    os << "    ]}" << (a + 1 < reports.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::printf("wrote sweep JSON to %s\n", path.c_str());
}

std::vector<std::size_t> parse_jobs_list(const char* arg) {
  std::vector<std::size_t> out;
  for (const std::string& tok : split(arg, ',')) {
    out.push_back(static_cast<std::size_t>(std::stoul(tok)));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  std::vector<std::size_t> jobs_list{1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs_list = parse_jobs_list(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_exec_parallel [--quick] [--json FILE] "
                   "[--jobs N[,N...]]\n");
      return 2;
    }
  }

  bench::print_header(
      "Work-stealing executor: verdict equality across --exec-jobs + "
      "copy-on-write fork cost",
      "DESIGN.md §13 determinism contract");

  struct Case {
    const char* app;
    std::uint64_t max_instructions;
  };
  std::vector<Case> cases{{"fig2", 400'000'000}, {"polymorph", 1'500'000}};
  if (!quick) {
    cases.push_back({"ctree", 1'500'000});
    cases.push_back({"grep", 1'500'000});
  }
  if (quick && jobs_list.size() > 2) jobs_list = {1, 4};

  std::vector<AppReport> reports;
  bool ok = true;
  for (const Case& c : cases) {
    reports.push_back(sweep_app(c.app, jobs_list, c.max_instructions));
    print_report(reports.back());
    ok = ok && reports.back().verdicts_equal && reports.back().cow_reduces;
  }
  if (!json_path.empty()) write_json(reports, json_path);
  if (!ok) {
    std::fprintf(stderr, "bench_exec_parallel: GATE FAILURE (see above)\n");
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
