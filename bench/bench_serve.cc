// Cold-vs-warm service latency: the cross-run cache-reuse gates of the
// `statsym serve` tentpole (ISSUE 10).
//
//   bench_serve [--quick] [--json FILE]
//
// Drives one persistent ServeSession through a cold request, warm repeats,
// and a disk-store round trip into a second session per app, and enforces
// three gates:
//   (1) determinism — the reply body (verdict + warmth-invariant solver
//       sums) is byte-identical cold, warm, and store-warmed;
//   (2) reuse — warm repeats and store-warmed sessions actually hit the
//       shared cache (warm slice hits > 0);
//   (3) latency — total warm wall time is strictly below total cold wall
//       time (the reason the service exists).
// Wall clocks are reported per app for the record; the latency gate is the
// cross-app sum, which keeps per-app scheduler noise out of CI. Exits
// nonzero when any gate fails.
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "serve/protocol.h"
#include "serve/session.h"

namespace statsym::bench {
namespace {

struct AppReport {
  std::string app;
  double cold_seconds{0.0};
  double warm_seconds{0.0};   // best of the warm repeats
  double store_seconds{0.0};  // warm-started from the serialized store
  std::uint64_t warm_hits{0};
  std::uint64_t store_hits{0};
  std::uint64_t store_bytes{0};
  std::uint64_t store_entries{0};
  std::string verdict;
  bool replies_identical{false};
};

serve::Frame request(const std::string& app) {
  serve::Frame f;
  f.id = "bench-" + app;
  f.body = {"cmd|run", "app|" + app, "seed|424242", "jobs|1"};
  return f;
}

double timed(serve::ServeSession& session, const serve::Frame& f,
             std::string& reply) {
  Stopwatch sw;
  reply = session.handle(f);
  return sw.elapsed_seconds();
}

AppReport run_app(const std::string& app, std::size_t warm_repeats) {
  AppReport rep;
  rep.app = app;
  serve::ServeSession session{serve::ServeOptions{}};
  const serve::Frame f = request(app);

  std::string cold_reply;
  rep.cold_seconds = timed(session, f, cold_reply);

  const std::uint64_t hits_before =
      session.metrics().counter("serve.warm_slice_hits");
  std::string warm_reply;
  rep.warm_seconds = rep.cold_seconds;
  for (std::size_t i = 0; i < warm_repeats; ++i) {
    std::string r;
    const double s = timed(session, f, r);
    if (s < rep.warm_seconds) rep.warm_seconds = s;
    warm_reply = r;
  }
  rep.warm_hits =
      session.metrics().counter("serve.warm_slice_hits") - hits_before;

  // Disk-store round trip: a *new* session warmed only by the serialized
  // store must reproduce the verdict and hit the imported entries.
  const std::string store = session.store_text();
  rep.store_bytes = store.size();
  serve::ServeSession restored{serve::ServeOptions{}};
  std::string error;
  if (!restored.load_store_from_text(store, &error)) {
    std::fprintf(stderr, "%s: store load failed: %s\n", app.c_str(),
                 error.c_str());
    rep.replies_identical = false;
    return rep;
  }
  rep.store_entries =
      restored.metrics().counter("serve.store_entries_loaded");
  std::string store_reply;
  rep.store_seconds = timed(restored, f, store_reply);
  rep.store_hits = restored.metrics().counter("serve.warm_slice_hits");

  rep.replies_identical = cold_reply == warm_reply &&
                          cold_reply == store_reply;
  serve::Reply parsed;
  if (serve::parse_reply(cold_reply, parsed) && parsed.ok) {
    if (const auto v = serve::body_value(parsed.body, "verdict")) {
      rep.verdict = std::string(*v);
    }
  }
  return rep;
}

void write_json(const std::vector<AppReport>& reports,
                const std::string& path, bool latency_gate) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  os << "{\n  \"bench\": \"serve\",\n  \"warm_below_cold\": "
     << (latency_gate ? "true" : "false") << ",\n  \"apps\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const AppReport& r = reports[i];
    os << "    {\"app\": \"" << r.app << "\""
       << ", \"verdict\": \"" << r.verdict << "\""
       << ", \"cold_seconds\": " << fmt_double(r.cold_seconds, 4)
       << ", \"warm_seconds\": " << fmt_double(r.warm_seconds, 4)
       << ", \"store_seconds\": " << fmt_double(r.store_seconds, 4)
       << ", \"warm_hits\": " << r.warm_hits
       << ", \"store_hits\": " << r.store_hits
       << ", \"store_bytes\": " << r.store_bytes
       << ", \"store_entries\": " << r.store_entries
       << ", \"replies_identical\": "
       << (r.replies_identical ? "true" : "false") << "}"
       << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::printf("wrote serve bench JSON to %s\n", path.c_str());
}

}  // namespace
}  // namespace statsym::bench

int main(int argc, char** argv) {
  using namespace statsym;
  using namespace statsym::bench;

  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_serve [--quick] [--json FILE]\n");
      return 2;
    }
  }

  print_header("statsym serve: cold vs warm request latency",
               "ISSUE 10 service mode; Baldoni et al. on solver caching");

  std::vector<std::string> apps{"fig2", "polymorph", "ctree", "grep"};
  if (quick) apps = {"fig2", "polymorph"};
  const std::size_t warm_repeats = quick ? 2 : 3;

  std::vector<AppReport> reports;
  bool determinism_gate = true;
  bool reuse_gate = true;
  double cold_total = 0.0;
  double warm_total = 0.0;
  for (const std::string& app : apps) {
    AppReport rep = run_app(app, warm_repeats);
    std::printf("%-12s cold %ss  warm %ss  store-warm %ss  hits %llu/%llu  "
                "%s  %s\n",
                rep.app.c_str(), seconds(rep.cold_seconds).c_str(),
                seconds(rep.warm_seconds).c_str(),
                seconds(rep.store_seconds).c_str(),
                static_cast<unsigned long long>(rep.warm_hits),
                static_cast<unsigned long long>(rep.store_hits),
                rep.verdict.c_str(),
                rep.replies_identical ? "identical" : "DIVERGED");
    determinism_gate = determinism_gate && rep.replies_identical;
    reuse_gate = reuse_gate && rep.warm_hits > 0 && rep.store_hits > 0;
    cold_total += rep.cold_seconds;
    warm_total += rep.warm_seconds;
    reports.push_back(std::move(rep));
  }

  const bool latency_gate = warm_total < cold_total;
  std::printf("total cold %ss, total warm %ss: warm %s cold\n",
              seconds(cold_total).c_str(), seconds(warm_total).c_str(),
              latency_gate ? "strictly below" : "NOT below");
  if (!json_path.empty()) write_json(reports, json_path, latency_gate);

  if (!determinism_gate) {
    std::fprintf(stderr, "GATE FAILED: warm/cold replies diverged\n");
    return 1;
  }
  if (!reuse_gate) {
    std::fprintf(stderr, "GATE FAILED: warm runs did not hit the cache\n");
    return 1;
  }
  if (!latency_gate) {
    std::fprintf(stderr, "GATE FAILED: warm total not below cold total\n");
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
