// Static-analysis ablation bench (ISSUE 8 satellite): measures what the
// whole-program facts (src/analysis/) buy the symbolic executor, and gates
// the claim in CI.
//
// Two suites, each run with the analysis on and off and required to agree
// verdict-for-verdict (pruning is work-skipping, never answer-changing):
//
//   * fork-heavy micro suite — a needle search behind layers of redundant,
//     statically-decidable bound checks on an independent config value.
//     Every decided branch the executor crosses without facts drags the
//     (implied) guard constraints into each canonical witness solve; with
//     facts they are pruned (SolverStats::static_prunes) and the solves
//     shrink. Gates: static_prunes > 0 and strictly fewer canonical slices
//     than the analysis-off baseline.
//
//   * fuzz set — pure symbolic execution over generated programs
//     (fuzz/program_gen.h). Generated programs rarely contain
//     statically-decidable symbolic branches, so no reduction is gated
//     here; the suite exists to pin verdict equivalence and to report the
//     end-to-end cost of running analyze() itself.
//
//   bench_analysis --quick              # smaller repetition counts
//   bench_analysis --json out.json      # default BENCH_analysis.json
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/facts.h"
#include "fuzz/program_gen.h"
#include "ir/builder.h"
#include "support/stopwatch.h"
#include "symexec/executor.h"

using namespace statsym;

namespace {

// Needle search on x behind `layers` redundant bound checks of a config
// value g in [0, 15] against 100 — each statically always-false. g is
// independent of x, so without pruning its guard negations form a separate
// slice in the canonical witness solve of every run.
ir::Module guarded_needle(int layers, int needle) {
  ir::ModuleBuilder mb("guarded-needle");
  auto f = mb.func("main", {});
  const ir::Reg g = f.reg();
  const ir::Reg x = f.reg();
  f.make_sym_int(g, "g", 0, 15);
  f.make_sym_int(x, "x", 0, 255);
  ir::BlockId cur = f.current_block();
  for (int layer = 0; layer < layers; ++layer) {
    const auto oob = f.block();
    const auto next = f.block();
    f.at(cur);
    f.br(f.gei(g, 100), oob, next);
    f.at(oob);
    f.ret(f.ci(1));
    cur = next;
  }
  f.at(cur);
  const auto bad = f.block();
  const auto ok = f.block();
  f.br(f.eqi(x, needle), bad, ok);
  f.at(bad);
  f.assert_true(f.ci(0));
  f.ret();
  f.at(ok);
  f.ret(f.ci(0));
  return mb.build();
}

struct SuiteRun {
  double seconds{0.0};
  double analyze_seconds{0.0};
  std::uint64_t paths{0};
  std::uint64_t faults{0};
  solver::SolverStats stats;
};

// Runs the micro suite `reps` times (fresh executor each run, distinct
// needle constants so witness models differ run to run) and sums the stats.
// The verdict fingerprint (fault function + witness x per run) must match
// between configurations; divergence aborts the bench.
int run_micro(bool with_facts, std::size_t reps, SuiteRun& out,
              std::vector<std::int64_t>& witness_xs) {
  constexpr int kLayers = 12;
  witness_xs.clear();
  Stopwatch total;
  for (std::size_t r = 0; r < reps; ++r) {
    const int needle = static_cast<int>(r % 251);
    const ir::Module m = guarded_needle(kLayers, needle);
    analysis::ProgramFacts facts;
    if (with_facts) {
      Stopwatch asw;
      facts = analysis::analyze(m);
      out.analyze_seconds += asw.elapsed_seconds();
    }
    symexec::SymExecutor ex(m, {}, {});
    if (with_facts) ex.set_facts(&facts);
    const auto res = ex.run();
    if (res.termination != symexec::Termination::kFoundFault ||
        !res.vuln.has_value() || !res.vuln->model_valid) {
      std::fprintf(stderr, "FAIL: micro suite rep %zu did not fault\n", r);
      return 2;
    }
    witness_xs.push_back(res.vuln->input.sym_ints.at("x"));
    out.paths += res.stats.paths_explored;
    out.faults += 1;
    out.stats += res.solver_stats;
  }
  out.seconds = total.elapsed_seconds();
  return 0;
}

// Pure symbolic execution over generated fuzz programs, facts on vs. off.
int run_fuzz_set(bool with_facts, std::size_t programs, SuiteRun& out,
                 std::vector<std::string>& verdicts) {
  verdicts.clear();
  Stopwatch total;
  for (std::size_t i = 0; i < programs; ++i) {
    const fuzz::GeneratedProgram prog =
        fuzz::generate_program(1000 + i, fuzz::GenOptions{});
    analysis::ProgramFacts facts;
    if (with_facts) {
      Stopwatch asw;
      facts = analysis::analyze(prog.app.module);
      out.analyze_seconds += asw.elapsed_seconds();
    }
    symexec::ExecOptions eo;
    eo.searcher = symexec::SearcherKind::kRandomPath;
    eo.max_instructions = 5'000'000;
    eo.max_seconds = 10.0;
    eo.seed = 42;
    symexec::SymExecutor ex(prog.app.module, prog.app.sym_spec, eo);
    if (with_facts) ex.set_facts(&facts);
    const auto res = ex.run();
    std::string v = std::to_string(static_cast<int>(res.termination)) + ":" +
                    std::to_string(res.stats.paths_explored);
    if (res.vuln.has_value()) {
      v += ":" + res.vuln->function + ":" +
           interp::fault_kind_name(res.vuln->kind);
      out.faults += 1;
    }
    verdicts.push_back(std::move(v));
    out.paths += res.stats.paths_explored;
    out.stats += res.solver_stats;
  }
  out.seconds = total.elapsed_seconds();
  return 0;
}

void write_config(std::ostream& os, const char* name, const SuiteRun& r) {
  os << "      \"" << name << "\": {\n"
     << "        \"seconds\": " << r.seconds << ",\n"
     << "        \"analyze_seconds\": " << r.analyze_seconds << ",\n"
     << "        \"paths\": " << r.paths << ",\n"
     << "        \"faults\": " << r.faults << ",\n"
     << "        \"static_prunes\": " << r.stats.static_prunes << ",\n"
     << "        \"queries\": " << r.stats.queries << ",\n"
     << "        \"slices\": " << r.stats.slices << ",\n"
     << "        \"solves\": " << r.stats.solves << "\n"
     << "      }";
}

void write_json(const std::string& path, const SuiteRun& micro_on,
                const SuiteRun& micro_off, const SuiteRun& fuzz_on,
                const SuiteRun& fuzz_off) {
  std::ofstream os(path);
  os << "{\n  \"bench\": \"static_analysis_ablation\",\n";
  os << "  \"suites\": {\n    \"fork_heavy_micro\": {\n";
  write_config(os, "analysis_on", micro_on);
  os << ",\n";
  write_config(os, "analysis_off", micro_off);
  os << "\n    },\n    \"fuzz_set\": {\n";
  write_config(os, "analysis_on", fuzz_on);
  os << ",\n";
  write_config(os, "analysis_off", fuzz_off);
  os << "\n    }\n  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_analysis.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_analysis [--quick] [--json FILE]\n");
      return 2;
    }
  }
  fuzz::register_fuzz_apps();

  const std::size_t reps = quick ? 50 : 200;
  const std::size_t programs = quick ? 16 : 48;

  // Baseline first so the slower configuration cannot benefit from warmup.
  SuiteRun micro_off, micro_on, fuzz_off, fuzz_on;
  std::vector<std::int64_t> xs_off, xs_on;
  if (int rc = run_micro(false, reps, micro_off, xs_off); rc != 0) return rc;
  if (int rc = run_micro(true, reps, micro_on, xs_on); rc != 0) return rc;
  if (xs_on != xs_off) {
    std::fprintf(stderr, "FAIL: micro-suite witnesses diverge with facts\n");
    return 2;
  }

  std::vector<std::string> fv_off, fv_on;
  if (int rc = run_fuzz_set(false, programs, fuzz_off, fv_off); rc != 0)
    return rc;
  if (int rc = run_fuzz_set(true, programs, fuzz_on, fv_on); rc != 0)
    return rc;
  if (fv_on != fv_off) {
    std::fprintf(stderr, "FAIL: fuzz-set verdicts diverge with facts\n");
    return 2;
  }

  std::printf("fork-heavy micro suite (%zu runs):\n", reps);
  std::printf("  analysis off: %.3fs, %llu slices, %llu solves\n",
              micro_off.seconds,
              static_cast<unsigned long long>(micro_off.stats.slices),
              static_cast<unsigned long long>(micro_off.stats.solves));
  std::printf(
      "  analysis on : %.3fs (+%.3fs analyze), %llu slices, %llu solves, "
      "%llu static prunes\n",
      micro_on.seconds, micro_on.analyze_seconds,
      static_cast<unsigned long long>(micro_on.stats.slices),
      static_cast<unsigned long long>(micro_on.stats.solves),
      static_cast<unsigned long long>(micro_on.stats.static_prunes));
  std::printf("fuzz set (%zu programs):\n", programs);
  std::printf("  analysis off: %.3fs, %llu paths\n", fuzz_off.seconds,
              static_cast<unsigned long long>(fuzz_off.paths));
  std::printf("  analysis on : %.3fs (+%.3fs analyze), %llu paths, %llu "
              "static prunes\n",
              fuzz_on.seconds, fuzz_on.analyze_seconds,
              static_cast<unsigned long long>(fuzz_on.paths),
              static_cast<unsigned long long>(fuzz_on.stats.static_prunes));

  write_json(json_path, micro_on, micro_off, fuzz_on, fuzz_off);
  std::printf("wrote %s\n", json_path.c_str());

  // CI gates: the analysis must fire on the micro suite and make every
  // canonical witness solve strictly smaller than the baseline's.
  if (micro_on.stats.static_prunes == 0) {
    std::fprintf(stderr, "FAIL: static_prunes == 0 on the micro suite\n");
    return 1;
  }
  if (micro_on.stats.slices >= micro_off.stats.slices) {
    std::fprintf(stderr,
                 "FAIL: canonical slices not reduced (%llu on vs %llu off)\n",
                 static_cast<unsigned long long>(micro_on.stats.slices),
                 static_cast<unsigned long long>(micro_off.stats.slices));
    return 1;
  }
  return 0;
}
