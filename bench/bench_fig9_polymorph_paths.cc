// Fig. 9: the ranked candidate paths for polymorph — skeleton, detours, and
// the joined candidates handed to the guided symbolic executor, plus the
// discovered vulnerable path.
#include "bench_common.h"
#include "statsym/report.h"

using namespace statsym;

int main() {
  bench::print_header(
      "Fig. 9: candidate vulnerable paths for polymorph (30% sampling)",
      "top candidate traverses grok_commandLine/is_fileHidden/"
      "does_nameHaveUppers/does_newnameExist toward convert_fileName with "
      "length predicates attached");

  const bench::StatSymRun g = bench::run_statsym("polymorph", 0.3);
  std::printf("%s\n",
              core::format_candidates(g.app.module, g.result.construction)
                  .c_str());
  if (g.result.found) {
    std::printf("%s\n",
                core::format_vuln(g.app.module, *g.result.vuln).c_str());
    std::printf("winning candidate: #%zu, paths explored: %llu\n",
                g.result.winning_candidate,
                static_cast<unsigned long long>(g.result.paths_explored));
  }
  return 0;
}
