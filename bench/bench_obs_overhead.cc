// Observability-layer overhead check (ISSUE 5 acceptance criterion): with
// tracing disabled the pipeline must pay <= 2% wall time for carrying the
// instrumentation. The disabled path at every call site is a single member
// pointer load + branch, so the bound is asserted as
//
//   (events an enabled run would emit) x (measured cost of one null check)
//     <= 2% of the disabled pipeline's wall time
//
// which stays stable on loaded CI machines where a direct enabled-vs-
// disabled wall-clock diff would drown in scheduler noise. The direct diff
// is still printed for eyeballing. Exits nonzero when the bound is broken,
// so the bench-smoke job doubles as the regression gate.
#include <atomic>
#include <cstring>

#include "bench_common.h"
#include "obs/trace.h"
#include "statsym/report.h"

using namespace statsym;

namespace {

struct PipelineTiming {
  double wall_seconds{0.0};
  std::uint64_t events{0};
  obs::MetricsRegistry metrics;
};

PipelineTiming run_once(const apps::AppSpec& app, bool traced) {
  core::EngineOptions o = bench::engine_options(0.3);
  o.target_correct_logs = 60;
  o.target_faulty_logs = 60;
  obs::Tracer tracer;
  core::StatSymEngine engine(app.module, app.sym_spec, o);
  if (traced) engine.set_tracer(&tracer);
  Stopwatch sw;
  engine.collect_logs(app.workload);
  core::EngineResult res = engine.run();
  return {sw.elapsed_seconds(), tracer.buffer().total(),
          std::move(res.metrics)};
}

// Cost of one disabled call site: load the trace pointer, test, skip. The
// atomic relaxed load keeps the compiler from hoisting the check out of the
// measurement loop (at a real call site the load is an ordinary member
// read, so this measures an upper bound).
double null_check_seconds() {
  std::atomic<obs::TraceBuffer*> gp{nullptr};
  constexpr std::uint64_t kIters = 1u << 26;
  std::uint64_t hits = 0;
  Stopwatch sw;
  for (std::uint64_t i = 0; i < kIters; ++i) {
    obs::TraceBuffer* t = gp.load(std::memory_order_relaxed);
    if (t != nullptr) ++hits;
  }
  const double total = sw.elapsed_seconds();
  if (hits != 0) std::printf("unreachable\n");  // keep the loop live
  return total / static_cast<double>(kIters);
}

}  // namespace

int main() {
  bench::print_header(
      "Observability overhead: tracing disabled must cost <= 2% wall time",
      "ISSUE 5 acceptance criterion; disabled path = null check per event");

  const apps::AppSpec app = apps::make_polymorph();
  const int reps = 3;

  double disabled = 1e100;
  double enabled = 1e100;
  std::uint64_t events = 0;
  obs::MetricsRegistry metrics;
  for (int r = 0; r < reps; ++r) {
    disabled = std::min(disabled, run_once(app, false).wall_seconds);
    PipelineTiming t = run_once(app, true);
    enabled = std::min(enabled, t.wall_seconds);
    events = t.events;
    metrics = std::move(t.metrics);
  }
  const double per_check = null_check_seconds();
  const double disabled_cost = static_cast<double>(events) * per_check;
  const double bound = 0.02 * disabled;

  TextTable t({"Quantity", "Value"});
  t.add_row({"pipeline wall, tracing off (best of 3)",
             bench::seconds(disabled) + "s"});
  t.add_row({"pipeline wall, tracing on (best of 3)",
             bench::seconds(enabled) + "s"});
  t.add_row({"events per traced run", std::to_string(events)});
  t.add_row({"cost of one disabled call site",
             fmt_double(per_check * 1e9, 3) + "ns"});
  t.add_row({"disabled-path cost (events x check)",
             fmt_double(disabled_cost * 1e6, 3) + "us"});
  t.add_row({"2% budget", fmt_double(bound * 1e6, 3) + "us"});
  std::printf("%s\n", t.render().c_str());
  std::printf("Reference-run pipeline metrics:\n%s\n",
              core::format_metrics(metrics).c_str());

  if (events == 0) {
    std::printf("FAIL: traced run emitted no events\n");
    return 1;
  }
  if (disabled_cost > bound) {
    std::printf("FAIL: disabled tracing costs %.3fus, over the 2%% budget "
                "(%.3fus)\n",
                disabled_cost * 1e6, bound * 1e6);
    return 1;
  }
  std::printf("OK: disabled tracing costs %.4f%% of pipeline wall time "
              "(budget 2%%); enabled/disabled wall ratio %.2fx\n",
              100.0 * disabled_cost / disabled, enabled / disabled);
  return 0;
}
