#include "support/thread_pool.h"

#include <algorithm>

namespace statsym {

std::size_t effective_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = effective_threads(num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::future<void>> futs;
  futs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futs.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futs) f.get();
}

}  // namespace statsym
