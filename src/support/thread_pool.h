// Fixed-size worker pool for the parallel analysis pipeline.
//
// The pool is deliberately minimal: a FIFO task queue drained by N worker
// threads. Determinism of the pipeline does not come from the pool (task
// *completion* order is scheduling-dependent) but from the seeding and
// merging discipline built on top of it: every task derives its RNG stream
// from (master_seed, task_index) via derive_seed(), and results are merged
// in task-index order, so the output is bit-identical for any pool size.
// With one worker the FIFO queue additionally guarantees tasks run in
// submission order, which the engine's candidate portfolio relies on to
// reproduce the sequential one-candidate-at-a-time semantics.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace statsym {

// Resolves a user-facing thread-count request: 0 means "all hardware
// threads" (with a floor of 1 when hardware_concurrency is unknown).
std::size_t effective_threads(std::size_t requested);

class ThreadPool {
 public:
  // Spawns exactly effective_threads(num_threads) workers.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();  // drains the queue, then joins

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a task; the future resolves when it has run. Exceptions thrown
  // by the task are captured into the future.
  std::future<void> submit(std::function<void()> fn);

  // Runs fn(i) for every i in [0, n), distributing across the workers, and
  // blocks until all calls completed. fn must be safe to invoke
  // concurrently from multiple threads.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_{false};
};

}  // namespace statsym
