// Wall-clock stopwatch used to report per-module times in the experiment
// harness (the paper reports seconds for the statistical-analysis and the
// symbolic-execution modules separately).
#pragma once

#include <chrono>

namespace statsym {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace statsym
