// Copy-on-write append-only sequence for fork-tree state (DESIGN.md §13).
//
// A CowVec is a persistent list split into a frozen shared prefix (a
// parent-pointer chain of immutable segments, shared_ptr-owned) and a small
// mutable tail private to one owner. Appends go to the tail; fork() freezes
// the tail into the chain and hands back a sibling sharing the whole prefix,
// so a fork copies O(1) words instead of the full history — the state-clone
// cost that made eager forking the bottleneck of parallel exploration.
//
// Deep chains are flattened opportunistically at fork time (kMaxDepth) so
// reads stay O(segments) with a small constant. Segments are immutable after
// freeze; concurrent readers of shared segments need no synchronisation
// beyond the shared_ptr refcounts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace statsym::support {

template <typename T>
class CowVec {
 public:
  CowVec() = default;

  std::size_t size() const { return base_len_ + tail_.size(); }
  bool empty() const { return size() == 0; }

  void push_back(T v) { tail_.push_back(std::move(v)); }

  // Membership over the full logical sequence (tail first: recent
  // constraints are the likeliest re-adds).
  bool contains(const T& v) const {
    for (const T& x : tail_) {
      if (x == v) return true;
    }
    for (const Seg* s = base_.get(); s != nullptr; s = s->prev.get()) {
      for (const T& x : s->items) {
        if (x == v) return true;
      }
    }
    return false;
  }

  // Visits every element in logical (append) order.
  template <typename F>
  void for_each(F&& f) const {
    const Seg* segs[kMaxDepth + 2];
    std::size_t n = 0;
    for (const Seg* s = base_.get(); s != nullptr; s = s->prev.get()) {
      segs[n++] = s;
    }
    while (n > 0) {
      for (const T& x : segs[--n]->items) f(x);
    }
    for (const T& x : tail_) f(x);
  }

  std::vector<T> materialize() const {
    std::vector<T> out;
    out.reserve(size());
    for_each([&out](const T& x) { out.push_back(x); });
    return out;
  }

  // Freezes the tail into the shared chain and returns a sibling sharing the
  // entire prefix. Both this and the sibling continue with empty tails;
  // neither can observe the other's future appends.
  CowVec fork() {
    freeze();
    CowVec c;
    c.base_ = base_;
    c.base_len_ = base_len_;
    return c;
  }

  // Bytes a fork actually copies (the mutable tail; the chain is shared).
  std::size_t shallow_bytes() const { return tail_.size() * sizeof(T); }
  // Bytes an eager clone would copy: the whole logical sequence.
  std::size_t logical_bytes() const { return size() * sizeof(T); }

 private:
  struct Seg {
    std::shared_ptr<const Seg> prev;
    std::vector<T> items;
    std::uint32_t depth{0};
  };

  static constexpr std::uint32_t kMaxDepth = 16;

  void freeze() {
    if (tail_.empty()) return;
    const std::uint32_t depth = base_ ? base_->depth + 1 : 0;
    auto seg = std::make_shared<Seg>();
    if (depth >= kMaxDepth) {
      // Collapse into one wide segment so read cost stays bounded.
      seg->items = materialize();
      base_len_ = seg->items.size();
    } else {
      seg->prev = base_;
      seg->items = std::move(tail_);
      seg->depth = depth;
      base_len_ += seg->items.size();
    }
    base_ = std::move(seg);
    tail_.clear();
  }

  std::shared_ptr<const Seg> base_;
  std::size_t base_len_{0};
  std::vector<T> tail_;
};

}  // namespace statsym::support
