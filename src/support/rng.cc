#include "support/rng.h"

#include <cassert>
#include <cmath>

namespace statsym {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 of any seed cannot
  // produce four zero words in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL / span) * span;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::weighted_pick(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  assert(total > 0.0);
  double r = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  // Floating-point slop: return the last positive-weight index.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return 0;
}

Rng Rng::split() { return Rng(next_u64()); }

std::uint64_t derive_seed(std::uint64_t master_seed, std::uint64_t task_index) {
  // Two SplitMix64 finalizer rounds over a golden-ratio-spaced combination.
  // One round already decorrelates adjacent indices; the second guards
  // against the master seed and index interacting through the low bits.
  std::uint64_t x = master_seed + (task_index + 1) * 0x9e3779b97f4a7c15ULL;
  x = splitmix64(x);
  return splitmix64(x);
}

}  // namespace statsym
