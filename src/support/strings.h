// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace statsym {

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

// True if `s` starts with / ends with the given prefix or suffix.
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

// Formats a double with `digits` decimals (fixed notation).
std::string fmt_double(double v, int digits);

// Parses a signed integer; returns false on malformed input or overflow.
bool parse_i64(std::string_view s, std::int64_t& out);

// Parses a double; returns false on malformed input.
bool parse_double(std::string_view s, double& out);

}  // namespace statsym
