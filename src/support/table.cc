#include "support/table.h"

#include <algorithm>
#include <cassert>

namespace statsym {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  assert(row.size() <= header_.size());
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(width[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  std::string out;
  emit_row(header_, out);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

}  // namespace statsym
