#include "support/stopwatch.h"

// Header-only today; the translation unit exists so the build exposes a
// stable object for the support library and future non-inline additions.
namespace statsym {}
