// Plain-text table rendering for benchmark output.
//
// The benchmark harness reproduces the paper's tables; this helper renders
// them with aligned columns so the rows can be compared to the paper
// side-by-side.
#pragma once

#include <string>
#include <vector>

namespace statsym {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Appends one row; missing cells render empty, extra cells are an error.
  void add_row(std::vector<std::string> row);

  // Renders with a header separator and 2-space column gaps.
  std::string render() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace statsym
