// Chase–Lev work-stealing deque over a fixed-capacity ring.
//
// One owner thread push()es and pop()s at the bottom (LIFO); any number of
// thieves steal() from the top (FIFO). The executor sizes each deque to the
// round's task count, so the ring can never overflow and no growth path is
// needed. Orderings are deliberately conservative (seq_cst on the indices):
// rounds hold a handful of task ids, so the cost is unmeasurable, and the
// classic fence-based formulation is both easy to get subtly wrong and
// invisible to ThreadSanitizer.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace statsym::support {

class WsDeque {
 public:
  explicit WsDeque(std::size_t capacity) : buf_(capacity > 0 ? capacity : 1) {}

  // Owner only; at most buf_.size() elements may ever be in flight.
  void push(std::uint32_t v) {
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    buf_[static_cast<std::size_t>(b) % buf_.size()].store(
        v, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  // Owner only; takes the most recently pushed element.
  bool pop(std::uint32_t& out) {
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // empty: restore
      bottom_.store(b + 1, std::memory_order_seq_cst);
      return false;
    }
    out = buf_[static_cast<std::size_t>(b) % buf_.size()].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Last element: race the thieves for it via the top index.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_seq_cst);
      bottom_.store(b + 1, std::memory_order_seq_cst);
      return won;
    }
    return true;
  }

  // Any thread; takes the oldest element. A false return may be spurious
  // (lost CAS) — callers treat it as "try elsewhere", not "empty forever".
  bool steal(std::uint32_t& out) {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;
    out = buf_[static_cast<std::size_t>(t) % buf_.size()].load(
        std::memory_order_relaxed);
    return top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_seq_cst);
  }

  bool empty() const {
    return top_.load(std::memory_order_seq_cst) >=
           bottom_.load(std::memory_order_seq_cst);
  }

 private:
  std::vector<std::atomic<std::uint32_t>> buf_;
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
};

}  // namespace statsym::support
