#include "support/strings.h"

#include <cerrno>
#include <cstdlib>
#include <cstdio>

namespace statsym {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

bool parse_i64(std::string_view s, std::int64_t& out) {
  if (s.empty()) return false;
  std::string tmp(s);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(tmp.c_str(), &end, 10);
  if (errno != 0 || end != tmp.c_str() + tmp.size()) return false;
  out = v;
  return true;
}

bool parse_double(std::string_view s, double& out) {
  if (s.empty()) return false;
  std::string tmp(s);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tmp.c_str(), &end);
  if (errno != 0 || end != tmp.c_str() + tmp.size()) return false;
  out = v;
  return true;
}

}  // namespace statsym
