// Deterministic, seedable pseudo-random number generation.
//
// Every stochastic component in the repository (workload generation, log
// sampling, random-path search, randomized solver probing) draws from an
// explicitly seeded Rng so that experiments and tests are reproducible
// bit-for-bit across runs and platforms. std::mt19937_64 is deliberately
// avoided for the core generator because its distributions are not
// cross-platform stable; we implement the distributions we need.
#pragma once

#include <cstdint>
#include <vector>

namespace statsym {

// xoshiro256** by Blackman & Vigna, seeded via SplitMix64. Small, fast, and
// with well-understood statistical quality; state is value-copyable so a
// component can snapshot and replay its stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Next raw 64-bit value.
  std::uint64_t next_u64();

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double uniform01();

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  // Picks an index in [0, weights.size()) proportionally to weights.
  // Zero/negative weights are treated as zero. Requires a positive total.
  std::size_t weighted_pick(const std::vector<double>& weights);

  // Splits off an independent generator (useful for per-run streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

// Derives the seed for parallel task `task_index` from a master seed.
//
// Unlike Rng::split(), which advances a serial stream (task k's seed depends
// on having drawn k-1 seeds before it), derive_seed is a pure function of
// (master_seed, task_index): any worker can compute its own seed without
// coordination, and the stream a task sees is independent of thread count,
// scheduling, or how many sibling tasks exist. This is what makes the
// parallel pipeline's output bit-identical to the sequential build.
std::uint64_t derive_seed(std::uint64_t master_seed, std::uint64_t task_index);

}  // namespace statsym
