// Aggregation of monitor logs into per-(location, variable) sample sets.
//
// The first step of the paper's statistical module (Fig. 5 steps (a)/(b)):
// runs are divided into correct and faulty executions and every logged
// value is bucketed by (instrumented location, variable) — the same
// variable at different locations is deliberately kept separate (§V-A).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "monitor/log.h"

namespace statsym::stats {

struct VarSamples {
  monitor::LocId loc{monitor::kNoLoc};
  std::string var;                 // display key, e.g. "suspect FUNCPARAM"
  monitor::VarKind kind{monitor::VarKind::kGlobal};
  bool is_len{false};
  std::vector<double> correct;     // observed values in correct runs
  std::vector<double> faulty;      // observed values in faulty runs
  std::size_t correct_runs{0};     // #correct runs observing this (loc,var)
  std::size_t faulty_runs{0};
};

class SampleSet {
 public:
  // Consumes a batch of run logs (mixed correct/faulty).
  void build(const std::vector<monitor::RunLog>& logs);

  const std::vector<VarSamples>& entries() const { return entries_; }

  std::size_t num_correct_runs() const { return num_correct_; }
  std::size_t num_faulty_runs() const { return num_faulty_; }

  // Number of runs (per class) with at least one record at `loc`.
  std::size_t loc_correct_runs(monitor::LocId loc) const;
  std::size_t loc_faulty_runs(monitor::LocId loc) const;

  // All locations observed anywhere in the logs.
  std::vector<monitor::LocId> locations() const;

 private:
  std::vector<VarSamples> entries_;
  std::map<std::pair<monitor::LocId, std::string>, std::size_t> index_;
  std::map<monitor::LocId, std::pair<std::size_t, std::size_t>> loc_runs_;
  std::size_t num_correct_{0};
  std::size_t num_faulty_{0};
};

}  // namespace statsym::stats
