// Location-transition mining (§V-B, Eq. 3).
//
// Because logging is partial, the control structure between instrumented
// locations must be reconstructed statistically: for locations ei, ej the
// confidence of the transition ei → ej is µ(ei,ej) = o(ei→ej) / o(ei),
// where o counts (consecutive-record) occurrences across the faulty logs —
// an association-rule-mining formulation. Edges with statistically
// significant confidence form the dynamic control-flow graph over which
// skeletons and detours are extracted.
//
// The miner is incremental: the o(·) tallies are plain sums over runs
// (TransSuff in stats/suff_stats.h), so ingest() folds shards or
// pre-reduced statistics in as they arrive and rerank() rebuilds the edge
// set from the accumulated counts without revisiting any log. Any ingest
// order yields a byte-identical graph.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "stats/suff_stats.h"

namespace statsym::stats {

struct TransitionGraphOptions {
  // µ significance threshold. Kept low: a transition leaving a hot loop
  // cluster (o(ei) in the thousands) toward a once-per-run successor has
  // tiny µ yet is structurally essential; support (min_count) carries the
  // significance instead.
  double min_confidence{0.002};
  std::size_t min_count{2};  // minimum o(ei→ej) support
  // Use faulty runs only (the paper mines transitions from faulty
  // executions); correct runs may be included for denser graphs.
  bool faulty_only{true};
};

struct Edge {
  monitor::LocId to{monitor::kNoLoc};
  double confidence{0.0};  // µ(from, to)
  std::size_t count{0};    // o(from → to)
};

class TransitionGraph {
 public:
  explicit TransitionGraph(TransitionGraphOptions opts = {});

  // --- incremental API ------------------------------------------------------
  // Folds observations into the per-class transition tallies. Cheap; does
  // NOT re-mine — call rerank() when the current wave of ingests is done.
  void ingest(const monitor::RunLog& log);
  void ingest(const monitor::LogShard& shard);
  void ingest(const SuffStats& suff);

  // Rebuilds nodes/edges from the accumulated tallies (honouring
  // faulty_only).
  void rerank();

  // --- one-shot batch API ---------------------------------------------------
  // Resets the tallies, ingests all logs, and reranks.
  void build(const std::vector<monitor::RunLog>& logs);

  // All nodes observed (in the runs used for mining).
  const std::vector<monitor::LocId>& nodes() const { return nodes_; }

  const std::vector<Edge>& successors(monitor::LocId loc) const;
  std::vector<monitor::LocId> predecessors(monitor::LocId loc) const;

  std::size_t occurrences(monitor::LocId loc) const;

  // Nodes without incoming edges — candidate program entry points (§V-B
  // step 1).
  std::vector<monitor::LocId> entry_nodes() const;

  // Robust entry candidate: the most frequent *first record* of the mined
  // logs. Partial logging fabricates in-degree-0 nodes deep inside the
  // program (their only incoming transition fell below the significance
  // threshold), so skeletons anchored on raw in-degree make short, bogus
  // paths win; the empirical first record pins the real program entry.
  // `min_fraction` is retained for API stability but unused.
  std::vector<monitor::LocId> entry_candidates(
      double min_fraction = 0.1) const;

  // The failure point. When the module is supplied, the fault function
  // recorded in the faulty logs (the crash report, which real deployments
  // have) pins it to that function's entry; the fallback is the most
  // frequent final record among faulty logs, which degrades under heavy
  // sampling when hot-loop records crowd out the true last event.
  // Returns kNoLoc when there are no faulty logs.
  static monitor::LocId failure_node(const SuffStats& suff,
                                     const ir::Module* m = nullptr);
  static monitor::LocId failure_node(const std::vector<monitor::RunLog>& logs,
                                     const ir::Module* m = nullptr);

  bool has_edge(monitor::LocId a, monitor::LocId b) const;

 private:
  TransitionGraphOptions opts_;
  TransSuff correct_suff_;
  TransSuff faulty_suff_;
  std::vector<monitor::LocId> nodes_;
  std::unordered_map<monitor::LocId, std::vector<Edge>> adj_;
  std::unordered_map<monitor::LocId, std::size_t> occ_;
  std::map<monitor::LocId, std::size_t> first_counts_;  // first-record tally
  std::size_t mined_logs_{0};
  static const std::vector<Edge> kNoEdges;
};

}  // namespace statsym::stats
