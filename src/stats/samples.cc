#include "stats/samples.h"

#include <set>

namespace statsym::stats {

void SampleSet::build(const std::vector<monitor::RunLog>& logs) {
  for (const auto& log : logs) {
    if (log.faulty) {
      ++num_faulty_;
    } else {
      ++num_correct_;
    }
    std::set<monitor::LocId> seen_locs;
    std::set<std::pair<monitor::LocId, std::string>> seen_vars;
    for (const auto& rec : log.records) {
      seen_locs.insert(rec.loc);
      for (const auto& v : rec.vars) {
        const auto key = std::make_pair(rec.loc, v.key());
        auto it = index_.find(key);
        if (it == index_.end()) {
          VarSamples vs;
          vs.loc = rec.loc;
          vs.var = v.key();
          vs.kind = v.kind;
          vs.is_len = v.is_len;
          index_.emplace(key, entries_.size());
          entries_.push_back(std::move(vs));
          it = index_.find(key);
        }
        VarSamples& vs = entries_[it->second];
        if (log.faulty) {
          vs.faulty.push_back(v.value);
        } else {
          vs.correct.push_back(v.value);
        }
        if (seen_vars.insert(key).second) {
          if (log.faulty) {
            ++vs.faulty_runs;
          } else {
            ++vs.correct_runs;
          }
        }
      }
    }
    for (monitor::LocId loc : seen_locs) {
      auto& [c, f] = loc_runs_[loc];
      if (log.faulty) {
        ++f;
      } else {
        ++c;
      }
    }
  }
}

std::size_t SampleSet::loc_correct_runs(monitor::LocId loc) const {
  auto it = loc_runs_.find(loc);
  return it == loc_runs_.end() ? 0 : it->second.first;
}

std::size_t SampleSet::loc_faulty_runs(monitor::LocId loc) const {
  auto it = loc_runs_.find(loc);
  return it == loc_runs_.end() ? 0 : it->second.second;
}

std::vector<monitor::LocId> SampleSet::locations() const {
  std::vector<monitor::LocId> out;
  out.reserve(loc_runs_.size());
  for (const auto& [loc, counts] : loc_runs_) out.push_back(loc);
  return out;
}

}  // namespace statsym::stats
