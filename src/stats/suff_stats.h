// Mergeable sufficient statistics for the whole statistical module.
//
// The Eq. 1 threshold fit and the Eq. 2 / Wilson scores depend on the raw
// logs only through per-(location, variable) class-conditional value
// histograms, per-class run counts, and the transition/first/last/fault-tag
// tallies the graph miner and failure-node picker read. SuffStats captures
// exactly that: every field is a sum over runs, so
//
//   * ingest(log) folds one run in and the log can be dropped immediately —
//     retained memory is bounded by the number of *distinct* observed
//     values, not the number of runs;
//   * merge(other) is associative and commutative (all containers are
//     ordered maps of counts), so shard-level statistics built in any order
//     on any worker fold into bit-identical totals — the same
//     schedule-invariant merge discipline MetricsRegistry established;
//   * a fit from SuffStats(logs) is byte-identical to the historical fit
//     from the raw log vector (all divisions see the same integers).
//
// This is the pivot of the streaming refactor (DESIGN.md §10): the batch
// pipeline builds one SuffStats from the full vector, the streaming
// pipeline folds LogShards as they complete, and everything downstream
// (PredicateManager, TransitionGraph, PathBuilder, failure node) consumes
// only SuffStats.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "monitor/log.h"

namespace statsym::monitor {
struct LogShard;
}

namespace statsym::stats {

// value -> multiplicity. Ordered so iteration (threshold-cut scanning,
// merging) is deterministic regardless of insertion order.
using ValueHist = std::map<double, std::uint64_t>;

// Per-(location, variable) sufficient statistics: the class-conditional
// value histograms behind one predicate fit.
struct VarSuff {
  monitor::LocId loc{monitor::kNoLoc};
  std::string var;  // identity key, e.g. "suspect FUNCPARAM"
  monitor::VarKind kind{monitor::VarKind::kGlobal};
  bool is_len{false};
  ValueHist correct;
  ValueHist faulty;
  // Sample counts with multiplicity (sums of the histograms).
  std::uint64_t correct_total{0};
  std::uint64_t faulty_total{0};
  // #runs (per class) with at least one observation of this (loc, var).
  std::uint64_t correct_runs{0};
  std::uint64_t faulty_runs{0};

  void add(bool faulty_class, double value, std::uint64_t n = 1);
  void merge(const VarSuff& o);
};

// Transition-mining tallies for one run class (correct or faulty): the
// counts Eq. 3's µ(ei,ej) = o(ei→ej)/o(ei) is computed from, plus the
// first/last-record tallies the entry and failure pickers use.
struct TransSuff {
  std::map<std::pair<monitor::LocId, monitor::LocId>, std::uint64_t> pairs;
  std::map<monitor::LocId, std::uint64_t> occ;
  std::map<monitor::LocId, std::uint64_t> first_counts;
  std::map<monitor::LocId, std::uint64_t> last_counts;
  std::uint64_t logs{0};  // non-empty logs tallied

  void ingest(const monitor::RunLog& log);
  void merge(const TransSuff& o);
};

class SuffStats {
 public:
  // Folds one run in. The log is fully absorbed — callers may drop it.
  void ingest(const monitor::RunLog& log);
  void ingest(const std::vector<monitor::RunLog>& logs);
  void ingest(const monitor::LogShard& shard);

  // Associative, commutative, schedule-invariant.
  void merge(const SuffStats& o);

  // --- per-variable statistics (the Eq. 1 / Eq. 2 inputs) -----------------
  const std::map<std::pair<monitor::LocId, std::string>, VarSuff>& vars()
      const {
    return vars_;
  }

  std::size_t num_correct_runs() const {
    return static_cast<std::size_t>(num_correct_);
  }
  std::size_t num_faulty_runs() const {
    return static_cast<std::size_t>(num_faulty_);
  }

  // Number of runs (per class) with at least one record at `loc`.
  std::size_t loc_correct_runs(monitor::LocId loc) const;
  std::size_t loc_faulty_runs(monitor::LocId loc) const;

  // All locations observed anywhere in the ingested runs.
  std::vector<monitor::LocId> locations() const;

  // --- transition statistics (Eq. 3 inputs) -------------------------------
  const TransSuff& trans(bool faulty) const {
    return faulty ? faulty_trans_ : correct_trans_;
  }

  // Fault-function tags of the ingested faulty runs (crash reports).
  const std::map<std::string, std::uint64_t>& fault_fn_counts() const {
    return fault_fn_counts_;
  }

  // --- accounting ---------------------------------------------------------
  // Serialized size of the ingested logs (monitor text format) — matches
  // serialize(all_logs).size() in any ingest/merge order.
  std::uint64_t log_bytes() const { return log_bytes_; }
  // Sum of per-run records_considered (sampling-rate accounting).
  std::uint64_t records_considered() const { return records_considered_; }

 private:
  std::map<std::pair<monitor::LocId, std::string>, VarSuff> vars_;
  std::map<monitor::LocId, std::pair<std::uint64_t, std::uint64_t>> loc_runs_;
  TransSuff correct_trans_;
  TransSuff faulty_trans_;
  std::map<std::string, std::uint64_t> fault_fn_counts_;
  std::uint64_t num_correct_{0};
  std::uint64_t num_faulty_{0};
  std::uint64_t log_bytes_{0};
  std::uint64_t records_considered_{0};
};

}  // namespace statsym::stats
