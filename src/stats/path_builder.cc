#include "stats/path_builder.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace statsym::stats {

const char* detour_type_name(Detour::Type t) {
  switch (t) {
    case Detour::Type::kForward: return "forward";
    case Detour::Type::kBackward: return "backward";
    case Detour::Type::kLoop: return "loop";
  }
  return "?";
}

PathBuilder::PathBuilder(const TransitionGraph& graph,
                         const PredicateManager& preds,
                         PathBuilderOptions opts)
    : graph_(graph), preds_(preds), opts_(opts) {}

double PathBuilder::avg_score(const std::vector<monitor::LocId>& nodes) const {
  if (nodes.empty()) return 0.0;
  double total = 0.0;
  for (monitor::LocId n : nodes) total += preds_.loc_score(n);
  return total / static_cast<double>(nodes.size());
}

std::vector<monitor::LocId> PathBuilder::find_skeleton(
    monitor::LocId failure) const {
  // Bounded DFS enumerating acyclic entry→failure paths, keeping the best
  // average-score one. Falls back to *all* nodes as potential starts when no
  // entry (in-degree 0) node reaches the failure point.
  std::vector<monitor::LocId> best;
  double best_score = -1.0;
  std::size_t enumerated = 0;
  std::size_t steps = 0;  // global work budget over all starts

  std::vector<monitor::LocId> path;
  std::set<monitor::LocId> on_path;

  auto dfs = [&](auto&& self, monitor::LocId cur) -> void {
    if (enumerated >= opts_.max_skeleton_paths) return;
    if (++steps >= opts_.max_dfs_steps) return;
    if (path.size() >= opts_.max_skeleton_len) return;
    path.push_back(cur);
    on_path.insert(cur);
    if (cur == failure) {
      ++enumerated;
      const double s = avg_score(path);
      if (s > best_score ||
          (s == best_score &&
           (best.empty() || path.size() < best.size()))) {
        best_score = s;
        best = path;
      }
    } else {
      for (const Edge& e : graph_.successors(cur)) {
        if (on_path.contains(e.to)) continue;
        self(self, e.to);
      }
    }
    on_path.erase(cur);
    path.pop_back();
  };

  std::vector<monitor::LocId> starts = graph_.entry_candidates();
  for (monitor::LocId s : starts) dfs(dfs, s);
  if (best.empty()) {
    for (monitor::LocId s : graph_.nodes()) {
      if (s == failure) continue;
      dfs(dfs, s);
    }
  }
  if (best.empty() && graph_.occurrences(failure) > 0) {
    best = {failure};  // degenerate single-node path
  }
  return best;
}

std::vector<Detour> PathBuilder::find_detours(
    const std::vector<monitor::LocId>& skeleton) const {
  std::vector<Detour> out;
  if (skeleton.empty()) return out;

  std::map<monitor::LocId, std::size_t> skel_index;
  for (std::size_t i = 0; i < skeleton.size(); ++i) {
    skel_index.emplace(skeleton[i], i);  // first occurrence wins
  }

  double best_skel_score = 0.0;
  for (monitor::LocId n : skeleton) {
    best_skel_score = std::max(best_skel_score, preds_.loc_score(n));
  }
  const double floor = best_skel_score * opts_.detour_score_ratio;

  // High-score locations not on the skeleton are the detour targets.
  std::vector<monitor::LocId> targets;
  for (monitor::LocId n : graph_.nodes()) {
    if (skel_index.contains(n)) continue;
    const double s = preds_.loc_score(n);
    if (s > 0.0 && s >= floor) targets.push_back(n);
  }

  // For each target, bounded BFS from skeleton nodes to the target and from
  // the target back to the skeleton gives the attach points.
  auto bfs_segment = [&](monitor::LocId from, monitor::LocId to,
                         std::vector<monitor::LocId>& via) -> bool {
    // BFS over off-skeleton intermediate nodes only (the detour body must
    // leave the skeleton).
    std::map<monitor::LocId, monitor::LocId> parent;
    std::vector<monitor::LocId> frontier{from};
    parent[from] = from;
    for (std::size_t hop = 0; hop < opts_.max_detour_hops; ++hop) {
      std::vector<monitor::LocId> next;
      for (monitor::LocId cur : frontier) {
        for (const Edge& e : graph_.successors(cur)) {
          if (parent.contains(e.to)) continue;
          parent[e.to] = cur;
          if (e.to == to) {
            // Reconstruct intermediates (exclusive of endpoints).
            std::vector<monitor::LocId> rev;
            for (monitor::LocId n = parent[to]; n != from; n = parent[n]) {
              rev.push_back(n);
            }
            via.assign(rev.rbegin(), rev.rend());
            return true;
          }
          if (!skel_index.contains(e.to)) next.push_back(e.to);
        }
      }
      frontier = std::move(next);
      if (frontier.empty()) break;
    }
    return false;
  };

  std::vector<Detour> all;
  for (monitor::LocId target : targets) {
    // Best (shortest) way in from the skeleton and back out to it.
    for (monitor::LocId s_in : skeleton) {
      std::vector<monitor::LocId> via_in;
      if (!bfs_segment(s_in, target, via_in)) continue;
      for (monitor::LocId s_out : skeleton) {
        std::vector<monitor::LocId> via_out;
        if (!bfs_segment(target, s_out, via_out)) continue;
        Detour d;
        d.start_idx = skel_index.at(s_in);
        d.end_idx = skel_index.at(s_out);
        d.via = via_in;
        d.via.push_back(target);
        d.via.insert(d.via.end(), via_out.begin(), via_out.end());
        d.avg_score = avg_score(d.via);
        all.push_back(std::move(d));
        break;  // first (nearest) rejoin point suffices for this entry
      }
      break;  // first (nearest) leave point suffices for this target
    }
  }

  // Per (attach location, type) keep only the best-average-score detour —
  // the paper's per-type heuristic (§VI-B).
  std::map<std::pair<std::size_t, Detour::Type>, Detour> best;
  for (auto& d : all) {
    const auto key = std::make_pair(d.start_idx, d.type());
    auto it = best.find(key);
    if (it == best.end() || d.avg_score > it->second.avg_score) {
      best[key] = std::move(d);
    }
  }
  // De-duplicate detours that ended up with identical node sequences.
  std::set<std::vector<monitor::LocId>> seen;
  for (auto& [key, d] : best) {
    if (seen.insert(d.via).second) out.push_back(std::move(d));
  }
  std::sort(out.begin(), out.end(), [](const Detour& a, const Detour& b) {
    if (a.avg_score != b.avg_score) return a.avg_score > b.avg_score;
    return a.start_idx < b.start_idx;
  });
  return out;
}

CandidatePath PathBuilder::join(
    const std::vector<monitor::LocId>& skeleton,
    const std::vector<const Detour*>& detours) const {
  // Detours are applied in skeleton order. A forward detour replaces the
  // skeleton segment it straddles; backward and loop detours splice a cycle
  // in at their start index. Overlapping forward detours are skipped.
  std::vector<const Detour*> ordered(detours.begin(), detours.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const Detour* a, const Detour* b) {
              if (a->start_idx != b->start_idx) {
                return a->start_idx < b->start_idx;
              }
              return a->avg_score > b->avg_score;
            });

  CandidatePath cp;
  std::size_t i = 0;
  std::size_t applied = 0;
  while (i < skeleton.size()) {
    cp.nodes.push_back(skeleton[i]);
    bool advanced = false;
    for (const Detour* d : ordered) {
      if (d->start_idx != i) continue;
      switch (d->type()) {
        case Detour::Type::kForward:
          cp.nodes.insert(cp.nodes.end(), d->via.begin(), d->via.end());
          i = d->end_idx;  // resume at rejoin point
          ++applied;
          advanced = true;
          break;
        case Detour::Type::kBackward:
        case Detour::Type::kLoop:
          // Splice the excursion and the replay of skeleton[end..start].
          cp.nodes.insert(cp.nodes.end(), d->via.begin(), d->via.end());
          for (std::size_t k = d->end_idx; k <= i && k < skeleton.size();
               ++k) {
            cp.nodes.push_back(skeleton[k]);
          }
          ++applied;
          break;
      }
      if (advanced) break;
    }
    if (!advanced) ++i;
  }
  cp.num_detours = applied;
  cp.avg_score = avg_score(cp.nodes);
  return cp;
}

std::optional<PathConstruction> PathBuilder::build(
    monitor::LocId failure, obs::TraceBuffer* trace) const {
  PathConstruction pc;
  pc.failure = failure;
  pc.skeleton = find_skeleton(failure);
  if (pc.skeleton.empty()) return std::nullopt;
  pc.detours = find_detours(pc.skeleton);

  // Candidate set: skeleton + all detours, skeleton + each single detour,
  // bare skeleton — ranked by average predicate score.
  std::vector<CandidatePath> cands;
  {
    std::vector<const Detour*> all;
    for (const auto& d : pc.detours) all.push_back(&d);
    if (!all.empty()) cands.push_back(join(pc.skeleton, all));
  }
  for (const auto& d : pc.detours) {
    cands.push_back(join(pc.skeleton, {&d}));
  }
  cands.push_back(join(pc.skeleton, {}));

  std::stable_sort(cands.begin(), cands.end(),
                   [](const CandidatePath& a, const CandidatePath& b) {
                     return a.avg_score > b.avg_score;
                   });
  // Drop exact duplicates (e.g. a detour that failed to apply).
  std::set<std::vector<monitor::LocId>> seen;
  for (auto& c : cands) {
    if (pc.candidates.size() >= opts_.max_candidates) break;
    if (seen.insert(c.nodes).second) pc.candidates.push_back(std::move(c));
  }

  if (trace != nullptr) {
    trace->emit(obs::EventKind::kNote,
                static_cast<std::int64_t>(pc.skeleton.size()),
                static_cast<std::int64_t>(pc.detours.size()),
                static_cast<std::int64_t>(failure), "skeleton");
    for (std::size_t i = 0; i < pc.candidates.size(); ++i) {
      const CandidatePath& c = pc.candidates[i];
      trace->emit(obs::EventKind::kCandidateRanked,
                  static_cast<std::int64_t>(i),
                  static_cast<std::int64_t>(c.nodes.size()),
                  std::llround(c.avg_score * 1e6));
    }
  }
  return pc;
}

}  // namespace statsym::stats
