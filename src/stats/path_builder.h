// Candidate vulnerable-path construction (§V-B, §VI-B).
//
// From the mined transition graph and the ranked predicates:
//   1. *Skeleton*: among acyclic paths from an entry node (no incoming
//      transition) to the failure node, the one with the largest average
//      node score (node score = best predicate score at that location).
//   2. *Detours*: path segments branching off the skeleton that visit
//      high-confidence predicate locations not on the skeleton, classified
//      by their skeleton attach indices into forward (start < end),
//      backward (start > end) and loop (start == end) types; per
//      (attach location, type) only the best-average-score detour is kept.
//   3. *Candidate paths*: the skeleton joined with subsets of detours,
//      ranked by average predicate score — the list handed one-by-one to
//      the guided symbolic executor (Fig. 5 step (e)).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "stats/predicate_manager.h"
#include "stats/transition_graph.h"

namespace statsym::stats {

struct Detour {
  enum class Type : std::uint8_t { kForward, kBackward, kLoop };

  std::size_t start_idx{0};  // skeleton index the detour leaves from
  std::size_t end_idx{0};    // skeleton index it rejoins
  std::vector<monitor::LocId> via;  // off-skeleton nodes visited, in order
  double avg_score{0.0};

  Type type() const {
    if (start_idx < end_idx) return Type::kForward;
    if (start_idx > end_idx) return Type::kBackward;
    return Type::kLoop;
  }
};

const char* detour_type_name(Detour::Type t);

struct CandidatePath {
  std::vector<monitor::LocId> nodes;
  double avg_score{0.0};
  std::size_t num_detours{0};
};

struct PathBuilderOptions {
  // Off-skeleton locations qualify as detour targets when their score is at
  // least this fraction of the best skeleton node score.
  double detour_score_ratio{0.5};
  // Bounded-search limits.
  std::size_t max_skeleton_paths{20'000};
  std::size_t max_dfs_steps{2'000'000};  // node visits across the whole search
  std::size_t max_skeleton_len{256};
  std::size_t max_detour_hops{6};
  std::size_t max_candidates{64};
};

struct PathConstruction {
  std::vector<monitor::LocId> skeleton;
  std::vector<Detour> detours;
  std::vector<CandidatePath> candidates;  // ranked, best first
  monitor::LocId failure{monitor::kNoLoc};
};

class PathBuilder {
 public:
  PathBuilder(const TransitionGraph& graph, const PredicateManager& preds,
              PathBuilderOptions opts = {});

  // Builds skeleton, detours and the ranked candidate list toward
  // `failure`. Returns nullopt when no entry→failure path exists.
  // Optionally emits one kCandidateRanked trace event per candidate, in
  // rank order, plus a kNote for the skeleton.
  std::optional<PathConstruction> build(
      monitor::LocId failure, obs::TraceBuffer* trace = nullptr) const;

 private:
  std::vector<monitor::LocId> find_skeleton(monitor::LocId failure) const;
  std::vector<Detour> find_detours(
      const std::vector<monitor::LocId>& skeleton) const;
  CandidatePath join(const std::vector<monitor::LocId>& skeleton,
                     const std::vector<const Detour*>& detours) const;
  double avg_score(const std::vector<monitor::LocId>& nodes) const;

  const TransitionGraph& graph_;
  const PredicateManager& preds_;
  PathBuilderOptions opts_;
};

}  // namespace statsym::stats
