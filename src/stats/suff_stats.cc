#include "stats/suff_stats.h"

#include <set>

#include "monitor/serialize.h"
#include "monitor/shard.h"

namespace statsym::stats {

void VarSuff::add(bool faulty_class, double value, std::uint64_t n) {
  if (faulty_class) {
    faulty[value] += n;
    faulty_total += n;
  } else {
    correct[value] += n;
    correct_total += n;
  }
}

void VarSuff::merge(const VarSuff& o) {
  for (const auto& [v, n] : o.correct) correct[v] += n;
  for (const auto& [v, n] : o.faulty) faulty[v] += n;
  correct_total += o.correct_total;
  faulty_total += o.faulty_total;
  correct_runs += o.correct_runs;
  faulty_runs += o.faulty_runs;
}

void TransSuff::ingest(const monitor::RunLog& log) {
  if (log.records.empty()) return;
  ++logs;
  ++first_counts[log.records.front().loc];
  ++last_counts[log.records.back().loc];
  for (std::size_t i = 0; i < log.records.size(); ++i) {
    ++occ[log.records[i].loc];
    if (i + 1 < log.records.size()) {
      ++pairs[{log.records[i].loc, log.records[i + 1].loc}];
    }
  }
}

void TransSuff::merge(const TransSuff& o) {
  for (const auto& [p, n] : o.pairs) pairs[p] += n;
  for (const auto& [l, n] : o.occ) occ[l] += n;
  for (const auto& [l, n] : o.first_counts) first_counts[l] += n;
  for (const auto& [l, n] : o.last_counts) last_counts[l] += n;
  logs += o.logs;
}

void SuffStats::ingest(const monitor::RunLog& log) {
  if (log.faulty) {
    ++num_faulty_;
    if (!log.fault_function.empty()) ++fault_fn_counts_[log.fault_function];
  } else {
    ++num_correct_;
  }
  log_bytes_ += monitor::serialized_size(log);
  records_considered_ += static_cast<std::uint64_t>(log.records_considered);
  (log.faulty ? faulty_trans_ : correct_trans_).ingest(log);

  std::set<monitor::LocId> seen_locs;
  std::set<std::pair<monitor::LocId, std::string>> seen_vars;
  for (const auto& rec : log.records) {
    seen_locs.insert(rec.loc);
    for (const auto& v : rec.vars) {
      auto key = std::make_pair(rec.loc, v.key());
      auto it = vars_.find(key);
      if (it == vars_.end()) {
        VarSuff vs;
        vs.loc = rec.loc;
        vs.var = key.second;
        vs.kind = v.kind;
        vs.is_len = v.is_len;
        it = vars_.emplace(key, std::move(vs)).first;
      }
      it->second.add(log.faulty, v.value);
      if (seen_vars.insert(std::move(key)).second) {
        ++(log.faulty ? it->second.faulty_runs : it->second.correct_runs);
      }
    }
  }
  for (monitor::LocId loc : seen_locs) {
    auto& [c, f] = loc_runs_[loc];
    ++(log.faulty ? f : c);
  }
}

void SuffStats::ingest(const std::vector<monitor::RunLog>& logs) {
  for (const auto& log : logs) ingest(log);
}

void SuffStats::ingest(const monitor::LogShard& shard) {
  for (const auto& log : shard.logs) ingest(log);
}

void SuffStats::merge(const SuffStats& o) {
  for (const auto& [key, vs] : o.vars_) {
    auto it = vars_.find(key);
    if (it == vars_.end()) {
      vars_.emplace(key, vs);
    } else {
      it->second.merge(vs);
    }
  }
  for (const auto& [loc, counts] : o.loc_runs_) {
    auto& [c, f] = loc_runs_[loc];
    c += counts.first;
    f += counts.second;
  }
  correct_trans_.merge(o.correct_trans_);
  faulty_trans_.merge(o.faulty_trans_);
  for (const auto& [fn, n] : o.fault_fn_counts_) fault_fn_counts_[fn] += n;
  num_correct_ += o.num_correct_;
  num_faulty_ += o.num_faulty_;
  log_bytes_ += o.log_bytes_;
  records_considered_ += o.records_considered_;
}

std::size_t SuffStats::loc_correct_runs(monitor::LocId loc) const {
  auto it = loc_runs_.find(loc);
  return it == loc_runs_.end() ? 0
                               : static_cast<std::size_t>(it->second.first);
}

std::size_t SuffStats::loc_faulty_runs(monitor::LocId loc) const {
  auto it = loc_runs_.find(loc);
  return it == loc_runs_.end() ? 0
                               : static_cast<std::size_t>(it->second.second);
}

std::vector<monitor::LocId> SuffStats::locations() const {
  std::vector<monitor::LocId> out;
  out.reserve(loc_runs_.size());
  for (const auto& [loc, counts] : loc_runs_) out.push_back(loc);
  return out;
}

}  // namespace statsym::stats
