#include "stats/predicate.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "support/strings.h"

namespace statsym::stats {

std::string Predicate::display() const {
  switch (pk) {
    case PredKind::kGt:
      return var + " > " + fmt_double(threshold, 1);
    case PredKind::kLt:
      return var + " < " + fmt_double(threshold, 1);
    case PredKind::kUnreached:
      return var + " < -infinity";
  }
  return var;
}

namespace {

// Counts samples satisfying a candidate predicate.
std::size_t count_holds(const std::vector<double>& vals, PredKind pk,
                        double thr) {
  Predicate tmp;
  tmp.pk = pk;
  tmp.threshold = thr;
  std::size_t n = 0;
  for (double v : vals) {
    if (tmp.holds(v)) ++n;
  }
  return n;
}

// Lower confidence bound on the class-probability gap |pf − pc|: the
// larger side's Wilson lower bound minus the smaller side's upper bound,
// clamped at 0. This is what score_lcb stores.
double gap_lcb(double pc, std::size_t nc, double pf, std::size_t nf,
               double z) {
  const double lo = pf >= pc ? wilson_lower(pf, nf, z) - wilson_upper(pc, nc, z)
                             : wilson_lower(pc, nc, z) - wilson_upper(pf, nf, z);
  return std::max(0.0, lo);
}

}  // namespace

double wilson_lower(double phat, std::size_t n, double z) {
  if (n == 0) return 0.0;
  if (z <= 0.0) return phat;
  const double nn = static_cast<double>(n);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = phat + z2 / (2.0 * nn);
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / nn + z2 / (4.0 * nn * nn));
  return std::max(0.0, (center - half) / denom);
}

double wilson_upper(double phat, std::size_t n, double z) {
  if (n == 0) return 1.0;
  if (z <= 0.0) return phat;
  return 1.0 - wilson_lower(1.0 - phat, n, z);
}

bool fit_predicate(const VarSamples& vs, std::size_t num_correct_runs,
                   std::size_t num_faulty_runs, Predicate& out,
                   double confidence_z) {
  out.loc = vs.loc;
  out.var = vs.var;
  out.kind = vs.kind;
  out.is_len = vs.is_len;

  if (vs.faulty.empty()) {
    if (vs.correct.empty() || num_faulty_runs == 0) return false;
    // The location/variable is only ever observed on correct runs: faulty
    // executions abort before reaching it. Score is the observation-rate
    // difference between the classes.
    out.pk = PredKind::kUnreached;
    out.threshold = -std::numeric_limits<double>::infinity();
    out.p_correct = num_correct_runs == 0
                        ? 0.0
                        : static_cast<double>(vs.correct_runs) /
                              static_cast<double>(num_correct_runs);
    out.p_faulty = 0.0;
    out.score = out.p_correct;
    out.error = vs.correct.size();  // |P ∩ C| with P = everything observed
    out.n_correct = num_correct_runs;
    out.n_faulty = num_faulty_runs;
    out.score_lcb = gap_lcb(out.p_correct, num_correct_runs, 0.0,
                            num_faulty_runs, confidence_z);
    return out.score > 0.0;
  }
  if (vs.correct.empty()) {
    // Only observed in faulty runs; a trivial "reached at all" indicator.
    // Encode as value > -inf, which every observation satisfies.
    out.pk = PredKind::kGt;
    out.threshold = -std::numeric_limits<double>::infinity();
    out.p_correct = 0.0;
    out.p_faulty = 1.0;
    out.score = num_correct_runs == 0
                    ? 0.0
                    : static_cast<double>(vs.faulty_runs) /
                          static_cast<double>(num_faulty_runs);
    out.error = 0;
    out.n_correct = num_correct_runs;
    out.n_faulty = num_faulty_runs;
    out.score_lcb = gap_lcb(0.0, num_correct_runs, out.score,
                            num_faulty_runs, confidence_z);
    return out.score > 0.0;
  }

  // Candidate thresholds: midpoints between adjacent distinct values of the
  // pooled sample.
  std::set<double> distinct(vs.correct.begin(), vs.correct.end());
  distinct.insert(vs.faulty.begin(), vs.faulty.end());
  if (distinct.size() < 2) return false;  // identical distributions

  std::vector<double> cuts;
  cuts.reserve(distinct.size() - 1);
  double prev = 0.0;
  bool first = true;
  for (double v : distinct) {
    if (!first) cuts.push_back((prev + v) / 2.0);
    prev = v;
    first = false;
  }

  bool found = false;
  std::size_t best_err = 0;
  double best_score = 0.0;
  for (double thr : cuts) {
    for (PredKind pk : {PredKind::kGt, PredKind::kLt}) {
      const std::size_t c_in = count_holds(vs.correct, pk, thr);
      const std::size_t f_in = count_holds(vs.faulty, pk, thr);
      // Eq. 1: correct samples captured by P plus faulty samples missed.
      const std::size_t err = c_in + (vs.faulty.size() - f_in);
      const double pc =
          static_cast<double>(c_in) / static_cast<double>(vs.correct.size());
      const double pf =
          static_cast<double>(f_in) / static_cast<double>(vs.faulty.size());
      const double score = std::abs(pc - pf);
      if (!found || err < best_err ||
          (err == best_err && score > best_score)) {
        found = true;
        best_err = err;
        best_score = score;
        out.pk = pk;
        out.threshold = thr;
        out.p_correct = pc;
        out.p_faulty = pf;
        out.score = score;
        out.error = err;
      }
    }
  }
  if (found) {
    out.n_correct = vs.correct.size();
    out.n_faulty = vs.faulty.size();
    out.score_lcb = gap_lcb(out.p_correct, out.n_correct, out.p_faulty,
                            out.n_faulty, confidence_z);
  }
  return found && out.score > 0.0;
}

}  // namespace statsym::stats
