#include "stats/predicate.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "support/strings.h"

namespace statsym::stats {

std::string Predicate::display() const {
  switch (pk) {
    case PredKind::kGt:
      return var + " > " + fmt_double(threshold, 1);
    case PredKind::kLt:
      return var + " < " + fmt_double(threshold, 1);
    case PredKind::kUnreached:
      return var + " < -infinity";
  }
  return var;
}

namespace {

// Counts samples (with multiplicity) satisfying a candidate predicate.
std::uint64_t count_holds(const ValueHist& hist, PredKind pk, double thr) {
  Predicate tmp;
  tmp.pk = pk;
  tmp.threshold = thr;
  std::uint64_t n = 0;
  for (const auto& [v, cnt] : hist) {
    if (tmp.holds(v)) n += cnt;
  }
  return n;
}

}  // namespace

double Predicate::recompute_score_lcb(double confidence_z) const {
  if (pk == PredKind::kUnreached) {
    // Observation-rate gap: p_correct is the rate, faulty never observes.
    return gap_lcb(p_correct, n_correct, 0.0, n_faulty, confidence_z);
  }
  if (pk == PredKind::kGt &&
      threshold == -std::numeric_limits<double>::infinity()) {
    // "Reached at all" indicator: the faulty side's rate is the score
    // (faulty_runs / num_faulty_runs), not the per-sample p_faulty.
    return gap_lcb(0.0, n_correct, score, n_faulty, confidence_z);
  }
  return gap_lcb(p_correct, n_correct, p_faulty, n_faulty, confidence_z);
}

bool fit_predicate(const VarSuff& vs, std::size_t num_correct_runs,
                   std::size_t num_faulty_runs, Predicate& out,
                   double confidence_z) {
  out.loc = vs.loc;
  out.var = vs.var;
  out.kind = vs.kind;
  out.is_len = vs.is_len;

  if (vs.faulty_total == 0) {
    if (vs.correct_total == 0 || num_faulty_runs == 0) return false;
    // The location/variable is only ever observed on correct runs: faulty
    // executions abort before reaching it. Score is the observation-rate
    // difference between the classes.
    out.pk = PredKind::kUnreached;
    out.threshold = -std::numeric_limits<double>::infinity();
    out.p_correct = num_correct_runs == 0
                        ? 0.0
                        : static_cast<double>(vs.correct_runs) /
                              static_cast<double>(num_correct_runs);
    out.p_faulty = 0.0;
    out.score = out.p_correct;
    // |P ∩ C| with P = everything observed.
    out.error = static_cast<std::size_t>(vs.correct_total);
    out.n_correct = num_correct_runs;
    out.n_faulty = num_faulty_runs;
    out.score_lcb = out.recompute_score_lcb(confidence_z);
    return out.score > 0.0;
  }
  if (vs.correct_total == 0) {
    // Only observed in faulty runs; a trivial "reached at all" indicator.
    // Encode as value > -inf, which every observation satisfies.
    out.pk = PredKind::kGt;
    out.threshold = -std::numeric_limits<double>::infinity();
    out.p_correct = 0.0;
    out.p_faulty = 1.0;
    out.score = num_correct_runs == 0
                    ? 0.0
                    : static_cast<double>(vs.faulty_runs) /
                          static_cast<double>(num_faulty_runs);
    out.error = 0;
    out.n_correct = num_correct_runs;
    out.n_faulty = num_faulty_runs;
    out.score_lcb = out.recompute_score_lcb(confidence_z);
    return out.score > 0.0;
  }

  // Candidate thresholds: midpoints between adjacent distinct values of the
  // pooled sample. The histogram keys are exactly the distinct values.
  std::set<double> distinct;
  for (const auto& [v, cnt] : vs.correct) distinct.insert(v);
  for (const auto& [v, cnt] : vs.faulty) distinct.insert(v);
  if (distinct.size() < 2) return false;  // identical distributions

  std::vector<double> cuts;
  cuts.reserve(distinct.size() - 1);
  double prev = 0.0;
  bool first = true;
  for (double v : distinct) {
    if (!first) cuts.push_back((prev + v) / 2.0);
    prev = v;
    first = false;
  }

  bool found = false;
  std::size_t best_err = 0;
  double best_score = 0.0;
  for (double thr : cuts) {
    for (PredKind pk : {PredKind::kGt, PredKind::kLt}) {
      const std::uint64_t c_in = count_holds(vs.correct, pk, thr);
      const std::uint64_t f_in = count_holds(vs.faulty, pk, thr);
      // Eq. 1: correct samples captured by P plus faulty samples missed.
      const std::size_t err =
          static_cast<std::size_t>(c_in + (vs.faulty_total - f_in));
      const double pc =
          static_cast<double>(c_in) / static_cast<double>(vs.correct_total);
      const double pf =
          static_cast<double>(f_in) / static_cast<double>(vs.faulty_total);
      const double score = std::abs(pc - pf);
      if (!found || err < best_err ||
          (err == best_err && score > best_score)) {
        found = true;
        best_err = err;
        best_score = score;
        out.pk = pk;
        out.threshold = thr;
        out.p_correct = pc;
        out.p_faulty = pf;
        out.score = score;
        out.error = err;
      }
    }
  }
  if (found) {
    out.n_correct = static_cast<std::size_t>(vs.correct_total);
    out.n_faulty = static_cast<std::size_t>(vs.faulty_total);
    out.score_lcb = out.recompute_score_lcb(confidence_z);
  }
  return found && out.score > 0.0;
}

}  // namespace statsym::stats
