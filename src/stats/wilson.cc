#include "stats/wilson.h"

#include <algorithm>
#include <cmath>

namespace statsym::stats {

double wilson_lower(double phat, std::size_t n, double z) {
  if (n == 0) return 0.0;
  if (z <= 0.0) return phat;
  const double nn = static_cast<double>(n);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = phat + z2 / (2.0 * nn);
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / nn + z2 / (4.0 * nn * nn));
  return std::max(0.0, (center - half) / denom);
}

double wilson_upper(double phat, std::size_t n, double z) {
  if (n == 0) return 1.0;
  if (z <= 0.0) return phat;
  return 1.0 - wilson_lower(1.0 - phat, n, z);
}

double gap_lcb(double pc, std::size_t nc, double pf, std::size_t nf,
               double z) {
  const double lo = pf >= pc ? wilson_lower(pf, nf, z) - wilson_upper(pc, nc, z)
                             : wilson_lower(pc, nc, z) - wilson_upper(pf, nf, z);
  return std::max(0.0, lo);
}

}  // namespace statsym::stats
