#include "stats/transition_graph.h"

#include <algorithm>
#include <set>

#include "monitor/shard.h"

namespace statsym::stats {

const std::vector<Edge> TransitionGraph::kNoEdges;

TransitionGraph::TransitionGraph(TransitionGraphOptions opts) : opts_(opts) {}

void TransitionGraph::ingest(const monitor::RunLog& log) {
  (log.faulty ? faulty_suff_ : correct_suff_).ingest(log);
}

void TransitionGraph::ingest(const monitor::LogShard& shard) {
  for (const auto& log : shard.logs) ingest(log);
}

void TransitionGraph::ingest(const SuffStats& suff) {
  correct_suff_.merge(suff.trans(false));
  faulty_suff_.merge(suff.trans(true));
}

void TransitionGraph::build(const std::vector<monitor::RunLog>& logs) {
  correct_suff_ = TransSuff{};
  faulty_suff_ = TransSuff{};
  for (const auto& log : logs) ingest(log);
  rerank();
}

void TransitionGraph::rerank() {
  nodes_.clear();
  adj_.clear();
  occ_.clear();
  first_counts_.clear();
  mined_logs_ = 0;

  // The mined tallies: faulty runs always, plus correct runs when
  // configured. Counts are sums, so folding the per-class accumulators
  // together reproduces the historical single-pass tallies exactly.
  TransSuff mined;
  mined.merge(faulty_suff_);
  if (!opts_.faulty_only) mined.merge(correct_suff_);

  mined_logs_ = static_cast<std::size_t>(mined.logs);
  for (const auto& [loc, n] : mined.first_counts) {
    first_counts_[loc] = static_cast<std::size_t>(n);
  }
  for (const auto& [loc, n] : mined.occ) {
    occ_[loc] = static_cast<std::size_t>(n);
  }

  std::set<monitor::LocId> node_set;
  for (const auto& [loc, n] : occ_) node_set.insert(loc);
  nodes_.assign(node_set.begin(), node_set.end());

  for (const auto& [pair, count] : mined.pairs) {
    if (count < opts_.min_count) continue;
    const auto from_occ = occ_[pair.first];
    const double mu =
        from_occ == 0 ? 0.0
                      : static_cast<double>(count) / static_cast<double>(from_occ);
    if (mu < opts_.min_confidence) continue;
    adj_[pair.first].push_back(
        {pair.second, mu, static_cast<std::size_t>(count)});
  }
  for (auto& [loc, edges] : adj_) {
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
      if (a.confidence != b.confidence) return a.confidence > b.confidence;
      return a.to < b.to;
    });
  }
}

const std::vector<Edge>& TransitionGraph::successors(monitor::LocId loc) const {
  auto it = adj_.find(loc);
  return it == adj_.end() ? kNoEdges : it->second;
}

std::vector<monitor::LocId> TransitionGraph::predecessors(
    monitor::LocId loc) const {
  std::vector<monitor::LocId> out;
  for (const auto& [from, edges] : adj_) {
    for (const Edge& e : edges) {
      if (e.to == loc) {
        out.push_back(from);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t TransitionGraph::occurrences(monitor::LocId loc) const {
  auto it = occ_.find(loc);
  return it == occ_.end() ? 0 : it->second;
}

std::vector<monitor::LocId> TransitionGraph::entry_nodes() const {
  std::set<monitor::LocId> has_incoming;
  for (const auto& [from, edges] : adj_) {
    for (const Edge& e : edges) {
      // Self-loops do not make a node non-entry.
      if (e.to != from) has_incoming.insert(e.to);
    }
  }
  std::vector<monitor::LocId> out;
  for (monitor::LocId n : nodes_) {
    if (!has_incoming.contains(n)) out.push_back(n);
  }
  return out;
}

std::vector<monitor::LocId> TransitionGraph::entry_candidates(
    double min_fraction) const {
  (void)min_fraction;
  if (mined_logs_ == 0) return entry_nodes();
  // The modal first record is the program entry with overwhelming
  // probability: any other location opens a log only when sampling dropped
  // every earlier record, which is geometrically less likely per position.
  // Anchoring the skeleton at the true entry also counters the
  // short-path bias of the max-average-score criterion — paths starting
  // mid-program consist purely of high-scoring post-fault-relevant nodes
  // and would otherwise always win over the real entry-to-failure route.
  monitor::LocId best = monitor::kNoLoc;
  std::size_t best_n = 0;
  for (const auto& [loc, n] : first_counts_) {
    if (n > best_n) {
      best = loc;
      best_n = n;
    }
  }
  if (best == monitor::kNoLoc) return entry_nodes();
  return {best};
}

monitor::LocId TransitionGraph::failure_node(const SuffStats& suff,
                                             const ir::Module* m) {
  if (m != nullptr) {
    std::string best_fn;
    std::uint64_t best_fn_n = 0;
    for (const auto& [fn, n] : suff.fault_fn_counts()) {
      if (n > best_fn_n) {
        best_fn = fn;
        best_fn_n = n;
      }
    }
    if (!best_fn.empty()) {
      const ir::FuncId f = m->find_function(best_fn);
      if (f != ir::kNoFunc) return monitor::enter_loc(f);
    }
  }
  monitor::LocId best = monitor::kNoLoc;
  std::uint64_t best_n = 0;
  for (const auto& [loc, n] : suff.trans(true).last_counts) {
    if (n > best_n) {
      best = loc;
      best_n = n;
    }
  }
  return best;
}

monitor::LocId TransitionGraph::failure_node(
    const std::vector<monitor::RunLog>& logs, const ir::Module* m) {
  if (m != nullptr) {
    std::map<std::string, std::size_t> fn_counts;
    for (const auto& log : logs) {
      if (log.faulty && !log.fault_function.empty()) {
        ++fn_counts[log.fault_function];
      }
    }
    std::string best_fn;
    std::size_t best_fn_n = 0;
    for (const auto& [fn, n] : fn_counts) {
      if (n > best_fn_n) {
        best_fn = fn;
        best_fn_n = n;
      }
    }
    if (!best_fn.empty()) {
      const ir::FuncId f = m->find_function(best_fn);
      if (f != ir::kNoFunc) return monitor::enter_loc(f);
    }
  }
  std::map<monitor::LocId, std::size_t> last_counts;
  for (const auto& log : logs) {
    if (!log.faulty || log.records.empty()) continue;
    ++last_counts[log.records.back().loc];
  }
  monitor::LocId best = monitor::kNoLoc;
  std::size_t best_n = 0;
  for (const auto& [loc, n] : last_counts) {
    if (n > best_n) {
      best = loc;
      best_n = n;
    }
  }
  return best;
}

bool TransitionGraph::has_edge(monitor::LocId a, monitor::LocId b) const {
  for (const Edge& e : successors(a)) {
    if (e.to == b) return true;
  }
  return false;
}

}  // namespace statsym::stats
