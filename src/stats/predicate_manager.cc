#include "stats/predicate_manager.h"

#include <algorithm>

namespace statsym::stats {

PredicateManager::PredicateManager(PredicateManagerOptions opts)
    : opts_(opts) {}

void PredicateManager::build(const SampleSet& samples) {
  ranked_.clear();
  loc_scores_.clear();

  for (const auto& vs : samples.entries()) {
    if (!vs.correct.empty() && !vs.faulty.empty() &&
        (vs.correct.size() < opts_.min_class_samples ||
         vs.faulty.size() < opts_.min_class_samples)) {
      continue;
    }
    Predicate p;
    if (!fit_predicate(vs, samples.num_correct_runs(),
                       samples.num_faulty_runs(), p)) {
      continue;
    }
    if (p.score < opts_.score_floor) continue;
    ranked_.push_back(std::move(p));
  }

  std::stable_sort(ranked_.begin(), ranked_.end(),
                   [&](const Predicate& a, const Predicate& b) {
                     if (a.score != b.score) return a.score > b.score;
                     if (opts_.prefer_threshold_kind &&
                         (a.pk == PredKind::kUnreached) !=
                             (b.pk == PredKind::kUnreached)) {
                       return b.pk == PredKind::kUnreached;
                     }
                     if (a.loc != b.loc) return a.loc < b.loc;
                     return a.var < b.var;
                   });

  for (const auto& p : ranked_) {
    auto [it, inserted] = loc_scores_.try_emplace(p.loc, p.score);
    if (!inserted) it->second = std::max(it->second, p.score);
  }
}

std::vector<Predicate> PredicateManager::top(std::size_t k) const {
  return {ranked_.begin(),
          ranked_.begin() + static_cast<std::ptrdiff_t>(
                                std::min(k, ranked_.size()))};
}

std::vector<Predicate> PredicateManager::at(monitor::LocId loc) const {
  std::vector<Predicate> out;
  for (const auto& p : ranked_) {
    if (p.loc == loc) out.push_back(p);
  }
  return out;
}

double PredicateManager::loc_score(monitor::LocId loc) const {
  auto it = loc_scores_.find(loc);
  return it == loc_scores_.end() ? 0.0 : it->second;
}

}  // namespace statsym::stats
