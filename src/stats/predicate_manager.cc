#include "stats/predicate_manager.h"

#include <algorithm>
#include <cmath>

namespace statsym::stats {

PredicateManager::PredicateManager(PredicateManagerOptions opts)
    : opts_(opts) {}

void PredicateManager::ingest(const monitor::RunLog& log) {
  suff_.ingest(log);
}

void PredicateManager::ingest(const monitor::LogShard& shard) {
  suff_.ingest(shard);
}

void PredicateManager::ingest(const SuffStats& suff) { suff_.merge(suff); }

void PredicateManager::build(const SuffStats& suff,
                             obs::TraceBuffer* trace) {
  suff_ = SuffStats{};
  suff_.merge(suff);
  rerank(trace);
}

void PredicateManager::rerank(obs::TraceBuffer* trace) {
  ranked_.clear();
  loc_scores_.clear();

  for (const auto& [key, vs] : suff_.vars()) {
    if (vs.correct_total != 0 && vs.faulty_total != 0 &&
        (vs.correct_total < opts_.min_class_samples ||
         vs.faulty_total < opts_.min_class_samples)) {
      continue;
    }
    Predicate p;
    if (!fit_predicate(vs, suff_.num_correct_runs(), suff_.num_faulty_runs(),
                       p, opts_.confidence_z)) {
      continue;
    }
    if (p.score < opts_.score_floor) continue;
    ranked_.push_back(std::move(p));
  }

  std::stable_sort(ranked_.begin(), ranked_.end(),
                   [&](const Predicate& a, const Predicate& b) {
                     if (a.score != b.score) return a.score > b.score;
                     // At equal raw score, better-supported wins (higher
                     // confidence lower bound).
                     if (a.score_lcb != b.score_lcb) {
                       return a.score_lcb > b.score_lcb;
                     }
                     if (opts_.prefer_threshold_kind &&
                         (a.pk == PredKind::kUnreached) !=
                             (b.pk == PredKind::kUnreached)) {
                       return b.pk == PredKind::kUnreached;
                     }
                     if (a.loc != b.loc) return a.loc < b.loc;
                     return a.var < b.var;
                   });

  for (const auto& p : ranked_) {
    auto [it, inserted] = loc_scores_.try_emplace(p.loc, p.score);
    if (!inserted) it->second = std::max(it->second, p.score);
  }

  if (trace != nullptr) {
    for (std::size_t i = 0; i < ranked_.size(); ++i) {
      const Predicate& p = ranked_[i];
      trace->emit(obs::EventKind::kPredicateFit,
                  static_cast<std::int64_t>(i),
                  static_cast<std::int64_t>(p.loc),
                  std::llround(p.score * 1e6), p.display());
    }
  }
}

std::vector<Predicate> PredicateManager::top(std::size_t k) const {
  return {ranked_.begin(),
          ranked_.begin() + static_cast<std::ptrdiff_t>(
                                std::min(k, ranked_.size()))};
}

std::vector<Predicate> PredicateManager::at(monitor::LocId loc) const {
  std::vector<Predicate> out;
  for (const auto& p : ranked_) {
    if (p.loc == loc) out.push_back(p);
  }
  return out;
}

double PredicateManager::loc_score(monitor::LocId loc) const {
  auto it = loc_scores_.find(loc);
  return it == loc_scores_.end() ? 0.0 : it->second;
}

}  // namespace statsym::stats
