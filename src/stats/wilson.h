// Wilson score-interval math, shared by the Eq. 2 fitter and every consumer
// that gates on confidence-adjusted scores.
//
// This is the single home of the binomial-bound arithmetic: predicate
// fitting (stats/predicate.cc) computes Predicate::score_lcb with gap_lcb(),
// and guidance's injection gate (statsym/guidance.cc) recomputes the same
// bound through the same helper, so the two can never drift apart.
#pragma once

#include <cstddef>

namespace statsym::stats {

// Wilson score interval bounds for a binomial proportion: the smallest /
// largest true p consistent (at z standard errors) with observing phat * n
// successes in n trials. z = 0 degenerates to phat; n = 0 returns the
// uninformative bound (0 for lower, 1 for upper).
double wilson_lower(double phat, std::size_t n, double z);
double wilson_upper(double phat, std::size_t n, double z);

// Lower confidence bound on the class-probability gap |pf − pc|: the larger
// side's Wilson lower bound minus the smaller side's upper bound, clamped at
// 0. This is what Predicate::score_lcb stores.
double gap_lcb(double pc, std::size_t nc, double pf, std::size_t nf,
               double z);

}  // namespace statsym::stats
