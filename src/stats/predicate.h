// Predicates over logged program state, and threshold fitting (§V-A).
//
// For a variable `a` at an instrumented location with value sets C (correct
// runs) and F (faulty runs), the paper constructs x = {a ∈ P} minimising the
// quantification error  E = |P ∩ C| + |Pᶜ ∩ F|  (Eq. 1), then scores it by
// s = |P(x|C) − P(x|F)| (Eq. 2). For scalar observations, the optimal P of
// threshold form is found by scanning candidate cut points (midpoints of
// adjacent distinct observed values) in both directions (a > σ and a < σ).
//
// The fit consumes the class-conditional value *histograms* of a VarSuff
// (stats/suff_stats.h) — the sufficient statistics — so it costs
// O(distinct values), is independent of how many runs were ingested, and is
// byte-identical whether those histograms were built in one batch or merged
// from shards in any order.
//
// A variable observed in correct runs but never in faulty runs gets the
// paper's "a < -infinity" predicate (Table V, P7–P10): the location is
// evidence of *non*-failure, the score being the observation-rate gap.
#pragma once

#include <string>
#include <vector>

#include "stats/suff_stats.h"
#include "stats/wilson.h"

namespace statsym::stats {

enum class PredKind : std::uint8_t {
  kGt,         // value > threshold
  kLt,         // value < threshold
  kUnreached,  // "value < -infinity": (loc,var) never observed in faulty runs
};

struct Predicate {
  monitor::LocId loc{monitor::kNoLoc};
  std::string var;  // display key, e.g. "len(suspect FUNCPARAM)"
  monitor::VarKind kind{monitor::VarKind::kGlobal};
  bool is_len{false};
  PredKind pk{PredKind::kGt};
  double threshold{0.0};

  double score{0.0};     // Eq. 2 confidence score
  double p_correct{0.0};  // P(x | C)
  double p_faulty{0.0};   // P(x | F)
  std::size_t error{0};   // Eq. 1 quantification error on the samples

  // Sample support behind p_correct / p_faulty (samples for threshold
  // predicates, runs for the observation-rate kinds).
  std::size_t n_correct{0};
  std::size_t n_faulty{0};
  // Starvation-aware score: a Wilson lower confidence bound on |P(x|C) −
  // P(x|F)| (stats/wilson.h). The plug-in Eq. 2 score treats 7-of-10
  // samples the same as 700-of-1000; under log starvation that lets
  // accidental separators reach guidance-grade scores, and injecting them
  // suspends every on-path state. score_lcb shrinks toward 0 as support
  // thins (score_lcb <= score always, converging to score as samples grow),
  // so consumers that *act* on a predicate gate on it, while
  // ranking/reporting keep the paper's score.
  double score_lcb{0.0};

  bool holds(double v) const {
    switch (pk) {
      case PredKind::kGt: return v > threshold;
      case PredKind::kLt: return v < threshold;
      case PredKind::kUnreached: return false;
    }
    return false;
  }

  // "len(suspect FUNCPARAM) > 536.5" (paper Table V style).
  std::string display() const;

  // Recomputes the Wilson bound from the stored rates and support through
  // stats::gap_lcb, branch-aware (the observation-rate kinds compare rates,
  // not per-sample probabilities). For any fitted predicate, calling this
  // with the fitting z reproduces the stored score_lcb exactly — this is
  // the one function consumers (e.g. guidance's injection gate) use to
  // re-derive confidence at their own z.
  double recompute_score_lcb(double confidence_z) const;
};

// Fits the best threshold predicate for one (loc, var) sufficient-statistic
// entry. Requires at least one sample in each class; for the unreached case
// (no faulty samples) returns the kUnreached predicate scored by the
// observation-rate difference. Returns false when no meaningful predicate
// exists (e.g. no correct samples either, or zero score). confidence_z
// controls the score_lcb shrinkage (0 makes score_lcb == score).
bool fit_predicate(const VarSuff& vs, std::size_t num_correct_runs,
                   std::size_t num_faulty_runs, Predicate& out,
                   double confidence_z = 2.0);

}  // namespace statsym::stats
