// The Predicate Manager (§VI-B): builds every (location, variable)
// predicate from the sampled logs, ranks them by confidence score (Fig. 5
// step (d)), and serves per-location score queries to the path constructor
// and the guided symbolic executor.
#pragma once

#include <unordered_map>
#include <vector>

#include "obs/trace.h"
#include "stats/predicate.h"

namespace statsym::stats {

struct PredicateManagerOptions {
  // Minimum samples in a class before a threshold is trusted (noise guard).
  std::size_t min_class_samples{1};
  // Predicates scoring below this are dropped outright.
  double score_floor{1e-9};
  // Wilson-bound z for score_lcb (see Predicate::score_lcb); 0 disables the
  // starvation shrinkage and makes score_lcb equal the raw score.
  double confidence_z{2.0};
  // Threshold predicates outrank unreached predicates at equal score
  // (matches the ordering in the paper's Table V).
  bool prefer_threshold_kind{true};
};

class PredicateManager {
 public:
  explicit PredicateManager(PredicateManagerOptions opts = {});

  // Optionally emits one kPredicateFit trace event per ranked predicate
  // (rank order, so the stream is independent of fit order).
  void build(const SampleSet& samples, obs::TraceBuffer* trace = nullptr);

  // All surviving predicates, best first.
  const std::vector<Predicate>& ranked() const { return ranked_; }

  std::vector<Predicate> top(std::size_t k) const;

  // Predicates at a specific location, best first.
  std::vector<Predicate> at(monitor::LocId loc) const;

  // Highest predicate score at a location (0 when none) — the node score
  // used for skeleton/detour selection (§V-B step 1).
  double loc_score(monitor::LocId loc) const;

 private:
  PredicateManagerOptions opts_;
  std::vector<Predicate> ranked_;
  std::unordered_map<monitor::LocId, double> loc_scores_;
};

}  // namespace statsym::stats
