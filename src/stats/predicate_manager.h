// The Predicate Manager (§VI-B): fits every (location, variable) predicate
// from sufficient statistics, ranks them by confidence score (Fig. 5 step
// (d)), and serves per-location score queries to the path constructor and
// the guided symbolic executor.
//
// The manager is incremental: ingest() folds more observations (a shard, a
// single run, or pre-reduced SuffStats) into its internal statistics, and
// rerank() refits and re-ranks from those statistics without ever touching
// the raw logs again. Because SuffStats::merge is schedule-invariant, the
// ranking after any sequence of ingests is byte-identical to a one-shot
// batch build over the same runs.
#pragma once

#include <unordered_map>
#include <vector>

#include "obs/trace.h"
#include "stats/predicate.h"
#include "stats/suff_stats.h"

namespace statsym::stats {

struct PredicateManagerOptions {
  // Minimum samples in a class before a threshold is trusted (noise guard).
  std::size_t min_class_samples{1};
  // Predicates scoring below this are dropped outright.
  double score_floor{1e-9};
  // Wilson-bound z for score_lcb (see Predicate::score_lcb); 0 disables the
  // starvation shrinkage and makes score_lcb equal the raw score.
  double confidence_z{2.0};
  // Threshold predicates outrank unreached predicates at equal score
  // (matches the ordering in the paper's Table V).
  bool prefer_threshold_kind{true};
};

class PredicateManager {
 public:
  explicit PredicateManager(PredicateManagerOptions opts = {});

  // --- incremental API ------------------------------------------------------
  // Folds observations into the internal sufficient statistics. Cheap; does
  // NOT refit — call rerank() when the current wave of ingests is done.
  void ingest(const monitor::RunLog& log);
  void ingest(const monitor::LogShard& shard);
  void ingest(const SuffStats& suff);

  // Refits and re-ranks every predicate from the accumulated statistics.
  // Optionally emits one kPredicateFit trace event per ranked predicate
  // (rank order, so the stream is independent of fit/ingest order).
  void rerank(obs::TraceBuffer* trace = nullptr);

  // --- one-shot batch API ---------------------------------------------------
  // Resets the accumulated statistics to `suff` and reranks.
  void build(const SuffStats& suff, obs::TraceBuffer* trace = nullptr);

  // The accumulated sufficient statistics.
  const SuffStats& suff() const { return suff_; }

  // All surviving predicates, best first (as of the last rerank/build).
  const std::vector<Predicate>& ranked() const { return ranked_; }

  std::vector<Predicate> top(std::size_t k) const;

  // Predicates at a specific location, best first.
  std::vector<Predicate> at(monitor::LocId loc) const;

  // Highest predicate score at a location (0 when none) — the node score
  // used for skeleton/detour selection (§V-B step 1).
  double loc_score(monitor::LocId loc) const;

 private:
  PredicateManagerOptions opts_;
  SuffStats suff_;
  std::vector<Predicate> ranked_;
  std::unordered_map<monitor::LocId, double> loc_scores_;
};

}  // namespace statsym::stats
