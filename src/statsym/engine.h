// The end-to-end StatSym pipeline (Fig. 3 / Fig. 5): workload execution
// under the sampling monitor → predicate construction and ranking →
// candidate-path construction → statistics-guided symbolic execution over
// the ranked candidates until the vulnerable path is verified.
//
// Phases 1a and 3 are embarrassingly parallel and run on a worker pool
// (EngineOptions::num_threads): workload runs fan out with per-run derived
// seeds and merge in run order; the top candidates execute as a portfolio
// in which the first verified vuln cancels every worse-ranked worker. Both
// phases produce results identical to the single-threaded build.
//
// Log ingestion has two modes (DESIGN.md §10):
//   * batch (default): every admitted RunLog is retained in one vector and
//     the statistics are fit from it in a single pass;
//   * streaming (EngineOptions::stream): admitted logs are grouped into
//     LogShards (monitor/shard.h) and folded into per-cluster mergeable
//     sufficient statistics (stats/suff_stats.h) the moment each shard
//     completes; the raw logs are dropped after the fold, so peak retained
//     log memory is O(shard size) instead of O(total runs).
// Both modes drive the identical fit path (run_on), and because every
// statistic is a schedule-invariant sum, the streamed results — predicate
// set, scores, score_lcb, candidate ranking — are byte-identical to the
// batch results at any shard size and any thread count.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string_view>
#include <vector>

#include "analysis/facts.h"
#include "monitor/monitor.h"
#include "monitor/shard.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "statsym/guidance.h"
#include "stats/path_builder.h"
#include "stats/predicate_manager.h"
#include "stats/suff_stats.h"
#include "stats/transition_graph.h"
#include "symexec/executor.h"

namespace statsym::core {

// The engines that can race in Phase 3 (DESIGN.md §11). Guided is the
// classic statistics-guided portfolio over ranked candidate paths; pure is
// the unguided KLEE-style baseline; concolic is the generational-search DSE
// backend (src/concolic/).
enum class EngineKind : std::uint8_t { kGuided, kPure, kConcolic };

const char* engine_kind_name(EngineKind k);
std::optional<EngineKind> parse_engine_kind(std::string_view s);
// Parses a comma-separated lane list ("guided,pure,concolic", order =
// priority). Empty input or any unknown name yields nullopt.
std::optional<std::vector<EngineKind>> parse_engines(std::string_view csv);

struct EngineOptions {
  monitor::MonitorOptions monitor{};     // sampling rate etc.
  std::size_t target_correct_logs{100};  // logs per class (paper: 100 + 100)
  std::size_t target_faulty_logs{100};
  std::size_t max_workload_runs{10'000};

  stats::PredicateManagerOptions predicates{};
  stats::TransitionGraphOptions graph{};
  stats::PathBuilderOptions paths{};
  GuidanceOptions guidance{};
  symexec::ExecOptions exec{};       // per-candidate symbolic execution
  double candidate_timeout_seconds{900.0};  // paper: 15 min per candidate
  std::size_t max_candidates_tried{16};

  // --- streaming ingestion ------------------------------------------------
  // Fold admitted logs into sufficient statistics shard-by-shard and drop
  // them, instead of retaining the full log vector (`--stream` in the CLI).
  bool stream{false};
  // Logs per shard in streaming mode (`--log-shard-size`); 0 is clamped
  // to 1. Any value produces identical statistics — this knob only trades
  // peak retained log memory against per-shard fold overhead.
  std::size_t log_shard_size{64};

  // --- parallel pipeline --------------------------------------------------
  // Worker threads for Phase 1a log collection and the Phase 3 candidate
  // portfolio; 0 = all hardware threads (`--jobs` in the CLI). Every task
  // seeds its RNG via derive_seed(seed, task_index) and results merge in
  // task-index order, so the pipeline's output is identical at any value.
  std::size_t num_threads{0};
  // How many ranked candidate paths execute concurrently in Phase 3; the
  // effective concurrency is min(width, num_threads). The reported winner
  // is always the best-ranked successful candidate, so this only trades
  // hardware for wall-clock, never changes the answer.
  std::size_t candidate_portfolio_width{4};
  // Share one solver query cache across the portfolio's workers, so
  // candidate A's canonical solves warm candidate B's lookups. Only
  // pure-function results cross workers (DESIGN.md §"Solver"), so verdicts
  // and reports stay byte-identical at any --jobs with this on or off.
  bool share_solver_cache{true};

  // --- engine race --------------------------------------------------------
  // Phase-3 lanes in priority order (`--engines` in the CLI). The default —
  // a single guided lane — runs the classic candidate portfolio unchanged.
  // With more than one lane the engines race under first-win cancellation:
  // the best-priority lane that verifies the vuln wins and only *worse*
  // lanes are cancelled, so every lane at or before the winner runs to its
  // natural termination and the reported winner, witness, stats, and traces
  // are byte-identical at any --jobs.
  std::vector<EngineKind> engines{EngineKind::kGuided};
  // Convenience switch (`--concolic`): appends a concolic lane after the
  // configured engines if one is not already present.
  bool enable_concolic{false};
  // Concrete executions the concolic lane may perform.
  std::size_t concolic_max_runs{512};

  // --- static analysis ----------------------------------------------------
  // Run the whole-program abstract interpretation (src/analysis/) once per
  // module and feed its ProgramFacts into Phase 3: statically-decided
  // branches skip their solver feasibility queries (SolverStats::
  // static_prunes) and candidate paths that visit a provably-unreachable
  // function are dropped before racing. Sound facts only — turning this off
  // (`--no-static-analysis`) never changes any verdict or witness, only the
  // amount of work done to reach it.
  bool static_analysis{true};

  std::uint64_t seed{42};
};

// Produces one random program input per call (the "testing inputs" of
// Fig. 3). Implementations live in src/apps/workload.*.
using WorkloadGen = std::function<interp::RuntimeInput(Rng&)>;

// Per-lane accounting for the engine race. Lanes ranked after the winner
// are *normalized* (termination kCancelled, zero stats) no matter how far
// they actually got, mirroring the counted-prefix rule the candidate
// portfolio uses — that is what keeps the whole vector deterministic.
struct EngineLaneResult {
  EngineKind kind{EngineKind::kGuided};
  std::size_t priority{0};  // position in EngineOptions::engines
  bool found{false};
  symexec::Termination termination{symexec::Termination::kCancelled};
  std::uint64_t paths_explored{0};  // concolic: concrete runs
  std::uint64_t instructions{0};
  std::uint64_t concolic_runs{0};   // 0 for non-concolic lanes
  solver::SolverStats solver_stats;
  double seconds{0.0};  // wall clock; the one nondeterministic field
};

struct EngineResult {
  bool found{false};
  std::optional<symexec::VulnPath> vuln;

  // Time breakdown (the paper's Tables II/III columns).
  double log_seconds{0.0};       // workload + monitoring
  double stat_seconds{0.0};      // statistical-analysis module
  double symexec_seconds{0.0};   // statistics-guided symbolic execution

  // Statistical-module outputs.
  std::vector<stats::Predicate> predicates;  // ranked
  stats::PathConstruction construction;      // skeleton/detours/candidates
  std::size_t log_bytes{0};
  std::size_t num_correct_logs{0};
  std::size_t num_faulty_logs{0};

  // Symbolic-execution accounting. Summed over the candidates ranked at or
  // before the winner — exactly the set the sequential one-at-a-time loop
  // would have tried, and the only candidates guaranteed to run to
  // completion under portfolio execution — so every field here is
  // deterministic across thread counts (as long as the shared budget does
  // not bind; see DESIGN.md §5).
  std::uint64_t paths_explored{0};
  std::uint64_t instructions{0};
  // Solver-layer accounting (queries, per-level cache hits, slices, solve
  // wall time), summed over the same candidate set as the fields above.
  solver::SolverStats solver_stats;
  std::size_t candidates_tried{0};
  std::size_t winning_candidate{0};  // 1-based index; 0 when not found
  // Candidates ranked after the winner that the portfolio started (or would
  // have started) and cut short once the winner was known.
  std::size_t candidates_cancelled{0};
  // Counted candidates dropped before execution because their path visits a
  // statically-unreachable function (EngineOptions::static_analysis). They
  // still occupy their rank slot — pruning never shifts seeds or ranks.
  std::size_t candidates_pruned{0};
  symexec::ExecStats last_exec_stats;

  // Engine-race accounting; empty when Phase 3 ran the default single
  // guided lane. `winning_engine` is meaningful only when `found`.
  std::vector<EngineLaneResult> lanes;
  EngineKind winning_engine{EngineKind::kGuided};

  // Named pipeline metrics (obs/metrics.h). Every counter and histogram in
  // here is schedule-invariant — values that depend on which worker got
  // there first (e.g. the shared-cache-hit vs canonical-solve split) are
  // folded into invariant combinations or left to SolverStats. Gauges named
  // `*.seconds` carry wall times and are the only nondeterministic values.
  obs::MetricsRegistry metrics;
};

class StatSymEngine {
 public:
  StatSymEngine(const ir::Module& m, symexec::SymInputSpec spec,
                EngineOptions opts);

  // Phase 1a: runs the workload under the sampling monitor until the target
  // number of correct and faulty logs is collected (or the attempt cap).
  // In streaming mode the admitted logs flow through a ShardedCollector
  // into per-cluster sufficient statistics and are then dropped.
  void collect_logs(const WorkloadGen& gen);

  // Phase 1b alternative: injects pre-collected logs (e.g. deserialised
  // from files, or corrupted by a failure-injection test). In streaming
  // mode these are folded shard-by-shard at the next run()/run_all().
  void use_logs(std::vector<monitor::RunLog> logs);

  // Streaming ingestion of an externally produced shard (e.g. replayed from
  // a file via deserialize_shard). Implies streaming semantics for the
  // folded logs regardless of EngineOptions::stream.
  void ingest_shard(monitor::LogShard&& shard);

  // Optional structured tracing (obs/trace.h): phase begin/end, log
  // admissions, predicate fits, candidate ranks, and per-candidate symbolic
  // execution events stitched in rank order over the counted candidates.
  // Streaming mode additionally emits kShardIngest per folded shard and
  // kRerank per refit. The tracer must outlive the engine. Null (the
  // default) disables tracing; the cost of the disabled path is one pointer
  // test per would-be event.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // Service mode (src/serve/): every Phase-3 solve goes through `cache`
  // instead of a run-local one, so canonical results persist across engine
  // instances and warm later requests for the same program. Safe for
  // determinism by the same argument as share_solver_cache: only canonical
  // pure-function results are published, so a warm hit returns exactly the
  // bytes a cold solve would have produced — verdicts, stats sums and traces
  // are unchanged at any warmth (DESIGN.md §14). The cache must outlive
  // every run()/run_all() call. Null restores the run-local default.
  void set_shared_solver_cache(solver::SharedQueryCache* cache) {
    external_queries_ = cache;
  }

  // Batch mode: the retained logs. Streaming mode: empty (logs are dropped
  // once folded) — use num_logs_collected() for the count.
  const std::vector<monitor::RunLog>& logs() const { return logs_; }

  // Logs admitted so far, in either mode.
  std::size_t num_logs_collected() const {
    return logs_.size() + static_cast<std::size_t>(stream_logs_);
  }

  // Phases 2–3: statistical analysis + guided symbolic execution.
  EngineResult run();

  // §III-C extension: programs with multiple vulnerabilities. Faulty logs
  // are clustered by their fault function (the paper points at bug-isolation
  // techniques for this separation; the monitor's crash tag is the cluster
  // label) and StatSym runs once per cluster, identifying the vulnerable
  // paths one by one. Returns one EngineResult per discovered vulnerability,
  // at most `max_vulns`. Streaming mode keeps per-cluster sufficient
  // statistics, so this works without the raw logs.
  std::vector<EngineResult> run_all(std::size_t max_vulns = 8);

 private:
  // Folds one completed shard into the per-cluster sufficient statistics
  // (correct runs in one accumulator, faulty runs keyed by fault function).
  void fold_shard(monitor::LogShard&& shard);

  // Streaming mode: routes any logs injected via use_logs() through a
  // ShardedCollector into fold_shard. No-op in batch mode.
  void fold_pending_logs();

  // Merged statistics over every ingested run (all clusters).
  stats::SuffStats merged_suff() const;

  // Phases 2–3 from sufficient statistics — the single fit path both modes
  // share.
  EngineResult run_on(const stats::SuffStats& suff);

  // External resources a run_portfolio call inherits when it executes as a
  // lane of the engine race; all-null means the portfolio owns its own (the
  // classic single-engine Phase 3).
  struct PortfolioEnv {
    const std::atomic<bool>* stop{nullptr};    // lane-race cancel flag
    symexec::SharedBudget* budget{nullptr};    // race-wide budget
    solver::SharedQueryCache* shared_queries{nullptr};
    obs::TraceBuffer* sink{nullptr};  // absorb candidate traces here
                                      // instead of the tracer root
  };

  // Phase 3: runs the top n_try candidates as a portfolio on the worker
  // pool, cancelling candidates ranked after the best success. Fills the
  // symbolic-execution fields of `res`.
  void run_portfolio(EngineResult& res, monitor::LocId failure,
                     std::size_t n_try);
  void run_portfolio(EngineResult& res, monitor::LocId failure,
                     std::size_t n_try, const PortfolioEnv& env);

  // Phase 3 with multiple lanes racing (lanes.size() >= 2 or a single
  // non-guided lane): first win by priority, worse lanes cancelled,
  // counted-prefix accounting over lanes at or before the winner.
  void run_engines(EngineResult& res, monitor::LocId failure,
                   std::size_t n_try, const std::vector<EngineKind>& lanes);

  // Renders the result + ingestion accounting into res.metrics.
  void fill_metrics(EngineResult& res, const stats::SuffStats& suff) const;

  const ir::Module& m_;
  symexec::SymInputSpec spec_;
  EngineOptions opts_;
  // Whole-program facts, computed lazily before the first Phase-3 run when
  // EngineOptions::static_analysis is on (pure function of the module).
  std::optional<analysis::ProgramFacts> facts_;
  std::vector<monitor::RunLog> logs_;  // batch mode (and pre-fold staging)
  // Streaming state: per-cluster sufficient statistics ("" keys faulty runs
  // without a fault tag; correct runs have their own accumulator).
  bool streamed_{false};
  stats::SuffStats correct_suff_;
  std::map<std::string, stats::SuffStats> faulty_suff_;
  std::uint64_t shards_ingested_{0};
  std::uint64_t stream_logs_{0};
  std::size_t peak_retained_bytes_{0};
  double log_seconds_{0.0};
  obs::Tracer* tracer_{nullptr};
  // Persistent cross-run cache supplied by a serve session (null outside
  // service mode; never owned).
  solver::SharedQueryCache* external_queries_{nullptr};
};

// Pure-KLEE baseline on the same module/input spec: unguided symbolic
// execution with the given options (Table IV's right-hand columns).
// `trace`, when non-null, receives the execution's state/solver events
// (kExecBegin carries candidate rank 0 = pure run). `facts`, when non-null,
// enables static branch pruning exactly as in the engine's own lanes.
symexec::ExecResult run_pure_symbolic(const ir::Module& m,
                                      const symexec::SymInputSpec& spec,
                                      const symexec::ExecOptions& opts,
                                      obs::TraceBuffer* trace = nullptr,
                                      const analysis::ProgramFacts* facts =
                                          nullptr);

}  // namespace statsym::core
