// The StatSym State Scheduler (§VI-C): prioritises states that have matched
// more candidate-path nodes, breaking ties by fewer diverted hops, LIFO
// within a class so exploration dives depth-first along the candidate path.
#pragma once

#include <map>
#include <vector>

#include "symexec/searcher.h"

namespace statsym::core {

class GuidedSearcher final : public symexec::Searcher {
 public:
  void add(symexec::State* st) override;
  symexec::State* select() override;
  bool empty() const override { return size_ == 0; }
  std::size_t size() const override { return size_; }

 private:
  // Key: -matched * 2^20 + diverted (lower = better). Free-running (woken)
  // states carry diverted == -1 and would sort first; they are bumped into
  // a worst-priority bucket instead.
  static std::int64_t key_of(const symexec::State& st);

  std::map<std::int64_t, std::vector<symexec::State*>> buckets_;
  std::size_t size_{0};
};

}  // namespace statsym::core
