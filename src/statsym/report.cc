#include "statsym/report.h"

#include <sstream>

#include "support/strings.h"
#include "support/table.h"

namespace statsym::core {

std::string format_predicates(const ir::Module& m,
                              const std::vector<stats::Predicate>& preds,
                              std::size_t top_k) {
  TextTable t({"No.", "Predicate", "Score", "Loc"});
  const std::size_t n = std::min(top_k, preds.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& p = preds[i];
    t.add_row({"P" + std::to_string(i + 1), p.display(),
               fmt_double(p.score, 3), monitor::loc_name(m, p.loc)});
  }
  return t.render();
}

std::string format_locations(const ir::Module& m) {
  std::ostringstream os;
  os << "Instrumented locations:\n";
  int idx = 1;
  for (const auto& fn : m.functions()) {
    const ir::FuncId fid = m.find_function(fn.name);
    os << "  L" << idx++ << ": " << monitor::loc_name(m, monitor::enter_loc(fid))
       << "\n";
    os << "  L" << idx++ << ": " << monitor::loc_name(m, monitor::leave_loc(fid))
       << "\n";
  }
  return os.str();
}

std::string format_candidates(const ir::Module& m,
                              const stats::PathConstruction& pc) {
  std::ostringstream os;
  os << "Failure point: " << monitor::loc_name(m, pc.failure) << "\n";
  os << "Skeleton (" << pc.skeleton.size() << " nodes):";
  for (monitor::LocId n : pc.skeleton) os << " " << monitor::loc_name(m, n);
  os << "\nDetours: " << pc.detours.size() << "\n";
  for (const auto& d : pc.detours) {
    os << "  [" << detour_type_name(d.type()) << " " << d.start_idx << "->"
       << d.end_idx << " score " << fmt_double(d.avg_score, 3) << "] via";
    for (monitor::LocId n : d.via) os << " " << monitor::loc_name(m, n);
    os << "\n";
  }
  os << "Candidate paths (" << pc.candidates.size() << "):\n";
  for (std::size_t i = 0; i < pc.candidates.size(); ++i) {
    const auto& c = pc.candidates[i];
    os << "  #" << (i + 1) << " score " << fmt_double(c.avg_score, 3)
       << " detours " << c.num_detours << " len " << c.nodes.size() << ":";
    for (monitor::LocId n : c.nodes) os << " " << monitor::loc_name(m, n);
    os << "\n";
  }
  return os.str();
}

std::string format_vuln(const ir::Module& m, const symexec::VulnPath& v) {
  (void)m;  // kept in the signature for symmetry and future trace rendering
  std::ostringstream os;
  os << "Vulnerable path found: " << interp::fault_kind_name(v.kind) << " in "
     << v.function << "()";
  if (!v.detail.empty()) os << " (" << v.detail << ")";
  os << "\n  path length: " << v.trace.size() << " location events\n";
  os << "  constraints: " << v.constraints.size() << "\n";
  os << "  crashing input: argv = [";
  for (std::size_t i = 0; i < v.input.argv.size(); ++i) {
    if (i) os << ", ";
    const auto& a = v.input.argv[i];
    if (a.size() > 24) {
      os << '"' << a.substr(0, 12) << "...\" (len " << a.size() << ")";
    } else {
      os << '"' << a << '"';
    }
  }
  os << "]";
  for (const auto& [k, val] : v.input.env) {
    os << ", env " << k << " len " << val.size();
  }
  os << "\n";
  return os.str();
}

std::string format_solver_stats(const solver::SolverStats& s) {
  // Whether a slice was answered by the shared cache or by a canonical solve
  // depends on worker timing (the answers are identical either way), so the
  // report prints their schedule-invariant sum; only the wall-time figures
  // on the last line may differ between runs (like the stat/exec timings).
  std::ostringstream os;
  const std::uint64_t local_hits = s.cache_hits + s.model_reuse_hits;
  const std::uint64_t canonical = s.shared_cache_hits + s.solves;
  const double local_rate =
      s.slices == 0 ? 0.0
                    : static_cast<double>(local_hits) /
                          static_cast<double>(s.slices);
  os << "Solver: " << s.queries << " queries (" << s.sat << " sat, " << s.unsat
     << " unsat, " << s.unknown << " unknown), " << s.slices << " slices ("
     << s.multi_slice_queries << " queries split)\n";
  os << "  fast paths: " << s.cache_hits << " cache, " << s.model_reuse_hits
     << " model-reuse (" << fmt_double(100.0 * local_rate, 1)
     << "% of slices)\n";
  os << "  canonical: " << canonical
     << " decided (shared-cache or solve), "
     << fmt_double(s.solve_seconds, 3) << "s solving; est. "
     << fmt_double(s.solve_seconds_saved(), 3) << "s saved\n";
  return os.str();
}

std::string format_metrics(const obs::MetricsRegistry& m) {
  TextTable t({"Metric", "Value"});
  for (const auto& [name, v] : m.counters()) {
    t.add_row({name, std::to_string(v)});
  }
  for (const auto& [name, g] : m.gauges()) {
    t.add_row({name, fmt_double(g.value, 3)});
  }
  for (const auto& [name, h] : m.histograms()) {
    std::ostringstream cell;
    const double mean =
        h.count == 0 ? 0.0 : h.sum / static_cast<double>(h.count);
    cell << h.count << " obs, min " << fmt_double(h.min, 3) << ", mean "
         << fmt_double(mean, 3) << ", max " << fmt_double(h.max, 3);
    t.add_row({name, cell.str()});
  }
  return t.render();
}

}  // namespace statsym::core
