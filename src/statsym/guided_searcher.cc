#include "statsym/guided_searcher.h"

namespace statsym::core {

std::int64_t GuidedSearcher::key_of(const symexec::State& st) {
  if (st.guide.diverted < 0) {
    // Woken (pure-fallback) states: lowest priority bucket.
    return static_cast<std::int64_t>(1) << 40;
  }
  // Progress along the candidate path dominates: the state that has matched
  // the most candidate nodes is closest to the failure point and must not
  // starve behind floods of shallow forks (divergence is already hard-capped
  // by τ — over-diverted states get suspended, not merely deprioritised).
  // Among equally-progressed states, fewer diverted hops rank first, per the
  // paper's scheduler description.
  constexpr std::int64_t kShift = 1 << 20;
  return -static_cast<std::int64_t>(st.guide.matched) * kShift +
         st.guide.diverted;
}

void GuidedSearcher::add(symexec::State* st) {
  buckets_[key_of(*st)].push_back(st);
  ++size_;
}

symexec::State* GuidedSearcher::select() {
  if (size_ == 0) return nullptr;
  auto it = buckets_.begin();
  symexec::State* st = it->second.back();
  it->second.pop_back();
  if (it->second.empty()) buckets_.erase(it);
  --size_;
  return st;
}

}  // namespace statsym::core
