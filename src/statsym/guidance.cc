#include "statsym/guidance.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace statsym::core {

namespace {

// Free-run marker: a woken state is no longer guided (pure-symbolic
// fallback); encoded as a negative diverted count.
constexpr std::int32_t kFreeRun = -1;

}  // namespace

CandidateGuidance::CandidateGuidance(const ir::Module& m,
                                     stats::CandidatePath path,
                                     std::vector<stats::Predicate> predicates,
                                     GuidanceOptions opts)
    : m_(m), path_(std::move(path)), opts_(opts) {
  for (auto& p : predicates) {
    if (p.pk == stats::PredKind::kUnreached) continue;  // negative evidence
    // Confidence-adjusted score, recomputed from the recorded support via
    // the shared Wilson helper (predicates without support — hand-built in
    // tests or deserialised from older runs — keep their stored bound).
    const double lcb = p.n_correct + p.n_faulty > 0
                           ? p.recompute_score_lcb(opts_.confidence_z)
                           : p.score_lcb;
    if (lcb < opts_.predicate_score_floor) continue;
    preds_by_loc_[p.loc].push_back(std::move(p));
  }
  for (std::size_t i = 0; i < path_.nodes.size(); ++i) {
    first_index_.try_emplace(path_.nodes[i], i);
  }
  // Collect the strongest length lower bound per variable across the whole
  // candidate path (see header for rationale).
  for (const monitor::LocId loc : path_.nodes) {
    auto pit = preds_by_loc_.find(loc);
    if (pit == preds_by_loc_.end()) continue;
    for (const stats::Predicate& p : pit->second) {
      if (!p.is_len || p.pk != stats::PredKind::kGt) continue;
      auto [it, inserted] = len_gt_max_.try_emplace(p.var, p.threshold);
      if (!inserted) it->second = std::max(it->second, p.threshold);
    }
  }
}

void CandidateGuidance::on_wake(symexec::State& st) {
  st.guide.diverted = kFreeRun;
}

symexec::GuidanceHook::Action CandidateGuidance::on_location(
    symexec::SymExecutor& ex, symexec::State& st, monitor::LocId loc) {
  if (st.guide.diverted == kFreeRun) return Action::kContinue;
  if (!opts_.skip_function_prefix.empty() &&
      m_.function(monitor::loc_function(loc))
          .name.starts_with(opts_.skip_function_prefix)) {
    return Action::kContinue;  // library-internal: invisible to statistics
  }

  const auto next = static_cast<std::size_t>(st.guide.next_node);
  if (next < path_.nodes.size() && path_.nodes[next] == loc) {
    ++st.guide.next_node;
    ++st.guide.matched;
    st.guide.diverted = 0;
    st.guide.alien_seen.clear();
    std::int32_t seen = max_matched_.load(std::memory_order_relaxed);
    while (st.guide.matched > seen &&
           !max_matched_.compare_exchange_weak(seen, st.guide.matched,
                                               std::memory_order_relaxed)) {
    }
    if (st.guide.matched > seen && getenv("STATSYM_DEBUG_SCHED")) {
      fprintf(stderr, "MATCH state=%llu m=%d loc=%s\n",
              (unsigned long long)st.id, st.guide.matched,
              monitor::loc_name(m_, loc).c_str());
    }
    if (opts_.inject_predicates && !inject_at(ex, st, loc)) {
      conflict_susp_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(conflict_mu_);
        ++conflict_by_loc_[loc];
      }
      return Action::kSuspend;
    }
    return Action::kContinue;
  }
  if (next >= path_.nodes.size()) {
    // Entire candidate path matched; run free toward the failure point.
    return Action::kContinue;
  }
  // Revisiting a location already matched earlier on the path is a loop or
  // recursion over on-path code (the candidate path is acyclic-ish while
  // real executions cycle); statistics place the location on the vulnerable
  // path, so it does not count as divergence. Only statistically-alien
  // locations consume hop budget.
  if (auto it = first_index_.find(loc);
      it != first_index_.end() && it->second < next) {
    return Action::kContinue;
  }
  // Re-visiting the same off-path location (a loop beside the candidate
  // path) is not additional divergence.
  auto& seen = st.guide.alien_seen;
  if (std::find(seen.begin(), seen.end(), loc) != seen.end()) {
    return Action::kContinue;
  }
  seen.push_back(loc);
  if (++st.guide.diverted > opts_.tau) {
    diverted_susp_.fetch_add(1, std::memory_order_relaxed);
    return Action::kSuspend;
  }
  return Action::kContinue;
}

bool CandidateGuidance::inject_at(symexec::SymExecutor& ex,
                                  symexec::State& st, monitor::LocId loc) {
  const bool leave = monitor::loc_is_leave(loc);
  const ir::FuncId fid = monitor::loc_function(loc);
  const ir::Function& fn = m_.function(fid);

  auto it = preds_by_loc_.find(loc);
  if (it == preds_by_loc_.end()) return true;

  for (const stats::Predicate& p : it->second) {
    symexec::SymValue val;
    bool have = false;
    switch (p.kind) {
      case monitor::VarKind::kParam: {
        // Parameter values are only available at entry (the frame is gone
        // by the time the leave event fires).
        if (leave) break;
        // p.var is the display key, e.g. "len(suspect FUNCPARAM)"; compare
        // against the raw parameter name.
        for (std::int32_t i = 0; i < fn.num_params; ++i) {
          monitor::VarSample probe;
          probe.name = fn.param_names[static_cast<std::size_t>(i)];
          probe.kind = monitor::VarKind::kParam;
          probe.is_len = p.is_len;
          if (probe.key() == p.var) {
            val = st.top().params[static_cast<std::size_t>(i)];
            have = true;
            break;
          }
        }
        break;
      }
      case monitor::VarKind::kGlobal: {
        for (std::size_t g = 0; g < m_.globals().size(); ++g) {
          monitor::VarSample probe;
          probe.name = m_.globals()[g].name;
          probe.kind = monitor::VarKind::kGlobal;
          probe.is_len = p.is_len;
          if (probe.key() == p.var) {
            val = st.globals[g];
            have = true;
            break;
          }
        }
        break;
      }
      case monitor::VarKind::kReturn:
        break;  // return values are not injectable at this point
    }
    if (!have) continue;
    if (!inject_one(ex, st, p, val)) return false;
  }
  return true;
}

bool CandidateGuidance::inject_one(symexec::SymExecutor& ex,
                                   symexec::State& st,
                                   const stats::Predicate& p,
                                   const symexec::SymValue& val) {
  auto& pool = ex.pool();

  // A length predicate against a variable that is not (yet) a string —
  // e.g. a global pointer before its assignment — carries no information
  // about this program point; skip rather than conflict.
  if (p.is_len && !val.is_ref()) return true;

  if (p.is_len && val.is_ref()) {
    if (val.conc.is_null_ref()) return false;
    // Only lower-bound length predicates prune meaningfully: len(s) > σ
    // becomes "the first ⌊σ⌋+1 bytes are non-NUL". Upper bounds would be a
    // disjunction over NUL positions — no pruning power, so skipped.
    if (p.pk != stats::PredKind::kGt) return true;
    // Strengthen to the path-wide maximum for this variable (header note).
    double threshold = p.threshold;
    if (auto mit = len_gt_max_.find(p.var); mit != len_gt_max_.end()) {
      threshold = std::max(threshold, mit->second);
    }
    const auto obj = val.conc.obj;
    const std::int64_t off = val.conc.off;
    const std::int64_t need =
        std::min(static_cast<std::int64_t>(std::floor(threshold)) + 1,
                 opts_.max_len_constraint);
    const std::int64_t size = st.mem.size(obj);
    // A string of length > σ cannot fit: conflict with the predicate.
    if (off + need > size - 1) return false;
    for (std::int64_t i = 0; i < need; ++i) {
      const symexec::SymByte b = st.mem.read(obj, off + i);
      if (!b.is_sym) {
        if (b.b == 0) return false;  // concretely shorter than σ
        continue;
      }
      if (!ex.add_constraint(st, pool.ne(b.e, pool.constant(0)))) {
        return false;
      }
    }
    return true;
  }

  if (val.is_concrete()) {
    if (!val.conc.is_int()) return true;  // untyped; nothing to constrain
    return p.holds(static_cast<double>(val.conc.i));
  }

  // Symbolic integer: integral form of the threshold comparison.
  solver::ExprId c = solver::kNoExpr;
  switch (p.pk) {
    case stats::PredKind::kGt:
      c = pool.ge(val.expr, pool.constant(static_cast<std::int64_t>(
                                std::floor(p.threshold)) +
                            1));
      break;
    case stats::PredKind::kLt:
      c = pool.le(val.expr, pool.constant(static_cast<std::int64_t>(
                                std::ceil(p.threshold)) -
                            1));
      break;
    case stats::PredKind::kUnreached:
      return true;
  }
  return ex.add_constraint(st, c);
}

}  // namespace statsym::core
