// Statistics-guided search: the candidate-path guidance hook (§V-C, §VI-C).
//
// Implements both guidance mechanisms of the paper on top of the symbolic
// executor's GuidanceHook interface:
//
//   * Inter-function search — every function entry/exit event is matched
//     against the candidate path. A state whose events diverge from the
//     path by more than τ hops is suspended (explored again only when no
//     guided state remains).
//
//   * Intra-function search — when an event matches the next candidate
//     node, the high-confidence predicates constructed for that location
//     are translated into path constraints and added to the state; states
//     that conflict with the predicates are suspended. String-length
//     predicates len(s) > σ are lowered to per-byte constraints
//     (s[0..⌊σ⌋] all non-NUL), the paper's footnote-2 workaround for
//     constraining string lengths.
#pragma once

#include <atomic>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "stats/path_builder.h"
#include "symexec/executor.h"

namespace statsym::core {

struct GuidanceOptions {
  std::int32_t tau{10};  // hop-diversion threshold (paper default)
  bool inject_predicates{true};
  // Only predicates whose *confidence-adjusted* score (score_lcb, the
  // Wilson lower bound on the Eq. 2 gap) clears this floor are injected.
  // Gating on the raw score let accidental separators fitted from a handful
  // of sampled records through; injected as hard constraints they suspend
  // every on-path state, so a starved log budget turned into guaranteed
  // path-infeasibility misses.
  double predicate_score_floor{0.5};
  // Wilson z for the injection gate. The gate recomputes the bound from the
  // predicate's recorded support through stats::gap_lcb — the same helper
  // the fitter used — so fitting and guidance can never disagree about what
  // "confidence-adjusted" means. Matches PredicateManagerOptions, so for
  // predicates fitted at the default z the recomputation reproduces the
  // stored score_lcb exactly.
  double confidence_z{2.0};
  // Cap on per-byte constraints lowered from one length predicate.
  std::int64_t max_len_constraint{4096};
  // Location events in functions with this prefix are invisible to guidance
  // (matches the monitor's skip prefix — the statistics never saw them, so
  // they must not count as diverted hops either).
  std::string skip_function_prefix{"__"};
};

class CandidateGuidance final : public symexec::GuidanceHook {
 public:
  CandidateGuidance(const ir::Module& m, stats::CandidatePath path,
                    std::vector<stats::Predicate> predicates,
                    GuidanceOptions opts = {});

  Action on_location(symexec::SymExecutor& ex, symexec::State& st,
                     monitor::LocId loc) override;
  void on_wake(symexec::State& st) override;

  // Number of states this guidance suspended for diverging / conflicting.
  // Schedule-invariant (every drawn task runs to completion in every
  // schedule) but incremented concurrently by round workers, hence atomic.
  std::uint64_t diverted_suspensions() const {
    return diverted_susp_.load(std::memory_order_relaxed);
  }
  std::uint64_t conflict_suspensions() const {
    return conflict_susp_.load(std::memory_order_relaxed);
  }
  // Deepest candidate-path progress any state achieved (diagnostics).
  std::int32_t max_matched() const {
    return max_matched_.load(std::memory_order_relaxed);
  }
  // Per-location conflict-suspension tallies (diagnostics). Only safe to
  // read once the run has finished.
  const std::unordered_map<monitor::LocId, std::uint64_t>& conflicts_by_loc()
      const {
    return conflict_by_loc_;
  }

 private:
  // Injects the predicates registered at `loc` into the state; returns
  // false when the state conflicts with them.
  bool inject_at(symexec::SymExecutor& ex, symexec::State& st,
                 monitor::LocId loc);
  bool inject_one(symexec::SymExecutor& ex, symexec::State& st,
                  const stats::Predicate& p, const symexec::SymValue& val);

  const ir::Module& m_;
  stats::CandidatePath path_;
  // First occurrence of each location on the candidate path — used to
  // recognise benign revisits (loops/recursion over on-path code).
  std::unordered_map<monitor::LocId, std::size_t> first_index_;
  std::unordered_map<monitor::LocId, std::vector<stats::Predicate>>
      preds_by_loc_;
  // Strongest "len(x) > σ" threshold per variable across the whole
  // candidate path. When a node's own length predicate fires, it is
  // strengthened to this bound: a state that can never satisfy the
  // downstream length requirement is suspended at its *first* length check
  // rather than leaf-by-leaf after its intra-function fork subtree has
  // already exploded at the node carrying the tightest threshold.
  std::unordered_map<std::string, double> len_gt_max_;
  GuidanceOptions opts_;
  std::atomic<std::uint64_t> diverted_susp_{0};
  std::atomic<std::uint64_t> conflict_susp_{0};
  std::mutex conflict_mu_;  // guards conflict_by_loc_ during the run
  std::unordered_map<monitor::LocId, std::uint64_t> conflict_by_loc_;
  std::atomic<std::int32_t> max_matched_{0};
};

}  // namespace statsym::core
