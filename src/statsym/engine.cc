#include "statsym/engine.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <future>
#include <mutex>

#include "concolic/concolic.h"
#include "statsym/guided_searcher.h"
#include "support/stopwatch.h"
#include "support/thread_pool.h"

namespace statsym::core {

const char* engine_kind_name(EngineKind k) {
  switch (k) {
    case EngineKind::kGuided: return "guided";
    case EngineKind::kPure: return "pure";
    case EngineKind::kConcolic: return "concolic";
  }
  return "?";
}

std::optional<EngineKind> parse_engine_kind(std::string_view s) {
  if (s == "guided") return EngineKind::kGuided;
  if (s == "pure") return EngineKind::kPure;
  if (s == "concolic") return EngineKind::kConcolic;
  return std::nullopt;
}

std::optional<std::vector<EngineKind>> parse_engines(std::string_view csv) {
  std::vector<EngineKind> out;
  while (!csv.empty()) {
    const std::size_t comma = csv.find(',');
    const std::string_view tok = csv.substr(0, comma);
    const auto kind = parse_engine_kind(tok);
    if (!kind.has_value()) return std::nullopt;
    out.push_back(*kind);
    if (comma == std::string_view::npos) break;
    csv.remove_prefix(comma + 1);
  }
  if (out.empty()) return std::nullopt;
  return out;
}

// Renders the result's accounting into the named metrics registry. Counters
// and histograms here are schedule-invariant: the shared-cache-hit vs
// canonical-solve split (the one schedule-dependent pair in SolverStats) is
// folded into their sum, and everything wall-clock goes into `*.seconds`
// gauges. Streaming-only counters appear only when shards were folded, so
// batch-mode metric renderings are unchanged.
void StatSymEngine::fill_metrics(EngineResult& res,
                                 const stats::SuffStats& suff) const {
  obs::MetricsRegistry& m = res.metrics;
  m.add("log.correct", res.num_correct_logs);
  m.add("log.faulty", res.num_faulty_logs);
  m.add("log.bytes", res.log_bytes);
  m.add("log.records_considered", suff.records_considered());

  m.add("stat.predicates", res.predicates.size());
  m.add("stat.candidates", res.construction.candidates.size());
  for (const auto& p : res.predicates) {
    m.observe("stat.predicate_score", p.score);
  }
  for (const auto& c : res.construction.candidates) {
    m.observe("stat.candidate_len", static_cast<double>(c.nodes.size()));
  }

  if (streamed_) {
    m.add("stream.shards", shards_ingested_);
    m.add("stream.logs", stream_logs_);
    m.add("stream.shard_size", std::max<std::size_t>(1, opts_.log_shard_size));
    m.add("stream.peak_retained_log_bytes", peak_retained_bytes_);
  }

  m.add("symexec.found", res.found ? 1 : 0);
  m.add("symexec.candidates_tried", res.candidates_tried);
  m.add("symexec.candidates_cancelled", res.candidates_cancelled);
  m.add("symexec.paths_explored", res.paths_explored);
  m.add("symexec.instructions", res.instructions);

  // Engine-race counters appear only when Phase 3 actually raced lanes, so
  // classic single-engine metric renderings are byte-identical to before.
  if (!res.lanes.empty()) {
    m.add("engine.lanes", res.lanes.size());
    std::size_t cancelled = 0;
    std::size_t winner = 0;  // 1-based priority; 0 = no lane won
    std::uint64_t concolic_runs = 0;
    for (const auto& l : res.lanes) {
      if (l.termination == symexec::Termination::kCancelled) ++cancelled;
      if (l.found && winner == 0) winner = l.priority + 1;
      concolic_runs += l.concolic_runs;
    }
    m.add("engine.lanes_cancelled", cancelled);
    m.add("engine.winner_priority", winner);
    m.add("engine.concolic_runs", concolic_runs);
  }

  const solver::SolverStats& ss = res.solver_stats;
  m.add("solver.queries", ss.queries);
  m.add("solver.sat", ss.sat);
  m.add("solver.unsat", ss.unsat);
  m.add("solver.unknown", ss.unknown);
  m.add("solver.slices", ss.slices);
  m.add("solver.multi_slice_queries", ss.multi_slice_queries);
  m.add("solver.local_cache_hits", ss.cache_hits);
  m.add("solver.model_reuse_hits", ss.model_reuse_hits);
  m.add("solver.canonical", ss.shared_cache_hits + ss.solves);
  m.add("solver.static_prunes", ss.static_prunes);

  // Static-analysis counters appear only when the analysis ran, so
  // analysis-off metric renderings are byte-identical to before.
  if (facts_.has_value()) {
    m.add("analysis.unreachable_blocks", facts_->num_unreachable_blocks());
    m.add("analysis.decided_branches", facts_->num_decided_branches());
    m.add("analysis.findings", facts_->findings().size());
    m.add("analysis.candidates_pruned", res.candidates_pruned);
  }

  m.set_gauge("phase.log.seconds", res.log_seconds);
  m.set_gauge("phase.stat.seconds", res.stat_seconds);
  m.set_gauge("phase.symexec.seconds", res.symexec_seconds);
  m.set_gauge("phase.total.seconds",
              res.log_seconds + res.stat_seconds + res.symexec_seconds);
  m.set_gauge("solver.solve.seconds", ss.solve_seconds);
}

StatSymEngine::StatSymEngine(const ir::Module& m, symexec::SymInputSpec spec,
                             EngineOptions opts)
    : m_(m), spec_(std::move(spec)), opts_(opts) {}

void StatSymEngine::fold_shard(monitor::LogShard&& shard) {
  streamed_ = true;
  ++shards_ingested_;
  stream_logs_ += shard.logs.size();
  for (const auto& log : shard.logs) {
    stats::SuffStats& suff =
        log.faulty ? faulty_suff_[log.fault_function] : correct_suff_;
    suff.ingest(log);
  }
  if (tracer_ != nullptr) {
    tracer_->emit(obs::EventKind::kShardIngest,
                  static_cast<std::int64_t>(shard.shard_id),
                  static_cast<std::int64_t>(shard.logs.size()),
                  static_cast<std::int64_t>(shard.bytes));
  }
  // `shard` (and its logs) dies here: statistics retained, raw logs freed.
}

void StatSymEngine::ingest_shard(monitor::LogShard&& shard) {
  peak_retained_bytes_ = std::max(peak_retained_bytes_, shard.bytes);
  fold_shard(std::move(shard));
}

void StatSymEngine::collect_logs(const WorkloadGen& gen) {
  Stopwatch sw;
  std::size_t correct = 0;
  std::size_t faulty = 0;
  std::int32_t run_id = 0;
  if (tracer_ != nullptr) {
    tracer_->emit(obs::EventKind::kPhaseBegin, 0, 0, 0, "collect-logs");
  }

  // Streaming mode routes admitted logs through the collector, which folds
  // each completed shard into the sufficient statistics and frees the logs;
  // batch mode retains them all in logs_. Admission is identical either
  // way, so the set of folded runs is the batch set exactly.
  std::optional<monitor::ShardedCollector> collector;
  if (opts_.stream) {
    collector.emplace(opts_.log_shard_size,
                      [this](monitor::LogShard&& s) { fold_shard(std::move(s)); });
  }

  // Every attempt owns a private RNG stream derived from (seed, attempt),
  // so the input it generates and the sampling decisions its monitor makes
  // do not depend on which worker runs it or in what order.
  auto run_attempt = [&](std::size_t attempt) {
    Rng rng(derive_seed(opts_.seed, attempt));
    Rng input_rng = rng.split();
    interp::RuntimeInput input = gen(input_rng);
    return monitor::run_monitored(m_, std::move(input), opts_.monitor,
                                  rng.split(), /*run_id=*/0);
  };
  // Keep only as many logs per class as the target asks for — the paper
  // randomly samples 100 correct + 100 faulty logs from a large pool. The
  // run id is stamped at admission so it counts kept logs, as before.
  auto admit = [&](monitor::RunLog&& log) {
    const bool is_faulty = log.faulty;
    const bool take = is_faulty ? faulty < opts_.target_faulty_logs
                                : correct < opts_.target_correct_logs;
    if (!take) return;
    log.run_id = run_id++;
    if (tracer_ != nullptr) {
      tracer_->emit(obs::EventKind::kLogAdmitted, log.run_id,
                    is_faulty ? 1 : 0,
                    static_cast<std::int64_t>(log.records.size()));
    }
    if (collector.has_value()) {
      collector->add(std::move(log));
    } else {
      logs_.push_back(std::move(log));
    }
    ++(is_faulty ? faulty : correct);
  };
  auto targets_met = [&] {
    return correct >= opts_.target_correct_logs &&
           faulty >= opts_.target_faulty_logs;
  };

  const std::size_t nthreads = effective_threads(opts_.num_threads);
  if (nthreads <= 1) {
    for (std::size_t attempt = 0;
         attempt < opts_.max_workload_runs && !targets_met(); ++attempt) {
      admit(std::move(run_attempt(attempt).log));
    }
  } else {
    // Waves of independent attempts fan out across the pool and merge in
    // attempt order, so the admitted set is bit-identical to the sequential
    // build. A wave may overshoot the point where the sequential loop would
    // have stopped — that is wasted work, never a semantic difference.
    ThreadPool pool(nthreads);
    const std::size_t wave = nthreads * 8;
    std::size_t next_attempt = 0;
    while (next_attempt < opts_.max_workload_runs && !targets_met()) {
      const std::size_t n =
          std::min(wave, opts_.max_workload_runs - next_attempt);
      const std::size_t base = next_attempt;
      std::vector<monitor::RunLog> batch(n);
      pool.parallel_for(n, [&](std::size_t i) {
        batch[i] = std::move(run_attempt(base + i).log);
      });
      for (std::size_t i = 0; i < n && !targets_met(); ++i) {
        admit(std::move(batch[i]));
      }
      next_attempt += n;
    }
  }
  if (collector.has_value()) {
    collector->flush();
    peak_retained_bytes_ =
        std::max(peak_retained_bytes_, collector->peak_retained_bytes());
  }
  log_seconds_ = sw.elapsed_seconds();
  if (tracer_ != nullptr) {
    tracer_->emit(obs::EventKind::kPhaseEnd, 0, 0, 0, "collect-logs");
  }
}

void StatSymEngine::use_logs(std::vector<monitor::RunLog> logs) {
  logs_ = std::move(logs);
}

void StatSymEngine::fold_pending_logs() {
  if (!opts_.stream || logs_.empty()) return;
  monitor::ShardedCollector collector(
      opts_.log_shard_size,
      [this](monitor::LogShard&& s) { fold_shard(std::move(s)); });
  for (auto& log : logs_) collector.add(std::move(log));
  collector.flush();
  peak_retained_bytes_ =
      std::max(peak_retained_bytes_, collector.peak_retained_bytes());
  logs_.clear();
  logs_.shrink_to_fit();
}

stats::SuffStats StatSymEngine::merged_suff() const {
  stats::SuffStats merged;
  merged.merge(correct_suff_);
  for (const auto& [fn, suff] : faulty_suff_) merged.merge(suff);
  return merged;
}

EngineResult StatSymEngine::run() {
  fold_pending_logs();
  if (streamed_) return run_on(merged_suff());
  stats::SuffStats suff;
  suff.ingest(logs_);
  return run_on(suff);
}

EngineResult StatSymEngine::run_on(const stats::SuffStats& suff) {
  EngineResult res;
  res.log_seconds = log_seconds_;
  res.num_correct_logs = suff.num_correct_runs();
  res.num_faulty_logs = suff.num_faulty_runs();
  res.log_bytes = static_cast<std::size_t>(suff.log_bytes());

  // --- Statistical analysis module ---------------------------------------
  obs::TraceBuffer* trace = tracer_ != nullptr ? &tracer_->buffer() : nullptr;
  if (trace != nullptr) {
    trace->emit(obs::EventKind::kPhaseBegin, 0, 0, 0, "stat");
  }
  Stopwatch stat_sw;

  stats::PredicateManager preds(opts_.predicates);
  preds.ingest(suff);
  preds.rerank(trace);
  res.predicates = preds.ranked();

  stats::TransitionGraph graph(opts_.graph);
  graph.ingest(suff);
  graph.rerank();

  if (streamed_ && trace != nullptr) {
    trace->emit(obs::EventKind::kRerank,
                static_cast<std::int64_t>(res.predicates.size()),
                static_cast<std::int64_t>(graph.nodes().size()),
                static_cast<std::int64_t>(shards_ingested_));
  }

  const monitor::LocId failure =
      stats::TransitionGraph::failure_node(suff, &m_);
  if (failure == monitor::kNoLoc) {
    res.stat_seconds = stat_sw.elapsed_seconds();
    if (trace != nullptr) {
      trace->emit(obs::EventKind::kPhaseEnd, 0, 0, 0, "stat");
    }
    fill_metrics(res, suff);
    return res;  // no faulty logs: nothing to guide toward
  }

  stats::PathBuilder builder(graph, preds, opts_.paths);
  auto construction = builder.build(failure, trace);
  res.stat_seconds = stat_sw.elapsed_seconds();
  if (trace != nullptr) {
    trace->emit(obs::EventKind::kPhaseEnd, 0, 0, 0, "stat");
  }
  if (!construction.has_value()) {
    fill_metrics(res, suff);
    return res;
  }
  res.construction = std::move(*construction);

  // --- Whole-program static analysis -------------------------------------
  // Pure function of the module, so one computation serves every Phase-3
  // run of this engine. The facts are sound over-approximations: consulting
  // them skips work (branch feasibility queries, dead candidates) without
  // ever changing a verdict, witness, or trace-visible ordering decision.
  if (opts_.static_analysis && !facts_.has_value()) {
    facts_ = analysis::analyze(m_);
  }

  // --- Statistics-guided symbolic execution ------------------------------
  if (trace != nullptr) {
    trace->emit(obs::EventKind::kPhaseBegin, 0, 0, 0, "symexec");
  }
  Stopwatch exec_sw;
  const std::size_t n_try =
      std::min(res.construction.candidates.size(), opts_.max_candidates_tried);
  std::vector<EngineKind> lanes = opts_.engines;
  if (opts_.enable_concolic &&
      std::find(lanes.begin(), lanes.end(), EngineKind::kConcolic) ==
          lanes.end()) {
    lanes.push_back(EngineKind::kConcolic);
  }
  if (lanes.empty()) lanes.push_back(EngineKind::kGuided);
  if (lanes.size() == 1 && lanes[0] == EngineKind::kGuided) {
    run_portfolio(res, failure, n_try);  // the classic Phase 3, untouched
  } else {
    run_engines(res, failure, n_try, lanes);
  }
  res.symexec_seconds = exec_sw.elapsed_seconds();
  if (trace != nullptr) {
    trace->emit(obs::EventKind::kPhaseEnd, 0, 0, 0, "symexec");
  }
  fill_metrics(res, suff);
  return res;
}

void StatSymEngine::run_portfolio(EngineResult& res, monitor::LocId failure,
                                  std::size_t n_try) {
  run_portfolio(res, failure, n_try, PortfolioEnv{});
}

void StatSymEngine::run_portfolio(EngineResult& res, monitor::LocId failure,
                                  std::size_t n_try,
                                  const PortfolioEnv& env) {
  if (n_try == 0) return;
  const std::size_t nthreads = effective_threads(opts_.num_threads);
  const std::size_t width = std::max<std::size_t>(
      1, std::min(opts_.candidate_portfolio_width, nthreads));

  struct Slot {
    bool completed{false};  // ran to its natural termination (not cancelled)
    bool pruned{false};     // dropped by static analysis, never executed
    symexec::ExecResult result;
  };
  std::vector<Slot> slots(n_try);
  // Per-candidate cancel flags (deque: atomics are immovable). A candidate
  // is cancelled only when a *better-ranked* one has already verified the
  // vuln, so every candidate ranked at or before the eventual winner runs
  // to completion and the winner is the same at any thread count — the
  // sequential one-at-a-time semantics, minus the wall-clock.
  std::deque<std::atomic<bool>> cancel(n_try);
  std::atomic<std::size_t> best{n_try};  // best-ranked success so far
  std::mutex best_mu;                    // orders best updates + fan-out

  // Machine-global budget across the whole portfolio (Table IV "Failed"
  // semantics): memory and live states describe the machine, so concurrent
  // candidates share one pool; the instruction budget is the sequential
  // total (each of the n_try candidates brought its own cap).
  symexec::SharedBudget own_budget;
  own_budget.max_memory_bytes = opts_.exec.max_memory_bytes;
  own_budget.max_live_states = opts_.exec.max_live_states;
  own_budget.max_instructions =
      opts_.exec.max_instructions > ~0ull / n_try
          ? ~0ull
          : opts_.exec.max_instructions * n_try;
  symexec::SharedBudget& budget =
      env.budget != nullptr ? *env.budget : own_budget;

  // One query cache across the whole portfolio: a candidate's canonical
  // solver results warm its siblings' lookups. Safe for determinism because
  // only pure-function results are published (DESIGN.md §"Solver"). In the
  // engine race the cache comes from outside and additionally spans lanes.
  solver::SharedQueryCache own_queries;
  solver::SharedQueryCache& shared_queries =
      env.shared_queries != nullptr
          ? *env.shared_queries
          : (external_queries_ != nullptr ? *external_queries_ : own_queries);

  // Per-candidate trace buffers (lane = 1-based rank). Each is written only
  // by the worker running that candidate; after the join, the buffers of the
  // *counted* candidates are stitched into the root stream in rank order —
  // the same order-and-subset rule the stats sums follow — so the stream is
  // identical at any thread count. Cancelled candidates' events are dropped.
  std::vector<obs::TraceBuffer> slot_traces;
  if (tracer_ != nullptr) {
    slot_traces.reserve(n_try);
    for (std::size_t ci = 0; ci < n_try; ++ci) {
      slot_traces.push_back(
          tracer_->make_worker_buffer(static_cast<std::uint32_t>(ci + 1)));
    }
  }

  auto attempt = [&](std::size_t ci) {
    if (cancel[ci].load(std::memory_order_relaxed)) return;
    if (env.stop != nullptr && env.stop->load(std::memory_order_relaxed)) {
      return;
    }
    // Candidate pre-filter: a path that visits a function the static
    // analysis proved unreachable can never replay, so racing it is pure
    // waste. The candidate keeps its rank slot (and its derived seed), it
    // just completes instantly with empty stats — pruning never shifts any
    // sibling's identity, which is what keeps traces jobs-invariant.
    if (facts_.has_value()) {
      ir::FuncId dead_fn = -1;
      for (const monitor::LocId loc : res.construction.candidates[ci].nodes) {
        const ir::FuncId fid = monitor::loc_function(loc);
        if (!facts_->function_reachable(fid)) {
          dead_fn = fid;
          break;
        }
      }
      if (dead_fn >= 0) {
        slots[ci].completed = true;
        slots[ci].pruned = true;
        if (tracer_ != nullptr) {
          slot_traces[ci].emit(obs::EventKind::kStaticPrune,
                               static_cast<std::int64_t>(dead_fn), -1,
                               static_cast<std::int64_t>(ci + 1), "candidate");
        }
        return;
      }
    }
    CandidateGuidance guidance(m_, res.construction.candidates[ci],
                               res.predicates, opts_.guidance);
    symexec::ExecOptions exec_opts = opts_.exec;
    exec_opts.max_seconds = opts_.candidate_timeout_seconds;
    // Independent deterministic stream per candidate, whoever runs it.
    exec_opts.seed = derive_seed(opts_.exec.seed, ci);
    // Hunt the failure mode the logs describe; other faults reachable on
    // the way (a second bug in a multi-vulnerability program) end their
    // paths without ending the hunt (§III-C).
    if (exec_opts.target_function.empty()) {
      exec_opts.target_function =
          m_.function(monitor::loc_function(failure)).name;
    }
    // The engine handles exhausted guidance by marking the candidate path
    // infeasible and moving to the next one (§VII-C2), not by degrading the
    // current run to pure symbolic execution.
    exec_opts.wake_suspended = false;
    symexec::SymExecutor ex(m_, spec_, exec_opts);
    if (facts_.has_value()) ex.set_facts(&*facts_);
    ex.set_guidance(&guidance);
    ex.set_searcher(std::make_unique<GuidedSearcher>());
    ex.set_stop_flag(&cancel[ci]);
    if (env.stop != nullptr) ex.set_extra_stop_flag(env.stop);
    ex.set_shared_budget(&budget);
    if (opts_.share_solver_cache) ex.set_shared_solver_cache(&shared_queries);
    if (tracer_ != nullptr) {
      slot_traces[ci].emit(obs::EventKind::kExecBegin,
                           static_cast<std::int64_t>(ci + 1));
      ex.set_trace(&slot_traces[ci]);
    }

    symexec::ExecResult er = ex.run();
    slots[ci].completed =
        er.termination != symexec::Termination::kCancelled;
    const bool won = er.termination == symexec::Termination::kFoundFault &&
                     er.vuln.has_value();
    slots[ci].result = std::move(er);
    if (won) {
      std::lock_guard<std::mutex> lock(best_mu);
      if (ci < best.load(std::memory_order_relaxed)) {
        best.store(ci, std::memory_order_relaxed);
        for (std::size_t j = ci + 1; j < n_try; ++j) {
          cancel[j].store(true, std::memory_order_relaxed);
        }
      }
    }
  };

  {
    ThreadPool pool(width);
    std::vector<std::future<void>> futs;
    futs.reserve(n_try);
    for (std::size_t ci = 0; ci < n_try; ++ci) {
      futs.push_back(pool.submit([&attempt, ci] { attempt(ci); }));
    }
    for (auto& f : futs) f.get();
  }

  const std::size_t winner = best.load(std::memory_order_relaxed);
  if (winner < n_try) {
    res.found = true;
    res.vuln = std::move(slots[winner].result.vuln);
    res.winning_candidate = winner + 1;
  }
  // Account only the candidates the sequential loop would have tried (all
  // of which ran to completion here), keeping the sums thread-count
  // independent; cancelled better-than-nothing work is reported separately.
  const std::size_t counted = winner < n_try ? winner + 1 : n_try;
  for (std::size_t ci = 0; ci < counted; ++ci) {
    ++res.candidates_tried;
    if (slots[ci].pruned) ++res.candidates_pruned;
    res.paths_explored += slots[ci].result.stats.paths_explored;
    res.instructions += slots[ci].result.stats.instructions;
    res.solver_stats += slots[ci].result.solver_stats;
    if (tracer_ != nullptr) {
      if (env.sink != nullptr) {
        env.sink->append(std::move(slot_traces[ci]));
      } else {
        tracer_->absorb(std::move(slot_traces[ci]));
      }
    }
  }
  res.candidates_cancelled = n_try - counted;
  res.last_exec_stats = slots[counted - 1].result.stats;
}

void StatSymEngine::run_engines(EngineResult& res, monitor::LocId failure,
                                std::size_t n_try,
                                const std::vector<EngineKind>& lanes) {
  const std::size_t nlanes = lanes.size();
  const std::string target =
      m_.function(monitor::loc_function(failure)).name;

  // Per-lane race state, mirroring the candidate portfolio: a lane is
  // cancelled only when a *better-priority* lane has already verified the
  // vuln, so every lane at or before the eventual winner runs to its
  // natural termination and the winner is schedule-independent.
  std::deque<std::atomic<bool>> lane_cancel(nlanes);
  std::atomic<std::size_t> best{nlanes};
  std::mutex best_mu;

  // Machine-global budget across the race. The guided lane brings one
  // instruction-budget unit per candidate it may try; every other lane
  // brings one.
  std::size_t units = nlanes;
  for (const EngineKind k : lanes) {
    if (k == EngineKind::kGuided) units += n_try > 0 ? n_try - 1 : 0;
  }
  units = std::max<std::size_t>(units, 1);
  symexec::SharedBudget budget;
  budget.max_memory_bytes = opts_.exec.max_memory_bytes;
  budget.max_live_states = opts_.exec.max_live_states;
  budget.max_instructions = opts_.exec.max_instructions > ~0ull / units
                                ? ~0ull
                                : opts_.exec.max_instructions * units;

  // One query cache for everything: a concolic negation solve warms a
  // symbolic lane's fork probe and vice versa (fingerprints are
  // pool-independent, results pure functions of the slice). In service mode
  // the session's persistent cache takes its place and outlives the race.
  solver::SharedQueryCache own_queries;
  solver::SharedQueryCache& shared_queries =
      external_queries_ != nullptr ? *external_queries_ : own_queries;

  struct Lane {
    bool found{false};
    symexec::Termination termination{symexec::Termination::kExhausted};
    std::optional<symexec::VulnPath> vuln;
    std::uint64_t paths{0};
    std::uint64_t instructions{0};
    std::uint64_t concolic_runs{0};
    solver::SolverStats solver_stats;
    double seconds{0.0};
    // Guided-lane bookkeeping, applied to `res` only if the lane counts.
    std::size_t candidates_tried{0};
    std::size_t candidates_cancelled{0};
    std::size_t candidates_pruned{0};
    std::size_t winning_candidate{0};
    symexec::ExecStats last_exec_stats;
  };
  std::vector<Lane> lane_out(nlanes);

  // Lane trace buffers live at ids 100 + priority, distinct from the
  // candidate buffers (1-based rank) the guided lane nests inside its own.
  std::vector<obs::TraceBuffer> lane_traces;
  if (tracer_ != nullptr) {
    lane_traces.reserve(nlanes);
    for (std::size_t p = 0; p < nlanes; ++p) {
      lane_traces.push_back(
          tracer_->make_worker_buffer(static_cast<std::uint32_t>(100 + p)));
    }
  }

  auto run_lane = [&](std::size_t p) {
    Lane& L = lane_out[p];
    if (lane_cancel[p].load(std::memory_order_relaxed)) {
      L.termination = symexec::Termination::kCancelled;
      return;
    }
    obs::TraceBuffer* lt = tracer_ != nullptr ? &lane_traces[p] : nullptr;
    const EngineKind kind = lanes[p];
    if (lt != nullptr) {
      lt->emit(obs::EventKind::kEngineLaneBegin,
               static_cast<std::int64_t>(p), static_cast<std::int64_t>(kind),
               0, engine_kind_name(kind));
    }
    Stopwatch sw;
    switch (kind) {
      case EngineKind::kGuided: {
        EngineResult gres;
        gres.construction = res.construction;
        gres.predicates = res.predicates;
        PortfolioEnv env;
        env.stop = &lane_cancel[p];
        env.budget = &budget;
        if (opts_.share_solver_cache) env.shared_queries = &shared_queries;
        env.sink = lt;
        run_portfolio(gres, failure, n_try, env);
        L.found = gres.found;
        L.vuln = std::move(gres.vuln);
        L.paths = gres.paths_explored;
        L.instructions = gres.instructions;
        L.solver_stats = gres.solver_stats;
        L.candidates_tried = gres.candidates_tried;
        L.candidates_cancelled = gres.candidates_cancelled;
        L.candidates_pruned = gres.candidates_pruned;
        L.winning_candidate = gres.winning_candidate;
        L.last_exec_stats = gres.last_exec_stats;
        L.termination =
            L.found ? symexec::Termination::kFoundFault
            : lane_cancel[p].load(std::memory_order_relaxed)
                ? symexec::Termination::kCancelled
                : symexec::Termination::kExhausted;
        break;
      }
      case EngineKind::kPure: {
        symexec::ExecOptions eo = opts_.exec;
        eo.max_seconds = opts_.candidate_timeout_seconds;
        // Independent deterministic stream per lane: keyed by priority,
        // offset so it never collides with a candidate's derive_seed(ci).
        eo.seed = derive_seed(opts_.exec.seed, 1000 + p);
        if (eo.target_function.empty()) eo.target_function = target;
        symexec::SymExecutor ex(m_, spec_, eo);
        if (facts_.has_value()) ex.set_facts(&*facts_);
        ex.set_stop_flag(&lane_cancel[p]);
        ex.set_shared_budget(&budget);
        if (opts_.share_solver_cache) {
          ex.set_shared_solver_cache(&shared_queries);
        }
        if (lt != nullptr) {
          lt->emit(obs::EventKind::kExecBegin, 0);
          ex.set_trace(lt);
        }
        symexec::ExecResult er = ex.run();
        L.found = er.termination == symexec::Termination::kFoundFault &&
                  er.vuln.has_value();
        L.termination = er.termination;
        L.vuln = std::move(er.vuln);
        L.paths = er.stats.paths_explored;
        L.instructions = er.stats.instructions;
        L.solver_stats = er.solver_stats;
        break;
      }
      case EngineKind::kConcolic: {
        concolic::ConcolicOptions co;
        co.exec = opts_.exec;
        co.exec.max_seconds = opts_.candidate_timeout_seconds;
        if (co.exec.target_function.empty()) co.exec.target_function = target;
        co.max_runs = opts_.concolic_max_runs;
        co.seed = derive_seed(opts_.exec.seed, 2000 + p);
        concolic::ConcolicExecutor ce(m_, spec_, co);
        ce.set_stop_flag(&lane_cancel[p]);
        ce.set_shared_budget(&budget);
        if (opts_.share_solver_cache) {
          ce.set_shared_solver_cache(&shared_queries);
        }
        if (lt != nullptr) ce.set_trace(lt);
        concolic::ConcolicResult cr = ce.run();
        L.found = cr.termination == symexec::Termination::kFoundFault &&
                  cr.vuln.has_value();
        L.termination = cr.termination;
        L.vuln = std::move(cr.vuln);
        L.paths = cr.stats.runs;  // one followed path per concrete run
        L.instructions = cr.stats.instructions;
        L.concolic_runs = cr.stats.runs;
        L.solver_stats = cr.solver_stats;
        break;
      }
    }
    L.seconds = sw.elapsed_seconds();
    if (lt != nullptr) {
      lt->emit(obs::EventKind::kEngineLaneEnd, static_cast<std::int64_t>(p),
               L.found ? 1 : 0, static_cast<std::int64_t>(L.termination),
               engine_kind_name(kind));
    }
    if (L.found) {
      std::lock_guard<std::mutex> lock(best_mu);
      if (p < best.load(std::memory_order_relaxed)) {
        best.store(p, std::memory_order_relaxed);
        for (std::size_t j = p + 1; j < nlanes; ++j) {
          lane_cancel[j].store(true, std::memory_order_relaxed);
        }
      }
    }
  };

  {
    const std::size_t nthreads = effective_threads(opts_.num_threads);
    ThreadPool pool(std::max<std::size_t>(1, std::min(nlanes, nthreads)));
    std::vector<std::future<void>> futs;
    futs.reserve(nlanes);
    for (std::size_t p = 0; p < nlanes; ++p) {
      futs.push_back(pool.submit([&run_lane, p] { run_lane(p); }));
    }
    for (auto& f : futs) f.get();
  }

  const std::size_t winner = best.load(std::memory_order_relaxed);
  const std::size_t counted = winner < nlanes ? winner + 1 : nlanes;

  // Counted-prefix accounting plus normalization: lanes ranked after the
  // winner report kCancelled with zero stats however far they ran, and
  // their trace buffers are dropped — identical output at any schedule.
  res.lanes.resize(nlanes);
  for (std::size_t p = 0; p < nlanes; ++p) {
    EngineLaneResult& out = res.lanes[p];
    out.kind = lanes[p];
    out.priority = p;
    if (p >= counted) {
      out.termination = symexec::Termination::kCancelled;
      continue;
    }
    Lane& L = lane_out[p];
    out.found = L.found;
    out.termination = L.termination;
    out.paths_explored = L.paths;
    out.instructions = L.instructions;
    out.concolic_runs = L.concolic_runs;
    out.solver_stats = L.solver_stats;
    out.seconds = L.seconds;
    res.paths_explored += L.paths;
    res.instructions += L.instructions;
    res.solver_stats += L.solver_stats;
    if (lanes[p] == EngineKind::kGuided) {
      res.candidates_tried = L.candidates_tried;
      res.candidates_cancelled = L.candidates_cancelled;
      res.candidates_pruned = L.candidates_pruned;
      res.winning_candidate = L.winning_candidate;
      res.last_exec_stats = L.last_exec_stats;
    }
    if (tracer_ != nullptr) tracer_->absorb(std::move(lane_traces[p]));
  }
  if (winner < nlanes) {
    res.found = true;
    res.vuln = std::move(lane_out[winner].vuln);
    res.winning_engine = lanes[winner];
  }
}

std::vector<EngineResult> StatSymEngine::run_all(std::size_t max_vulns) {
  fold_pending_logs();
  std::vector<EngineResult> results;

  if (streamed_) {
    // Streaming: the per-cluster sufficient statistics already exist; run
    // the fit on correct-runs + one faulty cluster at a time, largest
    // cluster first (ties by name), exactly mirroring the batch subsets.
    std::vector<const std::string*> order;
    for (const auto& [fn, suff] : faulty_suff_) order.push_back(&fn);
    std::sort(order.begin(), order.end(),
              [&](const std::string* a, const std::string* b) {
                const std::size_t na = faulty_suff_.at(*a).num_faulty_runs();
                const std::size_t nb = faulty_suff_.at(*b).num_faulty_runs();
                if (na != nb) return na > nb;
                return *a < *b;
              });
    for (const std::string* fn : order) {
      if (results.size() >= max_vulns) break;
      stats::SuffStats subset;
      subset.merge(correct_suff_);
      subset.merge(faulty_suff_.at(*fn));
      EngineResult res = run_on(subset);
      if (res.found) results.push_back(std::move(res));
    }
    return results;
  }

  // Batch: cluster the retained faulty logs by fault function.
  std::map<std::string, std::vector<monitor::RunLog>> clusters;
  std::vector<monitor::RunLog> correct;
  for (const auto& log : logs_) {
    if (log.faulty) {
      clusters[log.fault_function].push_back(log);
    } else {
      correct.push_back(log);
    }
  }
  // Largest cluster first: the dominant failure mode is found first, as in
  // the paper's iterative one-by-one process.
  std::vector<const std::string*> order;
  for (const auto& [fn, logs] : clusters) order.push_back(&fn);
  std::sort(order.begin(), order.end(),
            [&](const std::string* a, const std::string* b) {
              if (clusters[*a].size() != clusters[*b].size()) {
                return clusters[*a].size() > clusters[*b].size();
              }
              return *a < *b;
            });

  for (const std::string* fn : order) {
    if (results.size() >= max_vulns) break;
    std::vector<monitor::RunLog> subset = correct;
    subset.insert(subset.end(), clusters[*fn].begin(), clusters[*fn].end());
    StatSymEngine sub(m_, spec_, opts_);
    sub.set_tracer(tracer_);
    sub.use_logs(std::move(subset));
    EngineResult res = sub.run();
    if (res.found) results.push_back(std::move(res));
  }
  return results;
}

symexec::ExecResult run_pure_symbolic(const ir::Module& m,
                                      const symexec::SymInputSpec& spec,
                                      const symexec::ExecOptions& opts,
                                      obs::TraceBuffer* trace,
                                      const analysis::ProgramFacts* facts) {
  symexec::SymExecutor ex(m, spec, opts);
  if (facts != nullptr) ex.set_facts(facts);
  if (trace != nullptr) {
    trace->emit(obs::EventKind::kExecBegin, 0);
    ex.set_trace(trace);
  }
  return ex.run();
}

}  // namespace statsym::core
