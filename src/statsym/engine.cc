#include "statsym/engine.h"

#include <algorithm>
#include <map>

#include "monitor/serialize.h"
#include "statsym/guided_searcher.h"
#include "support/stopwatch.h"

namespace statsym::core {

StatSymEngine::StatSymEngine(const ir::Module& m, symexec::SymInputSpec spec,
                             EngineOptions opts)
    : m_(m), spec_(std::move(spec)), opts_(opts) {}

void StatSymEngine::collect_logs(const WorkloadGen& gen) {
  Stopwatch sw;
  Rng rng(opts_.seed);
  std::size_t correct = 0;
  std::size_t faulty = 0;
  std::int32_t run_id = 0;
  for (std::size_t attempt = 0; attempt < opts_.max_workload_runs &&
                                (correct < opts_.target_correct_logs ||
                                 faulty < opts_.target_faulty_logs);
       ++attempt) {
    Rng input_rng = rng.split();
    interp::RuntimeInput input = gen(input_rng);
    auto run = monitor::run_monitored(m_, std::move(input), opts_.monitor,
                                      rng.split(), run_id);
    const bool is_faulty = run.log.faulty;
    // Keep only as many logs per class as the target asks for — the paper
    // randomly samples 100 correct + 100 faulty logs from a large pool.
    if (is_faulty && faulty < opts_.target_faulty_logs) {
      logs_.push_back(std::move(run.log));
      ++faulty;
      ++run_id;
    } else if (!is_faulty && correct < opts_.target_correct_logs) {
      logs_.push_back(std::move(run.log));
      ++correct;
      ++run_id;
    }
  }
  log_seconds_ = sw.elapsed_seconds();
}

void StatSymEngine::use_logs(std::vector<monitor::RunLog> logs) {
  logs_ = std::move(logs);
}

EngineResult StatSymEngine::run() {
  EngineResult res;
  res.log_seconds = log_seconds_;
  for (const auto& l : logs_) {
    if (l.faulty) {
      ++res.num_faulty_logs;
    } else {
      ++res.num_correct_logs;
    }
  }
  res.log_bytes = monitor::serialize(logs_).size();

  // --- Statistical analysis module ---------------------------------------
  Stopwatch stat_sw;
  stats::SampleSet samples;
  samples.build(logs_);

  stats::PredicateManager preds(opts_.predicates);
  preds.build(samples);
  res.predicates = preds.ranked();

  stats::TransitionGraph graph(opts_.graph);
  graph.build(logs_);

  const monitor::LocId failure =
      stats::TransitionGraph::failure_node(logs_, &m_);
  if (failure == monitor::kNoLoc) {
    res.stat_seconds = stat_sw.elapsed_seconds();
    return res;  // no faulty logs: nothing to guide toward
  }

  stats::PathBuilder builder(graph, preds, opts_.paths);
  auto construction = builder.build(failure);
  res.stat_seconds = stat_sw.elapsed_seconds();
  if (!construction.has_value()) return res;
  res.construction = std::move(*construction);

  // --- Statistics-guided symbolic execution ------------------------------
  Stopwatch exec_sw;
  const std::size_t n_try =
      std::min(res.construction.candidates.size(), opts_.max_candidates_tried);
  for (std::size_t ci = 0; ci < n_try; ++ci) {
    CandidateGuidance guidance(m_, res.construction.candidates[ci],
                               res.predicates, opts_.guidance);
    symexec::ExecOptions exec_opts = opts_.exec;
    exec_opts.max_seconds = opts_.candidate_timeout_seconds;
    // Hunt the failure mode the logs describe; other faults reachable on
    // the way (a second bug in a multi-vulnerability program) end their
    // paths without ending the hunt (§III-C).
    if (exec_opts.target_function.empty()) {
      exec_opts.target_function =
          m_.function(monitor::loc_function(failure)).name;
    }
    // The engine handles exhausted guidance by marking the candidate path
    // infeasible and moving to the next one (§VII-C2), not by degrading the
    // current run to pure symbolic execution.
    exec_opts.wake_suspended = false;
    symexec::SymExecutor ex(m_, spec_, exec_opts);
    ex.set_guidance(&guidance);
    ex.set_searcher(std::make_unique<GuidedSearcher>());

    symexec::ExecResult er = ex.run();
    ++res.candidates_tried;
    res.paths_explored += er.stats.paths_explored;
    res.instructions += er.stats.instructions;
    res.last_exec_stats = er.stats;
    if (er.termination == symexec::Termination::kFoundFault &&
        er.vuln.has_value()) {
      res.found = true;
      res.vuln = std::move(er.vuln);
      res.winning_candidate = ci + 1;
      break;
    }
  }
  res.symexec_seconds = exec_sw.elapsed_seconds();
  return res;
}

std::vector<EngineResult> StatSymEngine::run_all(std::size_t max_vulns) {
  std::vector<EngineResult> results;
  // Cluster the faulty logs by fault function.
  std::map<std::string, std::vector<monitor::RunLog>> clusters;
  std::vector<monitor::RunLog> correct;
  for (const auto& log : logs_) {
    if (log.faulty) {
      clusters[log.fault_function].push_back(log);
    } else {
      correct.push_back(log);
    }
  }
  // Largest cluster first: the dominant failure mode is found first, as in
  // the paper's iterative one-by-one process.
  std::vector<const std::string*> order;
  for (const auto& [fn, logs] : clusters) order.push_back(&fn);
  std::sort(order.begin(), order.end(),
            [&](const std::string* a, const std::string* b) {
              if (clusters[*a].size() != clusters[*b].size()) {
                return clusters[*a].size() > clusters[*b].size();
              }
              return *a < *b;
            });

  for (const std::string* fn : order) {
    if (results.size() >= max_vulns) break;
    std::vector<monitor::RunLog> subset = correct;
    subset.insert(subset.end(), clusters[*fn].begin(), clusters[*fn].end());
    StatSymEngine sub(m_, spec_, opts_);
    sub.use_logs(std::move(subset));
    EngineResult res = sub.run();
    if (res.found) results.push_back(std::move(res));
  }
  return results;
}

symexec::ExecResult run_pure_symbolic(const ir::Module& m,
                                      const symexec::SymInputSpec& spec,
                                      const symexec::ExecOptions& opts) {
  symexec::SymExecutor ex(m, spec, opts);
  return ex.run();
}

}  // namespace statsym::core
