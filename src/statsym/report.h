// Human-readable reports over engine results: ranked predicate tables
// (paper Table V / Fig. 8 style), candidate-path dumps (Fig. 9) and
// vulnerable-path summaries.
#pragma once

#include <string>

#include "statsym/engine.h"

namespace statsym::core {

// "P1  len(suspect FUNCPARAM) > 536.5   L9(does_newnameExist():enter)" rows.
std::string format_predicates(const ir::Module& m,
                              const std::vector<stats::Predicate>& preds,
                              std::size_t top_k);

// Instrumented locations legend (Fig. 8 style).
std::string format_locations(const ir::Module& m);

// Candidate paths with their node names and scores (Fig. 9 style).
std::string format_candidates(const ir::Module& m,
                              const stats::PathConstruction& pc);

// One-paragraph summary of a discovered vulnerable path.
std::string format_vuln(const ir::Module& m, const symexec::VulnPath& v);

// Solver-layer accounting: queries, slices, per-level cache hits and the
// wall time the fast paths saved (ISSUE 4 instrumentation).
std::string format_solver_stats(const solver::SolverStats& s);

// Named pipeline metrics (obs/metrics.h) as an aligned counter/gauge table;
// histograms print count/min/mean/max.
std::string format_metrics(const obs::MetricsRegistry& m);

}  // namespace statsym::core
