// Concrete memory: a set of fixed-size byte objects addressed by (ObjId,
// offset). All accesses are bounds-checked by the interpreter; an
// out-of-bounds store is precisely the buffer-overflow fault the target
// applications contain.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "interp/value.h"

namespace statsym::interp {

class Memory {
 public:
  // Allocates a zero-filled object of `size` bytes. size > 0.
  ObjId alloc(std::int64_t size, std::string label = {});

  // Allocates an object holding `s` followed by a NUL byte.
  ObjId alloc_string(const std::string& s, std::string label = {});

  bool valid(ObjId id) const {
    return id >= 0 && id < static_cast<ObjId>(objects_.size());
  }

  std::int64_t size(ObjId id) const;
  const std::string& label(ObjId id) const;

  // Unchecked accessors; callers must have validated bounds.
  std::uint8_t read(ObjId id, std::int64_t addr) const;
  void write(ObjId id, std::int64_t addr, std::uint8_t byte);

  bool in_bounds(ObjId id, std::int64_t addr) const {
    return valid(id) && addr >= 0 && addr < size(id);
  }

  // C-string view starting at `off`: bytes up to (not including) the first
  // NUL, or to the end of the object if none. Used by the monitor to log
  // string lengths/contents.
  std::string c_string(ObjId id, std::int64_t off = 0) const;

  // Length of the C string at `off` (distance to first NUL, or bytes
  // remaining when unterminated).
  std::int64_t c_strlen(ObjId id, std::int64_t off = 0) const;

  // Overwrites the object's prefix with `s` (no NUL appended; the object
  // must be at least s.size() bytes).
  void fill(ObjId id, const std::string& s);

  std::size_t object_count() const { return objects_.size(); }
  std::size_t total_bytes() const { return total_bytes_; }

 private:
  struct Object {
    std::vector<std::uint8_t> bytes;
    std::string label;
  };
  std::vector<Object> objects_;
  std::size_t total_bytes_{0};
};

}  // namespace statsym::interp
