// Concrete runtime values for the mini-IR: 64-bit integers and references
// into bounds-checked byte buffers.
#pragma once

#include <cstdint>
#include <string>

namespace statsym::interp {

using ObjId = std::int32_t;
inline constexpr ObjId kNullObj = -1;

struct Value {
  enum class Kind : std::uint8_t { kInt, kRef };

  Kind kind{Kind::kInt};
  std::int64_t i{0};   // integer payload (Kind::kInt)
  ObjId obj{kNullObj};  // object id (Kind::kRef)
  std::int64_t off{0};  // offset within the object (Kind::kRef)

  static Value make_int(std::int64_t v) { return {Kind::kInt, v, kNullObj, 0}; }
  static Value make_ref(ObjId o, std::int64_t off = 0) {
    return {Kind::kRef, 0, o, off};
  }
  static Value null_ref() { return make_ref(kNullObj); }

  bool is_int() const { return kind == Kind::kInt; }
  bool is_ref() const { return kind == Kind::kRef; }
  bool is_null_ref() const { return is_ref() && obj == kNullObj; }

  // Branch condition semantics: ints are truthy when non-zero, refs when
  // non-null (mirrors C pointer tests like `if (p)`).
  bool truthy() const { return is_int() ? (i != 0) : (obj != kNullObj); }

  bool operator==(const Value& o) const = default;
};

std::string to_string(const Value& v);

}  // namespace statsym::interp
