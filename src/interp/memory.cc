#include "interp/memory.h"

#include <cassert>

namespace statsym::interp {

ObjId Memory::alloc(std::int64_t size, std::string label) {
  assert(size > 0);
  Object o;
  o.bytes.assign(static_cast<std::size_t>(size), 0);
  o.label = std::move(label);
  total_bytes_ += o.bytes.size();
  objects_.push_back(std::move(o));
  return static_cast<ObjId>(objects_.size() - 1);
}

ObjId Memory::alloc_string(const std::string& s, std::string label) {
  const ObjId id =
      alloc(static_cast<std::int64_t>(s.size()) + 1, std::move(label));
  fill(id, s);
  return id;
}

std::int64_t Memory::size(ObjId id) const {
  assert(valid(id));
  return static_cast<std::int64_t>(objects_[id].bytes.size());
}

const std::string& Memory::label(ObjId id) const {
  assert(valid(id));
  return objects_[id].label;
}

std::uint8_t Memory::read(ObjId id, std::int64_t addr) const {
  assert(in_bounds(id, addr));
  return objects_[id].bytes[static_cast<std::size_t>(addr)];
}

void Memory::write(ObjId id, std::int64_t addr, std::uint8_t byte) {
  assert(in_bounds(id, addr));
  objects_[id].bytes[static_cast<std::size_t>(addr)] = byte;
}

std::string Memory::c_string(ObjId id, std::int64_t off) const {
  assert(valid(id));
  std::string out;
  for (std::int64_t a = off; a < size(id); ++a) {
    const std::uint8_t b = read(id, a);
    if (b == 0) break;
    out.push_back(static_cast<char>(b));
  }
  return out;
}

std::int64_t Memory::c_strlen(ObjId id, std::int64_t off) const {
  assert(valid(id));
  std::int64_t n = 0;
  for (std::int64_t a = off; a < size(id); ++a, ++n) {
    if (read(id, a) == 0) break;
  }
  return n;
}

void Memory::fill(ObjId id, const std::string& s) {
  assert(valid(id));
  assert(static_cast<std::int64_t>(s.size()) <= size(id));
  for (std::size_t i = 0; i < s.size(); ++i) {
    write(id, static_cast<std::int64_t>(i), static_cast<std::uint8_t>(s[i]));
  }
}

}  // namespace statsym::interp
