// Concrete interpreter for the mini-IR.
//
// Runs a module against a RuntimeInput (argv strings, environment variables,
// values for symbolic markers) with full bounds checking. A run terminates
// in one of three ways: normal return from main, a fault (the failure model
// of the paper — buffer overflow, failed assertion, division by zero, null
// dereference, runaway recursion), or exhaustion of the step budget.
//
// The interpreter publishes function entry/exit events to an optional
// InterpListener; the monitor module implements the listener to produce the
// sampled runtime logs that feed statistical analysis.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "interp/memory.h"
#include "ir/module.h"

namespace statsym::interp {

// Inputs to one program run.
struct RuntimeInput {
  std::vector<std::string> argv;
  std::map<std::string, std::string> env;
  std::map<std::string, std::int64_t> sym_ints;   // values for kMakeSymInt
  std::map<std::string, std::string> sym_bufs;    // contents for kMakeSymBuf
};

enum class FaultKind : std::uint8_t {
  kNone,
  kOobStore,   // buffer overflow on write (the vulnerability trigger)
  kOobLoad,    // out-of-bounds read
  kNullDeref,
  kAssertFail,
  kDivByZero,
  kBadArgIndex,
  kStackOverflow,
};

const char* fault_kind_name(FaultKind k);

struct FaultInfo {
  FaultKind kind{FaultKind::kNone};
  std::string function;   // function containing the faulting instruction
  ir::BlockId block{ir::kNoBlock};
  std::int32_t instr{-1};
  std::string detail;     // human-readable specifics (object, index, ...)
};

enum class RunOutcome : std::uint8_t { kOk, kFault, kStepLimit };

struct RunResult {
  RunOutcome outcome{RunOutcome::kOk};
  FaultInfo fault;                 // valid when outcome == kFault
  std::int64_t steps{0};           // instructions executed
  std::optional<Value> main_ret;   // valid when outcome == kOk
};

class Interpreter;

// Observer of function entry/exit (the instrumentation points of the paper's
// program monitor). `params` are the argument values; `ret` is present only
// on on_leave of value-returning functions.
class InterpListener {
 public:
  virtual ~InterpListener() = default;
  virtual void on_enter(const Interpreter& interp, const ir::Function& fn,
                        std::span<const Value> params) = 0;
  virtual void on_leave(const Interpreter& interp, const ir::Function& fn,
                        std::span<const Value> params,
                        const std::optional<Value>& ret) = 0;
  // Fine-grained control-flow observation (default no-ops so the sampling
  // monitor is untouched): on_block fires whenever control enters a basic
  // block — function entry (block 0) and every kJmp/kBr transfer; on_branch
  // fires at each kBr with the concrete decision. The static-facts fuzz
  // oracle implements these to check that no provably-unreachable block
  // executes and no statically-decided branch flips at runtime.
  virtual void on_block(const Interpreter& interp, const ir::Function& fn,
                        ir::BlockId block) {
    (void)interp;
    (void)fn;
    (void)block;
  }
  virtual void on_branch(const Interpreter& interp, const ir::Function& fn,
                         ir::BlockId block, bool taken) {
    (void)interp;
    (void)fn;
    (void)block;
    (void)taken;
  }
};

// Models external calls (libc/syscall stand-ins). Returns the call's result;
// the default model is a pure function returning 0 so external calls are
// logged structure, not behaviour.
using ExternModel =
    std::function<Value(const std::string& name, std::span<const Value> args)>;

struct InterpOptions {
  std::int64_t max_steps{50'000'000};
  std::int32_t max_call_depth{256};
  // Faults inside functions with this prefix are attributed to the first
  // caller outside it (the IR stdlib convention; matches the symbolic
  // executor's reporting).
  std::string library_prefix{"__"};
};

class Interpreter {
 public:
  Interpreter(const ir::Module& m, RuntimeInput input,
              InterpOptions opts = {});

  void set_listener(InterpListener* l) { listener_ = l; }
  void set_extern_model(ExternModel em) { extern_model_ = std::move(em); }

  // Executes main() to completion. May be called once per Interpreter.
  RunResult run();

  // --- introspection (valid during listener callbacks and after run) ------
  const ir::Module& module() const { return m_; }
  const Memory& memory() const { return mem_; }

  // Value of a module global by name.
  Value global_value(const std::string& name) const;

  // Length of the C string a ref points at (0 for null/ints — callers use
  // this to log "len(x)" for string-typed variables).
  std::int64_t string_length(const Value& v) const;

 private:
  struct Frame {
    ir::FuncId func{ir::kNoFunc};
    ir::BlockId block{0};
    std::int32_t idx{0};
    std::vector<Value> regs;
    ir::Reg ret_dst{ir::kNoReg};  // caller register receiving the result
    std::vector<Value> params;    // snapshot for on_leave
  };

  // Steps one instruction of the top frame. Returns false when execution
  // must stop (fault recorded in result_).
  bool step();

  void fault(FaultKind kind, std::string detail);
  void enter_function(ir::FuncId id, std::vector<Value> args, ir::Reg ret_dst);
  // Pops the top frame delivering `ret` to the caller; handles main return.
  void leave_function(std::optional<Value> ret);

  const ir::Module& m_;
  RuntimeInput input_;
  InterpOptions opts_;
  Memory mem_;
  std::vector<Value> globals_;
  std::vector<ObjId> argv_objs_;
  std::map<std::string, ObjId> env_objs_;
  std::vector<Frame> stack_;
  InterpListener* listener_{nullptr};
  ExternModel extern_model_;
  RunResult result_;
  bool done_{false};
};

}  // namespace statsym::interp
