#include "interp/value.h"

namespace statsym::interp {

std::string to_string(const Value& v) {
  if (v.is_int()) return std::to_string(v.i);
  if (v.is_null_ref()) return "null";
  return "&obj" + std::to_string(v.obj) + "+" + std::to_string(v.off);
}

}  // namespace statsym::interp
