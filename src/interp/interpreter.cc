#include "interp/interpreter.h"

#include <algorithm>
#include <cassert>

namespace statsym::interp {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kOobStore: return "oob-store";
    case FaultKind::kOobLoad: return "oob-load";
    case FaultKind::kNullDeref: return "null-deref";
    case FaultKind::kAssertFail: return "assert-fail";
    case FaultKind::kDivByZero: return "div-by-zero";
    case FaultKind::kBadArgIndex: return "bad-arg-index";
    case FaultKind::kStackOverflow: return "stack-overflow";
  }
  return "?";
}

Interpreter::Interpreter(const ir::Module& m, RuntimeInput input,
                         InterpOptions opts)
    : m_(m), input_(std::move(input)), opts_(opts) {
  // Materialise globals: ints hold their initial value, buffers are
  // allocated up front and the slot holds a reference to them.
  globals_.reserve(m_.globals().size());
  for (const auto& g : m_.globals()) {
    if (g.kind == ir::Global::Kind::kInt) {
      globals_.push_back(Value::make_int(g.init_int));
    } else {
      globals_.push_back(Value::make_ref(mem_.alloc(g.buf_size, g.name)));
    }
  }
  for (std::size_t i = 0; i < input_.argv.size(); ++i) {
    argv_objs_.push_back(
        mem_.alloc_string(input_.argv[i], "argv" + std::to_string(i)));
  }
  for (const auto& [name, val] : input_.env) {
    env_objs_[name] = mem_.alloc_string(val, "env:" + name);
  }
}

Value Interpreter::global_value(const std::string& name) const {
  const std::int32_t idx = m_.find_global(name);
  assert(idx >= 0);
  return globals_[static_cast<std::size_t>(idx)];
}

std::int64_t Interpreter::string_length(const Value& v) const {
  if (!v.is_ref() || v.is_null_ref()) return 0;
  return mem_.c_strlen(v.obj, v.off);
}

void Interpreter::fault(FaultKind kind, std::string detail) {
  const Frame& f = stack_.back();
  result_.outcome = RunOutcome::kFault;
  result_.fault.kind = kind;
  result_.fault.function = m_.function(f.func).name;
  if (!opts_.library_prefix.empty()) {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      const std::string& name = m_.function(it->func).name;
      if (!name.starts_with(opts_.library_prefix)) {
        result_.fault.function = name;
        break;
      }
    }
  }
  result_.fault.block = f.block;
  result_.fault.instr = f.idx;
  result_.fault.detail = std::move(detail);
  done_ = true;
}

void Interpreter::enter_function(ir::FuncId id, std::vector<Value> args,
                                 ir::Reg ret_dst) {
  const ir::Function& fn = m_.function(id);
  Frame f;
  f.func = id;
  f.ret_dst = ret_dst;
  f.regs.assign(static_cast<std::size_t>(fn.num_regs), Value::make_int(0));
  for (std::size_t i = 0; i < args.size(); ++i) f.regs[i] = args[i];
  f.params = std::move(args);
  stack_.push_back(std::move(f));
  if (listener_ != nullptr) {
    listener_->on_enter(*this, fn, stack_.back().params);
    listener_->on_block(*this, fn, 0);
  }
}

void Interpreter::leave_function(std::optional<Value> ret) {
  const Frame& f = stack_.back();
  const ir::Function& fn = m_.function(f.func);
  if (listener_ != nullptr) {
    listener_->on_leave(*this, fn, f.params, ret);
  }
  const ir::Reg dst = f.ret_dst;
  stack_.pop_back();
  if (stack_.empty()) {
    result_.outcome = RunOutcome::kOk;
    result_.main_ret = ret;
    done_ = true;
    return;
  }
  if (dst != ir::kNoReg) {
    stack_.back().regs[static_cast<std::size_t>(dst)] =
        ret.value_or(Value::make_int(0));
  }
}

RunResult Interpreter::run() {
  assert(!done_ && stack_.empty() && "run() may be called once");
  enter_function(m_.entry(), {}, ir::kNoReg);
  while (!done_) {
    if (result_.steps >= opts_.max_steps) {
      result_.outcome = RunOutcome::kStepLimit;
      break;
    }
    if (!step()) break;
  }
  return result_;
}

bool Interpreter::step() {
  Frame& f = stack_.back();
  const ir::Function& fn = m_.function(f.func);
  const ir::Instr& in = fn.blocks[static_cast<std::size_t>(f.block)]
                            .instrs[static_cast<std::size_t>(f.idx)];
  ++result_.steps;

  auto r = [&](ir::Reg reg) -> Value& {
    return f.regs[static_cast<std::size_t>(reg)];
  };
  auto set = [&](ir::Reg reg, Value v) {
    f.regs[static_cast<std::size_t>(reg)] = v;
  };
  // Advances to the next instruction in the current block.
  auto advance = [&] { ++f.idx; };

  switch (in.op) {
    case ir::Opcode::kConst:
      set(in.dst, Value::make_int(in.imm));
      advance();
      break;
    case ir::Opcode::kMove:
      set(in.dst, r(in.a));
      advance();
      break;
    case ir::Opcode::kBin: {
      const Value a = r(in.a);
      const Value b = r(in.b);
      // Reference equality compares identity; every other operator requires
      // integer operands (ref arithmetic is not part of the IR).
      if (a.is_ref() || b.is_ref()) {
        if (in.bin == ir::BinOp::kEq || in.bin == ir::BinOp::kNe) {
          const bool same = a.is_ref() && b.is_ref() && a.obj == b.obj &&
                            a.off == b.off;
          const bool both_null = a.is_null_ref() && b.is_null_ref();
          const bool eq = same || both_null;
          set(in.dst,
              Value::make_int(in.bin == ir::BinOp::kEq ? eq : !eq));
          advance();
          break;
        }
        fault(FaultKind::kNullDeref, "arithmetic on reference");
        return false;
      }
      if ((in.bin == ir::BinOp::kDiv || in.bin == ir::BinOp::kRem) &&
          b.i == 0) {
        fault(FaultKind::kDivByZero, "");
        return false;
      }
      set(in.dst, Value::make_int(ir::eval_binop(in.bin, a.i, b.i)));
      advance();
      break;
    }
    case ir::Opcode::kNot:
      set(in.dst, Value::make_int(r(in.a).truthy() ? 0 : 1));
      advance();
      break;
    case ir::Opcode::kNeg: {
      const Value a = r(in.a);
      if (!a.is_int()) {
        fault(FaultKind::kNullDeref, "negate reference");
        return false;
      }
      set(in.dst, Value::make_int(static_cast<std::int64_t>(
                      -static_cast<std::uint64_t>(a.i))));
      advance();
      break;
    }
    case ir::Opcode::kAlloca:
      set(in.dst, Value::make_ref(mem_.alloc(in.imm, fn.name + ":alloca")));
      advance();
      break;
    case ir::Opcode::kStrConst:
      set(in.dst, Value::make_ref(mem_.alloc_string(in.str, "strconst")));
      advance();
      break;
    case ir::Opcode::kLoad: {
      const Value ref = r(in.a);
      const Value idx = r(in.b);
      if (!ref.is_ref() || ref.is_null_ref()) {
        fault(FaultKind::kNullDeref, "load through null/int");
        return false;
      }
      const std::int64_t addr = ref.off + idx.i;
      if (!mem_.in_bounds(ref.obj, addr)) {
        fault(FaultKind::kOobLoad,
              mem_.label(ref.obj) + "[" + std::to_string(addr) + "]");
        return false;
      }
      set(in.dst, Value::make_int(mem_.read(ref.obj, addr)));
      advance();
      break;
    }
    case ir::Opcode::kStore: {
      const Value ref = r(in.a);
      const Value idx = r(in.b);
      const Value val = r(in.c);
      if (!ref.is_ref() || ref.is_null_ref()) {
        fault(FaultKind::kNullDeref, "store through null/int");
        return false;
      }
      const std::int64_t addr = ref.off + idx.i;
      if (!mem_.in_bounds(ref.obj, addr)) {
        fault(FaultKind::kOobStore,
              mem_.label(ref.obj) + "[" + std::to_string(addr) + "]");
        return false;
      }
      mem_.write(ref.obj, addr, static_cast<std::uint8_t>(val.i & 0xff));
      advance();
      break;
    }
    case ir::Opcode::kBufSize: {
      const Value ref = r(in.a);
      if (!ref.is_ref() || ref.is_null_ref()) {
        fault(FaultKind::kNullDeref, "bufsize of null/int");
        return false;
      }
      set(in.dst, Value::make_int(mem_.size(ref.obj)));
      advance();
      break;
    }
    case ir::Opcode::kLoadG:
      set(in.dst, globals_[static_cast<std::size_t>(m_.find_global(in.str))]);
      advance();
      break;
    case ir::Opcode::kStoreG:
      globals_[static_cast<std::size_t>(m_.find_global(in.str))] = r(in.a);
      advance();
      break;
    case ir::Opcode::kJmp:
      f.block = in.t0;
      f.idx = 0;
      if (listener_ != nullptr) {
        listener_->on_block(*this, m_.function(f.func), f.block);
      }
      break;
    case ir::Opcode::kBr: {
      const bool taken = r(in.a).truthy();
      if (listener_ != nullptr) {
        listener_->on_branch(*this, m_.function(f.func), f.block, taken);
      }
      f.block = taken ? in.t0 : in.t1;
      f.idx = 0;
      if (listener_ != nullptr) {
        listener_->on_block(*this, m_.function(f.func), f.block);
      }
      break;
    }
    case ir::Opcode::kCall: {
      if (static_cast<std::int32_t>(stack_.size()) >= opts_.max_call_depth) {
        fault(FaultKind::kStackOverflow, in.str);
        return false;
      }
      std::vector<Value> args;
      args.reserve(in.args.size());
      for (ir::Reg a : in.args) args.push_back(r(a));
      advance();  // resume after the call on return
      enter_function(static_cast<ir::FuncId>(in.imm), std::move(args), in.dst);
      break;
    }
    case ir::Opcode::kCallExt: {
      std::vector<Value> args;
      args.reserve(in.args.size());
      for (ir::Reg a : in.args) args.push_back(r(a));
      Value res = Value::make_int(0);
      if (extern_model_) res = extern_model_(in.str, args);
      if (in.dst != ir::kNoReg) set(in.dst, res);
      advance();
      break;
    }
    case ir::Opcode::kRet: {
      std::optional<Value> ret;
      if (in.a != ir::kNoReg) ret = r(in.a);
      leave_function(ret);
      break;
    }
    case ir::Opcode::kArgc:
      set(in.dst, Value::make_int(static_cast<std::int64_t>(argv_objs_.size())));
      advance();
      break;
    case ir::Opcode::kArg: {
      const Value idx = r(in.a);
      if (idx.i < 0 || idx.i >= static_cast<std::int64_t>(argv_objs_.size())) {
        fault(FaultKind::kBadArgIndex, std::to_string(idx.i));
        return false;
      }
      set(in.dst, Value::make_ref(argv_objs_[static_cast<std::size_t>(idx.i)]));
      advance();
      break;
    }
    case ir::Opcode::kEnv: {
      auto it = env_objs_.find(in.str);
      set(in.dst, it == env_objs_.end() ? Value::null_ref()
                                        : Value::make_ref(it->second));
      advance();
      break;
    }
    case ir::Opcode::kMakeSymInt: {
      std::int64_t v = in.imm;  // default: domain minimum
      if (auto it = input_.sym_ints.find(in.str); it != input_.sym_ints.end()) {
        v = std::clamp(it->second, in.imm, in.imm2);
      }
      set(in.dst, Value::make_int(v));
      advance();
      break;
    }
    case ir::Opcode::kMakeSymBuf: {
      const Value ref = r(in.a);
      if (!ref.is_ref() || ref.is_null_ref()) {
        fault(FaultKind::kNullDeref, "make_symbolic on null/int");
        return false;
      }
      if (auto it = input_.sym_bufs.find(in.str); it != input_.sym_bufs.end()) {
        // Copy as much of the concrete content as fits, leaving at least one
        // NUL terminator inside the object.
        const std::int64_t cap = mem_.size(ref.obj) - ref.off;
        const auto n = std::min<std::int64_t>(
            static_cast<std::int64_t>(it->second.size()), cap - 1);
        for (std::int64_t i = 0; i < n; ++i) {
          mem_.write(ref.obj, ref.off + i,
                     static_cast<std::uint8_t>(it->second[static_cast<std::size_t>(i)]));
        }
        if (cap > 0) mem_.write(ref.obj, ref.off + n, 0);
      }
      advance();
      break;
    }
    case ir::Opcode::kAssert:
      if (!r(in.a).truthy()) {
        fault(FaultKind::kAssertFail, "");
        return false;
      }
      advance();
      break;
    case ir::Opcode::kPrint:
      advance();
      break;
  }
  return !done_;
}

}  // namespace statsym::interp
