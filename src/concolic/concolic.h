// Concolic (dynamic symbolic) execution backend — the portfolio's third
// engine (DESIGN.md §11).
//
// Exploration runs the SAGE-style generational search the symbolic-execution
// survey describes as the complement of static forking: execute the program
// on a *concrete* input while shadow-recording the symbolic condition of
// every decision (symexec's follow mode — one state, no forks, no fork-time
// solver queries), then for every decision index >= the input's generation
// bound, solve `path-prefix ∧ ¬condition` and turn each model into a new
// concrete input one branch away from the followed path. The worklist is a
// FIFO queue seeded with the all-defaults input, so the search expands
// generation by generation in a canonical order.
//
// Determinism contract: the driver is internally sequential, the worklist
// order is a pure function of the followed paths, negation queries go
// through the probe cascade whose canonical solves are pure functions of the
// slice (solver/solver.h), and every per-run RNG stream derives from
// (options.seed, run index). Results are therefore byte-identical at any
// thread count of the surrounding engine — racing concolic in the portfolio
// never perturbs what it reports.
//
// Resource integration mirrors SymExecutor: a SharedBudget bounds the whole
// lane (each follow run publishes its instructions there), a stop flag
// cancels between and inside runs, the SharedQueryCache is shared with the
// symbolic lanes (negation solves warm their lookups and vice versa), and an
// obs::TraceBuffer receives kConcolicRun / kConcolicNegation events plus the
// per-run executor and solver events.
#pragma once

#include <atomic>
#include <optional>
#include <string>

#include "obs/trace.h"
#include "solver/cache.h"
#include "solver/solver.h"
#include "symexec/executor.h"

namespace statsym::concolic {

struct ConcolicOptions {
  // Per-run execution options (budgets, target_function, library_prefix).
  // `max_seconds` bounds the whole lane, not one run; stop_at_first_fault
  // and searcher are ignored (follow mode runs exactly one path).
  symexec::ExecOptions exec{};
  // Concrete executions before the lane reports budget exhaustion.
  std::size_t max_runs{512};
  // Queued-but-unexecuted inputs cap; negations stop enqueuing beyond it.
  std::size_t max_frontier{4096};
  // Negation queries get a bigger budget class than fork-time probes: one
  // SAT model opens a whole new input region.
  solver::SolverOptions negation_solver_opts{.max_search_nodes = 200'000,
                                             .max_query_seconds = 5.0};
  std::uint64_t seed{1};
};

struct ConcolicStats {
  std::uint64_t runs{0};              // concrete executions performed
  std::uint64_t decisions{0};         // decision points recorded, summed
  std::uint64_t negations_tried{0};
  std::uint64_t negations_sat{0};
  std::uint64_t negations_unsat{0};
  std::uint64_t negations_unknown{0};
  std::uint64_t inputs_deduped{0};    // SAT models that re-derived a seen input
  std::uint64_t frontier_peak{0};
  std::uint64_t instructions{0};      // summed over follow runs
  double seconds{0.0};
};

struct ConcolicResult {
  symexec::Termination termination{symexec::Termination::kExhausted};
  std::optional<symexec::VulnPath> vuln;
  ConcolicStats stats;
  solver::SolverStats solver_stats;
};

// Renders a RuntimeInput as a canonical single-line key (used for worklist
// dedup; exposed for tests).
std::string input_key(const interp::RuntimeInput& in);

// The all-defaults seed input for a spec: concrete argv/env entries keep
// their fixed strings, symbolic ones start empty, and sym_ints/sym_bufs
// start at their interpreter defaults (domain minimum / empty). Exposed so
// the fuzz harness replays the exact generation-0 input.
interp::RuntimeInput seed_input(const symexec::SymInputSpec& spec);

class ConcolicExecutor {
 public:
  ConcolicExecutor(const ir::Module& m, symexec::SymInputSpec spec,
                   ConcolicOptions opts);

  // Same cooperative integration points as SymExecutor; all must outlive
  // run().
  void set_stop_flag(const std::atomic<bool>* flag) { stop_flag_ = flag; }
  void set_shared_budget(symexec::SharedBudget* budget) { budget_ = budget; }
  void set_shared_solver_cache(solver::SharedQueryCache* cache) {
    shared_cache_ = cache;
  }
  void set_trace(obs::TraceBuffer* trace) { trace_ = trace; }

  ConcolicResult run();

 private:
  const ir::Module& m_;
  symexec::SymInputSpec spec_;
  ConcolicOptions opts_;
  const std::atomic<bool>* stop_flag_{nullptr};
  symexec::SharedBudget* budget_{nullptr};
  solver::SharedQueryCache* shared_cache_{nullptr};
  obs::TraceBuffer* trace_{nullptr};
};

}  // namespace statsym::concolic
