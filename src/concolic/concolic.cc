#include "concolic/concolic.h"

#include <algorithm>
#include <deque>
#include <set>
#include <span>
#include <sstream>
#include <utility>

#include "support/rng.h"
#include "support/stopwatch.h"

namespace statsym::concolic {

// Canonical, collision-free rendering (length-prefixed strings, map order).
std::string input_key(const interp::RuntimeInput& in) {
  std::ostringstream os;
  os << "a" << in.argv.size();
  for (const auto& s : in.argv) os << '|' << s.size() << ':' << s;
  os << "|e";
  for (const auto& [k, v] : in.env) os << '|' << k << '=' << v.size() << ':' << v;
  os << "|i";
  for (const auto& [k, v] : in.sym_ints) os << '|' << k << '=' << v;
  os << "|b";
  for (const auto& [k, v] : in.sym_bufs) {
    os << '|' << k << '=' << v.size() << ':' << v;
  }
  return os.str();
}

interp::RuntimeInput seed_input(const symexec::SymInputSpec& spec) {
  interp::RuntimeInput in;
  for (const auto& a : spec.argv) {
    in.argv.push_back(a.symbolic ? std::string() : a.concrete);
  }
  for (const auto& [name, s] : spec.env) {
    in.env[name] = s.symbolic ? std::string() : s.concrete;
  }
  // sym_ints / sym_bufs stay empty: the interpreter and follow mode both
  // default missing entries to the domain minimum / all-NUL content.
  return in;
}

ConcolicExecutor::ConcolicExecutor(const ir::Module& m,
                                   symexec::SymInputSpec spec,
                                   ConcolicOptions opts)
    : m_(m), spec_(std::move(spec)), opts_(opts) {}

ConcolicResult ConcolicExecutor::run() {
  ConcolicResult result;
  ConcolicStats& cs = result.stats;
  Stopwatch sw;

  // A queued concrete input plus its generation bound: decisions before the
  // bound were already negated by an ancestor run and are not re-negated —
  // the standard generational-search de-duplication.
  struct WorkItem {
    interp::RuntimeInput input;
    std::size_t bound{0};
  };
  std::deque<WorkItem> frontier;
  std::set<std::string> seen;

  {
    interp::RuntimeInput seed = seed_input(spec_);
    seen.insert(input_key(seed));
    frontier.push_back(WorkItem{std::move(seed), 0});
  }
  cs.frontier_peak = 1;

  symexec::Termination term = symexec::Termination::kExhausted;
  auto stopped = [&] {
    return stop_flag_ != nullptr &&
           stop_flag_->load(std::memory_order_relaxed);
  };

  bool done = false;
  while (!frontier.empty() && !done) {
    if (stopped()) {
      term = symexec::Termination::kCancelled;
      break;
    }
    if (sw.elapsed_seconds() > opts_.exec.max_seconds) {
      term = symexec::Termination::kTimeout;
      break;
    }
    if (budget_ != nullptr &&
        budget_->instructions.load(std::memory_order_relaxed) >
            budget_->max_instructions) {
      term = symexec::Termination::kInstrLimit;
      break;
    }
    if (cs.runs >= opts_.max_runs) {
      term = symexec::Termination::kInstrLimit;
      break;
    }

    WorkItem item = std::move(frontier.front());
    frontier.pop_front();

    // --- one concrete execution under the symbolic shadow ------------------
    symexec::ExecOptions eo = opts_.exec;
    eo.stop_at_first_fault = true;
    eo.wake_suspended = false;
    eo.seed = derive_seed(opts_.seed, cs.runs);
    eo.max_seconds =
        std::max(0.0, opts_.exec.max_seconds - sw.elapsed_seconds());
    symexec::SymExecutor ex(m_, spec_, eo);
    ex.set_follow_input(item.input);
    if (stop_flag_ != nullptr) ex.set_stop_flag(stop_flag_);
    if (budget_ != nullptr) ex.set_shared_budget(budget_);
    if (shared_cache_ != nullptr) ex.set_shared_solver_cache(shared_cache_);
    if (trace_ != nullptr) ex.set_trace(trace_);

    const std::uint64_t run_idx = cs.runs;
    symexec::ExecResult er = ex.run();
    ++cs.runs;
    cs.decisions += ex.decisions().size();
    cs.instructions += er.stats.instructions;
    result.solver_stats += er.solver_stats;
    const bool faulted =
        er.termination == symexec::Termination::kFoundFault &&
        er.vuln.has_value();
    if (trace_ != nullptr) {
      trace_->emit(obs::EventKind::kConcolicRun,
                   static_cast<std::int64_t>(run_idx),
                   static_cast<std::int64_t>(ex.decisions().size()),
                   faulted ? 1 : 0);
    }
    if (er.termination == symexec::Termination::kCancelled) {
      term = symexec::Termination::kCancelled;
      break;
    }
    if (faulted) {
      // FIFO order makes the first faulting run canonical: this is the
      // lane's deterministic winner at any thread count.
      result.vuln = std::move(er.vuln);
      term = symexec::Termination::kFoundFault;
      break;
    }

    // --- generational expansion: negate the suffix decisions ---------------
    const std::vector<symexec::Decision>& decs = ex.decisions();
    const std::vector<solver::ExprId>& path = ex.followed_path();
    solver::QueryCache run_cache;  // ExprIds are pool-local: one run, one cache
    solver::Solver neg(ex.pool(), opts_.negation_solver_opts);
    neg.set_cache(&run_cache);
    if (shared_cache_ != nullptr) neg.set_shared_cache(shared_cache_);
    if (trace_ != nullptr) neg.set_trace(trace_);

    for (std::size_t i = item.bound; i < decs.size(); ++i) {
      if (stopped()) {
        term = symexec::Termination::kCancelled;
        done = true;
        break;
      }
      if (sw.elapsed_seconds() > opts_.exec.max_seconds) {
        term = symexec::Termination::kTimeout;
        done = true;
        break;
      }
      if (frontier.size() >= opts_.max_frontier) break;
      ++cs.negations_tried;
      const std::size_t plen = std::min(decs[i].pc_prefix, path.size());
      const auto res = neg.check_with(
          std::span<const solver::ExprId>(path.data(), plen), decs[i].negated);
      if (trace_ != nullptr) {
        trace_->emit(obs::EventKind::kConcolicNegation,
                     static_cast<std::int64_t>(run_idx),
                     static_cast<std::int64_t>(i),
                     res.sat == solver::Sat::kSat     ? 0
                     : res.sat == solver::Sat::kUnsat ? 1
                                                      : 2);
      }
      if (res.sat == solver::Sat::kSat) {
        ++cs.negations_sat;
        interp::RuntimeInput next = ex.input_from_model(res.model);
        if (seen.insert(input_key(next)).second) {
          frontier.push_back(WorkItem{std::move(next), i + 1});
          cs.frontier_peak =
              std::max<std::uint64_t>(cs.frontier_peak, frontier.size());
        } else {
          ++cs.inputs_deduped;
        }
      } else if (res.sat == solver::Sat::kUnsat) {
        ++cs.negations_unsat;
      } else {
        ++cs.negations_unknown;
      }
    }
    result.solver_stats += neg.stats();
  }

  cs.seconds = sw.elapsed_seconds();
  result.termination = term;
  return result;
}

}  // namespace statsym::concolic
