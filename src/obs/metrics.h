// Deterministic pipeline metrics (ISSUE 5 observability layer).
//
// A MetricsRegistry holds named counters, gauges and histograms describing
// one pipeline run. Counters and histograms are pure sums, so merging
// per-worker registries is commutative and the totals are schedule-invariant
// — the same guarantee SolverStats gives, generalised to arbitrary names.
// Gauges carry their merge policy (sum / max / last) so cross-worker merges
// stay well-defined.
//
// Everything renders deterministically: names iterate in sorted order and
// to_json() emits a byte-stable document for any fixed set of values
// (wall-clock gauges are the only nondeterministic *values*; their names
// carry the ".seconds" suffix so tests can mask them).
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace statsym::obs {

// log2 bucketing: bucket k holds values v with 2^(k-1) <= v < 2^k (bucket 0
// holds v <= 0 and v == 1 lands in bucket 1). 64 buckets cover all of
// uint64; fixed width keeps merges trivially piecewise.
inline constexpr std::size_t kHistBuckets = 64;

struct Histogram {
  std::uint64_t count{0};
  double sum{0.0};
  double min{0.0};
  double max{0.0};
  std::uint64_t buckets[kHistBuckets] = {};

  void observe(double v);
  void merge(const Histogram& o);
};

enum class GaugeMerge : std::uint8_t { kSum, kMax, kLast };

struct Gauge {
  double value{0.0};
  GaugeMerge merge{GaugeMerge::kSum};
};

class MetricsRegistry {
 public:
  // Counters: monotone sums (merge adds).
  void add(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }
  std::uint64_t counter(const std::string& name) const;

  // Gauges: point-in-time doubles with an explicit merge policy.
  void set_gauge(const std::string& name, double v,
                 GaugeMerge merge = GaugeMerge::kSum);
  double gauge(const std::string& name) const;
  bool has_gauge(const std::string& name) const {
    return gauges_.contains(name);
  }

  // Histograms: count/sum/min/max plus log2 buckets.
  void observe(const std::string& name, double v) { hists_[name].observe(v); }
  const Histogram* histogram(const std::string& name) const;

  // Merges another registry in: counters and histograms sum (commutative —
  // schedule-invariant across workers), gauges follow their stored policy.
  void merge(const MetricsRegistry& o);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && hists_.empty();
  }

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return hists_; }

  // Deterministic JSON document (sorted keys; doubles via fmt_double(.,6)).
  std::string to_json() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> hists_;
};

}  // namespace statsym::obs
