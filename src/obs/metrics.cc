#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "support/strings.h"

namespace statsym::obs {

namespace {

std::size_t bucket_of(double v) {
  if (!(v > 0.0)) return 0;
  // Values beyond uint64 range (the cast below would be UB) saturate into
  // the last bucket.
  if (v >= 18446744073709551616.0) return kHistBuckets - 1;
  const auto u = static_cast<std::uint64_t>(std::ceil(v));
  if (u == 0) return 0;
  // bit_width(1)=1 → bucket 1, bit_width(2..3)... note 2^(k-1) <= u < 2^k.
  return std::min<std::size_t>(std::bit_width(u), kHistBuckets - 1);
}

}  // namespace

void Histogram::observe(double v) {
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  ++count;
  sum += v;
  ++buckets[bucket_of(v)];
}

void Histogram::merge(const Histogram& o) {
  if (o.count == 0) return;
  if (count == 0) {
    min = o.min;
    max = o.max;
  } else {
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }
  count += o.count;
  sum += o.sum;
  for (std::size_t i = 0; i < kHistBuckets; ++i) buckets[i] += o.buckets[i];
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::set_gauge(const std::string& name, double v,
                                GaugeMerge merge) {
  gauges_[name] = Gauge{v, merge};
}

double MetricsRegistry::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value;
}

const Histogram* MetricsRegistry::histogram(const std::string& name) const {
  auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& o) {
  for (const auto& [name, v] : o.counters_) counters_[name] += v;
  for (const auto& [name, g] : o.gauges_) {
    auto [it, inserted] = gauges_.try_emplace(name, g);
    if (inserted) continue;
    switch (g.merge) {
      case GaugeMerge::kSum: it->second.value += g.value; break;
      case GaugeMerge::kMax:
        it->second.value = std::max(it->second.value, g.value);
        break;
      case GaugeMerge::kLast: it->second.value = g.value; break;
    }
  }
  for (const auto& [name, h] : o.hists_) hists_[name].merge(h);
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << v;
    first = false;
  }
  os << (first ? "},\n" : "\n  },\n");
  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << name
       << "\": " << fmt_double(g.value, 6);
    first = false;
  }
  os << (first ? "},\n" : "\n  },\n");
  os << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : hists_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"count\": "
       << h.count << ", \"sum\": " << fmt_double(h.sum, 6)
       << ", \"min\": " << fmt_double(h.min, 6)
       << ", \"max\": " << fmt_double(h.max, 6) << ", \"buckets\": {";
    bool bfirst = true;
    for (std::size_t i = 0; i < kHistBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      os << (bfirst ? "" : ", ") << "\"" << i << "\": " << h.buckets[i];
      bfirst = false;
    }
    os << "}}";
    first = false;
  }
  os << (first ? "}\n" : "\n  }\n");
  os << "}\n";
  return os.str();
}

}  // namespace statsym::obs
