// Structured pipeline tracing (ISSUE 5 observability layer).
//
// A TraceBuffer is a bounded in-memory ring of typed events; a Tracer owns
// the run's root buffer plus per-worker buffers that are stitched back in
// *admission order* (Phase-1 attempt order, Phase-3 candidate rank order
// over the counted candidates), so the final event stream is byte-identical
// at any --jobs — which is what makes traces goldenable.
//
// Determinism contract (DESIGN.md §"Observability"):
//   * every event payload is integers + strings derived from deterministic
//     pipeline state (doubles are carried as micros via llround);
//   * wall-clock stamps are opt-in (set_clock) and excluded from the
//     deterministic JSONL rendering — they exist for the Chrome export;
//   * solver events collapse "shared-cache hit" and "canonical solve" into
//     one level, because which of the two answers a slice is the only
//     schedule-dependent part of the solver cascade (the results themselves
//     are bit-identical by construction).
//
// The disabled path is a null pointer check at every call site: no event is
// constructed, no clock is read.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "support/stopwatch.h"

namespace statsym::obs {

enum class EventKind : std::uint8_t {
  kPhaseBegin,       // name = phase
  kPhaseEnd,         // name = phase; wall stamp when a clock is set
  kLogAdmitted,      // a = run id, b = faulty, c = records kept
  kPredicateFit,     // a = rank, b = loc, c = score micros; name = display
  kCandidateRanked,  // a = rank, b = path nodes, c = score micros
  kExecBegin,        // a = candidate rank (1-based; 0 = pure run)
  kStateFork,        // a = parent state id, b = child state id
  kStateSuspend,     // a = state id
  kStateWake,        // a = state id
  kStateTerminate,   // a = state id, b = reason (0 ok, 1 infeasible, 2 fault)
  kSolverQuery,      // a = verdict (0 sat, 1 unsat, 2 unknown), b = slices
  kSolverSlice,      // a = level (0 local, 1 model-reuse, 2 canonical),
                     // b = verdict
  kExecEnd,          // a = termination code, b = live left, c = suspended left
  kShardIngest,      // a = shard id, b = logs in shard, c = shard bytes
  kRerank,           // a = ranked predicates, b = graph nodes, c = shards seen
  kEngineLaneBegin,  // a = priority, b = kind code; name = engine name
  kEngineLaneEnd,    // a = priority, b = found, c = termination code;
                     // name = engine name
  kConcolicRun,      // a = run index, b = decisions recorded, c = faulted
  kConcolicNegation, // a = run index, b = decision index,
                     // c = verdict (0 sat, 1 unsat, 2 unknown)
  kStaticPrune,      // a = function id, b = block (-1 for candidate drops),
                     // c = direction taken / candidate rank;
                     // name = "branch" or "candidate"
  kNote,             // free-form marker: name + a/b/c
};

const char* event_kind_name(EventKind k);

struct TraceEvent {
  EventKind kind{EventKind::kNote};
  std::uint32_t lane{0};  // 0 = pipeline, 1+k = candidate rank k
  std::int64_t a{0};
  std::int64_t b{0};
  std::int64_t c{0};
  double wall{-1.0};  // seconds since the tracer clock; -1 = not stamped
  std::string name;
};

// Bounded event ring. When full, the *oldest* events are evicted — the
// stream is a deterministic suffix of the full event sequence, and
// `dropped()` reports the evicted prefix length.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);

  void emit(EventKind kind, std::int64_t a = 0, std::int64_t b = 0,
            std::int64_t c = 0, std::string name = {});

  // Appends another buffer's events (stitching); `other` is consumed.
  void append(TraceBuffer&& other);

  void set_lane(std::uint32_t lane) { lane_ = lane; }
  std::uint32_t lane() const { return lane_; }
  // Optional wall-clock stamping; the clock must outlive the buffer.
  void set_clock(const Stopwatch* clock) { clock_ = clock; }
  const Stopwatch* clock() const { return clock_; }

  std::size_t size() const { return ring_.size(); }
  std::uint64_t total() const { return total_; }
  std::uint64_t dropped() const { return total_ - ring_.size(); }
  std::size_t capacity() const { return capacity_; }

  // Events oldest-first. Index i has absolute sequence number dropped()+i.
  std::vector<TraceEvent> snapshot() const;

  void clear();

 private:
  static constexpr std::size_t kDefaultCapacity = 1u << 18;

  void push(TraceEvent&& ev);

  std::size_t capacity_;
  std::vector<TraceEvent> ring_;  // rotated: ring_[(head_ + i) % size]
  std::size_t head_{0};
  std::uint64_t total_{0};
  std::uint32_t lane_{0};
  const Stopwatch* clock_{nullptr};
};

struct TraceOptions {
  std::size_t capacity{1u << 18};
  // Stamp events with wall-clock seconds (needed for the Chrome export;
  // leave off for golden traces).
  bool wall_clock{false};
};

// Owns the run's stitched event stream and renders it.
class Tracer {
 public:
  explicit Tracer(TraceOptions opts = {});

  TraceBuffer& buffer() { return root_; }
  const TraceBuffer& buffer() const { return root_; }

  // A fresh buffer for one worker/candidate; stitch it back with absorb().
  TraceBuffer make_worker_buffer(std::uint32_t lane) const;
  void absorb(TraceBuffer&& b) { root_.append(std::move(b)); }

  void emit(EventKind kind, std::int64_t a = 0, std::int64_t b = 0,
            std::int64_t c = 0, std::string name = {}) {
    root_.emit(kind, a, b, c, std::move(name));
  }

  const TraceOptions& options() const { return opts_; }
  const Stopwatch& clock() const { return clock_; }

  // One JSON object per line, schema per event kind (see event comments).
  // Deterministic byte stream; `include_wall` adds the (nondeterministic)
  // "wall_us" field and is off for golden traces.
  void write_jsonl(std::ostream& os, bool include_wall = false) const;
  std::string to_jsonl(bool include_wall = false) const;

  // Chrome about://tracing (trace-event JSON array): phases and candidate
  // executions become duration events, everything else instants. Uses wall
  // stamps when present, absolute sequence numbers otherwise.
  void write_chrome(std::ostream& os) const;

 private:
  TraceOptions opts_;
  Stopwatch clock_;
  TraceBuffer root_;
};

}  // namespace statsym::obs
