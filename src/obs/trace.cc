#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace statsym::obs {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kPhaseBegin: return "phase-begin";
    case EventKind::kPhaseEnd: return "phase-end";
    case EventKind::kLogAdmitted: return "log-admitted";
    case EventKind::kPredicateFit: return "predicate-fit";
    case EventKind::kCandidateRanked: return "candidate-ranked";
    case EventKind::kExecBegin: return "exec-begin";
    case EventKind::kStateFork: return "state-fork";
    case EventKind::kStateSuspend: return "state-suspend";
    case EventKind::kStateWake: return "state-wake";
    case EventKind::kStateTerminate: return "state-terminate";
    case EventKind::kSolverQuery: return "solver-query";
    case EventKind::kSolverSlice: return "solver-slice";
    case EventKind::kExecEnd: return "exec-end";
    case EventKind::kShardIngest: return "ingest-shard";
    case EventKind::kRerank: return "rerank";
    case EventKind::kEngineLaneBegin: return "engine-lane-begin";
    case EventKind::kEngineLaneEnd: return "engine-lane-end";
    case EventKind::kConcolicRun: return "concolic-run";
    case EventKind::kConcolicNegation: return "concolic-negation";
    case EventKind::kStaticPrune: return "static-prune";
    case EventKind::kNote: return "note";
  }
  return "?";
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

void TraceBuffer::emit(EventKind kind, std::int64_t a, std::int64_t b,
                       std::int64_t c, std::string name) {
  TraceEvent ev;
  ev.kind = kind;
  ev.lane = lane_;
  ev.a = a;
  ev.b = b;
  ev.c = c;
  ev.name = std::move(name);
  if (clock_ != nullptr) ev.wall = clock_->elapsed_seconds();
  push(std::move(ev));
}

void TraceBuffer::push(TraceEvent&& ev) {
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
    return;
  }
  ring_[head_] = std::move(ev);
  head_ = (head_ + 1) % capacity_;
}

void TraceBuffer::append(TraceBuffer&& other) {
  // Events the worker ring already evicted are gone for good; account them
  // so absolute sequence numbers stay truthful.
  const std::uint64_t evicted = other.dropped();
  const std::size_t n = other.ring_.size();
  for (std::size_t i = 0; i < n; ++i) {
    push(std::move(other.ring_[(other.head_ + i) % n]));
  }
  total_ += evicted;
  other.clear();
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void TraceBuffer::clear() {
  ring_.clear();
  head_ = 0;
  total_ = 0;
}

Tracer::Tracer(TraceOptions opts) : opts_(opts), root_(opts.capacity) {
  if (opts_.wall_clock) root_.set_clock(&clock_);
}

TraceBuffer Tracer::make_worker_buffer(std::uint32_t lane) const {
  TraceBuffer b(opts_.capacity);
  b.set_lane(lane);
  if (opts_.wall_clock) b.set_clock(&clock_);
  return b;
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
}

// Per-kind payload key names ("" = field not rendered).
struct FieldNames {
  const char* a;
  const char* b;
  const char* c;
  bool name;
};

FieldNames fields_of(EventKind k) {
  switch (k) {
    case EventKind::kPhaseBegin: return {"", "", "", true};
    case EventKind::kPhaseEnd: return {"", "", "", true};
    case EventKind::kLogAdmitted: return {"run", "faulty", "records", false};
    case EventKind::kPredicateFit: return {"rank", "loc", "score_u", true};
    case EventKind::kCandidateRanked: return {"rank", "nodes", "score_u", false};
    case EventKind::kExecBegin: return {"candidate", "", "", false};
    case EventKind::kStateFork: return {"parent", "child", "", false};
    case EventKind::kStateSuspend: return {"state", "", "", false};
    case EventKind::kStateWake: return {"state", "", "", false};
    case EventKind::kStateTerminate: return {"state", "reason", "", false};
    case EventKind::kSolverQuery: return {"verdict", "slices", "", false};
    case EventKind::kSolverSlice: return {"level", "verdict", "", false};
    case EventKind::kExecEnd: return {"termination", "live", "suspended", false};
    case EventKind::kShardIngest: return {"shard", "logs", "bytes", false};
    case EventKind::kRerank: return {"predicates", "nodes", "shards", false};
    case EventKind::kEngineLaneBegin: return {"priority", "kind", "", true};
    case EventKind::kEngineLaneEnd:
      return {"priority", "found", "termination", true};
    case EventKind::kConcolicRun: return {"run", "decisions", "faulted", false};
    case EventKind::kConcolicNegation:
      return {"run", "decision", "verdict", false};
    case EventKind::kStaticPrune: return {"func", "block", "dir", true};
    case EventKind::kNote: return {"a", "b", "c", true};
  }
  return {"a", "b", "c", true};
}

}  // namespace

void Tracer::write_jsonl(std::ostream& os, bool include_wall) const {
  const std::vector<TraceEvent> evs = root_.snapshot();
  std::uint64_t seq = root_.dropped();
  for (const TraceEvent& ev : evs) {
    const FieldNames f = fields_of(ev.kind);
    os << "{\"seq\": " << seq++ << ", \"ev\": \"" << event_kind_name(ev.kind)
       << "\", \"lane\": " << ev.lane;
    if (f.a[0] != '\0') os << ", \"" << f.a << "\": " << ev.a;
    if (f.b[0] != '\0') os << ", \"" << f.b << "\": " << ev.b;
    if (f.c[0] != '\0') os << ", \"" << f.c << "\": " << ev.c;
    if (f.name) {
      os << ", \"name\": \"";
      json_escape(os, ev.name);
      os << "\"";
    }
    if (include_wall && ev.wall >= 0.0) {
      os << ", \"wall_us\": "
         << static_cast<std::int64_t>(std::llround(ev.wall * 1e6));
    }
    os << "}\n";
  }
}

std::string Tracer::to_jsonl(bool include_wall) const {
  std::ostringstream os;
  write_jsonl(os, include_wall);
  return os.str();
}

void Tracer::write_chrome(std::ostream& os) const {
  const std::vector<TraceEvent> evs = root_.snapshot();
  os << "[";
  std::uint64_t seq = root_.dropped();
  bool first = true;
  for (const TraceEvent& ev : evs) {
    const std::int64_t ts =
        ev.wall >= 0.0 ? static_cast<std::int64_t>(std::llround(ev.wall * 1e6))
                       : static_cast<std::int64_t>(seq);
    const char* ph = "i";
    std::string name = event_kind_name(ev.kind);
    switch (ev.kind) {
      case EventKind::kPhaseBegin:
        ph = "B";
        name = ev.name;
        break;
      case EventKind::kPhaseEnd:
        ph = "E";
        name = ev.name;
        break;
      case EventKind::kExecBegin:
        ph = "B";
        name = "candidate-" + std::to_string(ev.a);
        break;
      case EventKind::kExecEnd:
        ph = "E";
        name = "candidate";
        break;
      case EventKind::kEngineLaneBegin:
        ph = "B";
        name = "lane-" + ev.name;
        break;
      case EventKind::kEngineLaneEnd:
        ph = "E";
        name = "lane-" + ev.name;
        break;
      default:
        break;
    }
    os << (first ? "\n" : ",\n") << "{\"name\": \"";
    json_escape(os, name);
    os << "\", \"ph\": \"" << ph << "\", \"ts\": " << ts
       << ", \"pid\": 0, \"tid\": " << ev.lane;
    if (ph[0] == 'i') {
      os << ", \"s\": \"t\", \"args\": {\"a\": " << ev.a << ", \"b\": " << ev.b
         << ", \"c\": " << ev.c << "}";
    }
    os << "}";
    first = false;
    ++seq;
  }
  os << "\n]\n";
}

}  // namespace statsym::obs
