// Request loop for `statsym serve` (DESIGN.md §14).
//
// serve_stream() reads frames off an input stream, dispatches each request
// onto a support::ThreadPool, and writes replies to the output stream in
// *request arrival order* — concurrent execution never reorders replies, so
// a scripted client can pair request k with reply k positionally. Parse
// errors become structured error replies in the same ordered stream and the
// loop keeps reading (the session survives malformed clients; see
// serve/protocol.h for the resync rules).
//
// serve_unix_socket() is the multi-client front end: an AF_UNIX listener
// that serves one connection at a time with the same loop (the session —
// and its warm caches — persists across connections).
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "serve/session.h"

namespace statsym::serve {

// Runs the request loop until end of input or a handled `cmd|shutdown`.
// `jobs` sizes the worker pool (0 = all hardware threads). Returns the
// number of frames processed (including ones answered with errors).
std::size_t serve_stream(std::istream& in, std::ostream& out,
                         ServeSession& session, std::size_t jobs = 0);

// Listens on an AF_UNIX socket at `path` (unlinking any stale file first)
// and serves connections sequentially until a client sends `cmd|shutdown`.
// Returns 0, or 1 with a message on stderr when the socket cannot be set
// up.
int serve_unix_socket(const std::string& path, ServeSession& session,
                      std::size_t jobs = 0);

// Flag-misuse check for the CLI (`check_stream_flags` family): one-shot
// output flags are superseded by per-request `trace|1` / `metrics|1` body
// fields in serve mode, so combining them with `serve` is a hard error.
// Returns "" when the combination is fine, else the full error text naming
// the offending flag.
std::string check_serve_flags(bool has_trace_out, bool has_trace_chrome,
                              bool has_metrics_out);

}  // namespace statsym::serve
