// Wire protocol for `statsym serve` (DESIGN.md §14).
//
// Requests are line-delimited versioned frames in the family of the
// monitor's LogShard format:
//
//   statsym-serve|<version>|<request-id>|<num_body_lines>
//   <key>|<value>
//   ...
//   endreq
//
// and every frame — well-formed or not — yields exactly one reply frame:
//
//   statsym-reply|<version>|<request-id>|<ok|error>|<num_body_lines>
//   <body line>
//   ...
//   endreply
//
// Malformed input never kills the session: the reader produces a structured
// parse error for the broken frame and *resynchronises* on the next
// `statsym-serve|` header line, so a client that garbled one request (or two
// clients that interleaved their writes) can keep using the connection. The
// error cases — bad header, unknown version, oversized declaration, body
// truncated by the next frame's header, missing trailer — are enumerated by
// FrameError and exercised one-by-one in tests/serve_test.cc.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace statsym::serve {

// Bump when the frame grammar changes shape. Readers accept exactly the
// versions they understand (currently: only this one).
inline constexpr std::uint64_t kServeProtocolVersion = 1;

// Hard limits a frame must respect before any body memory is committed.
inline constexpr std::size_t kMaxBodyLines = 256;
inline constexpr std::size_t kMaxLineBytes = 64 * 1024;

struct Frame {
  std::uint64_t version{kServeProtocolVersion};
  std::string id;                  // client-chosen request id (echoed back)
  std::vector<std::string> body;   // `key|value` lines
};

enum class FrameError : std::uint8_t {
  kNone,
  kBadHeader,        // line is not a well-formed statsym-serve header
  kBadVersion,       // well-formed header, version this build does not speak
  kOversized,        // declared body exceeds kMaxBodyLines / line too long
  kTruncatedBody,    // body cut short by EOF or by the next frame's header
  kMissingTrailer,   // body complete but 'endreq' absent
};

const char* frame_error_name(FrameError e);

// Outcome of one FrameReader::next() call: either a frame, or a structured
// parse error (error != kNone) carrying the offending request id when the
// header got far enough to supply one.
struct ReadResult {
  Frame frame;
  FrameError error{FrameError::kNone};
  std::string message;  // human-readable reason, non-empty iff error
};

// Pulls frames off a line stream, recovering from malformed input by
// scanning forward to the next header line. One reader per connection; not
// thread-safe (the server owns reads, workers own handling).
class FrameReader {
 public:
  explicit FrameReader(std::istream& in) : in_(in) {}

  // False at end of input; true otherwise, with `out` holding either a
  // frame or a parse error. After an error the reader has consumed the
  // broken frame (up to its trailer or the next header) and is ready for
  // the next call.
  bool next(ReadResult& out);

 private:
  bool read_line(std::string& out);
  void push_back_line(std::string line);

  std::istream& in_;
  std::optional<std::string> pushed_;  // one-line pushback for resync
};

// Reply formatting (the only writer — tests parse replies with
// parse_reply below to assert structure, not string-match the framing).
std::string format_reply(std::string_view id, bool ok,
                         const std::vector<std::string>& body);

// Canonical structured error reply: body is `code|<slug>` + `error|<text>`.
// Used for both parse errors (code = frame_error_name) and request errors
// (code = "bad-request" etc.).
std::string format_error_reply(std::string_view id, std::string_view code,
                               std::string_view message);

struct Reply {
  std::uint64_t version{0};
  std::string id;
  bool ok{false};
  std::vector<std::string> body;
};

// Strict reply parse (tests + any future client). False on any deviation.
bool parse_reply(const std::string& text, Reply& out,
                 std::string* error = nullptr);

// First `<key>|` body line's value, or nullopt. Shared by the session
// (request fields) and tests (reply fields).
std::optional<std::string_view> body_value(
    const std::vector<std::string>& body, std::string_view key);

}  // namespace statsym::serve
