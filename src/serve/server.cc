#include "serve/server.h"

#include <chrono>
#include <cstdio>
#include <deque>
#include <future>
#include <memory>

#include "support/thread_pool.h"

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <streambuf>
#endif

namespace statsym::serve {

namespace {

// One request in flight: the reply future, resolved by a pool worker (or
// already resolved inline for parse errors). Replies drain strictly in
// this queue's order.
struct Pending {
  std::future<std::string> reply;
};

std::future<std::string> ready_reply(std::string text) {
  std::promise<std::string> p;
  p.set_value(std::move(text));
  return p.get_future();
}

}  // namespace

std::size_t serve_stream(std::istream& in, std::ostream& out,
                         ServeSession& session, std::size_t jobs) {
  ThreadPool pool(jobs);
  FrameReader reader(in);
  std::deque<Pending> pending;
  std::size_t frames = 0;

  auto drain = [&](bool all) {
    while (!pending.empty()) {
      if (!all &&
          pending.front().reply.wait_for(std::chrono::seconds(0)) !=
              std::future_status::ready) {
        return;
      }
      out << pending.front().reply.get();
      out.flush();
      pending.pop_front();
    }
  };

  ReadResult r;
  while (reader.next(r)) {
    ++frames;
    if (r.error != FrameError::kNone) {
      pending.push_back(Pending{ready_reply(format_error_reply(
          r.frame.id, frame_error_name(r.error), r.message))});
      drain(/*all=*/false);
      continue;
    }
    const bool is_shutdown = body_value(r.frame.body, "cmd") == "shutdown";
    auto prom = std::make_shared<std::promise<std::string>>();
    pending.push_back(Pending{prom->get_future()});
    const Frame frame = std::move(r.frame);
    pool.submit([prom, frame, &session] {
      prom->set_value(session.handle(frame));
    });
    drain(/*all=*/false);
    if (is_shutdown) break;  // stop reading; in-flight requests still finish
  }
  drain(/*all=*/true);
  return frames;
}

std::string check_serve_flags(bool has_trace_out, bool has_trace_chrome,
                              bool has_metrics_out) {
  const char* flag = nullptr;
  const char* field = nullptr;
  if (has_trace_out) {
    flag = "--trace-out";
    field = "trace|1";
  } else if (has_trace_chrome) {
    flag = "--trace-chrome";
    field = "trace|1";
  } else if (has_metrics_out) {
    flag = "--metrics-out";
    field = "metrics|1";
  }
  if (flag == nullptr) return "";
  return std::string("error: ") + flag +
         " cannot be combined with 'serve': the service writes one "
         "observability payload per request, not per session. Put '" +
         field + "' in the request body instead.";
}

#ifndef _WIN32

namespace {

// Minimal std::streambuf over a connected socket fd — enough for
// std::getline on the way in and block writes on the way out.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {
    setg(rbuf_, rbuf_, rbuf_);
  }

 protected:
  int_type underflow() override {
    const ssize_t n = ::read(fd_, rbuf_, sizeof(rbuf_));
    if (n <= 0) return traits_type::eof();
    setg(rbuf_, rbuf_, rbuf_ + n);
    return traits_type::to_int_type(rbuf_[0]);
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    std::streamsize sent = 0;
    while (sent < n) {
      const ssize_t w = ::write(fd_, s + sent, static_cast<size_t>(n - sent));
      if (w <= 0) return sent;
      sent += w;
    }
    return sent;
  }

  int_type overflow(int_type c) override {
    if (traits_type::eq_int_type(c, traits_type::eof())) return c;
    const char ch = traits_type::to_char_type(c);
    return xsputn(&ch, 1) == 1 ? c : traits_type::eof();
  }

 private:
  int fd_;
  char rbuf_[4096];
};

}  // namespace

int serve_unix_socket(const std::string& path, ServeSession& session,
                      std::size_t jobs) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "serve: socket path too long: %s\n", path.c_str());
    return 1;
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::fprintf(stderr, "serve: cannot create socket\n");
    return 1;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 4) != 0) {
    std::fprintf(stderr, "serve: cannot bind %s\n", path.c_str());
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "serve: listening on %s\n", path.c_str());
  while (!session.shutdown_requested()) {
    const int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) break;
    FdStreamBuf buf(client);
    std::istream in(&buf);
    std::ostream out(&buf);
    serve_stream(in, out, session, jobs);
    ::close(client);
  }
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}

#else  // _WIN32

int serve_unix_socket(const std::string& path, ServeSession&, std::size_t) {
  std::fprintf(stderr, "serve: --socket is not supported on this platform "
                       "(%s); use stdin/stdout framing\n",
               path.c_str());
  return 1;
}

#endif

}  // namespace statsym::serve
