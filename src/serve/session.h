// Session state for `statsym serve` (DESIGN.md §14).
//
// A ServeSession owns the process-wide persistent store: one
// SharedQueryCache per analysed program, keyed by the program's 128-bit
// structural fingerprint, living across requests (and — through the disk
// store in solver/cache_store.h — across processes). handle() executes one
// parsed request frame and returns the serialized reply.
//
// Determinism contract: a served `run` request is byte-identical (verdict,
// solver-stat sums, metrics modulo *.seconds gauges, trace) to the
// equivalent one-shot CLI invocation, at any --jobs and any cache warmth.
// Two ingredients make that hold:
//   * per-request seed isolation — the effective seed is the request's
//     explicit `seed` field or derive_seed(session_seed, hash(request_id)),
//     a pure function of the request, never of what ran before it;
//   * warmth-invariant reporting — reply bodies only carry sums the solver
//     layer guarantees independent of cache warmth (e.g. solver.canonical =
//     shared_cache_hits + solves); the warm/cold split lives in session
//     `serve.*` counters, which describe the session, not the request.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "apps/registry.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "solver/cache.h"
#include "solver/cache_store.h"

namespace statsym::serve {

// Structural fingerprint of a module: the store key that lets warm entries
// find their program again in a later process. Computed over the printed
// IR, so any semantic edit changes it and the edited program starts cold.
solver::Fp128 program_fingerprint(const ir::Module& m);

struct ServeOptions {
  std::uint64_t session_seed{42};
  std::size_t jobs{0};         // default worker threads per request (0 = all)
  double sampling{0.3};        // defaults mirror the one-shot CLI, so a
  double time_s{300.0};        // request with only `app` set equals
  std::size_t mem_mb{256};     // `statsym run <app>` byte-for-byte
  std::string store_path;      // disk store; empty = in-memory only
};

class ServeSession {
 public:
  explicit ServeSession(ServeOptions opts);

  // Executes one request frame and returns its serialized reply. Never
  // throws and never kills the session: app-resolution failures, unknown
  // fields and bad values all come back as structured error replies.
  // Thread-safe — the server runs concurrent requests on its pool.
  std::string handle(const Frame& frame);

  // Disk store round-trip against ServeOptions::store_path. A missing file
  // is a clean cold start (true, no error); a malformed or
  // version-mismatched store is a *reported* cold start (false + error) —
  // never a partially-trusted one.
  bool load_store(std::string* error = nullptr);
  bool save_store(std::string* error = nullptr);

  // Text-level store access for corruption tests (same verification path
  // the file route uses).
  std::string store_text() const;
  bool load_store_from_text(const std::string& text,
                            std::string* error = nullptr);

  // True once a `cmd|shutdown` request has been handled; the server stops
  // accepting frames.
  bool shutdown_requested() const;

  // Session-level `serve.*` counters (requests, errors, warm/cold slice
  // hits, store bytes) — deterministic names, schedule-dependent values.
  obs::MetricsRegistry metrics() const;

  // Test seam: replaces apps::make_app for request app resolution.
  using AppResolver = std::function<apps::AppSpec(const std::string&)>;
  void set_resolver(AppResolver resolver) { resolver_ = std::move(resolver); }

  std::size_t num_programs() const;

 private:
  solver::SharedQueryCache& cache_for(const solver::Fp128& fp);
  std::string handle_run(const Frame& frame);
  std::string handle_stats(const Frame& frame);
  std::string handle_save(const Frame& frame);
  void bump(const std::string& counter, std::uint64_t delta = 1);

  ServeOptions opts_;
  AppResolver resolver_;
  mutable std::mutex mu_;  // guards store_, metrics_, shutdown_
  // Fp128 has operator<; std::map keeps store serialization order stable.
  std::map<solver::Fp128, std::unique_ptr<solver::SharedQueryCache>> store_;
  obs::MetricsRegistry metrics_;
  bool shutdown_{false};
};

}  // namespace statsym::serve
