#include "serve/protocol.h"

#include "support/strings.h"

namespace statsym::serve {

namespace {

constexpr std::string_view kHeaderTag = "statsym-serve|";

bool parse_u64(std::string_view s, std::uint64_t& out) {
  std::int64_t v = 0;
  if (!parse_i64(s, v) || v < 0) return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

}  // namespace

const char* frame_error_name(FrameError e) {
  switch (e) {
    case FrameError::kNone: return "none";
    case FrameError::kBadHeader: return "bad-header";
    case FrameError::kBadVersion: return "bad-version";
    case FrameError::kOversized: return "oversized";
    case FrameError::kTruncatedBody: return "truncated-body";
    case FrameError::kMissingTrailer: return "missing-trailer";
  }
  return "?";
}

bool FrameReader::read_line(std::string& out) {
  if (pushed_.has_value()) {
    out = std::move(*pushed_);
    pushed_.reset();
    return true;
  }
  return static_cast<bool>(std::getline(in_, out));
}

void FrameReader::push_back_line(std::string line) {
  pushed_ = std::move(line);
}

bool FrameReader::next(ReadResult& out) {
  out = ReadResult{};
  std::string line;
  // Skip blank separators between frames.
  do {
    if (!read_line(line)) return false;
  } while (trim(line).empty());

  auto fail = [&](FrameError e, std::string why) {
    out.error = e;
    out.message = std::move(why);
    return true;
  };

  const std::string header = std::string(trim(line));
  if (!starts_with(header, kHeaderTag)) {
    // Not even a header: consume this one line and report, leaving the
    // stream positioned at whatever follows — the resync point for a
    // garbled client is its next header line.
    return fail(FrameError::kBadHeader,
                "expected 'statsym-serve|<version>|<id>|<n>' header, got '" +
                    header.substr(0, 64) + "'");
  }
  const auto fields = split(header, '|');
  std::uint64_t version = 0;
  std::uint64_t nbody = 0;
  if (fields.size() != 4 || !parse_u64(fields[1], version) ||
      fields[2].empty() || !parse_u64(fields[3], nbody)) {
    return fail(FrameError::kBadHeader,
                "malformed header (want "
                "'statsym-serve|<version>|<id>|<num_body_lines>')");
  }
  out.frame.version = version;
  out.frame.id = fields[2];

  // The declared shape is validated before any body memory is committed.
  // On failure the body is still drained (up to its trailer or the next
  // header) so the following frame parses cleanly.
  FrameError shape_error = FrameError::kNone;
  std::string shape_message;
  if (version != kServeProtocolVersion) {
    shape_error = FrameError::kBadVersion;
    shape_message = "unsupported protocol version " + fields[1] +
                    " (this build speaks version " +
                    std::to_string(kServeProtocolVersion) + ")";
  } else if (nbody > kMaxBodyLines) {
    shape_error = FrameError::kOversized;
    shape_message = "declared body of " + fields[3] + " lines exceeds the " +
                    std::to_string(kMaxBodyLines) + "-line limit";
  }

  std::vector<std::string> body;
  for (std::uint64_t i = 0; i < nbody; ++i) {
    if (!read_line(line)) {
      return fail(FrameError::kTruncatedBody,
                  "body truncated by end of input (" + std::to_string(i) +
                      " of " + fields[3] + " lines read)");
    }
    const std::string t = std::string(trim(line));
    if (starts_with(t, kHeaderTag)) {
      // The next request started before this body finished: the frame was
      // truncated (or two clients interleaved). Push the header back so
      // the *next* call parses it as its own frame.
      push_back_line(std::move(line));
      return fail(FrameError::kTruncatedBody,
                  "body truncated by the next frame's header (" +
                      std::to_string(i) + " of " + fields[3] +
                      " lines read)");
    }
    if (t == "endreq") {
      return fail(FrameError::kTruncatedBody,
                  "trailer arrived early (" + std::to_string(i) + " of " +
                      fields[3] + " declared body lines present)");
    }
    if (line.size() > kMaxLineBytes) {
      shape_error = FrameError::kOversized;
      shape_message = "body line " + std::to_string(i) + " exceeds the " +
                      std::to_string(kMaxLineBytes) + "-byte limit";
      continue;  // keep draining; the frame is rejected as a whole
    }
    if (shape_error == FrameError::kNone) body.push_back(t);
  }
  if (!read_line(line)) {
    return fail(FrameError::kMissingTrailer,
                "missing 'endreq' trailer (end of input)");
  }
  if (trim(line) != "endreq") {
    if (starts_with(trim(line), kHeaderTag)) push_back_line(std::move(line));
    return fail(FrameError::kMissingTrailer,
                "missing 'endreq' trailer after declared body");
  }
  if (shape_error != FrameError::kNone) {
    return fail(shape_error, std::move(shape_message));
  }
  out.frame.body = std::move(body);
  return true;
}

std::string format_reply(std::string_view id, bool ok,
                         const std::vector<std::string>& body) {
  std::string out = "statsym-reply|";
  out += std::to_string(kServeProtocolVersion);
  out += '|';
  out += id;
  out += ok ? "|ok|" : "|error|";
  out += std::to_string(body.size());
  out += '\n';
  for (const std::string& l : body) {
    out += l;
    out += '\n';
  }
  out += "endreply\n";
  return out;
}

std::string format_error_reply(std::string_view id, std::string_view code,
                               std::string_view message) {
  return format_reply(id, /*ok=*/false,
                      {"code|" + std::string(code),
                       "error|" + std::string(message)});
}

bool parse_reply(const std::string& text, Reply& out, std::string* error) {
  auto fail = [&](std::string why) {
    if (error != nullptr) *error = std::move(why);
    return false;
  };
  const auto lines = split(text, '\n');
  std::size_t at = 0;
  while (at < lines.size() && trim(lines[at]).empty()) ++at;
  if (at >= lines.size()) return fail("reply: empty input");
  const auto fields = split(trim(lines[at]), '|');
  std::uint64_t nbody = 0;
  if (fields.size() != 5 || fields[0] != "statsym-reply" ||
      !parse_u64(fields[4], nbody)) {
    return fail("reply: malformed header");
  }
  if (!parse_u64(fields[1], out.version) || fields[2].empty()) {
    return fail("reply: malformed header");
  }
  if (fields[3] == "ok") {
    out.ok = true;
  } else if (fields[3] == "error") {
    out.ok = false;
  } else {
    return fail("reply: status must be ok|error");
  }
  out.id = fields[2];
  ++at;
  out.body.clear();
  for (std::uint64_t i = 0; i < nbody; ++i, ++at) {
    if (at >= lines.size()) return fail("reply: body truncated");
    out.body.push_back(lines[at]);
  }
  if (at >= lines.size() || trim(lines[at]) != "endreply") {
    return fail("reply: missing 'endreply' trailer");
  }
  return true;
}

std::optional<std::string_view> body_value(
    const std::vector<std::string>& body, std::string_view key) {
  for (const std::string& l : body) {
    const std::string_view sv(l);
    if (sv.size() > key.size() && sv.substr(0, key.size()) == key &&
        sv[key.size()] == '|') {
      return sv.substr(key.size() + 1);
    }
  }
  return std::nullopt;
}

}  // namespace statsym::serve
