#include "serve/session.h"

#include <fstream>
#include <sstream>

#include "ir/printer.h"
#include "statsym/engine.h"
#include "support/rng.h"
#include "support/strings.h"

namespace statsym::serve {

namespace {

// The request fields a `run` accepts. Anything else is a hard error — a
// typo'd field silently falling back to a default would make the reply
// answer a different question than the client asked.
constexpr std::string_view kRunKeys[] = {"cmd",  "app",      "seed",
                                         "jobs", "sampling", "trace",
                                         "metrics"};

bool known_run_key(std::string_view key) {
  for (const std::string_view k : kRunKeys) {
    if (k == key) return true;
  }
  return false;
}

std::string u64s(std::uint64_t v) { return std::to_string(v); }

}  // namespace

solver::Fp128 program_fingerprint(const ir::Module& m) {
  const std::string text = ir::to_string(m);
  solver::Fp128 h;
  h = solver::fp_absorb(h, solver::fp_hash_str(text));
  h = solver::fp_absorb(h, static_cast<std::uint64_t>(text.size()));
  return h;
}

ServeSession::ServeSession(ServeOptions opts)
    : opts_(std::move(opts)),
      resolver_([](const std::string& name) { return apps::make_app(name); }) {
}

solver::SharedQueryCache& ServeSession::cache_for(const solver::Fp128& fp) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = store_[fp];
  if (!slot) slot = std::make_unique<solver::SharedQueryCache>();
  return *slot;
}

void ServeSession::bump(const std::string& counter, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.add(counter, delta);
}

bool ServeSession::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

obs::MetricsRegistry ServeSession::metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_;
}

std::size_t ServeSession::num_programs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_.size();
}

std::string ServeSession::handle(const Frame& frame) {
  bump("serve.requests");
  std::string cmd = "run";
  if (const auto v = body_value(frame.body, "cmd")) cmd = std::string(*v);
  try {
    if (cmd == "run") return handle_run(frame);
    if (cmd == "ping") {
      return format_reply(frame.id, true, {"pong|1"});
    }
    if (cmd == "stats") return handle_stats(frame);
    if (cmd == "save") return handle_save(frame);
    if (cmd == "shutdown") {
      {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
      }
      return format_reply(frame.id, true, {"shutdown|1"});
    }
    bump("serve.errors");
    return format_error_reply(frame.id, "bad-request",
                              "unknown cmd '" + cmd +
                                  "' (want run|ping|stats|save|shutdown)");
  } catch (const std::exception& e) {
    // e.g. apps::make_app on an unknown app name. The request dies; the
    // session does not.
    bump("serve.errors");
    return format_error_reply(frame.id, "bad-request", e.what());
  }
}

std::string ServeSession::handle_run(const Frame& frame) {
  for (const std::string& line : frame.body) {
    const std::size_t bar = line.find('|');
    const std::string_view key =
        std::string_view(line).substr(0, bar == std::string::npos
                                             ? line.size()
                                             : bar);
    if (bar == std::string::npos || !known_run_key(key)) {
      bump("serve.errors");
      return format_error_reply(
          frame.id, "bad-request",
          "unknown request field '" + std::string(key) + "'");
    }
  }
  const auto app_name = body_value(frame.body, "app");
  if (!app_name.has_value() || app_name->empty()) {
    bump("serve.errors");
    return format_error_reply(frame.id, "bad-request",
                              "run request needs an 'app|<name>' field");
  }

  // Per-request nondeterminism isolation: the effective seed is a pure
  // function of the request, so replaying a request id in any session, at
  // any warmth, after any request history, reproduces the same run.
  std::uint64_t seed =
      derive_seed(opts_.session_seed, solver::fp_hash_str(frame.id));
  if (const auto v = body_value(frame.body, "seed")) {
    std::int64_t parsed = 0;
    if (!parse_i64(*v, parsed) || parsed < 0) {
      bump("serve.errors");
      return format_error_reply(frame.id, "bad-request",
                                "bad 'seed' value '" + std::string(*v) + "'");
    }
    seed = static_cast<std::uint64_t>(parsed);
  }
  std::size_t jobs = opts_.jobs;
  if (const auto v = body_value(frame.body, "jobs")) {
    std::int64_t parsed = 0;
    if (!parse_i64(*v, parsed) || parsed < 0) {
      bump("serve.errors");
      return format_error_reply(frame.id, "bad-request",
                                "bad 'jobs' value '" + std::string(*v) + "'");
    }
    jobs = static_cast<std::size_t>(parsed);
  }
  double sampling = opts_.sampling;
  if (const auto v = body_value(frame.body, "sampling")) {
    if (!parse_double(*v, sampling) || sampling <= 0.0 || sampling > 1.0) {
      bump("serve.errors");
      return format_error_reply(
          frame.id, "bad-request",
          "bad 'sampling' value '" + std::string(*v) + "' (want (0,1])");
    }
  }
  const bool want_trace = body_value(frame.body, "trace") == "1";
  const bool want_metrics = body_value(frame.body, "metrics") == "1";

  const apps::AppSpec app = resolver_(std::string(*app_name));
  solver::SharedQueryCache& cache = cache_for(program_fingerprint(app.module));

  // Mirror statsym_cli's engine_options() defaults exactly — that identity
  // is what the served-vs-oneshot equivalence test pins down.
  core::EngineOptions o;
  o.monitor.sampling_rate = sampling;
  o.seed = seed;
  o.candidate_timeout_seconds = opts_.time_s;
  o.exec.max_memory_bytes = opts_.mem_mb << 20;
  o.exec.jobs = 1;
  o.exec.batch = 1;
  o.num_threads = jobs;

  core::StatSymEngine engine(app.module, app.sym_spec, o);
  obs::Tracer tracer;  // deterministic rendering; no wall clock
  if (want_trace) engine.set_tracer(&tracer);
  engine.set_shared_solver_cache(&cache);

  const auto before = cache.counters();
  engine.collect_logs(app.workload);
  const core::EngineResult res = engine.run();
  const auto after = cache.counters();

  {
    std::lock_guard<std::mutex> lock(mu_);
    metrics_.add("serve.runs");
    // Session-level warmth accounting. These are the *only* place the
    // warm/cold split is visible — reply bodies carry invariant sums.
    metrics_.add("serve.warm_slice_hits", after.hits - before.hits);
    metrics_.add("serve.cold_slices", after.misses - before.misses);
    metrics_.add("serve.cache_insertions",
                 after.insertions - before.insertions);
  }

  std::vector<std::string> body;
  body.push_back("app|" + std::string(*app_name));
  body.push_back("seed|" + u64s(seed));
  body.push_back(std::string("verdict|") +
                 (res.found ? "found" : "not-found"));
  if (res.found && res.vuln.has_value()) {
    body.push_back(std::string("fault-kind|") +
                   interp::fault_kind_name(res.vuln->kind));
    body.push_back("fault-function|" + res.vuln->function);
  }
  body.push_back("winning-candidate|" + u64s(res.winning_candidate));
  body.push_back("candidates-tried|" + u64s(res.candidates_tried));
  body.push_back("logs|" + u64s(res.num_correct_logs + res.num_faulty_logs));
  body.push_back("paths|" + u64s(res.paths_explored));
  body.push_back("instructions|" + u64s(res.instructions));
  // Solver sums, restricted to warmth-invariant combinations: the
  // shared-hit vs canonical-solve split depends on what previous requests
  // left in the cache, their sum does not (DESIGN.md §"Solver").
  const solver::SolverStats& ss = res.solver_stats;
  body.push_back("solver.queries|" + u64s(ss.queries));
  body.push_back("solver.slices|" + u64s(ss.slices));
  body.push_back("solver.local-hits|" + u64s(ss.cache_hits));
  body.push_back("solver.model-reuse-hits|" + u64s(ss.model_reuse_hits));
  body.push_back("solver.canonical|" + u64s(ss.shared_cache_hits + ss.solves));
  body.push_back("solver.static-prunes|" + u64s(ss.static_prunes));
  if (want_metrics) {
    body.push_back("beginmetrics");
    for (const std::string& l : split(res.metrics.to_json(), '\n')) {
      if (!l.empty()) body.push_back(l);
    }
    body.push_back("endmetrics");
  }
  if (want_trace) {
    body.push_back("begintrace");
    for (const std::string& l : split(tracer.to_jsonl(), '\n')) {
      if (!l.empty()) body.push_back(l);
    }
    body.push_back("endtrace");
  }
  return format_reply(frame.id, true, body);
}

std::string ServeSession::handle_stats(const Frame& frame) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> body;
  body.push_back("programs|" + u64s(store_.size()));
  std::uint64_t entries = 0;
  for (const auto& [fp, cache] : store_) entries += cache->size();
  body.push_back("cache-entries|" + u64s(entries));
  for (const auto& [name, value] : metrics_.counters()) {
    body.push_back("counter|" + name + "|" + u64s(value));
  }
  return format_reply(frame.id, true, body);
}

std::string ServeSession::handle_save(const Frame& frame) {
  if (opts_.store_path.empty()) {
    bump("serve.errors");
    return format_error_reply(frame.id, "bad-request",
                              "session has no --store path to save to");
  }
  std::string error;
  if (!save_store(&error)) {
    bump("serve.errors");
    return format_error_reply(frame.id, "io-error", error);
  }
  std::lock_guard<std::mutex> lock(mu_);
  return format_reply(
      frame.id, true,
      {"store|" + opts_.store_path,
       "store-bytes|" + u64s(metrics_.counter("serve.store_bytes"))});
}

std::string ServeSession::store_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<solver::StoreBlockRef> blocks;
  blocks.reserve(store_.size());
  for (const auto& [fp, cache] : store_) {
    blocks.push_back(solver::StoreBlockRef{fp, cache.get()});
  }
  return solver::serialize_store(blocks);
}

bool ServeSession::load_store_from_text(const std::string& text,
                                        std::string* error) {
  solver::CacheStoreStats stats;
  const bool ok = solver::load_store_text(
      text, [this](const solver::Fp128& fp) -> solver::SharedQueryCache& {
        return cache_for(fp);
      },
      &stats, error);
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.add("serve.store_bytes", stats.bytes);
  metrics_.add("serve.store_entries_loaded", stats.entries_loaded);
  metrics_.add("serve.store_entries_rejected", stats.entries_rejected);
  return ok;
}

bool ServeSession::load_store(std::string* error) {
  if (opts_.store_path.empty()) return true;
  std::ifstream in(opts_.store_path);
  if (!in) return true;  // no store yet: clean cold start
  std::stringstream ss;
  ss << in.rdbuf();
  return load_store_from_text(ss.str(), error);
}

bool ServeSession::save_store(std::string* error) {
  if (opts_.store_path.empty()) {
    if (error != nullptr) *error = "no store path configured";
    return false;
  }
  const std::string text = store_text();
  std::ofstream os(opts_.store_path);
  if (!os) {
    if (error != nullptr) *error = "cannot write " + opts_.store_path;
    return false;
  }
  os << text;
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.add("serve.store_bytes", text.size());
  return true;
}

}  // namespace statsym::serve
