// polymorph (BugBench) — file-name conversion utility.
//
// Function/global/parameter inventory mirrors the paper's Fig. 8:
//   functions: main, grok_commandLine, convert_fileName, is_fileHidden,
//              does_nameHaveUppers, does_newnameExist
//   globals:   target, wd, hidden, track, clean, init_file, hidden_file
//   params:    argc, original, suspect
//
// The vulnerability (§VII-C1): convert_fileName() copies the user-provided
// file name character by character into a 512-byte stack buffer `newName`
// with no bounds check; names of length >= 512 overflow it (the terminating
// store lands at index == length). The fault point is the copy loop, the
// failure manifests before convert_fileName() returns — so faulty logs never
// contain convert_fileName():leave / main():leave, which is what produces
// the "< -infinity" predicates of Table V.
#include "apps/registry.h"

#include "apps/stdlib.h"
#include "ir/builder.h"

namespace statsym::apps {

namespace {

constexpr std::int64_t kNewNameSize = 512;
constexpr std::int64_t kNameCap = 640;  // symbolic file-name capacity

constexpr std::int64_t kOutDirSize = 64;  // multibug variant's second sink

ir::Module build_polymorph(bool with_second_bug = false) {
  ir::ModuleBuilder mb(with_second_bug ? "polymorph-multibug" : "polymorph");
  emit_stdlib(mb);
  if (with_second_bug) {
    mb.global_buf("outdir", kOutDirSize);
    mb.global_int("have_outdir", 0);
    // set_outdir(dir): the second vulnerability — the "-o" argument is
    // copied into the fixed 64-byte outdir global without a bounds check.
    auto f = mb.func("set_outdir", {"dir"});
    const ir::Reg buf = f.load_global("outdir");
    f.call_void("__strcpy", {buf, f.param(0)});  // overflow when len >= 64
    f.store_global("have_outdir", f.ci(1));
    f.call_ext_void("mkdir", {buf});
    f.ret(f.ci(0));
  }

  mb.global_int("target", 0);       // set to the -f argument string
  mb.global_buf("wd", 256);         // working directory (decorative)
  mb.global_int("hidden", 0);       // last is_fileHidden verdict
  mb.global_int("track", 0);        // processed-file counter
  mb.global_int("clean", 0);        // -c: overwrite existing
  mb.global_int("init_file", 0);    // -i: process rc file
  mb.global_int("hidden_file", 0);  // -h: include hidden files
  mb.global_int("have_target", 0);

  // grok_commandLine(argc): option parsing; stores the -f argument into the
  // `target` global. Returns 0 on success.
  {
    auto f = mb.func("grok_commandLine", {"argc"});
    const ir::Reg argc = f.param(0);
    const ir::Reg i = f.reg();
    const auto loop = f.block();
    const auto body = f.block();
    const auto not_f = f.block();
    const auto take_name = f.block();
    const auto bad_f = f.block();
    const auto not_c = f.block();
    const auto not_i = f.block();
    const auto not_h = f.block();
    const auto not_v = f.block();
    const auto cont = f.block();
    const auto done = f.block();

    f.call_ext_void("getcwd", {f.load_global("wd")});
    f.assign(i, f.ci(1));
    f.jmp(loop);

    f.at(loop);
    f.br(f.ge(i, argc), done, body);

    f.at(body);
    const ir::Reg a = f.arg(i);
    f.br(f.call("__streq", {a, f.str_const("-f")}), take_name, not_f);

    f.at(take_name);
    f.assign(i, f.addi(i, 1));
    const auto have_arg = f.block();
    f.br(f.ge(i, argc), bad_f, have_arg);
    f.at(have_arg);
    f.store_global("target", f.arg(i));
    f.store_global("have_target", f.ci(1));
    f.jmp(cont);
    f.at(bad_f);
    f.call_ext_void("fprintf_usage", {});
    f.ret(f.ci(1));

    f.at(not_f);
    const auto set_c = f.block();
    f.br(f.call("__streq", {a, f.str_const("-c")}), set_c, not_c);
    f.at(set_c);
    f.store_global("clean", f.ci(1));
    f.jmp(cont);

    f.at(not_c);
    const auto set_i = f.block();
    f.br(f.call("__streq", {a, f.str_const("-i")}), set_i, not_i);
    f.at(set_i);
    f.store_global("init_file", f.ci(1));
    f.jmp(cont);

    f.at(not_i);
    if (with_second_bug) {
      const auto take_o = f.block();
      const auto not_o = f.block();
      f.br(f.call("__streq", {a, f.str_const("-o")}), take_o, not_o);
      f.at(take_o);
      f.assign(i, f.addi(i, 1));
      const auto have_o = f.block();
      const auto bad_o = f.block();
      f.br(f.ge(i, argc), bad_o, have_o);
      f.at(bad_o);
      f.call_ext_void("fprintf_usage", {});
      f.ret(f.ci(1));
      f.at(have_o);
      f.call_void("set_outdir", {f.arg(i)});
      f.jmp(cont);
      f.at(not_o);
    }
    const auto set_h = f.block();
    f.br(f.call("__streq", {a, f.str_const("-h")}), set_h, not_h);
    f.at(set_h);
    f.store_global("hidden_file", f.ci(1));
    f.jmp(cont);

    f.at(not_h);
    const auto show_v = f.block();
    f.br(f.call("__streq", {a, f.str_const("-v")}), show_v, not_v);
    f.at(show_v);
    f.call_ext_void("printf_version", {});
    f.jmp(cont);

    f.at(not_v);
    f.call_ext_void("fprintf_usage", {});
    f.ret(f.ci(1));

    f.at(cont);
    f.assign(i, f.addi(i, 1));
    f.jmp(loop);

    f.at(done);
    f.ret(f.ci(0));
  }

  // is_fileHidden(suspect): leading '.' means a hidden file.
  {
    auto f = mb.func("is_fileHidden", {"suspect"});
    const ir::Reg s = f.param(0);
    f.call_ext_void("lstat", {s});
    const ir::Reg c0 = f.load(s, f.ci(0));
    const ir::Reg r = f.eqi(c0, '.');
    f.store_global("hidden", r);
    f.ret(r);
  }

  // does_nameHaveUppers(suspect): branch-free accumulation per character —
  // only the string-termination test forks.
  {
    auto f = mb.func("does_nameHaveUppers", {"suspect"});
    const ir::Reg s = f.param(0);
    const ir::Reg i = f.reg();
    const ir::Reg has = f.reg();
    const auto loop = f.block();
    const auto body = f.block();
    const auto done = f.block();
    f.assign(i, f.ci(0));
    f.assign(has, f.ci(0));
    f.jmp(loop);
    f.at(loop);
    const ir::Reg c = f.load(s, i);
    f.br(f.eqi(c, 0), done, body);
    f.at(body);
    f.assign(has, f.lor(has, f.land(f.gei(c, 'A'), f.lei(c, 'Z'))));
    f.assign(i, f.addi(i, 1));
    f.jmp(loop);
    f.at(done);
    f.ret(has);
  }

  // does_newnameExist(suspect): builds the prospective lower-case name in a
  // bounded scratch buffer and stats it (modelled: never exists).
  {
    auto f = mb.func("does_newnameExist", {"suspect"});
    const ir::Reg s = f.param(0);
    const ir::Reg scratch = f.alloca_buf(kNameCap + 8);
    f.call_void("__strncpy", {scratch, s, f.ci(kNameCap + 8)});
    f.call_void("__tolower_str", {scratch});
    const ir::Reg st = f.call_ext("stat", {scratch});
    f.ret(f.nei(st, 0));
  }

  // convert_fileName(original): THE BUG. Lower-cases `original` into a
  // 512-byte stack buffer with no bounds check (paper §VII-C1).
  {
    auto f = mb.func("convert_fileName", {"original"});
    const ir::Reg orig = f.param(0);
    const ir::Reg new_name = f.alloca_buf(kNewNameSize);
    const ir::Reg i = f.reg();
    const auto loop = f.block();
    const auto cont = f.block();
    const auto done = f.block();
    f.assign(i, f.ci(0));
    f.jmp(loop);
    f.at(loop);
    const ir::Reg c = f.load(orig, i);
    const ir::Reg is_up = f.land(f.gei(c, 'A'), f.lei(c, 'Z'));
    const ir::Reg low = f.add(c, f.bini(ir::BinOp::kMul, is_up, 32));
    // Unchecked store: overflows new_name when i reaches 512 — which
    // happens whenever strlen(original) >= 512 (the NUL store included).
    f.store(new_name, i, low);
    f.br(f.eqi(c, 0), done, cont);
    f.at(cont);
    f.assign(i, f.addi(i, 1));
    f.jmp(loop);
    f.at(done);
    f.call_ext_void("rename", {orig, new_name});
    f.call_ext_void("chmod", {new_name});
    f.call_ext_void("utime", {new_name});
    f.ret(i);
  }

  // main: the paper's flow — parse, filter hidden files, skip names without
  // uppercase characters, honour -c for existing targets, then convert.
  {
    auto f = mb.func("main", {});
    const ir::Reg ac = f.argc();
    const ir::Reg rc = f.call("grok_commandLine", {ac});
    const auto parse_ok = f.block();
    const auto parse_bad = f.block();
    f.br(f.eqi(rc, 0), parse_ok, parse_bad);
    f.at(parse_bad);
    f.ret(f.ci(1));

    f.at(parse_ok);
    const auto have_t = f.block();
    const auto no_t = f.block();
    f.br(f.load_global("have_target"), have_t, no_t);
    f.at(no_t);
    f.call_ext_void("fprintf_usage", {});
    f.ret(f.ci(1));

    f.at(have_t);
    const ir::Reg t = f.load_global("target");
    const ir::Reg h = f.call("is_fileHidden", {t});
    const auto not_hidden = f.block();
    const auto hidden_b = f.block();
    f.br(h, hidden_b, not_hidden);
    f.at(hidden_b);
    const auto keep_going = f.block();
    const auto skip = f.block();
    f.br(f.load_global("hidden_file"), keep_going, skip);
    f.at(skip);
    f.ret(f.ci(0));
    f.at(keep_going);
    f.jmp(not_hidden);

    f.at(not_hidden);
    const ir::Reg u = f.call("does_nameHaveUppers", {t});
    const auto check_exist = f.block();
    const auto no_work = f.block();
    f.br(u, check_exist, no_work);
    f.at(no_work);
    f.store_global("track", f.bini(ir::BinOp::kAdd, f.load_global("track"), 1));
    f.ret(f.ci(0));

    f.at(check_exist);
    const ir::Reg ex = f.call("does_newnameExist", {t});
    const auto conv = f.block();
    const auto exist_b = f.block();
    f.br(ex, exist_b, conv);
    f.at(exist_b);
    const auto conv2 = f.block();
    const auto refuse = f.block();
    f.br(f.load_global("clean"), conv2, refuse);
    f.at(refuse);
    f.call_ext_void("fprintf_exists", {});
    f.ret(f.ci(1));
    f.at(conv2);
    f.jmp(conv);

    f.at(conv);
    f.call_void("convert_fileName", {t});
    f.store_global("track", f.bini(ir::BinOp::kAdd, f.load_global("track"), 1));
    f.ret(f.ci(0));
  }

  return mb.build();
}

// Random printable file names; ~22% exceed the 512-byte buffer, ~10% are
// hidden (leading '.'), occasional extra flags — the mixed correct/faulty
// population the statistics need.
interp::RuntimeInput polymorph_workload(Rng& rng) {
  interp::RuntimeInput in;
  in.argv.push_back("polymorph");
  if (rng.chance(0.15)) in.argv.push_back("-c");
  if (rng.chance(0.10)) in.argv.push_back("-i");
  in.argv.push_back("-f");
  const std::int64_t len = rng.uniform(1, kNameCap - 2);
  std::string name;
  name.reserve(static_cast<std::size_t>(len));
  if (rng.chance(0.10)) name.push_back('.');
  while (static_cast<std::int64_t>(name.size()) < len) {
    // Mixed-case letters, digits, separators; never NUL.
    static const char kAlphabet[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-";
    name.push_back(
        kAlphabet[static_cast<std::size_t>(rng.uniform(0, 63))]);
  }
  in.argv.push_back(name);
  return in;
}

}  // namespace

AppSpec make_polymorph() {
  AppSpec app;
  app.name = "polymorph";
  app.module = build_polymorph();
  app.sym_spec.argv = {
      symexec::SymStr::fixed("polymorph"),
      symexec::SymStr::fixed("-f"),
      symexec::SymStr::sym("fname", kNameCap),
  };
  app.workload = polymorph_workload;
  app.vuln_function = "convert_fileName";
  app.vuln_kind = interp::FaultKind::kOobStore;
  app.crash_threshold = kNewNameSize;  // names of length >= 512 crash
  return app;
}

AppSpec make_polymorph_multibug() {
  AppSpec app;
  app.name = "polymorph-multibug";
  app.module = build_polymorph(/*with_second_bug=*/true);
  app.sym_spec.argv = {
      symexec::SymStr::fixed("polymorph"),
      symexec::SymStr::fixed("-o"),
      symexec::SymStr::sym("outdir", 128),
      symexec::SymStr::fixed("-f"),
      symexec::SymStr::sym("fname", kNameCap),
  };
  // Workload: both failure modes occur — long output directories crash
  // set_outdir (during parsing), long file names crash convert_fileName.
  app.workload = [](Rng& rng) {
    interp::RuntimeInput in = polymorph_workload(rng);
    if (rng.chance(0.5)) {
      const std::int64_t len = rng.uniform(1, 120);
      std::string dir;
      for (std::int64_t i = 0; i < len; ++i) {
        dir.push_back(static_cast<char>(rng.uniform('a', 'z')));
      }
      // Insert "-o <dir>" right after argv[0].
      in.argv.insert(in.argv.begin() + 1, dir);
      in.argv.insert(in.argv.begin() + 1, "-o");
    }
    return in;
  };
  // Ground truth for the dominant (parse-time) bug; the second one is
  // convert_fileName as in the base app.
  app.vuln_function = "set_outdir";
  app.vuln_kind = interp::FaultKind::kOobStore;
  app.crash_threshold = kOutDirSize;
  return app;
}

}  // namespace statsym::apps
