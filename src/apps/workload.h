// Workload helpers shared by tests, examples and the benchmark harness.
#pragma once

#include "apps/registry.h"
#include "monitor/monitor.h"

namespace statsym::apps {

// Runs the module once (no monitoring) and reports whether it faulted.
bool run_is_faulty(const ir::Module& m, const interp::RuntimeInput& input);

// Collects sampled logs for an application: runs its workload generator
// until `n_correct` + `n_faulty` logs are gathered (or the attempt cap).
std::vector<monitor::RunLog> collect_app_logs(const AppSpec& app,
                                              monitor::MonitorOptions mon,
                                              std::size_t n_correct,
                                              std::size_t n_faulty,
                                              std::uint64_t seed,
                                              std::size_t max_attempts = 20000);

}  // namespace statsym::apps
