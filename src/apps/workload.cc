#include "apps/workload.h"

namespace statsym::apps {

bool run_is_faulty(const ir::Module& m, const interp::RuntimeInput& input) {
  interp::Interpreter it(m, input);
  return it.run().outcome == interp::RunOutcome::kFault;
}

std::vector<monitor::RunLog> collect_app_logs(const AppSpec& app,
                                              monitor::MonitorOptions mon,
                                              std::size_t n_correct,
                                              std::size_t n_faulty,
                                              std::uint64_t seed,
                                              std::size_t max_attempts) {
  std::vector<monitor::RunLog> logs;
  Rng rng(seed);
  std::size_t correct = 0;
  std::size_t faulty = 0;
  std::int32_t run_id = 0;
  for (std::size_t i = 0;
       i < max_attempts && (correct < n_correct || faulty < n_faulty); ++i) {
    Rng input_rng = rng.split();
    auto run = monitor::run_monitored(app.module, app.workload(input_rng),
                                      mon, rng.split(), run_id);
    if (run.log.faulty && faulty < n_faulty) {
      logs.push_back(std::move(run.log));
      ++faulty;
      ++run_id;
    } else if (!run.log.faulty && correct < n_correct) {
      logs.push_back(std::move(run.log));
      ++correct;
      ++run_id;
    }
  }
  return logs;
}

}  // namespace statsym::apps
