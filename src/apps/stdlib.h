// Shared IR "libc" routines emitted into every target application.
//
// Functions are prefixed "__": the monitor does not instrument them (Fjalar
// instruments user code, not libc) and statistics-guidance treats their
// entry/exit events as invisible. Their *loops* still execute symbolically,
// which is where string-termination forking — the engine's main source of
// path branching — happens, exactly as KLEE forks inside real libc string
// routines compiled to bitcode.
#pragma once

#include "ir/builder.h"

namespace statsym::apps {

// Emits the routines below into `mb`:
//   __strlen(s) -> n                 (loop; forks on termination)
//   __strcpy(dst, src) -> n          (UNCHECKED copy incl. NUL — faults when
//                                     dst is too small: the classic sink)
//   __strncpy(dst, src, n) -> copied (bounded, always NUL-terminates; safe)
//   __streq(a, b) -> 0/1
//   __strcat(dst, src) -> len        (unchecked append incl. NUL)
//   __atoi(s) -> value               (decimal, optional leading '-')
//   __tolower_str(s) -> changed      (branchless per-char lowering in place)
//   __count_char(s, c) -> n          (value-branching scan: forks per char)
void emit_stdlib(ir::ModuleBuilder& mb);

}  // namespace statsym::apps
