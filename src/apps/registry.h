// The benchmark applications (§VII-A): mini-IR re-implementations of the
// paper's four targets plus the Fig. 2a motivating example, each packaged
// with its symbolic-input configuration, a random-workload generator (the
// "testing inputs" that produce correct and faulty logs), and the expected
// vulnerability for validation.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "interp/interpreter.h"
#include "ir/module.h"
#include "support/rng.h"
#include "symexec/executor.h"

namespace statsym::apps {

using WorkloadGen = std::function<interp::RuntimeInput(Rng&)>;

struct AppSpec {
  std::string name;
  ir::Module module;
  symexec::SymInputSpec sym_spec;  // how inputs are made symbolic (§VII-A)
  WorkloadGen workload;            // random-input generator for log collection
  std::string vuln_function;       // fault-point function (ground truth)
  interp::FaultKind vuln_kind{interp::FaultKind::kNone};
  // Smallest input magnitude (string length) that triggers the fault —
  // used by tests to validate workload labelling.
  std::int64_t crash_threshold{0};
};

// polymorph (BugBench): file-name conversion utility; stack buffer overflow
// in convert_fileName for names longer than 512 bytes.
AppSpec make_polymorph();

// polymorph variant carrying a second, independent overflow (the "-o"
// output-directory argument smashes a 64-byte global in set_outdir) — the
// multi-vulnerability scenario of the paper's §III-C, driven through
// StatSymEngine::run_all.
AppSpec make_polymorph_multibug();

// CTree (STONESOUP): directory-tree renderer; 64-byte stack buffer
// overflow in initlinedraw fed by the STONESOUP_STACK_BUFFER_64 env var.
AppSpec make_ctree();

// Grep (STONESOUP): line matcher; STONESOUP env-var injection overflowing a
// fixed buffer in stonesoup_handle_taint, buried under a large call surface.
AppSpec make_grep();

// thttpd 2.25b (CVE-2003-0899): web server; defang() expands '<'/'>' into
// "&lt;"/"&gt;" in a fixed buffer — long request paths overflow it.
AppSpec make_thttpd();

// The paper's Fig. 2a sample program (assertion reachable when the symbolic
// integer is >= 3 inside the guarded loop).
AppSpec make_fig2();

// All four evaluation targets, in the paper's order.
std::vector<std::string> app_names();
AppSpec make_app(const std::string& name);

// Extension point for dynamically constructed applications (e.g. the fuzz
// generator's "fuzz:<seed>" programs). make_app consults registered
// factories — newest first — before the built-in names; a factory returns
// nullopt for names it does not recognise.
using AppFactory = std::function<std::optional<AppSpec>(const std::string&)>;
void register_app_factory(AppFactory factory);

}  // namespace statsym::apps
