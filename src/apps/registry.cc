#include "apps/registry.h"

#include <stdexcept>

namespace statsym::apps {

std::vector<std::string> app_names() {
  return {"polymorph", "ctree", "grep", "thttpd"};
}

namespace {
std::vector<AppFactory>& factories() {
  static std::vector<AppFactory> fs;
  return fs;
}
}  // namespace

void register_app_factory(AppFactory factory) {
  factories().push_back(std::move(factory));
}

AppSpec make_app(const std::string& name) {
  for (auto it = factories().rbegin(); it != factories().rend(); ++it) {
    if (auto spec = (*it)(name)) return std::move(*spec);
  }
  if (name == "polymorph") return make_polymorph();
  if (name == "polymorph-multibug") return make_polymorph_multibug();
  if (name == "ctree") return make_ctree();
  if (name == "grep") return make_grep();
  if (name == "thttpd") return make_thttpd();
  if (name == "fig2") return make_fig2();
  throw std::invalid_argument("unknown app: " + name);
}

}  // namespace statsym::apps
