#include "apps/registry.h"

#include <stdexcept>

namespace statsym::apps {

std::vector<std::string> app_names() {
  return {"polymorph", "ctree", "grep", "thttpd"};
}

AppSpec make_app(const std::string& name) {
  if (name == "polymorph") return make_polymorph();
  if (name == "polymorph-multibug") return make_polymorph_multibug();
  if (name == "ctree") return make_ctree();
  if (name == "grep") return make_grep();
  if (name == "thttpd") return make_thttpd();
  if (name == "fig2") return make_fig2();
  throw std::invalid_argument("unknown app: " + name);
}

}  // namespace statsym::apps
