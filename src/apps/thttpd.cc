// thttpd 2.25b (CVE-2003-0899) — web server with the defang() overflow.
//
// §VII-C2: a buffer-overflow in defang(), which rewrites '<' and '>' in an
// input string into "&lt;" / "&gt;" while copying into a fixed-size dfstr
// buffer — a sufficiently long (or '<'-rich) request path overflows it with
// potential remote code execution. The paper highlights thttpd's two
// KLEE-killers: a long chain of internal calls between the string-injection
// point (handle_read) and the vulnerability site, and the tight
// loop+switch inside defang that multiplies states per character.
//
// The server is modelled for a single request: accept → read → parse →
// a realistic processing chain (de_dotdot, tilde_map, vhost_map, auth_check,
// figure_mime, make_log_entry, ...) → the request fails lookup → the error
// response path calls defang() on the request path.
#include "apps/registry.h"

#include "apps/stdlib.h"
#include "ir/builder.h"

namespace statsym::apps {

namespace {

constexpr std::int64_t kDfstrSize = 1000;  // the vulnerable buffer (CVE)
constexpr std::int64_t kReqCap = 1200;     // symbolic request capacity
constexpr const char* kRequestVar = "REQUEST";  // models recv() payload

ir::Module build_thttpd() {
  ir::ModuleBuilder mb("thttpd");
  emit_stdlib(mb);

  mb.global_buf("conn_request", kReqCap + 16);  // connection read buffer
  mb.global_int("req_len", 0);
  mb.global_int("req_path", 0);        // ref into conn_request after "GET "
  mb.global_int("req_method_ok", 0);
  mb.global_int("vhost_enabled", 0);
  mb.global_int("auth_required", 0);
  mb.global_int("do_logging", 1);
  mb.global_int("status_code", 0);
  mb.global_int("bytes_sent", 0);
  mb.global_int("numconnects", 0);
  mb.global_int("dotdot_count", 0);

  // httpd_initialize(): socket setup decoration.
  {
    auto f = mb.func("httpd_initialize", {});
    f.call_ext_void("socket", {});
    f.call_ext_void("bind", {});
    f.call_ext_void("listen", {});
    f.call_ext_void("getaddrinfo", {});
    f.ret(f.ci(0));
  }

  // handle_newconnect(): accept() bookkeeping.
  {
    auto f = mb.func("handle_newconnect", {});
    f.call_ext_void("accept", {});
    const ir::Reg n = f.load_global("numconnects");
    f.store_global("numconnects", f.bini(ir::BinOp::kAdd, n, 1));
    f.ret(f.ci(0));
  }

  // handle_read(): copies the network payload (modelled by the REQUEST env
  // var) into the connection buffer. This is the string-injection point the
  // paper names; the candidate-path predicate on the request length lives
  // at this function's leave.
  {
    auto f = mb.func("handle_read", {});
    const ir::Reg e = f.env(kRequestVar);
    const auto have = f.block();
    const auto empty = f.block();
    f.br(e, have, empty);
    f.at(empty);
    f.store_global("req_len", f.ci(0));
    f.ret(f.ci(0));
    f.at(have);
    const ir::Reg buf = f.load_global("conn_request");
    const ir::Reg n = f.call("__strncpy", {buf, e, f.ci(kReqCap + 16)});
    f.store_global("req_len", n);
    f.ret(n);
  }

  // httpd_parse_request(): verifies the "GET " prefix and points req_path
  // at the rest of the request. Returns 0 on success.
  {
    auto f = mb.func("httpd_parse_request", {});
    const ir::Reg buf = f.load_global("conn_request");
    const char kPrefix[] = {'G', 'E', 'T', ' '};
    const auto bad = f.block();
    for (int i = 0; i < 4; ++i) {
      const ir::Reg c = f.load(buf, f.ci(i));
      const auto next = f.block();
      f.br(f.eqi(c, kPrefix[i]), next, bad);
      f.at(next);
    }
    f.store_global("req_method_ok", f.ci(1));
    // req_path = &conn_request[4]; references carry offsets natively.
    const ir::Reg p4 = f.call("__path_at4", {buf});
    f.store_global("req_path", p4);
    f.ret(f.ci(0));
    f.at(bad);
    f.store_global("req_method_ok", f.ci(0));
    f.ret(f.ci(1));
  }

  // de_dotdot(path): counts '.' occurrences branch-free (the comparison is
  // a value, not a fork), so the scan does not pin path bytes — matching
  // thttpd's table-driven character classification.
  {
    auto f = mb.func("de_dotdot", {"path"});
    const ir::Reg path = f.param(0);
    const ir::Reg i = f.reg();
    const ir::Reg dots = f.reg();
    const auto loop = f.block();
    const auto body = f.block();
    const auto done = f.block();
    f.assign(i, f.ci(0));
    f.assign(dots, f.ci(0));
    f.jmp(loop);
    f.at(loop);
    const ir::Reg c = f.load(path, i);
    f.br(f.eqi(c, 0), done, body);
    f.at(body);
    f.assign(dots, f.add(dots, f.eqi(c, '.')));
    f.assign(i, f.addi(i, 1));
    f.jmp(loop);
    f.at(done);
    f.store_global("dotdot_count", dots);
    const auto dirty = f.block();
    const auto clean_b = f.block();
    f.br(f.gti(dots, 0), dirty, clean_b);
    f.at(dirty);
    f.call_ext_void("syslog_dotdot", {dots});
    f.ret(dots);
    f.at(clean_b);
    f.ret(f.ci(0));
  }

  // tilde_map(path): "~user" expansion check (first char only).
  {
    auto f = mb.func("tilde_map", {"path"});
    const ir::Reg c0 = f.load(f.param(0), f.ci(0));
    const auto is_tilde = f.block();
    const auto plain = f.block();
    f.br(f.eqi(c0, '~'), is_tilde, plain);
    f.at(is_tilde);
    f.call_ext_void("getpwnam", {});
    f.ret(f.ci(1));
    f.at(plain);
    f.ret(f.ci(0));
  }

  // vhost_map(path): virtual-host prefixing (disabled by default).
  {
    auto f = mb.func("vhost_map", {"path"});
    const auto on = f.block();
    const auto off = f.block();
    f.br(f.load_global("vhost_enabled"), on, off);
    f.at(on);
    f.call_ext_void("gethostbyname", {});
    f.ret(f.ci(1));
    f.at(off);
    f.ret(f.ci(0));
  }

  // auth_check(path): HTTP auth (disabled by default).
  {
    auto f = mb.func("auth_check", {"path"});
    const auto on = f.block();
    const auto off = f.block();
    f.br(f.load_global("auth_required"), on, off);
    f.at(on);
    f.call_ext_void("b64_decode", {});
    f.ret(f.ci(401));
    f.at(off);
    f.ret(f.ci(0));
  }

  // figure_mime(path): suffix → mime type via last character class.
  {
    auto f = mb.func("figure_mime", {"path"});
    const ir::Reg n = f.call("__strlen", {f.param(0)});
    const auto nonempty = f.block();
    const auto empty = f.block();
    f.br(n, nonempty, empty);
    f.at(empty);
    f.ret(f.ci(0));
    f.at(nonempty);
    const ir::Reg last = f.load(f.param(0), f.bini(ir::BinOp::kSub, n, 1));
    const ir::Reg is_alpha =
        f.land(f.gei(last, 'a'), f.lei(last, 'z'));
    f.ret(is_alpha);
  }

  // make_log_entry(path): access logging decoration.
  {
    auto f = mb.func("make_log_entry", {"path"});
    const auto on = f.block();
    const auto off = f.block();
    f.br(f.load_global("do_logging"), on, off);
    f.at(on);
    f.call_ext_void("fprintf_log", {f.param(0)});
    f.ret(f.ci(1));
    f.at(off);
    f.ret(f.ci(0));
  }

  // really_check_referer(path): trivially permissive (decoration).
  {
    auto f = mb.func("really_check_referer", {"path"});
    f.call_ext_void("strstr", {f.param(0)});
    f.ret(f.ci(1));
  }

  // defang(str, dfstr): THE BUG (CVE-2003-0899). Rewrites '<' and '>' into
  // "&lt;"/"&gt;" while copying into the fixed dfstr buffer without bounds
  // checks — the write index grows by up to 4 per input character.
  {
    auto f = mb.func("defang", {"str", "dfstr"});
    const ir::Reg str = f.param(0);
    const ir::Reg df = f.param(1);
    const ir::Reg i = f.reg();
    const ir::Reg d = f.reg();
    const auto loop = f.block();
    const auto body = f.block();
    const auto lt_case = f.block();
    const auto not_lt = f.block();
    const auto gt_case = f.block();
    const auto plain = f.block();
    const auto cont = f.block();
    const auto done = f.block();
    f.assign(i, f.ci(0));
    f.assign(d, f.ci(0));
    f.jmp(loop);
    f.at(loop);
    const ir::Reg c = f.load(str, i);
    f.br(f.eqi(c, 0), done, body);
    f.at(body);
    f.br(f.eqi(c, '<'), lt_case, not_lt);
    f.at(lt_case);
    f.store(df, d, f.ci('&'));
    f.store(df, f.addi(d, 1), f.ci('l'));
    f.store(df, f.addi(d, 2), f.ci('t'));
    f.store(df, f.addi(d, 3), f.ci(';'));
    f.assign(d, f.addi(d, 4));
    f.jmp(cont);
    f.at(not_lt);
    f.br(f.eqi(c, '>'), gt_case, plain);
    f.at(gt_case);
    f.store(df, d, f.ci('&'));
    f.store(df, f.addi(d, 1), f.ci('g'));
    f.store(df, f.addi(d, 2), f.ci('t'));
    f.store(df, f.addi(d, 3), f.ci(';'));
    f.assign(d, f.addi(d, 4));
    f.jmp(cont);
    f.at(plain);
    f.store(df, d, c);
    f.assign(d, f.addi(d, 1));
    f.jmp(cont);
    f.at(cont);
    f.assign(i, f.addi(i, 1));
    f.jmp(loop);
    f.at(done);
    f.store(df, d, f.ci(0));
    f.ret(d);
  }

  // send_err_response(path): the error path that reaches defang — exactly
  // how CVE-2003-0899 is triggered (the 404 page echoes the defanged path).
  {
    auto f = mb.func("send_err_response", {"path"});
    const ir::Reg dfstr = f.alloca_buf(kDfstrSize);
    const ir::Reg n = f.call("defang", {f.param(0), dfstr});
    f.store_global("status_code", f.ci(404));
    f.store_global("bytes_sent", n);
    f.call_ext_void("send", {dfstr});
    f.ret(n);
  }

  // send_response(path): success path (never taken for the modelled docroot
  // — every file lookup fails, as for a request against an empty docroot).
  {
    auto f = mb.func("send_response", {"path"});
    f.store_global("status_code", f.ci(200));
    f.call_ext_void("send", {f.param(0)});
    f.ret(f.ci(0));
  }

  // handle_request(path): the documented long internal chain between the
  // injection point and defang.
  {
    auto f = mb.func("handle_request", {"path"});
    const ir::Reg path = f.param(0);
    f.call_void("de_dotdot", {path});
    f.call_void("tilde_map", {path});
    f.call_void("vhost_map", {path});
    const ir::Reg auth = f.call("auth_check", {path});
    const auto authed = f.block();
    const auto denied = f.block();
    f.br(f.eqi(auth, 0), authed, denied);
    f.at(denied);
    f.ret(f.call("send_err_response", {path}));
    f.at(authed);
    f.call_void("figure_mime", {path});
    f.call_void("really_check_referer", {path});
    f.call_void("make_log_entry", {path});
    const ir::Reg found = f.call_ext("stat_docroot", {path});
    const auto hit = f.block();
    const auto miss = f.block();
    f.br(found, hit, miss);
    f.at(hit);
    f.ret(f.call("send_response", {path}));
    f.at(miss);
    // Empty docroot: every lookup 404s through the defang path.
    f.ret(f.call("send_err_response", {path}));
  }

  // __path_at4(buf): library helper returning &buf[4] (pointer arithmetic
  // is expressed through a bounded scan so the IR needs no ptr-add opcode).
  {
    auto f = mb.func("__path_at4", {"buf"});
    const ir::Reg buf = f.param(0);
    // A 4-byte scratch copy trick would lose aliasing with the request
    // buffer; instead rebuild the reference by loading through an offset
    // loop is impossible in this IR — so thttpd stores the path as the
    // buffer itself plus a skip count handled by callers. To keep callers
    // simple the helper copies the tail into a dedicated path buffer.
    const ir::Reg path_buf = f.alloca_buf(kReqCap + 8);
    const ir::Reg i = f.reg();
    const auto loop = f.block();
    const auto cont = f.block();
    const auto done = f.block();
    f.assign(i, f.ci(0));
    f.jmp(loop);
    f.at(loop);
    const ir::Reg c = f.load(buf, f.addi(i, 4));
    f.store(path_buf, i, c);
    f.br(f.eqi(c, 0), done, cont);
    f.at(cont);
    f.assign(i, f.addi(i, 1));
    f.jmp(loop);
    f.at(done);
    f.ret(path_buf);
  }

  {
    auto f = mb.func("main", {});
    f.call_void("httpd_initialize", {});
    f.call_void("handle_newconnect", {});
    const ir::Reg n = f.call("handle_read", {});
    const auto got = f.block();
    const auto nothing = f.block();
    f.br(n, got, nothing);
    f.at(nothing);
    f.ret(f.ci(1));
    f.at(got);
    const ir::Reg rc = f.call("httpd_parse_request", {});
    const auto ok = f.block();
    const auto bad_req = f.block();
    f.br(f.eqi(rc, 0), ok, bad_req);
    f.at(bad_req);
    f.store_global("status_code", f.ci(400));
    f.call_ext_void("send_400", {});
    f.ret(f.ci(1));
    f.at(ok);
    f.call_void("handle_request", {f.load_global("req_path")});
    f.ret(f.ci(0));
  }

  return mb.build();
}

interp::RuntimeInput thttpd_workload(Rng& rng) {
  interp::RuntimeInput in;
  in.argv = {"thttpd"};
  std::string req = "GET /";
  const std::int64_t len = rng.uniform(1, kReqCap - 8);
  for (std::int64_t i = 1; i < len; ++i) {
    // URL-ish characters with a realistic sprinkle of '<' and '>' — the
    // characters defang expands 4x.
    const std::int64_t roll = rng.uniform(0, 99);
    if (roll < 3) {
      req.push_back('<');
    } else if (roll < 6) {
      req.push_back('>');
    } else {
      static const char kUrl[] =
          "abcdefghijklmnopqrstuvwxyz0123456789/_-.%";
      req.push_back(kUrl[static_cast<std::size_t>(rng.uniform(0, 40))]);
    }
  }
  in.env[kRequestVar] = req;
  return in;
}

}  // namespace

AppSpec make_thttpd() {
  AppSpec app;
  app.name = "thttpd";
  app.module = build_thttpd();
  app.sym_spec.argv = {symexec::SymStr::fixed("thttpd")};
  app.sym_spec.env = {
      {kRequestVar, symexec::SymStr::sym("request", kReqCap)},
  };
  app.workload = thttpd_workload;
  app.vuln_function = "defang";
  app.vuln_kind = interp::FaultKind::kOobStore;
  // The expanded length (len + 3 * specials) reaching 1000 overflows dfstr;
  // for plain paths that is a path length of 1000.
  app.crash_threshold = kDfstrSize;
  return app;
}

}  // namespace statsym::apps
