// The motivating example of the paper's Fig. 2a:
//
//   void vul_func(int a) { if (a >= 3) assert(0); }
//   void f1(int x) {
//     if (x >= 1000 || x < 0) { ... }
//     else { int i = 0; while (i < x) { vul_func(i); i++; } printf(i); }
//   }
//   void main() { int m; make_symbolic(&m); f1(m); }
//
// Pure symbolic execution forks a fresh state per loop iteration (Fig. 2b);
// the statistics-guided run prunes everything except the x >= 3 region
// (Fig. 2c).
#include "apps/registry.h"

#include "ir/builder.h"

namespace statsym::apps {

namespace {

ir::Module build_fig2() {
  ir::ModuleBuilder mb("fig2");

  {
    auto f = mb.func("vul_func", {"a"});
    const ir::Reg a = f.param(0);
    const auto bad = f.block();
    const auto ok = f.block();
    f.br(f.gei(a, 3), bad, ok);
    f.at(bad);
    f.assert_true(f.ci(0));  // assert(0)
    f.ret();
    f.at(ok);
    f.ret();
  }

  {
    auto f = mb.func("f1", {"x"});
    const ir::Reg x = f.param(0);
    const auto big = f.block();
    const auto loop_pre = f.block();
    const auto loop = f.block();
    const auto body = f.block();
    const auto done = f.block();
    f.br(f.lor(f.gei(x, 1000), f.lti(x, 0)), big, loop_pre);
    f.at(big);
    f.call_ext_void("printf", {x});
    f.ret();
    f.at(loop_pre);
    const ir::Reg i = f.reg();
    f.assign(i, f.ci(0));
    f.jmp(loop);
    f.at(loop);
    f.br(f.lt(i, x), body, done);
    f.at(body);
    f.call_void("vul_func", {i});
    f.assign(i, f.addi(i, 1));
    f.jmp(loop);
    f.at(done);
    f.call_ext_void("printf", {i});
    f.ret();
  }

  {
    auto f = mb.func("main", {});
    const ir::Reg m = f.reg();
    f.make_sym_int(m, "sym_m", -2048, 2047);
    f.call_void("f1", {m});
    f.ret(f.ci(0));
  }

  return mb.build();
}

}  // namespace

AppSpec make_fig2() {
  AppSpec app;
  app.name = "fig2";
  app.module = build_fig2();
  // No argv/env; the symbolic integer is declared in the program itself.
  app.workload = [](Rng& rng) {
    interp::RuntimeInput in;
    in.sym_ints["sym_m"] = rng.uniform(-64, 64);
    return in;
  };
  app.vuln_function = "vul_func";
  app.vuln_kind = interp::FaultKind::kAssertFail;
  // The loop body runs with i = 0..m-1, so vul_func sees a >= 3 (and the
  // assertion fires) exactly when 4 <= m < 1000.
  app.crash_threshold = 4;
  return app;
}

}  // namespace statsym::apps
