// Grep (NIST STONESOUP) — command-line plain-text search.
//
// The largest target (paper Table I: 6.6k SLOC, 143 external calls): full
// option parsing (-i -v -c -n -e), a literal/'.'/'*' pattern matcher run
// over a synthetic corpus of input lines, match counting and printing — and
// the STONESOUP injection: a GREP_STONESOUP_BUF environment variable read
// into a global, "decoded" by branching per-character scans, and finally
// copied unchecked into a 256-byte stack buffer in stonesoup_handle_taint()
// (the paper notes Grep's injection "is similar to CTree").
#include "apps/registry.h"

#include "apps/stdlib.h"
#include "ir/builder.h"

namespace statsym::apps {

namespace {

constexpr std::int64_t kTaintBufSize = 256;  // the vulnerable stack buffer
constexpr std::int64_t kTaintCap = 480;
constexpr const char* kTaintVar = "GREP_STONESOUP_BUF";

// The synthetic corpus grep scans (real grep reads stdin/files; external
// input is modelled as fixed text so the matcher runs concrete loops).
constexpr const char* kCorpus[] = {
    "the quick brown fox jumps over the lazy dog",
    "pack my box with five dozen liquor jugs",
    "grep searches the named input files",
    "a line containing the needle pattern sits here",
    "empty handed we return to the shore",
    "needle in a haystack is proverbial",
    "final line of the synthetic corpus",
};

ir::Module build_grep() {
  ir::ModuleBuilder mb("grep");
  emit_stdlib(mb);

  mb.global_int("opt_ignore_case", 0);  // -i
  mb.global_int("opt_invert", 0);       // -v
  mb.global_int("opt_count_only", 0);   // -c
  mb.global_int("opt_line_numbers", 0); // -n
  mb.global_int("pattern", 0);          // compiled pattern string
  mb.global_int("have_pattern", 0);
  mb.global_int("match_count", 0);
  mb.global_int("lines_scanned", 0);
  mb.global_buf("stonesoup_tainted_buff", kTaintCap + 16);
  mb.global_int("taint_len", 0);
  mb.global_int("taint_at_signs", 0);
  mb.global_int("taint_colons", 0);

  // usage(): error path helper.
  {
    auto f = mb.func("usage", {});
    f.call_ext_void("fprintf_usage", {});
    f.call_ext_void("fflush", {});
    f.ret(f.ci(2));
  }

  // init_locale(): startup i18n boilerplate (external-call surface — Grep
  // carries the largest Ext. Call count in the paper's Table I).
  {
    auto f = mb.func("init_locale", {});
    f.call_ext_void("setlocale", {});
    f.call_ext_void("bindtextdomain", {});
    f.call_ext_void("textdomain", {});
    f.call_ext_void("atexit", {});
    f.ret(f.ci(0));
  }

  // open_corpus()/close_corpus(): model the file plumbing around the fixed
  // corpus (fopen/fstat/mmap on real grep).
  {
    auto f = mb.func("open_corpus", {});
    f.call_ext_void("fopen", {});
    f.call_ext_void("fstat", {});
    f.call_ext_void("mmap", {});
    f.call_ext_void("posix_fadvise", {});
    f.ret(f.ci(0));
  }
  {
    auto f = mb.func("close_corpus", {});
    f.call_ext_void("munmap", {});
    f.call_ext_void("fclose", {});
    f.ret(f.ci(0));
  }

  // report_stats(matches): summary diagnostics on exit.
  {
    auto f = mb.func("report_stats", {"matches"});
    const auto some = f.block();
    const auto none = f.block();
    f.br(f.param(0), some, none);
    f.at(some);
    f.call_ext_void("fprintf_summary", {f.param(0)});
    f.call_ext_void("fflush", {});
    f.ret(f.ci(0));
    f.at(none);
    f.call_ext_void("fprintf_nomatch", {});
    f.ret(f.ci(1));
  }

  // parse_options(argc): GNU-ish flag parsing; "-e <pat>" or a bare first
  // non-flag argument supplies the pattern.
  {
    auto f = mb.func("parse_options", {"argc"});
    const ir::Reg argc = f.param(0);
    const ir::Reg i = f.reg();
    const auto loop = f.block();
    const auto body = f.block();
    const auto not_i = f.block();
    const auto not_v = f.block();
    const auto not_c = f.block();
    const auto not_n = f.block();
    const auto not_e = f.block();
    const auto cont = f.block();
    const auto done = f.block();
    f.assign(i, f.ci(1));
    f.jmp(loop);
    f.at(loop);
    f.br(f.ge(i, argc), done, body);
    f.at(body);
    const ir::Reg a = f.arg(i);
    const auto set_i = f.block();
    f.br(f.call("__streq", {a, f.str_const("-i")}), set_i, not_i);
    f.at(set_i);
    f.store_global("opt_ignore_case", f.ci(1));
    f.jmp(cont);
    f.at(not_i);
    const auto set_v = f.block();
    f.br(f.call("__streq", {a, f.str_const("-v")}), set_v, not_v);
    f.at(set_v);
    f.store_global("opt_invert", f.ci(1));
    f.jmp(cont);
    f.at(not_v);
    const auto set_c = f.block();
    f.br(f.call("__streq", {a, f.str_const("-c")}), set_c, not_c);
    f.at(set_c);
    f.store_global("opt_count_only", f.ci(1));
    f.jmp(cont);
    f.at(not_c);
    const auto set_n = f.block();
    f.br(f.call("__streq", {a, f.str_const("-n")}), set_n, not_n);
    f.at(set_n);
    f.store_global("opt_line_numbers", f.ci(1));
    f.jmp(cont);
    f.at(not_n);
    const auto take_e = f.block();
    f.br(f.call("__streq", {a, f.str_const("-e")}), take_e, not_e);
    f.at(take_e);
    f.assign(i, f.addi(i, 1));
    const auto have_e = f.block();
    const auto bad_e = f.block();
    f.br(f.ge(i, argc), bad_e, have_e);
    f.at(bad_e);
    f.ret(f.call("usage", {}));
    f.at(have_e);
    f.store_global("pattern", f.arg(i));
    f.store_global("have_pattern", f.ci(1));
    f.jmp(cont);
    f.at(not_e);
    // Bare argument: first one is the pattern, extras are ignored (files
    // are modelled by the fixed corpus).
    const auto bare_pat = f.block();
    f.br(f.load_global("have_pattern"), cont, bare_pat);
    f.at(bare_pat);
    f.store_global("pattern", a);
    f.store_global("have_pattern", f.ci(1));
    f.jmp(cont);
    f.at(cont);
    f.assign(i, f.addi(i, 1));
    f.jmp(loop);
    f.at(done);
    f.ret(f.ci(0));
  }

  // lower_char(c): branch-free ASCII lowering used by -i matching.
  {
    auto f = mb.func("lower_char", {"c"});
    const ir::Reg c = f.param(0);
    const ir::Reg is_up = f.land(f.gei(c, 'A'), f.lei(c, 'Z'));
    f.ret(f.add(c, f.bini(ir::BinOp::kMul, is_up, 32)));
  }

  // chars_equal(a, b): honours opt_ignore_case.
  {
    auto f = mb.func("chars_equal", {"a", "b"});
    const auto ci_b = f.block();
    const auto cs_b = f.block();
    f.br(f.load_global("opt_ignore_case"), ci_b, cs_b);
    f.at(ci_b);
    const ir::Reg la = f.call("lower_char", {f.param(0)});
    const ir::Reg lb = f.call("lower_char", {f.param(1)});
    f.ret(f.eq(la, lb));
    f.at(cs_b);
    f.ret(f.eq(f.param(0), f.param(1)));
  }

  // match_here(line, li, pat, pi): anchored match supporting '.' (any char)
  // and trailing-position recursion; returns 1 on match.
  {
    auto f = mb.func("match_here", {"line", "li", "pat", "pi"});
    const ir::Reg line = f.param(0);
    const ir::Reg li = f.param(1);
    const ir::Reg pat = f.param(2);
    const ir::Reg pi = f.param(3);
    const auto pat_end = f.block();
    const auto check_line = f.block();
    const auto line_end = f.block();
    const auto compare = f.block();
    const auto ok = f.block();
    const auto fail = f.block();
    const ir::Reg pc = f.load(pat, pi);
    f.br(f.eqi(pc, 0), pat_end, check_line);
    f.at(pat_end);
    f.ret(f.ci(1));
    f.at(check_line);
    const ir::Reg lc = f.load(line, li);
    f.br(f.eqi(lc, 0), line_end, compare);
    f.at(line_end);
    f.ret(f.ci(0));
    f.at(compare);
    const ir::Reg any = f.eqi(pc, '.');
    const ir::Reg same = f.call("chars_equal", {lc, pc});
    f.br(f.lor(any, same), ok, fail);
    f.at(ok);
    f.ret(f.call("match_here",
                 {line, f.addi(li, 1), pat, f.addi(pi, 1)}));
    f.at(fail);
    f.ret(f.ci(0));
  }

  // match_line(line, pat): unanchored search — try every start offset.
  {
    auto f = mb.func("match_line", {"line", "pat"});
    const ir::Reg line = f.param(0);
    const ir::Reg pat = f.param(1);
    const ir::Reg i = f.reg();
    const auto loop = f.block();
    const auto attempt = f.block();
    const auto hit = f.block();
    const auto miss = f.block();
    const auto out_no = f.block();
    f.assign(i, f.ci(0));
    f.jmp(loop);
    f.at(loop);
    const ir::Reg m = f.call("match_here", {line, i, pat, f.ci(0)});
    f.br(m, hit, attempt);
    f.at(hit);
    f.ret(f.ci(1));
    f.at(attempt);
    const ir::Reg c = f.load(line, i);
    f.br(f.eqi(c, 0), out_no, miss);
    f.at(miss);
    f.assign(i, f.addi(i, 1));
    f.jmp(loop);
    f.at(out_no);
    f.ret(f.ci(0));
  }

  // print_match(idx, line): output path for a matching line.
  {
    auto f = mb.func("print_match", {"idx", "line"});
    const auto with_num = f.block();
    const auto plain = f.block();
    const auto out = f.block();
    f.br(f.load_global("opt_line_numbers"), with_num, plain);
    f.at(with_num);
    f.call_ext_void("printf_lineno", {f.param(0)});
    f.jmp(out);
    f.at(plain);
    f.jmp(out);
    f.at(out);
    f.call_ext_void("puts", {f.param(1)});
    f.ret(f.ci(0));
  }

  // scan_corpus(): runs the matcher over every corpus line, honouring -v/-c.
  {
    auto f = mb.func("scan_corpus", {});
    const ir::Reg pat = f.load_global("pattern");
    const ir::Reg count = f.reg();
    f.assign(count, f.ci(0));
    std::int64_t idx = 0;
    for (const char* line_text : kCorpus) {
      const ir::Reg line = f.str_const(line_text);
      const ir::Reg m = f.call("match_line", {line, pat});
      const ir::Reg inv = f.load_global("opt_invert");
      const ir::Reg selected = f.ne(m, inv);
      const auto sel_b = f.block();
      const auto next_b = f.block();
      f.br(selected, sel_b, next_b);
      f.at(sel_b);
      f.assign(count, f.addi(count, 1));
      const auto do_print = f.block();
      f.br(f.load_global("opt_count_only"), next_b, do_print);
      f.at(do_print);
      f.call_void("print_match", {f.ci(idx), line});
      f.jmp(next_b);
      f.at(next_b);
      const ir::Reg scanned = f.load_global("lines_scanned");
      f.store_global("lines_scanned", f.addi(scanned, 1));
      ++idx;
    }
    f.store_global("match_count", count);
    const auto report = f.block();
    const auto quiet = f.block();
    f.br(f.load_global("opt_count_only"), report, quiet);
    f.at(report);
    f.call_ext_void("printf_count", {count});
    f.ret(count);
    f.at(quiet);
    f.ret(count);
  }

  // stonesoup_read_env(): pulls the injected env var into the global.
  {
    auto f = mb.func("stonesoup_read_env", {});
    const ir::Reg e = f.env(kTaintVar);
    const ir::Reg buf = f.load_global("stonesoup_tainted_buff");
    const auto have = f.block();
    const auto missing = f.block();
    f.br(e, have, missing);
    f.at(missing);
    f.store_global("taint_len", f.ci(0));
    f.ret(f.ci(0));
    f.at(have);
    const ir::Reg n = f.call("__strncpy", {buf, e, f.ci(kTaintCap + 16)});
    f.store_global("taint_len", n);
    f.ret(n);
  }

  // stonesoup_decode(): branching per-character scans over the taint — the
  // state-explosion pattern (two passes compound it).
  {
    auto f = mb.func("stonesoup_decode", {});
    const ir::Reg buf = f.load_global("stonesoup_tainted_buff");
    const ir::Reg ats = f.call("__count_char", {buf, f.ci('@')});
    f.store_global("taint_at_signs", ats);
    const ir::Reg cols = f.call("__count_char", {buf, f.ci(':')});
    f.store_global("taint_colons", cols);
    f.ret(f.add(ats, cols));
  }

  // stonesoup_handle_taint(): THE BUG — unchecked copy of the taint into a
  // 256-byte stack buffer.
  {
    auto f = mb.func("stonesoup_handle_taint", {});
    const auto have = f.block();
    const auto none = f.block();
    f.br(f.load_global("taint_len"), have, none);
    f.at(none);
    f.ret(f.ci(0));
    f.at(have);
    const ir::Reg stack_buf = f.alloca_buf(kTaintBufSize);
    const ir::Reg taint = f.load_global("stonesoup_tainted_buff");
    f.call_void("__strcpy", {stack_buf, taint});  // overflow when len >= 256
    f.call_ext_void("setenv_cleaned", {stack_buf});
    f.ret(f.ci(1));
  }

  {
    auto f = mb.func("main", {});
    const ir::Reg ac = f.argc();
    const ir::Reg rc = f.call("parse_options", {ac});
    const auto ok = f.block();
    const auto bad = f.block();
    f.br(f.eqi(rc, 0), ok, bad);
    f.at(bad);
    f.ret(rc);
    f.at(ok);
    const auto have_pat = f.block();
    const auto no_pat = f.block();
    f.br(f.load_global("have_pattern"), have_pat, no_pat);
    f.at(no_pat);
    f.ret(f.call("usage", {}));
    f.at(have_pat);
    f.call_void("init_locale", {});
    f.call_void("open_corpus", {});
    f.call_void("stonesoup_read_env", {});
    f.call_void("stonesoup_decode", {});
    f.call_void("stonesoup_handle_taint", {});
    const ir::Reg matches = f.call("scan_corpus", {});
    f.call_void("close_corpus", {});
    f.call_void("report_stats", {matches});
    const auto found = f.block();
    const auto not_found = f.block();
    f.br(matches, found, not_found);
    f.at(found);
    f.ret(f.ci(0));
    f.at(not_found);
    f.ret(f.ci(1));
  }

  return mb.build();
}

interp::RuntimeInput grep_workload(Rng& rng) {
  interp::RuntimeInput in;
  in.argv = {"grep"};
  if (rng.chance(0.25)) in.argv.push_back("-i");
  if (rng.chance(0.15)) in.argv.push_back("-v");
  if (rng.chance(0.20)) in.argv.push_back("-c");
  if (rng.chance(0.20)) in.argv.push_back("-n");
  static const char* kPatterns[] = {"needle", "the", "corpus", "xyzzy",
                                    "b.x", "line"};
  in.argv.push_back("-e");
  in.argv.push_back(kPatterns[static_cast<std::size_t>(rng.uniform(0, 5))]);
  if (rng.chance(0.55)) {
    const std::int64_t len = rng.uniform(1, kTaintCap - 2);
    std::string v;
    v.reserve(static_cast<std::size_t>(len));
    for (std::int64_t i = 0; i < len; ++i) {
      v.push_back(static_cast<char>(rng.uniform(33, 126)));
    }
    in.env[kTaintVar] = v;
  }
  return in;
}

}  // namespace

AppSpec make_grep() {
  AppSpec app;
  app.name = "grep";
  app.module = build_grep();
  app.sym_spec.argv = {symexec::SymStr::fixed("grep"),
                       symexec::SymStr::fixed("-e"),
                       symexec::SymStr::fixed("needle")};
  app.sym_spec.env = {
      {kTaintVar, symexec::SymStr::sym("taint", kTaintCap)},
  };
  app.workload = grep_workload;
  app.vuln_function = "stonesoup_handle_taint";
  app.vuln_kind = interp::FaultKind::kOobStore;
  app.crash_threshold = kTaintBufSize;  // env values of length >= 256 crash
  return app;
}

}  // namespace statsym::apps
