// CTree (NIST STONESOUP) — directory-tree renderer.
//
// The STONESOUP injection pattern (§VII-C3): an environment variable
// STONESOUP_STACK_BUFFER_64 is read by stonesoup_read_taint() into a global
// buffer (stonesoup_tainted_buff); initlinedraw() later copies it into a
// fixed 64-byte stack buffer with an unchecked strcpy — values longer than
// 63 bytes overflow it. The tree-building/printing machinery around it is a
// faithful miniature of ctree: option parsing (-n, -q, -d), a synthetic
// directory walk, sibling sorting and indented printing.
//
// stonesoup_validate() scans the tainted string with *branching* per-
// character comparisons — the paper's tight-loop state-explosion pattern
// that defeats pure symbolic execution on this target (Table IV: Failed).
#include "apps/registry.h"

#include "apps/stdlib.h"
#include "ir/builder.h"

namespace statsym::apps {

namespace {

constexpr std::int64_t kLineBufSize = 64;   // the vulnerable stack buffer
constexpr std::int64_t kTaintCap = 400;     // symbolic env capacity
constexpr const char* kTaintVar = "STONESOUP_STACK_BUFFER_64";

ir::Module build_ctree() {
  ir::ModuleBuilder mb("ctree");
  emit_stdlib(mb);

  mb.global_buf("stonesoup_tainted_buff", kTaintCap + 16);
  mb.global_int("taint_len", 0);
  mb.global_int("opt_no_color", 0);   // -n
  mb.global_int("opt_quiet", 0);      // -q
  mb.global_int("opt_max_depth", 3);  // -d <n>
  mb.global_int("nodes_built", 0);
  mb.global_int("nodes_printed", 0);
  mb.global_int("taint_specials", 0);

  // parse_args(argc): -n, -q, -d <depth>; unknown flags abort.
  {
    auto f = mb.func("parse_args", {"argc"});
    const ir::Reg argc = f.param(0);
    const ir::Reg i = f.reg();
    const auto loop = f.block();
    const auto body = f.block();
    const auto not_n = f.block();
    const auto not_q = f.block();
    const auto not_d = f.block();
    const auto cont = f.block();
    const auto done = f.block();
    f.assign(i, f.ci(1));
    f.jmp(loop);
    f.at(loop);
    f.br(f.ge(i, argc), done, body);
    f.at(body);
    const ir::Reg a = f.arg(i);
    const auto set_n = f.block();
    f.br(f.call("__streq", {a, f.str_const("-n")}), set_n, not_n);
    f.at(set_n);
    f.store_global("opt_no_color", f.ci(1));
    f.jmp(cont);
    f.at(not_n);
    const auto set_q = f.block();
    f.br(f.call("__streq", {a, f.str_const("-q")}), set_q, not_q);
    f.at(set_q);
    f.store_global("opt_quiet", f.ci(1));
    f.jmp(cont);
    f.at(not_q);
    const auto set_d = f.block();
    f.br(f.call("__streq", {a, f.str_const("-d")}), set_d, not_d);
    f.at(set_d);
    f.assign(i, f.addi(i, 1));
    const auto have_d = f.block();
    const auto bad_d = f.block();
    f.br(f.ge(i, argc), bad_d, have_d);
    f.at(bad_d);
    f.call_ext_void("fprintf_usage", {});
    f.ret(f.ci(1));
    f.at(have_d);
    f.store_global("opt_max_depth", f.call("__atoi", {f.arg(i)}));
    f.jmp(cont);
    f.at(not_d);
    f.call_ext_void("fprintf_usage", {});
    f.ret(f.ci(1));
    f.at(cont);
    f.assign(i, f.addi(i, 1));
    f.jmp(loop);
    f.at(done);
    f.ret(f.ci(0));
  }

  // stonesoup_read_taint(): copies the env var into the global buffer.
  // The paper's predicate for CTree lives at this function's leave:
  // len(stonesoup_tainted_buff) > 306.5 on the vulnerable path.
  {
    auto f = mb.func("stonesoup_read_taint", {});
    const ir::Reg e = f.env(kTaintVar);
    const ir::Reg buf = f.load_global("stonesoup_tainted_buff");
    const auto have = f.block();
    const auto missing = f.block();
    const auto out = f.block();
    f.br(e, have, missing);
    f.at(missing);
    f.call_void("__strcpy", {buf, f.str_const("ascii")});
    f.store_global("taint_len", f.ci(5));
    f.jmp(out);
    f.at(have);
    // Bounded copy: the global buffer is large enough for the whole env
    // value; the overflow happens later, in initlinedraw's 64-byte buffer.
    const ir::Reg n = f.call("__strncpy", {buf, e, f.ci(kTaintCap + 16)});
    f.store_global("taint_len", n);
    f.jmp(out);
    f.at(out);
    f.ret(f.load_global("taint_len"));
  }

  // stonesoup_validate(): counts '@' markers in the tainted string with a
  // branching comparison per character (the explosion source).
  {
    auto f = mb.func("stonesoup_validate", {});
    const ir::Reg buf = f.load_global("stonesoup_tainted_buff");
    const ir::Reg cnt = f.call("__count_char", {buf, f.ci('@')});
    f.store_global("taint_specials", cnt);
    const auto noisy = f.block();
    const auto quiet = f.block();
    f.br(f.gti(cnt, 3), noisy, quiet);
    f.at(noisy);
    f.call_ext_void("syslog", {cnt});
    f.ret(cnt);
    f.at(quiet);
    f.ret(cnt);
  }

  // alloc_node(depth): models node allocation; returns a node id.
  {
    auto f = mb.func("alloc_node", {"depth"});
    const ir::Reg d = f.param(0);
    f.call_ext_void("malloc", {});
    const ir::Reg built = f.load_global("nodes_built");
    f.store_global("nodes_built", f.bini(ir::BinOp::kAdd, built, 1));
    f.ret(f.add(built, f.bini(ir::BinOp::kMul, d, 0)));
  }

  // build_tree(depth): bounded synthetic directory walk — three children
  // per level up to opt_max_depth. Returns the subtree node count.
  {
    auto f = mb.func("build_tree", {"depth"});
    const ir::Reg d = f.param(0);
    const ir::Reg total = f.reg();
    const ir::Reg k = f.reg();
    const auto recurse = f.block();
    const auto leaf = f.block();
    const auto loop = f.block();
    const auto body = f.block();
    const auto done = f.block();
    f.call_ext_void("opendir", {d});
    f.call_void("alloc_node", {d});
    f.assign(total, f.ci(1));
    f.br(f.ge(d, f.load_global("opt_max_depth")), leaf, recurse);
    f.at(leaf);
    f.call_ext_void("closedir", {d});
    f.ret(total);
    f.at(recurse);
    f.assign(k, f.ci(0));
    f.jmp(loop);
    f.at(loop);
    f.br(f.gei(k, 3), done, body);
    f.at(body);
    const ir::Reg sub = f.call("build_tree", {f.addi(d, 1)});
    f.assign(total, f.add(total, sub));
    f.assign(k, f.addi(k, 1));
    f.jmp(loop);
    f.at(done);
    f.call_ext_void("closedir", {d});
    f.ret(total);
  }

  // sort_siblings(n): decorative bounded bubble pass over n synthetic keys.
  {
    auto f = mb.func("sort_siblings", {"n"});
    const ir::Reg n = f.param(0);
    const ir::Reg i = f.reg();
    const ir::Reg swaps = f.reg();
    const auto loop = f.block();
    const auto body = f.block();
    const auto done = f.block();
    f.assign(i, f.ci(0));
    f.assign(swaps, f.ci(0));
    f.jmp(loop);
    f.at(loop);
    f.br(f.ge(i, n), done, body);
    f.at(body);
    f.call_ext_void("strcoll", {i});
    f.assign(swaps, f.add(swaps, f.bini(ir::BinOp::kAnd, i, 1)));
    f.assign(i, f.addi(i, 1));
    f.jmp(loop);
    f.at(done);
    f.ret(swaps);
  }

  // initlinedraw(opt): THE BUG — unchecked strcpy of the tainted string
  // into a 64-byte stack buffer (STONESOUP's classic stack smash).
  {
    auto f = mb.func("initlinedraw", {"opt"});
    const ir::Reg opt = f.param(0);
    const ir::Reg linebuf = f.alloca_buf(kLineBufSize);
    const ir::Reg taint = f.load_global("stonesoup_tainted_buff");
    f.call_void("__strcpy", {linebuf, taint});  // overflow when len >= 64
    const auto color = f.block();
    const auto plain = f.block();
    const auto out = f.block();
    f.br(opt, plain, color);
    f.at(color);
    f.call_ext_void("tputs", {});
    f.jmp(out);
    f.at(plain);
    f.jmp(out);
    f.at(out);
    f.ret(f.ci(0));
  }

  // print_node(id, depth): one output line.
  {
    auto f = mb.func("print_node", {"id", "depth"});
    const ir::Reg id = f.param(0);
    const auto quiet_b = f.block();
    const auto loud = f.block();
    const auto out = f.block();
    f.br(f.load_global("opt_quiet"), quiet_b, loud);
    f.at(loud);
    f.call_ext_void("printf_node", {id, f.param(1)});
    f.jmp(out);
    f.at(quiet_b);
    f.jmp(out);
    f.at(out);
    const ir::Reg p = f.load_global("nodes_printed");
    f.store_global("nodes_printed", f.bini(ir::BinOp::kAdd, p, 1));
    f.ret(f.ci(0));
  }

  // print_tree(count): draws the line art (faults here via initlinedraw
  // when the taint is oversized) then prints every node.
  {
    auto f = mb.func("print_tree", {"count"});
    const ir::Reg count = f.param(0);
    f.call_void("initlinedraw", {f.load_global("opt_no_color")});
    const ir::Reg i = f.reg();
    const auto loop = f.block();
    const auto body = f.block();
    const auto done = f.block();
    f.assign(i, f.ci(0));
    f.jmp(loop);
    f.at(loop);
    f.br(f.ge(i, count), done, body);
    f.at(body);
    f.call_void("print_node", {i, f.ci(0)});
    f.assign(i, f.addi(i, 1));
    f.jmp(loop);
    f.at(done);
    f.ret(f.ci(0));
  }

  {
    auto f = mb.func("main", {});
    const ir::Reg ac = f.argc();
    const ir::Reg rc = f.call("parse_args", {ac});
    const auto ok = f.block();
    const auto bad = f.block();
    f.br(f.eqi(rc, 0), ok, bad);
    f.at(bad);
    f.ret(f.ci(1));
    f.at(ok);
    f.call_void("stonesoup_read_taint", {});
    f.call_void("stonesoup_validate", {});
    const ir::Reg n = f.call("build_tree", {f.ci(0)});
    f.call_void("sort_siblings", {n});
    f.call_void("print_tree", {n});
    f.ret(f.ci(0));
  }

  return mb.build();
}

interp::RuntimeInput ctree_workload(Rng& rng) {
  interp::RuntimeInput in;
  in.argv = {"ctree"};
  if (rng.chance(0.3)) in.argv.push_back("-n");
  if (rng.chance(0.3)) in.argv.push_back("-q");
  if (rng.chance(0.5)) {
    const std::int64_t len = rng.uniform(1, kTaintCap - 2);
    std::string v;
    v.reserve(static_cast<std::size_t>(len));
    for (std::int64_t i = 0; i < len; ++i) {
      v.push_back(static_cast<char>(rng.uniform(33, 126)));
    }
    in.env[kTaintVar] = v;
  }
  return in;
}

}  // namespace

AppSpec make_ctree() {
  AppSpec app;
  app.name = "ctree";
  app.module = build_ctree();
  app.sym_spec.argv = {symexec::SymStr::fixed("ctree"),
                       symexec::SymStr::fixed("-n")};
  app.sym_spec.env = {
      {kTaintVar, symexec::SymStr::sym("taint", kTaintCap)},
  };
  app.workload = ctree_workload;
  app.vuln_function = "initlinedraw";
  app.vuln_kind = interp::FaultKind::kOobStore;
  app.crash_threshold = kLineBufSize;  // env values of length >= 64 crash
  return app;
}

}  // namespace statsym::apps
