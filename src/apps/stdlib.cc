#include "apps/stdlib.h"

namespace statsym::apps {

using ir::BinOp;
using ir::Reg;

void emit_stdlib(ir::ModuleBuilder& mb) {
  // __strlen(s): index of the first NUL.
  {
    auto f = mb.func("__strlen", {"s"});
    const Reg s = f.param(0);
    const Reg i = f.reg();
    const auto loop = f.block();
    const auto body = f.block();
    const auto done = f.block();
    f.assign(i, f.ci(0));
    f.jmp(loop);
    f.at(loop);
    const Reg c = f.load(s, i);
    f.br(f.eqi(c, 0), done, body);  // exit branch first: short strings first
    f.at(body);
    f.assign(i, f.addi(i, 1));
    f.jmp(loop);
    f.at(done);
    f.ret(i);
  }

  // __strcpy(dst, src): UNCHECKED copy including the terminating NUL —
  // the canonical buffer-overflow sink. Returns the copied length.
  // Continue-first branch order, like __strncpy: a depth-first dive commits
  // to the longest symbolic source, reaching the overflow (if the
  // destination is too small) on its first descent instead of wandering
  // sub-boundary lengths.
  {
    auto f = mb.func("__strcpy", {"dst", "src"});
    const Reg dst = f.param(0);
    const Reg src = f.param(1);
    const Reg i = f.reg();
    const auto loop = f.block();
    const auto cont = f.block();
    const auto done = f.block();
    f.assign(i, f.ci(0));
    f.jmp(loop);
    f.at(loop);
    const Reg c = f.load(src, i);
    f.store(dst, i, c);  // store before the test: the NUL is copied too
    f.br(f.nei(c, 0), cont, done);
    f.at(cont);
    f.assign(i, f.addi(i, 1));
    f.jmp(loop);
    f.at(done);
    f.ret(i);
  }

  // __strncpy(dst, src, n): copies at most n-1 bytes and always
  // NUL-terminates — the safe counterpart used at taint-ingestion sites.
  //
  // Branch order matters for depth-first exploration: the continue side is
  // the then-branch, so a guided dive commits to the *longest* symbolic
  // string first. Taint-sink crashes trigger at or above a length boundary,
  // and statistical thresholds sit slightly below it; a shortest-first
  // order would send the dive into the sliver of lengths that satisfy the
  // predicates yet cannot crash, whose downstream fork subtrees then trap
  // the scheduler (see DESIGN.md, "boundary slivers").
  {
    auto f = mb.func("__strncpy", {"dst", "src", "n"});
    const Reg dst = f.param(0);
    const Reg src = f.param(1);
    const Reg n = f.param(2);
    const Reg i = f.reg();
    const auto loop = f.block();
    const auto check = f.block();
    const auto cont = f.block();
    const auto term = f.block();
    f.assign(i, f.ci(0));
    f.jmp(loop);
    f.at(loop);
    f.br(f.ge(i, f.bini(BinOp::kSub, n, 1)), term, check);
    f.at(check);
    const Reg c = f.load(src, i);
    const auto store_b = f.block();
    f.br(f.nei(c, 0), store_b, term);  // continue first: longest dive
    f.at(store_b);
    f.store(dst, i, c);
    f.jmp(cont);
    f.at(cont);
    f.assign(i, f.addi(i, 1));
    f.jmp(loop);
    f.at(term);
    f.store(dst, i, f.ci(0));
    f.ret(i);
  }

  // __streq(a, b): 1 when equal C strings.
  {
    auto f = mb.func("__streq", {"a", "b"});
    const Reg a = f.param(0);
    const Reg b = f.param(1);
    const Reg i = f.reg();
    const auto loop = f.block();
    const auto same = f.block();
    const auto endq = f.block();
    const auto cont = f.block();
    const auto eq_b = f.block();
    const auto ne_b = f.block();
    f.assign(i, f.ci(0));
    f.jmp(loop);
    f.at(loop);
    const Reg ca = f.load(a, i);
    const Reg cb = f.load(b, i);
    f.br(f.eq(ca, cb), same, ne_b);
    f.at(same);
    f.br(f.eqi(ca, 0), eq_b, endq);
    f.at(endq);
    f.jmp(cont);
    f.at(cont);
    f.assign(i, f.addi(i, 1));
    f.jmp(loop);
    f.at(eq_b);
    f.ret(f.ci(1));
    f.at(ne_b);
    f.ret(f.ci(0));
  }

  // __strcat(dst, src): unchecked append including NUL; returns new length.
  {
    auto f = mb.func("__strcat", {"dst", "src"});
    const Reg dst = f.param(0);
    const Reg src = f.param(1);
    const Reg base = f.reg();
    const Reg i = f.reg();
    const auto loop = f.block();
    const auto cont = f.block();
    const auto done = f.block();
    f.assign(base, f.call("__strlen", {dst}));
    f.assign(i, f.ci(0));
    f.jmp(loop);
    f.at(loop);
    const Reg c = f.load(src, i);
    f.store(dst, f.add(base, i), c);
    f.br(f.nei(c, 0), cont, done);  // continue first (see __strcpy)
    f.at(cont);
    f.assign(i, f.addi(i, 1));
    f.jmp(loop);
    f.at(done);
    f.ret(f.add(base, i));
  }

  // __atoi(s): decimal with optional leading '-'.
  {
    auto f = mb.func("__atoi", {"s"});
    const Reg s = f.param(0);
    const Reg i = f.reg();
    const Reg val = f.reg();
    const Reg neg = f.reg();
    const auto after_sign = f.block();
    const auto sign_b = f.block();
    const auto loop = f.block();
    const auto digit = f.block();
    const auto done = f.block();
    f.assign(i, f.ci(0));
    f.assign(val, f.ci(0));
    f.assign(neg, f.ci(0));
    const Reg c0 = f.load(s, f.ci(0));
    f.br(f.eqi(c0, '-'), sign_b, after_sign);
    f.at(sign_b);
    f.assign(neg, f.ci(1));
    f.assign(i, f.ci(1));
    f.jmp(after_sign);
    f.at(after_sign);
    f.jmp(loop);
    f.at(loop);
    const Reg c = f.load(s, i);
    const Reg is_digit = f.land(f.gei(c, '0'), f.lei(c, '9'));
    f.br(is_digit, digit, done);
    f.at(digit);
    f.assign(val, f.add(f.bini(BinOp::kMul, val, 10), f.bini(BinOp::kSub, c, '0')));
    f.assign(i, f.addi(i, 1));
    f.jmp(loop);
    f.at(done);
    const auto neg_b = f.block();
    const auto pos_b = f.block();
    f.br(neg, neg_b, pos_b);
    f.at(neg_b);
    f.ret(f.neg(val));
    f.at(pos_b);
    f.ret(val);
  }

  // __tolower_str(s): branchless per-character lowering in place; returns
  // whether anything changed. No value forks — only the termination fork.
  {
    auto f = mb.func("__tolower_str", {"s"});
    const Reg s = f.param(0);
    const Reg i = f.reg();
    const Reg changed = f.reg();
    const auto loop = f.block();
    const auto body = f.block();
    const auto done = f.block();
    f.assign(i, f.ci(0));
    f.assign(changed, f.ci(0));
    f.jmp(loop);
    f.at(loop);
    const Reg c = f.load(s, i);
    f.br(f.eqi(c, 0), done, body);
    f.at(body);
    const Reg is_up = f.land(f.gei(c, 'A'), f.lei(c, 'Z'));
    f.store(s, i, f.add(c, f.bini(BinOp::kMul, is_up, 32)));
    f.assign(changed, f.lor(changed, is_up));
    f.assign(i, f.addi(i, 1));
    f.jmp(loop);
    f.at(done);
    f.ret(changed);
  }

  // __count_char(s, ch): occurrence count with a *branching* comparison —
  // the per-character value fork that drives state explosion in the larger
  // applications (the paper's switch-in-a-tight-loop pattern).
  {
    auto f = mb.func("__count_char", {"s", "ch"});
    const Reg s = f.param(0);
    const Reg ch = f.param(1);
    const Reg i = f.reg();
    const Reg n = f.reg();
    const auto loop = f.block();
    const auto body = f.block();
    const auto hit = f.block();
    const auto cont = f.block();
    const auto done = f.block();
    f.assign(i, f.ci(0));
    f.assign(n, f.ci(0));
    f.jmp(loop);
    f.at(loop);
    const Reg c = f.load(s, i);
    f.br(f.eqi(c, 0), done, body);
    f.at(body);
    f.br(f.eq(c, ch), hit, cont);
    f.at(hit);
    f.assign(n, f.addi(n, 1));
    f.jmp(cont);
    f.at(cont);
    f.assign(i, f.addi(i, 1));
    f.jmp(loop);
    f.at(done);
    f.ret(n);
  }
}

}  // namespace statsym::apps
