#include "analysis/facts.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <sstream>

namespace statsym::analysis {
namespace {

using solver::Interval;

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

// Joins at a loop head beyond this count get widened; parameter contexts and
// return summaries beyond it jump straight to the widened join.
constexpr int kWidenDelay = 2;

// --- the abstract value lattice -------------------------------------------

struct AbsVal {
  enum class Kind : std::uint8_t { kBottom, kInt, kRef, kTop };
  Kind kind{Kind::kBottom};
  Interval iv{};                 // kInt only
  std::int64_t ref_size{-1};     // kRef only; -1 = unknown size
  bool maybe_defined{false};     // some path wrote the register
  bool must_defined{false};      // every path wrote the register

  bool operator==(const AbsVal&) const = default;

  // The sound value interval (full unless the value is a known int).
  Interval interval() const {
    return kind == Kind::kInt ? iv : Interval::full();
  }
};

AbsVal int_val(Interval iv, bool defined = true) {
  AbsVal v;
  v.kind = AbsVal::Kind::kInt;
  v.iv = iv;
  v.maybe_defined = v.must_defined = defined;
  return v;
}

// An unwritten register: the runtime zero-initializes every frame register,
// so the value is exactly 0 — only the defined bits record the read-before-
// write diagnostic.
AbsVal undef_val() { return int_val(Interval::point(0), /*defined=*/false); }

AbsVal ref_val(std::int64_t size) {
  AbsVal v;
  v.kind = AbsVal::Kind::kRef;
  v.ref_size = size;
  v.maybe_defined = v.must_defined = true;
  return v;
}

AbsVal top_val() {
  AbsVal v;
  v.kind = AbsVal::Kind::kTop;
  v.maybe_defined = v.must_defined = true;
  return v;
}

AbsVal join(const AbsVal& a, const AbsVal& b) {
  if (a.kind == AbsVal::Kind::kBottom) return b;
  if (b.kind == AbsVal::Kind::kBottom) return a;
  AbsVal out;
  out.maybe_defined = a.maybe_defined || b.maybe_defined;
  out.must_defined = a.must_defined && b.must_defined;
  if (a.kind == AbsVal::Kind::kInt && b.kind == AbsVal::Kind::kInt) {
    out.kind = AbsVal::Kind::kInt;
    out.iv = solver::hull(a.iv, b.iv);
  } else if (a.kind == AbsVal::Kind::kRef && b.kind == AbsVal::Kind::kRef) {
    out.kind = AbsVal::Kind::kRef;
    out.ref_size = a.ref_size == b.ref_size ? a.ref_size : -1;
  } else {
    out.kind = AbsVal::Kind::kTop;
  }
  return out;
}

// Classic interval widening: a bound that moved since `old` jumps to ±inf.
AbsVal widen(const AbsVal& old, const AbsVal& next) {
  if (old.kind != AbsVal::Kind::kInt || next.kind != AbsVal::Kind::kInt) {
    return join(old, next);
  }
  AbsVal out = next;
  if (next.iv.lo < old.iv.lo) out.iv.lo = kMin;
  if (next.iv.hi > old.iv.hi) out.iv.hi = kMax;
  return out;
}

using AbsState = std::vector<AbsVal>;

bool join_states(AbsState& into, const AbsState& from, bool widen_point,
                 int joins) {
  bool changed = false;
  for (std::size_t i = 0; i < into.size(); ++i) {
    AbsVal j = join(into[i], from[i]);
    if (widen_point && joins > kWidenDelay) j = widen(into[i], j);
    if (!(j == into[i])) {
      into[i] = j;
      changed = true;
    }
  }
  return changed;
}

// --- transfer functions ----------------------------------------------------

AbsVal eval_bin(ir::BinOp op, const AbsVal& a, const AbsVal& b) {
  if (a.kind != AbsVal::Kind::kInt || b.kind != AbsVal::Kind::kInt) {
    // Reference comparisons and mixed-kind arithmetic: an int of unknown
    // value.
    return int_val(Interval::full());
  }
  const Interval x = a.iv;
  const Interval y = b.iv;
  auto cmp = [](int verdict) {
    if (verdict > 0) return Interval::point(1);
    if (verdict == 0) return Interval::point(0);
    return Interval::boolean();
  };
  switch (op) {
    case ir::BinOp::kAdd: return int_val(solver::iv_add(x, y));
    case ir::BinOp::kSub: return int_val(solver::iv_sub(x, y));
    case ir::BinOp::kMul: return int_val(solver::iv_mul(x, y));
    case ir::BinOp::kDiv: return int_val(solver::iv_div(x, y));
    case ir::BinOp::kRem: return int_val(solver::iv_rem(x, y));
    case ir::BinOp::kEq: return int_val(cmp(solver::iv_cmp_eq(x, y)));
    case ir::BinOp::kNe: return int_val(cmp(solver::iv_cmp_ne(x, y)));
    case ir::BinOp::kLt: return int_val(cmp(solver::iv_cmp_lt(x, y)));
    case ir::BinOp::kLe: return int_val(cmp(solver::iv_cmp_le(x, y)));
    case ir::BinOp::kGt: return int_val(cmp(solver::iv_cmp_lt(y, x)));
    case ir::BinOp::kGe: return int_val(cmp(solver::iv_cmp_le(y, x)));
    case ir::BinOp::kLAnd: {
      if (!x.contains(0) && !y.contains(0)) return int_val(Interval::point(1));
      if (x == Interval::point(0) || y == Interval::point(0)) {
        return int_val(Interval::point(0));
      }
      return int_val(Interval::boolean());
    }
    case ir::BinOp::kLOr: {
      if (!x.contains(0) || !y.contains(0)) return int_val(Interval::point(1));
      if (x == Interval::point(0) && y == Interval::point(0)) {
        return int_val(Interval::point(0));
      }
      return int_val(Interval::boolean());
    }
    case ir::BinOp::kAnd:
    case ir::BinOp::kOr:
    case ir::BinOp::kXor:
    case ir::BinOp::kShl:
    case ir::BinOp::kShr:
      if (x.is_point() && y.is_point() &&
          !((op == ir::BinOp::kShl || op == ir::BinOp::kShr) &&
            (y.lo < 0 || y.lo > 63))) {
        return int_val(Interval::point(ir::eval_binop(op, x.lo, y.lo)));
      }
      return int_val(Interval::full());
  }
  return int_val(Interval::full());
}

// Refines both operand intervals of `op(a, b) == expect` in place. Only
// narrows (intersections / boundary trims), so it is sound to apply on the
// corresponding CFG edge.
void refine_cmp(ir::BinOp op, bool expect, AbsVal& a, AbsVal& b) {
  if (a.kind != AbsVal::Kind::kInt || b.kind != AbsVal::Kind::kInt) return;
  // Normalize to {kEq, kNe, kLt, kLe} over (a, b).
  bool swap = false;
  switch (op) {
    case ir::BinOp::kGt: op = ir::BinOp::kLt; swap = true; break;
    case ir::BinOp::kGe: op = ir::BinOp::kLe; swap = true; break;
    default: break;
  }
  if (!expect) {
    switch (op) {
      case ir::BinOp::kEq: op = ir::BinOp::kNe; break;
      case ir::BinOp::kNe: op = ir::BinOp::kEq; break;
      case ir::BinOp::kLt: op = ir::BinOp::kLe; swap = !swap; break;  // !(a<b) == b<=a
      case ir::BinOp::kLe: op = ir::BinOp::kLt; swap = !swap; break;  // !(a<=b) == b<a
      default: return;
    }
  }
  Interval& x = swap ? b.iv : a.iv;
  Interval& y = swap ? a.iv : b.iv;
  switch (op) {
    case ir::BinOp::kEq:
      x = y = solver::intersect(x, y);
      break;
    case ir::BinOp::kNe:
      // Can only trim a boundary against a point.
      if (y.is_point()) {
        if (x.lo == y.lo) x.lo = x.lo == kMax ? x.lo : x.lo + 1;
        else if (x.hi == y.lo) x.hi = x.hi == kMin ? x.hi : x.hi - 1;
      }
      if (x.is_point()) {
        if (y.lo == x.lo) y.lo = y.lo == kMax ? y.lo : y.lo + 1;
        else if (y.hi == x.lo) y.hi = y.hi == kMin ? y.hi : y.hi - 1;
      }
      break;
    case ir::BinOp::kLt:
      if (y.hi == kMin) {
        x = Interval::empty();  // nothing is below INT64_MIN
        break;
      }
      x.hi = std::min(x.hi, y.hi == kMax ? kMax - 1 : y.hi - 1);
      if (x.lo == kMax) {
        y = Interval::empty();  // nothing is above INT64_MAX
        break;
      }
      y.lo = std::max(y.lo, x.lo == kMin ? kMin + 1 : x.lo + 1);
      break;
    case ir::BinOp::kLe:
      x.hi = std::min(x.hi, y.hi);
      y.lo = std::max(y.lo, x.lo);
      break;
    default:
      break;
  }
}

// One observed call site: callee plus the joined argument values.
struct CallObs {
  ir::FuncId callee{ir::kNoFunc};
  std::vector<AbsVal> args;
};

// Result of one intra-procedural fixpoint over a function.
struct FnAnalysis {
  std::vector<AbsState> in;  // per block; empty = never abstractly reached
  std::vector<BranchFact> branch;
  AbsVal ret;  // bottom until a reachable return is seen
  std::vector<CallObs> calls;
  // Scratch: (successor, out-state) pairs of the block being executed.
  std::vector<std::pair<ir::BlockId, AbsState>> out;
};

}  // namespace

// --- the interprocedural driver -------------------------------------------

class Analyzer {
 public:
  explicit Analyzer(const ir::Module& m) : m_(m) {
    const std::size_t n = m.functions().size();
    cfgs_.reserve(n);
    for (const auto& fn : m.functions()) cfgs_.push_back(build_cfg(fn));
    param_ctx_.resize(n);
    param_joins_.assign(n, 0);
    ret_summary_.resize(n);
    ret_joins_.assign(n, 0);
    callers_.resize(n);
    reached_.assign(n, false);
    build_global_summary();
  }

  ProgramFacts run() {
    const ir::FuncId entry = m_.entry();
    reached_[static_cast<std::size_t>(entry)] = true;
    param_ctx_[static_cast<std::size_t>(entry)] = {};
    std::deque<ir::FuncId> wl{entry};
    std::vector<bool> queued(m_.functions().size(), false);
    queued[static_cast<std::size_t>(entry)] = true;
    // Generous cap: every pop is driven by a monotone context/summary
    // change, which widening bounds; the cap only guards against bugs.
    std::size_t budget = 64 * m_.functions().size() + 64;
    while (!wl.empty() && budget-- > 0) {
      const ir::FuncId f = wl.front();
      wl.pop_front();
      queued[static_cast<std::size_t>(f)] = false;
      FnAnalysis res = analyze_function(f, /*record=*/nullptr);
      for (const CallObs& c : res.calls) {
        const auto ci = static_cast<std::size_t>(c.callee);
        if (std::find(callers_[ci].begin(), callers_[ci].end(), f) ==
            callers_[ci].end()) {
          callers_[ci].push_back(f);
        }
        bool changed = !reached_[ci];
        if (!reached_[ci]) {
          reached_[ci] = true;
          param_ctx_[ci] = c.args;
        } else if (join_ctx(param_ctx_[ci], c.args, ++param_joins_[ci])) {
          changed = true;
        }
        if (changed && !queued[ci]) {
          wl.push_back(c.callee);
          queued[ci] = true;
        }
      }
      const auto fi = static_cast<std::size_t>(f);
      AbsVal joined = join(ret_summary_[fi], res.ret);
      if (++ret_joins_[fi] > kWidenDelay) {
        joined = widen(ret_summary_[fi], joined);
      }
      if (!(joined == ret_summary_[fi])) {
        ret_summary_[fi] = joined;
        for (ir::FuncId caller : callers_[fi]) {
          if (!queued[static_cast<std::size_t>(caller)]) {
            wl.push_back(caller);
            queued[static_cast<std::size_t>(caller)] = true;
          }
        }
      }
    }

    // Final recording pass, function-id order: facts + findings come from
    // the fixpoint states only.
    ProgramFacts facts;
    facts.funcs_.resize(m_.functions().size());
    for (std::size_t f = 0; f < m_.functions().size(); ++f) {
      const auto& fn = m_.function(static_cast<ir::FuncId>(f));
      auto& ff = facts.funcs_[f];
      ff.reachable = reached_[f];
      ff.block_reachable.assign(fn.blocks.size(), false);
      ff.branch.assign(fn.blocks.size(), BranchFact::kUndecided);
      ff.block_in.resize(fn.blocks.size());
      if (!reached_[f]) continue;
      FnAnalysis res =
          analyze_function(static_cast<ir::FuncId>(f), &facts.findings_);
      for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
        if (res.in[b].empty()) continue;
        ff.block_reachable[b] = true;
        ff.branch[b] = res.branch[b];
        ff.block_in[b].reserve(res.in[b].size());
        for (const AbsVal& v : res.in[b]) ff.block_in[b].push_back(v.interval());
      }
    }
    std::sort(facts.findings_.begin(), facts.findings_.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.func, a.site.block, a.site.index, a.kind) <
                       std::tie(b.func, b.site.block, b.site.index, b.kind);
              });
    return facts;
  }

 private:
  void build_global_summary() {
    // Flow-insensitive: a global some instruction stores to is unknown; an
    // int global never stored keeps its initializer, a buf global its size.
    std::vector<bool> stored(m_.globals().size(), false);
    for (const auto& fn : m_.functions()) {
      for (const auto& blk : fn.blocks) {
        for (const auto& in : blk.instrs) {
          if (in.op == ir::Opcode::kStoreG) {
            const std::int32_t g = m_.find_global(in.str);
            if (g >= 0) stored[static_cast<std::size_t>(g)] = true;
          }
        }
      }
    }
    global_val_.reserve(m_.globals().size());
    for (std::size_t g = 0; g < m_.globals().size(); ++g) {
      const ir::Global& gl = m_.global(static_cast<std::int32_t>(g));
      if (stored[g]) {
        global_val_.push_back(top_val());
      } else if (gl.kind == ir::Global::Kind::kBuf) {
        global_val_.push_back(ref_val(gl.buf_size));
      } else {
        global_val_.push_back(int_val(Interval::point(gl.init_int)));
      }
    }
  }

  bool join_ctx(std::vector<AbsVal>& into, const std::vector<AbsVal>& from,
                int joins) {
    bool changed = false;
    for (std::size_t i = 0; i < into.size() && i < from.size(); ++i) {
      AbsVal j = join(into[i], from[i]);
      if (joins > kWidenDelay) j = widen(into[i], j);
      if (!(j == into[i])) {
        into[i] = j;
        changed = true;
      }
    }
    return changed;
  }

  // Abstractly executes one block from `st`. Appends (successor, out-state)
  // pairs for live edges, joins returned values into res.ret, records calls,
  // and (in record mode) emits findings and the branch fact.
  void exec_block(ir::FuncId fid, ir::BlockId b, AbsState st, FnAnalysis& res,
                  std::vector<Finding>* record) {
    const ir::Function& fn = m_.function(fid);
    const auto& instrs = fn.blocks[static_cast<std::size_t>(b)].instrs;
    auto note = [&](FindingKind kind, std::size_t idx, std::string detail) {
      if (record != nullptr) {
        record->push_back(Finding{kind, fid,
                                  InstrRef{b, static_cast<std::int32_t>(idx)},
                                  std::move(detail)});
      }
    };
    std::vector<ir::Reg> used;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      const ir::Instr& in = instrs[i];
      // Read-before-any-write diagnostic (params are implicitly defined).
      if (record != nullptr) {
        used.clear();
        uses_of(in, used);
        for (ir::Reg r : used) {
          const auto& v = st[static_cast<std::size_t>(r)];
          if (!v.maybe_defined && r >= fn.num_params) {
            note(FindingKind::kUseBeforeDef, i,
                 "register r" + std::to_string(r) +
                     " read before any definition (value is the zero init)");
          }
        }
      }
      auto reg = [&](ir::Reg r) -> AbsVal& {
        return st[static_cast<std::size_t>(r)];
      };
      auto set = [&](AbsVal v) {
        if (in.dst != ir::kNoReg) st[static_cast<std::size_t>(in.dst)] = v;
      };
      switch (in.op) {
        case ir::Opcode::kConst:
          set(int_val(Interval::point(in.imm)));
          break;
        case ir::Opcode::kMove: {
          AbsVal v = reg(in.a);
          v.maybe_defined = v.must_defined = true;
          set(v);
          break;
        }
        case ir::Opcode::kBin: {
          const AbsVal& a = reg(in.a);
          const AbsVal& bb = reg(in.b);
          if ((in.bin == ir::BinOp::kDiv || in.bin == ir::BinOp::kRem) &&
              bb.kind == AbsVal::Kind::kInt &&
              bb.iv == Interval::point(0)) {
            note(FindingKind::kDivByZero, i, "divisor is always 0");
            return;  // the path faults here on every execution
          }
          set(eval_bin(in.bin, a, bb));
          break;
        }
        case ir::Opcode::kNot: {
          const AbsVal& a = reg(in.a);
          const Interval x = a.interval();
          if (a.kind == AbsVal::Kind::kRef) {
            set(int_val(Interval::boolean()));  // null refs are falsy
          } else if (!x.contains(0)) {
            set(int_val(Interval::point(0)));
          } else if (x == Interval::point(0)) {
            set(int_val(Interval::point(1)));
          } else {
            set(int_val(Interval::boolean()));
          }
          break;
        }
        case ir::Opcode::kNeg: {
          const AbsVal& a = reg(in.a);
          set(int_val(a.kind == AbsVal::Kind::kInt ? solver::iv_neg(a.iv)
                                                   : Interval::full()));
          break;
        }
        case ir::Opcode::kAlloca:
          set(ref_val(in.imm));
          break;
        case ir::Opcode::kStrConst:
          set(ref_val(static_cast<std::int64_t>(in.str.size()) + 1));
          break;
        case ir::Opcode::kLoad:
        case ir::Opcode::kStore: {
          const bool is_store = in.op == ir::Opcode::kStore;
          const AbsVal& ref = reg(in.a);
          AbsVal& idx = reg(in.b);
          if (ref.kind == AbsVal::Kind::kRef && ref.ref_size >= 0 &&
              idx.kind == AbsVal::Kind::kInt) {
            const Interval inb =
                solver::intersect(idx.iv, Interval{0, ref.ref_size - 1});
            if (inb.is_empty()) {
              note(is_store ? FindingKind::kOobStore : FindingKind::kOobLoad,
                   i,
                   "index " + idx.iv.to_string() +
                       " outside buffer of size " +
                       std::to_string(ref.ref_size));
              return;  // faults on every execution reaching it
            }
            // Code after a successful access only runs with an in-bounds
            // index.
            idx.iv = inb;
          }
          if (!is_store) set(int_val(Interval{0, 255}));
          break;
        }
        case ir::Opcode::kBufSize: {
          const AbsVal& ref = reg(in.a);
          set(int_val(ref.kind == AbsVal::Kind::kRef && ref.ref_size >= 0
                          ? Interval::point(ref.ref_size)
                          : Interval{0, kMax}));
          break;
        }
        case ir::Opcode::kLoadG:
          set(global_val_[static_cast<std::size_t>(m_.find_global(in.str))]);
          break;
        case ir::Opcode::kStoreG:
          break;  // covered by the flow-insensitive global summary
        case ir::Opcode::kCall: {
          const auto callee = static_cast<ir::FuncId>(in.imm);
          CallObs obs;
          obs.callee = callee;
          obs.args.reserve(in.args.size());
          for (ir::Reg r : in.args) obs.args.push_back(reg(r));
          for (AbsVal& a : obs.args) a.maybe_defined = a.must_defined = true;
          res.calls.push_back(std::move(obs));
          const AbsVal& sum = ret_summary_[static_cast<std::size_t>(callee)];
          if (sum.kind == AbsVal::Kind::kBottom) {
            // No return observed from the callee yet: the continuation is
            // unreachable this round; the driver revisits us when the
            // summary rises.
            return;
          }
          set(sum);
          break;
        }
        case ir::Opcode::kCallExt:
          // External effects are modelled by the harness and can return
          // anything.
          set(top_val());
          break;
        case ir::Opcode::kArgc:
          set(int_val(Interval{0, kMax}));
          break;
        case ir::Opcode::kArg:
        case ir::Opcode::kEnv:
          set(ref_val(-1));
          break;
        case ir::Opcode::kMakeSymInt:
          // Both interpreters clamp the runtime value into [imm, imm2].
          set(int_val(Interval{in.imm, in.imm2}));
          break;
        case ir::Opcode::kMakeSymBuf:
        case ir::Opcode::kPrint:
          break;
        case ir::Opcode::kAssert: {
          const AbsVal& a = reg(in.a);
          if (a.kind == AbsVal::Kind::kInt && a.iv == Interval::point(0)) {
            note(FindingKind::kAssertFail, i, "assert condition is always 0");
            return;  // faults on every execution reaching it
          }
          break;
        }
        case ir::Opcode::kJmp:
          res.out.emplace_back(in.t0, std::move(st));
          return;
        case ir::Opcode::kBr: {
          const AbsVal& cond = reg(in.a);
          const Interval cv = cond.interval();
          BranchFact fact = BranchFact::kUndecided;
          if (cond.kind == AbsVal::Kind::kInt) {
            if (!cv.contains(0)) fact = BranchFact::kAlwaysTrue;
            else if (cv == Interval::point(0)) fact = BranchFact::kAlwaysFalse;
          }
          if (record != nullptr) res.branch[static_cast<std::size_t>(b)] = fact;
          // Edge refinement: locate the in-block comparison that produced
          // the condition (operands not redefined since) and apply it.
          ir::Reg cmp_a = ir::kNoReg;
          ir::Reg cmp_b = ir::kNoReg;
          ir::BinOp cmp_op{};
          for (std::size_t j = i; j-- > 0;) {
            const ir::Instr& d = instrs[j];
            const ir::Reg dr = def_of(d);
            if (dr == in.a) {
              if (d.op == ir::Opcode::kBin && ir::is_comparison(d.bin)) {
                cmp_a = d.a;
                cmp_b = d.b;
                cmp_op = d.bin;
                // The operands must still hold their compared values.
                for (std::size_t k = j + 1; k < i; ++k) {
                  const ir::Reg mid = def_of(instrs[k]);
                  if (mid == cmp_a || mid == cmp_b) cmp_a = ir::kNoReg;
                }
              }
              break;
            }
          }
          auto edge_state = [&](bool taken) -> AbsState {
            AbsState out = st;
            AbsVal& c = out[static_cast<std::size_t>(in.a)];
            if (c.kind == AbsVal::Kind::kInt) {
              if (taken) {
                if (c.iv.lo == 0) c.iv.lo = 1;
                if (c.iv.hi == 0 && c.iv.lo != 0) c.iv.hi = -1;
              } else {
                c.iv = solver::intersect(c.iv, Interval::point(0));
              }
            }
            if (cmp_a != ir::kNoReg && cmp_a != in.a && cmp_b != in.a) {
              refine_cmp(cmp_op, taken, out[static_cast<std::size_t>(cmp_a)],
                         out[static_cast<std::size_t>(cmp_b)]);
            }
            return out;
          };
          auto live = [](const AbsState& s) {
            for (const AbsVal& v : s) {
              if (v.kind == AbsVal::Kind::kInt && v.iv.is_empty()) return false;
            }
            return true;
          };
          if (fact != BranchFact::kAlwaysFalse) {
            AbsState t = edge_state(true);
            if (live(t)) res.out.emplace_back(in.t0, std::move(t));
          }
          if (fact != BranchFact::kAlwaysTrue) {
            AbsState e = edge_state(false);
            if (live(e)) res.out.emplace_back(in.t1, std::move(e));
          }
          return;
        }
        case ir::Opcode::kRet: {
          AbsVal r = in.a != ir::kNoReg ? reg(in.a) : int_val(Interval::point(0));
          r.maybe_defined = r.must_defined = true;
          res.ret = join(res.ret, r);
          return;
        }
      }
    }
  }

  FnAnalysis analyze_function(ir::FuncId fid, std::vector<Finding>* record) {
    const ir::Function& fn = m_.function(fid);
    const Cfg& cfg = cfgs_[static_cast<std::size_t>(fid)];
    FnAnalysis res;
    res.in.resize(fn.blocks.size());
    res.branch.assign(fn.blocks.size(), BranchFact::kUndecided);

    AbsState entry(static_cast<std::size_t>(fn.num_regs), undef_val());
    const auto& ctx = param_ctx_[static_cast<std::size_t>(fid)];
    for (std::size_t p = 0;
         p < static_cast<std::size_t>(fn.num_params) && p < ctx.size(); ++p) {
      entry[p] = ctx[p];
      entry[p].maybe_defined = entry[p].must_defined = true;
    }
    res.in[0] = entry;

    std::deque<ir::BlockId> wl{0};
    std::vector<bool> queued(fn.blocks.size(), false);
    std::vector<int> joins(fn.blocks.size(), 0);
    queued[0] = true;
    // Widening bounds the number of in-state changes; the cap is a backstop.
    std::size_t budget = 256 * fn.blocks.size() + 256;
    while (!wl.empty() && budget-- > 0) {
      const ir::BlockId b = wl.front();
      wl.pop_front();
      queued[static_cast<std::size_t>(b)] = false;
      res.out.clear();
      exec_block(fid, b, res.in[static_cast<std::size_t>(b)], res, nullptr);
      for (auto& [succ, out_st] : res.out) {
        const auto si = static_cast<std::size_t>(succ);
        bool changed;
        if (res.in[si].empty()) {
          res.in[si] = std::move(out_st);
          changed = true;
        } else {
          const bool wp = cfg.is_loop_edge(b, succ);
          if (wp) ++joins[si];
          changed = join_states(res.in[si], out_st, wp, joins[si]);
        }
        if (changed && !queued[si]) {
          wl.push_back(succ);
          queued[si] = true;
        }
      }
    }

    if (record != nullptr) {
      // Recording pass over the fixpoint: findings, branch facts and calls
      // in deterministic RPO order.
      res.calls.clear();
      for (ir::BlockId b : cfg.rpo) {
        if (res.in[static_cast<std::size_t>(b)].empty()) continue;
        res.out.clear();
        exec_block(fid, b, res.in[static_cast<std::size_t>(b)], res, record);
      }
    }
    return res;
  }

  const ir::Module& m_;
  std::vector<Cfg> cfgs_;
  std::vector<AbsVal> global_val_;
  std::vector<std::vector<AbsVal>> param_ctx_;
  std::vector<int> param_joins_;
  std::vector<AbsVal> ret_summary_;
  std::vector<int> ret_joins_;
  std::vector<std::vector<ir::FuncId>> callers_;
  std::vector<bool> reached_;
};

// --- ProgramFacts ----------------------------------------------------------

const char* branch_fact_name(BranchFact f) {
  switch (f) {
    case BranchFact::kUndecided: return "undecided";
    case BranchFact::kAlwaysTrue: return "always-true";
    case BranchFact::kAlwaysFalse: return "always-false";
  }
  return "?";
}

const char* finding_kind_name(FindingKind k) {
  switch (k) {
    case FindingKind::kOobLoad: return "oob-load";
    case FindingKind::kOobStore: return "oob-store";
    case FindingKind::kDivByZero: return "div-by-zero";
    case FindingKind::kAssertFail: return "assert-fail";
    case FindingKind::kUseBeforeDef: return "use-before-def";
  }
  return "?";
}

std::string format_finding(const ir::Module& m, const Finding& f) {
  std::ostringstream os;
  os << finding_kind_name(f.kind) << " " << m.function(f.func).name
     << " block " << f.site.block << " instr " << f.site.index << ": "
     << f.detail;
  return os.str();
}

bool ProgramFacts::function_reachable(ir::FuncId f) const {
  return funcs_[static_cast<std::size_t>(f)].reachable;
}

bool ProgramFacts::block_reachable(ir::FuncId f, ir::BlockId b) const {
  const auto& ff = funcs_[static_cast<std::size_t>(f)];
  return ff.block_reachable[static_cast<std::size_t>(b)];
}

BranchFact ProgramFacts::branch(ir::FuncId f, ir::BlockId b) const {
  const auto& ff = funcs_[static_cast<std::size_t>(f)];
  return ff.branch[static_cast<std::size_t>(b)];
}

solver::Interval ProgramFacts::reg_interval(ir::FuncId f, ir::BlockId b,
                                            ir::Reg r) const {
  const auto& in = funcs_[static_cast<std::size_t>(f)]
                       .block_in[static_cast<std::size_t>(b)];
  if (static_cast<std::size_t>(r) >= in.size()) return Interval::full();
  return in[static_cast<std::size_t>(r)];
}

std::size_t ProgramFacts::num_unreachable_blocks() const {
  std::size_t n = 0;
  for (const auto& ff : funcs_) {
    for (bool r : ff.block_reachable) n += r ? 0 : 1;
  }
  return n;
}

std::size_t ProgramFacts::num_decided_branches() const {
  std::size_t n = 0;
  for (const auto& ff : funcs_) {
    for (BranchFact f : ff.branch) n += f == BranchFact::kUndecided ? 0 : 1;
  }
  return n;
}

namespace {

std::string bound_str(std::int64_t v) {
  if (v == kMin) return "min";
  if (v == kMax) return "max";
  return std::to_string(v);
}

}  // namespace

std::string ProgramFacts::to_string(const ir::Module& m) const {
  std::ostringstream os;
  for (std::size_t f = 0; f < funcs_.size(); ++f) {
    const auto& ff = funcs_[f];
    os << "function " << m.function(static_cast<ir::FuncId>(f)).name << ": "
       << (ff.reachable ? "reachable" : "UNREACHABLE") << "\n";
    if (!ff.reachable) continue;
    for (std::size_t b = 0; b < ff.block_reachable.size(); ++b) {
      os << "  block " << b << ": ";
      if (!ff.block_reachable[b]) {
        os << "UNREACHABLE\n";
        continue;
      }
      os << "reachable";
      if (ff.branch[b] != BranchFact::kUndecided) {
        os << " branch=" << branch_fact_name(ff.branch[b]);
      }
      // Entry intervals that carry information (non-full).
      std::string regs;
      for (std::size_t r = 0; r < ff.block_in[b].size(); ++r) {
        const Interval& iv = ff.block_in[b][r];
        if (iv == Interval::full()) continue;
        regs += " r" + std::to_string(r) + "=[" + bound_str(iv.lo) + "," +
                bound_str(iv.hi) + "]";
      }
      if (!regs.empty()) os << regs;
      os << "\n";
    }
  }
  os << "findings: " << findings_.size() << "\n";
  for (const Finding& f : findings_) {
    os << "  " << format_finding(m, f) << "\n";
  }
  return os.str();
}

ProgramFacts analyze(const ir::Module& m) { return Analyzer(m).run(); }

}  // namespace statsym::analysis
