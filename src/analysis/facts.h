// Whole-program static analysis over the mini-IR (ISSUE 8 tentpole).
//
// A flow-sensitive abstract interpretation — value intervals plus a
// definitely/maybe-initialized bit per register — runs over every function
// reachable from main, with widening at loop heads and a context-insensitive
// treatment of calls (per-callee joined parameter contexts, joined return
// summaries, iterated to a fixpoint). The result is a ProgramFacts table:
//
//   * per-block reachability (CFG-reachable AND abstractly visited),
//   * per-branch decisions (always-true / always-false when the condition's
//     interval excludes or pins zero),
//   * per-(block, register) sound entry intervals,
//   * definite-bug findings: accesses, divisions, asserts and register reads
//     that fault or read uninitialized state on EVERY execution reaching
//     them.
//
// Soundness contract (enforced by the fuzz campaign's static-facts oracle):
// for any concrete input, the interpreter never enters a block reported
// unreachable, never takes the refuted side of a decided branch, and every
// non-kUseBeforeDef finding faults when its site is reached. Key modelling
// choices that make this hold: registers are zero-initialized at frame
// creation (so an unwritten register is exactly [0,0]), kMakeSymInt values
// are clamped into [imm, imm2] by both interpreters, buffer loads yield
// [0,255], and external calls (which a harness may model arbitrarily) are
// top.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "ir/module.h"
#include "solver/interval.h"

namespace statsym::analysis {

enum class BranchFact : std::uint8_t { kUndecided, kAlwaysTrue, kAlwaysFalse };

const char* branch_fact_name(BranchFact f);

enum class FindingKind : std::uint8_t {
  kOobLoad,       // load index provably outside the buffer
  kOobStore,      // store index provably outside the buffer
  kDivByZero,     // divisor provably zero (kDiv or kRem)
  kAssertFail,    // assert condition provably zero
  kUseBeforeDef,  // register read no path has written (reads the zero init;
                  // a diagnostic, not a runtime fault)
};

const char* finding_kind_name(FindingKind k);

// A definite-bug site. Everything except kUseBeforeDef faults on every
// execution that reaches the site.
struct Finding {
  FindingKind kind{FindingKind::kAssertFail};
  ir::FuncId func{ir::kNoFunc};
  InstrRef site;
  std::string detail;
};

// "oob-store fn block 2 instr 1: index [8,8] outside buffer of size 8"
std::string format_finding(const ir::Module& m, const Finding& f);

class ProgramFacts {
 public:
  bool function_reachable(ir::FuncId f) const;
  bool block_reachable(ir::FuncId f, ir::BlockId b) const;
  // Decision for the block's terminator; kUndecided unless it is a kBr in a
  // reachable block whose condition the analysis pinned.
  BranchFact branch(ir::FuncId f, ir::BlockId b) const;
  // Sound interval for register r at the entry of block b (full range when
  // nothing is known or the register holds a reference).
  solver::Interval reg_interval(ir::FuncId f, ir::BlockId b, ir::Reg r) const;

  const std::vector<Finding>& findings() const { return findings_; }

  std::size_t num_unreachable_blocks() const;
  std::size_t num_decided_branches() const;

  // Deterministic dump (golden tests, `statsym lint --dump-facts`).
  std::string to_string(const ir::Module& m) const;

 private:
  friend class Analyzer;
  struct FuncFacts {
    bool reachable{false};
    std::vector<bool> block_reachable;
    std::vector<BranchFact> branch;
    std::vector<std::vector<solver::Interval>> block_in;  // [block][reg]
  };
  std::vector<FuncFacts> funcs_;
  std::vector<Finding> findings_;
};

// Runs the whole-program analysis. Pure: depends only on the module.
ProgramFacts analyze(const ir::Module& m);

}  // namespace statsym::analysis
