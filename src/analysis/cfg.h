// Control-flow graphs, dominators and def-use chains over the mini-IR.
//
// The static-analysis layer (ISSUE 8) sits directly above ir/: it never
// executes anything, it only looks at block structure and instruction
// operands. Everything here is per-function; whole-program facts (abstract
// interpretation, reachability across calls) build on these in facts.h.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/function.h"

namespace statsym::analysis {

// The register an instruction writes, or ir::kNoReg. kCall/kCallExt return
// their dst only when one was requested (dst != kNoReg).
ir::Reg def_of(const ir::Instr& in);

// Appends every register the instruction reads to `out` (duplicates kept).
void uses_of(const ir::Instr& in, std::vector<ir::Reg>& out);

// Per-function control-flow graph. Block 0 is the entry; successors come
// from the block terminator (kJmp one, kBr two, kRet none). Unreachable
// blocks keep their edge lists but get rpo_index -1 and idom ir::kNoBlock.
struct Cfg {
  std::vector<std::vector<ir::BlockId>> succs;
  std::vector<std::vector<ir::BlockId>> preds;
  std::vector<bool> reachable;           // from block 0
  std::vector<ir::BlockId> rpo;          // reachable blocks, reverse postorder
  std::vector<std::int32_t> rpo_index;   // block -> position in rpo, -1 dead
  std::vector<ir::BlockId> idom;         // immediate dominator; entry -> 0

  std::size_t num_blocks() const { return succs.size(); }
  // a dominates b (both must be reachable; entry dominates everything).
  bool dominates(ir::BlockId a, ir::BlockId b) const;
  // Retreating edge in RPO order — the widening points of the abstract
  // interpreter. For reducible graphs (all the builder emits) this is
  // exactly the back-edge/loop-head test.
  bool is_loop_edge(ir::BlockId from, ir::BlockId to) const {
    return rpo_index[static_cast<std::size_t>(to)] <=
           rpo_index[static_cast<std::size_t>(from)];
  }
};

Cfg build_cfg(const ir::Function& fn);

// A (block, instruction-index) site inside one function.
struct InstrRef {
  ir::BlockId block{ir::kNoBlock};
  std::int32_t index{0};
  bool operator==(const InstrRef&) const = default;
};

// Def-use chains: for each register, every site that writes it and every
// site that reads it, in (block, index) program order. Parameters occupy
// registers [0, num_params) and are implicitly defined at function entry.
struct DefUse {
  std::vector<std::vector<InstrRef>> defs;  // indexed by register
  std::vector<std::vector<InstrRef>> uses;
};

DefUse build_def_use(const ir::Function& fn);

}  // namespace statsym::analysis
