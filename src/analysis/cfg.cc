#include "analysis/cfg.h"

#include <algorithm>

namespace statsym::analysis {

ir::Reg def_of(const ir::Instr& in) {
  switch (in.op) {
    case ir::Opcode::kConst:
    case ir::Opcode::kMove:
    case ir::Opcode::kBin:
    case ir::Opcode::kNot:
    case ir::Opcode::kNeg:
    case ir::Opcode::kAlloca:
    case ir::Opcode::kStrConst:
    case ir::Opcode::kLoad:
    case ir::Opcode::kBufSize:
    case ir::Opcode::kLoadG:
    case ir::Opcode::kArgc:
    case ir::Opcode::kArg:
    case ir::Opcode::kEnv:
    case ir::Opcode::kMakeSymInt:
      return in.dst;
    case ir::Opcode::kCall:
    case ir::Opcode::kCallExt:
      return in.dst;  // kNoReg for value-discarding calls
    default:
      return ir::kNoReg;
  }
}

void uses_of(const ir::Instr& in, std::vector<ir::Reg>& out) {
  switch (in.op) {
    case ir::Opcode::kMove:
    case ir::Opcode::kNot:
    case ir::Opcode::kNeg:
    case ir::Opcode::kBufSize:
    case ir::Opcode::kArg:
    case ir::Opcode::kStoreG:
    case ir::Opcode::kAssert:
    case ir::Opcode::kMakeSymBuf:
    case ir::Opcode::kBr:
      out.push_back(in.a);
      break;
    case ir::Opcode::kBin:
    case ir::Opcode::kLoad:
      out.push_back(in.a);
      out.push_back(in.b);
      break;
    case ir::Opcode::kStore:
      out.push_back(in.a);
      out.push_back(in.b);
      out.push_back(in.c);
      break;
    case ir::Opcode::kRet:
      if (in.a != ir::kNoReg) out.push_back(in.a);
      break;
    case ir::Opcode::kCall:
    case ir::Opcode::kCallExt:
      out.insert(out.end(), in.args.begin(), in.args.end());
      break;
    default:
      break;
  }
}

bool Cfg::dominates(ir::BlockId a, ir::BlockId b) const {
  if (!reachable[static_cast<std::size_t>(a)] ||
      !reachable[static_cast<std::size_t>(b)]) {
    return false;
  }
  while (b != a && b != 0) b = idom[static_cast<std::size_t>(b)];
  return b == a;
}

Cfg build_cfg(const ir::Function& fn) {
  Cfg g;
  const std::size_t n = fn.blocks.size();
  g.succs.resize(n);
  g.preds.resize(n);
  g.reachable.assign(n, false);
  g.rpo_index.assign(n, -1);
  g.idom.assign(n, ir::kNoBlock);

  for (std::size_t b = 0; b < n; ++b) {
    const ir::Instr& t = fn.blocks[b].instrs.back();
    if (t.op == ir::Opcode::kJmp) {
      g.succs[b] = {t.t0};
    } else if (t.op == ir::Opcode::kBr) {
      g.succs[b] = {t.t0, t.t1};
    }
    for (ir::BlockId s : g.succs[b]) {
      g.preds[static_cast<std::size_t>(s)].push_back(
          static_cast<ir::BlockId>(b));
    }
  }

  // Iterative DFS from the entry for reachability and postorder.
  std::vector<ir::BlockId> postorder;
  std::vector<std::size_t> next_child(n, 0);
  std::vector<ir::BlockId> stack{0};
  g.reachable[0] = true;
  while (!stack.empty()) {
    const ir::BlockId b = stack.back();
    auto& nc = next_child[static_cast<std::size_t>(b)];
    if (nc < g.succs[static_cast<std::size_t>(b)].size()) {
      const ir::BlockId s = g.succs[static_cast<std::size_t>(b)][nc++];
      if (!g.reachable[static_cast<std::size_t>(s)]) {
        g.reachable[static_cast<std::size_t>(s)] = true;
        stack.push_back(s);
      }
    } else {
      postorder.push_back(b);
      stack.pop_back();
    }
  }
  g.rpo.assign(postorder.rbegin(), postorder.rend());
  for (std::size_t i = 0; i < g.rpo.size(); ++i) {
    g.rpo_index[static_cast<std::size_t>(g.rpo[i])] =
        static_cast<std::int32_t>(i);
  }

  // Immediate dominators, Cooper–Harvey–Kennedy iteration in RPO order.
  g.idom[0] = 0;
  auto intersect = [&](ir::BlockId a, ir::BlockId b) {
    while (a != b) {
      while (g.rpo_index[static_cast<std::size_t>(a)] >
             g.rpo_index[static_cast<std::size_t>(b)]) {
        a = g.idom[static_cast<std::size_t>(a)];
      }
      while (g.rpo_index[static_cast<std::size_t>(b)] >
             g.rpo_index[static_cast<std::size_t>(a)]) {
        b = g.idom[static_cast<std::size_t>(b)];
      }
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (ir::BlockId b : g.rpo) {
      if (b == 0) continue;
      ir::BlockId new_idom = ir::kNoBlock;
      for (ir::BlockId p : g.preds[static_cast<std::size_t>(b)]) {
        if (g.idom[static_cast<std::size_t>(p)] == ir::kNoBlock) continue;
        new_idom = new_idom == ir::kNoBlock ? p : intersect(p, new_idom);
      }
      if (new_idom != ir::kNoBlock &&
          g.idom[static_cast<std::size_t>(b)] != new_idom) {
        g.idom[static_cast<std::size_t>(b)] = new_idom;
        changed = true;
      }
    }
  }
  return g;
}

DefUse build_def_use(const ir::Function& fn) {
  DefUse du;
  du.defs.resize(static_cast<std::size_t>(fn.num_regs));
  du.uses.resize(static_cast<std::size_t>(fn.num_regs));
  std::vector<ir::Reg> used;
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    for (std::size_t i = 0; i < fn.blocks[b].instrs.size(); ++i) {
      const ir::Instr& in = fn.blocks[b].instrs[i];
      const InstrRef ref{static_cast<ir::BlockId>(b),
                         static_cast<std::int32_t>(i)};
      if (const ir::Reg d = def_of(in); d != ir::kNoReg) {
        du.defs[static_cast<std::size_t>(d)].push_back(ref);
      }
      used.clear();
      uses_of(in, used);
      for (ir::Reg r : used) {
        du.uses[static_cast<std::size_t>(r)].push_back(ref);
      }
    }
  }
  return du;
}

}  // namespace statsym::analysis
