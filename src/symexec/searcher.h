// State-scheduling policies (KLEE's "searchers", §VI-C).
//
// The executor owns states; searchers only hold non-owning pointers and
// decide which state runs next. Implemented policies mirror the ones the
// paper lists for KLEE: DFS, BFS, random-path selection, and a
// coverage-optimised heuristic. StatSym's guided searcher lives in
// src/statsym/ and implements this same interface.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "support/rng.h"
#include "symexec/state.h"

namespace statsym::symexec {

class Searcher {
 public:
  virtual ~Searcher() = default;

  // Hands a state to the searcher (newly forked or re-queued after a slice).
  virtual void add(State* st) = 0;

  // Removes and returns the next state to execute; nullptr when empty.
  virtual State* select() = 0;

  virtual bool empty() const = 0;
  virtual std::size_t size() const = 0;
};

enum class SearcherKind : std::uint8_t {
  kDFS,
  kBFS,
  kRandomPath,
  kCoverageOptimized,
};

const char* searcher_kind_name(SearcherKind k);

class DfsSearcher final : public Searcher {
 public:
  void add(State* st) override { stack_.push_back(st); }
  State* select() override;
  bool empty() const override { return stack_.empty(); }
  std::size_t size() const override { return stack_.size(); }

 private:
  std::vector<State*> stack_;
};

class BfsSearcher final : public Searcher {
 public:
  void add(State* st) override { queue_.push_back(st); }
  State* select() override;
  bool empty() const override { return queue_.empty(); }
  std::size_t size() const override { return queue_.size(); }

 private:
  std::deque<State*> queue_;
};

// Uniform random choice among pending states (KLEE's random-path flavour
// without the process-tree weighting; with our fork discipline the pending
// set approximates the tree frontier).
class RandomPathSearcher final : public Searcher {
 public:
  explicit RandomPathSearcher(Rng rng) : rng_(rng) {}
  void add(State* st) override { states_.push_back(st); }
  State* select() override;
  bool empty() const override { return states_.empty(); }
  std::size_t size() const override { return states_.size(); }

 private:
  std::vector<State*> states_;
  Rng rng_;
};

// Coverage-optimised: weights states inversely to how often their current
// basic block has been visited across the whole exploration, favouring
// states about to execute fresh code.
class CoverageSearcher final : public Searcher {
 public:
  explicit CoverageSearcher(Rng rng) : rng_(rng) {}

  void add(State* st) override { states_.push_back(st); }
  State* select() override;
  bool empty() const override { return states_.empty(); }
  std::size_t size() const override { return states_.size(); }

  // Executor reports every visited (function, block).
  void note_visit(ir::FuncId f, ir::BlockId b);

 private:
  std::uint64_t visits(ir::FuncId f, ir::BlockId b) const;

  std::vector<State*> states_;
  std::unordered_map<std::uint64_t, std::uint64_t> visit_counts_;
  Rng rng_;
};

// Factory for the built-in policies.
std::unique_ptr<Searcher> make_searcher(SearcherKind kind, Rng rng);

}  // namespace statsym::symexec
