#include "symexec/sym_value.h"

#include <cassert>

namespace statsym::symexec {

solver::ExprId SymValue::to_expr(solver::ExprPool& pool) const {
  if (is_expr()) return expr;
  assert(conc.is_int() && "references cannot be lifted to expressions");
  return pool.constant(conc.i);
}

}  // namespace statsym::symexec
