// Per-state path constraints with incremental feasibility checking.
//
// Forking at every branch makes full solver queries on the whole constraint
// set too expensive; like KLEE's independence/caching layer, most decisions
// here are made by the incremental interval domain carried with the state
// (O(1)-ish per added constraint). kUnknown answers escalate to the full
// solver at the executor's discretion.
#pragma once

#include <unordered_set>
#include <vector>

#include "solver/solver.h"

namespace statsym::symexec {

class PathConstraints {
 public:
  enum class Quick : std::uint8_t { kSat, kUnsat, kUnknown };

  // Adds `e` (must be boolean-valued) and narrows the domain map.
  //   kUnsat   — contradiction proven by propagation,
  //   kSat     — e is implied/consistent and decided true under the domains,
  //   kUnknown — consistent with the domains but not decided (caller may
  //              escalate to the full solver).
  Quick add(solver::ExprPool& pool, solver::ExprId e);

  // Same narrowing and contradiction detection as add(), but `e` is already
  // implied by the recorded constraints (a statically-decided branch, see
  // src/analysis/), so it is kept out of list(): the solution set is
  // unchanged and every downstream canonical solve works on a smaller
  // constraint set.
  Quick add_implied(solver::ExprPool& pool, solver::ExprId e);

  // Quick feasibility test of `e` against the current domains without
  // recording it.
  Quick probe(solver::ExprPool& pool, solver::ExprId e) const;

  const std::vector<solver::ExprId>& list() const { return list_; }
  const solver::DomainMap& domains() const { return domains_; }

  std::size_t approx_bytes() const {
    return list_.size() * sizeof(solver::ExprId) + domains_.byte_size();
  }

 private:
  std::vector<solver::ExprId> list_;
  std::unordered_set<solver::ExprId> present_;  // dedupe re-added constraints
  solver::DomainMap domains_;
};

}  // namespace statsym::symexec
