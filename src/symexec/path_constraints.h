// Per-state path constraints with incremental feasibility checking.
//
// Forking at every branch makes full solver queries on the whole constraint
// set too expensive; like KLEE's independence/caching layer, most decisions
// here are made by the incremental interval domain carried with the state
// (O(1)-ish per added constraint). kUnknown answers escalate to the full
// solver at the executor's discretion.
//
// Storage is copy-on-write (DESIGN.md §13): the constraint list and the
// narrowed-domain map both split into a frozen prefix shared with fork
// siblings and a private tail/overlay, so fork() copies only what the state
// added since its own fork instead of the whole path history.
#pragma once

#include <vector>

#include "solver/solver.h"
#include "support/cow_vec.h"

namespace statsym::symexec {

class PathConstraints {
 public:
  enum class Quick : std::uint8_t { kSat, kUnsat, kUnknown };

  // Adds `e` (must be boolean-valued) and narrows the domain map.
  //   kUnsat   — contradiction proven by propagation,
  //   kSat     — e is implied/consistent and decided true under the domains,
  //   kUnknown — consistent with the domains but not decided (caller may
  //              escalate to the full solver).
  Quick add(solver::ExprPool& pool, solver::ExprId e);

  // Same narrowing and contradiction detection as add(), but `e` is already
  // implied by the recorded constraints (a statically-decided branch, see
  // src/analysis/), so it is kept out of list(): the solution set is
  // unchanged and every downstream canonical solve works on a smaller
  // constraint set.
  Quick add_implied(solver::ExprPool& pool, solver::ExprId e);

  // Quick feasibility test of `e` against the current domains without
  // recording it.
  Quick probe(solver::ExprPool& pool, solver::ExprId e) const;

  // The asserted constraints in path order, materialized from the shared
  // prefix plus the private tail. By value: the backing storage is chunked.
  std::vector<solver::ExprId> list() const { return list_.materialize(); }
  std::size_t size() const { return list_.size(); }
  const solver::DomainMap& domains() const { return domains_; }

  // Freezes this state's private tails and returns a sibling sharing the
  // whole recorded prefix (both continue copy-on-write).
  PathConstraints fork() {
    PathConstraints c;
    c.list_ = list_.fork();
    c.implied_ = implied_.fork();
    c.domains_ = domains_.fork();
    return c;
  }

  // Full logical footprint — what the path retains, shared or not.
  std::size_t approx_bytes() const {
    return list_.logical_bytes() + implied_.logical_bytes() +
           domains_.byte_size();
  }
  // Bytes a fork actually duplicates (private tails + domain overlay).
  std::size_t shallow_bytes() const {
    return list_.shallow_bytes() + implied_.shallow_bytes() +
           domains_.shallow_bytes();
  }

 private:
  bool present(solver::ExprId e) const {
    return list_.contains(e) || implied_.contains(e);
  }

  support::CowVec<solver::ExprId> list_;     // asserted constraints
  support::CowVec<solver::ExprId> implied_;  // narrowing-only (not solved)
  solver::DomainMap domains_;
};

}  // namespace statsym::symexec
