// Values during symbolic execution: either a concrete interp::Value or a
// symbolic integer expression. References (buffer pointers) are always
// concrete — the engine has no symbolic pointers; symbolic *indices* are
// handled at the access site by forking/concretisation in the executor.
#pragma once

#include "interp/value.h"
#include "solver/expr.h"

namespace statsym::symexec {

using interp::ObjId;
using interp::Value;

struct SymValue {
  enum class Kind : std::uint8_t { kConcrete, kExpr };

  Kind kind{Kind::kConcrete};
  Value conc{};                       // Kind::kConcrete
  solver::ExprId expr{solver::kNoExpr};  // Kind::kExpr

  static SymValue concrete(Value v) {
    SymValue s;
    s.kind = Kind::kConcrete;
    s.conc = v;
    return s;
  }
  static SymValue concrete_int(std::int64_t v) {
    return concrete(Value::make_int(v));
  }
  static SymValue symbolic(solver::ExprId e) {
    SymValue s;
    s.kind = Kind::kExpr;
    s.expr = e;
    return s;
  }

  bool is_concrete() const { return kind == Kind::kConcrete; }
  bool is_expr() const { return kind == Kind::kExpr; }
  bool is_concrete_int() const { return is_concrete() && conc.is_int(); }
  bool is_ref() const { return is_concrete() && conc.is_ref(); }

  // Lifts to an expression (constants for concrete ints). Must not be called
  // on references.
  solver::ExprId to_expr(solver::ExprPool& pool) const;
};

}  // namespace statsym::symexec
