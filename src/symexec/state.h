// An execution state: one path through the program under exploration.
//
// KLEE-style: call stack with per-frame registers, copy-on-write memory,
// accumulated path constraints, plus the guidance bookkeeping StatSym's
// state manager maintains (position on the candidate path and diverted-hop
// count, §VI-C).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "ir/module.h"
#include "monitor/log.h"
#include "support/cow_vec.h"
#include "symexec/path_constraints.h"
#include "symexec/sym_memory.h"
#include "symexec/sym_value.h"

namespace statsym::symexec {

struct Frame {
  ir::FuncId func{ir::kNoFunc};
  ir::BlockId block{0};
  std::int32_t idx{0};
  std::vector<SymValue> regs;
  ir::Reg ret_dst{ir::kNoReg};
  std::vector<SymValue> params;  // snapshot for guidance/logging hooks
};

// Guidance bookkeeping attached to every state (the paper's StatSym State
// Manager records "the currently executed path nodes, as well as the
// diverted hops"). A diverted hop is a *distinct* off-path location visited
// since the last candidate-node match: looping over the same off-path
// function does not move the state farther from the candidate path, so it
// is counted once (`alien_seen` tracks the distinct set; cleared on match).
struct GuideInfo {
  std::int32_t next_node{0};   // index of the next expected candidate node
  std::int32_t diverted{0};    // distinct off-path locations since last match
  std::int32_t matched{0};     // candidate nodes matched so far
  std::vector<monitor::LocId> alien_seen;
};

struct State {
  std::uint64_t id{0};
  std::vector<Frame> stack;
  PathConstraints pc;
  SymMemory mem;
  std::vector<SymValue> globals;
  // Function enter/leave event history; copy-on-write so a fork shares the
  // whole prefix walked so far.
  support::CowVec<monitor::LocId> trace;
  std::uint64_t depth{0};             // branch decisions taken
  std::uint64_t instrs{0};            // instructions this state executed
  GuideInfo guide;

  Frame& top() { return stack.back(); }
  const Frame& top() const { return stack.back(); }

  // Copy-on-write fork: freezes this state's private suffixes (constraint
  // tail, domain overlay, trace tail) and fills `c` with a sibling sharing
  // every frozen prefix. Stack/registers/globals are genuinely per-state and
  // copy eagerly; memory shares objects through its own object-level COW.
  // `c->id` is left untouched — the executor assigns ids in commit order.
  void fork_into(State& c) {
    c.stack = stack;
    c.pc = pc.fork();
    c.mem = mem;
    c.globals = globals;
    c.trace = trace.fork();
    c.depth = depth;
    c.instrs = instrs;
    c.guide = guide;
  }

  // Approximate unique footprint for the executor's memory budget (full
  // logical contents; shared prefixes count toward every sharer).
  std::size_t approx_bytes() const {
    std::size_t n = sizeof(State);
    for (const auto& f : stack) {
      n += sizeof(Frame) + (f.regs.size() + f.params.size()) * sizeof(SymValue);
    }
    n += trace.size() * sizeof(monitor::LocId);
    n += pc.approx_bytes();
    n += mem.approx_bytes();
    return n;
  }

  // Bytes fork_into actually copies: the eager members plus the private
  // COW suffixes. The gap between this and approx_bytes() is the clone
  // traffic the copy-on-write representation saves per fork.
  std::size_t shallow_clone_bytes() const {
    std::size_t n = sizeof(State);
    for (const auto& f : stack) {
      n += sizeof(Frame) + (f.regs.size() + f.params.size()) * sizeof(SymValue);
    }
    n += globals.size() * sizeof(SymValue);
    n += trace.shallow_bytes();
    n += pc.shallow_bytes();
    n += mem.table_bytes();  // objects themselves are shared until written
    return n;
  }
};

// Recycles State allocations across the fork/terminate churn of a run.
// Terminated states return their shells here; a fork pops one instead of
// paying a fresh allocation (and re-grows the member containers in place).
// Thread-safe: workers release and acquire concurrently mid-round.
class StateArena {
 public:
  std::unique_ptr<State> acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        auto s = std::move(free_.back());
        free_.pop_back();
        return s;
      }
    }
    return std::make_unique<State>();
  }

  void release(std::unique_ptr<State> s) {
    if (s == nullptr) return;
    s->id = 0;
    s->stack.clear();  // keeps the outer vector's capacity
    s->pc = PathConstraints{};
    s->mem = SymMemory{};
    s->globals.clear();
    s->trace = support::CowVec<monitor::LocId>{};
    s->depth = 0;
    s->instrs = 0;
    s->guide = GuideInfo{};
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.size() < kMaxFree) free_.push_back(std::move(s));
  }

 private:
  static constexpr std::size_t kMaxFree = 256;
  std::mutex mu_;
  std::vector<std::unique_ptr<State>> free_;
};

}  // namespace statsym::symexec
