// An execution state: one path through the program under exploration.
//
// KLEE-style: call stack with per-frame registers, copy-on-write memory,
// accumulated path constraints, plus the guidance bookkeeping StatSym's
// state manager maintains (position on the candidate path and diverted-hop
// count, §VI-C).
#pragma once

#include <cstdint>
#include <vector>

#include "ir/module.h"
#include "monitor/log.h"
#include "symexec/path_constraints.h"
#include "symexec/sym_memory.h"
#include "symexec/sym_value.h"

namespace statsym::symexec {

struct Frame {
  ir::FuncId func{ir::kNoFunc};
  ir::BlockId block{0};
  std::int32_t idx{0};
  std::vector<SymValue> regs;
  ir::Reg ret_dst{ir::kNoReg};
  std::vector<SymValue> params;  // snapshot for guidance/logging hooks
};

// Guidance bookkeeping attached to every state (the paper's StatSym State
// Manager records "the currently executed path nodes, as well as the
// diverted hops"). A diverted hop is a *distinct* off-path location visited
// since the last candidate-node match: looping over the same off-path
// function does not move the state farther from the candidate path, so it
// is counted once (`alien_seen` tracks the distinct set; cleared on match).
struct GuideInfo {
  std::int32_t next_node{0};   // index of the next expected candidate node
  std::int32_t diverted{0};    // distinct off-path locations since last match
  std::int32_t matched{0};     // candidate nodes matched so far
  std::vector<monitor::LocId> alien_seen;
};

struct State {
  std::uint64_t id{0};
  std::vector<Frame> stack;
  PathConstraints pc;
  SymMemory mem;
  std::vector<SymValue> globals;
  std::vector<monitor::LocId> trace;  // function enter/leave event history
  std::uint64_t depth{0};             // branch decisions taken
  std::uint64_t instrs{0};            // instructions this state executed
  GuideInfo guide;

  Frame& top() { return stack.back(); }
  const Frame& top() const { return stack.back(); }

  // Approximate unique footprint for the executor's memory budget.
  std::size_t approx_bytes() const {
    std::size_t n = sizeof(State);
    for (const auto& f : stack) {
      n += sizeof(Frame) + (f.regs.size() + f.params.size()) * sizeof(SymValue);
    }
    n += trace.size() * sizeof(monitor::LocId);
    n += pc.approx_bytes();
    n += mem.approx_bytes();
    return n;
  }
};

}  // namespace statsym::symexec
