// Copy-on-write symbolic memory.
//
// Objects are byte arrays whose cells are either concrete bytes or symbolic
// expressions (typically per-byte input variables). States share objects
// through shared_ptr and clone on first write after a fork — the same
// object-level copy-on-write KLEE uses, and the thing whose failure mode
// (memory exhaustion under state explosion) the paper's Table IV reports for
// pure symbolic execution. Object ids are drawn from a per-state counter
// snapshotted at fork: sibling states may mint the same id for *different*
// future objects, which is harmless — the object tables are per-state — and
// keeps forked states free of any shared mutable word (a shared counter
// would be a data race once siblings execute on different workers).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/value.h"
#include "solver/expr.h"

namespace statsym::symexec {

using interp::ObjId;

struct SymByte {
  bool is_sym{false};
  std::uint8_t b{0};
  solver::ExprId e{solver::kNoExpr};

  static SymByte concrete(std::uint8_t v) { return {false, v, solver::kNoExpr}; }
  static SymByte symbolic(solver::ExprId e) { return {true, 0, e}; }
};

struct SymObject {
  std::vector<SymByte> bytes;
  std::string label;
};

class SymMemory {
 public:
  SymMemory() = default;

  // Value-copy shares all objects with the source; the first write to a
  // shared object clones it (copy-on-write).
  SymMemory(const SymMemory&) = default;
  SymMemory& operator=(const SymMemory&) = default;
  SymMemory(SymMemory&&) = default;
  SymMemory& operator=(SymMemory&&) = default;

  ObjId alloc(std::int64_t size, std::string label);

  bool valid(ObjId id) const { return objects_.contains(id); }
  std::int64_t size(ObjId id) const;
  const std::string& label(ObjId id) const;

  bool in_bounds(ObjId id, std::int64_t addr) const {
    return valid(id) && addr >= 0 && addr < size(id);
  }

  // Bounds must have been checked by the caller.
  SymByte read(ObjId id, std::int64_t addr) const;
  void write(ObjId id, std::int64_t addr, SymByte byte);

  // Length of the concrete C string at `off` — only meaningful for objects
  // with concrete prefixes; symbolic bytes terminate the scan (counted as
  // unknown -> stop). Used for logging/diagnostics, not semantics.
  std::int64_t concrete_strlen(ObjId id, std::int64_t off = 0) const;

  // Bytes this state uniquely owns plus its share of bookkeeping — the
  // quantity counted against the executor's memory budget.
  std::size_t approx_bytes() const;

  // Bytes a value-copy actually duplicates: the object *table* (the objects
  // themselves are shared until written).
  std::size_t table_bytes() const {
    return objects_.size() *
           (sizeof(ObjId) + sizeof(std::shared_ptr<SymObject>) + 16);
  }

  // Number of objects cloned by copy-on-write in this instance's lifetime.
  std::uint64_t cow_clones() const { return cow_clones_; }

 private:
  std::unordered_map<ObjId, std::shared_ptr<SymObject>> objects_;
  ObjId next_id_{0};  // per-state; snapshotted at fork
  std::uint64_t cow_clones_{0};
};

}  // namespace statsym::symexec
