#include "symexec/executor.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "support/thread_pool.h"
#include "support/ws_deque.h"

namespace statsym::symexec {

const char* termination_name(Termination t) {
  switch (t) {
    case Termination::kFoundFault: return "found-fault";
    case Termination::kExhausted: return "exhausted";
    case Termination::kOutOfMemory: return "out-of-memory";
    case Termination::kStateLimit: return "state-limit";
    case Termination::kInstrLimit: return "instr-limit";
    case Termination::kTimeout: return "timeout";
    case Termination::kCancelled: return "cancelled";
  }
  return "?";
}

thread_local SymExecutor::TaskCtx* SymExecutor::tls_ctx_ = nullptr;

SymExecutor::TaskCtx::TaskCtx(SymExecutor& ex)
    : solver(ex.pool_, ex.opts_.solver_opts),
      trace(ex.trace_ != nullptr ? ex.trace_->capacity() : 1) {
  solver.set_cache(&cache);
  solver::SharedQueryCache* sc = ex.shared_cache_ != nullptr
                                     ? ex.shared_cache_
                                     : ex.own_shared_cache_.get();
  if (sc != nullptr) solver.set_shared_cache(sc);
  if (ex.trace_ != nullptr) {
    trace.set_lane(ex.trace_->lane());
    trace.set_clock(ex.trace_->clock());
    trace_sink = &trace;
    solver.set_trace(&trace);
  }
}

SymExecutor::TaskCtx& SymExecutor::ctx() {
  return tls_ctx_ != nullptr ? *tls_ctx_ : *main_ctx_;
}

const SymExecutor::TaskCtx& SymExecutor::ctx() const {
  return tls_ctx_ != nullptr ? *tls_ctx_ : *main_ctx_;
}

SymExecutor::SymExecutor(const ir::Module& m, SymInputSpec spec,
                         ExecOptions opts)
    : m_(m), spec_(std::move(spec)), opts_(opts), rng_(opts.seed) {
  main_ctx_ = std::make_unique<TaskCtx>(*this);
  searcher_ = make_searcher(opts_.searcher, rng_.split());
}

void SymExecutor::set_shared_solver_cache(solver::SharedQueryCache* cache) {
  shared_cache_ = cache;
  main_ctx_->solver.set_shared_cache(cache);
}

void SymExecutor::set_trace(obs::TraceBuffer* trace) {
  trace_ = trace;
  main_ctx_->trace_sink = trace;
  main_ctx_->solver.set_trace(trace);
}

solver::Solver& SymExecutor::solver() { return main_ctx_->solver; }

void SymExecutor::register_sym_buf(SymBufReg reg) {
  if (tls_ctx_ != nullptr) {
    tls_ctx_->new_bufs.push_back(std::move(reg));
  } else {
    sym_bufs_.push_back(std::move(reg));
  }
}

void SymExecutor::register_sym_int(const std::string& name, solver::VarId v) {
  if (sym_ints_.contains(name)) return;
  if (tls_ctx_ != nullptr) {
    for (const auto& [n, existing] : tls_ctx_->new_ints) {
      if (n == name) return;
    }
    tls_ctx_->new_ints.emplace_back(name, v);
    return;
  }
  sym_ints_.emplace(name, v);
}

ObjId SymExecutor::make_input_object(State& st, const SymStr& s,
                                     const std::string& label,
                                     const std::string* follow_value) {
  if (!s.symbolic) {
    const auto size = static_cast<std::int64_t>(s.concrete.size()) + 1;
    const ObjId id = st.mem.alloc(size, label);
    for (std::size_t i = 0; i < s.concrete.size(); ++i) {
      st.mem.write(id, static_cast<std::int64_t>(i),
                   SymByte::concrete(static_cast<std::uint8_t>(s.concrete[i])));
    }
    return id;
  }
  assert(s.capacity >= 1);
  const ObjId id = st.mem.alloc(s.capacity, label);
  SymBufReg reg;
  reg.name = s.name;
  for (std::int64_t i = 0; i + 1 < s.capacity; ++i) {
    const solver::VarId v =
        pool_.new_var(s.name + "[" + std::to_string(i) + "]", 0, 255);
    reg.vars.push_back(v);
    if (follow_) {
      // Bytes past the driving string read 0, matching the concrete
      // interpreter's NUL-terminated allocation.
      const std::int64_t b =
          (follow_value != nullptr &&
           i < static_cast<std::int64_t>(follow_value->size()))
              ? static_cast<std::uint8_t>(
                    (*follow_value)[static_cast<std::size_t>(i)])
              : 0;
      follow_vals_[v] = b;
    }
    st.mem.write(id, i, SymByte::symbolic(pool_.var_expr(v)));
  }
  // Pin the final byte to NUL so every path sees a terminated string within
  // the buffer (standard symbolic-string harness idiom).
  st.mem.write(id, s.capacity - 1, SymByte::concrete(0));
  register_sym_buf(std::move(reg));
  return id;
}

void SymExecutor::build_initial_state() {
  auto st = std::make_unique<State>();
  st->id = next_state_id_++;

  for (const auto& g : m_.globals()) {
    if (g.kind == ir::Global::Kind::kInt) {
      st->globals.push_back(SymValue::concrete_int(g.init_int));
    } else {
      st->globals.push_back(SymValue::concrete(
          Value::make_ref(st->mem.alloc(g.buf_size, g.name))));
    }
  }
  for (std::size_t i = 0; i < spec_.argv.size(); ++i) {
    const std::string* fv =
        follow_ && i < follow_input_.argv.size() ? &follow_input_.argv[i]
                                                 : nullptr;
    argv_objs_.push_back(
        make_input_object(*st, spec_.argv[i], "argv" + std::to_string(i), fv));
  }
  for (const auto& [name, s] : spec_.env) {
    const std::string* fv = nullptr;
    if (follow_) {
      auto it = follow_input_.env.find(name);
      if (it != follow_input_.env.end()) fv = &it->second;
    }
    env_objs_[name] = make_input_object(*st, s, "env:" + name, fv);
  }

  const ir::FuncId entry = m_.entry();
  Frame f;
  f.func = entry;
  f.regs.assign(
      static_cast<std::size_t>(m_.function(entry).num_regs),
      SymValue::concrete_int(0));
  st->stack.push_back(std::move(f));

  State* raw = st.get();
  owned_.emplace(raw->id, std::move(st));
  // The entry event goes through the guidance hook like every other
  // location event — candidate paths start at main():enter.
  if (apply_hook(*raw, monitor::enter_loc(entry)) ==
      StepResult::kSuspend) {
    ++stats_.suspensions;
    if (trace_ != nullptr) {
      trace_->emit(obs::EventKind::kStateSuspend,
                   static_cast<std::int64_t>(raw->id));
    }
    suspended_.push_back(raw);
  } else {
    searcher_->add(raw);
  }
}

std::unique_ptr<State> SymExecutor::clone_state(State& st) {
  auto c = arena_.acquire();
  st.fork_into(*c);
  ExecStats& d = ctx().delta;
  d.eager_clone_bytes += st.approx_bytes();
  d.clone_bytes += c->shallow_clone_bytes();
  return c;
}

bool SymExecutor::feasible(State& st, solver::ExprId e) {
  const auto quick = st.pc.probe(pool_, e);
  if (quick == PathConstraints::Quick::kSat) return true;
  if (quick == PathConstraints::Quick::kUnsat) return false;
  if (!opts_.escalate_unknown_forks) return true;  // optimistic
  const auto res = ctx().solver.check_with(st.pc.list(), e);
  return res.sat != solver::Sat::kUnsat;  // unknown treated as feasible
}

bool SymExecutor::add_constraint(State& st, solver::ExprId e) {
  return st.pc.add(pool_, e) != PathConstraints::Quick::kUnsat;
}

std::int64_t SymExecutor::follow_eval(solver::ExprId e) const {
  return pool_.eval(e, follow_vals_);
}

void SymExecutor::follow_decide(State& st, solver::ExprId taken,
                                solver::ExprId negated) {
  decisions_.push_back(Decision{taken, negated, st.pc.size()});
  // `taken` holds under the concrete valuation, which also satisfies every
  // earlier constraint on this path, so the add can never prove unsat
  // (interval propagation is sound).
  add_constraint(st, taken);
}

std::int64_t SymExecutor::concretize(State& st, solver::ExprId e) {
  if (pool_.is_const(e)) return pool_.const_val(e);
  if (follow_) {
    // Pin to the value the driving input induces — the concrete execution's
    // choice, not a solver model's.
    const std::int64_t v = follow_eval(e);
    add_constraint(st, pool_.eq(e, pool_.constant(v)));
    return v;
  }
  const auto res = ctx().solver.check(st.pc.list());
  std::int64_t v;
  if (res.sat == solver::Sat::kSat) {
    v = pool_.eval(e, res.model);
  } else {
    v = solver::eval_interval(pool_, e, st.pc.domains()).lo;
  }
  add_constraint(st, pool_.eq(e, pool_.constant(v)));
  return v;
}

SymExecutor::StepResult SymExecutor::apply_hook(State& st, monitor::LocId loc) {
  st.trace.push_back(loc);
  if (hook_ == nullptr) return StepResult::kContinue;
  const GuidanceHook::Action a = hook_->on_location(*this, st, loc);
  return a == GuidanceHook::Action::kSuspend ? StepResult::kSuspend
                                             : StepResult::kContinue;
}

SymExecutor::StepResult SymExecutor::fault_state(State& st,
                                                 interp::FaultKind kind,
                                                 std::string detail) {
  TaskCtx& tc = ctx();
  VulnPath v;
  if (follow_) {
    // Follow mode reached this fault by concretely executing the driving
    // input, so that input IS the witness: no validation query is needed and
    // the concrete valuation is the model.
    v.model = follow_vals_;
    v.model_valid = true;
  } else {
    // Validate the path end-to-end with the full solver; an unsatisfiable
    // constraint set means the optimistic quick checks walked an infeasible
    // path — discard rather than report a false positive. Uses the dedicated
    // high-budget validation solver (sharing the task's query caches).
    solver::Solver validator(pool_, opts_.fault_solver_opts);
    validator.set_cache(&tc.cache);
    solver::SharedQueryCache* sc =
        shared_cache_ != nullptr ? shared_cache_ : own_shared_cache_.get();
    if (sc != nullptr) validator.set_shared_cache(sc);
    if (tc.trace_sink != nullptr) validator.set_trace(tc.trace_sink);
    const auto res = validator.check(st.pc.list());
    tc.validator_stats += validator.stats();
    if (res.sat == solver::Sat::kUnsat) return StepResult::kInfeasible;
    v.model_valid = (res.sat == solver::Sat::kSat);
    if (v.model_valid) v.model = res.model;
  }
  v.kind = kind;
  v.function = m_.function(st.top().func).name;
  // Attribute faults inside library-internal frames to the first user-level
  // caller on the stack.
  if (!opts_.library_prefix.empty()) {
    for (auto it = st.stack.rbegin(); it != st.stack.rend(); ++it) {
      const std::string& name = m_.function(it->func).name;
      if (!name.starts_with(opts_.library_prefix)) {
        v.function = name;
        break;
      }
    }
  }
  v.detail = std::move(detail);
  v.trace = st.trace.materialize();
  v.constraints = st.pc.list();
  v.input = reconstruct_input(v.model);
  tc.pending_vuln = std::move(v);
  return StepResult::kFault;
}

interp::RuntimeInput SymExecutor::reconstruct_input(
    const solver::Model& model) const {
  interp::RuntimeInput in;
  // A slice's own registrations are not yet committed: consult the committed
  // registries plus (when called mid-slice) the task-local pending ones.
  const TaskCtx* tc = tls_ctx_;
  auto value_of = [&](solver::VarId v) {
    auto it = model.find(v);
    return it != model.end() ? it->second : pool_.var(v).lo;
  };
  auto scan = [&](const std::vector<SymBufReg>& regs, const std::string& name,
                  std::string& out) {
    for (const auto& reg : regs) {
      if (reg.name != name) continue;
      for (solver::VarId v : reg.vars) {
        const std::int64_t b = value_of(v);
        if (b == 0) break;
        out.push_back(static_cast<char>(static_cast<std::uint8_t>(b)));
      }
      return true;
    }
    return false;
  };
  auto str_of = [&](const std::string& name) {
    std::string s;
    if (!scan(sym_bufs_, name, s) && tc != nullptr) {
      scan(tc->new_bufs, name, s);
    }
    return s;
  };
  for (const auto& a : spec_.argv) {
    in.argv.push_back(a.symbolic ? str_of(a.name) : a.concrete);
  }
  for (const auto& [name, s] : spec_.env) {
    in.env[name] = s.symbolic ? str_of(s.name) : s.concrete;
  }
  for (const auto& [name, var] : sym_ints_) {
    in.sym_ints[name] = value_of(var);
    in.sym_bufs[name] = str_of(name);  // covers kMakeSymBuf inputs
  }
  if (tc != nullptr) {
    for (const auto& [name, var] : tc->new_ints) {
      in.sym_ints[name] = value_of(var);
      in.sym_bufs[name] = str_of(name);
    }
  }
  for (const auto& reg : sym_bufs_) {
    if (!in.sym_bufs.contains(reg.name)) in.sym_bufs[reg.name] = str_of(reg.name);
  }
  if (tc != nullptr) {
    for (const auto& reg : tc->new_bufs) {
      if (!in.sym_bufs.contains(reg.name)) {
        in.sym_bufs[reg.name] = str_of(reg.name);
      }
    }
  }
  return in;
}

SymExecutor::StepResult SymExecutor::exec_branch(State& st,
                                                 const ir::Instr& in) {
  Frame& f = st.top();
  const SymValue cond = f.regs[static_cast<std::size_t>(in.a)];
  if (cond.is_concrete()) {
    f.block = cond.conc.truthy() ? in.t0 : in.t1;
    f.idx = 0;
    return StepResult::kContinue;
  }
  const solver::ExprId te = pool_.truthy(cond.expr);
  const solver::ExprId fe = pool_.lnot(te);
  if (follow_) {
    // Concolic follow: take the direction the concrete valuation dictates,
    // record the decision, never fork.
    const bool taken_true = follow_eval(te) != 0;
    follow_decide(st, taken_true ? te : fe, taken_true ? fe : te);
    f.block = taken_true ? in.t0 : in.t1;
    f.idx = 0;
    st.depth++;
    return StepResult::kContinue;
  }
  if (facts_ != nullptr) {
    const analysis::BranchFact bf = facts_->branch(f.func, f.block);
    if (bf != analysis::BranchFact::kUndecided) {
      // The analysis proved the condition for every execution reaching this
      // block, so pc ∧ taken-side is equisatisfiable with pc: skip both
      // feasibility queries and never fork the statically-dead sibling. The
      // constraint still narrows the propagation domains (and keeps the
      // pc-unsat detection of the add path), but stays out of the canonical
      // constraint list — it is implied, so every downstream solve works on
      // a smaller set with the identical solution space.
      const bool take_true = bf == analysis::BranchFact::kAlwaysTrue;
      if (st.pc.add_implied(pool_, take_true ? te : fe) ==
          PathConstraints::Quick::kUnsat) {
        return StepResult::kInfeasible;  // pc was already unsat
      }
      ++ctx().validator_stats.static_prunes;
      if (obs::TraceBuffer* tr = tr_sink()) {
        tr->emit(obs::EventKind::kStaticPrune, f.func, f.block,
                 take_true ? 1 : 0, "branch");
      }
      f.block = take_true ? in.t0 : in.t1;
      f.idx = 0;
      st.depth++;
      return StepResult::kContinue;
    }
  }
  const bool ok_t = feasible(st, te);
  const bool ok_f = feasible(st, fe);
  if (ok_t && ok_f) {
    auto sib = clone_state(st);
    const bool sib_ok = add_constraint(*sib, fe);
    const bool cur_ok = add_constraint(st, te);
    if (sib_ok) {
      sib->top().block = in.t1;
      sib->top().idx = 0;
      sib->depth++;
    }
    if (cur_ok) {
      f.block = in.t0;
      f.idx = 0;
      st.depth++;
    }
    if (cur_ok && sib_ok) {
      ctx().sibling = std::move(sib);
      ++ctx().delta.forks;
      return StepResult::kForked;
    }
    if (cur_ok) {
      arena_.release(std::move(sib));
      return StepResult::kContinue;
    }
    if (sib_ok) {
      // Propagation refuted the then-branch the probe thought feasible:
      // adopt the else-branch state in place (identity — id and ownership —
      // stays with the current state).
      const std::uint64_t keep_id = st.id;
      st = std::move(*sib);
      st.id = keep_id;
      arena_.release(std::move(sib));
      return StepResult::kContinue;
    }
    arena_.release(std::move(sib));
    return StepResult::kInfeasible;
  }
  if (ok_t || ok_f) {
    const solver::ExprId e = ok_t ? te : fe;
    if (!add_constraint(st, e)) return StepResult::kInfeasible;
    f.block = ok_t ? in.t0 : in.t1;
    f.idx = 0;
    st.depth++;
    return StepResult::kContinue;
  }
  return StepResult::kInfeasible;
}

SymExecutor::StepResult SymExecutor::exec_bin(State& st, const ir::Instr& in) {
  Frame& f = st.top();
  const SymValue a = f.regs[static_cast<std::size_t>(in.a)];
  const SymValue b = f.regs[static_cast<std::size_t>(in.b)];
  auto set = [&](SymValue v) { f.regs[static_cast<std::size_t>(in.dst)] = v; };

  // Reference comparisons (identity).
  if (a.is_ref() || b.is_ref()) {
    if ((in.bin == ir::BinOp::kEq || in.bin == ir::BinOp::kNe) &&
        a.is_concrete() && b.is_concrete()) {
      const bool same = a.conc.is_ref() && b.conc.is_ref() &&
                        a.conc.obj == b.conc.obj && a.conc.off == b.conc.off;
      const bool both_null = a.conc.is_null_ref() && b.conc.is_null_ref();
      const bool eq = same || both_null;
      set(SymValue::concrete_int(in.bin == ir::BinOp::kEq ? eq : !eq));
      ++f.idx;
      return StepResult::kContinue;
    }
    return fault_state(st, interp::FaultKind::kNullDeref,
                       "arithmetic on reference");
  }

  if (a.is_concrete() && b.is_concrete()) {
    if ((in.bin == ir::BinOp::kDiv || in.bin == ir::BinOp::kRem) &&
        b.conc.i == 0) {
      return fault_state(st, interp::FaultKind::kDivByZero, "");
    }
    set(SymValue::concrete_int(ir::eval_binop(in.bin, a.conc.i, b.conc.i)));
    ++f.idx;
    return StepResult::kContinue;
  }

  // At least one symbolic operand.
  switch (in.bin) {
    case ir::BinOp::kAnd:
    case ir::BinOp::kOr:
    case ir::BinOp::kXor:
    case ir::BinOp::kShl:
    case ir::BinOp::kShr: {
      // Bitwise ops are outside the solver theory: concretize.
      const std::int64_t av =
          a.is_concrete() ? a.conc.i : concretize(st, a.expr);
      const std::int64_t bv =
          b.is_concrete() ? b.conc.i : concretize(st, b.expr);
      set(SymValue::concrete_int(ir::eval_binop(in.bin, av, bv)));
      ++f.idx;
      return StepResult::kContinue;
    }
    default:
      break;
  }

  const solver::ExprId ae = a.to_expr(pool_);
  const solver::ExprId be = b.to_expr(pool_);

  if (in.bin == ir::BinOp::kDiv || in.bin == ir::BinOp::kRem) {
    const solver::ExprId dz = pool_.eq(be, pool_.constant(0));
    const solver::ExprId nz = pool_.ne(be, pool_.constant(0));
    if (follow_) {
      // The divisor's concrete value decides: fault or proceed, either way a
      // recorded decision point.
      if (follow_eval(be) == 0) {
        follow_decide(st, dz, nz);
        return fault_state(st, interp::FaultKind::kDivByZero, "");
      }
      follow_decide(st, nz, dz);
    } else {
      // Fork off the division-by-zero fault when it is reachable, then
      // continue under the b != 0 constraint.
      if (feasible(st, dz)) {
        if (add_constraint(st, dz)) {
          return fault_state(st, interp::FaultKind::kDivByZero, "");
        }
        return StepResult::kInfeasible;
      }
      if (!add_constraint(st, nz)) {
        return StepResult::kInfeasible;
      }
    }
  }

  solver::ExprId e = solver::kNoExpr;
  switch (in.bin) {
    case ir::BinOp::kAdd: e = pool_.add(ae, be); break;
    case ir::BinOp::kSub: e = pool_.sub(ae, be); break;
    case ir::BinOp::kMul: e = pool_.mul(ae, be); break;
    case ir::BinOp::kDiv: e = pool_.binary(solver::ExprOp::kDiv, ae, be); break;
    case ir::BinOp::kRem: e = pool_.binary(solver::ExprOp::kRem, ae, be); break;
    case ir::BinOp::kEq: e = pool_.eq(ae, be); break;
    case ir::BinOp::kNe: e = pool_.ne(ae, be); break;
    case ir::BinOp::kLt: e = pool_.lt(ae, be); break;
    case ir::BinOp::kLe: e = pool_.le(ae, be); break;
    case ir::BinOp::kGt: e = pool_.gt(ae, be); break;
    case ir::BinOp::kGe: e = pool_.ge(ae, be); break;
    case ir::BinOp::kLAnd:
      e = pool_.land(pool_.truthy(ae), pool_.truthy(be));
      break;
    case ir::BinOp::kLOr:
      e = pool_.lor(pool_.truthy(ae), pool_.truthy(be));
      break;
    default:
      assert(false);
  }
  if (pool_.is_const(e)) {
    set(SymValue::concrete_int(pool_.const_val(e)));
  } else {
    set(SymValue::symbolic(e));
  }
  ++f.idx;
  return StepResult::kContinue;
}

bool SymExecutor::resolve_address(State& st, const ir::Instr& in,
                                  const SymValue& refv, const SymValue& idxv,
                                  bool is_store, std::int64_t& addr_out) {
  const interp::FaultKind oob_kind =
      is_store ? interp::FaultKind::kOobStore : interp::FaultKind::kOobLoad;
  (void)in;
  if (!refv.is_ref() || refv.conc.is_null_ref()) {
    ctx().mem_step_result =
        fault_state(st, interp::FaultKind::kNullDeref, "null/int access");
    return false;
  }
  const ObjId obj = refv.conc.obj;
  const std::int64_t size = st.mem.size(obj);

  if (idxv.is_concrete()) {
    const std::int64_t addr = refv.conc.off + idxv.conc.i;
    if (addr < 0 || addr >= size) {
      ctx().mem_step_result = fault_state(
          st, oob_kind, st.mem.label(obj) + "[" + std::to_string(addr) + "]");
      return false;
    }
    addr_out = addr;
    return true;
  }

  // Symbolic index: report the fault if any index value escapes the object,
  // otherwise pin the address to a model value and continue in bounds.
  const solver::ExprId addr_e =
      pool_.add(idxv.expr, pool_.constant(refv.conc.off));
  const solver::ExprId oob = pool_.lor(pool_.lt(addr_e, pool_.constant(0)),
                                       pool_.ge(addr_e, pool_.constant(size)));
  if (follow_) {
    const std::int64_t addr = follow_eval(addr_e);
    const solver::ExprId inb = pool_.lnot(oob);
    if (addr < 0 || addr >= size) {
      follow_decide(st, oob, inb);
      ctx().mem_step_result =
          fault_state(st, oob_kind, st.mem.label(obj) + "[symbolic]");
      return false;
    }
    follow_decide(st, inb, oob);
    // Pin the exact address so subsequent byte accesses read/write the cells
    // the concrete execution touches.
    add_constraint(st, pool_.eq(addr_e, pool_.constant(addr)));
    addr_out = addr;
    return true;
  }
  if (feasible(st, oob)) {
    if (add_constraint(st, oob)) {
      ctx().mem_step_result =
          fault_state(st, oob_kind, st.mem.label(obj) + "[symbolic]");
    } else {
      ctx().mem_step_result = StepResult::kInfeasible;
    }
    return false;
  }
  addr_out = concretize(st, addr_e);
  if (addr_out < 0 || addr_out >= size) {
    // Solver gave an out-of-range witness despite infeasible oob: the state
    // is contradictory.
    ctx().mem_step_result = StepResult::kInfeasible;
    return false;
  }
  return true;
}

SymExecutor::StepResult SymExecutor::exec_call(State& st,
                                               const ir::Instr& in) {
  if (static_cast<std::int32_t>(st.stack.size()) >= opts_.max_call_depth) {
    return fault_state(st, interp::FaultKind::kStackOverflow, in.str);
  }
  Frame& caller = st.top();
  std::vector<SymValue> args;
  args.reserve(in.args.size());
  for (ir::Reg r : in.args) {
    args.push_back(caller.regs[static_cast<std::size_t>(r)]);
  }
  ++caller.idx;  // resume after the call upon return

  const auto callee = static_cast<ir::FuncId>(in.imm);
  Frame f;
  f.func = callee;
  f.ret_dst = in.dst;
  f.regs.assign(static_cast<std::size_t>(m_.function(callee).num_regs),
                SymValue::concrete_int(0));
  for (std::size_t i = 0; i < args.size(); ++i) f.regs[i] = args[i];
  f.params = std::move(args);
  st.stack.push_back(std::move(f));

  return apply_hook(st, monitor::enter_loc(callee));
}

SymExecutor::StepResult SymExecutor::exec_ret(State& st, const ir::Instr& in) {
  Frame& f = st.top();
  std::optional<SymValue> ret;
  if (in.a != ir::kNoReg) ret = f.regs[static_cast<std::size_t>(in.a)];

  const ir::FuncId fid = f.func;
  const ir::Reg dst = f.ret_dst;
  st.stack.pop_back();
  if (st.stack.empty()) {
    // Return from main: record the leave event but skip the guidance hook —
    // the path is complete either way.
    st.trace.push_back(monitor::leave_loc(fid));
    return StepResult::kTerminated;
  }
  if (dst != ir::kNoReg) {
    st.top().regs[static_cast<std::size_t>(dst)] =
        ret.value_or(SymValue::concrete_int(0));
  }
  return apply_hook(st, monitor::leave_loc(fid));
}

SymExecutor::StepResult SymExecutor::step(State& st) {
  Frame& f = st.top();
  const ir::Function& fn = m_.function(f.func);
  const ir::Instr& in = fn.blocks[static_cast<std::size_t>(f.block)]
                            .instrs[static_cast<std::size_t>(f.idx)];
  ++ctx().delta.instructions;
  ++st.instrs;

  auto reg = [&](ir::Reg r) -> SymValue& {
    return f.regs[static_cast<std::size_t>(r)];
  };
  auto set = [&](ir::Reg r, SymValue v) {
    f.regs[static_cast<std::size_t>(r)] = v;
  };

  switch (in.op) {
    case ir::Opcode::kConst:
      set(in.dst, SymValue::concrete_int(in.imm));
      ++f.idx;
      return StepResult::kContinue;
    case ir::Opcode::kMove:
      set(in.dst, reg(in.a));
      ++f.idx;
      return StepResult::kContinue;
    case ir::Opcode::kBin:
      return exec_bin(st, in);
    case ir::Opcode::kNot: {
      const SymValue a = reg(in.a);
      if (a.is_concrete()) {
        set(in.dst, SymValue::concrete_int(a.conc.truthy() ? 0 : 1));
      } else {
        set(in.dst, SymValue::symbolic(pool_.lnot(pool_.truthy(a.expr))));
      }
      ++f.idx;
      return StepResult::kContinue;
    }
    case ir::Opcode::kNeg: {
      const SymValue a = reg(in.a);
      if (a.is_concrete()) {
        if (!a.conc.is_int()) {
          return fault_state(st, interp::FaultKind::kNullDeref,
                             "negate reference");
        }
        set(in.dst, SymValue::concrete_int(static_cast<std::int64_t>(
                        0 - static_cast<std::uint64_t>(a.conc.i))));
      } else {
        set(in.dst, SymValue::symbolic(pool_.unary(solver::ExprOp::kNeg, a.expr)));
      }
      ++f.idx;
      return StepResult::kContinue;
    }
    case ir::Opcode::kAlloca:
      set(in.dst, SymValue::concrete(
                      Value::make_ref(st.mem.alloc(in.imm, fn.name + ":alloca"))));
      ++f.idx;
      return StepResult::kContinue;
    case ir::Opcode::kStrConst: {
      const ObjId id = st.mem.alloc(
          static_cast<std::int64_t>(in.str.size()) + 1, "strconst");
      for (std::size_t i = 0; i < in.str.size(); ++i) {
        st.mem.write(id, static_cast<std::int64_t>(i),
                     SymByte::concrete(static_cast<std::uint8_t>(in.str[i])));
      }
      set(in.dst, SymValue::concrete(Value::make_ref(id)));
      ++f.idx;
      return StepResult::kContinue;
    }
    case ir::Opcode::kLoad: {
      std::int64_t addr = 0;
      if (!resolve_address(st, in, reg(in.a), reg(in.b), /*is_store=*/false,
                           addr)) {
        return ctx().mem_step_result;
      }
      const SymByte b = st.mem.read(reg(in.a).conc.obj, addr);
      set(in.dst, b.is_sym ? SymValue::symbolic(b.e)
                           : SymValue::concrete_int(b.b));
      ++f.idx;
      return StepResult::kContinue;
    }
    case ir::Opcode::kStore: {
      std::int64_t addr = 0;
      if (!resolve_address(st, in, reg(in.a), reg(in.b), /*is_store=*/true,
                           addr)) {
        return ctx().mem_step_result;
      }
      const SymValue v = reg(in.c);
      SymByte byte;
      if (v.is_concrete()) {
        if (!v.conc.is_int()) {
          return fault_state(st, interp::FaultKind::kNullDeref,
                             "storing a reference into a byte");
        }
        byte = SymByte::concrete(static_cast<std::uint8_t>(v.conc.i & 0xff));
      } else {
        byte = SymByte::symbolic(v.expr);
      }
      st.mem.write(reg(in.a).conc.obj, addr, byte);
      ++f.idx;
      return StepResult::kContinue;
    }
    case ir::Opcode::kBufSize: {
      const SymValue r = reg(in.a);
      if (!r.is_ref() || r.conc.is_null_ref()) {
        return fault_state(st, interp::FaultKind::kNullDeref,
                           "bufsize of null/int");
      }
      set(in.dst, SymValue::concrete_int(st.mem.size(r.conc.obj)));
      ++f.idx;
      return StepResult::kContinue;
    }
    case ir::Opcode::kLoadG:
      set(in.dst,
          st.globals[static_cast<std::size_t>(m_.find_global(in.str))]);
      ++f.idx;
      return StepResult::kContinue;
    case ir::Opcode::kStoreG:
      st.globals[static_cast<std::size_t>(m_.find_global(in.str))] = reg(in.a);
      ++f.idx;
      return StepResult::kContinue;
    case ir::Opcode::kJmp:
      f.block = in.t0;
      f.idx = 0;
      return StepResult::kContinue;
    case ir::Opcode::kBr:
      return exec_branch(st, in);
    case ir::Opcode::kCall:
      return exec_call(st, in);
    case ir::Opcode::kCallExt: {
      // External environment is modelled deterministically: result 0.
      if (in.dst != ir::kNoReg) set(in.dst, SymValue::concrete_int(0));
      ++f.idx;
      return StepResult::kContinue;
    }
    case ir::Opcode::kRet:
      return exec_ret(st, in);
    case ir::Opcode::kArgc:
      set(in.dst, SymValue::concrete_int(
                      static_cast<std::int64_t>(argv_objs_.size())));
      ++f.idx;
      return StepResult::kContinue;
    case ir::Opcode::kArg: {
      const SymValue idx = reg(in.a);
      const std::int64_t i =
          idx.is_concrete() ? idx.conc.i : concretize(st, idx.expr);
      if (i < 0 || i >= static_cast<std::int64_t>(argv_objs_.size())) {
        return fault_state(st, interp::FaultKind::kBadArgIndex,
                           std::to_string(i));
      }
      set(in.dst, SymValue::concrete(
                      Value::make_ref(argv_objs_[static_cast<std::size_t>(i)])));
      ++f.idx;
      return StepResult::kContinue;
    }
    case ir::Opcode::kEnv: {
      auto it = env_objs_.find(in.str);
      set(in.dst, it == env_objs_.end()
                      ? SymValue::concrete(Value::null_ref())
                      : SymValue::concrete(Value::make_ref(it->second)));
      ++f.idx;
      return StepResult::kContinue;
    }
    case ir::Opcode::kMakeSymInt: {
      const solver::VarId v = pool_.new_var(in.str, in.imm, in.imm2);
      register_sym_int(in.str, v);
      if (follow_) {
        std::int64_t cv = in.imm;  // default: domain minimum, as the interp
        if (auto it = follow_input_.sym_ints.find(in.str);
            it != follow_input_.sym_ints.end()) {
          cv = std::clamp(it->second, in.imm, in.imm2);
        }
        follow_vals_[v] = cv;
      }
      set(in.dst, SymValue::symbolic(pool_.var_expr(v)));
      ++f.idx;
      return StepResult::kContinue;
    }
    case ir::Opcode::kMakeSymBuf: {
      const SymValue r = reg(in.a);
      if (!r.is_ref() || r.conc.is_null_ref()) {
        return fault_state(st, interp::FaultKind::kNullDeref,
                           "make_symbolic on null/int");
      }
      const ObjId obj = r.conc.obj;
      const std::int64_t size = st.mem.size(obj);
      SymBufReg breg;
      breg.name = in.str;
      for (std::int64_t i = r.conc.off; i + 1 < size; ++i) {
        const solver::VarId v =
            pool_.new_var(in.str + "[" + std::to_string(i) + "]", 0, 255);
        breg.vars.push_back(v);
        if (follow_) {
          const std::int64_t rel = i - r.conc.off;
          std::int64_t bv = 0;
          if (auto it = follow_input_.sym_bufs.find(in.str);
              it != follow_input_.sym_bufs.end() &&
              rel < static_cast<std::int64_t>(it->second.size())) {
            bv = static_cast<std::uint8_t>(
                it->second[static_cast<std::size_t>(rel)]);
          }
          follow_vals_[v] = bv;
        }
        st.mem.write(obj, i, SymByte::symbolic(pool_.var_expr(v)));
      }
      if (size > r.conc.off) st.mem.write(obj, size - 1, SymByte::concrete(0));
      register_sym_buf(std::move(breg));
      ++f.idx;
      return StepResult::kContinue;
    }
    case ir::Opcode::kAssert: {
      const SymValue c = reg(in.a);
      if (c.is_concrete()) {
        if (!c.conc.truthy()) {
          return fault_state(st, interp::FaultKind::kAssertFail, "");
        }
        ++f.idx;
        return StepResult::kContinue;
      }
      const solver::ExprId ok = pool_.truthy(c.expr);
      const solver::ExprId bad = pool_.lnot(ok);
      if (follow_) {
        if (follow_eval(ok) != 0) {
          follow_decide(st, ok, bad);
          ++f.idx;
          return StepResult::kContinue;
        }
        follow_decide(st, bad, ok);
        return fault_state(st, interp::FaultKind::kAssertFail, "");
      }
      if (feasible(st, bad)) {
        if (add_constraint(st, bad)) {
          return fault_state(st, interp::FaultKind::kAssertFail, "");
        }
        return StepResult::kInfeasible;
      }
      if (!add_constraint(st, ok)) return StepResult::kInfeasible;
      ++f.idx;
      return StepResult::kContinue;
    }
    case ir::Opcode::kPrint:
      ++f.idx;
      return StepResult::kContinue;
  }
  return StepResult::kContinue;
}

std::size_t SymExecutor::live_memory_estimate() const {
  std::size_t total = 0;
  for (const auto& [id, st] : owned_) total += st->approx_bytes();
  return total;
}

void SymExecutor::publish_shared(std::size_t mem_estimate) {
  if (budget_ == nullptr) return;
  budget_->instructions.fetch_add(stats_.instructions - published_instrs_,
                                  std::memory_order_relaxed);
  published_instrs_ = stats_.instructions;
  auto adjust = [](std::atomic<std::size_t>& gauge, std::size_t& last,
                   std::size_t now) {
    if (now >= last) {
      gauge.fetch_add(now - last, std::memory_order_relaxed);
    } else {
      gauge.fetch_sub(last - now, std::memory_order_relaxed);
    }
    last = now;
  };
  adjust(budget_->live_states, published_states_, owned_.size());
  adjust(budget_->memory_bytes, published_mem_, mem_estimate);
}

void SymExecutor::release_shared() {
  if (budget_ == nullptr) return;
  budget_->instructions.fetch_add(stats_.instructions - published_instrs_,
                                  std::memory_order_relaxed);
  published_instrs_ = stats_.instructions;
  budget_->live_states.fetch_sub(published_states_, std::memory_order_relaxed);
  budget_->memory_bytes.fetch_sub(published_mem_, std::memory_order_relaxed);
  published_states_ = 0;
  published_mem_ = 0;
}

void SymExecutor::run_task(State& st, TaskCtx& tc) {
  TaskCtx* prev = tls_ctx_;
  tls_ctx_ = &tc;
  bool requeue = true;
  StepResult last = StepResult::kContinue;
  for (std::uint32_t k = 0; k < opts_.slice && requeue; ++k) {
    last = step(st);
    if (last != StepResult::kContinue) requeue = false;
  }
  tc.last = last;
  tc.requeue = requeue;
  tls_ctx_ = prev;
}

void SymExecutor::destroy_state(State* st) {
  // Follow mode runs exactly one state; keep its final constraint list so
  // the concolic driver can slice decision prefixes out of it.
  if (follow_) followed_pc_ = st->pc.list();
  auto it = owned_.find(st->id);
  if (it != owned_.end()) {
    arena_.release(std::move(it->second));
    owned_.erase(it);
  }
}

void SymExecutor::commit_task(State* st, TaskCtx& tc, ExecResult& result,
                              Termination& term, bool& done) {
  // Counters and buffered events first: they describe the slice regardless
  // of how it ended. Committing strictly in draw order makes every
  // aggregate, the stitched event stream, and the ids assigned below
  // independent of worker timing.
  stats_.instructions += tc.delta.instructions;
  stats_.forks += tc.delta.forks;
  stats_.clone_bytes += tc.delta.clone_bytes;
  stats_.eager_clone_bytes += tc.delta.eager_clone_bytes;
  solver_stats_acc_ += tc.solver.stats();
  solver_stats_acc_ += tc.validator_stats;
  if (trace_ != nullptr) trace_->append(std::move(tc.trace));
  for (const auto& [name, v] : tc.new_ints) sym_ints_.emplace(name, v);
  for (auto& reg : tc.new_bufs) sym_bufs_.push_back(std::move(reg));

  switch (tc.last) {
    case StepResult::kContinue:
      break;  // slice expired: requeued below
    case StepResult::kForked: {
      assert(tc.sibling != nullptr);
      State* sib = tc.sibling.get();
      sib->id = next_state_id_++;  // canonical: assigned in commit order
      owned_.emplace(sib->id, std::move(tc.sibling));
      stats_.peak_live_states =
          std::max(stats_.peak_live_states, owned_.size());
      if (trace_ != nullptr) {
        trace_->emit(obs::EventKind::kStateFork,
                     static_cast<std::int64_t>(st->id),
                     static_cast<std::int64_t>(sib->id));
      }
      searcher_->add(sib);
      searcher_->add(st);  // current continues (then-branch) first in DFS
      break;
    }
    case StepResult::kTerminated:
      ++stats_.paths_ok;
      ++stats_.paths_completed;
      if (trace_ != nullptr) {
        trace_->emit(obs::EventKind::kStateTerminate,
                     static_cast<std::int64_t>(st->id), /*reason=*/0);
      }
      destroy_state(st);
      break;
    case StepResult::kInfeasible:
      ++stats_.paths_infeasible;
      ++stats_.paths_completed;
      if (trace_ != nullptr) {
        trace_->emit(obs::EventKind::kStateTerminate,
                     static_cast<std::int64_t>(st->id), /*reason=*/1);
      }
      destroy_state(st);
      break;
    case StepResult::kFault: {
      ++stats_.paths_completed;
      if (trace_ != nullptr) {
        trace_->emit(obs::EventKind::kStateTerminate,
                     static_cast<std::int64_t>(st->id), /*reason=*/2);
      }
      destroy_state(st);
      const bool on_target =
          opts_.target_function.empty() ||
          (tc.pending_vuln.has_value() &&
           tc.pending_vuln->function == opts_.target_function);
      if (!on_target) {
        // A known/other vulnerability on the way to the hunted one: the
        // path ends here but is not the finding we're after.
        tc.pending_vuln.reset();
        break;
      }
      ++stats_.faults_found;
      if (!result.vuln.has_value()) result.vuln = std::move(tc.pending_vuln);
      tc.pending_vuln.reset();
      if (opts_.stop_at_first_fault) {
        // Later tasks of this round are discarded uniformly: they ran to
        // completion in every schedule, so dropping their results here keeps
        // the outcome independent of jobs.
        term = Termination::kFoundFault;
        done = true;
      }
      break;
    }
    case StepResult::kSuspend:
      ++stats_.suspensions;
      if (trace_ != nullptr) {
        trace_->emit(obs::EventKind::kStateSuspend,
                     static_cast<std::int64_t>(st->id));
      }
      suspended_.push_back(st);
      break;
  }
  if (tc.requeue) searcher_->add(st);
}

ExecResult SymExecutor::run() {
  // Without an engine-provided cross-worker cache, create a run-local shared
  // cache: per-task local caches start empty, so this is what lets round
  // tasks reuse each other's canonical solves (hits are bit-identical to the
  // solves they replace, so reuse never perturbs determinism).
  if (shared_cache_ == nullptr && own_shared_cache_ == nullptr) {
    own_shared_cache_ = std::make_unique<solver::SharedQueryCache>();
    main_ctx_->solver.set_shared_cache(own_shared_cache_.get());
  }

  build_initial_state();

  ExecResult result;
  Stopwatch sw;
  Termination term = Termination::kExhausted;
  bool done = false;

  // Follow mode executes exactly one state and never forks: width 1 keeps
  // its decision recording strictly sequential.
  const std::uint32_t batch =
      follow_ ? 1u : std::max<std::uint32_t>(1u, opts_.batch);
  const std::size_t workers = std::min<std::size_t>(
      follow_ ? 1u : effective_threads(opts_.jobs), batch);
  sched_stats_.workers = workers;

  std::unique_ptr<ThreadPool> pool;
  std::vector<std::unique_ptr<support::WsDeque>> deques;
  std::vector<std::uint64_t> steal_counts(workers, 0);
  if (workers > 1) {
    pool = std::make_unique<ThreadPool>(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      deques.push_back(std::make_unique<support::WsDeque>(batch));
    }
  }

  std::vector<State*> drawn(batch, nullptr);
  std::vector<std::unique_ptr<TaskCtx>> tcs;
  std::uint64_t round = 0;

  while (!done) {
    ++round;
    if ((stop_flag_ != nullptr &&
         stop_flag_->load(std::memory_order_relaxed)) ||
        (stop_flag2_ != nullptr &&
         stop_flag2_->load(std::memory_order_relaxed))) {
      term = Termination::kCancelled;
      break;
    }
    if (sw.elapsed_seconds() > opts_.max_seconds) {
      term = Termination::kTimeout;
      break;
    }
    if ((round & 0xf) == 0) {
      const std::size_t mem = live_memory_estimate();
      stats_.peak_memory_bytes = std::max(stats_.peak_memory_bytes, mem);
      if (mem > opts_.max_memory_bytes) {
        term = Termination::kOutOfMemory;
        break;
      }
      if (budget_ != nullptr) {
        publish_shared(mem);
        if (budget_->instructions.load(std::memory_order_relaxed) >
            budget_->max_instructions) {
          term = Termination::kInstrLimit;
          break;
        }
        if (budget_->live_states.load(std::memory_order_relaxed) >
            budget_->max_live_states) {
          term = Termination::kStateLimit;
          break;
        }
        if (budget_->memory_bytes.load(std::memory_order_relaxed) >
            budget_->max_memory_bytes) {
          term = Termination::kOutOfMemory;
          break;
        }
      }
    }
    if (stats_.instructions > opts_.max_instructions) {
      term = Termination::kInstrLimit;
      break;
    }
    if (owned_.size() > opts_.max_live_states) {
      term = Termination::kStateLimit;
      break;
    }

    if (searcher_->empty()) {
      if (!suspended_.empty() && opts_.wake_suspended) {
        // No guided states remain: fall back to pure symbolic execution on
        // the suspended set (paper §V-C footnote: worst case equals pure).
        for (State* st : suspended_) {
          if (hook_ != nullptr) hook_->on_wake(*st);
          if (trace_ != nullptr) {
            trace_->emit(obs::EventKind::kStateWake,
                         static_cast<std::int64_t>(st->id));
          }
          searcher_->add(st);
        }
        stats_.wakes += suspended_.size();
        suspended_.clear();
        continue;
      }
      term = Termination::kExhausted;
      break;
    }

    // Draw the round's batch in canonical searcher order.
    const auto n = static_cast<std::uint32_t>(
        std::min<std::size_t>(batch, searcher_->size()));
    for (std::uint32_t i = 0; i < n; ++i) drawn[i] = searcher_->select();

    if (getenv("STATSYM_DEBUG_SCHED") && (round % 256) == 0) {
      fprintf(stderr,
              "round=%llu n=%u live=%zu susp=%zu st=%llu m=%d d=%d fn=%s "
              "instrs=%llu\n",
              (unsigned long long)round, n, owned_.size(), suspended_.size(),
              (unsigned long long)drawn[0]->id, drawn[0]->guide.matched,
              drawn[0]->guide.diverted,
              m_.function(drawn[0]->top().func).name.c_str(),
              (unsigned long long)stats_.instructions);
    }

    tcs.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
      tcs.push_back(std::make_unique<TaskCtx>(*this));
    }
    ++sched_stats_.rounds;
    sched_stats_.tasks += n;

    if (pool == nullptr || n == 1) {
      // Inline execution (jobs=1, or a round of one): the same tasks run in
      // draw order — identical results, no scheduling at all.
      for (std::uint32_t i = 0; i < n; ++i) run_task(*drawn[i], *tcs[i]);
    } else {
      const std::size_t active = std::min<std::size_t>(workers, n);
      for (std::uint32_t i = 0; i < n; ++i) {
        deques[i % active]->push(i);
      }
      pool->parallel_for(active, [&](std::size_t w) {
        std::uint32_t idx = 0;
        for (;;) {
          if (deques[w]->pop(idx)) {
            run_task(*drawn[idx], *tcs[idx]);
            continue;
          }
          bool ran = false;
          for (std::size_t off = 1; off < active && !ran; ++off) {
            if (deques[(w + off) % active]->steal(idx)) {
              ++steal_counts[w];
              run_task(*drawn[idx], *tcs[idx]);
              ran = true;
            }
          }
          if (!ran) break;
        }
      });
    }

    for (std::uint32_t i = 0; i < n && !done; ++i) {
      commit_task(drawn[i], *tcs[i], result, term, done);
    }
  }
  for (const std::uint64_t s : steal_counts) sched_stats_.steals += s;

  // In keep-exploring mode a completed exploration that did find a fault
  // still reports success.
  if (result.vuln.has_value() && term == Termination::kExhausted) {
    term = Termination::kFoundFault;
  }
  // Budget/cancellation stops leave the followed state alive: capture its
  // partial path so already-recorded decisions stay sliceable.
  if (follow_ && followed_pc_.empty() && !owned_.empty()) {
    followed_pc_ = owned_.begin()->second->pc.list();
  }

  release_shared();
  stats_.seconds = sw.elapsed_seconds();
  stats_.peak_live_states = std::max(stats_.peak_live_states, owned_.size());
  stats_.paths_explored = stats_.paths_completed + owned_.size();
  if (trace_ != nullptr) {
    trace_->emit(obs::EventKind::kExecEnd, static_cast<std::int64_t>(term),
                 static_cast<std::int64_t>(owned_.size()),
                 static_cast<std::int64_t>(suspended_.size()));
  }
  result.termination = term;
  result.stats = stats_;
  result.solver_stats = solver_stats_acc_;
  result.solver_stats += main_ctx_->solver.stats();
  result.solver_stats += main_ctx_->validator_stats;
  return result;
}

}  // namespace statsym::symexec
