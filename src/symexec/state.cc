#include "symexec/state.h"

// Data-only; translation unit reserved for future out-of-line helpers.
namespace statsym::symexec {}
