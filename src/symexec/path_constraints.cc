#include "symexec/path_constraints.h"

namespace statsym::symexec {

PathConstraints::Quick PathConstraints::add(solver::ExprPool& pool,
                                            solver::ExprId e) {
  if (pool.is_const(e)) {
    return pool.const_val(e) != 0 ? Quick::kSat : Quick::kUnsat;
  }
  if (present(e)) return Quick::kSat;  // already asserted
  list_.push_back(e);
  if (!solver::propagate(pool, e, true, domains_)) return Quick::kUnsat;
  const solver::Interval iv = solver::eval_interval(pool, e, domains_);
  if (iv.is_empty() || (iv.lo == 0 && iv.hi == 0)) return Quick::kUnsat;
  if (!iv.contains(0)) return Quick::kSat;
  return Quick::kUnknown;
}

PathConstraints::Quick PathConstraints::add_implied(solver::ExprPool& pool,
                                                    solver::ExprId e) {
  if (pool.is_const(e)) {
    return pool.const_val(e) != 0 ? Quick::kSat : Quick::kUnsat;
  }
  if (present(e)) return Quick::kSat;
  implied_.push_back(e);  // but NOT list_: implied constraints don't solve
  if (!solver::propagate(pool, e, true, domains_)) return Quick::kUnsat;
  const solver::Interval iv = solver::eval_interval(pool, e, domains_);
  if (iv.is_empty() || (iv.lo == 0 && iv.hi == 0)) return Quick::kUnsat;
  if (!iv.contains(0)) return Quick::kSat;
  return Quick::kUnknown;
}

PathConstraints::Quick PathConstraints::probe(solver::ExprPool& pool,
                                              solver::ExprId e) const {
  if (pool.is_const(e)) {
    return pool.const_val(e) != 0 ? Quick::kSat : Quick::kUnsat;
  }
  // Copies the overlay and shares the frozen chain — cheap even on deep
  // paths, which is what keeps the per-branch probe O(recent narrowings).
  solver::DomainMap d = domains_;
  if (!solver::propagate(pool, e, true, d)) return Quick::kUnsat;
  const solver::Interval iv = solver::eval_interval(pool, e, d);
  if (iv.is_empty() || (iv.lo == 0 && iv.hi == 0)) return Quick::kUnsat;
  if (!iv.contains(0)) return Quick::kSat;
  return Quick::kUnknown;
}

}  // namespace statsym::symexec
