// The symbolic executor — the repository's KLEE analogue.
//
// Explores a mini-IR module by forking states at satisfiable branch
// directions, accumulating path constraints, and reporting the first
// solver-validated fault as a vulnerable path together with a concrete
// crashing input reconstructed from the model. Search order is pluggable
// (symexec/searcher.h); StatSym's statistics-guided policy plugs in through
// the same interface plus a GuidanceHook that observes function entry/exit
// (the paper's instrumented locations) and may inject predicate constraints
// or suspend states.
//
// Resource budgets (live states, modelled memory, instructions, wall time)
// terminate exploration the way the paper's 12 GB server bounded KLEE: a
// run that exhausts memory before reaching the bug reports kOutOfMemory —
// the "Failed" rows of Table IV.
//
// Exploration is organised in fixed-width rounds (DESIGN.md §13): each round
// draws `batch` states from the searcher in canonical order, executes every
// drawn slice to completion — inline at jobs=1, across a work-stealing
// worker pool at jobs>1 — and commits the results strictly in draw order.
// Because the set of executed slices and the commit order are functions of
// `batch` alone, every observable output (stats, traces, findings, state
// ids) is byte-identical at any `jobs` value.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/facts.h"
#include "interp/interpreter.h"
#include "monitor/log.h"
#include "obs/trace.h"
#include "solver/cache.h"
#include "solver/solver.h"
#include "support/stopwatch.h"
#include "symexec/searcher.h"
#include "symexec/state.h"

namespace statsym::symexec {

// One program input string: either concrete or a symbolic buffer of
// `capacity` bytes (per-byte variables; the final byte is pinned to NUL so
// every path has a terminated string, the standard KLEE harness idiom).
struct SymStr {
  std::string name;
  std::int64_t capacity{0};   // symbolic only
  bool symbolic{false};
  std::string concrete;       // concrete only

  static SymStr fixed(std::string value) {
    SymStr s;
    s.concrete = std::move(value);
    return s;
  }
  static SymStr sym(std::string name, std::int64_t capacity) {
    SymStr s;
    s.name = std::move(name);
    s.capacity = capacity;
    s.symbolic = true;
    return s;
  }
};

// How program inputs are made symbolic (the per-application configuration
// the paper describes in §VII-A: option formats are given, payload strings
// are symbolic).
struct SymInputSpec {
  std::vector<SymStr> argv;
  std::vector<std::pair<std::string, SymStr>> env;
};

enum class Termination : std::uint8_t {
  kFoundFault,    // vulnerable path identified and validated
  kExhausted,     // every path within the input space explored, no fault
  kOutOfMemory,   // modelled state memory exceeded (the paper's "Failed")
  kStateLimit,    // live-state cap exceeded
  kInstrLimit,
  kTimeout,
  kCancelled,     // cooperative stop (portfolio sibling already won)
};

const char* termination_name(Termination t);

// Machine-global resource budget shared by every executor of a parallel
// portfolio. Each worker still enforces its own per-candidate ExecOptions
// caps; on top of that it periodically publishes its consumption here and
// stops when the *global* total is exhausted, so Table IV's "Failed =
// budget exhausted" keeps describing the machine, not one worker.
// `instructions` accumulates forever; `live_states`/`memory_bytes` are
// gauges — a finishing executor releases its contribution on exit.
struct SharedBudget {
  std::uint64_t max_instructions{~0ull};
  std::size_t max_live_states{~std::size_t{0}};
  std::size_t max_memory_bytes{~std::size_t{0}};

  std::atomic<std::uint64_t> instructions{0};
  std::atomic<std::size_t> live_states{0};
  std::atomic<std::size_t> memory_bytes{0};
};

// A discovered vulnerable path: fault point, location trace, constraints,
// and the reconstructed concrete input that triggers it.
struct VulnPath {
  interp::FaultKind kind{interp::FaultKind::kNone};
  std::string function;                   // fault-point function
  std::string detail;
  std::vector<monitor::LocId> trace;      // enter/leave events along the path
  std::vector<solver::ExprId> constraints;
  solver::Model model;
  bool model_valid{false};
  interp::RuntimeInput input;             // crashing input (replayable)
};

struct ExecStats {
  std::uint64_t instructions{0};
  std::uint64_t forks{0};
  std::uint64_t paths_completed{0};   // terminated: ok + infeasible + faults
  std::uint64_t paths_ok{0};
  std::uint64_t paths_infeasible{0};
  std::uint64_t faults_found{0};
  std::uint64_t suspensions{0};
  std::uint64_t wakes{0};
  std::size_t peak_live_states{0};
  std::size_t peak_memory_bytes{0};
  double seconds{0.0};

  // Paths the paper counts: completed plus the frontier still live at stop.
  std::uint64_t paths_explored{0};

  // Copy-on-write fork accounting: bytes clone_state actually copied versus
  // what an eager deep copy of the parent would have cost. Both are
  // schedule-invariant (forks and their parents' footprints are functions of
  // the explored paths, not of worker timing).
  std::uint64_t clone_bytes{0};
  std::uint64_t eager_clone_bytes{0};
};

// Scheduling telemetry for the parallel frontier. Schedule-DEPENDENT (steal
// counts vary run to run at jobs>1), so it is deliberately kept out of
// ExecStats, metrics and traces; exposed for benches and debugging only.
struct SchedStats {
  std::uint64_t rounds{0};
  std::uint64_t tasks{0};
  std::uint64_t steals{0};
  std::size_t workers{0};  // worker threads the run actually used
};

struct ExecResult {
  Termination termination{Termination::kExhausted};
  std::optional<VulnPath> vuln;
  ExecStats stats;
  solver::SolverStats solver_stats;
};

// One decision point shadow-recorded in follow (concolic) mode: the branch
// condition the concrete execution satisfied, its negation, and the length
// of the path-constraint prefix in force *before* the decision. The PC list
// is append-only, so `followed_path()[0..pc_prefix)` is exactly the prefix a
// concolic driver must conjoin with `negated` to steer a new input down the
// other side (generational search, SAGE-style).
struct Decision {
  solver::ExprId taken{solver::kNoExpr};
  solver::ExprId negated{solver::kNoExpr};
  std::size_t pc_prefix{0};
};

struct ExecOptions {
  SearcherKind searcher{SearcherKind::kDFS};
  std::uint64_t max_instructions{100'000'000};
  std::size_t max_live_states{200'000};
  std::size_t max_memory_bytes{512ull << 20};  // modelled, not process RSS
  double max_seconds{3600.0};
  std::int32_t max_call_depth{128};
  bool stop_at_first_fault{true};
  // When non-empty, only faults attributed to this function count as
  // findings; faults elsewhere end their path silently. Used by the
  // multi-vulnerability iteration (§III-C): while hunting one fault
  // cluster, the other (already identified or yet-to-be-hunted) bugs on the
  // way are treated as known and skipped.
  std::string target_function;
  std::uint64_t seed{1};
  // Escalate undecided quick feasibility checks to the full solver. Off by
  // default: interval propagation decides the overwhelming majority of fork
  // feasibility exactly for these workloads, and the optimistic mode never
  // prunes a feasible path — it may only walk infeasible ones, which die at
  // fault validation. Escalation buys precision at a large per-fork cost
  // (measured: ~250 ms/query on defang-style path conditions).
  bool escalate_unknown_forks{false};
  // When the searcher runs dry, wake suspended states and continue as pure
  // symbolic execution (the paper's worst-case-equals-pure guarantee).
  // StatSym's engine disables this and instead marks the candidate path
  // infeasible, moving on to the next candidate (§VII-C2, thttpd).
  bool wake_suspended{true};
  // Functions with this name prefix are library-internal (the IR stdlib):
  // fault reports name the innermost frame *outside* the prefix — faults
  // inside __strcpy are attributed to its caller, as a real debugger would
  // attribute a libc-level smash.
  std::string library_prefix{"__"};
  // Instructions executed per scheduling slice before the searcher picks
  // again.
  std::uint32_t slice{64};
  // Worker threads exploring this run's fork tree (0 = all hardware
  // threads). Determinism contract: the observable output is byte-identical
  // at any value — rounds are shaped by `batch`, every drawn slice runs to
  // completion in every schedule, and results commit in draw order. Composes
  // with the engine portfolio (effective concurrency = lanes × jobs).
  std::size_t jobs{1};
  // States drawn per exploration round — the canonical scheduling unit and
  // the upper bound on useful `jobs`. Changing it changes exploration order
  // (and goldens); changing `jobs` never does. Follow mode forces 1.
  std::uint32_t batch{1};
  solver::SolverOptions solver_opts{};
  // Fault validation is one query per reported vulnerability and decides
  // whether the finding (and its generated crashing input) is real, so it
  // gets a far larger budget than fork-time queries.
  solver::SolverOptions fault_solver_opts{.max_search_nodes = 400'000,
                                          .max_query_seconds = 10.0};
};

class SymExecutor;

// Observation/intervention point for statistics-guided search. Called at
// every function entry and exit with the location id; the hook may add
// predicate constraints (via SymExecutor::add_constraint) and decide the
// state's fate.
class GuidanceHook {
 public:
  enum class Action : std::uint8_t { kContinue, kSuspend };
  virtual ~GuidanceHook() = default;
  virtual Action on_location(SymExecutor& ex, State& st,
                             monitor::LocId loc) = 0;
  // Notification that a suspended state is being woken because no guided
  // states remain (the paper's fall-back to pure symbolic execution).
  virtual void on_wake(State& st) = 0;
};

class SymExecutor {
 public:
  SymExecutor(const ir::Module& m, SymInputSpec spec, ExecOptions opts);

  // Must be set before run() if guidance is desired.
  void set_guidance(GuidanceHook* hook) { hook_ = hook; }
  // Replaces the default searcher built from opts.searcher.
  void set_searcher(std::unique_ptr<Searcher> s) { searcher_ = std::move(s); }
  // Cooperative cancellation: run() polls the flag between scheduling slices
  // and terminates with kCancelled once it reads true. The flag must outlive
  // the run. Lower-latency than a hard stop and keeps per-state invariants.
  void set_stop_flag(const std::atomic<bool>* flag) { stop_flag_ = flag; }
  // Second cancellation source, polled alongside the first. Used when this
  // executor runs inside a portfolio candidate that itself races inside an
  // engine lane: either level's cancellation stops the run.
  void set_extra_stop_flag(const std::atomic<bool>* flag) {
    stop_flag2_ = flag;
  }
  // Concolic follow mode: execution is driven by `input` instead of forking.
  // Every symbolic input variable is bound to the concrete value `input`
  // induces (missing entries default exactly as the concrete interpreter
  // defaults them), every decision point — branch, assert, division by zero,
  // symbolic address bounds — is resolved by evaluating its condition under
  // that valuation, and the taken/negated condition pair is recorded in
  // decisions(). Exactly one path executes; guidance must not be set.
  void set_follow_input(interp::RuntimeInput input) {
    follow_ = true;
    follow_input_ = std::move(input);
  }
  bool follow_mode() const { return follow_; }
  // Static program facts (must outlive the run): branches the whole-program
  // analysis decided are taken without a feasibility query and without
  // creating the statically-dead sibling (counted in
  // SolverStats::static_prunes, traced as static-prune events). Follow mode
  // ignores the facts — the driving input dictates every direction anyway.
  void set_facts(const analysis::ProgramFacts* facts) { facts_ = facts; }
  // Opt this executor into a cross-worker budget (must outlive the run).
  void set_shared_budget(SharedBudget* budget) { budget_ = budget; }
  // Opt this executor's solvers (fork-time and fault validation) into a
  // cross-worker query cache (must outlive the run). Only canonical solve
  // results cross workers, so sharing never perturbs per-candidate
  // determinism — see DESIGN.md §"Solver". Without one, run() creates a
  // run-local shared cache so round tasks still reuse each other's solves.
  void set_shared_solver_cache(solver::SharedQueryCache* cache);
  // Opt this executor into structured tracing (must outlive the run): state
  // fork/suspend/wake/terminate events plus the solvers' query events land
  // in `trace` in commit order — per-task events are buffered and stitched
  // back at commit, so the stream is byte-identical at any `jobs` (see
  // obs/trace.h).
  void set_trace(obs::TraceBuffer* trace);

  ExecResult run();

  // --- services (for guidance hooks and tests) ----------------------------
  const ir::Module& module() const { return m_; }
  solver::ExprPool& pool() { return pool_; }
  solver::Solver& solver();
  const SchedStats& sched_stats() const { return sched_stats_; }

  // Quick-then-full feasibility of pc ∧ e for a state.
  bool feasible(State& st, solver::ExprId e);

  // Adds e to the state's path constraints; returns false when the state
  // becomes infeasible.
  bool add_constraint(State& st, solver::ExprId e);

  // Picks a concrete value for `e` consistent with the state's constraints
  // and pins it (adds e == value). Used for symbolic addresses/bitwise ops.
  std::int64_t concretize(State& st, solver::ExprId e);

  // --- follow-mode results (valid after run()) ----------------------------
  // The decision points of the followed path, in execution order.
  const std::vector<Decision>& decisions() const { return decisions_; }
  // The followed path's full constraint list (prefix slices per Decision).
  const std::vector<solver::ExprId>& followed_path() const {
    return followed_pc_;
  }
  // The concrete valuation the driving input induced on the input variables.
  const solver::Model& follow_valuation() const { return follow_vals_; }
  // Rebuilds a concrete RuntimeInput from a model over this run's input
  // variables (unconstrained bytes default to their domain minimum). This is
  // how a concolic driver turns a negation-query model into the next
  // concrete input, and it is total: every spec entry appears in the result.
  interp::RuntimeInput input_from_model(const solver::Model& model) const {
    return reconstruct_input(model);
  }

 private:
  enum class StepResult : std::uint8_t {
    kContinue,
    kForked,       // the task context's sibling holds the new state
    kTerminated,   // normal return from main
    kInfeasible,   // current path proven unsat
    kFault,        // fault recorded in the task context's pending_vuln
    kSuspend,      // guidance suspended the state
  };

  // Input registries for model reconstruction.
  struct SymBufReg {
    std::string name;
    std::vector<solver::VarId> vars;  // one per byte
  };

  // Everything one scheduling slice touches besides its own State lives
  // here: one fresh instance per drawn task, reached through a thread-local
  // pointer so the deep step()/hook call tree needs no plumbing. Fresh local
  // caches per task make a task's behaviour independent of which worker ran
  // it and of which tasks shared that worker — the core of the any-jobs
  // determinism argument (cross-task reuse goes through the shared cache,
  // whose hits are bit-identical to the canonical solves they replace).
  struct TaskCtx {
    explicit TaskCtx(SymExecutor& ex);

    solver::QueryCache cache;             // local per-slice query cache
    solver::Solver solver;                // fork-time solver
    solver::SolverStats validator_stats;  // fault-validation + static prunes
    obs::TraceBuffer trace;               // stitched into trace_ at commit
    obs::TraceBuffer* trace_sink{nullptr};  // null = tracing off
    std::unique_ptr<State> sibling;       // set by exec_branch on fork
    std::optional<VulnPath> pending_vuln;
    StepResult mem_step_result{StepResult::kContinue};
    ExecStats delta;                      // instructions/forks/clone bytes
    std::vector<SymBufReg> new_bufs;      // registered this slice, uncommitted
    std::vector<std::pair<std::string, solver::VarId>> new_ints;
    StepResult last{StepResult::kContinue};  // how the slice ended
    bool requeue{true};
  };

  // The active task context: the thread-local one while a slice runs, the
  // persistent main context otherwise (construction, follow bookkeeping,
  // out-of-run service calls from tests).
  TaskCtx& ctx();
  const TaskCtx& ctx() const;
  // The active trace sink (null when tracing is off).
  obs::TraceBuffer* tr_sink() { return ctx().trace_sink; }

  void build_initial_state();
  // `follow_value`: the concrete string driving this input in follow mode
  // (null otherwise) — per-byte values land in follow_vals_.
  ObjId make_input_object(State& st, const SymStr& s, const std::string& label,
                          const std::string* follow_value = nullptr);

  // Follow-mode helpers: evaluate an expression under the concrete
  // valuation, and record a decision point before constraining to `taken`.
  std::int64_t follow_eval(solver::ExprId e) const;
  void follow_decide(State& st, solver::ExprId taken, solver::ExprId negated);

  StepResult step(State& st);
  StepResult exec_call(State& st, const ir::Instr& in);
  StepResult exec_ret(State& st, const ir::Instr& in);
  StepResult exec_branch(State& st, const ir::Instr& in);
  StepResult exec_bin(State& st, const ir::Instr& in);
  // Returns true and the concrete address when the access can proceed;
  // returns false after recording a fault / infeasibility (result in
  // mem_step_result_).
  bool resolve_address(State& st, const ir::Instr& in, const SymValue& refv,
                       const SymValue& idxv, bool is_store,
                       std::int64_t& addr_out);

  StepResult fault_state(State& st, interp::FaultKind kind, std::string detail);
  StepResult apply_hook(State& st, monitor::LocId loc);

  // Reconstructs a concrete RuntimeInput from a model (unconstrained bytes
  // default to their domain minimum).
  interp::RuntimeInput reconstruct_input(const solver::Model& model) const;

  // Copy-on-write fork: freezes `st`'s private suffixes and returns an
  // arena-recycled sibling sharing every frozen prefix. The sibling's id is
  // assigned at commit, in draw order.
  std::unique_ptr<State> clone_state(State& st);

  // Registry writes are buffered in the task context during a slice and
  // merged (name-deduplicated) at commit; outside a slice they go straight
  // to the run-level registries.
  void register_sym_buf(SymBufReg reg);
  void register_sym_int(const std::string& name, solver::VarId v);

  // Executes one scheduling slice of `st` under `tc` (sets the thread-local
  // context for the duration). Safe to call concurrently for distinct tasks.
  void run_task(State& st, TaskCtx& tc);
  // Applies one completed task's results in draw order; may finish the run.
  void commit_task(State* st, TaskCtx& tc, ExecResult& result,
                   Termination& term, bool& done);
  // Removes a finished state from owned_ and recycles its shell.
  void destroy_state(State* st);

  std::size_t live_memory_estimate() const;

  // Publishes consumption deltas into budget_ (instructions cumulative,
  // states/memory as gauges) / releases this worker's gauge contributions
  // when the run ends. No-ops without a shared budget.
  void publish_shared(std::size_t mem_estimate);
  void release_shared();

  const ir::Module& m_;
  SymInputSpec spec_;
  ExecOptions opts_;
  solver::ExprPool pool_;
  solver::SharedQueryCache* shared_cache_{nullptr};
  // Run-local fallback shared cache (created by run() when no cross-worker
  // cache was injected) so round tasks still reuse each other's solves.
  std::unique_ptr<solver::SharedQueryCache> own_shared_cache_;
  // Persistent context for everything outside a slice; per-task contexts are
  // created fresh each round. tls_ctx_ points at the running task's context.
  std::unique_ptr<TaskCtx> main_ctx_;
  static thread_local TaskCtx* tls_ctx_;
  // Solver counters committed from finished tasks, in draw order.
  solver::SolverStats solver_stats_acc_;
  Rng rng_;

  std::unique_ptr<Searcher> searcher_;
  // All live states (pending, running, suspended), keyed by state id.
  std::unordered_map<std::uint64_t, std::unique_ptr<State>> owned_;
  std::vector<State*> suspended_;
  GuidanceHook* hook_{nullptr};
  const analysis::ProgramFacts* facts_{nullptr};
  const std::atomic<bool>* stop_flag_{nullptr};
  const std::atomic<bool>* stop_flag2_{nullptr};
  obs::TraceBuffer* trace_{nullptr};
  SharedBudget* budget_{nullptr};
  // Last values published into budget_ (deltas keep the gauges exact).
  std::uint64_t published_instrs_{0};
  std::size_t published_states_{0};
  std::size_t published_mem_{0};

  std::uint64_t next_state_id_{1};
  ExecStats stats_;
  SchedStats sched_stats_;
  StateArena arena_;

  // Program-input objects created in the initial state (the ids are copied
  // into every fork along with the rest of the state).
  std::vector<ObjId> argv_objs_;
  std::map<std::string, ObjId> env_objs_;

  std::vector<SymBufReg> sym_bufs_;
  std::map<std::string, solver::VarId> sym_ints_;

  // --- follow (concolic) mode ---------------------------------------------
  bool follow_{false};
  interp::RuntimeInput follow_input_;
  solver::Model follow_vals_;          // input var -> concrete value
  std::vector<Decision> decisions_;
  std::vector<solver::ExprId> followed_pc_;
};

}  // namespace statsym::symexec
