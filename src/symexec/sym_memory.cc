#include "symexec/sym_memory.h"

#include <cassert>

namespace statsym::symexec {

ObjId SymMemory::alloc(std::int64_t size, std::string label) {
  assert(size > 0);
  const ObjId id = next_id_++;
  auto obj = std::make_shared<SymObject>();
  obj->bytes.assign(static_cast<std::size_t>(size), SymByte::concrete(0));
  obj->label = std::move(label);
  objects_.emplace(id, std::move(obj));
  return id;
}

std::int64_t SymMemory::size(ObjId id) const {
  auto it = objects_.find(id);
  assert(it != objects_.end());
  return static_cast<std::int64_t>(it->second->bytes.size());
}

const std::string& SymMemory::label(ObjId id) const {
  auto it = objects_.find(id);
  assert(it != objects_.end());
  return it->second->label;
}

SymByte SymMemory::read(ObjId id, std::int64_t addr) const {
  auto it = objects_.find(id);
  assert(it != objects_.end());
  assert(addr >= 0 &&
         addr < static_cast<std::int64_t>(it->second->bytes.size()));
  return it->second->bytes[static_cast<std::size_t>(addr)];
}

void SymMemory::write(ObjId id, std::int64_t addr, SymByte byte) {
  auto it = objects_.find(id);
  assert(it != objects_.end());
  assert(addr >= 0 &&
         addr < static_cast<std::int64_t>(it->second->bytes.size()));
  if (it->second.use_count() > 1) {
    // Copy-on-write: another forked state shares this object.
    it->second = std::make_shared<SymObject>(*it->second);
    ++cow_clones_;
  }
  it->second->bytes[static_cast<std::size_t>(addr)] = byte;
}

std::int64_t SymMemory::concrete_strlen(ObjId id, std::int64_t off) const {
  std::int64_t n = 0;
  for (std::int64_t a = off; a < size(id); ++a, ++n) {
    const SymByte b = read(id, a);
    if (b.is_sym || b.b == 0) break;
  }
  return n;
}

std::size_t SymMemory::approx_bytes() const {
  std::size_t total = 0;
  for (const auto& [id, obj] : objects_) {
    // Charge each sharer proportionally so the fleet-wide sum approximates
    // real footprint; uniquely-owned objects are charged in full.
    total += (obj->bytes.size() * sizeof(SymByte)) /
             static_cast<std::size_t>(obj.use_count());
    total += 64;  // map-entry overhead
  }
  return total;
}

}  // namespace statsym::symexec
