#include "symexec/searcher.h"

namespace statsym::symexec {

const char* searcher_kind_name(SearcherKind k) {
  switch (k) {
    case SearcherKind::kDFS: return "dfs";
    case SearcherKind::kBFS: return "bfs";
    case SearcherKind::kRandomPath: return "random-path";
    case SearcherKind::kCoverageOptimized: return "coverage";
  }
  return "?";
}

State* DfsSearcher::select() {
  if (stack_.empty()) return nullptr;
  State* st = stack_.back();
  stack_.pop_back();
  return st;
}

State* BfsSearcher::select() {
  if (queue_.empty()) return nullptr;
  State* st = queue_.front();
  queue_.pop_front();
  return st;
}

State* RandomPathSearcher::select() {
  if (states_.empty()) return nullptr;
  const std::size_t i = static_cast<std::size_t>(
      rng_.uniform(0, static_cast<std::int64_t>(states_.size()) - 1));
  State* st = states_[i];
  states_[i] = states_.back();
  states_.pop_back();
  return st;
}

void CoverageSearcher::note_visit(ir::FuncId f, ir::BlockId b) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(f)) << 32) |
      static_cast<std::uint32_t>(b);
  ++visit_counts_[key];
}

std::uint64_t CoverageSearcher::visits(ir::FuncId f, ir::BlockId b) const {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(f)) << 32) |
      static_cast<std::uint32_t>(b);
  auto it = visit_counts_.find(key);
  return it == visit_counts_.end() ? 0 : it->second;
}

State* CoverageSearcher::select() {
  if (states_.empty()) return nullptr;
  std::vector<double> weights;
  weights.reserve(states_.size());
  for (const State* st : states_) {
    const Frame& f = st->top();
    weights.push_back(1.0 / (1.0 + static_cast<double>(visits(f.func, f.block))));
  }
  const std::size_t i = rng_.weighted_pick(weights);
  State* st = states_[i];
  states_[i] = states_.back();
  states_.pop_back();
  return st;
}

std::unique_ptr<Searcher> make_searcher(SearcherKind kind, Rng rng) {
  switch (kind) {
    case SearcherKind::kDFS:
      return std::make_unique<DfsSearcher>();
    case SearcherKind::kBFS:
      return std::make_unique<BfsSearcher>();
    case SearcherKind::kRandomPath:
      return std::make_unique<RandomPathSearcher>(rng);
    case SearcherKind::kCoverageOptimized:
      return std::make_unique<CoverageSearcher>(rng);
  }
  return nullptr;
}

}  // namespace statsym::symexec
