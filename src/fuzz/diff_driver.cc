#include "fuzz/diff_driver.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>

#include "analysis/facts.h"
#include "concolic/concolic.h"
#include "interp/interpreter.h"
#include "ir/printer.h"
#include "ir/rewrite.h"
#include "ir/verifier.h"
#include "statsym/engine.h"
#include "support/strings.h"
#include "support/thread_pool.h"
#include "symexec/executor.h"

namespace statsym::fuzz {

const char* oracle_name(Oracle o) {
  switch (o) {
    case Oracle::kNone: return "ok";
    case Oracle::kDifferential: return "differential";
    case Oracle::kPipeline: return "pipeline";
    case Oracle::kGuidedSoundness: return "guided-soundness";
    case Oracle::kCrossEngine: return "cross-engine";
    case Oracle::kStaticFacts: return "static-facts";
  }
  return "?";
}

namespace {

namespace fs = std::filesystem;

// Renders a RuntimeInput as a fully-concrete SymInputSpec (the concretised
// executor sees the exact strings the interpreter ran).
symexec::SymInputSpec concretize(const interp::RuntimeInput& in) {
  symexec::SymInputSpec spec;
  for (const auto& a : in.argv) spec.argv.push_back(symexec::SymStr::fixed(a));
  for (const auto& [k, v] : in.env) {
    spec.env.emplace_back(k, symexec::SymStr::fixed(v));
  }
  return spec;
}

interp::RuntimeInput payload_input(std::int64_t len) {
  interp::RuntimeInput in;
  in.argv = {"fuzz", std::string(static_cast<std::size_t>(len), 'a')};
  return in;
}

symexec::ExecOptions concretized_exec_options() {
  symexec::ExecOptions o;
  o.stop_at_first_fault = true;
  o.max_instructions = 20'000'000;
  o.max_seconds = 30.0;
  return o;
}

// One oracle-(a) comparison. Returns a non-empty description on divergence.
std::string compare_engines(const ir::Module& m,
                            const interp::RuntimeInput& input) {
  interp::Interpreter it(m, input);
  const interp::RunResult concrete = it.run();

  symexec::SymExecutor ex(m, concretize(input), concretized_exec_options());
  const symexec::ExecResult symbolic = ex.run();

  const std::int64_t len =
      input.argv.size() > 1 ? static_cast<std::int64_t>(input.argv[1].size())
                            : -1;
  auto tag = [&](const std::string& what) {
    return "len=" + std::to_string(len) + ": " + what;
  };

  if (concrete.outcome == interp::RunOutcome::kFault) {
    if (symbolic.termination != symexec::Termination::kFoundFault) {
      return tag("interpreter faulted in " + concrete.fault.function +
                 " but symexec terminated " +
                 symexec::termination_name(symbolic.termination));
    }
    if (!symbolic.vuln.has_value()) return tag("symexec fault without vuln");
    if (symbolic.vuln->function != concrete.fault.function) {
      return tag("fault function mismatch: interp=" + concrete.fault.function +
                 " symexec=" + symbolic.vuln->function);
    }
    if (symbolic.vuln->kind != concrete.fault.kind) {
      return tag(std::string("fault kind mismatch: interp=") +
                 interp::fault_kind_name(concrete.fault.kind) +
                 " symexec=" + interp::fault_kind_name(symbolic.vuln->kind));
    }
    return {};
  }
  if (concrete.outcome != interp::RunOutcome::kOk) {
    return tag("interpreter hit the step limit (generator invariant broken)");
  }
  if (symbolic.termination != symexec::Termination::kExhausted) {
    return tag(std::string("interpreter ok but symexec terminated ") +
               symexec::termination_name(symbolic.termination));
  }
  if (symbolic.stats.paths_explored != 1 || symbolic.stats.forks != 0) {
    return tag("concrete input explored " +
               std::to_string(symbolic.stats.paths_explored) + " paths / " +
               std::to_string(symbolic.stats.forks) + " forks (want 1 / 0)");
  }
  return {};
}

// Ground-truth check: the interpreter outcome on `input` must match the
// planted predicate len >= T. Non-empty description on violation.
std::string check_ground_truth(const GeneratedProgram& prog,
                               const interp::RuntimeInput& input) {
  interp::Interpreter it(prog.app.module, input);
  const interp::RunResult r = it.run();
  const auto len = static_cast<std::int64_t>(input.argv[1].size());
  const bool should_fault =
      prog.fault_planted && len >= prog.app.crash_threshold;
  const bool faulted = r.outcome == interp::RunOutcome::kFault;
  if (faulted != should_fault) {
    return "len=" + std::to_string(len) + ": expected " +
           (should_fault ? "fault" : "clean run") + ", interpreter says " +
           (faulted ? "fault in " + r.fault.function : "clean");
  }
  if (faulted && (r.fault.function != prog.app.vuln_function ||
                  r.fault.kind != prog.app.vuln_kind)) {
    return "len=" + std::to_string(len) + ": fault " +
           interp::fault_kind_name(r.fault.kind) + " in " + r.fault.function +
           " does not match planted " +
           interp::fault_kind_name(prog.app.vuln_kind) + " in " +
           prog.app.vuln_function;
  }
  return {};
}

core::EngineOptions engine_options(const GeneratedProgram& prog,
                                   const DiffOptions& opts) {
  core::EngineOptions eo;
  eo.monitor.sampling_rate = opts.sampling_rate;
  eo.target_correct_logs = opts.target_logs;
  eo.target_faulty_logs = opts.target_logs;
  eo.max_workload_runs = opts.max_workload_runs;
  eo.exec.max_instructions = opts.engine_max_instructions;
  eo.exec.max_seconds = opts.engine_max_seconds;
  eo.exec.max_live_states = 50'000;
  eo.exec.max_memory_bytes = 128ull << 20;
  eo.candidate_timeout_seconds = opts.engine_max_seconds;
  eo.max_candidates_tried = 8;
  // Determinism across --jobs comes from one engine per program; programs
  // are the parallelism axis, so each engine runs single-threaded.
  eo.num_threads = 1;
  eo.candidate_portfolio_width = 1;
  eo.seed = derive_seed(prog.seed, 0x10adu);
  // The engine list drives the Phase-3 lane race; with the default single
  // guided entry the classic portfolio path runs unchanged.
  eo.engines = opts.engines;
  return eo;
}

struct PipelineOutcome {
  core::EngineResult result;
  std::string failure;  // empty = oracle (b) satisfied
};

// Runs the full pipeline and applies the oracle-(b) judgement.
PipelineOutcome run_pipeline(const GeneratedProgram& prog,
                             const ir::Module& module,
                             const DiffOptions& opts) {
  PipelineOutcome out;
  core::StatSymEngine engine(module, prog.app.sym_spec,
                             engine_options(prog, opts));
  engine.collect_logs(prog.app.workload);
  out.result = engine.run();
  const core::EngineResult& res = out.result;

  if (!prog.fault_planted) {
    if (res.found) {
      out.failure = "pipeline reported a vulnerability in a fault-free "
                    "program (candidate #" +
                    std::to_string(res.winning_candidate) + ")";
    }
    return out;
  }
  if (!res.found) {
    out.failure = "pipeline did not verify the planted fault (" +
                  std::to_string(res.construction.candidates.size()) +
                  " candidates, " + std::to_string(res.num_faulty_logs) +
                  " faulty logs)";
    return out;
  }
  if (res.vuln->function != prog.app.vuln_function) {
    out.failure = "pipeline verified " + res.vuln->function +
                  " instead of planted " + prog.app.vuln_function;
    return out;
  }
  interp::Interpreter replay(module, res.vuln->input);
  const interp::RunResult rr = replay.run();
  if (rr.outcome != interp::RunOutcome::kFault ||
      rr.fault.function != prog.app.vuln_function) {
    out.failure = "generated crashing input does not replay in " +
                  prog.app.vuln_function;
  }
  return out;
}

symexec::ExecOptions pure_options(const DiffOptions& opts,
                                  const std::string& target) {
  symexec::ExecOptions po;
  po.searcher = symexec::SearcherKind::kDFS;
  po.stop_at_first_fault = true;
  po.target_function = target;
  po.max_instructions = opts.pure_max_instructions;
  po.max_seconds = opts.pure_max_seconds;
  po.max_live_states = 100'000;
  po.max_memory_bytes = 256ull << 20;
  return po;
}

// Oracle (c): non-empty description when pure execution cannot reproduce the
// guided finding.
std::string check_soundness(const GeneratedProgram& prog,
                            const ir::Module& module,
                            const core::EngineResult& res,
                            const DiffOptions& opts) {
  if (!res.found) return {};
  const auto pr = core::run_pure_symbolic(
      module, prog.app.sym_spec, pure_options(opts, res.vuln->function));
  if (pr.termination != symexec::Termination::kFoundFault) {
    return "guided mode verified " + res.vuln->function +
           " but pure execution terminated " +
           std::string(symexec::termination_name(pr.termination));
  }
  return {};
}

// --- oracle (d): cross-engine equivalence ---------------------------------

struct EngineFinding {
  core::EngineKind kind{core::EngineKind::kGuided};
  bool found{false};
  std::string function;
  interp::FaultKind fault_kind{interp::FaultKind::kNone};
  interp::RuntimeInput witness;
  std::uint64_t concolic_runs{0};
};

std::vector<core::EngineKind> unique_engines(const DiffOptions& opts) {
  std::vector<core::EngineKind> out;
  for (core::EngineKind k : opts.engines) {
    if (std::find(out.begin(), out.end(), k) == out.end()) out.push_back(k);
  }
  return out;
}

EngineFinding run_pure_engine(const GeneratedProgram& prog,
                              const ir::Module& module,
                              const DiffOptions& opts) {
  EngineFinding f;
  f.kind = core::EngineKind::kPure;
  const std::string target =
      prog.fault_planted ? prog.app.vuln_function : std::string();
  const auto pr = core::run_pure_symbolic(module, prog.app.sym_spec,
                                          pure_options(opts, target));
  if (pr.termination == symexec::Termination::kFoundFault &&
      pr.vuln.has_value()) {
    f.found = true;
    f.function = pr.vuln->function;
    f.fault_kind = pr.vuln->kind;
    f.witness = pr.vuln->input;
  }
  return f;
}

EngineFinding run_concolic_engine(const GeneratedProgram& prog,
                                  const ir::Module& module,
                                  const DiffOptions& opts) {
  EngineFinding f;
  f.kind = core::EngineKind::kConcolic;
  concolic::ConcolicOptions co;
  co.exec.max_instructions = opts.engine_max_instructions;
  co.exec.max_seconds = opts.engine_max_seconds;
  co.exec.max_live_states = 50'000;
  co.exec.max_memory_bytes = 128ull << 20;
  if (prog.fault_planted) co.exec.target_function = prog.app.vuln_function;
  co.seed = derive_seed(prog.seed, 0xc0c0u);
  concolic::ConcolicExecutor ex(module, prog.app.sym_spec, co);
  const concolic::ConcolicResult cr = ex.run();
  f.concolic_runs = cr.stats.runs;
  if (cr.vuln.has_value()) {
    f.found = true;
    f.function = cr.vuln->function;
    f.fault_kind = cr.vuln->kind;
    f.witness = cr.vuln->input;
  }
  return f;
}

// Test-only: sabotage the named engine's witness so the equivalence replay
// below must catch the disagreement (the empty payload never reaches the
// planted threshold, so every replay comes back clean).
void maybe_corrupt_witness(EngineFinding& f, const DiffOptions& opts) {
  if (!f.found || opts.inject_witness_corruption.empty()) return;
  if (opts.inject_witness_corruption != core::engine_kind_name(f.kind)) return;
  f.witness = payload_input(0);
}

// Replays one engine's witness through the other execution engines: the
// concrete interpreter, the fully-concretised symbolic executor, and the
// follow-mode (concolic) executor over the original symbolic spec. All three
// must fault in the same function with the same kind the engine claimed.
std::string confirm_witness(const ir::Module& module,
                            const symexec::SymInputSpec& spec,
                            const EngineFinding& f) {
  const std::string who = core::engine_kind_name(f.kind);
  auto claim = [&] {
    return std::string(interp::fault_kind_name(f.fault_kind)) + " in " +
           f.function;
  };

  interp::Interpreter it(module, f.witness);
  const interp::RunResult rr = it.run();
  if (rr.outcome != interp::RunOutcome::kFault) {
    return who + " witness for " + claim() +
           " does not fault in the interpreter";
  }
  if (rr.fault.function != f.function || rr.fault.kind != f.fault_kind) {
    return who + " witness claims " + claim() + " but the interpreter sees " +
           interp::fault_kind_name(rr.fault.kind) + " in " + rr.fault.function;
  }

  symexec::SymExecutor ce(module, concretize(f.witness),
                          concretized_exec_options());
  const symexec::ExecResult cres = ce.run();
  if (cres.termination != symexec::Termination::kFoundFault ||
      !cres.vuln.has_value() || cres.vuln->function != f.function ||
      cres.vuln->kind != f.fault_kind) {
    return who + " witness for " + claim() +
           " not confirmed by the concretised symbolic executor (" +
           symexec::termination_name(cres.termination) + ")";
  }

  symexec::SymExecutor fe(module, spec, concretized_exec_options());
  fe.set_follow_input(f.witness);
  const symexec::ExecResult fres = fe.run();
  if (fres.termination != symexec::Termination::kFoundFault ||
      !fres.vuln.has_value() || fres.vuln->function != f.function ||
      fres.vuln->kind != f.fault_kind) {
    return who + " witness for " + claim() +
           " not confirmed by follow-mode execution (" +
           symexec::termination_name(fres.termination) + ")";
  }
  return {};
}

// Oracle (d). Non-empty description on the first engine disagreement. `diag`
// (when non-null) receives per-engine diagnostics even when the oracle
// passes; the shrink predicate passes null.
std::string check_cross_engine(const GeneratedProgram& prog,
                               const ir::Module& module,
                               const core::EngineResult& pipeline_result,
                               const DiffOptions& opts,
                               ProgramVerdict* diag) {
  const std::vector<core::EngineKind> kinds = unique_engines(opts);
  if (kinds.size() == 1 && kinds[0] == core::EngineKind::kGuided) return {};

  std::vector<EngineFinding> findings;
  for (core::EngineKind k : kinds) {
    EngineFinding f;
    switch (k) {
      case core::EngineKind::kGuided:
        f.kind = k;
        if (pipeline_result.found && pipeline_result.vuln.has_value()) {
          f.found = true;
          f.function = pipeline_result.vuln->function;
          f.fault_kind = pipeline_result.vuln->kind;
          f.witness = pipeline_result.vuln->input;
        }
        break;
      case core::EngineKind::kPure:
        f = run_pure_engine(prog, module, opts);
        break;
      case core::EngineKind::kConcolic:
        f = run_concolic_engine(prog, module, opts);
        break;
    }
    if (diag != nullptr) {
      if (k == core::EngineKind::kPure) diag->pure_found = f.found;
      if (k == core::EngineKind::kConcolic) {
        diag->concolic_found = f.found;
        diag->concolic_runs = f.concolic_runs;
      }
    }
    maybe_corrupt_witness(f, opts);
    findings.push_back(std::move(f));
  }

  // Detection agreement: on planted programs every engine must find the
  // planted fault; on benign ones none may find anything.
  for (const EngineFinding& f : findings) {
    const std::string who = core::engine_kind_name(f.kind);
    if (prog.fault_planted && !f.found) {
      return who + " engine missed the planted fault in " +
             prog.app.vuln_function;
    }
    if (!prog.fault_planted && f.found) {
      return who + " engine reported a fault in a benign program (" +
             f.function + ")";
    }
    if (f.found && f.function != prog.app.vuln_function) {
      return who + " engine found " + f.function + " instead of planted " +
             prog.app.vuln_function;
    }
  }

  // Witness equivalence: every witness must replay identically everywhere.
  for (const EngineFinding& f : findings) {
    if (!f.found) continue;
    const std::string err = confirm_witness(module, prog.app.sym_spec, f);
    if (!err.empty()) return err;
  }
  return {};
}

// --- oracle (e): static-facts soundness -----------------------------------

// The concrete fault a definite-bug finding predicts (kUseBeforeDef is a
// data-flow diagnostic, not a fault prediction, and is never mapped).
interp::FaultKind finding_fault(analysis::FindingKind k) {
  switch (k) {
    case analysis::FindingKind::kOobLoad: return interp::FaultKind::kOobLoad;
    case analysis::FindingKind::kOobStore: return interp::FaultKind::kOobStore;
    case analysis::FindingKind::kDivByZero:
      return interp::FaultKind::kDivByZero;
    case analysis::FindingKind::kAssertFail:
      return interp::FaultKind::kAssertFail;
    case analysis::FindingKind::kUseBeforeDef: break;
  }
  return interp::FaultKind::kNone;
}

// Listener that checks every concrete control-flow event against the static
// facts: entering a provably-unreachable block or taking a branch against a
// statically-decided direction falsifies the analysis. Records the first
// violation only.
class FactsObserver : public interp::InterpListener {
 public:
  FactsObserver(const ir::Module& m, const analysis::ProgramFacts& facts)
      : facts_(facts) {
    for (ir::FuncId f = 0;
         f < static_cast<ir::FuncId>(m.functions().size()); ++f) {
      ids_[m.function(f).name] = f;
    }
  }

  void on_enter(const interp::Interpreter&, const ir::Function&,
                std::span<const interp::Value>) override {}
  void on_leave(const interp::Interpreter&, const ir::Function&,
                std::span<const interp::Value>,
                const std::optional<interp::Value>&) override {}

  void on_block(const interp::Interpreter&, const ir::Function& fn,
                ir::BlockId block) override {
    if (!violation_.empty()) return;
    const ir::FuncId f = ids_.at(fn.name);
    if (!facts_.block_reachable(f, block)) {
      violation_ = fn.name + "() block " + std::to_string(block) +
                   " executed but statically unreachable";
    }
  }

  void on_branch(const interp::Interpreter&, const ir::Function& fn,
                 ir::BlockId block, bool taken) override {
    if (!violation_.empty()) return;
    const ir::FuncId f = ids_.at(fn.name);
    const analysis::BranchFact bf = facts_.branch(f, block);
    if ((bf == analysis::BranchFact::kAlwaysTrue && !taken) ||
        (bf == analysis::BranchFact::kAlwaysFalse && taken)) {
      violation_ = fn.name + "() block " + std::to_string(block) +
                   " branch went " + (taken ? "true" : "false") +
                   " against the statically-decided direction";
    }
  }

  const std::string& violation() const { return violation_; }

 private:
  const analysis::ProgramFacts& facts_;
  std::map<std::string, ir::FuncId> ids_;
  std::string violation_;
};

// Oracle (e), runtime half: the facts may not be contradicted by any of the
// concrete runs, and a program whose faults are all input-conditional (the
// generator's invariant for non-definite programs) may carry no definite-bug
// finding. Non-empty description on violation.
std::string check_static_facts(const GeneratedProgram& prog,
                               const ir::Module& module,
                               const std::vector<interp::RuntimeInput>& inputs) {
  const analysis::ProgramFacts facts = analysis::analyze(module);

  for (const auto& f : facts.findings()) {
    if (f.kind == analysis::FindingKind::kUseBeforeDef) continue;
    if (!prog.definite_bug) {
      return "definite finding in a program whose faults are all "
             "input-conditional: " +
             analysis::format_finding(module, f);
    }
  }

  for (const auto& input : inputs) {
    FactsObserver obs(module, facts);
    interp::Interpreter it(module, input);
    it.set_listener(&obs);
    it.run();
    if (!obs.violation().empty()) {
      const std::int64_t len =
          input.argv.size() > 1
              ? static_cast<std::int64_t>(input.argv[1].size())
              : -1;
      return "len=" + std::to_string(len) + ": " + obs.violation();
    }
  }
  return {};
}

// Oracle (e), lint half, run on the seed's force_definite_bug sibling: the
// analysis must prove the planted unconditional bug (so `statsym lint`
// reports it) and the finding must replay concretely — fault kind and
// function must match the finding, on an input that reaches the sink.
std::string check_lint_ground_truth(const GeneratedProgram& variant) {
  const ir::Module& module = variant.app.module;
  const analysis::ProgramFacts facts = analysis::analyze(module);

  const analysis::Finding* planted = nullptr;
  for (const auto& f : facts.findings()) {
    if (f.kind == analysis::FindingKind::kUseBeforeDef) continue;
    if (module.function(f.func).name == variant.app.vuln_function &&
        finding_fault(f.kind) == variant.app.vuln_kind) {
      planted = &f;
      break;
    }
  }
  if (planted == nullptr) {
    return "lint missed the planted definite " +
           std::string(interp::fault_kind_name(variant.app.vuln_kind)) +
           " in " + variant.app.vuln_function + " (" +
           std::to_string(facts.findings().size()) + " findings)";
  }

  // Any input reaches the sink (stages fall through unconditionally), so
  // the definite finding must replay on a minimal payload.
  interp::Interpreter it(module, payload_input(1));
  const interp::RunResult rr = it.run();
  if (rr.outcome != interp::RunOutcome::kFault ||
      rr.fault.function != variant.app.vuln_function ||
      rr.fault.kind != variant.app.vuln_kind) {
    return "lint finding '" + analysis::format_finding(module, *planted) +
           "' does not replay: interpreter " +
           (rr.outcome == interp::RunOutcome::kFault
                ? std::string(interp::fault_kind_name(rr.fault.kind)) +
                      " in " + rr.fault.function
                : std::string("clean"));
  }
  return {};
}

// Oracle (e), pipeline half: re-runs the full pipeline with the static
// analysis disabled; the verdict — found, fault identity, winning candidate,
// explored paths — must be identical. Pruning skips work, never answers.
std::string check_pipeline_equivalence(const GeneratedProgram& prog,
                                       const ir::Module& module,
                                       const core::EngineResult& on,
                                       const DiffOptions& opts) {
  core::EngineOptions eo = engine_options(prog, opts);
  eo.static_analysis = false;
  core::StatSymEngine engine(module, prog.app.sym_spec, eo);
  engine.collect_logs(prog.app.workload);
  const core::EngineResult off = engine.run();

  if (off.found != on.found) {
    return std::string("pipeline verdict flips with analysis off: on=") +
           (on.found ? "found" : "not-found") +
           " off=" + (off.found ? "found" : "not-found");
  }
  if (on.found && (off.vuln->function != on.vuln->function ||
                   off.vuln->kind != on.vuln->kind)) {
    return "pipeline fault identity changes with analysis off: on=" +
           on.vuln->function + "/" + interp::fault_kind_name(on.vuln->kind) +
           " off=" + off.vuln->function + "/" +
           interp::fault_kind_name(off.vuln->kind);
  }
  if (off.winning_candidate != on.winning_candidate) {
    return "winning candidate changes with analysis off: on=#" +
           std::to_string(on.winning_candidate) + " off=#" +
           std::to_string(off.winning_candidate);
  }
  if (off.paths_explored != on.paths_explored) {
    return "explored paths change with analysis off: on=" +
           std::to_string(on.paths_explored) +
           " off=" + std::to_string(off.paths_explored);
  }
  return {};
}

// --- shrinking ------------------------------------------------------------

std::size_t total_instrs(const ir::Module& m) {
  std::size_t n = 0;
  for (const auto& fn : m.functions()) n += fn.instr_count();
  return n;
}

using FailurePred = std::function<bool(const ir::Module&)>;

// Greedy delta debugging over whole functions, then blocks: a rewrite is
// kept when the module stays verifier-clean, strictly shrinks, and the
// original failure still reproduces. Strict shrinkage bounds the loop.
ir::Module shrink_module(ir::Module m, const FailurePred& still_fails,
                         std::size_t max_checks) {
  std::size_t checks = 0;
  auto try_adopt = [&](const ir::Module& candidate) {
    if (checks >= max_checks) return false;
    if (total_instrs(candidate) >= total_instrs(m)) return false;
    if (!ir::verify(candidate).empty()) return false;
    ++checks;
    if (!still_fails(candidate)) return false;
    m = candidate;
    return true;
  };

  bool changed = true;
  while (changed && checks < max_checks) {
    changed = false;
    // Pass 1: drop whole functions (largest cuts first by scanning all ids;
    // ids shift after every adoption, so restart the scan).
    for (ir::FuncId id = 0;
         id < static_cast<ir::FuncId>(m.functions().size());) {
      if (id == m.entry() || !try_adopt(ir::drop_function(m, id))) {
        ++id;
      } else {
        changed = true;
        id = 0;
      }
    }
    // Pass 2: stub surviving blocks down to `return 0`.
    for (ir::FuncId f = 0; f < static_cast<ir::FuncId>(m.functions().size());
         ++f) {
      const auto nblocks =
          static_cast<ir::BlockId>(m.function(f).blocks.size());
      for (ir::BlockId b = 0; b < nblocks; ++b) {
        if (try_adopt(ir::stub_block(m, f, b))) changed = true;
      }
    }
  }
  return m;
}

std::string write_repro(const GeneratedProgram& prog, const ir::Module& shrunk,
                        Oracle oracle, const std::string& detail,
                        const DiffOptions& opts) {
  if (opts.repro_dir.empty()) return {};
  std::error_code ec;
  fs::create_directories(opts.repro_dir, ec);
  const std::string file = opts.repro_dir + "/fuzz-" +
                           std::to_string(prog.seed) + "-" +
                           oracle_name(oracle) + ".repro.txt";
  std::ofstream os(file);
  if (!os) return {};
  os << "# statsym_fuzz reproducer\n"
     << "# oracle: " << oracle_name(oracle) << "\n"
     << "# detail: " << detail << "\n"
     << "# replay: statsym_fuzz show --program-seed " << prog.seed << "\n"
     << "seed " << prog.seed << "\n"
     << "threshold " << prog.threshold << "\n"
     << "capacity " << prog.capacity << "\n"
     << "fault_planted " << (prog.fault_planted ? 1 : 0) << "\n"
     << "# minimised module (" << total_instrs(shrunk) << " instrs):\n"
     << ir::to_string(shrunk);
  return file;
}

void fail_program(ProgramVerdict& v, const GeneratedProgram& prog,
                  Oracle oracle, const std::string& detail,
                  const FailurePred& still_fails, const DiffOptions& opts) {
  v.failed = oracle;
  v.detail = detail;
  ir::Module shrunk =
      opts.shrink
          ? shrink_module(prog.app.module, still_fails, opts.max_shrink_checks)
          : prog.app.module;
  v.repro_file = write_repro(prog, shrunk, oracle, detail, opts);
}

}  // namespace

ProgramVerdict run_program_seed(std::size_t index, std::uint64_t program_seed,
                                const DiffOptions& opts) {
  ProgramVerdict v;
  v.index = index;
  v.seed = program_seed;
  const GeneratedProgram prog = generate_program(program_seed, opts.gen);
  v.fault_planted = prog.fault_planted;

  // --- oracle (a): differential agreement + ground-truth labelling --------
  std::vector<interp::RuntimeInput> inputs;
  Rng rng(derive_seed(program_seed, 0xd1ffu));
  for (std::size_t i = 0; i < opts.diff_inputs; ++i) {
    Rng input_rng = rng.split();
    inputs.push_back(prog.app.workload(input_rng));
  }
  // Boundary pair around the planted threshold (or the capacity edge).
  if (prog.fault_planted) {
    inputs.push_back(payload_input(prog.threshold - 1));
    inputs.push_back(payload_input(prog.threshold));
  } else {
    inputs.push_back(payload_input(prog.capacity - 1));
  }
  for (const auto& input : inputs) {
    std::string err = check_ground_truth(prog, input);
    if (err.empty()) err = compare_engines(prog.app.module, input);
    if (!err.empty()) {
      // The failure is tied to this concrete input: a shrunk module must
      // keep misbehaving on it.
      auto still_fails = [&prog, &input](const ir::Module& m) {
        GeneratedProgram p = prog;  // same ground truth, rewritten module
        p.app.module = m;
        return !check_ground_truth(p, input).empty() ||
               !compare_engines(m, input).empty();
      };
      fail_program(v, prog, Oracle::kDifferential, err, still_fails, opts);
      return v;
    }
  }

  // --- oracle (e), concrete half: facts vs runtime + lint ground truth ----
  if (opts.check_static_facts) {
    std::string err = check_static_facts(prog, prog.app.module, inputs);
    if (!err.empty()) {
      auto still_fails = [&prog, &inputs](const ir::Module& m) {
        return !check_static_facts(prog, m, inputs).empty();
      };
      fail_program(v, prog, Oracle::kStaticFacts, err, still_fails, opts);
      return v;
    }
    GenOptions dgen = opts.gen;
    dgen.force_definite_bug = true;
    const GeneratedProgram variant = generate_program(program_seed, dgen);
    err = check_lint_ground_truth(variant);
    if (!err.empty()) {
      auto still_fails = [&variant](const ir::Module& m) {
        GeneratedProgram p = variant;
        p.app.module = m;
        return !check_lint_ground_truth(p).empty();
      };
      fail_program(v, variant, Oracle::kStaticFacts, err, still_fails, opts);
      return v;
    }
  }

  if (!opts.check_pipeline) return v;

  // --- oracle (b): the pipeline must verify exactly the planted fault -----
  const PipelineOutcome pipe = run_pipeline(prog, prog.app.module, opts);
  v.num_candidates = pipe.result.construction.candidates.size();
  v.winning_candidate = pipe.result.winning_candidate;
  v.pipeline_found = pipe.result.found;
  v.guided_paths = pipe.result.paths_explored;
  if (!pipe.failure.empty()) {
    auto still_fails = [&prog, &opts](const ir::Module& m) {
      if (prog.fault_planted) {
        // Keep only shrinks that preserve the fault itself — a module that
        // simply lost the bug would "miss" trivially.
        interp::Interpreter it(m, payload_input(prog.threshold));
        if (it.run().outcome != interp::RunOutcome::kFault) return false;
      }
      return !run_pipeline(prog, m, opts).failure.empty();
    };
    fail_program(v, prog, Oracle::kPipeline, pipe.failure, still_fails, opts);
    return v;
  }

  // --- oracle (e), pipeline half: identical verdict with analysis off -----
  if (opts.check_static_facts) {
    const std::string err =
        check_pipeline_equivalence(prog, prog.app.module, pipe.result, opts);
    if (!err.empty()) {
      auto still_fails = [&prog, &opts](const ir::Module& m) {
        const PipelineOutcome p = run_pipeline(prog, m, opts);
        return !check_pipeline_equivalence(prog, m, p.result, opts).empty();
      };
      fail_program(v, prog, Oracle::kStaticFacts, err, still_fails, opts);
      return v;
    }
  }

  // --- oracle (c): guided findings must be pure-reachable -----------------
  if (opts.check_soundness) {
    const std::string err =
        check_soundness(prog, prog.app.module, pipe.result, opts);
    if (!err.empty()) {
      auto still_fails = [&prog, &opts](const ir::Module& m) {
        const PipelineOutcome p = run_pipeline(prog, m, opts);
        if (!p.failure.empty() || !p.result.found) return false;
        return !check_soundness(prog, m, p.result, opts).empty();
      };
      fail_program(v, prog, Oracle::kGuidedSoundness, err, still_fails, opts);
      return v;
    }
    v.pure_paths = 0;  // pure run only executes on suspected unsoundness
  }

  // --- oracle (d): every engine must agree, every witness must replay -----
  if (opts.check_cross_engine) {
    const std::string err =
        check_cross_engine(prog, prog.app.module, pipe.result, opts, &v);
    if (!err.empty()) {
      auto still_fails = [&prog, &opts](const ir::Module& m) {
        if (prog.fault_planted) {
          // Keep only shrinks that preserve the planted fault itself.
          interp::Interpreter it(m, payload_input(prog.threshold));
          if (it.run().outcome != interp::RunOutcome::kFault) return false;
        }
        const PipelineOutcome p = run_pipeline(prog, m, opts);
        if (!p.failure.empty()) return false;
        return !check_cross_engine(prog, m, p.result, opts, nullptr).empty();
      };
      fail_program(v, prog, Oracle::kCrossEngine, err, still_fails, opts);
      return v;
    }
  }
  return v;
}

ProgramVerdict run_program(std::size_t index, const DiffOptions& opts) {
  return run_program_seed(index, derive_seed(opts.seed, index), opts);
}

CampaignResult run_campaign(const DiffOptions& opts) {
  CampaignResult cr;
  cr.programs.resize(opts.num_programs);
  const std::size_t jobs = effective_threads(opts.jobs);
  if (jobs <= 1) {
    for (std::size_t i = 0; i < opts.num_programs; ++i) {
      cr.programs[i] = run_program(i, opts);
    }
  } else {
    ThreadPool pool(jobs);
    pool.parallel_for(opts.num_programs, [&](std::size_t i) {
      cr.programs[i] = run_program(i, opts);
    });
  }
  for (const auto& v : cr.programs) {
    if (v.fault_planted) {
      ++cr.planted;
      if (v.pipeline_found && v.failed != Oracle::kPipeline) {
        ++cr.pipeline_verified;
      }
      if (v.concolic_found) ++cr.concolic_verified;
    }
    switch (v.failed) {
      case Oracle::kNone: break;
      case Oracle::kDifferential: ++cr.divergences; break;
      case Oracle::kPipeline: ++cr.pipeline_misses; break;
      case Oracle::kGuidedSoundness: ++cr.soundness_failures; break;
      case Oracle::kCrossEngine: ++cr.cross_engine_failures; break;
      case Oracle::kStaticFacts: ++cr.static_facts_failures; break;
    }
  }
  return cr;
}

std::string format_verdict(const ProgramVerdict& v) {
  std::ostringstream os;
  os << "#" << v.index << " seed=" << v.seed
     << (v.fault_planted ? " planted" : " benign");
  if (v.ok()) {
    os << " ok";
    if (v.fault_planted) {
      os << " candidates=" << v.num_candidates
         << " winner=" << v.winning_candidate << " paths=" << v.guided_paths;
      if (v.concolic_runs != 0) os << " concolic_runs=" << v.concolic_runs;
    }
  } else {
    os << " FAIL[" << oracle_name(v.failed) << "] " << v.detail;
    if (!v.repro_file.empty()) os << " repro=" << v.repro_file;
  }
  return os.str();
}

// --- corpus ---------------------------------------------------------------

std::string format_corpus(const CorpusEntry& e) {
  std::ostringstream os;
  os << "# statsym_fuzz corpus entry — replay via tests/fuzz_regression_test\n"
     << "name " << e.name << "\n"
     << "seed " << e.seed << "\n"
     << "min_chain " << e.gen.min_chain << "\n"
     << "max_chain " << e.gen.max_chain << "\n"
     << "min_leaves " << e.gen.min_leaves << "\n"
     << "max_leaves " << e.gen.max_leaves << "\n"
     << "max_segments " << e.gen.max_segments << "\n"
     << "num_int_globals " << e.gen.num_int_globals << "\n"
     << "fault_probability " << fmt_double(e.gen.fault_probability, 4) << "\n"
     << "assert_fault_probability "
     << fmt_double(e.gen.assert_fault_probability, 4) << "\n"
     << "min_threshold " << e.gen.min_threshold << "\n"
     << "max_threshold " << e.gen.max_threshold << "\n"
     << "capacity_slack " << e.gen.capacity_slack << "\n"
     << "allow_loops " << (e.gen.allow_loops ? 1 : 0) << "\n"
     << "allow_memory_ops " << (e.gen.allow_memory_ops ? 1 : 0) << "\n"
     << "expect_fault " << (e.expect_fault ? 1 : 0) << "\n"
     << "expect_kind " << e.expect_kind << "\n"
     << "min_candidates " << e.min_candidates << "\n";
  if (!e.note.empty()) os << "note " << e.note << "\n";
  return os.str();
}

bool parse_corpus(const std::string& text, CorpusEntry& out) {
  std::istringstream is(text);
  std::string line;
  bool have_seed = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto sp = line.find(' ');
    if (sp == std::string::npos) return false;
    const std::string key = line.substr(0, sp);
    const std::string val = line.substr(sp + 1);
    auto as_u64 = [&] { return std::stoull(val); };
    auto as_i64 = [&] { return std::stoll(val); };
    auto as_size = [&] { return static_cast<std::size_t>(std::stoull(val)); };
    auto as_bool = [&] { return val != "0"; };
    try {
      if (key == "name") out.name = val;
      else if (key == "seed") { out.seed = as_u64(); have_seed = true; }
      else if (key == "min_chain") out.gen.min_chain = as_size();
      else if (key == "max_chain") out.gen.max_chain = as_size();
      else if (key == "min_leaves") out.gen.min_leaves = as_size();
      else if (key == "max_leaves") out.gen.max_leaves = as_size();
      else if (key == "max_segments") out.gen.max_segments = as_size();
      else if (key == "num_int_globals") out.gen.num_int_globals = as_size();
      else if (key == "fault_probability")
        out.gen.fault_probability = std::stod(val);
      else if (key == "assert_fault_probability")
        out.gen.assert_fault_probability = std::stod(val);
      else if (key == "min_threshold") out.gen.min_threshold = as_i64();
      else if (key == "max_threshold") out.gen.max_threshold = as_i64();
      else if (key == "capacity_slack") out.gen.capacity_slack = as_i64();
      else if (key == "allow_loops") out.gen.allow_loops = as_bool();
      else if (key == "allow_memory_ops") out.gen.allow_memory_ops = as_bool();
      else if (key == "expect_fault") out.expect_fault = as_bool();
      else if (key == "expect_kind") out.expect_kind = val;
      else if (key == "min_candidates") out.min_candidates = as_size();
      else if (key == "note") out.note = val;
      else return false;  // unknown key: refuse rather than silently drift
    } catch (const std::exception&) {
      return false;
    }
  }
  return have_seed;
}

}  // namespace statsym::fuzz
