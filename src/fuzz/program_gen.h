// Seeded random mini-IR program generator for differential fuzzing.
//
// Each generated module is verifier-clean by construction (the builder runs
// ir::verify) and is packaged as a full apps::AppSpec — symbolic-input spec,
// workload generator, ground-truth vulnerable function — so it drops into
// the registry-driven pipeline exactly like the hand-written targets.
//
// Program shape ("grammar", DESIGN.md §8): main() reads one argv string and
// hands it to a chain of stage functions; stages emit random chaff segments
// (arithmetic on globals, branches on the input length, byte tests, counted
// loops, bounded buffer copies, calls into leaf helpers) and pass the string
// plus its length down the chain unconditionally, until a sink function.
// With probability GenOptions::fault_probability the sink carries a planted
// fault — an unchecked copy loop into a fixed-size buffer (OOB write) or a
// failed assertion on the length — that fires exactly when
// len(input) >= threshold. Chaff is fault-free by construction (every index
// is bounds-guarded, loops are counted, arithmetic wraps), so the planted
// predicate is the program's only failure mode and labels every workload run
// exactly.
#pragma once

#include <cstdint>
#include <string>

#include "apps/registry.h"

namespace statsym::fuzz {

struct GenOptions {
  // Stage functions on the main → sink call chain (inclusive bounds).
  std::size_t min_chain{2};
  std::size_t max_chain{4};
  // Leaf helper functions callable from chaff segments.
  std::size_t min_leaves{1};
  std::size_t max_leaves{3};
  // Chaff segments emitted per stage function.
  std::size_t max_segments{4};
  // Integer globals shared by the chaff (logged at every location).
  std::size_t num_int_globals{3};

  // Probability a program carries a planted fault; among planted programs,
  // probability the fault is an assertion failure instead of an OOB write.
  double fault_probability{0.75};
  double assert_fault_probability{0.35};

  // Planted-fault trigger: len(input) >= threshold, threshold uniform in
  // [min_threshold, max_threshold]. The symbolic input capacity is
  // threshold + capacity_slack, so both classes are reachable.
  std::int64_t min_threshold{6};
  std::int64_t max_threshold{20};
  std::int64_t capacity_slack{10};

  bool allow_loops{true};
  bool allow_memory_ops{true};

  // Replace the sink with an *unconditional* definite bug — assert(0),
  // division by a constant zero, or an OOB store at a constant index — that
  // the static analysis (src/analysis/) must prove and `statsym lint` must
  // report. Every input reaching the sink faults (crash_threshold becomes
  // 0), so these programs are ground truth for the lint/static-facts fuzz
  // oracle, not for the sampled-log pipeline. Deliberately NOT part of the
  // corpus key/value format: corpus entries describe pipeline regressions.
  bool force_definite_bug{false};
};

struct GeneratedProgram {
  apps::AppSpec app;       // module + sym spec + workload + ground truth
  std::uint64_t seed{0};
  GenOptions opts;
  bool fault_planted{false};
  // force_definite_bug: the planted fault is unconditional (threshold 0).
  bool definite_bug{false};
  // When planted: fault fires iff len(input) >= threshold
  // (== app.crash_threshold). Always: workload lengths are < capacity.
  std::int64_t threshold{0};
  std::int64_t capacity{0};
};

// Pure function of (seed, opts): the same pair reproduces the same module,
// workload stream and ground truth on every platform.
GeneratedProgram generate_program(std::uint64_t seed,
                                  const GenOptions& opts = {});

// Registers the "fuzz:<seed>" application-name factory with the apps
// registry, so e.g. `statsym run fuzz:17` drives the full pipeline on
// generated program 17 (default GenOptions).
void register_fuzz_apps();

}  // namespace statsym::fuzz
