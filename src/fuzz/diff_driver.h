// Cross-engine differential fuzzing driver.
//
// For every generated program (fuzz/program_gen.h) the driver runs three
// oracles (DESIGN.md §8):
//
//   (a) Differential agreement — on a battery of concrete workload inputs
//       (plus the len = T-1 / len = T boundary pair), the concrete
//       interpreter and the fully-concretised symbolic executor must agree
//       on the outcome: same fault function and kind, or same clean
//       termination with exactly one explored path. For fault-free programs
//       this also proves the generator's chaff-safety invariant (no
//       unplanted fault ever fires).
//
//   (b) Pipeline completeness — the full StatSym pipeline (sampled log
//       collection → predicate ranking → candidate construction → guided
//       search) must rank a candidate reaching the planted fault, verify it
//       within budget, and produce a crashing input that replays in the
//       planted function. For fault-free programs the pipeline must come
//       back empty-handed.
//
//   (c) Guided-search soundness — any vulnerability the guided mode verifies
//       must also be reachable by pure (unguided) symbolic execution on the
//       same program: guidance may only prune the search, never invent
//       findings.
//
//   (d) Cross-engine equivalence (DESIGN.md §11) — active when more than one
//       engine is selected: the guided pipeline, the pure baseline, and the
//       concolic generational search each hunt the program independently. On
//       planted programs every selected engine must find the fault; on
//       benign ones none may. Every witness input an engine produces is
//       replayed through the other execution engines (concrete interpreter,
//       concretised symbolic executor, follow-mode concolic executor) and
//       all must agree on the fault function and kind. Disagreements are
//       shrunk and dumped as reproducers like any other oracle failure.
//
//   (e) Static-facts soundness (src/analysis/) — the whole-program abstract
//       interpretation's claims are checked against concrete execution: no
//       run may enter a block the analysis proved unreachable, no concrete
//       branch may go against a statically-decided direction, a program
//       whose only fault is input-conditional may carry no definite-bug
//       finding, the seed's force_definite_bug sibling must lint with the
//       planted finding and replay it concretely, and the full pipeline
//       must return the identical verdict with the analysis on and off
//       (pruning is work-skipping, never answer-changing).
//
// Campaigns fan programs out over a worker pool; every program derives its
// RNG streams from (campaign seed, program index) via derive_seed, so
// per-program verdicts are bit-identical for any --jobs value. A failing
// program is shrunk by dropping whole functions and stubbing blocks
// (ir/rewrite.h) while its oracle failure persists, and the minimised
// reproducer (seed + IR text) is written to the repro directory.
#pragma once

#include <string>
#include <vector>

#include "fuzz/program_gen.h"
#include "statsym/engine.h"

namespace statsym::fuzz {

enum class Oracle : std::uint8_t {
  kNone,             // all oracles agreed
  kDifferential,     // (a) cross-engine divergence / unplanted fault
  kPipeline,         // (b) pipeline missed the planted fault (or hallucinated)
  kGuidedSoundness,  // (c) guided found a vuln pure execution cannot reach
  kCrossEngine,      // (d) engine disagreement / unconfirmed witness
  kStaticFacts,      // (e) static-analysis claim contradicted at runtime
};

const char* oracle_name(Oracle o);

struct DiffOptions {
  GenOptions gen{};
  std::size_t num_programs{100};
  std::uint64_t seed{1};
  std::size_t jobs{1};  // worker threads (0 = all hardware threads)

  // Oracle (a): concrete inputs checked per program (boundary pair extra).
  std::size_t diff_inputs{8};

  // Oracle (b) budget (the campaign "default budget").
  double sampling_rate{0.3};
  std::size_t target_logs{40};  // per class
  std::size_t max_workload_runs{800};
  std::uint64_t engine_max_instructions{5'000'000};
  double engine_max_seconds{5.0};

  // Oracle (c) budget (pure execution gets more instructions: it is the one
  // doing the unpruned search).
  std::uint64_t pure_max_instructions{50'000'000};
  double pure_max_seconds{30.0};

  bool check_pipeline{true};
  bool check_soundness{true};
  // Oracle (e): static-facts soundness (`--no-static-facts` to disable).
  // The pipeline-equivalence half additionally requires check_pipeline.
  bool check_static_facts{true};

  // Oracle (d): the engines under comparison (`--engines` in the CLI). The
  // list also becomes the Phase-3 lane race inside the pipeline run. With
  // the default single guided engine the oracle is skipped — duplicates of
  // the classic three-oracle campaign stay byte-identical.
  std::vector<core::EngineKind> engines{core::EngineKind::kGuided};
  bool check_cross_engine{true};
  // Test-only failure injection: corrupt the named engine's witness
  // ("guided" | "pure" | "concolic") before the equivalence replay, so
  // tests can prove the oracle detects, shrinks, and reports disagreements.
  std::string inject_witness_corruption;

  // Campaign pass bar: fraction of fault-planted programs the pipeline must
  // verify. Divergences and soundness failures always fail the campaign.
  double min_pipeline_rate{0.9};

  bool shrink{true};
  std::size_t max_shrink_checks{128};  // oracle re-evaluations while shrinking
  std::string repro_dir;               // empty: do not write reproducers
};

struct ProgramVerdict {
  std::size_t index{0};
  std::uint64_t seed{0};
  bool fault_planted{false};
  Oracle failed{Oracle::kNone};
  std::string detail;  // human-readable failure description

  // Diagnostics (deterministic across jobs; no wall-clock in here).
  std::size_t num_candidates{0};      // ranked candidate paths at this rate
  std::size_t winning_candidate{0};   // 1-based, 0 = none
  bool pipeline_found{false};
  std::uint64_t guided_paths{0};
  std::uint64_t pure_paths{0};
  bool pure_found{false};        // oracle (d) standalone pure run
  bool concolic_found{false};    // oracle (d) standalone concolic run
  std::uint64_t concolic_runs{0};
  std::string repro_file;  // written on failure when repro_dir is set

  bool ok() const { return failed == Oracle::kNone; }
};

struct CampaignResult {
  std::vector<ProgramVerdict> programs;
  std::size_t divergences{0};
  std::size_t pipeline_misses{0};
  std::size_t soundness_failures{0};
  std::size_t cross_engine_failures{0};
  std::size_t static_facts_failures{0};
  std::size_t planted{0};
  std::size_t pipeline_verified{0};
  std::size_t concolic_verified{0};  // planted faults the concolic lane found

  double pipeline_rate() const {
    return planted == 0
               ? 1.0
               : static_cast<double>(pipeline_verified) /
                     static_cast<double>(planted);
  }
  double concolic_rate() const {
    return planted == 0
               ? 1.0
               : static_cast<double>(concolic_verified) /
                     static_cast<double>(planted);
  }
  bool passed(const DiffOptions& opts) const {
    return divergences == 0 && soundness_failures == 0 &&
           cross_engine_failures == 0 && static_facts_failures == 0 &&
           pipeline_rate() >= opts.min_pipeline_rate;
  }
};

// Runs all three oracles on the program generated from
// derive_seed(opts.seed, index); shrinks and writes a reproducer on failure.
ProgramVerdict run_program(std::size_t index, const DiffOptions& opts);

// Same, but on the program generated directly from `program_seed` — corpus
// replay and `statsym_fuzz show`. `index` only labels the verdict.
ProgramVerdict run_program_seed(std::size_t index, std::uint64_t program_seed,
                                const DiffOptions& opts);

// Runs the full campaign (parallel across programs when opts.jobs != 1).
CampaignResult run_campaign(const DiffOptions& opts);

// One-line rendering of a verdict for logs/CLI output.
std::string format_verdict(const ProgramVerdict& v);

// --- corpus entries (tests/corpus/*.corpus) -------------------------------
// A checked-in reproducible program: generator seed + the GenOptions fields
// it was produced with + the properties the regression test asserts.
struct CorpusEntry {
  std::string name;
  std::uint64_t seed{0};
  GenOptions gen{};
  bool expect_fault{false};
  std::string expect_kind;         // "oob" | "assert" | "none"
  std::size_t min_candidates{0};   // candidate paths at gen sampling rate
  std::string note;
};

std::string format_corpus(const CorpusEntry& e);
// Parses the key/value format of format_corpus; false on malformed input.
bool parse_corpus(const std::string& text, CorpusEntry& out);

}  // namespace statsym::fuzz
