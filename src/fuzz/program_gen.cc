#include "fuzz/program_gen.h"

#include <optional>
#include <vector>

#include "apps/stdlib.h"
#include "ir/builder.h"

namespace statsym::fuzz {

namespace {

// Kinds of planted fault (kNone = benign sink). The kDefinite* kinds are
// unconditional — the fault needs no input predicate, which is what makes
// it provable by the static analysis and reportable by `statsym lint`.
enum class PlantKind : std::uint8_t {
  kNone,
  kOob,
  kAssert,
  kDefiniteAssert,  // assert(0)
  kDefiniteDiv,     // n / 0
  kDefiniteOob,     // buf[7] with |buf| = 4
};

// Everything the per-function emitters need. All register values derived
// from the input are non-negative by construction (lengths, byte values,
// loop counters), which is what makes the bounds guards below sufficient.
struct FnCtx {
  ir::FunctionBuilder& f;
  Rng& rng;
  const GenOptions& opts;
  ir::Reg s;  // input string ref
  ir::Reg n;  // its length (>= 0)
  const std::vector<std::string>& globals;
  const std::vector<std::string>& leaves;  // callable leaf helpers
  std::int64_t cap;                        // symbolic input capacity
};

const std::string& pick_global(FnCtx& c) {
  return c.globals[static_cast<std::size_t>(c.rng.uniform(
      0, static_cast<std::int64_t>(c.globals.size() - 1)))];
}

// g = g <op> (n | small constant), wrap-around ops only (no div/rem/shift:
// chaff must be incapable of faulting).
void emit_arith_segment(FnCtx& c) {
  static constexpr ir::BinOp kSafeOps[] = {
      ir::BinOp::kAdd, ir::BinOp::kSub, ir::BinOp::kMul,
      ir::BinOp::kAnd, ir::BinOp::kOr,  ir::BinOp::kXor,
  };
  const std::string g = pick_global(c);
  const auto op = kSafeOps[c.rng.uniform(0, 5)];
  const ir::Reg lhs = c.f.load_global(g);
  const ir::Reg v = c.rng.chance(0.5)
                        ? c.f.bin(op, lhs, c.n)
                        : c.f.bini(op, lhs, c.rng.uniform(1, 9));
  c.f.store_global(g, v);
}

// if (n <cmp> K) { arith [+ leaf call] } else { arith }
void emit_branch_segment(FnCtx& c, bool allow_leaf_call) {
  static constexpr ir::BinOp kCmps[] = {ir::BinOp::kLt, ir::BinOp::kLe,
                                        ir::BinOp::kGt, ir::BinOp::kGe,
                                        ir::BinOp::kEq, ir::BinOp::kNe};
  const auto cmp = kCmps[c.rng.uniform(0, 5)];
  const std::int64_t k = c.rng.uniform(0, c.cap - 1);
  const auto then_b = c.f.block();
  const auto else_b = c.f.block();
  const auto join = c.f.block();
  c.f.br(c.f.bini(cmp, c.n, k), then_b, else_b);

  c.f.at(then_b);
  if (allow_leaf_call && !c.leaves.empty() && c.rng.chance(0.6)) {
    const std::string& leaf = c.leaves[static_cast<std::size_t>(c.rng.uniform(
        0, static_cast<std::int64_t>(c.leaves.size() - 1)))];
    const ir::Reg r = c.f.call(leaf, {c.s, c.n});
    const std::string g = pick_global(c);
    c.f.store_global(g, c.f.add(c.f.load_global(g), r));
  } else {
    emit_arith_segment(c);
  }
  c.f.jmp(join);

  c.f.at(else_b);
  emit_arith_segment(c);
  c.f.jmp(join);

  c.f.at(join);
}

// if (n >= J) { ch = s[J]; if (ch > letter) arith else arith } else arith
// The guard makes the load safe concretely: index J <= len(s) is always
// inside the len+1-byte string object.
void emit_byte_branch_segment(FnCtx& c) {
  const std::int64_t j = c.rng.uniform(0, 5);
  const auto have = c.f.block();
  const auto skip = c.f.block();
  const auto join = c.f.block();
  c.f.br(c.f.gei(c.n, j), have, skip);

  c.f.at(have);
  const ir::Reg ch = c.f.load(c.s, c.f.ci(j));
  const auto hi = c.f.block();
  const auto lo = c.f.block();
  c.f.br(c.f.gti(ch, c.rng.uniform('d', 'u')), hi, lo);
  c.f.at(hi);
  emit_arith_segment(c);
  c.f.jmp(join);
  c.f.at(lo);
  emit_arith_segment(c);
  c.f.jmp(join);

  c.f.at(skip);
  emit_arith_segment(c);
  c.f.jmp(join);

  c.f.at(join);
}

// for (i = 0; i < K; ++i) g = g + i   — counted, no symbolic forks.
void emit_loop_segment(FnCtx& c) {
  const std::int64_t k = c.rng.uniform(2, 5);
  const std::string g = pick_global(c);
  const ir::Reg i = c.f.reg();
  c.f.assign(i, c.f.ci(0));
  const auto loop = c.f.block();
  const auto body = c.f.block();
  const auto done = c.f.block();
  c.f.jmp(loop);
  c.f.at(loop);
  c.f.br(c.f.lti(i, k), body, done);
  c.f.at(body);
  c.f.store_global(g, c.f.add(c.f.load_global(g), i));
  c.f.assign(i, c.f.addi(i, 1));
  c.f.jmp(loop);
  c.f.at(done);
}

// Local scratch buffer: counted fill, then one read back into a global.
// All indices are constants below the allocation size.
void emit_mem_segment(FnCtx& c) {
  const std::int64_t size = c.rng.uniform(8, 32);
  const std::int64_t k = c.rng.uniform(1, size - 1);
  const ir::Reg buf = c.f.alloca_buf(size);
  const ir::Reg i = c.f.reg();
  c.f.assign(i, c.f.ci(0));
  const auto loop = c.f.block();
  const auto body = c.f.block();
  const auto done = c.f.block();
  c.f.jmp(loop);
  c.f.at(loop);
  c.f.br(c.f.lti(i, k), body, done);
  c.f.at(body);
  c.f.store(buf, i, c.f.addi(i, 1));
  c.f.assign(i, c.f.addi(i, 1));
  c.f.jmp(loop);
  c.f.at(done);
  const ir::Reg x = c.f.load(buf, c.f.ci(c.rng.uniform(0, k - 1)));
  const std::string g = pick_global(c);
  c.f.store_global(g, c.f.add(c.f.load_global(g), x));
}

// m = min(n, K); copy s[0..m) into a local buffer sized above K. Loads stay
// below len(s), stores below the allocation: bounded on both sides.
void emit_bounded_copy_segment(FnCtx& c) {
  const std::int64_t k = c.rng.uniform(3, 10);
  const ir::Reg buf = c.f.alloca_buf(k + 2);
  const ir::Reg m = c.f.reg();
  const auto use_n = c.f.block();
  const auto use_k = c.f.block();
  const auto head = c.f.block();
  c.f.br(c.f.lti(c.n, k), use_n, use_k);
  c.f.at(use_n);
  c.f.assign(m, c.n);
  c.f.jmp(head);
  c.f.at(use_k);
  c.f.assign(m, c.f.ci(k));
  c.f.jmp(head);
  c.f.at(head);
  const ir::Reg i = c.f.reg();
  c.f.assign(i, c.f.ci(0));
  const auto loop = c.f.block();
  const auto body = c.f.block();
  const auto done = c.f.block();
  c.f.jmp(loop);
  c.f.at(loop);
  c.f.br(c.f.lt(i, m), body, done);
  c.f.at(body);
  c.f.store(buf, i, c.f.load(c.s, i));
  c.f.assign(i, c.f.addi(i, 1));
  c.f.jmp(loop);
  c.f.at(done);
  const std::string g = pick_global(c);
  c.f.store_global(g, c.f.add(c.f.load_global(g), m));
}

void emit_segments(FnCtx& c, std::size_t count, bool allow_leaf_calls) {
  for (std::size_t i = 0; i < count; ++i) {
    // Weighted menu; loop/memory shapes can be disabled by options.
    std::vector<double> w{3.0, 2.5, 2.0,
                          c.opts.allow_loops ? 1.5 : 0.0,
                          c.opts.allow_memory_ops ? 1.5 : 0.0,
                          c.opts.allow_memory_ops ? 1.0 : 0.0};
    switch (c.rng.weighted_pick(w)) {
      case 0: emit_arith_segment(c); break;
      case 1: emit_branch_segment(c, allow_leaf_calls); break;
      case 2: emit_byte_branch_segment(c); break;
      case 3: emit_loop_segment(c); break;
      case 4: emit_mem_segment(c); break;
      case 5: emit_bounded_copy_segment(c); break;
    }
  }
}

// The sink carrying the (optional) planted fault.
//
//   kOob:    copy loop `do { buf[i] = s[i] } while (s[i] != 0)` into a
//            T-byte buffer — the store at index len(s) lands out of bounds
//            exactly when len >= T (polymorph's shape).
//   kAssert: assert(n < T) — fails exactly when len >= T.
//   kNone:   bounded copy into a buffer sized above the input capacity;
//            cannot fault.
void emit_sink(ir::ModuleBuilder& mb, PlantKind plant, std::int64_t threshold,
               std::int64_t cap) {
  if (plant == PlantKind::kDefiniteAssert || plant == PlantKind::kDefiniteDiv ||
      plant == PlantKind::kDefiniteOob) {
    auto f = mb.func("sink", {"s", "n"});
    const ir::Reg n = f.param(1);
    switch (plant) {
      case PlantKind::kDefiniteAssert:
        f.assert_true(f.ci(0));
        break;
      case PlantKind::kDefiniteDiv:
        f.bin(ir::BinOp::kDiv, n, f.ci(0));
        break;
      default: {  // kDefiniteOob
        const ir::Reg buf = f.alloca_buf(4);
        f.store(buf, f.ci(7), f.ci(1));
        break;
      }
    }
    f.ret(n);
    return;
  }
  if (plant == PlantKind::kAssert) {
    auto f = mb.func("sink", {"s", "n"});
    const ir::Reg n = f.param(1);
    f.assert_true(f.lti(n, threshold));
    f.ret(n);
    return;
  }
  auto f = mb.func("sink", {"s", "n"});
  const ir::Reg s = f.param(0);
  const std::int64_t bufsize = plant == PlantKind::kOob ? threshold : cap + 2;
  const ir::Reg buf = f.alloca_buf(bufsize);
  const ir::Reg i = f.reg();
  f.assign(i, f.ci(0));
  const auto loop = f.block();
  const auto next = f.block();
  const auto done = f.block();
  f.jmp(loop);
  f.at(loop);
  const ir::Reg ch = f.load(s, i);
  f.store(buf, i, ch);  // plant == kOob: faults at i == len when len >= T
  f.br(f.eqi(ch, 0), done, next);
  f.at(next);
  f.assign(i, f.addi(i, 1));
  f.jmp(loop);
  f.at(done);
  f.ret(i);
}

}  // namespace

GeneratedProgram generate_program(std::uint64_t seed, const GenOptions& opts) {
  Rng rng(derive_seed(0x5fa2'57a7'5fa2'57a7ULL ^ seed, seed));
  GeneratedProgram out;
  out.seed = seed;
  out.opts = opts;

  const auto chain_len = static_cast<std::size_t>(
      rng.uniform(static_cast<std::int64_t>(opts.min_chain),
                  static_cast<std::int64_t>(opts.max_chain)));
  const auto num_leaves = static_cast<std::size_t>(
      rng.uniform(static_cast<std::int64_t>(opts.min_leaves),
                  static_cast<std::int64_t>(opts.max_leaves)));
  out.fault_planted = rng.chance(opts.fault_probability);
  PlantKind plant =
      !out.fault_planted ? PlantKind::kNone
      : rng.chance(opts.assert_fault_probability) ? PlantKind::kAssert
                                                  : PlantKind::kOob;
  out.threshold = rng.uniform(opts.min_threshold, opts.max_threshold);
  out.capacity = out.threshold + opts.capacity_slack;
  if (opts.force_definite_bug) {
    // Same RNG draws as above so the chaff is identical to the seed's
    // conditional-fault sibling; only the sink differs.
    static constexpr PlantKind kDefinite[] = {PlantKind::kDefiniteAssert,
                                              PlantKind::kDefiniteDiv,
                                              PlantKind::kDefiniteOob};
    plant = kDefinite[rng.uniform(0, 2)];
    out.fault_planted = true;
    out.definite_bug = true;
    out.threshold = 0;  // fires for every input reaching the sink
  }

  const std::string name = "fuzz-" + std::to_string(seed);
  ir::ModuleBuilder mb(name);
  apps::emit_stdlib(mb);

  std::vector<std::string> globals;
  for (std::size_t i = 0; i < opts.num_int_globals; ++i) {
    globals.push_back("g" + std::to_string(i));
    mb.global_int(globals.back(), rng.uniform(0, 4));
  }

  std::vector<std::string> leaves;
  for (std::size_t i = 0; i < num_leaves; ++i) {
    leaves.push_back("leaf" + std::to_string(i));
  }
  const std::vector<std::string> no_leaves;
  for (const auto& leaf : leaves) {
    auto f = mb.func(leaf, {"s", "n"});
    FnCtx c{f,       rng,       opts,        f.param(0),
            f.param(1), globals, no_leaves, out.capacity};
    emit_segments(c, 1 + static_cast<std::size_t>(rng.uniform(0, 1)),
                  /*allow_leaf_calls=*/false);
    f.ret(rng.chance(0.5) ? f.load_global(globals[0]) : c.n);
  }

  // Stage chain: stage0(s) computes the length, deeper stages take (s, n);
  // every stage falls through to the next unconditionally, so the planted
  // predicate len >= T is the program's one and only failure condition.
  for (std::size_t i = 0; i < chain_len; ++i) {
    const bool first = i == 0;
    auto f = first ? mb.func("stage0", {"s"})
                   : mb.func("stage" + std::to_string(i), {"s", "n"});
    const ir::Reg s = f.param(0);
    const ir::Reg n = first ? f.call("__strlen", {s}) : f.param(1);
    FnCtx c{f, rng, opts, s, n, globals, leaves, out.capacity};
    emit_segments(c,
                  1 + static_cast<std::size_t>(rng.uniform(
                          0, static_cast<std::int64_t>(opts.max_segments) - 1)),
                  /*allow_leaf_calls=*/true);
    const std::string next =
        i + 1 < chain_len ? "stage" + std::to_string(i + 1) : "sink";
    const ir::Reg r = f.call(next, {s, n});
    f.ret(f.add(r, f.load_global(globals[0])));
  }

  emit_sink(mb, plant, out.threshold, out.capacity);

  {
    auto f = mb.func("main", {});
    const ir::Reg ac = f.argc();
    const auto run = f.block();
    const auto err = f.block();
    f.br(f.gei(ac, 2), run, err);
    f.at(err);
    f.ret(f.ci(1));
    f.at(run);
    const ir::Reg s = f.arg(f.ci(1));
    f.call("stage0", {s});
    f.ret(f.ci(0));
  }

  out.app.name = name;
  out.app.module = mb.build();
  out.app.sym_spec.argv = {symexec::SymStr::fixed(name),
                           symexec::SymStr::sym("payload", out.capacity)};
  const std::int64_t cap = out.capacity;
  out.app.workload = [cap](Rng& wrng) {
    interp::RuntimeInput in;
    const std::int64_t len = wrng.uniform(0, cap - 1);
    std::string payload;
    payload.reserve(static_cast<std::size_t>(len));
    for (std::int64_t i = 0; i < len; ++i) {
      payload.push_back(static_cast<char>(wrng.uniform('a', 'z')));
    }
    in.argv = {"fuzz", std::move(payload)};
    return in;
  };
  if (out.fault_planted) {
    out.app.vuln_function = "sink";
    switch (plant) {
      case PlantKind::kAssert:
      case PlantKind::kDefiniteAssert:
        out.app.vuln_kind = interp::FaultKind::kAssertFail;
        break;
      case PlantKind::kDefiniteDiv:
        out.app.vuln_kind = interp::FaultKind::kDivByZero;
        break;
      default:
        out.app.vuln_kind = interp::FaultKind::kOobStore;
        break;
    }
    out.app.crash_threshold = out.threshold;
  }
  return out;
}

void register_fuzz_apps() {
  apps::register_app_factory(
      [](const std::string& name) -> std::optional<apps::AppSpec> {
        constexpr std::string_view prefix = "fuzz:";
        if (!name.starts_with(prefix)) return std::nullopt;
        std::uint64_t seed = 0;
        const std::string digits = name.substr(prefix.size());
        if (digits.empty()) return std::nullopt;
        for (char ch : digits) {
          if (ch < '0' || ch > '9') return std::nullopt;
          seed = seed * 10 + static_cast<std::uint64_t>(ch - '0');
        }
        return generate_program(seed).app;
      });
}

}  // namespace statsym::fuzz
