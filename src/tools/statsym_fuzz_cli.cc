// statsym_fuzz — randomized cross-engine differential fuzzing campaigns.
//
//   statsym_fuzz [campaign] [--programs N] [--seed S] [--jobs/-j N]
//                [--fault-prob P] [--sampling R] [--diff-inputs N]
//                [--no-shrink] [--no-pipeline] [--no-soundness]
//                [--min-pipeline-rate F] [--repro-dir DIR] [--print-programs]
//       Generate N programs from the campaign seed and run the three oracles
//       on each (DESIGN.md §8). Exit 0 iff the campaign passes: zero
//       divergences, zero soundness failures, pipeline rate >= the bar.
//   statsym_fuzz show --program-seed S [same tuning flags]
//       Generate the single program with that generator seed, print its IR
//       and ground truth, run the oracles verbosely. Used to replay
//       reproducers and to vet corpus candidates.
//   statsym_fuzz corpus --program-seed S [--name NAME] [--expect-candidates N]
//       Emit a tests/corpus/*.corpus entry for that seed on stdout.
#include <cstdio>
#include <cstring>
#include <string>

#include "fuzz/diff_driver.h"
#include "interp/interpreter.h"
#include "ir/printer.h"
#include "support/strings.h"

using namespace statsym;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: statsym_fuzz [campaign|show|corpus] [flags]\n"
      "  campaign flags:\n"
      "    --programs N         programs per campaign (default 100)\n"
      "    --seed S             campaign master seed (default 1)\n"
      "    --jobs/-j N          worker threads, 0 = all cores (default 1)\n"
      "    --fault-prob P       probability of planting a fault (default "
      "0.75)\n"
      "    --sampling R         pipeline sampling rate (default 0.3)\n"
      "    --diff-inputs N      concrete inputs per program (default 8)\n"
      "    --min-pipeline-rate F  pass bar for oracle (b) (default 0.9)\n"
      "    --engines LIST       comma list of guided,pure,concolic; more than\n"
      "                         one engine arms the cross-engine oracle (d)\n"
      "    --no-shrink          keep failing programs unminimised\n"
      "    --no-pipeline        skip oracle (b) (and (c), (d))\n"
      "    --no-soundness       skip oracle (c)\n"
      "    --no-cross-engine    skip oracle (d)\n"
      "    --no-static-facts    skip oracle (e) (static-analysis soundness)\n"
      "    --repro-dir DIR      write reproducers here (default "
      "fuzz-repros)\n"
      "    --print-programs     one verdict line per program\n"
      "  show/corpus flags:\n"
      "    --program-seed S     generator seed of the program\n"
      "    --name NAME          corpus entry name (default seed-S)\n"
      "    --expect-candidates N  min_candidates the corpus entry asserts\n");
  return 2;
}

struct CliFlags {
  fuzz::DiffOptions opts;
  std::uint64_t program_seed{0};
  bool have_program_seed{false};
  std::string corpus_name;
  std::size_t expect_candidates{0};
  bool print_programs{false};
};

bool parse_flags(int argc, char** argv, int start, CliFlags& f) {
  for (int i = start; i < argc; ++i) {
    const std::string a = argv[i];
    auto next_d = [&](double& out) {
      if (i + 1 >= argc) return false;
      out = std::atof(argv[++i]);
      return true;
    };
    // Seeds are full 64-bit values (reproducers print them verbatim); going
    // through double would silently round them to 53 bits.
    auto next_u64 = [&](std::uint64_t& out) {
      if (i + 1 >= argc) return false;
      out = std::strtoull(argv[++i], nullptr, 10);
      return true;
    };
    double v = 0;
    std::uint64_t u = 0;
    if (a == "--programs" && next_d(v)) {
      f.opts.num_programs = static_cast<std::size_t>(v);
    } else if (a == "--seed" && next_u64(u)) {
      f.opts.seed = u;
    } else if ((a == "--jobs" || a == "-j") && next_d(v)) {
      f.opts.jobs = static_cast<std::size_t>(v);
    } else if (a == "--fault-prob" && next_d(v)) {
      f.opts.gen.fault_probability = v;
    } else if (a == "--sampling" && next_d(v)) {
      f.opts.sampling_rate = v;
    } else if (a == "--diff-inputs" && next_d(v)) {
      f.opts.diff_inputs = static_cast<std::size_t>(v);
    } else if (a == "--min-pipeline-rate" && next_d(v)) {
      f.opts.min_pipeline_rate = v;
    } else if (a == "--no-shrink") {
      f.opts.shrink = false;
    } else if (a == "--no-pipeline") {
      f.opts.check_pipeline = false;
    } else if (a == "--no-soundness") {
      f.opts.check_soundness = false;
    } else if (a == "--no-cross-engine") {
      f.opts.check_cross_engine = false;
    } else if (a == "--no-static-facts") {
      f.opts.check_static_facts = false;
    } else if ((a == "--engines" && i + 1 < argc) ||
               a.rfind("--engines=", 0) == 0) {
      const std::string list =
          a[9] == '=' ? a.substr(10) : std::string(argv[++i]);
      const auto parsed = core::parse_engines(list);
      if (!parsed) {
        std::fprintf(stderr,
                     "--engines wants a comma list of guided,pure,concolic "
                     "(got '%s')\n",
                     list.c_str());
        return false;
      }
      f.opts.engines = *parsed;
    } else if (a == "--repro-dir" && i + 1 < argc) {
      f.opts.repro_dir = argv[++i];
    } else if (a == "--print-programs") {
      f.print_programs = true;
    } else if (a == "--program-seed" && next_u64(u)) {
      f.program_seed = u;
      f.have_program_seed = true;
    } else if (a == "--name" && i + 1 < argc) {
      f.corpus_name = argv[++i];
    } else if (a == "--expect-candidates" && next_d(v)) {
      f.expect_candidates = static_cast<std::size_t>(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

int cmd_campaign(const CliFlags& f) {
  const fuzz::CampaignResult cr = fuzz::run_campaign(f.opts);
  for (const auto& v : cr.programs) {
    if (f.print_programs || !v.ok()) {
      std::printf("%s\n", fuzz::format_verdict(v).c_str());
    }
  }
  std::printf(
      "campaign seed=%llu: %zu programs (%zu planted), "
      "%zu divergences, %zu pipeline misses, %zu soundness failures, "
      "%zu static-facts failures, pipeline rate %.0f%% (bar %.0f%%)\n",
      static_cast<unsigned long long>(f.opts.seed), cr.programs.size(),
      cr.planted, cr.divergences, cr.pipeline_misses, cr.soundness_failures,
      cr.static_facts_failures, cr.pipeline_rate() * 100.0,
      f.opts.min_pipeline_rate * 100.0);
  const bool multi_engine =
      f.opts.engines.size() > 1 ||
      (f.opts.engines.size() == 1 &&
       f.opts.engines[0] != core::EngineKind::kGuided);
  if (multi_engine && f.opts.check_pipeline && f.opts.check_cross_engine) {
    std::printf("cross-engine: %zu disagreements, concolic rate %.0f%%\n",
                cr.cross_engine_failures, cr.concolic_rate() * 100.0);
  }
  const bool ok = cr.passed(f.opts);
  std::printf("verdict: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int cmd_show(const CliFlags& f) {
  if (!f.have_program_seed) {
    std::fprintf(stderr, "show requires --program-seed\n");
    return 2;
  }
  const fuzz::GeneratedProgram prog =
      fuzz::generate_program(f.program_seed, f.opts.gen);
  std::printf("%s", ir::to_string(prog.app.module).c_str());
  if (prog.fault_planted) {
    std::printf("\nplanted: %s in %s() at len >= %lld (capacity %lld)\n",
                interp::fault_kind_name(prog.app.vuln_kind),
                prog.app.vuln_function.c_str(),
                static_cast<long long>(prog.threshold),
                static_cast<long long>(prog.capacity));
  } else {
    std::printf("\nplanted: nothing (fault-free program)\n");
  }
  const fuzz::ProgramVerdict v =
      fuzz::run_program_seed(0, f.program_seed, f.opts);
  std::printf("%s\n", fuzz::format_verdict(v).c_str());
  return v.ok() ? 0 : 1;
}

int cmd_corpus(const CliFlags& f) {
  if (!f.have_program_seed) {
    std::fprintf(stderr, "corpus requires --program-seed\n");
    return 2;
  }
  const fuzz::GeneratedProgram prog =
      fuzz::generate_program(f.program_seed, f.opts.gen);
  fuzz::CorpusEntry e;
  e.name = f.corpus_name.empty()
               ? "seed-" + std::to_string(f.program_seed)
               : f.corpus_name;
  e.seed = f.program_seed;
  e.gen = f.opts.gen;
  e.expect_fault = prog.fault_planted;
  if (!prog.fault_planted) {
    e.expect_kind = "none";
  } else if (prog.app.vuln_kind == interp::FaultKind::kAssertFail) {
    e.expect_kind = "assert";
  } else {
    e.expect_kind = "oob";
  }
  e.min_candidates = f.expect_candidates;
  std::printf("%s", fuzz::format_corpus(e).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  fuzz::register_fuzz_apps();
  std::string cmd = "campaign";
  int start = 1;
  if (argc >= 2 && argv[1][0] != '-') {
    cmd = argv[1];
    start = 2;
  }
  CliFlags f;
  f.opts.repro_dir = "fuzz-repros";
  if (!parse_flags(argc, argv, start, f)) return usage();
  if (cmd == "campaign") return cmd_campaign(f);
  if (cmd == "show") return cmd_show(f);
  if (cmd == "corpus") return cmd_corpus(f);
  return usage();
}
