// statsym — command-line driver for the whole pipeline.
//
//   statsym list
//       List the bundled target applications.
//   statsym run <app> [--sampling R] [--seed N] [--logs FILE] [--all]
//       Collect sampled logs (or read them from FILE), run statistical
//       analysis + guided symbolic execution, print predicates, candidate
//       paths and the discovered vulnerable path, and replay the generated
//       input. --all hunts every fault cluster (multi-vulnerability mode).
//   statsym pure <app> [--searcher dfs|bfs|random|coverage] [--mem MB]
//       The unguided baseline under the given budgets.
//   statsym collect <app> <out-file> [--sampling R] [--seed N] [--runs N]
//       Only collect logs and write them in the monitor's text format.
//   statsym dump <app>
//       Print the application's mini-IR and its Table-I statistics.
//   statsym lint <app> [--facts]
//       Run the whole-program static analysis and print every definite-bug
//       diagnostic (provable OOB, division by zero, failing assert,
//       use-before-def). Exits non-zero when anything is found.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/facts.h"
#include "apps/registry.h"
#include "fuzz/program_gen.h"
#include "ir/printer.h"
#include "ir/program_stats.h"
#include "monitor/serialize.h"
#include "serve/server.h"
#include "statsym/engine.h"
#include "statsym/report.h"

using namespace statsym;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: statsym <list|run|pure|collect|dump|lint|serve> "
               "[args]\n"
               "  statsym list\n"
               "  statsym run <app> [--sampling R] [--seed N] [--logs FILE] "
               "[--all]\n"
               "             [--jobs/-j N] [--portfolio K] [--stream] "
               "[--log-shard-size N]\n"
               "             [--engines LIST] [--concolic]\n"
               "             [--exec-jobs N] [--exec-batch N]\n"
               "  statsym pure <app> [--searcher dfs|bfs|random|coverage] "
               "[--mem MB] [--time S]\n"
               "             [--exec-jobs N] [--exec-batch N]\n"
               "  statsym collect <app> <out-file> [--sampling R] [--seed N] "
               "[--jobs/-j N]\n"
               "  statsym dump <app>\n"
               "  statsym lint <app> [--facts]\n"
               "  statsym serve [--store FILE] [--socket PATH] [--jobs N] "
               "[--seed N]\n"
               "\n"
               "  --jobs/-j N     worker threads for log collection and the\n"
               "                  candidate portfolio (0 = all hardware "
               "threads)\n"
               "  --portfolio K   candidate paths run concurrently (default "
               "4)\n"
               "  --stream        fold logs into sufficient statistics "
               "shard-by-shard\n"
               "                  instead of retaining them (same results, "
               "O(shard)\n"
               "                  retained log memory)\n"
               "  --log-shard-size N  logs per shard in --stream mode "
               "(default 64)\n"
               "  --engines LIST  Phase-3 lanes racing in priority order,\n"
               "                  comma-separated from guided|pure|concolic\n"
               "                  (default guided); first win cancels worse\n"
               "                  lanes, results identical at any --jobs\n"
               "  --concolic      shorthand: append a concolic lane\n"
               "  --exec-jobs N   worker threads *inside* each symbolic\n"
               "                  executor (work-stealing over the round's\n"
               "                  batch; 0 = all hardware threads, default "
               "1);\n"
               "                  output is byte-identical at any value\n"
               "  --exec-batch N  states drawn per executor round (default "
               "1);\n"
               "                  widths > 1 enable intra-run parallelism "
               "but\n"
               "                  change exploration order (deterministically"
               ")\n"
               "  --no-static-analysis  skip the whole-program static\n"
               "                  analysis (no branch pruning / candidate\n"
               "                  drops); verdicts are identical either way\n"
               "  --facts         (lint) also dump the full per-block facts\n"
               "  --trace-out F   write the deterministic JSONL event trace\n"
               "                  (byte-identical at any --jobs)\n"
               "  --trace-chrome F  write a chrome://tracing JSON timeline\n"
               "  --metrics-out F write the named pipeline metrics as JSON\n"
               "  --store F       (serve) persistent query-cache store: "
               "loaded\n"
               "                  (with verification) at startup, saved at\n"
               "                  shutdown and on 'cmd|save' requests\n"
               "  --socket PATH   (serve) listen on an AF_UNIX socket "
               "instead\n"
               "                  of the stdin/stdout frame stream\n");
  return 2;
}

struct Flags {
  double sampling{0.3};
  std::uint64_t seed{42};
  std::string logs_file;
  bool all{false};
  std::string searcher{"random"};
  std::size_t mem_mb{256};
  double time_s{300.0};
  std::size_t jobs{0};       // 0 = hardware_concurrency
  std::size_t exec_jobs{1};  // workers inside each symbolic executor
  std::uint32_t exec_batch{1};  // states drawn per executor round
  std::size_t portfolio{4};  // concurrent candidates in Phase 3
  bool stream{false};        // shard-streamed statistics ingestion
  std::size_t log_shard_size{64};
  bool log_shard_size_set{false};  // explicit --log-shard-size (for checks)
  std::vector<core::EngineKind> engines{core::EngineKind::kGuided};
  bool concolic{false};      // append a concolic lane
  bool static_analysis{true};  // --no-static-analysis turns this off
  bool dump_facts{false};      // lint --facts: full per-block fact dump
  std::string trace_out;     // deterministic JSONL event stream
  std::string trace_chrome;  // Chrome about://tracing JSON (wall-clocked)
  std::string metrics_out;   // metrics registry as JSON
  std::string store_path;    // (serve) persistent query-cache store file
  std::string socket_path;   // (serve) AF_UNIX listener path
};

bool parse_flags(int argc, char** argv, int start, Flags& f) {
  for (int i = start; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](double& out) {
      if (i + 1 >= argc) return false;
      out = std::atof(argv[++i]);
      return true;
    };
    if (a == "--sampling") {
      double v;
      if (!next(v)) return false;
      f.sampling = v;
    } else if (a == "--seed") {
      double v;
      if (!next(v)) return false;
      f.seed = static_cast<std::uint64_t>(v);
    } else if (a == "--logs") {
      if (i + 1 >= argc) return false;
      f.logs_file = argv[++i];
    } else if (a == "--all") {
      f.all = true;
    } else if (a == "--searcher") {
      if (i + 1 >= argc) return false;
      f.searcher = argv[++i];
    } else if (a == "--mem") {
      double v;
      if (!next(v)) return false;
      f.mem_mb = static_cast<std::size_t>(v);
    } else if (a == "--time") {
      double v;
      if (!next(v)) return false;
      f.time_s = v;
    } else if (a == "--jobs" || a == "-j") {
      double v;
      if (!next(v)) return false;
      f.jobs = static_cast<std::size_t>(v);
    } else if (a == "--exec-jobs") {
      double v;
      if (!next(v)) return false;
      f.exec_jobs = static_cast<std::size_t>(v);
    } else if (a == "--exec-batch") {
      double v;
      if (!next(v)) return false;
      f.exec_batch = static_cast<std::uint32_t>(v);
      if (f.exec_batch == 0) f.exec_batch = 1;
    } else if (a == "--portfolio") {
      double v;
      if (!next(v)) return false;
      f.portfolio = static_cast<std::size_t>(v);
    } else if (a == "--stream") {
      f.stream = true;
    } else if (a == "--log-shard-size") {
      double v;
      if (!next(v)) return false;
      f.log_shard_size = static_cast<std::size_t>(v);
      f.log_shard_size_set = true;
    } else if (a == "--engines" || a.rfind("--engines=", 0) == 0) {
      std::string list;
      if (a == "--engines") {
        if (i + 1 >= argc) return false;
        list = argv[++i];
      } else {
        list = a.substr(std::strlen("--engines="));
      }
      const auto parsed = core::parse_engines(list);
      if (!parsed.has_value()) {
        std::fprintf(stderr,
                     "--engines: bad lane list '%s' (comma-separated from "
                     "guided|pure|concolic)\n",
                     list.c_str());
        return false;
      }
      f.engines = *parsed;
    } else if (a == "--concolic") {
      f.concolic = true;
    } else if (a == "--no-static-analysis") {
      f.static_analysis = false;
    } else if (a == "--facts") {
      f.dump_facts = true;
    } else if (a == "--trace-out") {
      if (i + 1 >= argc) return false;
      f.trace_out = argv[++i];
    } else if (a == "--trace-chrome") {
      if (i + 1 >= argc) return false;
      f.trace_chrome = argv[++i];
    } else if (a == "--metrics-out") {
      if (i + 1 >= argc) return false;
      f.metrics_out = argv[++i];
    } else if (a == "--store") {
      if (i + 1 >= argc) return false;
      f.store_path = argv[++i];
    } else if (a == "--socket") {
      if (i + 1 >= argc) return false;
      f.socket_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

bool want_trace(const Flags& f) {
  return !f.trace_out.empty() || !f.trace_chrome.empty();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  os << content;
  return true;
}

// Writes whichever of --trace-out / --trace-chrome / --metrics-out were
// requested. Returns 0, or 1 when a file cannot be written.
int write_observability(const Flags& f, const obs::Tracer* tracer,
                        const obs::MetricsRegistry* metrics) {
  if (tracer != nullptr && !f.trace_out.empty()) {
    if (!write_file(f.trace_out, tracer->to_jsonl())) return 1;
    std::printf("trace: %llu events -> %s\n",
                static_cast<unsigned long long>(tracer->buffer().total()),
                f.trace_out.c_str());
  }
  if (tracer != nullptr && !f.trace_chrome.empty()) {
    std::ofstream os(f.trace_chrome);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", f.trace_chrome.c_str());
      return 1;
    }
    tracer->write_chrome(os);
    std::printf("trace: chrome timeline -> %s\n", f.trace_chrome.c_str());
  }
  if (metrics != nullptr && !f.metrics_out.empty()) {
    if (!write_file(f.metrics_out, metrics->to_json())) return 1;
    std::printf("metrics -> %s\n", f.metrics_out.c_str());
  }
  return 0;
}

core::EngineOptions engine_options(const Flags& f) {
  core::EngineOptions o;
  o.monitor.sampling_rate = f.sampling;
  o.seed = f.seed;
  o.candidate_timeout_seconds = f.time_s;
  o.exec.max_memory_bytes = f.mem_mb << 20;
  o.exec.jobs = f.exec_jobs;
  o.exec.batch = f.exec_batch;
  o.num_threads = f.jobs;
  o.candidate_portfolio_width = f.portfolio;
  o.stream = f.stream;
  o.log_shard_size = f.log_shard_size;
  o.engines = f.engines;
  o.enable_concolic = f.concolic;
  o.static_analysis = f.static_analysis;
  return o;
}

// Satellite of DESIGN.md §10: flag combinations that would silently do
// nothing. `collect` exists to write retained logs, which --stream folds
// away, so the pair is a hard error; a --log-shard-size without --stream is
// inert and gets a warning.
bool check_stream_flags(const std::string& cmd, const Flags& f) {
  if (cmd == "collect" && f.stream) {
    std::fprintf(stderr,
                 "error: 'collect' writes the retained logs, but --stream "
                 "folds logs into statistics and drops them (nothing would "
                 "be written). Drop --stream, or use 'run --stream'.\n");
    return false;
  }
  if (f.log_shard_size_set && !f.stream) {
    std::fprintf(stderr,
                 "warning: --log-shard-size has no effect without --stream "
                 "(batch mode retains every log)\n");
  }
  return true;
}

void print_result(const apps::AppSpec& app, const core::EngineResult& res) {
  std::printf("%s\n",
              core::format_predicates(app.module, res.predicates, 10).c_str());
  std::printf("%s\n",
              core::format_candidates(app.module, res.construction).c_str());
  for (const auto& l : res.lanes) {
    std::printf("lane %zu %-8s %-11s %llu paths, %llu instrs%s\n", l.priority,
                core::engine_kind_name(l.kind),
                symexec::termination_name(l.termination),
                static_cast<unsigned long long>(l.paths_explored),
                static_cast<unsigned long long>(l.instructions),
                l.found ? "  << winner" : "");
  }
  if (!res.found) {
    std::printf("vulnerable path NOT found (stat %.2fs, exec %.2fs, %llu "
                "paths)\n",
                res.stat_seconds, res.symexec_seconds,
                static_cast<unsigned long long>(res.paths_explored));
    std::printf("%s", core::format_solver_stats(res.solver_stats).c_str());
    return;
  }
  std::printf("%s", core::format_vuln(app.module, *res.vuln).c_str());
  std::printf("candidate #%zu, %llu paths, stat %.2fs + exec %.2fs\n",
              res.winning_candidate,
              static_cast<unsigned long long>(res.paths_explored),
              res.stat_seconds, res.symexec_seconds);
  std::printf("%s", core::format_solver_stats(res.solver_stats).c_str());

  interp::Interpreter replay(app.module, res.vuln->input);
  const auto rr = replay.run();
  if (rr.outcome == interp::RunOutcome::kFault) {
    std::printf("replay: CONFIRMED %s in %s()\n",
                interp::fault_kind_name(rr.fault.kind),
                rr.fault.function.c_str());
  } else {
    std::printf("replay: input did NOT reproduce the fault\n");
  }
}

int cmd_list() {
  for (const auto& name : apps::app_names()) {
    const apps::AppSpec app = apps::make_app(name);
    std::printf("%-12s vulnerable: %s() [%s]\n", name.c_str(),
                app.vuln_function.c_str(),
                interp::fault_kind_name(app.vuln_kind));
  }
  std::printf("%-12s vulnerable: set_outdir() + convert_fileName() "
              "(use run --all)\n",
              "polymorph-multibug");
  std::printf("%-12s the paper's Fig. 2a example\n", "fig2");
  return 0;
}

int cmd_run(const std::string& name, const Flags& f) {
  const apps::AppSpec app = apps::make_app(name);
  core::StatSymEngine engine(app.module, app.sym_spec, engine_options(f));
  obs::TraceOptions topts;
  topts.wall_clock = !f.trace_chrome.empty();
  obs::Tracer tracer(topts);
  if (want_trace(f)) engine.set_tracer(&tracer);
  if (!f.logs_file.empty()) {
    std::ifstream in(f.logs_file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", f.logs_file.c_str());
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    std::vector<monitor::RunLog> logs;
    if (!monitor::deserialize(ss.str(), logs)) {
      std::fprintf(stderr, "malformed log file %s\n", f.logs_file.c_str());
      return 1;
    }
    engine.use_logs(std::move(logs));
    std::printf("loaded %zu logs from %s\n", engine.num_logs_collected(),
                f.logs_file.c_str());
  } else {
    engine.collect_logs(app.workload);
    std::printf("collected %zu logs at %.0f%% sampling\n",
                engine.num_logs_collected(), f.sampling * 100.0);
  }

  if (f.all) {
    const auto results = engine.run_all();
    std::printf("fault clusters resolved: %zu\n\n", results.size());
    int rc = results.empty() ? 1 : 0;
    obs::MetricsRegistry merged;
    for (const auto& res : results) {
      print_result(app, res);
      merged.merge(res.metrics);
    }
    const int obs_rc =
        write_observability(f, want_trace(f) ? &tracer : nullptr, &merged);
    return rc != 0 ? rc : obs_rc;
  }
  const core::EngineResult res = engine.run();
  print_result(app, res);
  const int obs_rc =
      write_observability(f, want_trace(f) ? &tracer : nullptr, &res.metrics);
  if (obs_rc != 0) return obs_rc;
  return res.found ? 0 : 1;
}

int cmd_pure(const std::string& name, const Flags& f) {
  const apps::AppSpec app = apps::make_app(name);
  symexec::ExecOptions opts;
  if (f.searcher == "dfs") {
    opts.searcher = symexec::SearcherKind::kDFS;
  } else if (f.searcher == "bfs") {
    opts.searcher = symexec::SearcherKind::kBFS;
  } else if (f.searcher == "coverage") {
    opts.searcher = symexec::SearcherKind::kCoverageOptimized;
  } else {
    opts.searcher = symexec::SearcherKind::kRandomPath;
  }
  opts.max_memory_bytes = f.mem_mb << 20;
  opts.max_seconds = f.time_s;
  opts.jobs = f.exec_jobs;
  opts.batch = f.exec_batch;
  obs::TraceOptions topts;
  topts.wall_clock = !f.trace_chrome.empty();
  obs::Tracer tracer(topts);
  std::optional<analysis::ProgramFacts> facts;
  if (f.static_analysis) facts = analysis::analyze(app.module);
  const auto r = core::run_pure_symbolic(
      app.module, app.sym_spec, opts,
      want_trace(f) ? &tracer.buffer() : nullptr,
      facts.has_value() ? &*facts : nullptr);
  std::printf("pure[%s]: %s — %llu paths, %llu forks, %.1fs, peak %zu "
              "states / %zu MB\n",
              symexec::searcher_kind_name(opts.searcher),
              symexec::termination_name(r.termination),
              static_cast<unsigned long long>(r.stats.paths_explored),
              static_cast<unsigned long long>(r.stats.forks), r.stats.seconds,
              r.stats.peak_live_states, r.stats.peak_memory_bytes >> 20);
  std::printf("%s", core::format_solver_stats(r.solver_stats).c_str());
  if (r.vuln.has_value()) {
    std::printf("%s", core::format_vuln(app.module, *r.vuln).c_str());
  }
  obs::MetricsRegistry pm;
  pm.add("symexec.paths_explored", r.stats.paths_explored);
  pm.add("symexec.instructions", r.stats.instructions);
  pm.add("symexec.forks", r.stats.forks);
  pm.add("solver.queries", r.solver_stats.queries);
  pm.add("solver.slices", r.solver_stats.slices);
  pm.add("solver.local_cache_hits", r.solver_stats.cache_hits);
  pm.add("solver.model_reuse_hits", r.solver_stats.model_reuse_hits);
  pm.add("solver.canonical",
         r.solver_stats.shared_cache_hits + r.solver_stats.solves);
  pm.add("solver.static_prunes", r.solver_stats.static_prunes);
  pm.set_gauge("symexec.seconds", r.stats.seconds);
  const int obs_rc =
      write_observability(f, want_trace(f) ? &tracer : nullptr, &pm);
  if (obs_rc != 0) return obs_rc;
  return r.termination == symexec::Termination::kFoundFault ? 0 : 1;
}

int cmd_collect(const std::string& name, const std::string& out,
                const Flags& f) {
  const apps::AppSpec app = apps::make_app(name);
  core::StatSymEngine engine(app.module, app.sym_spec, engine_options(f));
  engine.collect_logs(app.workload);
  std::ofstream os(out);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  os << monitor::serialize(engine.logs());
  std::printf("wrote %zu logs to %s\n", engine.logs().size(), out.c_str());
  return 0;
}

// `statsym lint`: the static analysis as a standalone checker. Prints one
// line per definite-bug site (these are proofs, not heuristics — every
// diagnostic corresponds to a fault some input actually triggers, except
// use-before-def which is a data-flow diagnostic) and exits 1 when any
// exist, so the command composes with shell `&&` chains and CI steps.
int cmd_lint(const std::string& name, const Flags& f) {
  const apps::AppSpec app = apps::make_app(name);
  const analysis::ProgramFacts facts = analysis::analyze(app.module);
  if (f.dump_facts) {
    std::printf("%s\n", facts.to_string(app.module).c_str());
  }
  for (const auto& finding : facts.findings()) {
    std::printf("%s\n",
                analysis::format_finding(app.module, finding).c_str());
  }
  std::printf("lint: %zu finding(s), %zu unreachable block(s), "
              "%zu decided branch(es)\n",
              facts.findings().size(), facts.num_unreachable_blocks(),
              facts.num_decided_branches());
  return facts.findings().empty() ? 0 : 1;
}

// `statsym serve`: long-lived analysis service. Requests arrive as
// line-delimited frames (serve/protocol.h) on stdin or an AF_UNIX socket;
// the session keeps a program-fingerprint-keyed solver cache warm across
// requests and optionally persists it to --store. Diagnostics go to stderr
// only — stdout is the protocol channel.
int cmd_serve(const Flags& f) {
  serve::ServeOptions so;
  so.session_seed = f.seed;
  so.jobs = f.jobs;
  so.sampling = f.sampling;
  so.time_s = f.time_s;
  so.mem_mb = f.mem_mb;
  so.store_path = f.store_path;
  serve::ServeSession session(so);
  std::string err;
  if (!session.load_store(&err)) {
    std::fprintf(stderr, "serve: store rejected, starting cold: %s\n",
                 err.c_str());
  } else if (!err.empty()) {
    std::fprintf(stderr, "serve: store loaded with warnings: %s\n",
                 err.c_str());
  }
  int rc = 0;
  if (!f.socket_path.empty()) {
    rc = serve::serve_unix_socket(f.socket_path, session, f.jobs);
  } else {
    const std::size_t frames =
        serve::serve_stream(std::cin, std::cout, session, f.jobs);
    std::fprintf(stderr, "serve: %zu frame(s) handled\n", frames);
  }
  if (!f.store_path.empty()) {
    std::string serr;
    if (!session.save_store(&serr)) {
      std::fprintf(stderr, "serve: %s\n", serr.c_str());
      if (rc == 0) rc = 1;
    }
  }
  return rc;
}

int cmd_dump(const std::string& name) {
  const apps::AppSpec app = apps::make_app(name);
  const auto s = ir::compute_stats(app.module);
  std::printf("%s: %zu functions, %zu blocks, %zu instrs (SLOC %zu), "
              "%zu ext calls, %zu globals\n\n",
              s.program.c_str(), s.functions, s.blocks, s.instrs, s.sloc,
              s.ext_call_sites, s.globals);
  std::printf("%s", ir::to_string(app.module).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  fuzz::register_fuzz_apps();  // enables app names of the form "fuzz:<seed>"
  const std::string cmd = argv[1];
  Flags f;
  if (cmd == "list") return cmd_list();
  if (cmd == "run" && argc >= 3 && parse_flags(argc, argv, 3, f)) {
    if (!check_stream_flags(cmd, f)) return 2;
    return cmd_run(argv[2], f);
  }
  if (cmd == "pure" && argc >= 3 && parse_flags(argc, argv, 3, f)) {
    return cmd_pure(argv[2], f);
  }
  if (cmd == "collect" && argc >= 4 && parse_flags(argc, argv, 4, f)) {
    if (!check_stream_flags(cmd, f)) return 2;
    return cmd_collect(argv[2], argv[3], f);
  }
  if (cmd == "serve" && parse_flags(argc, argv, 2, f)) {
    const std::string serr = serve::check_serve_flags(
        !f.trace_out.empty(), !f.trace_chrome.empty(), !f.metrics_out.empty());
    if (!serr.empty()) {
      std::fprintf(stderr, "%s\n", serr.c_str());
      return 2;
    }
    return cmd_serve(f);
  }
  if (cmd == "dump" && argc >= 3) return cmd_dump(argv[2]);
  if (cmd == "lint" && argc >= 3 && parse_flags(argc, argv, 3, f)) {
    return cmd_lint(argv[2], f);
  }
  return usage();
}
