// Closed integer intervals with saturating arithmetic — the abstract domain
// used for constraint propagation in the solver and for the fast
// feasibility checks on symbolic-execution path constraints.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>

namespace statsym::solver {

struct Interval {
  std::int64_t lo{std::numeric_limits<std::int64_t>::min()};
  std::int64_t hi{std::numeric_limits<std::int64_t>::max()};

  static Interval full() { return {}; }
  static Interval point(std::int64_t v) { return {v, v}; }
  static Interval empty() { return {1, 0}; }
  static Interval boolean() { return {0, 1}; }

  bool is_empty() const { return lo > hi; }
  bool is_point() const { return lo == hi; }
  bool contains(std::int64_t v) const { return v >= lo && v <= hi; }
  // Width as unsigned magnitude (clamped; full range reports UINT64_MAX).
  std::uint64_t width() const;

  bool operator==(const Interval& o) const = default;

  std::string to_string() const;
};

Interval intersect(Interval a, Interval b);
Interval hull(Interval a, Interval b);

// Saturating interval arithmetic. Sound over mathematical integers; because
// the mini-IR's program values stay far from the int64 boundaries (input
// bytes, lengths, counters), saturation never loses the answers we need.
Interval iv_add(Interval a, Interval b);
Interval iv_sub(Interval a, Interval b);
Interval iv_mul(Interval a, Interval b);
Interval iv_div(Interval a, Interval b);
Interval iv_rem(Interval a, Interval b);
Interval iv_neg(Interval a);

// Comparison over intervals: returns +1 when the relation definitely holds,
// 0 when it definitely does not, -1 when undecided.
int iv_cmp_eq(Interval a, Interval b);
int iv_cmp_ne(Interval a, Interval b);
int iv_cmp_lt(Interval a, Interval b);
int iv_cmp_le(Interval a, Interval b);

}  // namespace statsym::solver
