#include "solver/expr.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <sstream>
#include <unordered_set>

#include "solver/simplify.h"

namespace statsym::solver {

const char* expr_op_name(ExprOp op) {
  switch (op) {
    case ExprOp::kConst: return "const";
    case ExprOp::kVar: return "var";
    case ExprOp::kAdd: return "+";
    case ExprOp::kSub: return "-";
    case ExprOp::kMul: return "*";
    case ExprOp::kDiv: return "/";
    case ExprOp::kRem: return "%";
    case ExprOp::kNeg: return "neg";
    case ExprOp::kEq: return "==";
    case ExprOp::kNe: return "!=";
    case ExprOp::kLt: return "<";
    case ExprOp::kLe: return "<=";
    case ExprOp::kAnd: return "&&";
    case ExprOp::kOr: return "||";
    case ExprOp::kNot: return "!";
    case ExprOp::kIte: return "ite";
  }
  return "?";
}

bool is_cmp_op(ExprOp op) {
  return op == ExprOp::kEq || op == ExprOp::kNe || op == ExprOp::kLt ||
         op == ExprOp::kLe;
}

bool is_bool_op(ExprOp op) {
  return is_cmp_op(op) || op == ExprOp::kAnd || op == ExprOp::kOr ||
         op == ExprOp::kNot;
}

std::size_t ExprPool::NodeHash::operator()(const Node& n) const {
  std::size_t h = std::hash<int>()(static_cast<int>(n.op));
  auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(std::hash<std::int64_t>()(n.imm));
  mix(n.a);
  mix(n.b);
  mix(n.c);
  return h;
}

ExprPool::ExprPool() {
  false_ = constant(0);
  true_ = constant(1);
}

VarId ExprPool::new_var(std::string name, std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  vars_.push_back({std::move(name), lo, hi});
  return static_cast<VarId>(vars_.size() - 1);
}

ExprId ExprPool::intern(ExprOp op, std::int64_t imm, ExprId a, ExprId b,
                        ExprId c) {
  Node n{op, imm, a, b, c};
  auto it = interned_.find(n);
  if (it != interned_.end()) return it->second;
  const ExprId id = static_cast<ExprId>(nodes_.size());
  nodes_.push_back(n);
  interned_.emplace(n, id);
  return id;
}

ExprId ExprPool::constant(std::int64_t v) {
  return intern(ExprOp::kConst, v, kNoExpr, kNoExpr, kNoExpr);
}

ExprId ExprPool::var_expr(VarId v) {
  assert(v < vars_.size());
  return intern(ExprOp::kVar, static_cast<std::int64_t>(v), kNoExpr, kNoExpr,
                kNoExpr);
}

ExprId ExprPool::unary(ExprOp op, ExprId a) {
  return simplify_unary(*this, op, a);
}

ExprId ExprPool::binary(ExprOp op, ExprId a, ExprId b) {
  return simplify_binary(*this, op, a, b);
}

ExprId ExprPool::ite(ExprId c, ExprId t, ExprId f) {
  return simplify_ite(*this, c, t, f);
}

ExprId ExprPool::truthy(ExprId e) {
  if (is_bool_op(op(e))) return e;  // already 0/1-valued
  return ne(e, constant(0));
}

void ExprPool::collect_vars(ExprId e, std::vector<VarId>& out) const {
  const std::size_t base = out.size();
  std::vector<ExprId> work{e};
  std::unordered_set<ExprId> seen;
  while (!work.empty()) {
    const ExprId cur = work.back();
    work.pop_back();
    if (!seen.insert(cur).second) continue;
    const Node& n = nodes_[cur];
    if (n.op == ExprOp::kVar) {
      out.push_back(static_cast<VarId>(n.imm));
      continue;
    }
    if (n.a != kNoExpr) work.push_back(n.a);
    if (n.b != kNoExpr) work.push_back(n.b);
    if (n.c != kNoExpr) work.push_back(n.c);
  }
  // Deduplicate the appended range.
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(base), out.end());
  out.erase(std::unique(out.begin() + static_cast<std::ptrdiff_t>(base),
                        out.end()),
            out.end());
}

std::int64_t ExprPool::eval(
    ExprId e, const std::unordered_map<VarId, std::int64_t>& asgn) const {
  const Node& n = nodes_[e];
  switch (n.op) {
    case ExprOp::kConst:
      return n.imm;
    case ExprOp::kVar: {
      auto it = asgn.find(static_cast<VarId>(n.imm));
      return it == asgn.end() ? 0 : it->second;
    }
    case ExprOp::kNeg:
      return static_cast<std::int64_t>(
          0 - static_cast<std::uint64_t>(eval(n.a, asgn)));
    case ExprOp::kNot:
      return eval(n.a, asgn) == 0 ? 1 : 0;
    case ExprOp::kIte:
      return eval(n.a, asgn) != 0 ? eval(n.b, asgn) : eval(n.c, asgn);
    default:
      break;
  }
  const std::int64_t a = eval(n.a, asgn);
  const std::int64_t b = eval(n.b, asgn);
  const auto ua = static_cast<std::uint64_t>(a);
  const auto ub = static_cast<std::uint64_t>(b);
  switch (n.op) {
    case ExprOp::kAdd: return static_cast<std::int64_t>(ua + ub);
    case ExprOp::kSub: return static_cast<std::int64_t>(ua - ub);
    case ExprOp::kMul: return static_cast<std::int64_t>(ua * ub);
    case ExprOp::kDiv:
      if (b == 0) return 0;  // screened before expr construction
      if (a == INT64_MIN && b == -1) return INT64_MIN;
      return a / b;
    case ExprOp::kRem:
      if (b == 0) return 0;
      if (a == INT64_MIN && b == -1) return 0;
      return a % b;
    case ExprOp::kEq: return a == b;
    case ExprOp::kNe: return a != b;
    case ExprOp::kLt: return a < b;
    case ExprOp::kLe: return a <= b;
    case ExprOp::kAnd: return (a != 0) && (b != 0);
    case ExprOp::kOr: return (a != 0) || (b != 0);
    default:
      assert(false && "unhandled op");
      return 0;
  }
}

std::string ExprPool::to_string(ExprId e) const {
  const Node& n = nodes_[e];
  switch (n.op) {
    case ExprOp::kConst:
      return std::to_string(n.imm);
    case ExprOp::kVar:
      return vars_[static_cast<std::size_t>(n.imm)].name;
    case ExprOp::kNeg:
      return "-(" + to_string(n.a) + ")";
    case ExprOp::kNot:
      return "!(" + to_string(n.a) + ")";
    case ExprOp::kIte:
      return "(" + to_string(n.a) + " ? " + to_string(n.b) + " : " +
             to_string(n.c) + ")";
    default:
      return "(" + to_string(n.a) + " " + expr_op_name(n.op) + " " +
             to_string(n.b) + ")";
  }
}

}  // namespace statsym::solver
