#include "solver/expr.h"

#include <cassert>
#include <functional>
#include <sstream>
#include <unordered_set>

#include "solver/simplify.h"

namespace statsym::solver {

const char* expr_op_name(ExprOp op) {
  switch (op) {
    case ExprOp::kConst: return "const";
    case ExprOp::kVar: return "var";
    case ExprOp::kAdd: return "+";
    case ExprOp::kSub: return "-";
    case ExprOp::kMul: return "*";
    case ExprOp::kDiv: return "/";
    case ExprOp::kRem: return "%";
    case ExprOp::kNeg: return "neg";
    case ExprOp::kEq: return "==";
    case ExprOp::kNe: return "!=";
    case ExprOp::kLt: return "<";
    case ExprOp::kLe: return "<=";
    case ExprOp::kAnd: return "&&";
    case ExprOp::kOr: return "||";
    case ExprOp::kNot: return "!";
    case ExprOp::kIte: return "ite";
  }
  return "?";
}

bool is_cmp_op(ExprOp op) {
  return op == ExprOp::kEq || op == ExprOp::kNe || op == ExprOp::kLt ||
         op == ExprOp::kLe;
}

bool is_bool_op(ExprOp op) {
  return is_cmp_op(op) || op == ExprOp::kAnd || op == ExprOp::kOr ||
         op == ExprOp::kNot;
}

std::size_t ExprPool::NodeKeyHash::operator()(const NodeKey& k) const {
  std::size_t h = std::hash<int>()(static_cast<int>(k.op));
  auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(std::hash<std::int64_t>()(k.imm));
  mix(k.a);
  mix(k.b);
  mix(k.c);
  return h;
}

ExprPool::ExprPool() {
  false_ = constant(0);
  true_ = constant(1);
}

VarId ExprPool::new_var(std::string name, std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::lock_guard<std::mutex> lock(var_mu_);
  auto key = std::make_tuple(name, lo, hi);
  if (const auto it = var_intern_.find(key); it != var_intern_.end()) {
    return it->second;
  }
  VarInfo vi{std::move(name), lo, hi, {}};
  Fp128 fp{0x9159015a3070dd17ULL, 0x152fecd8f70e5939ULL};
  fp = fp_absorb(fp, fp_hash_str(vi.name));
  fp = fp_absorb(fp, static_cast<std::uint64_t>(lo));
  fp = fp_absorb(fp, static_cast<std::uint64_t>(hi));
  vi.fp = fp;
  const auto v = static_cast<VarId>(vars_.push(std::move(vi)));
  var_intern_.emplace(std::move(key), v);
  var_by_fp_.emplace(fp, v);
  return v;
}

std::optional<VarId> ExprPool::find_var(const Fp128& fp) const {
  std::lock_guard<std::mutex> lock(var_mu_);
  const auto it = var_by_fp_.find(fp);
  if (it == var_by_fp_.end()) return std::nullopt;
  return it->second;
}

ExprId ExprPool::intern(ExprOp op, std::int64_t imm, ExprId a, ExprId b,
                        ExprId c) {
  const NodeKey key{op, imm, a, b, c};
  InternShard& s = shards_[NodeKeyHash{}(key) & (kShards - 1)];
  std::lock_guard<std::mutex> lock(s.mu);
  if (const auto it = s.map.find(key); it != s.map.end()) return it->second;

  // Fingerprint from the children's fingerprints — children are already
  // published, so these reads are lock-free. Holding the shard mutex through
  // creation means the key is interned exactly once.
  Fp128 fp{0x6a09e667f3bcc908ULL, 0xbb67ae8584caa73bULL};
  fp = fp_absorb(fp, static_cast<std::uint64_t>(op));
  switch (op) {
    case ExprOp::kConst:
      fp = fp_absorb(fp, static_cast<std::uint64_t>(imm));
      break;
    case ExprOp::kVar:
      // Identify by declaration, not VarId: fingerprints (and everything
      // keyed on them) agree across pools with different numbering.
      fp = fp_absorb(fp, vars_[static_cast<std::size_t>(imm)].fp);
      break;
    default:
      if (a != kNoExpr) fp = fp_absorb(fp, nodes_[a].fp);
      if (b != kNoExpr) fp = fp_absorb(fp, nodes_[b].fp);
      if (c != kNoExpr) fp = fp_absorb(fp, nodes_[c].fp);
      break;
  }

  const auto id = static_cast<ExprId>(nodes_.push(Node{op, imm, a, b, c, fp}));
  s.map.emplace(key, id);
  return id;
}

ExprId ExprPool::constant(std::int64_t v) {
  return intern(ExprOp::kConst, v, kNoExpr, kNoExpr, kNoExpr);
}

ExprId ExprPool::var_expr(VarId v) {
  assert(v < vars_.size());
  return intern(ExprOp::kVar, static_cast<std::int64_t>(v), kNoExpr, kNoExpr,
                kNoExpr);
}

ExprId ExprPool::unary(ExprOp op, ExprId a) {
  return simplify_unary(*this, op, a);
}

ExprId ExprPool::binary(ExprOp op, ExprId a, ExprId b) {
  return simplify_binary(*this, op, a, b);
}

ExprId ExprPool::ite(ExprId c, ExprId t, ExprId f) {
  return simplify_ite(*this, c, t, f);
}

ExprId ExprPool::truthy(ExprId e) {
  if (is_bool_op(op(e))) return e;  // already 0/1-valued
  return ne(e, constant(0));
}

void ExprPool::collect_vars(ExprId e, std::vector<VarId>& out) const {
  // First-occurrence DFS order: a pure function of the tree, so every worker
  // reports the same sequence regardless of the ids it allocated. Small
  // fixed-capacity seen-buffer covers the common shallow expressions without
  // hashing; the set engages only past that.
  constexpr std::size_t kSmall = 24;
  ExprId small_seen[kSmall];
  std::size_t n_small = 0;
  std::unordered_set<ExprId> seen;
  auto mark = [&](ExprId id) -> bool {  // returns true when newly seen
    if (n_small < kSmall) {
      for (std::size_t i = 0; i < n_small; ++i) {
        if (small_seen[i] == id) return false;
      }
      small_seen[n_small++] = id;
      return true;
    }
    if (n_small == kSmall) {  // spill to the set once
      seen.insert(small_seen, small_seen + kSmall);
      ++n_small;
    }
    return seen.insert(id).second;
  };

  std::vector<ExprId> work;
  work.reserve(16);
  work.push_back(e);
  while (!work.empty()) {
    const ExprId cur = work.back();
    work.pop_back();
    if (!mark(cur)) continue;
    const Node& n = nodes_[cur];
    if (n.op == ExprOp::kVar) {
      const auto v = static_cast<VarId>(n.imm);
      bool dup = false;
      for (const VarId prev : out) {
        if (prev == v) { dup = true; break; }
      }
      if (!dup) out.push_back(v);
      continue;
    }
    // Push in reverse so a, b, c pop in source order (stable first-occurrence
    // sequencing for the variables).
    if (n.c != kNoExpr) work.push_back(n.c);
    if (n.b != kNoExpr) work.push_back(n.b);
    if (n.a != kNoExpr) work.push_back(n.a);
  }
}

std::int64_t ExprPool::eval(
    ExprId e, const std::unordered_map<VarId, std::int64_t>& asgn) const {
  const Node& n = nodes_[e];
  switch (n.op) {
    case ExprOp::kConst:
      return n.imm;
    case ExprOp::kVar: {
      auto it = asgn.find(static_cast<VarId>(n.imm));
      return it == asgn.end() ? 0 : it->second;
    }
    case ExprOp::kNeg:
      return static_cast<std::int64_t>(
          0 - static_cast<std::uint64_t>(eval(n.a, asgn)));
    case ExprOp::kNot:
      return eval(n.a, asgn) == 0 ? 1 : 0;
    case ExprOp::kIte:
      return eval(n.a, asgn) != 0 ? eval(n.b, asgn) : eval(n.c, asgn);
    default:
      break;
  }
  const std::int64_t a = eval(n.a, asgn);
  const std::int64_t b = eval(n.b, asgn);
  const auto ua = static_cast<std::uint64_t>(a);
  const auto ub = static_cast<std::uint64_t>(b);
  switch (n.op) {
    case ExprOp::kAdd: return static_cast<std::int64_t>(ua + ub);
    case ExprOp::kSub: return static_cast<std::int64_t>(ua - ub);
    case ExprOp::kMul: return static_cast<std::int64_t>(ua * ub);
    case ExprOp::kDiv:
      if (b == 0) return 0;  // screened before expr construction
      if (a == INT64_MIN && b == -1) return INT64_MIN;
      return a / b;
    case ExprOp::kRem:
      if (b == 0) return 0;
      if (a == INT64_MIN && b == -1) return 0;
      return a % b;
    case ExprOp::kEq: return a == b;
    case ExprOp::kNe: return a != b;
    case ExprOp::kLt: return a < b;
    case ExprOp::kLe: return a <= b;
    case ExprOp::kAnd: return (a != 0) && (b != 0);
    case ExprOp::kOr: return (a != 0) || (b != 0);
    default:
      assert(false && "unhandled op");
      return 0;
  }
}

std::string ExprPool::to_string(ExprId e) const {
  const Node& n = nodes_[e];
  switch (n.op) {
    case ExprOp::kConst:
      return std::to_string(n.imm);
    case ExprOp::kVar:
      return vars_[static_cast<std::size_t>(n.imm)].name;
    case ExprOp::kNeg:
      return "-(" + to_string(n.a) + ")";
    case ExprOp::kNot:
      return "!(" + to_string(n.a) + ")";
    case ExprOp::kIte:
      return "(" + to_string(n.a) + " ? " + to_string(n.b) + " : " +
             to_string(n.c) + ")";
    default:
      return "(" + to_string(n.a) + " " + expr_op_name(n.op) + " " +
             to_string(n.b) + ")";
  }
}

}  // namespace statsym::solver
