// Constraint solver over the expression DAG.
//
// The STP stand-in: decides satisfiability of conjunctions of boolean
// expressions and produces models (used to generate the concrete crashing
// inputs the paper reports). The algorithm is interval constraint
// propagation (HC4-style narrowing) to a fixpoint, followed by
// branch-and-bound search that bisects variable domains. Over the bounded
// domains used by the mini-IR programs (input bytes in [0,255], lengths and
// counters in small ranges) the procedure is complete given enough budget;
// exhausting the budget yields kUnknown, which callers treat conservatively.
//
// A query-optimization layer sits between check()/check_with() and that
// decision procedure: independence slicing (solver/slicer.h) partitions each
// query into variable-disjoint sub-queries, and every slice runs a fast-path
// cascade — per-slice local cache → model reuse (solver/model_cache.h) →
// cross-worker shared cache (solver/cache.h) — before the procedure is
// invoked. Canonical solves are pure functions of the slice structure (RNG
// seeded from the slice digest), so any cache hit is bit-identical to the
// solve it replaces; see DESIGN.md §"Solver" for the determinism argument.
#pragma once

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"
#include "solver/cache.h"
#include "solver/expr.h"
#include "solver/interval.h"
#include "solver/model_cache.h"
#include "solver/result.h"
#include "solver/slicer.h"
#include "support/rng.h"
#include "support/stopwatch.h"

namespace statsym::solver {

// Sparse variable-domain map layered over the pool's declared domains.
//
// Two-tier copy-on-write (DESIGN.md §13): a mutable overlay private to the
// owner plus an optional frozen chain of immutable base layers shared with
// fork siblings. Solver-internal maps never fork, keep a null chain and
// behave exactly like the old flat map (plain copies stay cheap: the copy
// shares the chain pointer and duplicates only the overlay). Path-constraint
// maps fork at every state clone, so a fork copies O(overlay) entries
// instead of every domain ever narrowed on the path.
class DomainMap {
 public:
  Interval get(VarId v, const ExprPool& p) const {
    if (const auto it = map_.find(v); it != map_.end()) return it->second;
    for (const Layer* l = base_.get(); l != nullptr; l = l->prev.get()) {
      if (const auto it = l->map.find(v); it != l->map.end()) {
        return it->second;
      }
    }
    const VarInfo& vi = p.var(v);
    return {vi.lo, vi.hi};
  }

  void set(VarId v, Interval iv) {
    auto [it, inserted] = map_.try_emplace(v, iv);
    if (!inserted) {
      if (!(it->second == iv)) {
        it->second = iv;
        ++version_;
      }
      return;
    }
    // First overlay write for v: the change counter moves only when the
    // value differs from what the frozen chain already recorded, preserving
    // the flat map's quiescence semantics across forks.
    for (const Layer* l = base_.get(); l != nullptr; l = l->prev.get()) {
      if (const auto cit = l->map.find(v); cit != l->map.end()) {
        if (!(cit->second == iv)) ++version_;
        return;
      }
    }
    ++version_;
  }

  // Monotone change counter: compare across a propagation sweep to detect
  // quiescence without snapshotting the map.
  std::uint64_t version() const { return version_; }

  // Freezes the overlay into the shared chain and returns a sibling sharing
  // every narrowing recorded so far. Flattens when the chain gets deep so
  // get() stays O(small).
  DomainMap fork() {
    if (!map_.empty()) {
      const std::uint32_t depth = base_ ? base_->depth + 1 : 0;
      auto layer = std::make_shared<Layer>();
      if (depth >= kMaxDepth) {
        // Merge oldest→newest so newer narrowings win.
        std::vector<const Layer*> chain;
        for (const Layer* l = base_.get(); l != nullptr; l = l->prev.get()) {
          chain.push_back(l);
        }
        for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
          for (const auto& [v, iv] : (*rit)->map) layer->map[v] = iv;
        }
        for (const auto& [v, iv] : map_) layer->map[v] = iv;
        base_count_ = layer->map.size();
      } else {
        layer->prev = base_;
        layer->depth = depth;
        layer->map = std::move(map_);
        base_count_ += layer->map.size();
      }
      base_ = std::move(layer);
      map_.clear();
    }
    return *this;
  }

  // Approximate heap footprint, used for KLEE-style state memory accounting.
  // Counts the full logical contents (chain + overlay): the budget tracks
  // what the path retains, shared or not.
  std::size_t byte_size() const {
    return (map_.size() + base_count_) * (sizeof(VarId) + sizeof(Interval) + 16);
  }

  // Bytes a fork/copy actually duplicates (the overlay; the chain is shared).
  std::size_t shallow_bytes() const {
    return map_.size() * (sizeof(VarId) + sizeof(Interval) + 16);
  }

 private:
  struct Layer {
    std::shared_ptr<const Layer> prev;
    std::unordered_map<VarId, Interval> map;
    std::uint32_t depth{0};
  };
  static constexpr std::uint32_t kMaxDepth = 8;

  std::unordered_map<VarId, Interval> map_;  // mutable overlay
  std::shared_ptr<const Layer> base_;        // frozen shared chain
  std::size_t base_count_{0};  // entries across the chain (with shadowing)
  std::uint64_t version_{0};
};

// Interval evaluation of an expression under a domain map. Boolean-valued
// operators yield [0,0], [1,1] or [0,1].
Interval eval_interval(const ExprPool& p, ExprId e, const DomainMap& d);

// Evaluation context with memoisation. One context serves one top-level
// propagate() call: narrowing a variable mid-propagation leaves memoised
// intervals stale-but-wider, which keeps the derived targets sound (they
// over-approximate), merely a little less precise. Without the memo,
// narrowing a deep expression spine re-evaluates sibling subtrees at every
// level — O(n²) on the accumulator expressions the apps build in loops.
class EvalCtx {
 public:
  EvalCtx(const ExprPool& p, const DomainMap& d) : p_(p), d_(d) {}
  Interval eval(ExprId e);

 private:
  const ExprPool& p_;
  const DomainMap& d_;
  std::unordered_map<ExprId, Interval> memo_;
};

// Narrows `d` under the assumption that boolean expression `e` has truth
// value `want`. Returns false when a contradiction (empty domain) is
// derived. One pass; drive to fixpoint by re-running while domains change.
bool propagate(const ExprPool& p, ExprId e, bool want, DomainMap& d);

struct SolverStats {
  std::uint64_t queries{0};
  std::uint64_t sat{0};
  std::uint64_t unsat{0};
  std::uint64_t unknown{0};
  // Query-optimization layer (per sliced sub-query, in probe order):
  std::uint64_t cache_hits{0};        // local per-slice cache hits
  std::uint64_t model_reuse_hits{0};  // stored-model fast-path proofs
  std::uint64_t shared_cache_hits{0};  // cross-worker shared cache hits
  std::uint64_t slices{0};             // sliced sub-queries decided
  std::uint64_t multi_slice_queries{0};  // queries that split into >1 slice
  std::uint64_t solves{0};            // full decision-procedure invocations
  double solve_seconds{0.0};          // wall time inside those invocations
  std::uint64_t search_nodes{0};
  std::uint64_t propagation_rounds{0};
  // Branch queries the symbolic executor never issued because the static
  // analysis (src/analysis/) had already decided the branch.
  std::uint64_t static_prunes{0};

  SolverStats& operator+=(const SolverStats& o) {
    queries += o.queries;
    sat += o.sat;
    unsat += o.unsat;
    unknown += o.unknown;
    cache_hits += o.cache_hits;
    model_reuse_hits += o.model_reuse_hits;
    shared_cache_hits += o.shared_cache_hits;
    slices += o.slices;
    multi_slice_queries += o.multi_slice_queries;
    solves += o.solves;
    solve_seconds += o.solve_seconds;
    search_nodes += o.search_nodes;
    propagation_rounds += o.propagation_rounds;
    static_prunes += o.static_prunes;
    return *this;
  }

  // Fraction of sliced sub-queries answered without the decision procedure.
  double fast_path_rate() const {
    const std::uint64_t hits =
        cache_hits + model_reuse_hits + shared_cache_hits;
    return slices == 0 ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(slices);
  }
  // Estimated solver wall time the fast paths avoided (hits × mean solve).
  double solve_seconds_saved() const {
    if (solves == 0) return 0.0;
    const std::uint64_t hits =
        cache_hits + model_reuse_hits + shared_cache_hits;
    return static_cast<double>(hits) * (solve_seconds /
                                        static_cast<double>(solves));
  }
};

struct SolverOptions {
  // Maximum branch-and-bound nodes per query before giving up (kUnknown).
  std::uint64_t max_search_nodes{4'000};
  // Maximum propagation sweeps over the constraint set per fixpoint.
  int max_fixpoint_rounds{8};
  // Wall-clock deadline per query; exceeded searches return kUnknown
  // (callers treat unknown conservatively). Keeps one pathological query
  // from starving the whole exploration.
  double max_query_seconds{0.25};
  // Random full assignments attempted per search node before bisecting —
  // very effective on wide disjunctions ("some byte is uppercase") where
  // boundary probes (lo/hi/mid) systematically miss.
  int random_model_tries{8};
  std::uint64_t seed{0x5eed};
  // Disables the search phase: pure interval propagation. Faster but
  // incomplete — kept for the ablation benchmark.
  bool propagation_only{false};
  // --- query-optimization layer (see DESIGN.md §"Solver") -----------------
  // Partition each query into variable-independence slices and decide (and
  // cache) them separately.
  bool enable_slicing{true};
  // Re-evaluate retained satisfying assignments against new sub-queries
  // before invoking the decision procedure.
  bool enable_model_reuse{true};
  // Bound on retained models (0 disables reuse outright).
  std::size_t model_cache_size{32};
};

class Solver {
 public:
  explicit Solver(ExprPool& pool, SolverOptions opts = {});

  // Optional per-owner query cache (see solver/cache.h). Entries record
  // this solver's own returned results; safe for any single-threaded owner.
  void set_cache(QueryCache* cache) { cache_ = cache; }
  // Optional cross-worker cache. Receives only canonical solve results and
  // must outlive the solver; safe to share across threads.
  void set_shared_cache(SharedQueryCache* cache) { shared_ = cache; }
  // Optional structured tracing (obs/trace.h): one kSolverQuery event per
  // check(), one kSolverSlice event per sliced sub-query. Shared-cache hits
  // and canonical solves report the same level (they are bit-identical by
  // construction), so the event stream stays schedule-invariant.
  void set_trace(obs::TraceBuffer* trace) { trace_ = trace; }

  // Decides the conjunction of `constraints`. With slicing enabled the set
  // is partitioned into independent sub-queries decided (and cached)
  // separately; the combined verdict and merged model are equivalent to the
  // whole-set solve.
  SolveResult check(std::span<const ExprId> constraints);

  // Convenience: satisfiability of `constraints ∧ extra`.
  SolveResult check_with(std::span<const ExprId> constraints, ExprId extra);

  const SolverStats& stats() const { return stats_; }
  ExprPool& pool() { return pool_; }

 private:
  // Per-query precomputed context: the constraint set with the variables of
  // each constraint and of the whole query, computed once.
  struct QueryCtx {
    std::vector<ExprId> cs;
    std::vector<std::vector<VarId>> cs_vars;  // parallel to cs
    std::vector<VarId> all_vars;
  };

  // Decides one independence slice through the fast-path cascade: local
  // cache → model reuse → shared cache → canonical solve. Probe order is
  // deterministic-history-first, which the cross-worker determinism
  // argument relies on (DESIGN.md §"Solver").
  SolveResult solve_slice(const Slice& slice);

  // The canonical decision procedure on one slice: constraints in
  // fingerprint order, RNG seeded from the slice digest — a pure function
  // of the slice structure, identical in every worker.
  SolveResult solve_canonical(const Slice& slice,
                              std::span<const std::size_t> order,
                              const Fp128& slice_fp);

  // Runs propagation over all constraints to a fixpoint. Returns false on
  // contradiction.
  bool fixpoint(const QueryCtx& ctx, DomainMap& d);

  // Attempts cheap candidate models (domain boundaries, midpoints, random
  // samples). Returns true and fills `model` when one satisfies everything.
  bool try_models(const QueryCtx& ctx, const DomainMap& d, Model& model);

  // Greedy repair of a failing assignment against counting constraints
  // (K <= Σ indicators, Σ <= K). Returns true when `m` satisfies the whole
  // query after repair.
  bool repair_model(const QueryCtx& ctx, const DomainMap& d, Model& m);

  // Recursive bisection search. Returns kSat/kUnsat, or kUnknown when the
  // node budget runs out.
  Sat search(const QueryCtx& ctx, DomainMap d, Model& model,
             std::uint64_t& budget);

  // Picks the variable to branch on: smallest non-point domain among the
  // variables of undecided constraints. Returns false if all decided.
  // When an undecided constraint has the shape `var != const` with the
  // constant strictly inside the domain, the constant is reported as a
  // *hole*: splitting there resolves the constraint in one node, where
  // midpoint bisection would need log(width) nodes per disequality.
  bool pick_branch_var(const QueryCtx& ctx, const DomainMap& d, VarId& out,
                       bool& has_hole, std::int64_t& hole) const;

  ExprPool& pool_;
  SolverOptions opts_;
  SolverStats stats_;
  QueryCache* cache_{nullptr};
  SharedQueryCache* shared_{nullptr};
  obs::TraceBuffer* trace_{nullptr};
  ModelCache model_cache_;
  ExprFingerprinter fp_;
  Fp128 opts_salt_;  // namespaces shared-cache keys by option tier
  // Reseeded per canonical solve from the slice digest, so every solve is a
  // pure function of the slice (cache hit ≡ recomputation).
  Rng rng_;
  Stopwatch query_sw_;  // restarted per check(); read by search()
};

}  // namespace statsym::solver
