// Constraint solver over the expression DAG.
//
// The STP stand-in: decides satisfiability of conjunctions of boolean
// expressions and produces models (used to generate the concrete crashing
// inputs the paper reports). The algorithm is interval constraint
// propagation (HC4-style narrowing) to a fixpoint, followed by
// branch-and-bound search that bisects variable domains. Over the bounded
// domains used by the mini-IR programs (input bytes in [0,255], lengths and
// counters in small ranges) the procedure is complete given enough budget;
// exhausting the budget yields kUnknown, which callers treat conservatively.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "solver/expr.h"
#include "solver/interval.h"
#include "solver/result.h"
#include "support/rng.h"
#include "support/stopwatch.h"

namespace statsym::solver {

class QueryCache;

// Sparse variable-domain map layered over the pool's declared domains.
class DomainMap {
 public:
  Interval get(VarId v, const ExprPool& p) const {
    auto it = map_.find(v);
    if (it != map_.end()) return it->second;
    const VarInfo& vi = p.var(v);
    return {vi.lo, vi.hi};
  }

  void set(VarId v, Interval iv) {
    auto [it, inserted] = map_.try_emplace(v, iv);
    if (inserted || !(it->second == iv)) {
      it->second = iv;
      ++version_;
    }
  }

  // Monotone change counter: compare across a propagation sweep to detect
  // quiescence without snapshotting the map.
  std::uint64_t version() const { return version_; }

  const std::unordered_map<VarId, Interval>& entries() const { return map_; }

  // Approximate heap footprint, used for KLEE-style state memory accounting.
  std::size_t byte_size() const {
    return map_.size() * (sizeof(VarId) + sizeof(Interval) + 16);
  }

 private:
  std::unordered_map<VarId, Interval> map_;
  std::uint64_t version_{0};
};

// Interval evaluation of an expression under a domain map. Boolean-valued
// operators yield [0,0], [1,1] or [0,1].
Interval eval_interval(const ExprPool& p, ExprId e, const DomainMap& d);

// Evaluation context with memoisation. One context serves one top-level
// propagate() call: narrowing a variable mid-propagation leaves memoised
// intervals stale-but-wider, which keeps the derived targets sound (they
// over-approximate), merely a little less precise. Without the memo,
// narrowing a deep expression spine re-evaluates sibling subtrees at every
// level — O(n²) on the accumulator expressions the apps build in loops.
class EvalCtx {
 public:
  EvalCtx(const ExprPool& p, const DomainMap& d) : p_(p), d_(d) {}
  Interval eval(ExprId e);

 private:
  const ExprPool& p_;
  const DomainMap& d_;
  std::unordered_map<ExprId, Interval> memo_;
};

// Narrows `d` under the assumption that boolean expression `e` has truth
// value `want`. Returns false when a contradiction (empty domain) is
// derived. One pass; drive to fixpoint by re-running while domains change.
bool propagate(const ExprPool& p, ExprId e, bool want, DomainMap& d);

struct SolverStats {
  std::uint64_t queries{0};
  std::uint64_t sat{0};
  std::uint64_t unsat{0};
  std::uint64_t unknown{0};
  std::uint64_t cache_hits{0};
  std::uint64_t search_nodes{0};
  std::uint64_t propagation_rounds{0};
};

struct SolverOptions {
  // Maximum branch-and-bound nodes per query before giving up (kUnknown).
  std::uint64_t max_search_nodes{4'000};
  // Maximum propagation sweeps over the constraint set per fixpoint.
  int max_fixpoint_rounds{8};
  // Wall-clock deadline per query; exceeded searches return kUnknown
  // (callers treat unknown conservatively). Keeps one pathological query
  // from starving the whole exploration.
  double max_query_seconds{0.25};
  // Random full assignments attempted per search node before bisecting —
  // very effective on wide disjunctions ("some byte is uppercase") where
  // boundary probes (lo/hi/mid) systematically miss.
  int random_model_tries{8};
  std::uint64_t seed{0x5eed};
  // Disables the search phase: pure interval propagation. Faster but
  // incomplete — kept for the ablation benchmark.
  bool propagation_only{false};
};

class Solver {
 public:
  explicit Solver(ExprPool& pool, SolverOptions opts = {});

  // Optional shared query cache (see solver/cache.h).
  void set_cache(QueryCache* cache) { cache_ = cache; }

  // Decides the conjunction of `constraints`.
  SolveResult check(std::span<const ExprId> constraints);

  // Convenience: satisfiability of `constraints ∧ extra`.
  SolveResult check_with(std::span<const ExprId> constraints, ExprId extra);

  const SolverStats& stats() const { return stats_; }
  ExprPool& pool() { return pool_; }

 private:
  // Per-query precomputed context: the constraint set with the variables of
  // each constraint and of the whole query, computed once.
  struct QueryCtx {
    std::vector<ExprId> cs;
    std::vector<std::vector<VarId>> cs_vars;  // parallel to cs
    std::vector<VarId> all_vars;
  };

  QueryCtx make_ctx(std::vector<ExprId> cs);

  // Runs propagation over all constraints to a fixpoint. Returns false on
  // contradiction.
  bool fixpoint(const QueryCtx& ctx, DomainMap& d);

  // Attempts cheap candidate models (domain boundaries, midpoints, random
  // samples). Returns true and fills `model` when one satisfies everything.
  bool try_models(const QueryCtx& ctx, const DomainMap& d, Model& model);

  // Greedy repair of a failing assignment against counting constraints
  // (K <= Σ indicators, Σ <= K). Returns true when `m` satisfies the whole
  // query after repair.
  bool repair_model(const QueryCtx& ctx, const DomainMap& d, Model& m);

  // Recursive bisection search. Returns kSat/kUnsat, or kUnknown when the
  // node budget runs out.
  Sat search(const QueryCtx& ctx, DomainMap d, Model& model,
             std::uint64_t& budget);

  // Picks the variable to branch on: smallest non-point domain among the
  // variables of undecided constraints. Returns false if all decided.
  // When an undecided constraint has the shape `var != const` with the
  // constant strictly inside the domain, the constant is reported as a
  // *hole*: splitting there resolves the constraint in one node, where
  // midpoint bisection would need log(width) nodes per disequality.
  bool pick_branch_var(const QueryCtx& ctx, const DomainMap& d, VarId& out,
                       bool& has_hole, std::int64_t& hole) const;

  ExprPool& pool_;
  SolverOptions opts_;
  SolverStats stats_;
  QueryCache* cache_{nullptr};
  Rng rng_;
  Stopwatch query_sw_;  // restarted per check(); read by search()
};

}  // namespace statsym::solver
