// Symbolic expression DAG with hash-consing.
//
// Plays the role of KLEE's Expr/STP layer: path constraints and symbolic
// register values are nodes in a shared pool. Hash-consing gives structural
// identity (equal trees share one id), which makes constraint-set caching and
// cheap equality possible. Construction goes through ExprPool::mk*, which
// applies algebraic simplification (solver/simplify.cc) so the pool only
// contains canonical nodes.
//
// The theory is integer arithmetic with comparisons and boolean structure —
// the fragment needed for the mini-IR's path constraints. String-length
// constraints are expressed over per-byte variables exactly as the paper's
// workaround does (footnote 2: "constrain the index at which the first '\0'
// resides").
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

namespace statsym::solver {

using ExprId = std::uint32_t;
using VarId = std::uint32_t;
inline constexpr ExprId kNoExpr = std::numeric_limits<ExprId>::max();

enum class ExprOp : std::uint8_t {
  kConst,  // imm
  kVar,    // var (VarId in imm)
  // Arithmetic (int64 wraparound semantics, matching ir::eval_binop).
  kAdd,
  kSub,
  kMul,
  kDiv,  // division by zero evaluates to 0 (screened before reaching here)
  kRem,
  kNeg,
  // Comparisons (result 0/1). kGt/kGe are normalised away at construction.
  kEq,
  kNe,
  kLt,
  kLe,
  // Boolean structure over truthiness (non-zero = true; result 0/1).
  kAnd,
  kOr,
  kNot,
  kIte,  // a ? b : c
};

const char* expr_op_name(ExprOp op);
bool is_cmp_op(ExprOp op);
bool is_bool_op(ExprOp op);  // cmp or and/or/not (result always 0/1)

struct VarInfo {
  std::string name;
  std::int64_t lo{std::numeric_limits<std::int64_t>::min()};
  std::int64_t hi{std::numeric_limits<std::int64_t>::max()};
};

class ExprPool {
 public:
  ExprPool();

  // --- variables ---------------------------------------------------------
  VarId new_var(std::string name, std::int64_t lo, std::int64_t hi);
  const VarInfo& var(VarId v) const { return vars_[v]; }
  std::size_t num_vars() const { return vars_.size(); }

  // --- construction (simplifying) ----------------------------------------
  ExprId constant(std::int64_t v);
  ExprId var_expr(VarId v);
  ExprId unary(ExprOp op, ExprId a);              // kNeg, kNot
  ExprId binary(ExprOp op, ExprId a, ExprId b);   // everything two-operand
  ExprId ite(ExprId c, ExprId t, ExprId f);

  ExprId true_expr() const { return true_; }
  ExprId false_expr() const { return false_; }

  // Convenience builders.
  ExprId add(ExprId a, ExprId b) { return binary(ExprOp::kAdd, a, b); }
  ExprId sub(ExprId a, ExprId b) { return binary(ExprOp::kSub, a, b); }
  ExprId mul(ExprId a, ExprId b) { return binary(ExprOp::kMul, a, b); }
  ExprId eq(ExprId a, ExprId b) { return binary(ExprOp::kEq, a, b); }
  ExprId ne(ExprId a, ExprId b) { return binary(ExprOp::kNe, a, b); }
  ExprId lt(ExprId a, ExprId b) { return binary(ExprOp::kLt, a, b); }
  ExprId le(ExprId a, ExprId b) { return binary(ExprOp::kLe, a, b); }
  ExprId gt(ExprId a, ExprId b) { return binary(ExprOp::kLt, b, a); }
  ExprId ge(ExprId a, ExprId b) { return binary(ExprOp::kLe, b, a); }
  ExprId land(ExprId a, ExprId b) { return binary(ExprOp::kAnd, a, b); }
  ExprId lor(ExprId a, ExprId b) { return binary(ExprOp::kOr, a, b); }
  ExprId lnot(ExprId a) { return unary(ExprOp::kNot, a); }

  // Coerces an arbitrary integer expression to a boolean one (e != 0).
  ExprId truthy(ExprId e);

  // --- inspection ----------------------------------------------------------
  ExprOp op(ExprId e) const { return nodes_[e].op; }
  bool is_const(ExprId e) const { return op(e) == ExprOp::kConst; }
  std::int64_t const_val(ExprId e) const { return nodes_[e].imm; }
  bool is_var(ExprId e) const { return op(e) == ExprOp::kVar; }
  VarId var_of(ExprId e) const { return static_cast<VarId>(nodes_[e].imm); }
  ExprId lhs(ExprId e) const { return nodes_[e].a; }
  ExprId rhs(ExprId e) const { return nodes_[e].b; }
  ExprId third(ExprId e) const { return nodes_[e].c; }

  // Collects the variables occurring in `e` into `out` (deduplicated).
  void collect_vars(ExprId e, std::vector<VarId>& out) const;

  // Concrete evaluation under a total assignment (missing vars read 0).
  std::int64_t eval(ExprId e,
                    const std::unordered_map<VarId, std::int64_t>& asgn) const;

  std::string to_string(ExprId e) const;

  std::size_t num_nodes() const { return nodes_.size(); }

  // Raw interning used by construction after simplification decided the
  // final node shape. Exposed for the simplifier only.
  ExprId intern(ExprOp op, std::int64_t imm, ExprId a, ExprId b, ExprId c);

 private:
  struct Node {
    ExprOp op;
    std::int64_t imm;  // kConst value / kVar VarId
    ExprId a, b, c;
    bool operator==(const Node& o) const = default;
  };
  struct NodeHash {
    std::size_t operator()(const Node& n) const;
  };

  std::vector<Node> nodes_;
  std::unordered_map<Node, ExprId, NodeHash> interned_;
  std::vector<VarInfo> vars_;
  ExprId true_{kNoExpr};
  ExprId false_{kNoExpr};
};

}  // namespace statsym::solver
