// Symbolic expression DAG with hash-consing.
//
// Plays the role of KLEE's Expr/STP layer: path constraints and symbolic
// register values are nodes in a shared pool. Hash-consing gives structural
// identity (equal trees share one id), which makes constraint-set caching and
// cheap equality possible. Construction goes through ExprPool::mk*, which
// applies algebraic simplification (solver/simplify.cc) so the pool only
// contains canonical nodes.
//
// The pool is shared by every worker of a parallel executor run, so it is
// thread-safe by construction (DESIGN.md §13):
//   * nodes and variables live in append-only chunked stores — a published
//     id stays valid forever and reads are lock-free;
//   * interning runs under a small array of hash-sharded mutexes (one
//     variable mutex), so concurrent construction of the same tree yields
//     the same id and the node *set* of a run is schedule-invariant;
//   * every node carries its structural fingerprint, computed once at intern
//     time from the children's fingerprints. Variables fingerprint by
//     (name, lo, hi) — never by VarId — which is what lets canonical forms,
//     slice keys and cached models agree across workers and across pools.
//   * variables intern by (name, lo, hi): re-declaring the same symbolic
//     input on a sibling path returns the same VarId, so sibling constraint
//     sets share structure instead of renaming.
//
// The theory is integer arithmetic with comparisons and boolean structure —
// the fragment needed for the mini-IR's path constraints. String-length
// constraints are expressed over per-byte variables exactly as the paper's
// workaround does (footnote 2: "constrain the index at which the first '\0'
// resides").
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "solver/fp128.h"

namespace statsym::solver {

using ExprId = std::uint32_t;
using VarId = std::uint32_t;
inline constexpr ExprId kNoExpr = std::numeric_limits<ExprId>::max();

enum class ExprOp : std::uint8_t {
  kConst,  // imm
  kVar,    // var (VarId in imm)
  // Arithmetic (int64 wraparound semantics, matching ir::eval_binop).
  kAdd,
  kSub,
  kMul,
  kDiv,  // division by zero evaluates to 0 (screened before reaching here)
  kRem,
  kNeg,
  // Comparisons (result 0/1). kGt/kGe are normalised away at construction.
  kEq,
  kNe,
  kLt,
  kLe,
  // Boolean structure over truthiness (non-zero = true; result 0/1).
  kAnd,
  kOr,
  kNot,
  kIte,  // a ? b : c
};

const char* expr_op_name(ExprOp op);
bool is_cmp_op(ExprOp op);
bool is_bool_op(ExprOp op);  // cmp or and/or/not (result always 0/1)

struct VarInfo {
  std::string name;
  std::int64_t lo{std::numeric_limits<std::int64_t>::min()};
  std::int64_t hi{std::numeric_limits<std::int64_t>::max()};
  // Structural identity: fingerprint of (name, lo, hi). VarId deliberately
  // does not contribute, so the same declaration in two pools (or on two
  // sibling paths) has the same fingerprint.
  Fp128 fp{};
};

namespace detail {

// Append-only chunked store: publish-once slots behind a fixed directory of
// atomically installed chunks. Reads are lock-free; writers must serialise
// externally per logical key (the pool's intern mutexes do) but may append
// from different shards concurrently, which the atomic size cursor resolves.
template <typename T, unsigned ChunkBits, std::size_t MaxChunks>
class ChunkedStore {
 public:
  static constexpr std::size_t kChunkSize = std::size_t{1} << ChunkBits;

  ChunkedStore() = default;
  ChunkedStore(const ChunkedStore&) = delete;
  ChunkedStore& operator=(const ChunkedStore&) = delete;
  ~ChunkedStore() {
    for (auto& cp : chunks_) delete[] cp.load(std::memory_order_relaxed);
  }

  std::size_t push(T v) {
    const std::size_t i = size_.fetch_add(1, std::memory_order_relaxed);
    T* chunk = ensure_chunk(i >> ChunkBits);
    chunk[i & (kChunkSize - 1)] = std::move(v);
    return i;
  }

  const T& operator[](std::size_t i) const {
    return chunks_[i >> ChunkBits].load(std::memory_order_acquire)
                                  [i & (kChunkSize - 1)];
  }

  std::size_t size() const { return size_.load(std::memory_order_relaxed); }

 private:
  T* ensure_chunk(std::size_t ci) {
    T* c = chunks_.at(ci).load(std::memory_order_acquire);
    if (c != nullptr) return c;
    T* fresh = new T[kChunkSize];
    if (chunks_[ci].compare_exchange_strong(c, fresh,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      return fresh;
    }
    delete[] fresh;  // another shard won the install race
    return c;
  }

  std::array<std::atomic<T*>, MaxChunks> chunks_{};
  std::atomic<std::size_t> size_{0};
};

}  // namespace detail

class ExprPool {
 public:
  ExprPool();

  // --- variables ---------------------------------------------------------
  // Interned: an exact (name, lo, hi) re-declaration returns the existing
  // VarId. Different bounds under the same name still mint a fresh variable.
  VarId new_var(std::string name, std::int64_t lo, std::int64_t hi);
  const VarInfo& var(VarId v) const { return vars_[v]; }
  std::size_t num_vars() const { return vars_.size(); }
  // Reverse lookup by structural fingerprint — how a cross-pool cached model
  // (var-fp keyed) is re-bound to this pool's VarIds. nullopt when this pool
  // never declared the variable.
  std::optional<VarId> find_var(const Fp128& fp) const;

  // --- construction (simplifying) ----------------------------------------
  ExprId constant(std::int64_t v);
  ExprId var_expr(VarId v);
  ExprId unary(ExprOp op, ExprId a);              // kNeg, kNot
  ExprId binary(ExprOp op, ExprId a, ExprId b);   // everything two-operand
  ExprId ite(ExprId c, ExprId t, ExprId f);

  ExprId true_expr() const { return true_; }
  ExprId false_expr() const { return false_; }

  // Convenience builders.
  ExprId add(ExprId a, ExprId b) { return binary(ExprOp::kAdd, a, b); }
  ExprId sub(ExprId a, ExprId b) { return binary(ExprOp::kSub, a, b); }
  ExprId mul(ExprId a, ExprId b) { return binary(ExprOp::kMul, a, b); }
  ExprId eq(ExprId a, ExprId b) { return binary(ExprOp::kEq, a, b); }
  ExprId ne(ExprId a, ExprId b) { return binary(ExprOp::kNe, a, b); }
  ExprId lt(ExprId a, ExprId b) { return binary(ExprOp::kLt, a, b); }
  ExprId le(ExprId a, ExprId b) { return binary(ExprOp::kLe, a, b); }
  ExprId gt(ExprId a, ExprId b) { return binary(ExprOp::kLt, b, a); }
  ExprId ge(ExprId a, ExprId b) { return binary(ExprOp::kLe, b, a); }
  ExprId land(ExprId a, ExprId b) { return binary(ExprOp::kAnd, a, b); }
  ExprId lor(ExprId a, ExprId b) { return binary(ExprOp::kOr, a, b); }
  ExprId lnot(ExprId a) { return unary(ExprOp::kNot, a); }

  // Coerces an arbitrary integer expression to a boolean one (e != 0).
  ExprId truthy(ExprId e);

  // --- inspection ----------------------------------------------------------
  ExprOp op(ExprId e) const { return nodes_[e].op; }
  bool is_const(ExprId e) const { return op(e) == ExprOp::kConst; }
  std::int64_t const_val(ExprId e) const { return nodes_[e].imm; }
  bool is_var(ExprId e) const { return op(e) == ExprOp::kVar; }
  VarId var_of(ExprId e) const { return static_cast<VarId>(nodes_[e].imm); }
  ExprId lhs(ExprId e) const { return nodes_[e].a; }
  ExprId rhs(ExprId e) const { return nodes_[e].b; }
  ExprId third(ExprId e) const { return nodes_[e].c; }

  // Structural fingerprint, computed once at intern time. Equal structure —
  // with variables identified by declaration, not VarId — means equal
  // fingerprint, in this pool or any other.
  const Fp128& fp(ExprId e) const { return nodes_[e].fp; }

  // Collects the variables occurring in `e` into `out`, deduplicated, in
  // first-occurrence DFS order (a pure function of the tree's structure, so
  // the order agrees across workers whatever ids they saw first).
  void collect_vars(ExprId e, std::vector<VarId>& out) const;

  // Concrete evaluation under a total assignment (missing vars read 0).
  std::int64_t eval(ExprId e,
                    const std::unordered_map<VarId, std::int64_t>& asgn) const;

  std::string to_string(ExprId e) const;

  std::size_t num_nodes() const { return nodes_.size(); }

  // Raw interning used by construction after simplification decided the
  // final node shape. Exposed for the simplifier only.
  ExprId intern(ExprOp op, std::int64_t imm, ExprId a, ExprId b, ExprId c);

 private:
  struct Node {
    ExprOp op{ExprOp::kConst};
    std::int64_t imm{0};  // kConst value / kVar VarId
    ExprId a{kNoExpr}, b{kNoExpr}, c{kNoExpr};
    Fp128 fp{};
  };
  struct NodeKey {
    ExprOp op;
    std::int64_t imm;
    ExprId a, b, c;
    bool operator==(const NodeKey& o) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const;
  };

  static constexpr std::size_t kShards = 8;
  struct InternShard {
    std::mutex mu;
    std::unordered_map<NodeKey, ExprId, NodeKeyHash> map;
  };

  detail::ChunkedStore<Node, 12, 8192> nodes_;   // ≤ 33.5M nodes
  detail::ChunkedStore<VarInfo, 10, 1024> vars_;  // ≤ 1M variables
  mutable std::array<InternShard, kShards> shards_;
  mutable std::mutex var_mu_;
  std::map<std::tuple<std::string, std::int64_t, std::int64_t>, VarId>
      var_intern_;
  std::unordered_map<Fp128, VarId, Fp128Hash> var_by_fp_;
  ExprId true_{kNoExpr};
  ExprId false_{kNoExpr};
};

}  // namespace statsym::solver
