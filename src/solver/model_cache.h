// Satisfying-assignment reuse (the counterexample-cache fast path).
//
// Models from prior SAT answers are retained in a small bounded store; a new
// sub-query first re-evaluates those assignments concretely (cheap integer
// evaluation, no propagation or search) and returns kSat immediately when
// one still satisfies every constraint. Sibling states forked from a common
// prefix mostly append constraints the parent's model already satisfies, so
// this skips the decision procedure for the common case.
//
// The store is strictly per-solver: its contents depend on the owner's query
// history, which is deterministic for one worker but timing-dependent across
// workers. Keeping reuse local (and probing it *before* the cross-worker
// shared cache) is what preserves byte-identical verdicts at any --jobs —
// see the determinism argument in DESIGN.md §"Solver".
#pragma once

#include <deque>
#include <span>

#include "solver/expr.h"
#include "solver/result.h"

namespace statsym::solver {

class ModelCache {
 public:
  explicit ModelCache(std::size_t capacity = 32) : cap_(capacity) {}

  // Probes stored models (most recent first) against a sub-query. A model
  // is usable only when it assigns every variable of `vars`; on success
  // `out` receives the assignment restricted to `vars` and true is
  // returned. Evaluation uses the pool's concrete evaluator, so a hit is a
  // *proof* of satisfiability, never a heuristic.
  bool probe(const ExprPool& pool, std::span<const ExprId> cs,
             std::span<const VarId> vars, Model& out) const;

  // Records a satisfying assignment for future probes. Exact duplicates of
  // a stored model are dropped; beyond capacity the oldest entry is evicted.
  void remember(const Model& m);

  std::size_t size() const { return models_.size(); }
  void clear() { models_.clear(); }

 private:
  std::size_t cap_;
  std::deque<Model> models_;  // front = most recent
};

}  // namespace statsym::solver
