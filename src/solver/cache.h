// Query cache for the solver (the KLEE counterexample-cache analogue).
//
// Hash-consing makes ExprIds canonical within a pool, so a sorted constraint
// id vector hashes to a stable key for a query. Sibling states produced by
// forking share long constraint prefixes, which makes the hit rate high
// during path exploration.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "solver/expr.h"
#include "solver/result.h"

namespace statsym::solver {

class QueryCache {
 public:
  // FNV-1a over the id sequence. Input must be sorted for canonical keys.
  static std::uint64_t key_of(std::span<const ExprId> sorted_ids);

  const SolveResult* lookup(std::uint64_t key) const;
  void insert(std::uint64_t key, const SolveResult& result);

  std::size_t size() const { return map_.size(); }
  void clear() { map_.clear(); }

 private:
  std::unordered_map<std::uint64_t, SolveResult> map_;
};

}  // namespace statsym::solver
