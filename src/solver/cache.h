// Query caches for the solver (the KLEE counterexample-cache analogue).
//
// Two layers with different keys and lifetimes:
//
//  * QueryCache — per-solver (one executor), keyed on the *sorted constraint
//    id vector* of a sliced sub-query. Hash-consing makes ExprIds canonical
//    within a pool, so the sorted vector is a canonical key there. Entries
//    store the full id vector and verify it on lookup: a 64-bit hash
//    collision returns a miss, never another query's result.
//
//  * SharedQueryCache — one instance shared by every worker of a parallel
//    portfolio. ExprIds are pool-local, so keys are 128-bit *structural
//    fingerprints* of the sliced sub-query: a digest over the expression
//    DAG in which variables contribute (VarId, name, domain). A fingerprint
//    match therefore certifies that both pools agree on the identity of
//    every variable involved, which makes the stored model (VarId → value)
//    directly reusable by the looking pool. Shards with independent locks
//    keep worker contention low.
//
// Only *canonical* results enter the shared cache — results computed by the
// deterministic per-query decision procedure, never model-reuse fast-path
// answers and never budget-limited kUnknowns — so a shared hit is
// bit-identical to the solve the worker would otherwise have performed.
// That invariant is what keeps verdicts independent of worker timing; see
// DESIGN.md §"Solver".
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "solver/expr.h"
#include "solver/result.h"

namespace statsym::solver {

class QueryCache {
 public:
  // FNV-1a over the id sequence. Input must be sorted for canonical keys.
  static std::uint64_t key_of(std::span<const ExprId> sorted_ids);

  const SolveResult* lookup(std::span<const ExprId> sorted_ids) const;
  void insert(std::span<const ExprId> sorted_ids, const SolveResult& result);

  // Keyed variants: the regression seam for hash collisions. Two distinct
  // id vectors inserted under one forced key must each resolve to their own
  // result (and unknown vectors to a miss) — the pre-verification cache
  // returned whichever entry owned the key.
  const SolveResult* lookup_with_key(std::uint64_t key,
                                     std::span<const ExprId> sorted_ids) const;
  void insert_with_key(std::uint64_t key, std::span<const ExprId> sorted_ids,
                       const SolveResult& result);

  std::size_t size() const { return entries_; }
  void clear() {
    map_.clear();
    entries_ = 0;
  }

 private:
  struct Entry {
    std::vector<ExprId> ids;  // verified on lookup
    SolveResult result;
  };
  // Bucket list per key: colliding queries coexist instead of clobbering.
  std::unordered_map<std::uint64_t, std::vector<Entry>> map_;
  std::size_t entries_{0};
};

// 128-bit structural digest. Two lanes mixed with independent constants;
// treated as collision-free for cache identity (≈2^-128 per pair), with
// SAT-model hits additionally verified by concrete re-evaluation.
struct Fp128 {
  std::uint64_t lo{0};
  std::uint64_t hi{0};

  bool operator==(const Fp128&) const = default;
  bool operator<(const Fp128& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }
};

// Memoizing structural fingerprinter over one pool. Digests are
// pool-independent: constants contribute their value, variables contribute
// (VarId, name, domain), interior nodes contribute their operator and child
// digests. Memo entries stay valid because pool nodes are immutable.
class ExprFingerprinter {
 public:
  explicit ExprFingerprinter(const ExprPool& pool) : pool_(pool) {}

  Fp128 of(ExprId e);

  // Combines a sequence of constraint digests (pre-sorted by the caller for
  // a canonical key) into one query digest. `salt` namespaces the key — the
  // solver mixes in its option tier so fork-budget and validation-budget
  // results never alias.
  static Fp128 combine(std::span<const Fp128> sorted_fps, const Fp128& salt);

 private:
  const ExprPool& pool_;
  std::unordered_map<ExprId, Fp128> memo_;
};

// Thread-safe sharded cache shared across the workers of a portfolio.
class SharedQueryCache {
 public:
  explicit SharedQueryCache(std::size_t shards = 16);

  // On hit copies the stored result into `out`. `cs_fps` (the sorted
  // per-constraint digests) is compared against the stored vector, so even
  // a combined-key collision cannot cross-wire two queries.
  bool lookup(const Fp128& key, std::span<const Fp128> cs_fps,
              SolveResult& out) const;
  void insert(const Fp128& key, std::span<const Fp128> cs_fps,
              const SolveResult& result);

  std::size_t size() const;

  struct Counters {
    std::uint64_t hits{0};
    std::uint64_t misses{0};
    std::uint64_t insertions{0};
  };
  Counters counters() const;

 private:
  struct Entry {
    std::vector<Fp128> cs_fps;
    SolveResult result;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, std::vector<Entry>> map;
    std::uint64_t hits{0};
    std::uint64_t misses{0};
    std::uint64_t insertions{0};
  };

  Shard& shard_of(const Fp128& key) const {
    return shards_[static_cast<std::size_t>(key.hi) % shards_.size()];
  }

  // deque: Shard holds a mutex and must never be moved.
  mutable std::deque<Shard> shards_;
};

}  // namespace statsym::solver
