// Query caches for the solver (the KLEE counterexample-cache analogue).
//
// Two layers with different keys and lifetimes:
//
//  * QueryCache — per-solver (one executor), keyed on the *sorted constraint
//    id vector* of a sliced sub-query. Hash-consing makes ExprIds canonical
//    within a pool, so the sorted vector is a canonical key there. Entries
//    store the full id vector and verify it on lookup: a 64-bit hash
//    collision returns a miss, never another query's result.
//
//  * SharedQueryCache — one instance shared by every worker of a parallel
//    portfolio. ExprIds are pool-local, so keys are 128-bit *structural
//    fingerprints* of the sliced sub-query: a digest over the expression
//    DAG in which variables contribute (name, domain) — never VarId. Stored
//    models are therefore keyed by variable fingerprint and re-bound to the
//    looking pool's VarIds on lookup (ExprPool::find_var), which lets hits
//    transfer between pools that allocated their variables in different
//    orders. Shards with independent locks keep worker contention low.
//
// Only *canonical* results enter the shared cache — results computed by the
// deterministic per-query decision procedure, never model-reuse fast-path
// answers and never budget-limited kUnknowns — so a shared hit is
// bit-identical to the solve the worker would otherwise have performed.
// That invariant is what keeps verdicts independent of worker timing; see
// DESIGN.md §"Solver".
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "solver/expr.h"
#include "solver/fp128.h"
#include "solver/result.h"

namespace statsym::solver {

class QueryCache {
 public:
  // FNV-1a over the id sequence. Input must be sorted for canonical keys.
  static std::uint64_t key_of(std::span<const ExprId> sorted_ids);

  const SolveResult* lookup(std::span<const ExprId> sorted_ids) const;
  void insert(std::span<const ExprId> sorted_ids, const SolveResult& result);

  // Keyed variants: the regression seam for hash collisions. Two distinct
  // id vectors inserted under one forced key must each resolve to their own
  // result (and unknown vectors to a miss) — the pre-verification cache
  // returned whichever entry owned the key.
  const SolveResult* lookup_with_key(std::uint64_t key,
                                     std::span<const ExprId> sorted_ids) const;
  void insert_with_key(std::uint64_t key, std::span<const ExprId> sorted_ids,
                       const SolveResult& result);

  std::size_t size() const { return entries_; }
  void clear() {
    map_.clear();
    entries_ = 0;
  }

 private:
  struct Entry {
    std::vector<ExprId> ids;  // verified on lookup
    SolveResult result;
  };
  // Bucket list per key: colliding queries coexist instead of clobbering.
  std::unordered_map<std::uint64_t, std::vector<Entry>> map_;
  std::size_t entries_{0};
};

// Structural fingerprint access over one pool. The pool computes every
// node's digest at intern time (constants contribute their value, variables
// contribute (name, domain), interior nodes their operator and child
// digests), so `of` is an O(1) read — this class survives as the query-level
// combiner plus a stable seam for the solver.
class ExprFingerprinter {
 public:
  explicit ExprFingerprinter(const ExprPool& pool) : pool_(pool) {}

  Fp128 of(ExprId e) const { return pool_.fp(e); }

  // Combines a sequence of constraint digests (pre-sorted by the caller for
  // a canonical key) into one query digest. `salt` namespaces the key — the
  // solver mixes in its option tier so fork-budget and validation-budget
  // results never alias.
  static Fp128 combine(std::span<const Fp128> sorted_fps, const Fp128& salt);

 private:
  const ExprPool& pool_;
};

// One cache entry in pool-independent form: the full 128-bit combined key,
// the sorted per-constraint digests it verifies against, and the result with
// its model keyed by variable fingerprint. This is the unit the disk store
// (solver/cache_store.h) serialises — nothing in it references an ExprPool,
// so an entry written by one process is meaningful to any other.
struct PortableCacheEntry {
  Fp128 key;
  std::vector<Fp128> cs_fps;
  Sat sat{Sat::kUnknown};
  std::vector<std::pair<Fp128, std::int64_t>> model;  // sorted by var fp
};

// Thread-safe sharded cache shared across the workers of a portfolio.
class SharedQueryCache {
 public:
  explicit SharedQueryCache(std::size_t shards = 16);

  // On hit rebuilds the stored result against `pool` (models are stored
  // keyed by variable fingerprint and re-bound via ExprPool::find_var) and
  // copies it into `out`. `cs_fps` (the sorted per-constraint digests) is
  // compared against the stored vector, so even a combined-key collision
  // cannot cross-wire two queries; a model variable the looking pool never
  // declared turns the probe into a miss.
  bool lookup(const ExprPool& pool, const Fp128& key,
              std::span<const Fp128> cs_fps, SolveResult& out) const;
  void insert(const ExprPool& pool, const Fp128& key,
              std::span<const Fp128> cs_fps, const SolveResult& result);

  std::size_t size() const;

  // Snapshot of every entry in pool-independent form, sorted by (key,
  // cs_fps) so two caches holding the same entries serialise byte-identically
  // regardless of insertion schedule. Used by the disk store.
  std::vector<PortableCacheEntry> export_entries() const;

  // Re-inserts a portable entry (e.g. one loaded from the disk store).
  // Deduplicates exactly like insert(): an existing entry with the same key
  // and constraint digests wins, so importing over a live cache never
  // replaces a result a worker may already have observed. kUnknown results
  // are refused — only canonical sat/unsat verdicts may enter, the same
  // contract insert() relies on (DESIGN.md §"Solver").
  void import_entry(const PortableCacheEntry& e);

  struct Counters {
    std::uint64_t hits{0};
    std::uint64_t misses{0};
    std::uint64_t insertions{0};
  };
  Counters counters() const;

 private:
  struct Entry {
    Fp128 key;  // full combined key (the map is bucketed by key.lo only)
    std::vector<Fp128> cs_fps;
    Sat sat{Sat::kUnknown};
    // Model keyed by variable fingerprint, sorted — pool-independent.
    std::vector<std::pair<Fp128, std::int64_t>> model;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, std::vector<Entry>> map;
    std::uint64_t hits{0};
    std::uint64_t misses{0};
    std::uint64_t insertions{0};
  };

  Shard& shard_of(const Fp128& key) const {
    return shards_[static_cast<std::size_t>(key.hi) % shards_.size()];
  }

  // deque: Shard holds a mutex and must never be moved.
  mutable std::deque<Shard> shards_;
};

}  // namespace statsym::solver
