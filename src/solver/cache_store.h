// Disk-backed save/load for the shared solver query cache (the persistence
// layer behind `statsym serve`'s cross-run warm starts).
//
// The store is a versioned, line-delimited text format in the family of the
// monitor's LogShard wire format: one program block per analysed module,
// keyed by that module's 128-bit structural fingerprint, holding the
// program's PortableCacheEntry set. Every entry line carries its own
// checksum and is verified on load — a bit-flipped, truncated or otherwise
// unparseable entry is *dropped* (it will miss and be re-solved), never
// admitted, so a corrupted store can cost work but never cross-wire a
// verdict. That is the same contract QueryCache enforces for 64-bit key
// collisions, extended to bytes that crossed a filesystem.
//
// Whole-store failures are stricter: an unknown store format version or a
// malformed store header rejects the entire file (cold start with a clear
// error) instead of guessing at its layout.
//
//   qstore|<version>|<num_blocks>
//   qcache|<prog_fp.hi hex16>|<prog_fp.lo hex16>|<num_entries>
//   e|<key.hi>|<key.lo>|<sat>|<ncs>|<cs fp pairs>|<nmodel>|<fp pair=val>|<crc>
//   ...
//   endqcache
//   ...
//   endqstore
//
// All fingerprint halves are fixed-width lowercase hex; <sat> is 0 (sat) or
// 1 (unsat) — kUnknown results are never published to the shared cache and
// are refused on load; <crc> is FNV-1a64 over the entry line up to and
// including the '|' that precedes it.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>

#include "solver/cache.h"

namespace statsym::solver {

// Bump when the store layout changes shape. Readers accept exactly the
// versions they understand (currently: only this one).
inline constexpr std::uint32_t kCacheStoreVersion = 1;

struct CacheStoreStats {
  std::size_t blocks{0};            // program blocks written / parsed
  std::size_t entries_written{0};
  std::size_t entries_loaded{0};    // verified and imported
  std::size_t entries_rejected{0};  // failed checksum / parse (poisoned)
  std::size_t bytes{0};             // serialized size handled
};

// --- single program block --------------------------------------------------

// Serialises one cache's entries under `program_fp` (export_entries order,
// so equal caches produce equal bytes).
std::string serialize_cache_block(const SharedQueryCache& cache,
                                  const Fp128& program_fp,
                                  CacheStoreStats* stats = nullptr);

// Parses one block. The block header must be well-formed (else false with a
// reason); individual entry lines are verified independently and dropped on
// any mismatch, counted in stats->entries_rejected. `program_fp_out`
// receives the block's program fingerprint.
bool deserialize_cache_block(const std::string& text, Fp128& program_fp_out,
                             SharedQueryCache& out,
                             CacheStoreStats* stats = nullptr,
                             std::string* error = nullptr);

// --- whole store (many programs) ------------------------------------------

struct StoreBlockRef {
  Fp128 program_fp;
  const SharedQueryCache* cache{nullptr};
};

// Serialises the full program-fingerprint-keyed store. Callers pass blocks
// in a deterministic order (the serve session sorts by fingerprint).
std::string serialize_store(std::span<const StoreBlockRef> blocks,
                            CacheStoreStats* stats = nullptr);

// Loads a full store. `cache_for(program_fp)` returns the cache to populate
// for each block (creating it on demand). The store header/trailer and every
// block header must parse and the version must match, else the load fails
// whole (cold start); entry-level corruption only drops the poisoned
// entries. A truncated store (missing trailer or blocks) loads the verified
// prefix and reports the loss through `error` while still returning true —
// warm entries already verified are good regardless of what followed them.
bool load_store_text(
    const std::string& text,
    const std::function<SharedQueryCache&(const Fp128&)>& cache_for,
    CacheStoreStats* stats = nullptr, std::string* error = nullptr);

}  // namespace statsym::solver
