// 128-bit structural fingerprints.
//
// Fp128 digests identify expression structure, constraint slices and solver
// option blocks across workers (and, for the shared query cache, across
// pools). The two 64-bit lanes are absorbed with independent round constants
// so the halves never degenerate into copies; collisions at 128 bits are
// negligible against the cache sizes involved, and every cross-worker cache
// hit is additionally verified (per-constraint fingerprint comparison plus a
// concrete model re-proof), so a collision can cost work but never
// correctness.
//
// This header is include-cycle-free on purpose: expr.h needs fingerprints at
// intern time and cache.h needs them for keys, so both pull the primitive
// from here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace statsym::solver {

struct Fp128 {
  std::uint64_t lo{0};
  std::uint64_t hi{0};
  bool operator==(const Fp128&) const = default;
  bool operator<(const Fp128& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }
};

struct Fp128Hash {
  std::size_t operator()(const Fp128& f) const {
    return static_cast<std::size_t>(f.lo ^ (f.hi * 0x9e3779b97f4a7c15ULL));
  }
};

// SplitMix64 finalizer — the diffusion step between ingredients.
inline std::uint64_t fp_mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline Fp128 fp_absorb(Fp128 h, std::uint64_t v) {
  h.lo = fp_mix64(h.lo ^ v ^ 0x2545f4914f6cdd1dULL);
  h.hi = fp_mix64(h.hi ^ v ^ 0x9e6c63d0876a9a62ULL ^ (h.lo >> 1));
  return h;
}

inline Fp128 fp_absorb(Fp128 h, const Fp128& v) {
  h = fp_absorb(h, v.lo);
  return fp_absorb(h, v.hi);
}

inline std::uint64_t fp_hash_str(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace statsym::solver
