#include "solver/simplify.h"

#include <cassert>

namespace statsym::solver {
namespace {

std::int64_t fold(ExprOp op, std::int64_t a, std::int64_t b) {
  const auto ua = static_cast<std::uint64_t>(a);
  const auto ub = static_cast<std::uint64_t>(b);
  switch (op) {
    case ExprOp::kAdd: return static_cast<std::int64_t>(ua + ub);
    case ExprOp::kSub: return static_cast<std::int64_t>(ua - ub);
    case ExprOp::kMul: return static_cast<std::int64_t>(ua * ub);
    case ExprOp::kDiv:
      if (b == 0) return 0;
      if (a == INT64_MIN && b == -1) return INT64_MIN;
      return a / b;
    case ExprOp::kRem:
      if (b == 0) return 0;
      if (a == INT64_MIN && b == -1) return 0;
      return a % b;
    case ExprOp::kEq: return a == b;
    case ExprOp::kNe: return a != b;
    case ExprOp::kLt: return a < b;
    case ExprOp::kLe: return a <= b;
    case ExprOp::kAnd: return (a != 0) && (b != 0);
    case ExprOp::kOr: return (a != 0) || (b != 0);
    default:
      assert(false);
      return 0;
  }
}

bool commutative(ExprOp op) {
  return op == ExprOp::kAdd || op == ExprOp::kMul || op == ExprOp::kEq ||
         op == ExprOp::kNe || op == ExprOp::kAnd || op == ExprOp::kOr;
}

}  // namespace

ExprId simplify_unary(ExprPool& p, ExprOp op, ExprId a) {
  switch (op) {
    case ExprOp::kNeg:
      if (p.is_const(a)) {
        return p.constant(static_cast<std::int64_t>(
            0 - static_cast<std::uint64_t>(p.const_val(a))));
      }
      if (p.op(a) == ExprOp::kNeg) return p.lhs(a);  // -(-x) = x
      return p.intern(ExprOp::kNeg, 0, a, kNoExpr, kNoExpr);
    case ExprOp::kNot:
      if (p.is_const(a)) return p.constant(p.const_val(a) == 0 ? 1 : 0);
      switch (p.op(a)) {
        case ExprOp::kNot:
          // !!x: only collapses when x is already boolean-valued (0/1).
          if (is_bool_op(p.op(p.lhs(a)))) return p.lhs(a);
          break;
        // De-Morgan-free comparison negation keeps constraints atomic.
        case ExprOp::kEq:
          return p.binary(ExprOp::kNe, p.lhs(a), p.rhs(a));
        case ExprOp::kNe:
          return p.binary(ExprOp::kEq, p.lhs(a), p.rhs(a));
        case ExprOp::kLt:  // !(a < b) -> b <= a
          return p.binary(ExprOp::kLe, p.rhs(a), p.lhs(a));
        case ExprOp::kLe:  // !(a <= b) -> b < a
          return p.binary(ExprOp::kLt, p.rhs(a), p.lhs(a));
        default:
          break;
      }
      return p.intern(ExprOp::kNot, 0, a, kNoExpr, kNoExpr);
    default:
      assert(false && "not a unary op");
      return kNoExpr;
  }
}

ExprId simplify_binary(ExprPool& p, ExprOp op, ExprId a, ExprId b) {
  // Constant folding.
  if (p.is_const(a) && p.is_const(b)) {
    return p.constant(fold(op, p.const_val(a), p.const_val(b)));
  }
  // Canonical operand order: constant to the right for commutative ops, and
  // otherwise order by structural fingerprint so x==y and y==x intern to one
  // node. Ids are allocation-order handles and differ between schedules of a
  // parallel run; fingerprints are structural, so the canonical form — and
  // with it everything keyed on structure — is schedule-invariant.
  if (commutative(op)) {
    if (p.is_const(a) || (!p.is_const(b) && p.fp(b) < p.fp(a))) {
      std::swap(a, b);
    }
  }

  const bool a_const = p.is_const(a);
  const bool b_const = p.is_const(b);
  const std::int64_t bc = b_const ? p.const_val(b) : 0;

  switch (op) {
    case ExprOp::kAdd:
      if (b_const && bc == 0) return a;
      // (x + c1) + c2 -> x + (c1+c2)
      if (b_const && p.op(a) == ExprOp::kAdd && p.is_const(p.rhs(a))) {
        return p.binary(ExprOp::kAdd, p.lhs(a),
                        p.constant(fold(ExprOp::kAdd, p.const_val(p.rhs(a)), bc)));
      }
      break;
    case ExprOp::kSub:
      if (a == b) return p.constant(0);
      if (b_const) {
        return p.binary(ExprOp::kAdd, a,
                        p.constant(static_cast<std::int64_t>(
                            0 - static_cast<std::uint64_t>(bc))));
      }
      break;
    case ExprOp::kMul:
      if (b_const && bc == 0) return p.constant(0);
      if (b_const && bc == 1) return a;
      break;
    case ExprOp::kDiv:
      if (b_const && bc == 1) return a;
      break;
    case ExprOp::kRem:
      break;
    case ExprOp::kEq:
      if (a == b) return p.true_expr();
      // (x + c1) == c2 -> x == c2 - c1
      if (b_const && p.op(a) == ExprOp::kAdd && p.is_const(p.rhs(a))) {
        return p.binary(ExprOp::kEq, p.lhs(a),
                        p.constant(fold(ExprOp::kSub, bc, p.const_val(p.rhs(a)))));
      }
      break;
    case ExprOp::kNe:
      if (a == b) return p.false_expr();
      if (b_const && p.op(a) == ExprOp::kAdd && p.is_const(p.rhs(a))) {
        return p.binary(ExprOp::kNe, p.lhs(a),
                        p.constant(fold(ExprOp::kSub, bc, p.const_val(p.rhs(a)))));
      }
      break;
    case ExprOp::kLt:
      if (a == b) return p.false_expr();
      if (b_const && p.op(a) == ExprOp::kAdd && p.is_const(p.rhs(a))) {
        return p.binary(ExprOp::kLt, p.lhs(a),
                        p.constant(fold(ExprOp::kSub, bc, p.const_val(p.rhs(a)))));
      }
      if (a_const && p.op(b) == ExprOp::kAdd && p.is_const(p.rhs(b))) {
        return p.binary(ExprOp::kLt,
                        p.constant(fold(ExprOp::kSub, p.const_val(a),
                                        p.const_val(p.rhs(b)))),
                        p.lhs(b));
      }
      break;
    case ExprOp::kLe:
      if (a == b) return p.true_expr();
      if (b_const && p.op(a) == ExprOp::kAdd && p.is_const(p.rhs(a))) {
        return p.binary(ExprOp::kLe, p.lhs(a),
                        p.constant(fold(ExprOp::kSub, bc, p.const_val(p.rhs(a)))));
      }
      if (a_const && p.op(b) == ExprOp::kAdd && p.is_const(p.rhs(b))) {
        return p.binary(ExprOp::kLe,
                        p.constant(fold(ExprOp::kSub, p.const_val(a),
                                        p.const_val(p.rhs(b)))),
                        p.lhs(b));
      }
      break;
    case ExprOp::kAnd:
      if (b_const) return bc != 0 ? p.truthy(a) : p.false_expr();
      if (a == b && is_bool_op(p.op(a))) return a;
      break;
    case ExprOp::kOr:
      if (b_const) return bc != 0 ? p.true_expr() : p.truthy(a);
      if (a == b && is_bool_op(p.op(a))) return a;
      break;
    default:
      assert(false && "not a binary op");
      return kNoExpr;
  }
  return p.intern(op, 0, a, b, kNoExpr);
}

ExprId simplify_ite(ExprPool& p, ExprId c, ExprId t, ExprId f) {
  if (p.is_const(c)) return p.const_val(c) != 0 ? t : f;
  if (t == f) return t;
  return p.intern(ExprOp::kIte, 0, c, t, f);
}

}  // namespace statsym::solver
