#include "solver/model_cache.h"

#include <algorithm>

namespace statsym::solver {

bool ModelCache::probe(const ExprPool& pool, std::span<const ExprId> cs,
                       std::span<const VarId> vars, Model& out) const {
  for (const Model& m : models_) {
    bool usable = true;
    for (VarId v : vars) {
      if (!m.contains(v)) {
        usable = false;
        break;
      }
    }
    if (!usable) continue;
    bool sat = true;
    for (ExprId c : cs) {
      if (pool.eval(c, m) == 0) {
        sat = false;
        break;
      }
    }
    if (!sat) continue;
    out.clear();
    out.reserve(vars.size());
    for (VarId v : vars) out.emplace(v, m.at(v));
    return true;
  }
  return false;
}

void ModelCache::remember(const Model& m) {
  if (cap_ == 0 || m.empty()) return;
  if (std::any_of(models_.begin(), models_.end(),
                  [&](const Model& o) { return o == m; })) {
    return;
  }
  models_.push_front(m);
  if (models_.size() > cap_) models_.pop_back();
}

}  // namespace statsym::solver
