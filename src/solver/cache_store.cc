#include "solver/cache_store.h"

#include <algorithm>
#include <charconv>

#include "support/strings.h"

namespace statsym::solver {

namespace {

void append_hex(std::string& out, std::uint64_t v) {
  static const char* kHex = "0123456789abcdef";
  char buf[16];
  for (int i = 15; i >= 0; --i) {
    buf[i] = kHex[v & 0xf];
    v >>= 4;
  }
  out.append(buf, 16);
}

// Fixed-width field: exactly 16 lowercase hex digits, nothing else. The
// strictness is deliberate — a corrupted character fails the parse instead
// of silently truncating the value.
bool parse_hex64(std::string_view s, std::uint64_t& out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), v, 16);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  // from_chars accepts uppercase; the format is defined lowercase.
  for (const char c : s) {
    if (c >= 'A' && c <= 'F') return false;
  }
  out = v;
  return true;
}

bool parse_count(std::string_view s, std::size_t& out) {
  std::int64_t v = 0;
  if (!parse_i64(s, v) || v < 0) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

std::string entry_line(const PortableCacheEntry& e) {
  std::string s = "e|";
  append_hex(s, e.key.hi);
  s += '|';
  append_hex(s, e.key.lo);
  s += '|';
  s += e.sat == Sat::kSat ? '0' : '1';
  s += '|';
  s += std::to_string(e.cs_fps.size());
  s += '|';
  for (std::size_t i = 0; i < e.cs_fps.size(); ++i) {
    if (i > 0) s += ' ';
    append_hex(s, e.cs_fps[i].hi);
    s += ' ';
    append_hex(s, e.cs_fps[i].lo);
  }
  s += '|';
  s += std::to_string(e.model.size());
  s += '|';
  for (std::size_t i = 0; i < e.model.size(); ++i) {
    if (i > 0) s += ' ';
    append_hex(s, e.model[i].first.hi);
    s += ' ';
    append_hex(s, e.model[i].first.lo);
    s += ' ';
    s += std::to_string(e.model[i].second);
  }
  s += '|';
  append_hex(s, fp_hash_str(s));  // checksum covers everything before it
  return s;
}

// Verifies the trailing checksum, then parses. Any deviation — wrong field
// count, non-numeric token, count/token mismatch, kUnknown sat — rejects
// the line; the caller drops it and the query re-solves.
bool parse_entry_line(const std::string& line, PortableCacheEntry& out) {
  const std::size_t bar = line.rfind('|');
  if (bar == std::string::npos || bar + 1 >= line.size()) return false;
  std::uint64_t crc = 0;
  if (!parse_hex64(std::string_view(line).substr(bar + 1), crc)) return false;
  if (fp_hash_str(std::string_view(line).substr(0, bar + 1)) != crc) {
    return false;
  }
  const auto fields = split(std::string_view(line).substr(0, bar), '|');
  if (fields.size() != 8 || fields[0] != "e") return false;
  PortableCacheEntry e;
  if (!parse_hex64(fields[1], e.key.hi) || !parse_hex64(fields[2], e.key.lo)) {
    return false;
  }
  if (fields[3] == "0") {
    e.sat = Sat::kSat;
  } else if (fields[3] == "1") {
    e.sat = Sat::kUnsat;
  } else {
    return false;  // kUnknown (or garbage) is never a cacheable verdict
  }
  std::size_t ncs = 0;
  std::size_t nmodel = 0;
  if (!parse_count(fields[4], ncs) || !parse_count(fields[6], nmodel)) {
    return false;
  }
  const auto cs_toks = fields[5].empty()
                           ? std::vector<std::string>{}
                           : split(fields[5], ' ');
  if (cs_toks.size() != ncs * 2) return false;
  e.cs_fps.resize(ncs);
  for (std::size_t i = 0; i < ncs; ++i) {
    if (!parse_hex64(cs_toks[2 * i], e.cs_fps[i].hi) ||
        !parse_hex64(cs_toks[2 * i + 1], e.cs_fps[i].lo)) {
      return false;
    }
  }
  const auto m_toks = fields[7].empty() ? std::vector<std::string>{}
                                        : split(fields[7], ' ');
  if (m_toks.size() != nmodel * 3) return false;
  e.model.resize(nmodel);
  for (std::size_t i = 0; i < nmodel; ++i) {
    std::int64_t val = 0;
    if (!parse_hex64(m_toks[3 * i], e.model[i].first.hi) ||
        !parse_hex64(m_toks[3 * i + 1], e.model[i].first.lo) ||
        !parse_i64(m_toks[3 * i + 2], val)) {
      return false;
    }
    e.model[i].second = val;
  }
  if (e.sat == Sat::kUnsat && nmodel != 0) return false;  // unsat has no model
  out = std::move(e);
  return true;
}

std::string block_header(const Fp128& program_fp, std::size_t n) {
  std::string s = "qcache|";
  append_hex(s, program_fp.hi);
  s += '|';
  append_hex(s, program_fp.lo);
  s += '|';
  s += std::to_string(n);
  return s;
}

bool parse_block_header(std::string_view line, Fp128& fp, std::size_t& n) {
  const auto fields = split(line, '|');
  return fields.size() == 4 && fields[0] == "qcache" &&
         parse_hex64(fields[1], fp.hi) && parse_hex64(fields[2], fp.lo) &&
         parse_count(fields[3], n);
}

bool fail(std::string* error, std::string why) {
  if (error != nullptr) *error = std::move(why);
  return false;
}

void note(std::string* error, const std::string& why) {
  if (error != nullptr && error->empty()) *error = why;
}

}  // namespace

std::string serialize_cache_block(const SharedQueryCache& cache,
                                  const Fp128& program_fp,
                                  CacheStoreStats* stats) {
  const std::vector<PortableCacheEntry> entries = cache.export_entries();
  std::string out = block_header(program_fp, entries.size());
  out += '\n';
  for (const PortableCacheEntry& e : entries) {
    out += entry_line(e);
    out += '\n';
  }
  out += "endqcache\n";
  if (stats != nullptr) {
    ++stats->blocks;
    stats->entries_written += entries.size();
    stats->bytes += out.size();
  }
  return out;
}

bool deserialize_cache_block(const std::string& text, Fp128& program_fp_out,
                             SharedQueryCache& out, CacheStoreStats* stats,
                             std::string* error) {
  CacheStoreStats local;
  CacheStoreStats& st = stats != nullptr ? *stats : local;
  const auto lines = split(text, '\n');
  std::size_t at = 0;
  while (at < lines.size() && trim(lines[at]).empty()) ++at;
  if (at >= lines.size()) return fail(error, "qcache: missing header line");
  Fp128 fp;
  std::size_t declared = 0;
  if (!parse_block_header(trim(lines[at]), fp, declared)) {
    return fail(error, "qcache: malformed header (want "
                       "'qcache|<fp.hi>|<fp.lo>|<num_entries>')");
  }
  ++at;
  ++st.blocks;
  std::size_t seen = 0;
  bool closed = false;
  for (; at < lines.size(); ++at) {
    const std::string_view line = trim(lines[at]);
    if (line.empty()) continue;
    if (line == "endqcache") {
      closed = true;
      ++at;
      break;
    }
    ++seen;
    PortableCacheEntry e;
    if (parse_entry_line(std::string(line), e)) {
      out.import_entry(e);
      ++st.entries_loaded;
    } else {
      ++st.entries_rejected;
    }
  }
  if (!closed) note(error, "qcache: missing 'endqcache' trailer (truncated)");
  if (seen < declared) {
    st.entries_rejected += declared - seen;  // truncated away entirely
    note(error, "qcache: header declares " + std::to_string(declared) +
                    " entries but block holds " + std::to_string(seen));
  }
  st.bytes += text.size();
  program_fp_out = fp;
  return true;
}

std::string serialize_store(std::span<const StoreBlockRef> blocks,
                            CacheStoreStats* stats) {
  std::string out = "qstore|" + std::to_string(kCacheStoreVersion) + "|" +
                    std::to_string(blocks.size()) + "\n";
  for (const StoreBlockRef& b : blocks) {
    out += serialize_cache_block(*b.cache, b.program_fp, stats);
  }
  out += "endqstore\n";
  if (stats != nullptr) stats->bytes = out.size();
  return out;
}

bool load_store_text(
    const std::string& text,
    const std::function<SharedQueryCache&(const Fp128&)>& cache_for,
    CacheStoreStats* stats, std::string* error) {
  CacheStoreStats local;
  CacheStoreStats& st = stats != nullptr ? *stats : local;
  const auto lines = split(text, '\n');
  std::size_t at = 0;
  while (at < lines.size() && trim(lines[at]).empty()) ++at;
  if (at >= lines.size()) return fail(error, "qstore: missing header line");

  // Store-level framing is strict: guessing at an unknown layout could
  // admit entries whose meaning changed between versions.
  const auto header = split(trim(lines[at]), '|');
  std::size_t declared_blocks = 0;
  std::int64_t version = 0;
  if (header.size() != 3 || header[0] != "qstore" ||
      !parse_i64(header[1], version) ||
      !parse_count(header[2], declared_blocks)) {
    return fail(error, "qstore: malformed header (want "
                       "'qstore|<version>|<num_blocks>')");
  }
  if (version != kCacheStoreVersion) {
    return fail(error, "qstore: unsupported store version " +
                           std::to_string(version) + " (this build reads "
                           "version " +
                           std::to_string(kCacheStoreVersion) + ")");
  }
  ++at;

  // Block loop. Entry corruption is absorbed per line; structural damage
  // (a block header that does not parse) ends the load with the verified
  // prefix intact — everything already imported passed its checksum.
  bool closed = false;
  std::size_t blocks_seen = 0;
  while (at < lines.size()) {
    const std::string_view line = trim(lines[at]);
    if (line.empty()) {
      ++at;
      continue;
    }
    if (line == "endqstore") {
      closed = true;
      ++at;
      break;
    }
    Fp128 fp;
    std::size_t declared = 0;
    if (!parse_block_header(line, fp, declared)) {
      note(error, "qstore: malformed block header mid-store (kept the "
                  "verified prefix)");
      break;
    }
    ++at;
    ++blocks_seen;
    ++st.blocks;
    SharedQueryCache& cache = cache_for(fp);
    std::size_t seen = 0;
    bool block_closed = false;
    for (; at < lines.size(); ++at) {
      const std::string_view el = trim(lines[at]);
      if (el.empty()) continue;
      if (el == "endqcache") {
        block_closed = true;
        ++at;
        break;
      }
      if (el == "endqstore" || starts_with(el, "qcache|")) break;
      ++seen;
      PortableCacheEntry e;
      if (parse_entry_line(std::string(el), e)) {
        cache.import_entry(e);
        ++st.entries_loaded;
      } else {
        ++st.entries_rejected;
      }
    }
    if (!block_closed) {
      note(error, "qstore: block missing 'endqcache' trailer (truncated)");
    }
    if (seen < declared) {
      st.entries_rejected += declared - seen;
      note(error, "qstore: block declares " + std::to_string(declared) +
                      " entries but holds " + std::to_string(seen));
    }
  }
  if (!closed) note(error, "qstore: missing 'endqstore' trailer (truncated)");
  if (blocks_seen < declared_blocks) {
    note(error, "qstore: header declares " + std::to_string(declared_blocks) +
                    " blocks but file holds " + std::to_string(blocks_seen));
  }
  st.bytes += text.size();
  return true;
}

}  // namespace statsym::solver
