// Algebraic simplification applied at expression construction.
//
// Keeps the pool canonical: constants fold, identities collapse, negations
// push through comparisons, and commutative operands order with the constant
// on the right. Every entry point returns a fully simplified ExprId.
#pragma once

#include "solver/expr.h"

namespace statsym::solver {

ExprId simplify_unary(ExprPool& p, ExprOp op, ExprId a);
ExprId simplify_binary(ExprPool& p, ExprOp op, ExprId a, ExprId b);
ExprId simplify_ite(ExprPool& p, ExprId c, ExprId t, ExprId f);

}  // namespace statsym::solver
