#include "solver/slicer.h"

#include <unordered_map>
#include <unordered_set>

namespace statsym::solver {

namespace {

// Union-find over dense component indices.
struct UnionFind {
  std::vector<std::size_t> parent;

  std::size_t make() {
    parent.push_back(parent.size());
    return parent.size() - 1;
  }

  std::size_t find(std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];  // path halving
      x = parent[x];
    }
    return x;
  }

  void join(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[b] = a;
  }
};

// Deduplicates the accumulated variable list keeping first-occurrence order.
// VarIds are allocation-order handles and may differ across workers, so a
// numeric sort here would leak scheduling into the slice; the order of first
// mention is a pure function of the constraint sequence.
void finish_slice(Slice& s) {
  std::unordered_set<VarId> seen;
  seen.reserve(s.vars.size());
  std::size_t w = 0;
  for (const VarId v : s.vars) {
    if (seen.insert(v).second) s.vars[w++] = v;
  }
  s.vars.resize(w);
}

}  // namespace

Slice whole_slice(const ExprPool& pool, std::span<const ExprId> cs) {
  Slice s;
  s.cs.assign(cs.begin(), cs.end());
  s.cs_vars.resize(s.cs.size());
  for (std::size_t i = 0; i < s.cs.size(); ++i) {
    pool.collect_vars(s.cs[i], s.cs_vars[i]);
    s.vars.insert(s.vars.end(), s.cs_vars[i].begin(), s.cs_vars[i].end());
  }
  finish_slice(s);
  return s;
}

std::vector<Slice> slice_constraints(const ExprPool& pool,
                                     std::span<const ExprId> cs) {
  const std::size_t n = cs.size();
  std::vector<std::vector<VarId>> cs_vars(n);
  UnionFind uf;
  // One union-find node per constraint; variables map to the first
  // constraint that mentioned them and union later mentions into it.
  std::unordered_map<VarId, std::size_t> var_node;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t node = uf.make();
    pool.collect_vars(cs[i], cs_vars[i]);
    for (VarId v : cs_vars[i]) {
      auto [it, inserted] = var_node.try_emplace(v, node);
      if (!inserted) uf.join(it->second, node);
    }
  }

  // Group constraints by component root, slices ordered by first member.
  std::unordered_map<std::size_t, std::size_t> root_slice;
  std::vector<Slice> slices;
  for (std::size_t i = 0; i < n; ++i) {
    // A variable-free constraint is its own component (its union-find node
    // was never joined), so it naturally becomes a singleton slice.
    const std::size_t root = uf.find(i);
    auto [it, inserted] = root_slice.try_emplace(root, slices.size());
    if (inserted) slices.emplace_back();
    Slice& s = slices[it->second];
    s.cs.push_back(cs[i]);
    s.cs_vars.push_back(cs_vars[i]);
    s.vars.insert(s.vars.end(), cs_vars[i].begin(), cs_vars[i].end());
  }
  for (Slice& s : slices) finish_slice(s);
  return slices;
}

}  // namespace statsym::solver
