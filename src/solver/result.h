// Solver result types, shared by the solver and its query cache.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "solver/expr.h"

namespace statsym::solver {

enum class Sat : std::uint8_t { kSat, kUnsat, kUnknown };

const char* sat_name(Sat s);

using Model = std::unordered_map<VarId, std::int64_t>;

struct SolveResult {
  Sat sat{Sat::kUnknown};
  Model model;  // valid when sat == kSat
};

}  // namespace statsym::solver
