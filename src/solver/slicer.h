// Constraint independence slicing.
//
// A query's constraint set is partitioned into connected components of the
// constraint–variable graph: two constraints land in the same slice iff they
// (transitively) share a symbolic variable. Each slice can be decided
// independently — the conjunction is satisfiable iff every slice is, and a
// model for the whole query is the union of the per-slice models (the var
// sets are disjoint by construction). This is KLEE's independence solver:
// sibling states forked from a common prefix mostly differ in one component,
// so per-slice cache keys hit where whole-query keys would miss, and the
// decision procedure only ever searches the component the new constraint
// touches.
#pragma once

#include <span>
#include <vector>

#include "solver/expr.h"

namespace statsym::solver {

// One independent sub-query. Constraints keep their original (path) order
// within the slice; `vars` is sorted and deduplicated.
struct Slice {
  std::vector<ExprId> cs;
  std::vector<std::vector<VarId>> cs_vars;  // parallel to cs
  std::vector<VarId> vars;
};

// Partitions `cs` into independent slices. Deterministic: slices are ordered
// by the index of their first constraint in `cs`. Variable-free constraints
// (not folded to constants upstream) each form their own slice. Duplicate
// constraint ids are kept; they simply ride along in their component.
std::vector<Slice> slice_constraints(const ExprPool& pool,
                                     std::span<const ExprId> cs);

// The degenerate single-slice partition (slicing disabled): everything in
// one slice, with per-constraint and whole-set variables still computed.
Slice whole_slice(const ExprPool& pool, std::span<const ExprId> cs);

}  // namespace statsym::solver
