#include "solver/cache.h"

#include <algorithm>

namespace statsym::solver {

namespace {

bool ids_equal(std::span<const ExprId> a, const std::vector<ExprId>& b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

}  // namespace

// --- QueryCache ------------------------------------------------------------

std::uint64_t QueryCache::key_of(std::span<const ExprId> sorted_ids) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (ExprId id : sorted_ids) {
    h ^= id;
    h *= 0x100000001b3ULL;
  }
  // Never return 0 so callers can use 0 as "no key".
  return h == 0 ? 1 : h;
}

const SolveResult* QueryCache::lookup(
    std::span<const ExprId> sorted_ids) const {
  return lookup_with_key(key_of(sorted_ids), sorted_ids);
}

const SolveResult* QueryCache::lookup_with_key(
    std::uint64_t key, std::span<const ExprId> sorted_ids) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  for (const Entry& e : it->second) {
    if (ids_equal(sorted_ids, e.ids)) return &e.result;
  }
  return nullptr;
}

void QueryCache::insert(std::span<const ExprId> sorted_ids,
                        const SolveResult& result) {
  insert_with_key(key_of(sorted_ids), sorted_ids, result);
}

void QueryCache::insert_with_key(std::uint64_t key,
                                 std::span<const ExprId> sorted_ids,
                                 const SolveResult& result) {
  auto& bucket = map_[key];
  for (Entry& e : bucket) {
    if (ids_equal(sorted_ids, e.ids)) {
      e.result = result;
      return;
    }
  }
  bucket.push_back(
      Entry{{sorted_ids.begin(), sorted_ids.end()}, result});
  ++entries_;
}

// --- ExprFingerprinter -----------------------------------------------------

Fp128 ExprFingerprinter::combine(std::span<const Fp128> sorted_fps,
                                 const Fp128& salt) {
  Fp128 h{0x3c6ef372fe94f82bULL, 0xa54ff53a5f1d36f1ULL};
  h = fp_absorb(h, salt);
  h = fp_absorb(h, static_cast<std::uint64_t>(sorted_fps.size()));
  for (const Fp128& fp : sorted_fps) h = fp_absorb(h, fp);
  return h;
}

// --- SharedQueryCache ------------------------------------------------------

SharedQueryCache::SharedQueryCache(std::size_t shards)
    : shards_(shards == 0 ? 1 : shards) {}

bool SharedQueryCache::lookup(const ExprPool& pool, const Fp128& key,
                              std::span<const Fp128> cs_fps,
                              SolveResult& out) const {
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(key.lo);
  if (it != s.map.end()) {
    for (const Entry& e : it->second) {
      if (!std::equal(cs_fps.begin(), cs_fps.end(), e.cs_fps.begin(),
                      e.cs_fps.end())) {
        continue;
      }
      // Re-bind the fingerprint-keyed model to this pool's VarIds. A
      // variable the looking pool never declared means the entry cannot be
      // expressed here; fall through to a miss rather than return a model
      // with holes.
      SolveResult res;
      res.sat = e.sat;
      bool bindable = true;
      for (const auto& [vfp, val] : e.model) {
        const auto v = pool.find_var(vfp);
        if (!v) {
          bindable = false;
          break;
        }
        res.model.emplace(*v, val);
      }
      if (!bindable) break;
      out = std::move(res);
      ++s.hits;
      return true;
    }
  }
  ++s.misses;
  return false;
}

void SharedQueryCache::insert(const ExprPool& pool, const Fp128& key,
                              std::span<const Fp128> cs_fps,
                              const SolveResult& result) {
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto& bucket = s.map[key.lo];
  for (const Entry& e : bucket) {
    // Canonical solves are pure functions of the query, so a racing
    // duplicate insert carries an identical result; keep the first.
    if (std::equal(cs_fps.begin(), cs_fps.end(), e.cs_fps.begin(),
                   e.cs_fps.end())) {
      return;
    }
  }
  Entry entry;
  entry.key = key;
  entry.cs_fps.assign(cs_fps.begin(), cs_fps.end());
  entry.sat = result.sat;
  entry.model.reserve(result.model.size());
  for (const auto& [v, val] : result.model) {
    entry.model.emplace_back(pool.var(v).fp, val);
  }
  std::sort(entry.model.begin(), entry.model.end());
  bucket.push_back(std::move(entry));
  ++s.insertions;
}

std::vector<PortableCacheEntry> SharedQueryCache::export_entries() const {
  std::vector<PortableCacheEntry> out;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& [lo, bucket] : s.map) {
      for (const Entry& e : bucket) {
        out.push_back(PortableCacheEntry{e.key, e.cs_fps, e.sat, e.model});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const PortableCacheEntry& a, const PortableCacheEntry& b) {
              if (!(a.key == b.key)) return a.key < b.key;
              return std::lexicographical_compare(
                  a.cs_fps.begin(), a.cs_fps.end(), b.cs_fps.begin(),
                  b.cs_fps.end());
            });
  return out;
}

void SharedQueryCache::import_entry(const PortableCacheEntry& e) {
  if (e.sat == Sat::kUnknown) return;  // never cacheable, never importable
  Shard& s = shard_of(e.key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto& bucket = s.map[e.key.lo];
  for (const Entry& have : bucket) {
    if (std::equal(e.cs_fps.begin(), e.cs_fps.end(), have.cs_fps.begin(),
                   have.cs_fps.end())) {
      return;  // live entry wins; imports never clobber
    }
  }
  Entry entry{e.key, e.cs_fps, e.sat, e.model};
  std::sort(entry.model.begin(), entry.model.end());  // lookup re-binds in order
  bucket.push_back(std::move(entry));
  ++s.insertions;
}

std::size_t SharedQueryCache::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.insertions;
  }
  return n;
}

SharedQueryCache::Counters SharedQueryCache::counters() const {
  Counters c;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    c.hits += s.hits;
    c.misses += s.misses;
    c.insertions += s.insertions;
  }
  return c;
}

}  // namespace statsym::solver
