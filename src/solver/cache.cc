#include "solver/cache.h"

#include <algorithm>

namespace statsym::solver {

namespace {

bool ids_equal(std::span<const ExprId> a, const std::vector<ExprId>& b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

// SplitMix64 finalizer — the diffusion step between ingredients.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Fp128 fp_absorb(Fp128 h, std::uint64_t v) {
  // Two lanes with independent round constants; each absorbs the value
  // against the other lane so the halves never degenerate into copies.
  h.lo = mix64(h.lo ^ v ^ 0x2545f4914f6cdd1dULL);
  h.hi = mix64(h.hi ^ v ^ 0x9e6c63d0876a9a62ULL ^ (h.lo >> 1));
  return h;
}

Fp128 fp_absorb(Fp128 h, const Fp128& v) {
  h = fp_absorb(h, v.lo);
  return fp_absorb(h, v.hi);
}

std::uint64_t hash_str(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

// --- QueryCache ------------------------------------------------------------

std::uint64_t QueryCache::key_of(std::span<const ExprId> sorted_ids) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (ExprId id : sorted_ids) {
    h ^= id;
    h *= 0x100000001b3ULL;
  }
  // Never return 0 so callers can use 0 as "no key".
  return h == 0 ? 1 : h;
}

const SolveResult* QueryCache::lookup(
    std::span<const ExprId> sorted_ids) const {
  return lookup_with_key(key_of(sorted_ids), sorted_ids);
}

const SolveResult* QueryCache::lookup_with_key(
    std::uint64_t key, std::span<const ExprId> sorted_ids) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  for (const Entry& e : it->second) {
    if (ids_equal(sorted_ids, e.ids)) return &e.result;
  }
  return nullptr;
}

void QueryCache::insert(std::span<const ExprId> sorted_ids,
                        const SolveResult& result) {
  insert_with_key(key_of(sorted_ids), sorted_ids, result);
}

void QueryCache::insert_with_key(std::uint64_t key,
                                 std::span<const ExprId> sorted_ids,
                                 const SolveResult& result) {
  auto& bucket = map_[key];
  for (Entry& e : bucket) {
    if (ids_equal(sorted_ids, e.ids)) {
      e.result = result;
      return;
    }
  }
  bucket.push_back(
      Entry{{sorted_ids.begin(), sorted_ids.end()}, result});
  ++entries_;
}

// --- ExprFingerprinter -----------------------------------------------------

Fp128 ExprFingerprinter::of(ExprId e) {
  if (const auto it = memo_.find(e); it != memo_.end()) return it->second;

  Fp128 h{0x6a09e667f3bcc908ULL, 0xbb67ae8584caa73bULL};
  h = fp_absorb(h, static_cast<std::uint64_t>(pool_.op(e)));
  switch (pool_.op(e)) {
    case ExprOp::kConst:
      h = fp_absorb(h, static_cast<std::uint64_t>(pool_.const_val(e)));
      break;
    case ExprOp::kVar: {
      const VarId v = pool_.var_of(e);
      const VarInfo& vi = pool_.var(v);
      // VarId *and* declaration bind the identity: a fingerprint match
      // across pools certifies both sides mean the same variable, which is
      // what lets models transfer by VarId.
      h = fp_absorb(h, static_cast<std::uint64_t>(v));
      h = fp_absorb(h, hash_str(vi.name));
      h = fp_absorb(h, static_cast<std::uint64_t>(vi.lo));
      h = fp_absorb(h, static_cast<std::uint64_t>(vi.hi));
      break;
    }
    case ExprOp::kIte:
      h = fp_absorb(h, of(pool_.lhs(e)));
      h = fp_absorb(h, of(pool_.rhs(e)));
      h = fp_absorb(h, of(pool_.third(e)));
      break;
    case ExprOp::kNeg:
    case ExprOp::kNot:
      h = fp_absorb(h, of(pool_.lhs(e)));
      break;
    default:
      h = fp_absorb(h, of(pool_.lhs(e)));
      h = fp_absorb(h, of(pool_.rhs(e)));
      break;
  }
  memo_.emplace(e, h);
  return h;
}

Fp128 ExprFingerprinter::combine(std::span<const Fp128> sorted_fps,
                                 const Fp128& salt) {
  Fp128 h{0x3c6ef372fe94f82bULL, 0xa54ff53a5f1d36f1ULL};
  h = fp_absorb(h, salt);
  h = fp_absorb(h, static_cast<std::uint64_t>(sorted_fps.size()));
  for (const Fp128& fp : sorted_fps) h = fp_absorb(h, fp);
  return h;
}

// --- SharedQueryCache ------------------------------------------------------

SharedQueryCache::SharedQueryCache(std::size_t shards)
    : shards_(shards == 0 ? 1 : shards) {}

bool SharedQueryCache::lookup(const Fp128& key, std::span<const Fp128> cs_fps,
                              SolveResult& out) const {
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(key.lo);
  if (it != s.map.end()) {
    for (const Entry& e : it->second) {
      if (std::equal(cs_fps.begin(), cs_fps.end(), e.cs_fps.begin(),
                     e.cs_fps.end())) {
        out = e.result;
        ++s.hits;
        return true;
      }
    }
  }
  ++s.misses;
  return false;
}

void SharedQueryCache::insert(const Fp128& key, std::span<const Fp128> cs_fps,
                              const SolveResult& result) {
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto& bucket = s.map[key.lo];
  for (const Entry& e : bucket) {
    // Canonical solves are pure functions of the query, so a racing
    // duplicate insert carries an identical result; keep the first.
    if (std::equal(cs_fps.begin(), cs_fps.end(), e.cs_fps.begin(),
                   e.cs_fps.end())) {
      return;
    }
  }
  bucket.push_back(Entry{{cs_fps.begin(), cs_fps.end()}, result});
  ++s.insertions;
}

std::size_t SharedQueryCache::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.insertions;
  }
  return n;
}

SharedQueryCache::Counters SharedQueryCache::counters() const {
  Counters c;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    c.hits += s.hits;
    c.misses += s.misses;
    c.insertions += s.insertions;
  }
  return c;
}

}  // namespace statsym::solver
