#include "solver/cache.h"

namespace statsym::solver {

std::uint64_t QueryCache::key_of(std::span<const ExprId> sorted_ids) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (ExprId id : sorted_ids) {
    h ^= id;
    h *= 0x100000001b3ULL;
  }
  // Never return 0 so callers can use 0 as "no key".
  return h == 0 ? 1 : h;
}

const SolveResult* QueryCache::lookup(std::uint64_t key) const {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

void QueryCache::insert(std::uint64_t key, const SolveResult& result) {
  map_[key] = result;
}

}  // namespace statsym::solver
