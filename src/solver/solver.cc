#include "solver/solver.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <unordered_set>

namespace statsym::solver {

const char* sat_name(Sat s) {
  switch (s) {
    case Sat::kSat: return "sat";
    case Sat::kUnsat: return "unsat";
    case Sat::kUnknown: return "unknown";
  }
  return "?";
}

Interval eval_interval(const ExprPool& p, ExprId e, const DomainMap& d) {
  return EvalCtx(p, d).eval(e);
}

Interval EvalCtx::eval(ExprId e) {
  const ExprPool& p = p_;
  const DomainMap& d = d_;
  switch (p.op(e)) {
    // Leaves are never memoised: variables must always reflect the current
    // (possibly just-narrowed) domains.
    case ExprOp::kConst:
      return Interval::point(p.const_val(e));
    case ExprOp::kVar:
      return d.get(p.var_of(e), p);
    default:
      break;
  }
  if (auto it = memo_.find(e); it != memo_.end()) return it->second;

  auto compute = [&]() -> Interval {
  switch (p.op(e)) {
    case ExprOp::kNeg:
      return iv_neg(eval(p.lhs(e)));
    case ExprOp::kNot: {
      const Interval a = eval(p.lhs(e));
      if (a.is_empty()) return Interval::empty();
      if (a.lo == 0 && a.hi == 0) return Interval::point(1);
      if (!a.contains(0)) return Interval::point(0);
      return Interval::boolean();
    }
    case ExprOp::kIte: {
      const Interval c = eval(p.lhs(e));
      if (c.is_empty()) return Interval::empty();
      if (c.lo == 0 && c.hi == 0) return eval(p.third(e));
      if (!c.contains(0)) return eval(p.rhs(e));
      return hull(eval(p.rhs(e)), eval(p.third(e)));
    }
    default:
      break;
  }
  const Interval a = eval(p.lhs(e));
  const Interval b = eval(p.rhs(e));
  auto from_cmp = [](int r) {
    if (r == 1) return Interval::point(1);
    if (r == 0) return Interval::point(0);
    return Interval::boolean();
  };
  switch (p.op(e)) {
    case ExprOp::kAdd: return iv_add(a, b);
    case ExprOp::kSub: return iv_sub(a, b);
    case ExprOp::kMul: return iv_mul(a, b);
    case ExprOp::kDiv: return iv_div(a, b);
    case ExprOp::kRem: return iv_rem(a, b);
    case ExprOp::kEq: return from_cmp(iv_cmp_eq(a, b));
    case ExprOp::kNe: return from_cmp(iv_cmp_ne(a, b));
    case ExprOp::kLt: return from_cmp(iv_cmp_lt(a, b));
    case ExprOp::kLe: return from_cmp(iv_cmp_le(a, b));
    case ExprOp::kAnd: {
      if (a.is_empty() || b.is_empty()) return Interval::empty();
      const bool a_true = !a.contains(0);
      const bool b_true = !b.contains(0);
      const bool a_false = a.lo == 0 && a.hi == 0;
      const bool b_false = b.lo == 0 && b.hi == 0;
      if (a_false || b_false) return Interval::point(0);
      if (a_true && b_true) return Interval::point(1);
      return Interval::boolean();
    }
    case ExprOp::kOr: {
      if (a.is_empty() || b.is_empty()) return Interval::empty();
      const bool a_true = !a.contains(0);
      const bool b_true = !b.contains(0);
      const bool a_false = a.lo == 0 && a.hi == 0;
      const bool b_false = b.lo == 0 && b.hi == 0;
      if (a_true || b_true) return Interval::point(1);
      if (a_false && b_false) return Interval::point(0);
      return Interval::boolean();
    }
    default:
      assert(false);
      return Interval::full();
  }
  };  // compute

  const Interval r = compute();
  memo_.emplace(e, r);
  return r;
}

namespace {

// Narrows the value of expression `e` to lie within `target`, pushing the
// restriction down to variables where the structure allows. Returns false on
// contradiction.
bool propagate_impl(const ExprPool& p, ExprId e, bool want, DomainMap& d,
                    EvalCtx& ctx);

bool narrow_expr(const ExprPool& p, ExprId e, Interval target, DomainMap& d,
                 EvalCtx& ctx) {
  const Interval cur = ctx.eval(e);
  target = intersect(target, cur);
  if (target.is_empty()) return false;
  if (target == cur && !p.is_var(e)) {
    // No new information to push down (variables still intersect below so a
    // tighter stored domain is recorded).
    return true;
  }
  switch (p.op(e)) {
    case ExprOp::kConst:
      return target.contains(p.const_val(e));
    case ExprOp::kVar: {
      const VarId v = p.var_of(e);
      const Interval nv = intersect(d.get(v, p), target);
      if (nv.is_empty()) return false;
      d.set(v, nv);
      return true;
    }
    case ExprOp::kAdd: {
      const Interval a = ctx.eval(p.lhs(e));
      const Interval b = ctx.eval(p.rhs(e));
      return narrow_expr(p, p.lhs(e), iv_sub(target, b), d, ctx) &&
             narrow_expr(p, p.rhs(e), iv_sub(target, a), d, ctx);
    }
    case ExprOp::kSub: {
      const Interval a = ctx.eval(p.lhs(e));
      const Interval b = ctx.eval(p.rhs(e));
      return narrow_expr(p, p.lhs(e), iv_add(target, b), d, ctx) &&
             narrow_expr(p, p.rhs(e), iv_sub(a, target), d, ctx);
    }
    case ExprOp::kNeg:
      return narrow_expr(p, p.lhs(e), iv_neg(target), d, ctx);
    case ExprOp::kMul: {
      // Only the (expr * constant) shape is inverted; general products keep
      // their hull (sound, less precise — search compensates).
      const ExprId lc = p.lhs(e);
      const ExprId rc = p.rhs(e);
      if (p.is_const(rc) && p.const_val(rc) != 0) {
        const std::int64_t c = p.const_val(rc);
        // x*c in [lo,hi]  =>  x in [ceil(lo/c), floor(hi/c)] (c>0), swapped
        // for c<0.
        auto div_floor = [](std::int64_t a, std::int64_t b) {
          std::int64_t q = a / b;
          if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
          return q;
        };
        auto div_ceil = [&](std::int64_t a, std::int64_t b) {
          return -div_floor(-a, b);
        };
        Interval t = c > 0 ? Interval{div_ceil(target.lo, c),
                                      div_floor(target.hi, c)}
                           : Interval{div_ceil(target.hi, c),
                                      div_floor(target.lo, c)};
        return narrow_expr(p, lc, t, d, ctx);
      }
      return true;
    }
    default:
      // Boolean-valued subexpressions pinned to a definite truth value
      // continue through truth propagation (this is what decomposes
      // accumulator sums like "count == 0" into per-term requirements);
      // div/rem keep consistency only.
      if (is_bool_op(p.op(e))) {
        if (target.is_point() && target.lo == 0) {
          return propagate_impl(p, e, false, d, ctx);
        }
        if (target.lo == 1 && target.hi == 1) {
          return propagate_impl(p, e, true, d, ctx);
        }
      }
      return true;
  }
}

bool propagate_impl(const ExprPool& p, ExprId e, bool want, DomainMap& d,
                    EvalCtx& ctx) {
  switch (p.op(e)) {
    case ExprOp::kConst:
      return (p.const_val(e) != 0) == want;
    case ExprOp::kVar: {
      const VarId v = p.var_of(e);
      Interval iv = d.get(v, p);
      if (want) {
        // v != 0: can only trim when 0 sits on a boundary.
        if (iv.lo == 0 && iv.hi == 0) return false;
        if (iv.lo == 0) iv.lo = 1;
        if (iv.hi == 0) iv.hi = -1;
      } else {
        iv = intersect(iv, Interval::point(0));
        if (iv.is_empty()) return false;
      }
      d.set(v, iv);
      return true;
    }
    case ExprOp::kNot:
      return propagate_impl(p, p.lhs(e), !want, d, ctx);
    case ExprOp::kAnd: {
      if (want) {
        return propagate_impl(p, p.lhs(e), true, d, ctx) &&
               propagate_impl(p, p.rhs(e), true, d, ctx);
      }
      // !(a && b): unit-propagate when one side is decided true.
      const Interval a = ctx.eval(p.lhs(e));
      const Interval b = ctx.eval(p.rhs(e));
      if (a.is_empty() || b.is_empty()) return false;
      const bool a_true = !a.contains(0);
      const bool b_true = !b.contains(0);
      if (a_true && b_true) return false;
      if (a_true) return propagate_impl(p, p.rhs(e), false, d, ctx);
      if (b_true) return propagate_impl(p, p.lhs(e), false, d, ctx);
      return true;  // undecided disjunction of negations; search splits it
    }
    case ExprOp::kOr: {
      if (!want) {
        return propagate_impl(p, p.lhs(e), false, d, ctx) &&
               propagate_impl(p, p.rhs(e), false, d, ctx);
      }
      const Interval a = ctx.eval(p.lhs(e));
      const Interval b = ctx.eval(p.rhs(e));
      if (a.is_empty() || b.is_empty()) return false;
      const bool a_false = !a.is_empty() && a.lo == 0 && a.hi == 0;
      const bool b_false = !b.is_empty() && b.lo == 0 && b.hi == 0;
      if (a_false && b_false) return false;
      if (a_false) return propagate_impl(p, p.rhs(e), true, d, ctx);
      if (b_false) return propagate_impl(p, p.lhs(e), true, d, ctx);
      return true;
    }
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe: {
      // Normalise to a positively-stated comparison.
      ExprOp op = p.op(e);
      ExprId a = p.lhs(e);
      ExprId b = p.rhs(e);
      if (!want) {
        switch (op) {
          case ExprOp::kEq: op = ExprOp::kNe; break;
          case ExprOp::kNe: op = ExprOp::kEq; break;
          case ExprOp::kLt: op = ExprOp::kLe; std::swap(a, b); break;
          case ExprOp::kLe: op = ExprOp::kLt; std::swap(a, b); break;
          default: break;
        }
      }
      const Interval ia = ctx.eval(a);
      const Interval ib = ctx.eval(b);
      if (ia.is_empty() || ib.is_empty()) return false;
      switch (op) {
        case ExprOp::kEq: {
          const Interval t = intersect(ia, ib);
          if (t.is_empty()) return false;
          return narrow_expr(p, a, t, d, ctx) && narrow_expr(p, b, t, d, ctx);
        }
        case ExprOp::kNe: {
          // Trim only when one side is a point at the other's boundary.
          if (ib.is_point()) {
            Interval t = ia;
            if (t.is_point() && t.lo == ib.lo) return false;
            if (t.lo == ib.lo) t.lo += 1;
            if (t.hi == ib.lo) t.hi -= 1;
            if (!narrow_expr(p, a, t, d, ctx)) return false;
          }
          if (ia.is_point()) {
            Interval t = ib;
            if (t.is_point() && t.lo == ia.lo) return false;
            if (t.lo == ia.lo) t.lo += 1;
            if (t.hi == ia.lo) t.hi -= 1;
            if (!narrow_expr(p, b, t, d, ctx)) return false;
          }
          return true;
        }
        case ExprOp::kLt: {
          if (ib.hi == std::numeric_limits<std::int64_t>::min()) return false;
          const Interval ta{std::numeric_limits<std::int64_t>::min(),
                            ib.hi - 1};
          if (!narrow_expr(p, a, ta, d, ctx)) return false;
          if (ia.lo == std::numeric_limits<std::int64_t>::max()) return false;
          const Interval tb{ia.lo + 1,
                            std::numeric_limits<std::int64_t>::max()};
          return narrow_expr(p, b, tb, d, ctx);
        }
        case ExprOp::kLe: {
          const Interval ta{std::numeric_limits<std::int64_t>::min(), ib.hi};
          if (!narrow_expr(p, a, ta, d, ctx)) return false;
          const Interval tb{ia.lo, std::numeric_limits<std::int64_t>::max()};
          return narrow_expr(p, b, tb, d, ctx);
        }
        default:
          return true;
      }
    }
    default: {
      // Arithmetic used directly as a condition: e != 0 / e == 0.
      const Interval iv = ctx.eval(e);
      if (iv.is_empty()) return false;
      if (want) return !(iv.lo == 0 && iv.hi == 0);
      return narrow_expr(p, e, Interval::point(0), d, ctx);
    }
  }
}

}  // namespace

bool propagate(const ExprPool& p, ExprId e, bool want, DomainMap& d) {
  EvalCtx ctx(p, d);
  return propagate_impl(p, e, want, d, ctx);
}

namespace {

// Digest over the options that shape a canonical solve: results computed
// under different budgets or modes must never alias in the shared cache (a
// fork-tier solver hitting a validation-tier entry would otherwise see a
// result it could not have computed itself, breaking timing independence).
Fp128 options_salt(const SolverOptions& o) {
  std::vector<Fp128> parts;
  parts.push_back(Fp128{o.max_search_nodes,
                        static_cast<std::uint64_t>(o.max_fixpoint_rounds)});
  parts.push_back(Fp128{static_cast<std::uint64_t>(o.random_model_tries),
                        o.seed});
  parts.push_back(Fp128{o.propagation_only ? 1u : 0u,
                        static_cast<std::uint64_t>(o.max_query_seconds * 1e6)});
  return ExprFingerprinter::combine(parts, Fp128{0x51a7, 0xca11});
}

}  // namespace

Solver::Solver(ExprPool& pool, SolverOptions opts)
    : pool_(pool),
      opts_(opts),
      model_cache_(opts.model_cache_size),
      fp_(pool),
      opts_salt_(options_salt(opts)),
      rng_(opts.seed) {}

bool Solver::fixpoint(const QueryCtx& ctx, DomainMap& d) {
  for (int round = 0; round < opts_.max_fixpoint_rounds; ++round) {
    ++stats_.propagation_rounds;
    const std::uint64_t before = d.version();
    for (ExprId c : ctx.cs) {
      if (!propagate(pool_, c, true, d)) return false;
    }
    if (d.version() == before) return true;  // quiescent
  }
  return true;  // budget reached; domains are still sound
}

namespace {

// Flattens an Add-spine into its addend terms.
void flatten_sum(const ExprPool& p, ExprId e, std::vector<ExprId>& terms) {
  if (p.op(e) == ExprOp::kAdd) {
    flatten_sum(p, p.lhs(e), terms);
    flatten_sum(p, p.rhs(e), terms);
    return;
  }
  terms.push_back(e);
}

}  // namespace

bool Solver::repair_model(const QueryCtx& ctx, const DomainMap& d, Model& m) {
  // Greedy repair for counting constraints over indicator sums — the shape
  // statistics injection produces ("at least 18 request bytes are '.'",
  // from a dotdot_count predicate). Random sampling essentially never hits
  // Σ ≥ K for K far above the mean, but flipping individual free indicator
  // variables toward/away from their compared constant repairs it directly.
  for (int sweep = 0; sweep < 3; ++sweep) {
    bool all_ok = true;
    for (ExprId c : ctx.cs) {
      if (pool_.eval(c, m) != 0) continue;
      all_ok = false;
      // Recognise K <= S / K < S / S <= K / S < K with S an Add-spine.
      const ExprOp op = pool_.op(c);
      if (op != ExprOp::kLe && op != ExprOp::kLt) return false;
      ExprId sum = solver::kNoExpr;
      bool increase = false;
      std::int64_t bound = 0;
      if (pool_.is_const(pool_.lhs(c))) {
        sum = pool_.rhs(c);
        bound = pool_.const_val(pool_.lhs(c));
        increase = true;  // K <= S: S is too small
      } else if (pool_.is_const(pool_.rhs(c))) {
        sum = pool_.lhs(c);
        bound = pool_.const_val(pool_.rhs(c));
        increase = false;  // S <= K: S is too large
      } else {
        return false;
      }
      (void)bound;
      std::vector<ExprId> terms;
      flatten_sum(pool_, sum, terms);
      for (ExprId t : terms) {
        if (pool_.eval(c, m) != 0) break;  // constraint repaired
        // Indicator terms: Eq(var, const) / Ne(var, const).
        const ExprOp top = pool_.op(t);
        if ((top != ExprOp::kEq && top != ExprOp::kNe) ||
            !pool_.is_var(pool_.lhs(t)) || !pool_.is_const(pool_.rhs(t))) {
          continue;
        }
        const VarId v = pool_.var_of(pool_.lhs(t));
        const std::int64_t k = pool_.const_val(pool_.rhs(t));
        const Interval iv = d.get(v, pool_);
        const bool term_true = pool_.eval(t, m) != 0;
        // Make the term contribute in the desired direction.
        const bool want_true = increase ? !term_true : term_true && !increase;
        if (increase && !term_true) {
          // Need the indicator true: Eq -> var := k; Ne -> any other value.
          if (top == ExprOp::kEq && iv.contains(k)) {
            m[v] = k;
          } else if (top == ExprOp::kNe) {
            if (iv.lo != k) m[v] = iv.lo;
            else if (iv.hi != k) m[v] = iv.hi;
          }
        } else if (!increase && term_true) {
          // Need the indicator false: Eq -> move off k; Ne -> var := k.
          if (top == ExprOp::kEq) {
            if (iv.lo != k) m[v] = iv.lo;
            else if (iv.hi != k) m[v] = iv.hi;
          } else if (top == ExprOp::kNe && iv.contains(k)) {
            m[v] = k;
          }
        }
        (void)want_true;
      }
    }
    if (all_ok) return true;
  }
  for (ExprId c : ctx.cs) {
    if (pool_.eval(c, m) == 0) return false;
  }
  return true;
}

bool Solver::try_models(const QueryCtx& ctx, const DomainMap& d,
                        Model& model) {
  auto attempt = [&](auto pick) {
    Model m;
    m.reserve(ctx.all_vars.size());
    for (VarId v : ctx.all_vars) {
      const Interval iv = d.get(v, pool_);
      if (iv.is_empty()) return false;
      m[v] = pick(iv);
    }
    for (ExprId c : ctx.cs) {
      if (pool_.eval(c, m) == 0) {
        // One bounded repair pass before giving up on this start point.
        if (repair_model(ctx, d, m)) {
          model = std::move(m);
          return true;
        }
        return false;
      }
    }
    model = std::move(m);
    return true;
  };

  if (attempt([](Interval iv) { return iv.lo; })) return true;
  if (attempt([](Interval iv) { return iv.hi; })) return true;
  if (attempt([](Interval iv) {
        return iv.contains(0) ? 0
                              : iv.lo + static_cast<std::int64_t>(iv.width() / 2);
      })) {
    return true;
  }
  // Random samples: decisive on wide disjunctions where boundary probes
  // systematically miss (e.g. "at least one input byte is in [65, 90]").
  for (int t = 0; t < opts_.random_model_tries; ++t) {
    if (attempt([&](Interval iv) {
          // Clamp the sampling window; full-int64 domains sample a small
          // window around zero (program values live there).
          const std::int64_t lo = std::max<std::int64_t>(iv.lo, -65536);
          const std::int64_t hi = std::min<std::int64_t>(iv.hi, 65536);
          if (lo > hi) return iv.lo;
          return rng_.uniform(lo, hi);
        })) {
      return true;
    }
  }
  return false;
}

bool Solver::pick_branch_var(const QueryCtx& ctx, const DomainMap& d,
                             VarId& out, bool& has_hole,
                             std::int64_t& hole) const {
  bool found = false;
  std::uint64_t best_width = 0;
  has_hole = false;
  for (std::size_t i = 0; i < ctx.cs.size(); ++i) {
    const Interval civ = eval_interval(pool_, ctx.cs[i], d);
    if (!civ.contains(0)) continue;  // already definitely true

    // Hole detection: an undecided `var != const` constraint.
    const ExprId c = ctx.cs[i];
    if (pool_.op(c) == ExprOp::kNe && pool_.is_var(pool_.lhs(c)) &&
        pool_.is_const(pool_.rhs(c))) {
      const VarId v = pool_.var_of(pool_.lhs(c));
      const std::int64_t k = pool_.const_val(pool_.rhs(c));
      const Interval iv = d.get(v, pool_);
      if (iv.lo < k && k < iv.hi) {
        out = v;
        has_hole = true;
        hole = k;
        return true;
      }
    }

    for (VarId v : ctx.cs_vars[i]) {
      const Interval iv = d.get(v, pool_);
      if (iv.is_point()) continue;
      const std::uint64_t w = iv.width();
      if (!found || w < best_width) {
        found = true;
        best_width = w;
        out = v;
      }
    }
  }
  return found;
}

Sat Solver::search(const QueryCtx& ctx, DomainMap d, Model& model,
                   std::uint64_t& budget) {
  if (budget == 0) return Sat::kUnknown;
  // Wall-clock deadline (checked every 32 nodes to keep it cheap).
  if ((budget & 31) == 0 &&
      query_sw_.elapsed_seconds() > opts_.max_query_seconds) {
    budget = 0;
    return Sat::kUnknown;
  }
  --budget;
  ++stats_.search_nodes;

  if (!fixpoint(ctx, d)) return Sat::kUnsat;
  if (try_models(ctx, d, model)) return Sat::kSat;

  VarId v{};
  bool has_hole = false;
  std::int64_t hole = 0;
  if (!pick_branch_var(ctx, d, v, has_hole, hole)) {
    // Every constraint's interval admits truth and no free variable remains:
    // all domains are points, so try_models' failure means unsat under this
    // assignment branch.
    return Sat::kUnsat;
  }

  const Interval iv = d.get(v, pool_);
  const std::int64_t mid =
      iv.lo + static_cast<std::int64_t>(iv.width() / 2);
  const Interval first =
      has_hole ? Interval{iv.lo, hole - 1} : Interval{iv.lo, mid};
  const Interval second =
      has_hole ? Interval{hole + 1, iv.hi} : Interval{mid + 1, iv.hi};
  bool saw_unknown = false;
  for (const Interval half : {first, second}) {
    if (half.is_empty()) continue;
    DomainMap d2 = d;
    d2.set(v, half);
    const Sat r = search(ctx, std::move(d2), model, budget);
    if (r == Sat::kSat) return Sat::kSat;
    if (r == Sat::kUnknown) saw_unknown = true;
  }
  return saw_unknown ? Sat::kUnknown : Sat::kUnsat;
}

namespace {

// Trace payload code for a verdict (obs::EventKind::kSolverQuery/-Slice).
std::int64_t verdict_code(Sat s) {
  switch (s) {
    case Sat::kSat: return 0;
    case Sat::kUnsat: return 1;
    case Sat::kUnknown: return 2;
  }
  return 2;
}

}  // namespace

SolveResult Solver::check(std::span<const ExprId> constraints) {
  ++stats_.queries;
  query_sw_.reset();

  std::vector<ExprId> cs;
  cs.reserve(constraints.size());
  for (ExprId c : constraints) {
    if (pool_.is_const(c)) {
      if (pool_.const_val(c) == 0) {
        ++stats_.unsat;
        if (trace_ != nullptr) {
          trace_->emit(obs::EventKind::kSolverQuery, verdict_code(Sat::kUnsat),
                       0);
        }
        return {Sat::kUnsat, {}};
      }
      continue;  // trivially true
    }
    cs.push_back(c);
  }
  if (cs.empty()) {
    ++stats_.sat;
    if (trace_ != nullptr) {
      trace_->emit(obs::EventKind::kSolverQuery, verdict_code(Sat::kSat), 0);
    }
    return {Sat::kSat, {}};
  }

  // Partition into independence slices and decide each one through the
  // fast-path cascade. Slices are conjoined: the first unsat decides the
  // query; any unknown degrades the verdict; otherwise the per-slice models
  // merge (var sets are disjoint) into the whole-query model.
  std::vector<Slice> slices;
  if (opts_.enable_slicing) {
    slices = slice_constraints(pool_, cs);
  } else {
    slices.push_back(whole_slice(pool_, cs));
  }
  stats_.slices += slices.size();
  if (slices.size() > 1) ++stats_.multi_slice_queries;

  SolveResult out;
  out.sat = Sat::kSat;
  const auto nslices = static_cast<std::int64_t>(slices.size());
  for (const Slice& sl : slices) {
    SolveResult r = solve_slice(sl);
    if (r.sat == Sat::kUnsat) {
      ++stats_.unsat;
      if (trace_ != nullptr) {
        trace_->emit(obs::EventKind::kSolverQuery, verdict_code(Sat::kUnsat),
                     nslices);
      }
      return {Sat::kUnsat, {}};
    }
    if (r.sat == Sat::kUnknown) {
      out.sat = Sat::kUnknown;
    } else if (out.sat == Sat::kSat) {
      for (const auto& [v, val] : r.model) out.model.emplace(v, val);
    }
  }
  if (trace_ != nullptr) {
    trace_->emit(obs::EventKind::kSolverQuery, verdict_code(out.sat), nslices);
  }
  if (out.sat == Sat::kUnknown) {
    out.model.clear();
    ++stats_.unknown;
    return out;
  }
  ++stats_.sat;
  if (opts_.enable_model_reuse && opts_.model_cache_size > 0 &&
      slices.size() > 1) {
    // The merged assignment serves later queries whose constraints join
    // several of today's components into one slice.
    model_cache_.remember(out.model);
  }
  return out;
}

SolveResult Solver::solve_slice(const Slice& slice) {
  std::vector<ExprId> sorted(slice.cs);
  std::sort(sorted.begin(), sorted.end());

  if (cache_ != nullptr) {
    if (const SolveResult* hit = cache_->lookup(sorted)) {
      ++stats_.cache_hits;
      if (trace_ != nullptr) {
        trace_->emit(obs::EventKind::kSolverSlice, 0, verdict_code(hit->sat));
      }
      return *hit;
    }
  }

  SolveResult res;
  if (opts_.enable_model_reuse && opts_.model_cache_size > 0 &&
      model_cache_.probe(pool_, slice.cs, slice.vars, res.model)) {
    ++stats_.model_reuse_hits;
    res.sat = Sat::kSat;
    if (trace_ != nullptr) {
      trace_->emit(obs::EventKind::kSolverSlice, 1, verdict_code(res.sat));
    }
    // Local-history fast path: memoise locally, but never publish to the
    // shared cache — other workers have different model histories and must
    // not observe this worker's.
    if (cache_ != nullptr) cache_->insert(sorted, res);
    return res;
  }

  // Canonical form: constraints ordered by structural digest, combined into
  // the pool-independent slice key.
  std::vector<Fp128> fps(slice.cs.size());
  for (std::size_t i = 0; i < slice.cs.size(); ++i) fps[i] = fp_.of(slice.cs[i]);
  std::vector<std::size_t> order(slice.cs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (!(fps[a] == fps[b])) return fps[a] < fps[b];
    return slice.cs[a] < slice.cs[b];  // equal digests ⇒ identical exprs
  });
  std::vector<Fp128> sorted_fps(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) sorted_fps[i] = fps[order[i]];
  const Fp128 slice_fp = ExprFingerprinter::combine(sorted_fps, opts_salt_);

  if (shared_ != nullptr && shared_->lookup(pool_, slice_fp, sorted_fps, res)) {
    // Defense in depth: a SAT model is re-proved by concrete evaluation, so
    // even a digest collision cannot smuggle in a wrong model. A failed
    // proof falls through to the canonical solve.
    bool proved = true;
    if (res.sat == Sat::kSat) {
      for (ExprId c : slice.cs) {
        if (pool_.eval(c, res.model) == 0) {
          proved = false;
          break;
        }
      }
    }
    if (proved) {
      ++stats_.shared_cache_hits;
      if (cache_ != nullptr) cache_->insert(sorted, res);
      if (res.sat == Sat::kSat && opts_.enable_model_reuse &&
          opts_.model_cache_size > 0) {
        model_cache_.remember(res.model);
      }
      // Level 2 ("canonical"), same as a solve: whether a sibling already
      // published this slice is the one schedule-dependent fork in the
      // cascade, and the result is bit-identical either way.
      if (trace_ != nullptr) {
        trace_->emit(obs::EventKind::kSolverSlice, 2, verdict_code(res.sat));
      }
      return res;
    }
    res = SolveResult{};
  }

  res = solve_canonical(slice, order, slice_fp);
  if (trace_ != nullptr) {
    trace_->emit(obs::EventKind::kSolverSlice, 2, verdict_code(res.sat));
  }
  if (res.sat != Sat::kUnknown) {
    // kUnknown stays out of both caches: it can depend on the wall-clock
    // deadline, and a bigger-budget sharer (the fault validator) must not
    // inherit a smaller budget's give-up.
    if (shared_ != nullptr) shared_->insert(pool_, slice_fp, sorted_fps, res);
    if (cache_ != nullptr) cache_->insert(sorted, res);
  }
  if (res.sat == Sat::kSat && opts_.enable_model_reuse &&
      opts_.model_cache_size > 0) {
    model_cache_.remember(res.model);
  }
  return res;
}

SolveResult Solver::solve_canonical(const Slice& slice,
                                    std::span<const std::size_t> order,
                                    const Fp128& slice_fp) {
  ++stats_.solves;
  Stopwatch solve_sw;
  // Every canonical solve of a given slice draws the same random stream —
  // in this worker, in a sibling worker, on a repeat — which is what makes
  // a cache hit bit-identical to recomputation.
  rng_ = Rng(derive_seed(opts_.seed, slice_fp.lo ^ slice_fp.hi));

  QueryCtx ctx;
  ctx.cs.reserve(order.size());
  ctx.cs_vars.reserve(order.size());
  for (const std::size_t idx : order) {
    ctx.cs.push_back(slice.cs[idx]);
    ctx.cs_vars.push_back(slice.cs_vars[idx]);
  }
  // Canonical variable order: first occurrence across the *digest-sorted*
  // constraint sequence. slice.vars carries the caller's constraint order,
  // which differs between workers that reached this slice along different
  // paths; rebuilding from ctx.cs_vars makes the model-guess and
  // branch-variable iteration a pure function of the slice's structure.
  ctx.all_vars.reserve(slice.vars.size());
  {
    std::unordered_set<VarId> seen;
    seen.reserve(slice.vars.size());
    for (const auto& cvs : ctx.cs_vars) {
      for (const VarId v : cvs) {
        if (seen.insert(v).second) ctx.all_vars.push_back(v);
      }
    }
  }

  SolveResult res;
  DomainMap d;
  if (!fixpoint(ctx, d)) {
    res.sat = Sat::kUnsat;
  } else if (try_models(ctx, d, res.model)) {
    res.sat = Sat::kSat;
  } else if (opts_.propagation_only) {
    res.sat = Sat::kUnknown;
  } else {
    if (getenv("STATSYM_DEBUG_HARD") != nullptr) {
      int shown = 0;
      fprintf(stderr, "HARD query ncs=%zu vars=%zu; undecided:\n",
              ctx.cs.size(), ctx.all_vars.size());
      for (ExprId c : ctx.cs) {
        const Interval iv = eval_interval(pool_, c, d);
        if (iv.contains(0) && shown < 12) {
          fprintf(stderr, "  %s\n", pool_.to_string(c).substr(0, 200).c_str());
          ++shown;
        }
      }
    }
    std::uint64_t budget = opts_.max_search_nodes;
    res.sat = search(ctx, d, res.model, budget);
  }
  if (res.sat == Sat::kUnknown && getenv("STATSYM_DEBUG_UNKNOWN")) {
    fprintf(stderr, "UNKNOWN query ncs=%zu last=%s\n", ctx.cs.size(),
            ctx.cs.empty() ? "-" : pool_.to_string(ctx.cs.back()).substr(0, 160).c_str());
  }
  stats_.solve_seconds += solve_sw.elapsed_seconds();
  return res;
}

SolveResult Solver::check_with(std::span<const ExprId> constraints,
                               ExprId extra) {
  std::vector<ExprId> cs(constraints.begin(), constraints.end());
  cs.push_back(extra);
  return check(cs);
}

}  // namespace statsym::solver
