#include "solver/interval.h"

namespace statsym::solver {
namespace {

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

std::int64_t sat(__int128 v) {
  if (v < static_cast<__int128>(kMin)) return kMin;
  if (v > static_cast<__int128>(kMax)) return kMax;
  return static_cast<std::int64_t>(v);
}

}  // namespace

std::uint64_t Interval::width() const {
  if (is_empty()) return 0;
  return static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
}

std::string Interval::to_string() const {
  if (is_empty()) return "[]";
  return "[" + std::to_string(lo) + ", " + std::to_string(hi) + "]";
}

Interval intersect(Interval a, Interval b) {
  return {std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

Interval hull(Interval a, Interval b) {
  if (a.is_empty()) return b;
  if (b.is_empty()) return a;
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval iv_add(Interval a, Interval b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  return {sat(static_cast<__int128>(a.lo) + b.lo),
          sat(static_cast<__int128>(a.hi) + b.hi)};
}

Interval iv_sub(Interval a, Interval b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  return {sat(static_cast<__int128>(a.lo) - b.hi),
          sat(static_cast<__int128>(a.hi) - b.lo)};
}

Interval iv_mul(Interval a, Interval b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  const __int128 c[4] = {static_cast<__int128>(a.lo) * b.lo,
                         static_cast<__int128>(a.lo) * b.hi,
                         static_cast<__int128>(a.hi) * b.lo,
                         static_cast<__int128>(a.hi) * b.hi};
  __int128 lo = c[0], hi = c[0];
  for (int i = 1; i < 4; ++i) {
    lo = std::min(lo, c[i]);
    hi = std::max(hi, c[i]);
  }
  return {sat(lo), sat(hi)};
}

Interval iv_div(Interval a, Interval b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  // Division by zero evaluates to 0 in the expression semantics, and the
  // divisor interval may straddle zero — fall back to a sound hull over the
  // candidate extremes plus 0 when 0 is a possible divisor.
  Interval out = Interval::empty();
  auto consider = [&](std::int64_t x, std::int64_t y) {
    const std::int64_t q =
        (y == 0) ? 0
                 : ((x == kMin && y == -1) ? kMin : x / y);
    out = hull(out, Interval::point(q));
  };
  const std::int64_t ys[4] = {b.lo, b.hi, -1, 1};
  for (std::int64_t y : ys) {
    if (y < b.lo || y > b.hi) continue;
    consider(a.lo, y);
    consider(a.hi, y);
  }
  if (b.contains(0)) out = hull(out, Interval::point(0));
  return out;
}

Interval iv_rem(Interval a, Interval b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  // Conservative: |a % b| < max(|b.lo|, |b.hi|), sign follows the dividend.
  std::uint64_t mag = 0;
  mag = std::max(mag, b.lo == kMin ? static_cast<std::uint64_t>(kMax) + 1
                                   : static_cast<std::uint64_t>(std::abs(b.lo)));
  mag = std::max(mag, b.hi == kMin ? static_cast<std::uint64_t>(kMax) + 1
                                   : static_cast<std::uint64_t>(std::abs(b.hi)));
  if (mag == 0) return Interval::point(0);  // only divisor is 0 -> defined 0
  const std::int64_t bound = sat(static_cast<__int128>(mag) - 1);
  Interval out{-bound, bound};
  if (a.lo >= 0) out.lo = 0;
  if (a.hi <= 0) out.hi = 0;
  return out;
}

Interval iv_neg(Interval a) {
  if (a.is_empty()) return a;
  return {sat(-static_cast<__int128>(a.hi)), sat(-static_cast<__int128>(a.lo))};
}

int iv_cmp_eq(Interval a, Interval b) {
  if (intersect(a, b).is_empty()) return 0;
  if (a.is_point() && b.is_point() && a.lo == b.lo) return 1;
  return -1;
}

int iv_cmp_ne(Interval a, Interval b) {
  const int eq = iv_cmp_eq(a, b);
  return eq == -1 ? -1 : (eq == 1 ? 0 : 1);
}

int iv_cmp_lt(Interval a, Interval b) {
  if (a.hi < b.lo) return 1;
  if (a.lo >= b.hi) return 0;
  return -1;
}

int iv_cmp_le(Interval a, Interval b) {
  if (a.hi <= b.lo) return 1;
  if (a.lo > b.hi) return 0;
  return -1;
}

}  // namespace statsym::solver
