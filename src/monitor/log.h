// Runtime log data model.
//
// The program monitor logs program state at *instrumented locations* —
// function entry and exit points, exactly as the paper's Fjalar-based
// monitor does. At each location it records global variables, function
// parameters and (on exit) the return value. Integer variables are logged by
// value; string variables are logged by length ("len(x)"), matching the
// paper's privacy-preserving logging rules (§III-B) and the predicates of
// Table V.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/module.h"

namespace statsym::monitor {

// An instrumented location: (function, enter|leave). Encoded as
// func_id * 2 + (leave ? 1 : 0) so ids are stable across runs of the same
// module.
using LocId = std::int32_t;
inline constexpr LocId kNoLoc = -1;

LocId enter_loc(ir::FuncId f);
LocId leave_loc(ir::FuncId f);
ir::FuncId loc_function(LocId loc);
bool loc_is_leave(LocId loc);

// Pretty name in the paper's style: "convert_fileName():enter".
std::string loc_name(const ir::Module& m, LocId loc);

// Total number of instrumented locations in a module.
std::size_t num_locations(const ir::Module& m);

// Where a logged variable lives — mirrors the paper's GLOBAL / FUNCPARAM
// tags (Fig. 8) plus the return value.
enum class VarKind : std::uint8_t { kGlobal, kParam, kReturn };

const char* var_kind_name(VarKind k);

// One observed variable value. `is_len` marks string-typed variables logged
// as their C-string length.
struct VarSample {
  std::string name;
  VarKind kind{VarKind::kGlobal};
  bool is_len{false};
  double value{0.0};

  // Display key in the paper's style, e.g. "len(suspect FUNCPARAM)".
  std::string display() const;
  // Identity key for statistics: variable name + kind + lens-ness (the same
  // variable at different *locations* is distinguished by the record's loc).
  std::string key() const;

  bool operator==(const VarSample& o) const = default;
};

// Everything logged at one instrumented location hit.
struct LogRecord {
  LocId loc{kNoLoc};
  std::vector<VarSample> vars;
};

// One complete program run's (possibly partially sampled) log.
struct RunLog {
  std::int32_t run_id{0};
  bool faulty{false};
  std::string fault_function;  // non-empty for faulty runs
  // Instrumented-location hits the monitor considered, kept *or* dropped by
  // the sampling roll — records.size() / records_considered is the realised
  // sampling rate of this run.
  std::int64_t records_considered{0};
  std::vector<LogRecord> records;
};

}  // namespace statsym::monitor
