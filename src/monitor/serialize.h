// Text (de)serialisation of run logs.
//
// The paper's monitor writes per-run log files that the (Python) statistical
// module later reads back; we keep the same file-oriented decoupling so logs
// can be persisted, inspected, corrupted in failure-injection tests, and
// replayed into the statistics module.
//
// Format (one record per line, '|'-separated fields):
//   run <id> <ok|faulty> [fault_function]
//   rec <loc_id>
//   var <kind>|<is_len>|<value>|<name>
#pragma once

#include <string>
#include <vector>

#include "monitor/log.h"

namespace statsym::monitor {

std::string serialize(const RunLog& log);
std::string serialize(const std::vector<RunLog>& logs);

// Exact byte count of serialize(log), computed without materialising the
// string. Used on the streaming ingest hot path (stats/suff_stats.h) where
// the byte accounting must equal the batch `serialize(all_logs).size()`
// but building ~1 KiB of text per folded run would dominate the fold.
std::size_t serialized_size(const RunLog& log);

// Parses one or more concatenated run logs. Returns false (and leaves `out`
// untouched) on malformed input; parsing is strict so corrupted logs are
// detected rather than silently mis-read.
bool deserialize(const std::string& text, std::vector<RunLog>& out);

}  // namespace statsym::monitor
