#include "monitor/shard.h"

#include <algorithm>
#include <utility>

#include "monitor/serialize.h"
#include "support/strings.h"

namespace statsym::monitor {

std::size_t LogShard::num_correct() const {
  return static_cast<std::size_t>(
      std::count_if(logs.begin(), logs.end(),
                    [](const RunLog& l) { return !l.faulty; }));
}

std::size_t LogShard::num_faulty() const {
  return logs.size() - num_correct();
}

std::size_t approx_log_bytes(const RunLog& log) {
  std::size_t n = sizeof(RunLog) + log.fault_function.size();
  for (const auto& rec : log.records) {
    n += sizeof(LogRecord);
    for (const auto& v : rec.vars) n += sizeof(VarSample) + v.name.size();
  }
  return n;
}

std::string serialize_shard(const LogShard& shard) {
  std::string out = "shard|" + std::to_string(LogShard::kFormatVersion) +
                    "|" + std::to_string(shard.shard_id) + "|" +
                    std::to_string(shard.logs.size()) + "\n";
  out += serialize(shard.logs);
  out += "endshard\n";
  return out;
}

namespace {

bool fail(std::string* error, std::string why) {
  if (error != nullptr) *error = std::move(why);
  return false;
}

}  // namespace

bool deserialize_shard(const std::string& text, LogShard& out,
                       std::string* error) {
  const std::size_t eol = text.find('\n');
  if (eol == std::string::npos) {
    return fail(error, "shard: missing header line");
  }
  const std::string_view header = trim(std::string_view(text).substr(0, eol));
  const auto fields = split(header, '|');
  if (fields.size() != 4 || fields[0] != "shard") {
    return fail(error, "shard: malformed header (want "
                       "'shard|<version>|<id>|<num_logs>')");
  }
  std::int64_t version = 0;
  std::int64_t shard_id = 0;
  std::int64_t num_logs = 0;
  if (!parse_i64(fields[1], version) || !parse_i64(fields[2], shard_id) ||
      !parse_i64(fields[3], num_logs) || shard_id < 0 || num_logs < 0) {
    return fail(error, "shard: non-numeric header field");
  }
  if (version != LogShard::kFormatVersion) {
    return fail(error, "shard: unsupported format version " +
                           std::to_string(version) + " (this build reads " +
                           "version " +
                           std::to_string(LogShard::kFormatVersion) + ")");
  }

  // The trailer is the FIRST line that reads "endshard" (rfind would let a
  // second concatenated shard smuggle its trailer in); after it, only
  // whitespace may follow — line-buffered writers append newlines, anything
  // else is a framing bug upstream.
  std::size_t trailer = std::string::npos;
  for (std::size_t at = text.find("endshard", eol + 1);
       at != std::string::npos; at = text.find("endshard", at + 1)) {
    if (text[at - 1] == '\n') {
      trailer = at;
      break;
    }
  }
  if (trailer == std::string::npos) {
    return fail(error, "shard: missing 'endshard' trailer");
  }
  if (trim(std::string_view(text).substr(trailer)) != "endshard") {
    return fail(error, "shard: trailing garbage after 'endshard'");
  }

  LogShard shard;
  shard.shard_id = static_cast<std::uint32_t>(shard_id);
  const std::string body = text.substr(eol + 1, trailer - eol - 1);
  if (!deserialize(body, shard.logs)) {
    return fail(error, "shard: malformed run-log body");
  }
  if (shard.logs.size() != static_cast<std::size_t>(num_logs)) {
    return fail(error, "shard: header declares " + std::to_string(num_logs) +
                           " logs but body holds " +
                           std::to_string(shard.logs.size()));
  }
  for (const auto& log : shard.logs) shard.bytes += approx_log_bytes(log);
  out = std::move(shard);
  return true;
}

ShardedCollector::ShardedCollector(std::size_t shard_size, ShardSink sink)
    : shard_size_(std::max<std::size_t>(1, shard_size)),
      sink_(std::move(sink)) {
  pending_.shard_id = next_shard_id_;
}

void ShardedCollector::add(RunLog&& log) {
  pending_.bytes += approx_log_bytes(log);
  pending_.logs.push_back(std::move(log));
  ++logs_added_;
  peak_retained_bytes_ = std::max(peak_retained_bytes_, pending_.bytes);
  if (pending_.logs.size() >= shard_size_) emit();
}

void ShardedCollector::flush() {
  if (!pending_.logs.empty()) emit();
}

void ShardedCollector::emit() {
  LogShard shard = std::move(pending_);
  pending_ = LogShard{};
  pending_.shard_id = ++next_shard_id_;
  ++shards_emitted_;
  if (sink_) sink_(std::move(shard));
}

}  // namespace statsym::monitor
