#include "monitor/log.h"

namespace statsym::monitor {

LocId enter_loc(ir::FuncId f) { return f * 2; }
LocId leave_loc(ir::FuncId f) { return f * 2 + 1; }
ir::FuncId loc_function(LocId loc) { return loc / 2; }
bool loc_is_leave(LocId loc) { return (loc & 1) != 0; }

std::string loc_name(const ir::Module& m, LocId loc) {
  if (loc == kNoLoc) return "<none>";
  return m.function(loc_function(loc)).name + "():" +
         (loc_is_leave(loc) ? "leave" : "enter");
}

std::size_t num_locations(const ir::Module& m) {
  return m.functions().size() * 2;
}

const char* var_kind_name(VarKind k) {
  switch (k) {
    case VarKind::kGlobal: return "GLOBAL";
    case VarKind::kParam: return "FUNCPARAM";
    case VarKind::kReturn: return "RETURN";
  }
  return "?";
}

std::string VarSample::display() const {
  std::string base = name + " " + var_kind_name(kind);
  return is_len ? "len(" + base + ")" : base;
}

std::string VarSample::key() const { return display(); }

}  // namespace statsym::monitor
