#include "monitor/monitor.h"

namespace statsym::monitor {

Monitor::Monitor(const ir::Module& m, MonitorOptions opts, Rng rng)
    : m_(m), opts_(opts), rng_(rng) {}

void Monitor::on_enter(const interp::Interpreter& interp,
                       const ir::Function& fn,
                       std::span<const interp::Value> params) {
  record(interp, fn, params, std::nullopt, /*leave=*/false);
}

void Monitor::on_leave(const interp::Interpreter& interp,
                       const ir::Function& fn,
                       std::span<const interp::Value> params,
                       const std::optional<interp::Value>& ret) {
  record(interp, fn, params, ret, /*leave=*/true);
}

void Monitor::record(const interp::Interpreter& interp,
                     const ir::Function& fn,
                     std::span<const interp::Value> params,
                     const std::optional<interp::Value>& ret, bool leave) {
  // Library-internal functions are not instrumented at all.
  if (!opts_.skip_function_prefix.empty() &&
      fn.name.starts_with(opts_.skip_function_prefix)) {
    return;
  }
  // Partial logging: each record survives with probability sampling_rate.
  ++log_.records_considered;
  if (!rng_.chance(opts_.sampling_rate)) return;

  const ir::FuncId fid = m_.find_function(fn.name);
  LogRecord rec;
  rec.loc = leave ? leave_loc(fid) : enter_loc(fid);

  auto sample_value = [&](const std::string& name, VarKind kind,
                          const interp::Value& v) {
    VarSample s;
    s.name = name;
    s.kind = kind;
    if (v.is_ref()) {
      // Strings are logged by length only (privacy rule, §III-B).
      s.is_len = true;
      s.value = static_cast<double>(interp.string_length(v));
    } else {
      s.value = static_cast<double>(v.i);
    }
    rec.vars.push_back(std::move(s));
  };

  if (opts_.log_globals) {
    for (const auto& g : m_.globals()) {
      sample_value(g.name, VarKind::kGlobal, interp.global_value(g.name));
    }
  }
  if (opts_.log_params) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      sample_value(fn.param_names[i], VarKind::kParam, params[i]);
    }
  }
  if (opts_.log_return && leave && ret.has_value()) {
    sample_value("ret", VarKind::kReturn, *ret);
  }
  log_.records.push_back(std::move(rec));
}

RunLog Monitor::finish(std::int32_t run_id, const interp::RunResult& result) {
  log_.run_id = run_id;
  log_.faulty = (result.outcome == interp::RunOutcome::kFault);
  if (log_.faulty) log_.fault_function = result.fault.function;
  return std::move(log_);
}

MonitoredRun run_monitored(const ir::Module& m, interp::RuntimeInput input,
                           MonitorOptions opts, Rng rng, std::int32_t run_id) {
  interp::Interpreter it(m, std::move(input));
  Monitor mon(m, opts, rng);
  it.set_listener(&mon);
  MonitoredRun out;
  out.result = it.run();
  out.log = mon.finish(run_id, out.result);
  return out;
}

}  // namespace statsym::monitor
