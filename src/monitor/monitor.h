// The program monitor: an InterpListener that produces sampled RunLogs.
//
// Mirrors the paper's Valgrind/Fjalar instrumentation (§VI-A): at every
// function entry and exit it logs all module globals and the function's
// parameters (plus the return value on exit), with per-record Bernoulli
// sampling at a tunable rate to model partial logging (§III-B). A faulty
// run's trailing records are naturally missing because the run aborts — in
// particular the faulting function's leave record is never captured, which
// is what produces the paper's "var < -infinity" predicates at unreached
// locations (Table V, P7–P10).
#pragma once

#include <optional>

#include "interp/interpreter.h"
#include "monitor/log.h"
#include "support/rng.h"

namespace statsym::monitor {

struct MonitorOptions {
  double sampling_rate{1.0};  // probability each record is kept
  bool log_globals{true};
  bool log_params{true};
  bool log_return{true};
  // Functions whose name starts with this prefix are not instrumented
  // (models Fjalar instrumenting user functions but not libc). The apps'
  // IR stdlib (__strlen, __strcpy, ...) uses the "__" prefix.
  std::string skip_function_prefix{"__"};
};

class Monitor : public interp::InterpListener {
 public:
  Monitor(const ir::Module& m, MonitorOptions opts, Rng rng);

  void on_enter(const interp::Interpreter& interp, const ir::Function& fn,
                std::span<const interp::Value> params) override;
  void on_leave(const interp::Interpreter& interp, const ir::Function& fn,
                std::span<const interp::Value> params,
                const std::optional<interp::Value>& ret) override;

  // Finalises the log after the run completes: stamps the run id and
  // faultiness. Returns the collected log.
  RunLog finish(std::int32_t run_id, const interp::RunResult& result);

 private:
  void record(const interp::Interpreter& interp, const ir::Function& fn,
              std::span<const interp::Value> params,
              const std::optional<interp::Value>& ret, bool leave);

  const ir::Module& m_;
  MonitorOptions opts_;
  Rng rng_;
  RunLog log_;
};

// Convenience driver: runs the module once under the monitor and returns the
// (log, result) pair. `rng` seeds the sampling decisions only.
struct MonitoredRun {
  RunLog log;
  interp::RunResult result;
};

MonitoredRun run_monitored(const ir::Module& m, interp::RuntimeInput input,
                           MonitorOptions opts, Rng rng, std::int32_t run_id);

}  // namespace statsym::monitor
