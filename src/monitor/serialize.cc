#include "monitor/serialize.h"

#include <cstdio>
#include <sstream>

#include "support/strings.h"

namespace statsym::monitor {

std::string serialize(const RunLog& log) {
  std::ostringstream os;
  os << "run " << log.run_id << " " << (log.faulty ? "faulty" : "ok");
  if (log.faulty) os << " " << log.fault_function;
  os << "\n";
  if (log.records_considered > 0) {
    os << "seen " << log.records_considered << "\n";
  }
  for (const auto& rec : log.records) {
    os << "rec " << rec.loc << "\n";
    for (const auto& v : rec.vars) {
      os << "var " << var_kind_name(v.kind) << "|" << (v.is_len ? 1 : 0) << "|"
         << v.value << "|" << v.name << "\n";
    }
  }
  return os.str();
}

std::string serialize(const std::vector<RunLog>& logs) {
  std::string out;
  for (const auto& l : logs) out += serialize(l);
  return out;
}

namespace {

std::size_t int_len(std::int64_t v) {
  char buf[24];
  return static_cast<std::size_t>(std::snprintf(buf, sizeof buf, "%lld",
                                                static_cast<long long>(v)));
}

// ostream's default double insertion is specified to format as if by
// printf("%g") at the stream's precision (6), so this length is exact.
std::size_t double_len(double v) {
  char buf[40];
  return static_cast<std::size_t>(std::snprintf(buf, sizeof buf, "%.6g", v));
}

}  // namespace

std::size_t serialized_size(const RunLog& log) {
  // "run <id> <ok|faulty>[ <fault_function>]\n"
  std::size_t n = 4 + int_len(log.run_id) + 1 +
                  (log.faulty ? 6 + (log.fault_function.empty()
                                         ? 0
                                         : 1 + log.fault_function.size())
                              : 2) +
                  1;
  if (log.records_considered > 0) {
    n += 5 + int_len(log.records_considered) + 1;  // "seen <n>\n"
  }
  for (const auto& rec : log.records) {
    n += 4 + int_len(rec.loc) + 1;  // "rec <loc>\n"
    for (const auto& v : rec.vars) {
      // "var <kind>|<is_len>|<value>|<name>\n"
      n += 4 + std::string_view(var_kind_name(v.kind)).size() + 1 + 1 + 1 +
           double_len(v.value) + 1 + v.name.size() + 1;
    }
  }
  return n;
}

bool deserialize(const std::string& text, std::vector<RunLog>& out) {
  std::vector<RunLog> logs;
  RunLog* cur = nullptr;
  LogRecord* cur_rec = nullptr;

  for (std::string_view line : split(text, '\n')) {
    line = trim(line);
    if (line.empty()) continue;
    if (starts_with(line, "run ")) {
      const auto fields = split(line.substr(4), ' ');
      if (fields.size() < 2 || fields.size() > 3) return false;
      RunLog log;
      std::int64_t id = 0;
      if (!parse_i64(fields[0], id)) return false;
      log.run_id = static_cast<std::int32_t>(id);
      if (fields[1] == "faulty") {
        log.faulty = true;
        if (fields.size() == 3) log.fault_function = fields[2];
      } else if (fields[1] == "ok") {
        if (fields.size() != 2) return false;
      } else {
        return false;
      }
      logs.push_back(std::move(log));
      cur = &logs.back();
      cur_rec = nullptr;
    } else if (starts_with(line, "seen ")) {
      if (cur == nullptr || cur_rec != nullptr) return false;
      std::int64_t seen = 0;
      if (!parse_i64(trim(line.substr(5)), seen) || seen < 0) return false;
      cur->records_considered = seen;
    } else if (starts_with(line, "rec ")) {
      if (cur == nullptr) return false;
      std::int64_t loc = 0;
      if (!parse_i64(trim(line.substr(4)), loc) || loc < 0) return false;
      cur->records.push_back({static_cast<LocId>(loc), {}});
      cur_rec = &cur->records.back();
    } else if (starts_with(line, "var ")) {
      if (cur_rec == nullptr) return false;
      const auto fields = split(line.substr(4), '|');
      if (fields.size() != 4) return false;
      VarSample v;
      if (fields[0] == "GLOBAL") {
        v.kind = VarKind::kGlobal;
      } else if (fields[0] == "FUNCPARAM") {
        v.kind = VarKind::kParam;
      } else if (fields[0] == "RETURN") {
        v.kind = VarKind::kReturn;
      } else {
        return false;
      }
      if (fields[1] == "1") {
        v.is_len = true;
      } else if (fields[1] == "0") {
        v.is_len = false;
      } else {
        return false;
      }
      if (!parse_double(fields[2], v.value)) return false;
      if (fields[3].empty()) return false;
      v.name = fields[3];
      cur_rec->vars.push_back(std::move(v));
    } else {
      return false;
    }
  }
  out = std::move(logs);
  return true;
}

}  // namespace statsym::monitor
