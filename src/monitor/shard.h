// Log shards: the unit of streaming ingestion.
//
// Batch-mode StatSym accumulates every RunLog in one vector and fits the
// statistics in a single pass; that caps "monitor in production, analyse
// continuously" at whatever fits in memory. A LogShard is a small,
// serialisable batch of runs; the ShardedCollector groups admitted logs into
// shards and hands each one off as soon as it is full, so a consumer that
// folds shards into mergeable sufficient statistics (stats/suff_stats.h)
// only ever retains O(shard size) raw log bytes, not O(total runs).
//
// Shards have their own wire format on top of the per-run text format so
// they can be persisted, shipped between processes, and replayed. The
// header carries an explicit format-version field; readers reject unknown
// versions with a clear error instead of guessing.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "monitor/log.h"

namespace statsym::monitor {

struct LogShard {
  // Bump when the shard wire format changes shape. Readers accept exactly
  // the versions they understand (currently: only this one).
  static constexpr std::uint32_t kFormatVersion = 1;

  std::uint32_t shard_id{0};
  std::vector<RunLog> logs;
  // In-memory footprint estimate of `logs` (approx_log_bytes sums), kept by
  // the collector so consumers can report retained-bytes without touching
  // the logs again.
  std::size_t bytes{0};

  std::size_t num_correct() const;
  std::size_t num_faulty() const;
};

// Cheap in-memory footprint estimate for the retained-bytes accounting
// (variable names + per-record/var overheads). Deliberately not the
// serialized size: it is called once per admitted log on the hot ingest
// path, where serialising would double the cost of the whole fold.
std::size_t approx_log_bytes(const RunLog& log);

// Shard wire format:
//   shard|<version>|<shard_id>|<num_logs>
//   <num_logs concatenated run logs in the monitor text format>
//   endshard
std::string serialize_shard(const LogShard& shard);

// Strict parse. On failure returns false, leaves `out` untouched and, when
// `error` is non-null, stores a human-readable reason — in particular an
// unknown format version names both the found and the supported version.
bool deserialize_shard(const std::string& text, LogShard& out,
                       std::string* error = nullptr);

// Groups admitted logs into fixed-size shards and emits each shard through
// the sink the moment it fills; flush() emits the trailing partial shard.
// Tracks the retained-log footprint so callers can assert the O(shard size)
// memory bound.
class ShardedCollector {
 public:
  using ShardSink = std::function<void(LogShard&&)>;

  // shard_size 0 is clamped to 1 (every log its own shard).
  ShardedCollector(std::size_t shard_size, ShardSink sink);

  void add(RunLog&& log);
  // Emits the pending partial shard, if any. Idempotent.
  void flush();

  std::size_t shard_size() const { return shard_size_; }
  std::uint64_t logs_added() const { return logs_added_; }
  std::uint32_t shards_emitted() const { return shards_emitted_; }
  // Currently retained (not yet emitted) logs and their footprint.
  std::size_t retained_logs() const { return pending_.logs.size(); }
  std::size_t retained_bytes() const { return pending_.bytes; }
  // High-water mark of retained_bytes() across the collector's lifetime —
  // the number the O(shard size) memory-bound gate checks.
  std::size_t peak_retained_bytes() const { return peak_retained_bytes_; }

 private:
  void emit();

  std::size_t shard_size_;
  ShardSink sink_;
  LogShard pending_;
  std::uint32_t next_shard_id_{0};
  std::uint64_t logs_added_{0};
  std::uint32_t shards_emitted_{0};
  std::size_t peak_retained_bytes_{0};
};

}  // namespace statsym::monitor
