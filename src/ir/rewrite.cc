#include "ir/rewrite.h"

namespace statsym::ir {

namespace {

Module copy_module(const Module& m) {
  Module out;
  out.set_name(m.name());
  for (const auto& g : m.globals()) out.add_global(g);
  for (const auto& fn : m.functions()) out.add_function(fn);
  return out;
}

}  // namespace

Module drop_function(const Module& m, FuncId victim) {
  if (victim == m.entry()) return copy_module(m);

  Module out;
  out.set_name(m.name());
  for (const auto& g : m.globals()) out.add_global(g);

  for (FuncId id = 0; id < static_cast<FuncId>(m.functions().size()); ++id) {
    if (id == victim) continue;
    Function fn = m.function(id);
    for (auto& block : fn.blocks) {
      std::vector<Instr> kept;
      kept.reserve(block.instrs.size());
      for (Instr& in : block.instrs) {
        if (in.op == Opcode::kCall) {
          const auto target = static_cast<FuncId>(in.imm);
          if (target == victim) {
            if (in.dst == kNoReg) continue;  // void call: erase outright
            Instr zero;
            zero.op = Opcode::kConst;
            zero.dst = in.dst;
            zero.imm = 0;
            kept.push_back(zero);
            continue;
          }
          if (target > victim) in.imm = target - 1;
        }
        kept.push_back(std::move(in));
      }
      block.instrs = std::move(kept);
    }
    out.add_function(std::move(fn));
  }
  return out;
}

Module stub_block(const Module& m, FuncId f, BlockId b) {
  Module out = copy_module(m);
  Function& fn = out.function(f);
  if (b < 0 || b >= static_cast<BlockId>(fn.blocks.size())) return out;
  const Reg r = fn.num_regs++;
  Instr zero;
  zero.op = Opcode::kConst;
  zero.dst = r;
  zero.imm = 0;
  Instr ret;
  ret.op = Opcode::kRet;
  ret.a = r;
  fn.blocks[static_cast<std::size_t>(b)].instrs = {zero, ret};
  return out;
}

}  // namespace statsym::ir
