// Static program statistics — the quantities the paper reports in Table I
// (SLOC, external calls, internal user-level calls, global variables,
// function parameters) computed over a mini-IR module.
#pragma once

#include <cstdint>
#include <string>

#include "ir/module.h"

namespace statsym::ir {

struct ProgramStats {
  std::string program;
  std::size_t functions{0};
  std::size_t blocks{0};
  std::size_t instrs{0};       // total instruction count
  std::size_t sloc{0};         // SLOC analogue: instructions + decl lines
  std::size_t ext_call_sites{0};
  std::size_t internal_call_sites{0};
  std::size_t globals{0};
  std::size_t params{0};       // total parameters across functions
  std::size_t branches{0};     // conditional branch sites
  std::size_t loops{0};        // back-edge count (target block <= own block)
};

ProgramStats compute_stats(const Module& m);

}  // namespace statsym::ir
