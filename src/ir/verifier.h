// Structural well-formedness checks for mini-IR modules.
#pragma once

#include <string>

#include "ir/module.h"

namespace statsym::ir {

// Returns an empty string when the module is well-formed, otherwise a
// description of the first violation found. Checked properties:
//   - a function named "main" exists,
//   - every block is non-empty and ends with exactly one terminator, with no
//     terminator in the middle,
//   - all register operands are within the function's register count,
//   - all branch targets name existing blocks,
//   - kCall targets are resolved (imm in range) and argument counts match the
//     callee's parameter count,
//   - kLoadG/kStoreG name declared globals,
//   - instructions that must produce a value have a dst, and store-like
//     instructions have their operands.
std::string verify(const Module& m);

}  // namespace statsym::ir
