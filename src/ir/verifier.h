// Structural well-formedness checks for mini-IR modules.
#pragma once

#include <string>

#include "ir/module.h"

namespace statsym::ir {

// Returns an empty string when the module is well-formed, otherwise a
// description of the first violation found. Checked properties:
//   - a function named "main" exists,
//   - every block is non-empty and ends with exactly one terminator, with no
//     terminator in the middle,
//   - all register operands are within the function's register count,
//   - all branch targets name existing blocks,
//   - kCall targets are resolved (imm in range) and argument counts match the
//     callee's parameter count,
//   - kLoadG/kStoreG name declared globals,
//   - instructions that must produce a value have a dst, and store-like
//     instructions have their operands,
//   - every block is reachable from the function's entry block (unreachable
//     blocks are dead weight the builder cannot produce and usually mark a
//     broken rewrite),
//   - every register read is preceded by a definition on at least one path
//     from the entry block (parameters count as defined). This is the *may*
//     direction: registers are zero-initialised at runtime, so a
//     conditionally-defined register is legal, but one no path ever defines
//     is a use-before-def bug in the producer.
std::string verify(const Module& m);

}  // namespace statsym::ir
