#include "ir/module.h"

#include <cassert>
#include <stdexcept>

namespace statsym::ir {

FuncId Module::add_function(Function fn) {
  if (func_index_.contains(fn.name)) {
    throw std::invalid_argument("duplicate function: " + fn.name);
  }
  const FuncId id = static_cast<FuncId>(functions_.size());
  func_index_.emplace(fn.name, id);
  functions_.push_back(std::move(fn));
  return id;
}

std::int32_t Module::add_global(Global g) {
  if (global_index_.contains(g.name)) {
    throw std::invalid_argument("duplicate global: " + g.name);
  }
  const auto idx = static_cast<std::int32_t>(globals_.size());
  global_index_.emplace(g.name, idx);
  globals_.push_back(std::move(g));
  return idx;
}

FuncId Module::find_function(const std::string& name) const {
  auto it = func_index_.find(name);
  return it == func_index_.end() ? kNoFunc : it->second;
}

std::int32_t Module::find_global(const std::string& name) const {
  auto it = global_index_.find(name);
  return it == global_index_.end() ? -1 : it->second;
}

}  // namespace statsym::ir
