#include "ir/program_stats.h"

namespace statsym::ir {

ProgramStats compute_stats(const Module& m) {
  ProgramStats s;
  s.program = m.name();
  s.globals = m.globals().size();
  for (const auto& fn : m.functions()) {
    ++s.functions;
    s.params += static_cast<std::size_t>(fn.num_params);
    s.blocks += fn.blocks.size();
    for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
      const auto& blk = fn.blocks[bi];
      s.instrs += blk.instrs.size();
      for (const auto& in : blk.instrs) {
        switch (in.op) {
          case Opcode::kCall:
            ++s.internal_call_sites;
            break;
          case Opcode::kCallExt:
            ++s.ext_call_sites;
            break;
          case Opcode::kBr:
            ++s.branches;
            if (in.t0 <= static_cast<BlockId>(bi) ||
                in.t1 <= static_cast<BlockId>(bi)) {
              ++s.loops;
            }
            break;
          case Opcode::kJmp:
            if (in.t0 <= static_cast<BlockId>(bi)) ++s.loops;
            break;
          default:
            break;
        }
      }
    }
  }
  // SLOC analogue: one line per instruction plus function/global declaration
  // lines, mirroring how the paper counts source lines rather than IR ops.
  s.sloc = s.instrs + 2 * s.functions + s.globals;
  return s;
}

}  // namespace statsym::ir
