// Module-to-module rewrites used by the fuzz harness's test-case shrinker.
//
// Both rewrites return a structurally fresh Module; the input is untouched.
// They preserve well-formedness mechanically (callers should still run
// ir::verify before trusting a rewritten module, which the shrinker does).
#pragma once

#include "ir/module.h"

namespace statsym::ir {

// Copy of `m` without function `victim`. Call sites of the victim are
// erased: a valued call becomes `dst = 0`, a void call disappears. Remaining
// kCall targets are remapped to the shifted function ids. The entry function
// ("main") cannot be dropped; returns an unmodified copy in that case.
Module drop_function(const Module& m, FuncId victim);

// Copy of `m` with block `b` of function `f` replaced by `return 0` (a
// fresh register holds the constant, so no live register is clobbered).
// Branches targeting the block stay valid; the block just cuts the path
// short.
Module stub_block(const Module& m, FuncId f, BlockId b);

}  // namespace statsym::ir
