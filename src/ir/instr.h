// Instruction set of the mini-IR.
//
// The mini-IR plays the role LLVM bitcode plays in the paper: the four target
// applications are expressed in it, the concrete interpreter (interp/) runs
// it to produce monitor logs, and the symbolic executor (symexec/) explores
// it KLEE-style. It is a register machine over two value kinds — 64-bit
// integers and references to byte buffers — organised into functions made of
// basic blocks. Buffers make buffer-overflow vulnerabilities expressible
// exactly as in the original C programs (unchecked copy loops into
// fixed-size stack allocations).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace statsym::ir {

using Reg = std::int32_t;
using BlockId = std::int32_t;
using FuncId = std::int32_t;

inline constexpr Reg kNoReg = -1;
inline constexpr BlockId kNoBlock = -1;
inline constexpr FuncId kNoFunc = -1;

enum class Opcode : std::uint8_t {
  // Data movement / arithmetic.
  kConst,    // dst = imm
  kMove,     // dst = r(a)
  kBin,      // dst = r(a) <bin> r(b)
  kNot,      // dst = (r(a) is falsy) ? 1 : 0
  kNeg,      // dst = -r(a)

  // Memory. Buffers are byte arrays with a fixed size; loads/stores are
  // bounds-checked by the interpreters — an out-of-bounds store is the
  // fault model for buffer-overflow vulnerabilities.
  kAlloca,    // dst = ref to fresh zeroed buffer of size imm
  kStrConst,  // dst = ref to fresh buffer holding str + '\0'
  kLoad,      // dst = byte at r(a)[r(b)]
  kStore,     // r(a)[r(b)] = r(c) (low 8 bits)
  kBufSize,   // dst = size of buffer r(a)

  // Globals (module slots holding an int or a buffer reference).
  kLoadG,   // dst = global slot `str`
  kStoreG,  // global slot `str` = r(a)

  // Control flow. Every basic block ends with exactly one terminator
  // (kJmp, kBr or kRet).
  kJmp,      // goto block t0
  kBr,       // if r(a) truthy goto t0 else t1
  kCall,     // dst? = callee(args...)  — callee resolved to FuncId in imm
  kCallExt,  // dst? = external `str`(args...) — modelled effect, logged
  kRet,      // return r(a) (or nothing when a == kNoReg)

  // Program inputs (provided by the runtime harness).
  kArgc,  // dst = number of argv strings
  kArg,   // dst = ref to argv[r(a)] buffer
  kEnv,   // dst = ref to environment variable `str`, or null ref

  // Symbolic-input markers (the klee_make_symbolic analogue). The concrete
  // interpreter reads the value from the RuntimeInput instead.
  kMakeSymInt,  // r-value in dst becomes symbolic `str`, domain [imm, imm2]
  kMakeSymBuf,  // bytes of buffer r(a) become symbolic `str`

  // Checks and effects.
  kAssert,  // fault (assertion failure) when r(a) is falsy
  kPrint,   // external side effect; no semantic content
};

enum class BinOp : std::uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,  // division by zero is a fault
  kRem,  // remainder by zero is a fault
  kAnd,  // bitwise
  kOr,
  kXor,
  kShl,
  kShr,
  kEq,
  kNe,
  kLt,  // signed
  kLe,
  kGt,
  kGe,
  kLAnd,  // logical (on truthiness); non-short-circuit
  kLOr,
};

// One instruction. A plain aggregate: the IR is data, behaviour lives in the
// interpreters. `args` is only populated for kCall/kCallExt.
struct Instr {
  Opcode op{Opcode::kConst};
  Reg dst{kNoReg};
  Reg a{kNoReg};
  Reg b{kNoReg};
  Reg c{kNoReg};
  std::int64_t imm{0};
  std::int64_t imm2{0};
  BinOp bin{BinOp::kAdd};
  BlockId t0{kNoBlock};
  BlockId t1{kNoBlock};
  std::string str;
  std::vector<Reg> args;

  bool is_terminator() const {
    return op == Opcode::kJmp || op == Opcode::kBr || op == Opcode::kRet;
  }
};

// Human-readable names (for the printer and diagnostics).
const char* opcode_name(Opcode op);
const char* binop_name(BinOp op);

// True for comparison operators (result is 0/1).
bool is_comparison(BinOp op);

// Applies a binary operator to concrete operands. Division/remainder by zero
// must be screened by the caller (interpreters turn it into a fault).
std::int64_t eval_binop(BinOp op, std::int64_t a, std::int64_t b);

}  // namespace statsym::ir
