#include "ir/function.h"

// Data-only today; kept as a translation unit for future out-of-line helpers.
namespace statsym::ir {}
