// A whole program in the mini-IR: functions plus global slots.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/function.h"

namespace statsym::ir {

// A global slot. Int slots start at `init_int`; Buf slots refer to a byte
// buffer of `buf_size` bytes allocated and zeroed at program start (the slot
// then holds a reference to it and is typically never reassigned).
struct Global {
  enum class Kind { kInt, kBuf };
  std::string name;
  Kind kind{Kind::kInt};
  std::int64_t init_int{0};
  std::int64_t buf_size{0};
};

class Module {
 public:
  // Adds a function; the name must be unique. Returns its id.
  FuncId add_function(Function fn);

  // Adds a global; the name must be unique. Returns its index.
  std::int32_t add_global(Global g);

  FuncId find_function(const std::string& name) const;  // kNoFunc if absent
  std::int32_t find_global(const std::string& name) const;  // -1 if absent

  const Function& function(FuncId id) const { return functions_[id]; }
  Function& function(FuncId id) { return functions_[id]; }
  const std::vector<Function>& functions() const { return functions_; }
  const std::vector<Global>& globals() const { return globals_; }
  const Global& global(std::int32_t i) const { return globals_[i]; }

  // Entry point; defaults to the function named "main".
  FuncId entry() const { return find_function("main"); }

  // Optional program name (used in reports/tables).
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

 private:
  std::string name_;
  std::vector<Function> functions_;
  std::vector<Global> globals_;
  std::unordered_map<std::string, FuncId> func_index_;
  std::unordered_map<std::string, std::int32_t> global_index_;
};

}  // namespace statsym::ir
