#include "ir/instr.h"

#include <cassert>

namespace statsym::ir {

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kConst: return "const";
    case Opcode::kMove: return "move";
    case Opcode::kBin: return "bin";
    case Opcode::kNot: return "not";
    case Opcode::kNeg: return "neg";
    case Opcode::kAlloca: return "alloca";
    case Opcode::kStrConst: return "strconst";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kBufSize: return "bufsize";
    case Opcode::kLoadG: return "loadg";
    case Opcode::kStoreG: return "storeg";
    case Opcode::kJmp: return "jmp";
    case Opcode::kBr: return "br";
    case Opcode::kCall: return "call";
    case Opcode::kCallExt: return "callext";
    case Opcode::kRet: return "ret";
    case Opcode::kArgc: return "argc";
    case Opcode::kArg: return "arg";
    case Opcode::kEnv: return "env";
    case Opcode::kMakeSymInt: return "makesymint";
    case Opcode::kMakeSymBuf: return "makesymbuf";
    case Opcode::kAssert: return "assert";
    case Opcode::kPrint: return "print";
  }
  return "?";
}

const char* binop_name(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kRem: return "%";
    case BinOp::kAnd: return "&";
    case BinOp::kOr: return "|";
    case BinOp::kXor: return "^";
    case BinOp::kShl: return "<<";
    case BinOp::kShr: return ">>";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kLAnd: return "&&";
    case BinOp::kLOr: return "||";
  }
  return "?";
}

bool is_comparison(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

std::int64_t eval_binop(BinOp op, std::int64_t a, std::int64_t b) {
  // Wrap-around two's-complement semantics via unsigned arithmetic; signed
  // overflow in C++ would be UB.
  const auto ua = static_cast<std::uint64_t>(a);
  const auto ub = static_cast<std::uint64_t>(b);
  switch (op) {
    case BinOp::kAdd: return static_cast<std::int64_t>(ua + ub);
    case BinOp::kSub: return static_cast<std::int64_t>(ua - ub);
    case BinOp::kMul: return static_cast<std::int64_t>(ua * ub);
    case BinOp::kDiv:
      assert(b != 0);
      // INT64_MIN / -1 also overflows; define it as INT64_MIN (wrap).
      if (a == INT64_MIN && b == -1) return INT64_MIN;
      return a / b;
    case BinOp::kRem:
      assert(b != 0);
      if (a == INT64_MIN && b == -1) return 0;
      return a % b;
    case BinOp::kAnd: return static_cast<std::int64_t>(ua & ub);
    case BinOp::kOr: return static_cast<std::int64_t>(ua | ub);
    case BinOp::kXor: return static_cast<std::int64_t>(ua ^ ub);
    case BinOp::kShl: return static_cast<std::int64_t>(ua << (ub & 63));
    case BinOp::kShr: return static_cast<std::int64_t>(ua >> (ub & 63));
    case BinOp::kEq: return a == b;
    case BinOp::kNe: return a != b;
    case BinOp::kLt: return a < b;
    case BinOp::kLe: return a <= b;
    case BinOp::kGt: return a > b;
    case BinOp::kGe: return a >= b;
    case BinOp::kLAnd: return (a != 0) && (b != 0);
    case BinOp::kLOr: return (a != 0) || (b != 0);
  }
  return 0;
}

}  // namespace statsym::ir
