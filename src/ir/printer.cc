#include "ir/printer.h"

#include <sstream>

namespace statsym::ir {
namespace {

std::string reg_name(Reg r) {
  if (r == kNoReg) return "_";
  return "r" + std::to_string(r);
}

}  // namespace

std::string to_string(const Instr& in, const Module* m) {
  std::ostringstream os;
  switch (in.op) {
    case Opcode::kConst:
      os << reg_name(in.dst) << " = " << in.imm;
      break;
    case Opcode::kMove:
      os << reg_name(in.dst) << " = " << reg_name(in.a);
      break;
    case Opcode::kBin:
      os << reg_name(in.dst) << " = " << reg_name(in.a) << " "
         << binop_name(in.bin) << " " << reg_name(in.b);
      break;
    case Opcode::kNot:
      os << reg_name(in.dst) << " = !" << reg_name(in.a);
      break;
    case Opcode::kNeg:
      os << reg_name(in.dst) << " = -" << reg_name(in.a);
      break;
    case Opcode::kAlloca:
      os << reg_name(in.dst) << " = alloca " << in.imm;
      break;
    case Opcode::kStrConst:
      os << reg_name(in.dst) << " = \"" << in.str << "\"";
      break;
    case Opcode::kLoad:
      os << reg_name(in.dst) << " = " << reg_name(in.a) << "[" << reg_name(in.b)
         << "]";
      break;
    case Opcode::kStore:
      os << reg_name(in.a) << "[" << reg_name(in.b) << "] = " << reg_name(in.c);
      break;
    case Opcode::kBufSize:
      os << reg_name(in.dst) << " = bufsize " << reg_name(in.a);
      break;
    case Opcode::kLoadG:
      os << reg_name(in.dst) << " = @" << in.str;
      break;
    case Opcode::kStoreG:
      os << "@" << in.str << " = " << reg_name(in.a);
      break;
    case Opcode::kJmp:
      os << "jmp b" << in.t0;
      break;
    case Opcode::kBr:
      os << "br " << reg_name(in.a) << ", b" << in.t0 << ", b" << in.t1;
      break;
    case Opcode::kCall: {
      if (in.dst != kNoReg) os << reg_name(in.dst) << " = ";
      std::string callee = in.str;
      if (m != nullptr && in.imm >= 0 &&
          in.imm < static_cast<std::int64_t>(m->functions().size())) {
        callee = m->function(static_cast<FuncId>(in.imm)).name;
      }
      os << "call " << callee << "(";
      for (std::size_t i = 0; i < in.args.size(); ++i) {
        if (i) os << ", ";
        os << reg_name(in.args[i]);
      }
      os << ")";
      break;
    }
    case Opcode::kCallExt: {
      if (in.dst != kNoReg) os << reg_name(in.dst) << " = ";
      os << "ext " << in.str << "(";
      for (std::size_t i = 0; i < in.args.size(); ++i) {
        if (i) os << ", ";
        os << reg_name(in.args[i]);
      }
      os << ")";
      break;
    }
    case Opcode::kRet:
      os << "ret";
      if (in.a != kNoReg) os << " " << reg_name(in.a);
      break;
    case Opcode::kArgc:
      os << reg_name(in.dst) << " = argc";
      break;
    case Opcode::kArg:
      os << reg_name(in.dst) << " = argv[" << reg_name(in.a) << "]";
      break;
    case Opcode::kEnv:
      os << reg_name(in.dst) << " = env \"" << in.str << "\"";
      break;
    case Opcode::kMakeSymInt:
      os << "make_symbolic_int " << reg_name(in.dst) << " \"" << in.str
         << "\" [" << in.imm << ", " << in.imm2 << "]";
      break;
    case Opcode::kMakeSymBuf:
      os << "make_symbolic_buf " << reg_name(in.a) << " \"" << in.str << "\"";
      break;
    case Opcode::kAssert:
      os << "assert " << reg_name(in.a);
      break;
    case Opcode::kPrint:
      os << "print \"" << in.str << "\"";
      break;
  }
  return os.str();
}

std::string to_string(const Function& fn, const Module* m) {
  std::ostringstream os;
  os << "func " << fn.name << "(";
  for (std::int32_t i = 0; i < fn.num_params; ++i) {
    if (i) os << ", ";
    os << fn.param_names[i] << "=r" << i;
  }
  os << ") regs=" << fn.num_regs << " {\n";
  for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
    os << " b" << bi << ":\n";
    for (const auto& in : fn.blocks[bi].instrs) {
      os << "   " << to_string(in, m) << "\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string to_string(const Module& m) {
  std::ostringstream os;
  os << "module " << m.name() << "\n";
  for (const auto& g : m.globals()) {
    if (g.kind == Global::Kind::kInt) {
      os << "global int @" << g.name << " = " << g.init_int << "\n";
    } else {
      os << "global buf @" << g.name << "[" << g.buf_size << "]\n";
    }
  }
  for (const auto& fn : m.functions()) os << to_string(fn, &m);
  return os.str();
}

}  // namespace statsym::ir
