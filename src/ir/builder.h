// Fluent construction API for mini-IR modules.
//
// The four target applications (src/apps/) are written against this builder.
// Calls are recorded by callee name and resolved to function ids when the
// module is finalised, so functions can be emitted in any order (including
// mutual recursion). build() runs the verifier and throws on malformed IR,
// so a Module obtained from a builder is always well-formed.
#pragma once

#include <deque>
#include <initializer_list>
#include <string>
#include <vector>

#include "ir/module.h"

namespace statsym::ir {

class ModuleBuilder;

// Builds one function. Obtained from ModuleBuilder::func(); stays valid until
// the ModuleBuilder is destroyed or built.
class FunctionBuilder {
 public:
  // --- registers and blocks -------------------------------------------
  Reg param(std::int32_t i) const;  // register holding the i-th parameter
  Reg reg();                        // fresh register
  BlockId block();                  // new (empty) basic block
  void at(BlockId b);               // set insertion point
  BlockId current_block() const { return cur_; }

  // --- values -----------------------------------------------------------
  Reg ci(std::int64_t v);                       // integer constant
  void assign(Reg dst, Reg src);                // dst = src
  Reg bin(BinOp op, Reg a, Reg b);
  Reg bini(BinOp op, Reg a, std::int64_t b);    // rhs constant convenience
  Reg add(Reg a, Reg b) { return bin(BinOp::kAdd, a, b); }
  Reg addi(Reg a, std::int64_t b) { return bini(BinOp::kAdd, a, b); }
  Reg sub(Reg a, Reg b) { return bin(BinOp::kSub, a, b); }
  Reg mul(Reg a, Reg b) { return bin(BinOp::kMul, a, b); }
  Reg eq(Reg a, Reg b) { return bin(BinOp::kEq, a, b); }
  Reg eqi(Reg a, std::int64_t b) { return bini(BinOp::kEq, a, b); }
  Reg ne(Reg a, Reg b) { return bin(BinOp::kNe, a, b); }
  Reg nei(Reg a, std::int64_t b) { return bini(BinOp::kNe, a, b); }
  Reg lt(Reg a, Reg b) { return bin(BinOp::kLt, a, b); }
  Reg lti(Reg a, std::int64_t b) { return bini(BinOp::kLt, a, b); }
  Reg le(Reg a, Reg b) { return bin(BinOp::kLe, a, b); }
  Reg lei(Reg a, std::int64_t b) { return bini(BinOp::kLe, a, b); }
  Reg gt(Reg a, Reg b) { return bin(BinOp::kGt, a, b); }
  Reg gti(Reg a, std::int64_t b) { return bini(BinOp::kGt, a, b); }
  Reg ge(Reg a, Reg b) { return bin(BinOp::kGe, a, b); }
  Reg gei(Reg a, std::int64_t b) { return bini(BinOp::kGe, a, b); }
  Reg land(Reg a, Reg b) { return bin(BinOp::kLAnd, a, b); }
  Reg lor(Reg a, Reg b) { return bin(BinOp::kLOr, a, b); }
  Reg not_(Reg a);
  Reg neg(Reg a);

  // --- memory -----------------------------------------------------------
  Reg alloca_buf(std::int64_t size);
  Reg str_const(const std::string& s);
  Reg load(Reg ref, Reg idx);
  void store(Reg ref, Reg idx, Reg val);
  Reg buf_size(Reg ref);

  // --- globals ------------------------------------------------------------
  Reg load_global(const std::string& name);
  void store_global(const std::string& name, Reg val);

  // --- control flow ------------------------------------------------------
  void jmp(BlockId b);
  void br(Reg cond, BlockId then_b, BlockId else_b);
  void ret();
  void ret(Reg v);

  // --- calls --------------------------------------------------------------
  Reg call(const std::string& callee, std::vector<Reg> args);
  void call_void(const std::string& callee, std::vector<Reg> args);
  Reg call_ext(const std::string& name, std::vector<Reg> args);
  void call_ext_void(const std::string& name, std::vector<Reg> args);

  // --- inputs & symbolic markers ------------------------------------------
  Reg argc();
  Reg arg(Reg idx);
  Reg env(const std::string& name);
  void make_sym_int(Reg r, const std::string& name, std::int64_t lo,
                    std::int64_t hi);
  void make_sym_buf(Reg ref, const std::string& name);

  // --- checks ---------------------------------------------------------------
  void assert_true(Reg cond);
  void print(const std::string& tag);

 private:
  friend class ModuleBuilder;
  FunctionBuilder(ModuleBuilder* mb, Function* fn);
  Instr& emit(Instr in);

  ModuleBuilder* mb_;
  Function* fn_;
  BlockId cur_{0};
};

class ModuleBuilder {
 public:
  explicit ModuleBuilder(std::string program_name);

  void global_int(const std::string& name, std::int64_t init);
  void global_buf(const std::string& name, std::int64_t size);

  // Starts a new function with the given parameter names.
  FunctionBuilder func(const std::string& name,
                       std::vector<std::string> param_names);

  // Finalises: resolves call targets by name and verifies; throws
  // std::invalid_argument describing the first problem found.
  Module build();

 private:
  friend class FunctionBuilder;
  std::string name_;
  std::deque<Function> funcs_;  // deque: stable addresses for FunctionBuilder
  std::vector<Global> globals_;
};

}  // namespace statsym::ir
