#include "ir/builder.h"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "ir/verifier.h"

namespace statsym::ir {

FunctionBuilder::FunctionBuilder(ModuleBuilder* mb, Function* fn)
    : mb_(mb), fn_(fn) {
  fn_->blocks.emplace_back();  // entry block 0
  cur_ = 0;
}

Reg FunctionBuilder::param(std::int32_t i) const {
  assert(i >= 0 && i < fn_->num_params);
  return i;
}

Reg FunctionBuilder::reg() { return fn_->num_regs++; }

BlockId FunctionBuilder::block() {
  fn_->blocks.emplace_back();
  return static_cast<BlockId>(fn_->blocks.size() - 1);
}

void FunctionBuilder::at(BlockId b) {
  assert(b >= 0 && b < static_cast<BlockId>(fn_->blocks.size()));
  cur_ = b;
}

Instr& FunctionBuilder::emit(Instr in) {
  auto& blk = fn_->blocks[cur_];
  blk.instrs.push_back(std::move(in));
  return blk.instrs.back();
}

Reg FunctionBuilder::ci(std::int64_t v) {
  const Reg d = reg();
  emit({.op = Opcode::kConst, .dst = d, .imm = v});
  return d;
}

void FunctionBuilder::assign(Reg dst, Reg src) {
  emit({.op = Opcode::kMove, .dst = dst, .a = src});
}

Reg FunctionBuilder::bin(BinOp op, Reg a, Reg b) {
  const Reg d = reg();
  emit({.op = Opcode::kBin, .dst = d, .a = a, .b = b, .bin = op});
  return d;
}

Reg FunctionBuilder::bini(BinOp op, Reg a, std::int64_t b) {
  return bin(op, a, ci(b));
}

Reg FunctionBuilder::not_(Reg a) {
  const Reg d = reg();
  emit({.op = Opcode::kNot, .dst = d, .a = a});
  return d;
}

Reg FunctionBuilder::neg(Reg a) {
  const Reg d = reg();
  emit({.op = Opcode::kNeg, .dst = d, .a = a});
  return d;
}

Reg FunctionBuilder::alloca_buf(std::int64_t size) {
  assert(size > 0);
  const Reg d = reg();
  emit({.op = Opcode::kAlloca, .dst = d, .imm = size});
  return d;
}

Reg FunctionBuilder::str_const(const std::string& s) {
  const Reg d = reg();
  emit({.op = Opcode::kStrConst, .dst = d, .str = s});
  return d;
}

Reg FunctionBuilder::load(Reg ref, Reg idx) {
  const Reg d = reg();
  emit({.op = Opcode::kLoad, .dst = d, .a = ref, .b = idx});
  return d;
}

void FunctionBuilder::store(Reg ref, Reg idx, Reg val) {
  emit({.op = Opcode::kStore, .a = ref, .b = idx, .c = val});
}

Reg FunctionBuilder::buf_size(Reg ref) {
  const Reg d = reg();
  emit({.op = Opcode::kBufSize, .dst = d, .a = ref});
  return d;
}

Reg FunctionBuilder::load_global(const std::string& name) {
  const Reg d = reg();
  emit({.op = Opcode::kLoadG, .dst = d, .str = name});
  return d;
}

void FunctionBuilder::store_global(const std::string& name, Reg val) {
  emit({.op = Opcode::kStoreG, .a = val, .str = name});
}

void FunctionBuilder::jmp(BlockId b) { emit({.op = Opcode::kJmp, .t0 = b}); }

void FunctionBuilder::br(Reg cond, BlockId then_b, BlockId else_b) {
  emit({.op = Opcode::kBr, .a = cond, .t0 = then_b, .t1 = else_b});
}

void FunctionBuilder::ret() { emit({.op = Opcode::kRet}); }

void FunctionBuilder::ret(Reg v) { emit({.op = Opcode::kRet, .a = v}); }

Reg FunctionBuilder::call(const std::string& callee, std::vector<Reg> args) {
  const Reg d = reg();
  Instr in{.op = Opcode::kCall, .dst = d, .str = callee};
  in.args = std::move(args);
  emit(std::move(in));
  return d;
}

void FunctionBuilder::call_void(const std::string& callee,
                                std::vector<Reg> args) {
  Instr in{.op = Opcode::kCall, .str = callee};
  in.args = std::move(args);
  emit(std::move(in));
}

Reg FunctionBuilder::call_ext(const std::string& name, std::vector<Reg> args) {
  const Reg d = reg();
  Instr in{.op = Opcode::kCallExt, .dst = d, .str = name};
  in.args = std::move(args);
  emit(std::move(in));
  return d;
}

void FunctionBuilder::call_ext_void(const std::string& name,
                                    std::vector<Reg> args) {
  Instr in{.op = Opcode::kCallExt, .str = name};
  in.args = std::move(args);
  emit(std::move(in));
}

Reg FunctionBuilder::argc() {
  const Reg d = reg();
  emit({.op = Opcode::kArgc, .dst = d});
  return d;
}

Reg FunctionBuilder::arg(Reg idx) {
  const Reg d = reg();
  emit({.op = Opcode::kArg, .dst = d, .a = idx});
  return d;
}

Reg FunctionBuilder::env(const std::string& name) {
  const Reg d = reg();
  emit({.op = Opcode::kEnv, .dst = d, .str = name});
  return d;
}

void FunctionBuilder::make_sym_int(Reg r, const std::string& name,
                                   std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  emit({.op = Opcode::kMakeSymInt, .dst = r, .imm = lo, .imm2 = hi,
        .str = name});
}

void FunctionBuilder::make_sym_buf(Reg ref, const std::string& name) {
  emit({.op = Opcode::kMakeSymBuf, .a = ref, .str = name});
}

void FunctionBuilder::assert_true(Reg cond) {
  emit({.op = Opcode::kAssert, .a = cond});
}

void FunctionBuilder::print(const std::string& tag) {
  emit({.op = Opcode::kPrint, .str = tag});
}

ModuleBuilder::ModuleBuilder(std::string program_name)
    : name_(std::move(program_name)) {}

void ModuleBuilder::global_int(const std::string& name, std::int64_t init) {
  globals_.push_back(
      {.name = name, .kind = Global::Kind::kInt, .init_int = init});
}

void ModuleBuilder::global_buf(const std::string& name, std::int64_t size) {
  assert(size > 0);
  globals_.push_back(
      {.name = name, .kind = Global::Kind::kBuf, .buf_size = size});
}

FunctionBuilder ModuleBuilder::func(const std::string& name,
                                    std::vector<std::string> param_names) {
  Function fn;
  fn.name = name;
  fn.num_params = static_cast<std::int32_t>(param_names.size());
  fn.num_regs = fn.num_params;
  fn.param_names = std::move(param_names);
  funcs_.push_back(std::move(fn));
  return FunctionBuilder(this, &funcs_.back());
}

Module ModuleBuilder::build() {
  Module m;
  m.set_name(name_);
  for (auto& g : globals_) m.add_global(g);
  for (auto& f : funcs_) m.add_function(std::move(f));
  funcs_.clear();
  // Resolve call targets by name into imm.
  for (FuncId id = 0; id < static_cast<FuncId>(m.functions().size()); ++id) {
    auto& fn = m.function(id);
    for (auto& blk : fn.blocks) {
      for (auto& in : blk.instrs) {
        if (in.op != Opcode::kCall) continue;
        const FuncId callee = m.find_function(in.str);
        if (callee == kNoFunc) {
          throw std::invalid_argument("call to unknown function '" + in.str +
                                      "' in " + fn.name);
        }
        in.imm = callee;
      }
    }
  }
  if (auto err = verify(m); !err.empty()) {
    throw std::invalid_argument("IR verification failed: " + err);
  }
  return m;
}

}  // namespace statsym::ir
