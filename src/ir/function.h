// Functions and basic blocks of the mini-IR.
#pragma once

#include <string>
#include <vector>

#include "ir/instr.h"

namespace statsym::ir {

// A straight-line instruction sequence terminated by exactly one terminator
// (verified by ir::verify).
struct Block {
  std::vector<Instr> instrs;
};

// A function. Parameters occupy registers [0, num_params); register values
// are mutable (the IR is not SSA). Block 0 is the entry block.
struct Function {
  std::string name;
  std::vector<std::string> param_names;  // size == num_params
  std::int32_t num_params{0};
  std::int32_t num_regs{0};
  std::vector<Block> blocks;

  std::size_t instr_count() const {
    std::size_t n = 0;
    for (const auto& b : blocks) n += b.instrs.size();
    return n;
  }
};

}  // namespace statsym::ir
