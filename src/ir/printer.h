// Human-readable dump of mini-IR (for debugging and golden tests).
#pragma once

#include <string>

#include "ir/module.h"

namespace statsym::ir {

std::string to_string(const Instr& in, const Module* m = nullptr);
std::string to_string(const Function& fn, const Module* m = nullptr);
std::string to_string(const Module& m);

}  // namespace statsym::ir
