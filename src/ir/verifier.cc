#include "ir/verifier.h"

#include <sstream>

namespace statsym::ir {
namespace {

// Accumulates the location prefix for error messages.
std::string where(const Function& fn, std::size_t blk, std::size_t idx) {
  std::ostringstream os;
  os << fn.name << " block " << blk << " instr " << idx << ": ";
  return os.str();
}

bool needs_dst(Opcode op) {
  switch (op) {
    case Opcode::kConst:
    case Opcode::kMove:
    case Opcode::kBin:
    case Opcode::kNot:
    case Opcode::kNeg:
    case Opcode::kAlloca:
    case Opcode::kStrConst:
    case Opcode::kLoad:
    case Opcode::kBufSize:
    case Opcode::kLoadG:
    case Opcode::kArgc:
    case Opcode::kArg:
    case Opcode::kEnv:
    case Opcode::kMakeSymInt:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string verify(const Module& m) {
  if (m.entry() == kNoFunc) return "no main function";

  for (const auto& fn : m.functions()) {
    if (fn.num_params > fn.num_regs) {
      return fn.name + ": fewer registers than parameters";
    }
    if (fn.blocks.empty()) return fn.name + ": no blocks";
    const auto nblocks = static_cast<BlockId>(fn.blocks.size());

    for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
      const auto& blk = fn.blocks[bi];
      if (blk.instrs.empty()) {
        return fn.name + " block " + std::to_string(bi) + ": empty block";
      }
      for (std::size_t ii = 0; ii < blk.instrs.size(); ++ii) {
        const Instr& in = blk.instrs[ii];
        const bool last = (ii + 1 == blk.instrs.size());
        if (in.is_terminator() != last) {
          return where(fn, bi, ii) +
                 (last ? "block does not end with a terminator"
                       : "terminator in the middle of a block");
        }

        auto check_reg = [&](Reg r, const char* what) -> std::string {
          if (r < 0 || r >= fn.num_regs) {
            return where(fn, bi, ii) + "bad " + what + " register " +
                   std::to_string(r) + " (" + opcode_name(in.op) + ")";
          }
          return "";
        };

        if (needs_dst(in.op)) {
          if (auto e = check_reg(in.dst, "dst"); !e.empty()) return e;
        }

        // Operand requirements per opcode.
        switch (in.op) {
          case Opcode::kMove:
          case Opcode::kNot:
          case Opcode::kNeg:
          case Opcode::kBufSize:
          case Opcode::kArg:
            if (auto e = check_reg(in.a, "src"); !e.empty()) return e;
            break;
          case Opcode::kBin:
          case Opcode::kLoad:
            if (auto e = check_reg(in.a, "lhs"); !e.empty()) return e;
            if (auto e = check_reg(in.b, "rhs"); !e.empty()) return e;
            break;
          case Opcode::kStore:
            if (auto e = check_reg(in.a, "ref"); !e.empty()) return e;
            if (auto e = check_reg(in.b, "idx"); !e.empty()) return e;
            if (auto e = check_reg(in.c, "val"); !e.empty()) return e;
            break;
          case Opcode::kStoreG:
          case Opcode::kAssert:
          case Opcode::kMakeSymBuf:
            if (auto e = check_reg(in.a, "src"); !e.empty()) return e;
            break;
          case Opcode::kLoadG:
            break;  // global name checked below for both kLoadG and kStoreG
          case Opcode::kBr:
            if (auto e = check_reg(in.a, "cond"); !e.empty()) return e;
            if (in.t0 < 0 || in.t0 >= nblocks || in.t1 < 0 || in.t1 >= nblocks)
              return where(fn, bi, ii) + "branch target out of range";
            break;
          case Opcode::kJmp:
            if (in.t0 < 0 || in.t0 >= nblocks)
              return where(fn, bi, ii) + "jump target out of range";
            break;
          case Opcode::kRet:
            if (in.a != kNoReg) {
              if (auto e = check_reg(in.a, "ret"); !e.empty()) return e;
            }
            break;
          case Opcode::kCall: {
            if (in.imm < 0 ||
                in.imm >= static_cast<std::int64_t>(m.functions().size())) {
              return where(fn, bi, ii) + "unresolved call target";
            }
            const auto& callee = m.function(static_cast<FuncId>(in.imm));
            if (static_cast<std::int32_t>(in.args.size()) !=
                callee.num_params) {
              return where(fn, bi, ii) + "call to " + callee.name +
                     ": arity mismatch";
            }
            for (Reg r : in.args) {
              if (auto e = check_reg(r, "arg"); !e.empty()) return e;
            }
            break;
          }
          case Opcode::kCallExt:
            for (Reg r : in.args) {
              if (auto e = check_reg(r, "arg"); !e.empty()) return e;
            }
            break;
          case Opcode::kMakeSymInt:
            if (in.imm > in.imm2) {
              return where(fn, bi, ii) + "empty symbolic domain";
            }
            break;
          case Opcode::kAlloca:
            if (in.imm <= 0) return where(fn, bi, ii) + "non-positive alloca";
            break;
          default:
            break;
        }

        if ((in.op == Opcode::kLoadG || in.op == Opcode::kStoreG) &&
            m.find_global(in.str) < 0) {
          return where(fn, bi, ii) + "unknown global '" + in.str + "'";
        }
      }
    }
  }
  // main must take no parameters: program inputs flow through
  // argc/arg/env/make_symbolic, not the entry function's signature.
  const auto& main_fn = m.function(m.entry());
  if (main_fn.num_params != 0) return "main must take no parameters";
  return "";
}

}  // namespace statsym::ir
