#include "ir/verifier.h"

#include <sstream>

namespace statsym::ir {
namespace {

// Accumulates the location prefix for error messages.
std::string where(const Function& fn, std::size_t blk, std::size_t idx) {
  std::ostringstream os;
  os << fn.name << " block " << blk << " instr " << idx << ": ";
  return os.str();
}

bool needs_dst(Opcode op) {
  switch (op) {
    case Opcode::kConst:
    case Opcode::kMove:
    case Opcode::kBin:
    case Opcode::kNot:
    case Opcode::kNeg:
    case Opcode::kAlloca:
    case Opcode::kStrConst:
    case Opcode::kLoad:
    case Opcode::kBufSize:
    case Opcode::kLoadG:
    case Opcode::kArgc:
    case Opcode::kArg:
    case Opcode::kEnv:
    case Opcode::kMakeSymInt:
      return true;
    default:
      return false;
  }
}

// The register an instruction writes, or kNoReg. kCall/kCallExt may discard
// their result (dst == kNoReg).
Reg def_reg(const Instr& in) {
  if (needs_dst(in.op) || in.op == Opcode::kCall || in.op == Opcode::kCallExt) {
    return in.dst;
  }
  return kNoReg;
}

// Appends the registers an instruction reads.
void use_regs(const Instr& in, std::vector<Reg>& out) {
  switch (in.op) {
    case Opcode::kMove:
    case Opcode::kNot:
    case Opcode::kNeg:
    case Opcode::kBufSize:
    case Opcode::kArg:
    case Opcode::kStoreG:
    case Opcode::kAssert:
    case Opcode::kMakeSymBuf:
    case Opcode::kBr:
      out.push_back(in.a);
      break;
    case Opcode::kBin:
    case Opcode::kLoad:
      out.push_back(in.a);
      out.push_back(in.b);
      break;
    case Opcode::kStore:
      out.push_back(in.a);
      out.push_back(in.b);
      out.push_back(in.c);
      break;
    case Opcode::kRet:
      if (in.a != kNoReg) out.push_back(in.a);
      break;
    case Opcode::kCall:
    case Opcode::kCallExt:
      for (Reg r : in.args) out.push_back(r);
      break;
    default:
      break;
  }
}

// Reachability + may-reaching-defs over one structurally-valid function.
// Returns the first violation: an unreachable block, or a register read
// that no entry path defines first.
std::string verify_dataflow(const Function& fn) {
  const std::size_t nblocks = fn.blocks.size();

  std::vector<bool> reach(nblocks, false);
  std::vector<BlockId> work{0};
  reach[0] = true;
  while (!work.empty()) {
    const BlockId b = work.back();
    work.pop_back();
    const Instr& t = fn.blocks[static_cast<std::size_t>(b)].instrs.back();
    const BlockId succs[2] = {
        t.op == Opcode::kJmp || t.op == Opcode::kBr ? t.t0 : kNoBlock,
        t.op == Opcode::kBr ? t.t1 : kNoBlock};
    for (const BlockId s : succs) {
      if (s != kNoBlock && !reach[static_cast<std::size_t>(s)]) {
        reach[static_cast<std::size_t>(s)] = true;
        work.push_back(s);
      }
    }
  }
  for (std::size_t bi = 0; bi < nblocks; ++bi) {
    if (!reach[bi]) {
      return fn.name + " block " + std::to_string(bi) +
             ": unreachable from entry";
    }
  }

  // Forward union (may) dataflow: defined-at-entry[b] = ∪ defined-at-exit of
  // predecessors; parameters seed the entry block. Monotone, so the loop
  // terminates in O(blocks²) set unions at worst.
  const auto nregs = static_cast<std::size_t>(fn.num_regs);
  std::vector<std::vector<bool>> in_def(nblocks,
                                        std::vector<bool>(nregs, false));
  for (std::int32_t p = 0; p < fn.num_params; ++p) {
    in_def[0][static_cast<std::size_t>(p)] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t bi = 0; bi < nblocks; ++bi) {
      std::vector<bool> out = in_def[bi];
      for (const Instr& in : fn.blocks[bi].instrs) {
        const Reg d = def_reg(in);
        if (d != kNoReg) out[static_cast<std::size_t>(d)] = true;
      }
      const Instr& t = fn.blocks[bi].instrs.back();
      const BlockId succs[2] = {
          t.op == Opcode::kJmp || t.op == Opcode::kBr ? t.t0 : kNoBlock,
          t.op == Opcode::kBr ? t.t1 : kNoBlock};
      for (const BlockId s : succs) {
        if (s == kNoBlock) continue;
        std::vector<bool>& dst = in_def[static_cast<std::size_t>(s)];
        for (std::size_t r = 0; r < nregs; ++r) {
          if (out[r] && !dst[r]) {
            dst[r] = true;
            changed = true;
          }
        }
      }
    }
  }

  std::vector<Reg> uses;
  for (std::size_t bi = 0; bi < nblocks; ++bi) {
    std::vector<bool> defined = in_def[bi];
    for (std::size_t ii = 0; ii < fn.blocks[bi].instrs.size(); ++ii) {
      const Instr& in = fn.blocks[bi].instrs[ii];
      uses.clear();
      use_regs(in, uses);
      for (const Reg r : uses) {
        if (!defined[static_cast<std::size_t>(r)]) {
          return where(fn, bi, ii) + "use of r" + std::to_string(r) +
                 " which no path from entry defines (" + opcode_name(in.op) +
                 ")";
        }
      }
      const Reg d = def_reg(in);
      if (d != kNoReg) defined[static_cast<std::size_t>(d)] = true;
    }
  }
  return "";
}

}  // namespace

std::string verify(const Module& m) {
  if (m.entry() == kNoFunc) return "no main function";

  for (const auto& fn : m.functions()) {
    if (fn.num_params > fn.num_regs) {
      return fn.name + ": fewer registers than parameters";
    }
    if (fn.blocks.empty()) return fn.name + ": no blocks";
    const auto nblocks = static_cast<BlockId>(fn.blocks.size());

    for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
      const auto& blk = fn.blocks[bi];
      if (blk.instrs.empty()) {
        return fn.name + " block " + std::to_string(bi) + ": empty block";
      }
      for (std::size_t ii = 0; ii < blk.instrs.size(); ++ii) {
        const Instr& in = blk.instrs[ii];
        const bool last = (ii + 1 == blk.instrs.size());
        if (in.is_terminator() != last) {
          return where(fn, bi, ii) +
                 (last ? "block does not end with a terminator"
                       : "terminator in the middle of a block");
        }

        auto check_reg = [&](Reg r, const char* what) -> std::string {
          if (r < 0 || r >= fn.num_regs) {
            return where(fn, bi, ii) + "bad " + what + " register " +
                   std::to_string(r) + " (" + opcode_name(in.op) + ")";
          }
          return "";
        };

        if (needs_dst(in.op)) {
          if (auto e = check_reg(in.dst, "dst"); !e.empty()) return e;
        }

        // Operand requirements per opcode.
        switch (in.op) {
          case Opcode::kMove:
          case Opcode::kNot:
          case Opcode::kNeg:
          case Opcode::kBufSize:
          case Opcode::kArg:
            if (auto e = check_reg(in.a, "src"); !e.empty()) return e;
            break;
          case Opcode::kBin:
          case Opcode::kLoad:
            if (auto e = check_reg(in.a, "lhs"); !e.empty()) return e;
            if (auto e = check_reg(in.b, "rhs"); !e.empty()) return e;
            break;
          case Opcode::kStore:
            if (auto e = check_reg(in.a, "ref"); !e.empty()) return e;
            if (auto e = check_reg(in.b, "idx"); !e.empty()) return e;
            if (auto e = check_reg(in.c, "val"); !e.empty()) return e;
            break;
          case Opcode::kStoreG:
          case Opcode::kAssert:
          case Opcode::kMakeSymBuf:
            if (auto e = check_reg(in.a, "src"); !e.empty()) return e;
            break;
          case Opcode::kLoadG:
            break;  // global name checked below for both kLoadG and kStoreG
          case Opcode::kBr:
            if (auto e = check_reg(in.a, "cond"); !e.empty()) return e;
            if (in.t0 < 0 || in.t0 >= nblocks || in.t1 < 0 || in.t1 >= nblocks)
              return where(fn, bi, ii) + "branch target out of range";
            break;
          case Opcode::kJmp:
            if (in.t0 < 0 || in.t0 >= nblocks)
              return where(fn, bi, ii) + "jump target out of range";
            break;
          case Opcode::kRet:
            if (in.a != kNoReg) {
              if (auto e = check_reg(in.a, "ret"); !e.empty()) return e;
            }
            break;
          case Opcode::kCall: {
            if (in.imm < 0 ||
                in.imm >= static_cast<std::int64_t>(m.functions().size())) {
              return where(fn, bi, ii) + "unresolved call target";
            }
            const auto& callee = m.function(static_cast<FuncId>(in.imm));
            if (static_cast<std::int32_t>(in.args.size()) !=
                callee.num_params) {
              return where(fn, bi, ii) + "call to " + callee.name +
                     ": arity mismatch";
            }
            for (Reg r : in.args) {
              if (auto e = check_reg(r, "arg"); !e.empty()) return e;
            }
            break;
          }
          case Opcode::kCallExt:
            for (Reg r : in.args) {
              if (auto e = check_reg(r, "arg"); !e.empty()) return e;
            }
            break;
          case Opcode::kMakeSymInt:
            if (in.imm > in.imm2) {
              return where(fn, bi, ii) + "empty symbolic domain";
            }
            break;
          case Opcode::kAlloca:
            if (in.imm <= 0) return where(fn, bi, ii) + "non-positive alloca";
            break;
          default:
            break;
        }

        if ((in.op == Opcode::kLoadG || in.op == Opcode::kStoreG) &&
            m.find_global(in.str) < 0) {
          return where(fn, bi, ii) + "unknown global '" + in.str + "'";
        }
      }
    }

    // The structural pass above guarantees every register index is in range
    // and every block ends in exactly one terminator, which is what the
    // flow-sensitive pass assumes.
    if (auto e = verify_dataflow(fn); !e.empty()) return e;
  }
  // main must take no parameters: program inputs flow through
  // argc/arg/env/make_symbolic, not the entry function's signature.
  const auto& main_fn = m.function(m.entry());
  if (main_fn.num_params != 0) return "main must take no parameters";
  return "";
}

}  // namespace statsym::ir
