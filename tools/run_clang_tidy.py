#!/usr/bin/env python3
"""Baseline-gated clang-tidy runner (CI job `clang-tidy`).

Runs clang-tidy (config in .clang-tidy) over every first-party source file
under src/ using the compile database of an existing build directory, then
compares the findings against the committed suppression baseline
tools/clang_tidy_baseline.txt.

Findings are normalised to `<relative-file>:<check-name>` pairs before the
comparison, so line drift from unrelated edits never invalidates the
baseline; a pair only appears when a file genuinely gains a new class of
finding. The gate fails (exit 1) on any pair absent from the baseline and
reports baseline entries that no longer fire so they can be pruned.

Usage:
  tools/run_clang_tidy.py --build build            # gate against baseline
  tools/run_clang_tidy.py --build build --update-baseline
"""

import argparse
import concurrent.futures
import os
import re
import shutil
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO, "tools", "clang_tidy_baseline.txt")
LINT_DIRS = ["src"]

# warning line: /abs/path/file.cc:12:3: warning: ... [check-name]
WARNING_RE = re.compile(r"^(/[^:]+):\d+:\d+: warning: .* \[([\w.,-]+)\]$")


def find_clang_tidy(explicit):
    if explicit:
        return explicit
    for name in ("clang-tidy", "clang-tidy-18", "clang-tidy-17",
                 "clang-tidy-16", "clang-tidy-15", "clang-tidy-14"):
        path = shutil.which(name)
        if path:
            return path
    return None


def source_files():
    files = []
    for d in LINT_DIRS:
        for root, _, names in os.walk(os.path.join(REPO, d)):
            for n in sorted(names):
                if n.endswith(".cc"):
                    files.append(os.path.join(root, n))
    return sorted(files)


def run_one(clang_tidy, build_dir, path):
    proc = subprocess.run(
        [clang_tidy, "-p", build_dir, "--quiet", path],
        capture_output=True, text=True, cwd=REPO)
    pairs = set()
    for line in proc.stdout.splitlines():
        m = WARNING_RE.match(line.strip())
        if not m:
            continue
        abspath, checks = m.group(1), m.group(2)
        rel = os.path.relpath(abspath, REPO)
        if rel.startswith(".."):  # system/third-party header
            continue
        for check in checks.split(","):
            pairs.add((rel, check))
    return pairs, proc.stdout


def load_baseline():
    pairs = set()
    if not os.path.exists(BASELINE):
        return pairs
    with open(BASELINE, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            rel, _, check = line.partition(":")
            pairs.add((rel, check))
    return pairs


def write_baseline(pairs):
    with open(BASELINE, "w", encoding="utf-8") as f:
        f.write("# clang-tidy suppression baseline — one `file:check` pair "
                "per line.\n")
        f.write("# Regenerate with: tools/run_clang_tidy.py --build <dir> "
                "--update-baseline\n")
        f.write("# New code must be clean; entries here are pre-existing "
                "findings to burn down.\n")
        for rel, check in sorted(pairs):
            f.write(f"{rel}:{check}\n")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build", required=True,
                    help="build dir containing compile_commands.json")
    ap.add_argument("--clang-tidy", default=None)
    ap.add_argument("--update-baseline", action="store_true")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 4)
    args = ap.parse_args()

    clang_tidy = find_clang_tidy(args.clang_tidy)
    if not clang_tidy:
        print("error: clang-tidy not found on PATH", file=sys.stderr)
        return 2
    build_dir = os.path.abspath(args.build)
    if not os.path.exists(os.path.join(build_dir, "compile_commands.json")):
        print(f"error: {build_dir}/compile_commands.json missing "
              "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)",
              file=sys.stderr)
        return 2

    files = source_files()
    print(f"linting {len(files)} files with {clang_tidy}")
    found = set()
    raw_by_file = {}
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = {pool.submit(run_one, clang_tidy, build_dir, f): f
                   for f in files}
        for fut in concurrent.futures.as_completed(futures):
            pairs, raw = fut.result()
            found |= pairs
            if pairs:
                raw_by_file[futures[fut]] = raw

    if args.update_baseline:
        write_baseline(found)
        print(f"wrote {len(found)} entries to {BASELINE}")
        return 0

    baseline = load_baseline()
    new = sorted(found - baseline)
    stale = sorted(baseline - found)
    if stale:
        print(f"note: {len(stale)} baseline entries no longer fire "
              "(prune with --update-baseline):")
        for rel, check in stale:
            print(f"  {rel}:{check}")
    if new:
        print(f"FAIL: {len(new)} finding(s) not in the baseline:")
        for rel, check in new:
            print(f"  {rel}:{check}")
        print("\nfull clang-tidy output for affected files:")
        for path in sorted(raw_by_file):
            rel = os.path.relpath(path, REPO)
            if any(r == rel for r, _ in new):
                print(raw_by_file[path])
        return 1
    print(f"clang-tidy gate green ({len(found)} baselined finding(s), "
          "0 new)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
