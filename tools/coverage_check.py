#!/usr/bin/env python3
"""Line-coverage gate for the analysis core (src/monitor + src/stats +
src/statsym + src/obs + src/concolic + src/analysis).

Aggregates gcov JSON output from a --coverage build and fails when line
coverage of the watched directories drops below the committed floor. The
floor is the merge-time value of the coverage job (see .github/workflows):
raise it when coverage improves, never lower it to make a PR pass.

Usage:
  tools/coverage_check.py --build-dir build-cov \
      [--watch src/monitor --watch src/stats --watch src/statsym \
       --watch src/obs --watch src/concolic --watch src/analysis] \
      [--min-percent 90.0] [--summary-out coverage-summary.txt]

Requires only `gcov` (matching the compiler that produced the .gcda files)
and the Python standard library.
"""

import argparse
import json
import os
import subprocess
import sys


def find_gcda(build_dir):
    out = []
    for root, _dirs, files in os.walk(build_dir):
        out.extend(os.path.join(root, f) for f in files if f.endswith(".gcda"))
    return sorted(out)


def run_gcov(gcov, gcda_files, build_dir):
    """Yields gcov JSON reports, one per translation unit."""
    for gcda in gcda_files:
        # --stdout --json-format prints one JSON document per data file;
        # running from the object directory keeps gcov's path resolution
        # happy with CMake's layout.
        proc = subprocess.run(
            [gcov, "--stdout", "--json-format", os.path.basename(gcda)],
            cwd=os.path.dirname(gcda),
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            check=False,
        )
        if proc.returncode != 0 or not proc.stdout:
            continue
        for line in proc.stdout.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue


def relpath_of(source, repo_root):
    path = os.path.normpath(os.path.join(repo_root, source)
                            if not os.path.isabs(source) else source)
    try:
        return os.path.relpath(path, repo_root)
    except ValueError:
        return source


def collect(reports, repo_root, watch_prefixes):
    """file -> {line_no: max_hits} over all translation units."""
    files = {}
    for report in reports:
        cwd = report.get("current_working_directory", "")
        for f in report.get("files", []):
            source = f.get("file", "")
            if not os.path.isabs(source) and cwd:
                source = os.path.join(cwd, source)
            rel = relpath_of(source, repo_root)
            if not any(rel.startswith(p.rstrip("/") + "/") or rel == p
                       for p in watch_prefixes):
                continue
            lines = files.setdefault(rel, {})
            for ln in f.get("lines", []):
                no = ln.get("line_number")
                if no is None:
                    continue
                lines[no] = max(lines.get(no, 0), ln.get("count", 0))
    return files


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", required=True)
    ap.add_argument("--repo-root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--watch", action="append", default=[],
                    help="repo-relative dir or file to gate (repeatable); "
                         "default src/stats + src/statsym + src/obs + "
                         "src/concolic + src/analysis + src/serve + "
                         "src/symexec/searcher.cc")
    ap.add_argument("--min-percent", type=float, default=None,
                    help="fail when total watched line coverage is below this")
    ap.add_argument("--gcov", default=os.environ.get("GCOV", "gcov"))
    ap.add_argument("--summary-out", default=None)
    args = ap.parse_args()
    # src/symexec is watched at file granularity: searcher.cc holds the
    # exploration-order policies (DFS tie-breaks, guided ordering) that the
    # parallel executor's determinism contract leans on, so its tests must
    # not silently rot; the interpreter-heavy rest of symexec is gated by
    # the golden traces instead.
    watch = args.watch or ["src/monitor", "src/stats", "src/statsym",
                           "src/obs", "src/concolic", "src/analysis",
                           "src/serve", "src/symexec/searcher.cc"]

    gcda = find_gcda(args.build_dir)
    if not gcda:
        print(f"error: no .gcda files under {args.build_dir} — "
              "build with --coverage and run the tests first",
              file=sys.stderr)
        return 2

    files = collect(run_gcov(args.gcov, gcda, args.build_dir),
                    args.repo_root, watch)
    if not files:
        print("error: no watched sources appeared in gcov output",
              file=sys.stderr)
        return 2

    rows = []
    total_lines = total_covered = 0
    for rel in sorted(files):
        lines = files[rel]
        covered = sum(1 for c in lines.values() if c > 0)
        total_lines += len(lines)
        total_covered += covered
        pct = 100.0 * covered / len(lines) if lines else 0.0
        rows.append(f"{pct:6.1f}%  {covered:5d}/{len(lines):<5d}  {rel}")
    total_pct = 100.0 * total_covered / total_lines

    summary = "\n".join(
        ["line coverage (watched: " + ", ".join(watch) + ")", *rows,
         f"{total_pct:6.1f}%  {total_covered:5d}/{total_lines:<5d}  TOTAL"])
    print(summary)
    if args.summary_out:
        with open(args.summary_out, "w") as fh:
            fh.write(summary + "\n")

    if args.min_percent is not None and total_pct < args.min_percent:
        print(f"\nFAIL: watched line coverage {total_pct:.1f}% is below the "
              f"floor {args.min_percent:.1f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
