// Quickstart: the full StatSym pipeline on the paper's Fig. 2a example.
//
//   1. run the program on random inputs under the sampling monitor,
//   2. construct and rank predicates from the logs,
//   3. build candidate vulnerable paths,
//   4. drive the symbolic executor along them,
//   5. compare against pure (unguided) symbolic execution.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "apps/registry.h"
#include "statsym/engine.h"
#include "statsym/report.h"

using namespace statsym;

int main() {
  apps::AppSpec app = apps::make_fig2();
  std::printf("== StatSym quickstart: %s ==\n", app.name.c_str());

  // --- Phase 1: sampled runtime logs (30%% sampling, 100+100 runs) -------
  core::EngineOptions opts;
  opts.monitor.sampling_rate = 0.3;
  opts.target_correct_logs = 100;
  opts.target_faulty_logs = 100;
  opts.exec.searcher = symexec::SearcherKind::kDFS;
  opts.exec.wake_suspended = false;  // iterate candidates instead
  opts.seed = 7;

  core::StatSymEngine engine(app.module, app.sym_spec, opts);
  engine.collect_logs(app.workload);
  std::printf("collected %zu logs\n", engine.logs().size());

  // --- Phases 2-3: statistics + guided symbolic execution ----------------
  core::EngineResult res = engine.run();

  std::printf("\nTop predicates:\n%s\n",
              core::format_predicates(app.module, res.predicates, 5).c_str());
  std::printf("%s\n", core::format_candidates(app.module, res.construction).c_str());

  if (res.found) {
    std::printf("%s", core::format_vuln(app.module, *res.vuln).c_str());
    std::printf("guided: %llu paths explored, %.3fs stat + %.3fs symexec\n",
                static_cast<unsigned long long>(res.paths_explored),
                res.stat_seconds, res.symexec_seconds);
  } else {
    std::printf("vulnerable path NOT found by StatSym\n");
  }

  // --- Baseline: pure symbolic execution ---------------------------------
  symexec::ExecOptions pure;
  pure.searcher = symexec::SearcherKind::kDFS;
  symexec::ExecResult pr = core::run_pure_symbolic(app.module, app.sym_spec, pure);
  std::printf("pure:   %s, %llu paths explored, %.3fs\n",
              symexec::termination_name(pr.termination),
              static_cast<unsigned long long>(pr.stats.paths_explored),
              pr.stats.seconds);

  return res.found ? 0 : 1;
}
