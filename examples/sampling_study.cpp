// sampling_study: the paper's sensitivity experiment (§VII-D, Fig. 10) as a
// runnable example — sweep the monitor's sampling rate and watch the
// trade-off between statistical-analysis time (grows with log volume) and
// symbolic-execution time (shrinks as inference sharpens).
//
// Run: ./build/examples/sampling_study [app]
#include <cstdio>
#include <string>

#include "apps/registry.h"
#include "statsym/engine.h"
#include "support/strings.h"
#include "support/table.h"

using namespace statsym;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "polymorph";
  apps::AppSpec app = apps::make_app(name);
  std::printf("== sampling sensitivity on %s ==\n", name.c_str());

  TextTable table({"sampling", "log KB", "stat s", "symexec s", "paths",
                   "found"});
  for (const double rate : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    core::EngineOptions opts;
    opts.monitor.sampling_rate = rate;
    opts.candidate_timeout_seconds = 120.0;
    opts.seed = 99;

    core::StatSymEngine engine(app.module, app.sym_spec, opts);
    engine.collect_logs(app.workload);
    core::EngineResult res = engine.run();
    table.add_row({std::to_string(static_cast<int>(rate * 100)) + "%",
                   std::to_string(res.log_bytes / 1024),
                   fmt_double(res.stat_seconds, 3),
                   fmt_double(res.symexec_seconds, 3),
                   std::to_string(res.paths_explored),
                   res.found ? "yes" : "NO"});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
