// server_audit: the thttpd case study (§VII-C2) end-to-end, with the
// pure-KLEE comparison that motivates the paper — guided execution finds
// CVE-2003-0899's defang() overflow while unguided exploration exhausts its
// memory budget first (the "Failed" rows of Table IV).
//
// Run: ./build/examples/server_audit
#include <cstdio>

#include "apps/registry.h"
#include "statsym/engine.h"
#include "statsym/report.h"

using namespace statsym;

int main() {
  apps::AppSpec app = apps::make_thttpd();
  std::printf("== auditing %s (defang buffer overflow, CVE-2003-0899) ==\n",
              app.name.c_str());

  core::EngineOptions opts;
  opts.monitor.sampling_rate = 0.3;
  opts.exec.max_memory_bytes = 256ull << 20;
  opts.candidate_timeout_seconds = 120.0;
  opts.seed = 2026;

  core::StatSymEngine engine(app.module, app.sym_spec, opts);
  engine.collect_logs(app.workload);
  core::EngineResult res = engine.run();

  std::printf("\nTop predicates (compare the paper's len(str) > 999.5):\n%s\n",
              core::format_predicates(app.module, res.predicates, 8).c_str());
  std::printf("Candidate paths: %zu (skeleton %zu nodes, %zu detours)\n",
              res.construction.candidates.size(), res.construction.skeleton.size(),
              res.construction.detours.size());

  if (!res.found) {
    std::printf("StatSym did not find the vulnerable path\n");
    return 1;
  }
  std::printf("\n%s", core::format_vuln(app.module, *res.vuln).c_str());
  std::printf("guided: candidate #%zu, %llu paths, %.2fs stat + %.2fs exec\n",
              res.winning_candidate,
              static_cast<unsigned long long>(res.paths_explored),
              res.stat_seconds, res.symexec_seconds);

  // Replay the generated request to confirm the crash.
  interp::Interpreter replay(app.module, res.vuln->input);
  const interp::RunResult rr = replay.run();
  std::printf("replay: %s\n",
              rr.outcome == interp::RunOutcome::kFault
                  ? ("CONFIRMED crash in " + rr.fault.function + "()").c_str()
                  : "no crash (unexpected)");

  // The pure baseline, bounded the way the paper's 12 GB server bounded
  // KLEE.
  symexec::ExecOptions pure;
  pure.searcher = symexec::SearcherKind::kRandomPath;
  pure.max_memory_bytes = 256ull << 20;
  pure.max_seconds = 120.0;
  symexec::ExecResult pr =
      core::run_pure_symbolic(app.module, app.sym_spec, pure);
  std::printf("pure:   %s after %llu paths (%.1fs, peak %zu states)\n",
              symexec::termination_name(pr.termination),
              static_cast<unsigned long long>(pr.stats.paths_explored),
              pr.stats.seconds, pr.stats.peak_live_states);

  return (res.found && rr.outcome == interp::RunOutcome::kFault) ? 0 : 1;
}
