// multibug_sweep: the paper's §III-C scenario — a program with more than
// one vulnerability. Faulty logs are clustered by their fault function and
// StatSym hunts the clusters one-by-one (StatSymEngine::run_all); while
// hunting one bug the executor passes through the other without stopping
// (ExecOptions::target_function).
//
// Run: ./build/examples/multibug_sweep
#include <cstdio>

#include "apps/registry.h"
#include "statsym/engine.h"
#include "statsym/report.h"

using namespace statsym;

int main() {
  apps::AppSpec app = apps::make_polymorph_multibug();
  std::printf("== multi-vulnerability sweep on %s ==\n", app.name.c_str());
  std::printf("bug 1: '-o <dir>' smashes the 64-byte outdir global "
              "(set_outdir)\n");
  std::printf("bug 2: '-f <name>' overflows the 512-byte stack buffer "
              "(convert_fileName)\n\n");

  core::EngineOptions opts;
  opts.monitor.sampling_rate = 0.3;
  opts.candidate_timeout_seconds = 60.0;
  opts.seed = 7;

  core::StatSymEngine engine(app.module, app.sym_spec, opts);
  engine.collect_logs(app.workload);

  std::size_t faulty = 0;
  for (const auto& log : engine.logs()) faulty += log.faulty ? 1 : 0;
  std::printf("collected %zu logs (%zu faulty, clustered by fault tag)\n\n",
              engine.logs().size(), faulty);

  const auto results = engine.run_all();
  std::printf("vulnerabilities found: %zu\n\n", results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& res = results[i];
    std::printf("-- #%zu --\n%s", i + 1,
                core::format_vuln(app.module, *res.vuln).c_str());

    interp::Interpreter replay(app.module, res.vuln->input);
    const auto rr = replay.run();
    std::printf("   replay: %s\n\n",
                rr.outcome == interp::RunOutcome::kFault
                    ? ("CONFIRMED in " + rr.fault.function + "()").c_str()
                    : "not reproduced");
  }
  return results.size() == 2 ? 0 : 1;
}
