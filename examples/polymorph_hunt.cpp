// polymorph_hunt: reproduces the paper's flagship case study (§VII-C1) —
// discovering the stack-buffer overflow in polymorph's convert_fileName()
// and generating a crashing input, then validating the input by replaying
// it on the concrete interpreter.
//
// Run: ./build/examples/polymorph_hunt [sampling_rate]
#include <cstdio>
#include <cstdlib>

#include "apps/registry.h"
#include "statsym/engine.h"
#include "statsym/report.h"

using namespace statsym;

int main(int argc, char** argv) {
  double sampling = 0.3;
  if (argc > 1) sampling = std::atof(argv[1]);

  apps::AppSpec app = apps::make_polymorph();
  std::printf("== StatSym on %s (sampling %.0f%%) ==\n", app.name.c_str(),
              sampling * 100.0);

  core::EngineOptions opts;
  opts.monitor.sampling_rate = sampling;
  opts.exec.wake_suspended = false;
  opts.seed = 1234;

  core::StatSymEngine engine(app.module, app.sym_spec, opts);
  engine.collect_logs(app.workload);

  core::EngineResult res = engine.run();

  std::printf("\n%s\n",
              core::format_predicates(app.module, res.predicates, 10).c_str());
  std::printf("%s\n",
              core::format_candidates(app.module, res.construction).c_str());

  if (!res.found) {
    std::printf("vulnerable path NOT found\n");
    return 1;
  }
  std::printf("%s", core::format_vuln(app.module, *res.vuln).c_str());
  std::printf(
      "stat %.2fs + symexec %.2fs, %llu paths, candidate #%zu of %zu\n",
      res.stat_seconds, res.symexec_seconds,
      static_cast<unsigned long long>(res.paths_explored),
      res.winning_candidate, res.construction.candidates.size());

  // Replay the generated input concretely — the ultimate validation that
  // the discovered path constraints describe a real crash.
  interp::Interpreter replay(app.module, res.vuln->input);
  const interp::RunResult rr = replay.run();
  if (rr.outcome == interp::RunOutcome::kFault &&
      rr.fault.function == app.vuln_function) {
    std::printf("replay: CONFIRMED %s in %s()\n",
                interp::fault_kind_name(rr.fault.kind),
                rr.fault.function.c_str());
    return 0;
  }
  std::printf("replay: did NOT reproduce the fault\n");
  return 1;
}
