// Unit tests for constraint independence slicing (solver/slicer.h): the
// connected-component partition over the constraint–variable graph that the
// query-optimization layer rests on.
#include <gtest/gtest.h>

#include "solver/slicer.h"

namespace statsym::solver {
namespace {

struct TestVars {
  ExprPool pool;
  VarId x, y, z;
  ExprId ex, ey, ez;

  TestVars() {
    x = pool.new_var("x", 0, 255);
    y = pool.new_var("y", 0, 255);
    z = pool.new_var("z", 0, 255);
    ex = pool.var_expr(x);
    ey = pool.var_expr(y);
    ez = pool.var_expr(z);
  }
};

TEST(Slicer, EmptyConstraintSetYieldsNoSlices) {
  ExprPool pool;
  EXPECT_TRUE(slice_constraints(pool, {}).empty());
}

TEST(Slicer, SingleComponentChainStaysTogether) {
  TestVars t;
  // x<y and y<z share y transitively: one slice even though x and z never
  // appear in the same constraint.
  const std::vector<ExprId> cs{t.pool.lt(t.ex, t.ey), t.pool.lt(t.ey, t.ez)};
  const auto slices = slice_constraints(t.pool, cs);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].cs, cs);
  EXPECT_EQ(slices[0].vars, (std::vector<VarId>{t.x, t.y, t.z}));
  ASSERT_EQ(slices[0].cs_vars.size(), 2u);
}

TEST(Slicer, FullyDisjointConstraintsSplit) {
  TestVars t;
  const std::vector<ExprId> cs{
      t.pool.lt(t.ex, t.pool.constant(5)),
      t.pool.lt(t.ey, t.pool.constant(6)),
      t.pool.lt(t.ez, t.pool.constant(7)),
  };
  const auto slices = slice_constraints(t.pool, cs);
  ASSERT_EQ(slices.size(), 3u);
  // Ordered by first-constraint index; each slice holds exactly its var.
  EXPECT_EQ(slices[0].cs, (std::vector<ExprId>{cs[0]}));
  EXPECT_EQ(slices[1].cs, (std::vector<ExprId>{cs[1]}));
  EXPECT_EQ(slices[2].cs, (std::vector<ExprId>{cs[2]}));
  EXPECT_EQ(slices[0].vars, (std::vector<VarId>{t.x}));
  EXPECT_EQ(slices[1].vars, (std::vector<VarId>{t.y}));
  EXPECT_EQ(slices[2].vars, (std::vector<VarId>{t.z}));
}

TEST(Slicer, BridgingConstraintMergesComponents) {
  TestVars t;
  // The x- and z-groups are independent until the last constraint bridges
  // them; the bridge must pull everything into one slice.
  const std::vector<ExprId> cs{
      t.pool.lt(t.ex, t.pool.constant(5)),
      t.pool.lt(t.ez, t.pool.constant(7)),
      t.pool.lt(t.ex, t.ez),
  };
  const auto slices = slice_constraints(t.pool, cs);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].cs, cs);  // original order preserved
  EXPECT_EQ(slices[0].vars, (std::vector<VarId>{t.x, t.z}));
}

TEST(Slicer, VariableFreeConstraintIsItsOwnSlice) {
  TestVars t;
  // A non-constant-folded variable-free constraint (the pool folds obvious
  // ones, so craft the raw false expression) forms a singleton slice.
  const std::vector<ExprId> cs{
      t.pool.lt(t.ex, t.pool.constant(5)),
      t.pool.false_expr(),
  };
  const auto slices = slice_constraints(t.pool, cs);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[1].cs, (std::vector<ExprId>{t.pool.false_expr()}));
  EXPECT_TRUE(slices[1].vars.empty());
}

TEST(Slicer, DuplicateConstraintsRideAlong) {
  TestVars t;
  const ExprId c = t.pool.lt(t.ex, t.pool.constant(5));
  const std::vector<ExprId> cs{c, c};
  const auto slices = slice_constraints(t.pool, cs);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].cs.size(), 2u);
}

TEST(Slicer, OrderFollowsFirstConstraintIndex) {
  TestVars t;
  // z's constraint comes first, so the z-slice must come first even though
  // z was created after x.
  const std::vector<ExprId> cs{
      t.pool.lt(t.ez, t.pool.constant(7)),
      t.pool.lt(t.ex, t.pool.constant(5)),
  };
  const auto slices = slice_constraints(t.pool, cs);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].vars, (std::vector<VarId>{t.z}));
  EXPECT_EQ(slices[1].vars, (std::vector<VarId>{t.x}));
}

TEST(Slicer, WholeSliceKeepsEverythingTogether) {
  TestVars t;
  const std::vector<ExprId> cs{
      t.pool.lt(t.ex, t.pool.constant(5)),
      t.pool.lt(t.ey, t.pool.constant(6)),
  };
  const Slice w = whole_slice(t.pool, cs);
  EXPECT_EQ(w.cs, cs);
  EXPECT_EQ(w.vars, (std::vector<VarId>{t.x, t.y}));
  ASSERT_EQ(w.cs_vars.size(), 2u);
  EXPECT_EQ(w.cs_vars[0], (std::vector<VarId>{t.x}));
  EXPECT_EQ(w.cs_vars[1], (std::vector<VarId>{t.y}));
}

TEST(Slicer, DeterministicAcrossCalls) {
  TestVars t;
  const std::vector<ExprId> cs{
      t.pool.lt(t.ex, t.ey),
      t.pool.lt(t.ez, t.pool.constant(7)),
      t.pool.ne(t.ey, t.pool.constant(3)),
  };
  const auto a = slice_constraints(t.pool, cs);
  const auto b = slice_constraints(t.pool, cs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cs, b[i].cs);
    EXPECT_EQ(a[i].vars, b[i].vars);
  }
}

}  // namespace
}  // namespace statsym::solver
