// Tests for the program monitor: instrumented-location encoding, logged
// variables, sampling, library skipping, fault truncation, serialisation
// round-trips and corrupted-log rejection.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "monitor/monitor.h"
#include "monitor/serialize.h"

namespace statsym::monitor {
namespace {

using interp::RuntimeInput;
using ir::ModuleBuilder;
using ir::Reg;

// A two-function module with a global and parameters: main(x) -> helper(v).
ir::Module sample_module() {
  ModuleBuilder mb("t");
  mb.global_int("g", 7);
  mb.global_buf("name", 16);
  {
    auto f = mb.func("helper", {"v"});
    f.store_global("g", f.addi(f.param(0), 1));
    f.ret(f.param(0));
  }
  {
    auto f = mb.func("main", {});
    const Reg buf = f.load_global("name");
    f.store(buf, f.ci(0), f.ci('h'));
    f.store(buf, f.ci(1), f.ci('i'));
    f.call_void("helper", {f.ci(41)});
    f.ret(f.ci(0));
  }
  return mb.build();
}

TEST(Loc, EncodingRoundTrips) {
  for (ir::FuncId f = 0; f < 5; ++f) {
    EXPECT_EQ(loc_function(enter_loc(f)), f);
    EXPECT_EQ(loc_function(leave_loc(f)), f);
    EXPECT_FALSE(loc_is_leave(enter_loc(f)));
    EXPECT_TRUE(loc_is_leave(leave_loc(f)));
  }
}

TEST(Loc, NamesMatchPaperStyle) {
  const ir::Module m = sample_module();
  const ir::FuncId h = m.find_function("helper");
  EXPECT_EQ(loc_name(m, enter_loc(h)), "helper():enter");
  EXPECT_EQ(loc_name(m, leave_loc(h)), "helper():leave");
}

TEST(VarSampleDisplay, PaperStyleKeys) {
  VarSample v;
  v.name = "suspect";
  v.kind = VarKind::kParam;
  v.is_len = true;
  EXPECT_EQ(v.display(), "len(suspect FUNCPARAM)");
  v.is_len = false;
  v.kind = VarKind::kGlobal;
  v.name = "track";
  EXPECT_EQ(v.display(), "track GLOBAL");
}

TEST(Monitor, FullSamplingRecordsAllLocations) {
  const ir::Module m = sample_module();
  auto run = run_monitored(m, {}, {.sampling_rate = 1.0}, Rng(1), 0);
  ASSERT_EQ(run.result.outcome, interp::RunOutcome::kOk);
  // main:enter, helper:enter, helper:leave, main:leave.
  ASSERT_EQ(run.log.records.size(), 4u);
  EXPECT_EQ(run.log.records[0].loc, enter_loc(m.find_function("main")));
  EXPECT_EQ(run.log.records[3].loc, leave_loc(m.find_function("main")));
  EXPECT_FALSE(run.log.faulty);
}

TEST(Monitor, LogsGlobalsParamsAndReturn) {
  const ir::Module m = sample_module();
  auto run = run_monitored(m, {}, {.sampling_rate = 1.0}, Rng(1), 0);
  // helper:leave record: globals g (42 after increment), len(name)=2,
  // param v=41, ret=41.
  const auto& rec = run.log.records[2];
  ASSERT_EQ(rec.loc, leave_loc(m.find_function("helper")));
  double g = -1, name_len = -1, v = -1, ret = -1;
  for (const auto& s : rec.vars) {
    if (s.display() == "g GLOBAL") g = s.value;
    if (s.display() == "len(name GLOBAL)") name_len = s.value;
    if (s.display() == "v FUNCPARAM") v = s.value;
    if (s.display() == "ret RETURN") ret = s.value;
  }
  EXPECT_EQ(g, 42);
  EXPECT_EQ(name_len, 2);
  EXPECT_EQ(v, 41);
  EXPECT_EQ(ret, 41);
}

TEST(Monitor, SamplingRateControlsRecordCount) {
  const ir::Module m = sample_module();
  std::size_t kept = 0;
  const int runs = 500;
  Rng seed(9);
  for (int i = 0; i < runs; ++i) {
    auto run = run_monitored(m, {}, {.sampling_rate = 0.25}, seed.split(), i);
    kept += run.log.records.size();
  }
  const double rate = static_cast<double>(kept) / (runs * 4.0);
  EXPECT_NEAR(rate, 0.25, 0.05);
}

TEST(Monitor, ZeroSamplingKeepsNothing) {
  const ir::Module m = sample_module();
  auto run = run_monitored(m, {}, {.sampling_rate = 0.0}, Rng(1), 0);
  EXPECT_TRUE(run.log.records.empty());
}

TEST(Monitor, SkipsLibraryPrefixedFunctions) {
  ModuleBuilder mb("t");
  {
    auto f = mb.func("__internal", {});
    f.ret();
  }
  {
    auto f = mb.func("main", {});
    f.call_void("__internal", {});
    f.ret(f.ci(0));
  }
  const ir::Module m = mb.build();
  auto run = run_monitored(m, {}, {.sampling_rate = 1.0}, Rng(1), 0);
  for (const auto& rec : run.log.records) {
    EXPECT_NE(loc_function(rec.loc), m.find_function("__internal"));
  }
  EXPECT_EQ(run.log.records.size(), 2u);  // main enter/leave only
}

TEST(Monitor, FaultyRunLacksLeaveRecords) {
  ModuleBuilder mb("t");
  {
    auto f = mb.func("boom", {});
    const Reg b = f.alloca_buf(2);
    f.store(b, f.ci(9), f.ci(1));
    f.ret();
  }
  {
    auto f = mb.func("main", {});
    f.call_void("boom", {});
    f.ret(f.ci(0));
  }
  const ir::Module m = mb.build();
  auto run = run_monitored(m, {}, {.sampling_rate = 1.0}, Rng(1), 3);
  EXPECT_TRUE(run.log.faulty);
  EXPECT_EQ(run.log.fault_function, "boom");
  ASSERT_EQ(run.log.records.size(), 2u);
  EXPECT_EQ(run.log.records.back().loc, enter_loc(m.find_function("boom")));
}

TEST(Serialize, RoundTripsExactly) {
  const ir::Module m = sample_module();
  std::vector<RunLog> logs;
  Rng seed(4);
  for (int i = 0; i < 5; ++i) {
    auto run = run_monitored(m, {}, {.sampling_rate = 0.7}, seed.split(), i);
    logs.push_back(std::move(run.log));
  }
  const std::string text = serialize(logs);
  std::vector<RunLog> back;
  ASSERT_TRUE(deserialize(text, back));
  ASSERT_EQ(back.size(), logs.size());
  for (std::size_t i = 0; i < logs.size(); ++i) {
    EXPECT_EQ(back[i].run_id, logs[i].run_id);
    EXPECT_EQ(back[i].faulty, logs[i].faulty);
    ASSERT_EQ(back[i].records.size(), logs[i].records.size());
    for (std::size_t r = 0; r < logs[i].records.size(); ++r) {
      EXPECT_EQ(back[i].records[r].loc, logs[i].records[r].loc);
      EXPECT_EQ(back[i].records[r].vars, logs[i].records[r].vars);
    }
  }
}

TEST(Serialize, FaultyFlagRoundTrips) {
  RunLog log;
  log.run_id = 12;
  log.faulty = true;
  log.fault_function = "defang";
  log.records.push_back({3, {{"str", VarKind::kParam, true, 1000.5}}});
  std::vector<RunLog> back;
  ASSERT_TRUE(deserialize(serialize(log), back));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_TRUE(back[0].faulty);
  EXPECT_EQ(back[0].fault_function, "defang");
  EXPECT_DOUBLE_EQ(back[0].records[0].vars[0].value, 1000.5);
}

class CorruptedLogs : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(
    Rejects, CorruptedLogs,
    ::testing::Values("garbage line",                        // unknown tag
                      "rec 3",                               // rec before run
                      "var GLOBAL|0|1.0|x",                  // var before rec
                      "run notanumber ok",                   // bad id
                      "run 1 maybe",                         // bad flag
                      "run 1 ok extra",                      // ok with fn
                      "run 1 ok\nrec -2",                    // negative loc
                      "run 1 ok\nrec 0\nvar WEIRD|0|1|x",    // bad kind
                      "run 1 ok\nrec 0\nvar GLOBAL|2|1|x",   // bad len flag
                      "run 1 ok\nrec 0\nvar GLOBAL|0|z|x",   // bad value
                      "run 1 ok\nrec 0\nvar GLOBAL|0|1|",    // empty name
                      "run 1 ok\nrec 0\nvar GLOBAL|0|1"));   // missing field

TEST_P(CorruptedLogs, DeserializeFails) {
  std::vector<RunLog> out;
  EXPECT_FALSE(deserialize(GetParam(), out));
}

TEST(Serialize, EmptyInputYieldsNoLogs) {
  std::vector<RunLog> out;
  EXPECT_TRUE(deserialize("", out));
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace statsym::monitor
