// Unit tests for the concrete interpreter: semantics of every opcode group,
// all fault kinds, inputs, globals, listeners and budgets.
#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "ir/builder.h"

namespace statsym::interp {
namespace {

using ir::BinOp;
using ir::ModuleBuilder;
using ir::Reg;

RunResult run(const ir::Module& m, RuntimeInput in = {},
              InterpOptions opts = {}) {
  Interpreter it(m, std::move(in), opts);
  return it.run();
}

std::int64_t ret_of(const RunResult& r) {
  EXPECT_EQ(r.outcome, RunOutcome::kOk);
  EXPECT_TRUE(r.main_ret.has_value());
  return r.main_ret->i;
}

TEST(Interp, ArithmeticAndComparisons) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  Reg a = f.ci(10);
  Reg b = f.ci(3);
  Reg sum = f.add(a, b);                      // 13
  Reg prod = f.mul(sum, f.ci(2));             // 26
  Reg q = f.bin(BinOp::kDiv, prod, b);        // 8
  Reg r = f.bin(BinOp::kRem, prod, b);        // 2
  Reg cmp = f.lt(r, q);                       // 1
  f.ret(f.add(f.add(q, r), cmp));             // 11
  EXPECT_EQ(ret_of(run(mb.build())), 11);
}

TEST(Interp, LogicalOps) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  Reg t = f.land(f.ci(5), f.ci(-2));  // 1
  Reg o = f.lor(f.ci(0), f.ci(0));    // 0
  Reg n = f.not_(o);                  // 1
  f.ret(f.add(t, f.add(o, n)));       // 2
  EXPECT_EQ(ret_of(run(mb.build())), 2);
}

TEST(Interp, NegateWrapsMin) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  f.ret(f.neg(f.ci(INT64_MIN)));
  EXPECT_EQ(ret_of(run(mb.build())), INT64_MIN);
}

TEST(Interp, LoopComputesSum) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  const Reg i = f.reg();
  const Reg acc = f.reg();
  const auto loop = f.block();
  const auto body = f.block();
  const auto done = f.block();
  f.assign(i, f.ci(0));
  f.assign(acc, f.ci(0));
  f.jmp(loop);
  f.at(loop);
  f.br(f.lti(i, 10), body, done);
  f.at(body);
  f.assign(acc, f.add(acc, i));
  f.assign(i, f.addi(i, 1));
  f.jmp(loop);
  f.at(done);
  f.ret(acc);
  EXPECT_EQ(ret_of(run(mb.build())), 45);
}

TEST(Interp, CallsAndRecursion) {
  ModuleBuilder mb("t");
  {
    auto f = mb.func("fib", {"n"});
    const auto base = f.block();
    const auto rec = f.block();
    f.br(f.lti(f.param(0), 2), base, rec);
    f.at(base);
    f.ret(f.param(0));
    f.at(rec);
    const Reg a = f.call("fib", {f.bini(BinOp::kSub, f.param(0), 1)});
    const Reg b = f.call("fib", {f.bini(BinOp::kSub, f.param(0), 2)});
    f.ret(f.add(a, b));
  }
  {
    auto f = mb.func("main", {});
    f.ret(f.call("fib", {f.ci(10)}));
  }
  EXPECT_EQ(ret_of(run(mb.build())), 55);
}

TEST(Interp, StackOverflowFault) {
  ModuleBuilder mb("t");
  {
    auto f = mb.func("loop", {});
    f.ret(f.call("loop", {}));
  }
  {
    auto f = mb.func("main", {});
    f.ret(f.call("loop", {}));
  }
  const auto r = run(mb.build());
  ASSERT_EQ(r.outcome, RunOutcome::kFault);
  EXPECT_EQ(r.fault.kind, FaultKind::kStackOverflow);
}

TEST(Interp, MemoryReadWrite) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  const Reg buf = f.alloca_buf(8);
  f.store(buf, f.ci(3), f.ci(0xab));
  f.ret(f.load(buf, f.ci(3)));
  EXPECT_EQ(ret_of(run(mb.build())), 0xab);
}

TEST(Interp, StoreTruncatesToByte) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  const Reg buf = f.alloca_buf(4);
  f.store(buf, f.ci(0), f.ci(0x1ff));
  f.ret(f.load(buf, f.ci(0)));
  EXPECT_EQ(ret_of(run(mb.build())), 0xff);
}

TEST(Interp, OobStoreFaults) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  const Reg buf = f.alloca_buf(4);
  f.store(buf, f.ci(4), f.ci(1));  // one past the end
  f.ret();
  const auto r = run(mb.build());
  ASSERT_EQ(r.outcome, RunOutcome::kFault);
  EXPECT_EQ(r.fault.kind, FaultKind::kOobStore);
  EXPECT_EQ(r.fault.function, "main");
}

TEST(Interp, OobLoadFaults) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  const Reg buf = f.alloca_buf(4);
  f.ret(f.load(buf, f.ci(-1)));
  EXPECT_EQ(run(mb.build()).fault.kind, FaultKind::kOobLoad);
}

TEST(Interp, NullDerefFaults) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  const Reg e = f.env("MISSING");
  f.ret(f.load(e, f.ci(0)));
  EXPECT_EQ(run(mb.build()).fault.kind, FaultKind::kNullDeref);
}

TEST(Interp, DivByZeroFaults) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  f.ret(f.bin(BinOp::kDiv, f.ci(1), f.ci(0)));
  EXPECT_EQ(run(mb.build()).fault.kind, FaultKind::kDivByZero);
}

TEST(Interp, AssertFault) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  f.assert_true(f.ci(0));
  f.ret();
  EXPECT_EQ(run(mb.build()).fault.kind, FaultKind::kAssertFail);
}

TEST(Interp, AssertPasses) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  f.assert_true(f.ci(7));
  f.ret(f.ci(0));
  EXPECT_EQ(run(mb.build()).outcome, RunOutcome::kOk);
}

TEST(Interp, BadArgIndexFaults) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  f.ret(f.buf_size(f.arg(f.ci(3))));
  RuntimeInput in;
  in.argv = {"prog"};
  EXPECT_EQ(run(mb.build(), in).fault.kind, FaultKind::kBadArgIndex);
}

TEST(Interp, ArgvAndArgc) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  const Reg n = f.argc();
  const Reg a1 = f.arg(f.ci(1));
  f.ret(f.add(f.mul(n, f.ci(100)), f.load(a1, f.ci(0))));
  RuntimeInput in;
  in.argv = {"prog", "Zx"};
  EXPECT_EQ(ret_of(run(mb.build(), in)), 200 + 'Z');
}

TEST(Interp, EnvPresentAndMissing) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  const Reg e = f.env("HOME");
  const Reg missing = f.env("NOPE");
  const auto have = f.block();
  const auto none = f.block();
  f.br(e, have, none);
  f.at(have);
  // missing env is a null ref -> falsy
  const auto bad = f.block();
  const auto good = f.block();
  f.br(missing, bad, good);
  f.at(bad);
  f.ret(f.ci(-1));
  f.at(good);
  f.ret(f.load(e, f.ci(0)));
  f.at(none);
  f.ret(f.ci(-2));
  RuntimeInput in;
  in.env["HOME"] = "/root";
  EXPECT_EQ(ret_of(run(mb.build(), in)), '/');
}

TEST(Interp, StrConstIsNulTerminated) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  const Reg s = f.str_const("hi");
  f.ret(f.add(f.buf_size(s), f.load(s, f.ci(2))));  // size 3 + NUL 0
  EXPECT_EQ(ret_of(run(mb.build())), 3);
}

TEST(Interp, GlobalsIntAndBuf) {
  ModuleBuilder mb("t");
  mb.global_int("counter", 5);
  mb.global_buf("buf", 4);
  auto f = mb.func("main", {});
  f.store_global("counter", f.addi(f.load_global("counter"), 1));
  const Reg buf = f.load_global("buf");
  f.store(buf, f.ci(0), f.ci(9));
  f.ret(f.add(f.load_global("counter"), f.load(buf, f.ci(0))));
  EXPECT_EQ(ret_of(run(mb.build())), 15);
}

TEST(Interp, RefEqualityComparesIdentity) {
  ModuleBuilder mb("t");
  mb.global_buf("g", 4);
  auto f = mb.func("main", {});
  const Reg a = f.load_global("g");
  const Reg b = f.load_global("g");
  const Reg c = f.alloca_buf(4);
  f.ret(f.add(f.eq(a, b), f.mul(f.ci(10), f.ne(a, c))));
  EXPECT_EQ(ret_of(run(mb.build())), 11);
}

TEST(Interp, RefArithmeticFaults) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  const Reg buf = f.alloca_buf(4);
  f.ret(f.add(buf, f.ci(1)));
  EXPECT_EQ(run(mb.build()).outcome, RunOutcome::kFault);
}

TEST(Interp, MakeSymIntReadsInput) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  const Reg x = f.reg();
  f.make_sym_int(x, "x", -100, 100);
  f.ret(x);
  RuntimeInput in;
  in.sym_ints["x"] = 42;
  EXPECT_EQ(ret_of(run(mb.build(), in)), 42);
}

TEST(Interp, MakeSymIntClampsToDomain) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  const Reg x = f.reg();
  f.make_sym_int(x, "x", 0, 10);
  f.ret(x);
  RuntimeInput in;
  in.sym_ints["x"] = 5000;
  EXPECT_EQ(ret_of(run(mb.build(), in)), 10);
}

TEST(Interp, MakeSymIntDefaultsToDomainMin) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  const Reg x = f.reg();
  f.make_sym_int(x, "unset", 7, 10);
  f.ret(x);
  EXPECT_EQ(ret_of(run(mb.build())), 7);
}

TEST(Interp, MakeSymBufCopiesContent) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  const Reg buf = f.alloca_buf(8);
  f.make_sym_buf(buf, "data");
  f.ret(f.load(buf, f.ci(1)));
  RuntimeInput in;
  in.sym_bufs["data"] = "ab";
  EXPECT_EQ(ret_of(run(mb.build(), in)), 'b');
}

TEST(Interp, StepLimitStopsRun) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  const auto loop = f.block();
  f.jmp(loop);
  f.at(loop);
  f.jmp(loop);
  InterpOptions opts;
  opts.max_steps = 1000;
  const auto r = run(mb.build(), {}, opts);
  EXPECT_EQ(r.outcome, RunOutcome::kStepLimit);
  EXPECT_GE(r.steps, 1000);
}

TEST(Interp, ExternModelSuppliesResults) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  f.ret(f.call_ext("magic", {f.ci(20)}));
  const ir::Module m = mb.build();
  Interpreter it(m, {});
  it.set_extern_model([](const std::string& name, std::span<const Value> args) {
    EXPECT_EQ(name, "magic");
    return Value::make_int(args[0].i + 1);
  });
  const auto r = it.run();
  EXPECT_EQ(r.main_ret->i, 21);
}

TEST(Interp, DefaultExternReturnsZero) {
  ModuleBuilder mb("t");
  auto f = mb.func("main", {});
  f.ret(f.call_ext("whatever", {}));
  EXPECT_EQ(ret_of(run(mb.build())), 0);
}

TEST(Interp, FaultInsideLibraryAttributedToCaller) {
  ModuleBuilder mb("t");
  {
    auto f = mb.func("__smash", {"buf"});
    f.store(f.param(0), f.ci(100), f.ci(1));
    f.ret();
  }
  {
    auto f = mb.func("victim", {});
    f.call_void("__smash", {f.alloca_buf(4)});
    f.ret();
  }
  {
    auto f = mb.func("main", {});
    f.call_void("victim", {});
    f.ret(f.ci(0));
  }
  const auto r = run(mb.build());
  ASSERT_EQ(r.outcome, RunOutcome::kFault);
  EXPECT_EQ(r.fault.function, "victim");
}

class ProbeListener : public InterpListener {
 public:
  std::vector<std::string> events;
  void on_enter(const Interpreter&, const ir::Function& fn,
                std::span<const Value>) override {
    events.push_back(fn.name + ":enter");
  }
  void on_leave(const Interpreter&, const ir::Function& fn,
                std::span<const Value>,
                const std::optional<Value>&) override {
    events.push_back(fn.name + ":leave");
  }
};

TEST(Interp, ListenerSeesEnterLeaveOrder) {
  ModuleBuilder mb("t");
  {
    auto f = mb.func("inner", {});
    f.ret();
  }
  {
    auto f = mb.func("main", {});
    f.call_void("inner", {});
    f.ret(f.ci(0));
  }
  const ir::Module m = mb.build();
  Interpreter it(m, {});
  ProbeListener probe;
  it.set_listener(&probe);
  it.run();
  const std::vector<std::string> want{"main:enter", "inner:enter",
                                      "inner:leave", "main:leave"};
  EXPECT_EQ(probe.events, want);
}

TEST(Interp, FaultTruncatesLeaveEvents) {
  ModuleBuilder mb("t");
  {
    auto f = mb.func("crash", {});
    const Reg b = f.alloca_buf(2);
    f.store(b, f.ci(5), f.ci(1));
    f.ret();
  }
  {
    auto f = mb.func("main", {});
    f.call_void("crash", {});
    f.ret(f.ci(0));
  }
  const ir::Module m = mb.build();
  Interpreter it(m, {});
  ProbeListener probe;
  it.set_listener(&probe);
  it.run();
  // crash:leave and main:leave never fire — the paper's observation that
  // faulty runs lack the fault function's return record.
  const std::vector<std::string> want{"main:enter", "crash:enter"};
  EXPECT_EQ(probe.events, want);
}

}  // namespace
}  // namespace statsym::interp
