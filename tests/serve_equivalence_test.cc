// Served-vs-oneshot equivalence (ISSUE 10 satellite, extending the
// trace_golden_test / stream_equivalence_test patterns): replaying the four
// hand-written apps plus three generator-corpus seeds through a single
// long-lived serve session must produce verdicts, solver-stat sums, metrics
// (modulo *.seconds gauges) and traces byte-identical to the equivalent
// one-shot engine run — at --jobs 1 and 8, and regardless of how warm the
// session's persistent cache already is from earlier requests.
//
// This is the acceptance criterion of the serve tentpole: the service may
// only ever change *when* an answer is computed, never what it is.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "fuzz/diff_driver.h"
#include "fuzz/program_gen.h"
#include "serve/protocol.h"
#include "serve/session.h"
#include "statsym/engine.h"
#include "support/strings.h"

namespace statsym::serve {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 424242;
constexpr double kSampling = 0.3;

// The one-shot side: exactly the EngineOptions mapping ServeSession
// documents (which itself mirrors statsym_cli's engine_options()).
core::EngineOptions oneshot_opts(std::size_t jobs) {
  core::EngineOptions o;
  o.monitor.sampling_rate = kSampling;
  o.seed = kSeed;
  o.candidate_timeout_seconds = 300.0;
  o.exec.max_memory_bytes = 256ull << 20;
  o.exec.jobs = 1;
  o.exec.batch = 1;
  o.num_threads = jobs;
  return o;
}

struct OneShot {
  core::EngineResult res;
  std::string trace_jsonl;
};

OneShot one_shot(const apps::AppSpec& app, std::size_t jobs) {
  OneShot out;
  obs::Tracer tracer;
  core::StatSymEngine engine(app.module, app.sym_spec, oneshot_opts(jobs));
  engine.set_tracer(&tracer);
  engine.collect_logs(app.workload);
  out.res = engine.run();
  out.trace_jsonl = tracer.to_jsonl();
  return out;
}

// Reassembles a marker-delimited section of a reply body into the original
// newline-terminated document.
std::string section(const std::vector<std::string>& body,
                    const std::string& begin, const std::string& end) {
  std::string out;
  bool in = false;
  for (const std::string& l : body) {
    if (l == begin) {
      in = true;
    } else if (l == end) {
      in = false;
    } else if (in) {
      out += l;
      out += '\n';
    }
  }
  return out;
}

// Wall-clock gauges are the single documented source of nondeterminism in
// the metrics document; mask their values, keep their names.
std::string mask_seconds(const std::string& json) {
  std::string out;
  for (const std::string& l : split(json, '\n')) {
    if (l.find(".seconds") != std::string::npos) {
      out += l.substr(0, l.find(':') + 1) + " <wall>\n";
    } else {
      out += l;
      out += '\n';
    }
  }
  return out;
}

std::string u64s(std::uint64_t v) { return std::to_string(v); }

// Body lines with wall-clock gauge values masked (same policy as
// mask_seconds, applied to the line-structured reply body).
std::vector<std::string> mask_body(const std::vector<std::string>& body) {
  std::vector<std::string> out;
  out.reserve(body.size());
  for (const std::string& l : body) {
    if (l.find(".seconds") != std::string::npos) {
      out.push_back(l.substr(0, l.find(':') + 1) + " <wall>");
    } else {
      out.push_back(l);
    }
  }
  return out;
}

void expect_reply_matches_oneshot(const Reply& reply, const OneShot& shot,
                                  const std::string& label) {
  ASSERT_TRUE(reply.ok) << label;
  const auto& res = shot.res;
  EXPECT_EQ(body_value(reply.body, "verdict"),
            res.found ? "found" : "not-found")
      << label;
  if (res.found) {
    EXPECT_EQ(body_value(reply.body, "fault-function"), res.vuln->function)
        << label;
  }
  EXPECT_EQ(body_value(reply.body, "winning-candidate"),
            u64s(res.winning_candidate))
      << label;
  EXPECT_EQ(body_value(reply.body, "paths"), u64s(res.paths_explored))
      << label;
  EXPECT_EQ(body_value(reply.body, "instructions"), u64s(res.instructions))
      << label;
  const solver::SolverStats& ss = res.solver_stats;
  EXPECT_EQ(body_value(reply.body, "solver.queries"), u64s(ss.queries))
      << label;
  EXPECT_EQ(body_value(reply.body, "solver.slices"), u64s(ss.slices))
      << label;
  EXPECT_EQ(body_value(reply.body, "solver.canonical"),
            u64s(ss.shared_cache_hits + ss.solves))
      << label;
  EXPECT_EQ(section(reply.body, "begintrace", "endtrace"), shot.trace_jsonl)
      << label << ": served trace diverged from the one-shot trace";
  EXPECT_EQ(mask_seconds(section(reply.body, "beginmetrics", "endmetrics")),
            mask_seconds(res.metrics.to_json()))
      << label << ": served metrics diverged from the one-shot metrics";
}

Frame run_frame(const std::string& id, const std::string& app,
                std::size_t jobs) {
  Frame f;
  f.id = id;
  f.body = {"cmd|run",
            "app|" + app,
            "seed|" + u64s(kSeed),
            "jobs|" + u64s(jobs),
            "sampling|0.3",
            "trace|1",
            "metrics|1"};
  return f;
}

fuzz::CorpusEntry load_corpus(const std::string& file) {
  std::ifstream in(fs::path(STATSYM_CORPUS_DIR) / file);
  EXPECT_TRUE(in) << "cannot open corpus file " << file;
  std::stringstream ss;
  ss << in.rdbuf();
  fuzz::CorpusEntry e;
  EXPECT_TRUE(fuzz::parse_corpus(ss.str(), e)) << "malformed " << file;
  return e;
}

struct Case {
  std::string name;
  apps::AppSpec app;
};

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const char* name : {"fig2", "polymorph", "ctree", "grep"}) {
    cases.push_back(Case{name, apps::make_app(name)});
  }
  for (const char* file :
       {"oob-basic.corpus", "assert-two-candidates.corpus",
        "benign-a.corpus"}) {
    const fuzz::CorpusEntry e = load_corpus(file);
    cases.push_back(
        Case{std::string("corpus:") + file,
             fuzz::generate_program(e.seed, e.gen).app});
  }
  return cases;
}

// One session serves every case twice (jobs 1, then jobs 8), so later
// requests run against caches warmed by earlier ones — the served replies
// must nonetheless match fresh cold one-shot runs byte-for-byte.
TEST(ServeEquivalence, SevenProgramsThroughOneSessionMatchOneShot) {
  ServeSession session{ServeOptions{}};
  std::vector<Case> cases = all_cases();
  // Resolver serves both the registry apps and the corpus-generated ones
  // under their case names.
  session.set_resolver([&cases](const std::string& name) -> apps::AppSpec {
    for (const Case& c : cases) {
      if (c.name == name) return c.app;
    }
    throw std::invalid_argument("unknown app: " + name);
  });

  for (const Case& c : cases) {
    const OneShot shot1 = one_shot(c.app, 1);
    const OneShot shot8 = one_shot(c.app, 8);

    Reply r1;
    ASSERT_TRUE(parse_reply(
        session.handle(run_frame("eq1-" + c.name, c.name, 1)), r1, nullptr));
    Reply r8;
    ASSERT_TRUE(parse_reply(
        session.handle(run_frame("eq8-" + c.name, c.name, 8)), r8, nullptr));

    expect_reply_matches_oneshot(r1, shot1, c.name + " jobs=1");
    expect_reply_matches_oneshot(r8, shot8, c.name + " jobs=8");
    // And the served replies agree with each other across --jobs (ids
    // differ by construction; the bodies — modulo wall gauges — must not).
    EXPECT_EQ(mask_body(r1.body), mask_body(r8.body))
        << c.name << ": served reply differs between jobs 1 and 8";
  }
}

// Warm repetition: replaying an identical request through the same session
// returns byte-identical replies, no matter how many times the cache has
// answered it before.
TEST(ServeEquivalence, WarmRepeatRequestIsByteIdentical) {
  ServeSession session{ServeOptions{}};
  const std::string first =
      session.handle(run_frame("rep", "fig2", 1));
  const std::string second =
      session.handle(run_frame("rep", "fig2", 1));
  const std::string third =
      session.handle(run_frame("rep", "fig2", 8));
  EXPECT_EQ(mask_seconds(first), mask_seconds(second));
  Reply ra, rc;
  ASSERT_TRUE(parse_reply(first, ra, nullptr));
  ASSERT_TRUE(parse_reply(third, rc, nullptr));
  EXPECT_EQ(mask_body(ra.body), mask_body(rc.body));
  // The repeats actually exercised the warm path.
  EXPECT_GT(session.metrics().counter("serve.warm_slice_hits"), 0u);
}

}  // namespace
}  // namespace statsym::serve
