// Tests for statistics-guided search: candidate-path matching, hop-diversion
// suspension (τ), benign revisits, predicate injection (including the
// per-byte lowering of string-length predicates), conflict suspension, the
// guided scheduler's priorities, and the worst-case fallback to pure
// symbolic execution.
#include <gtest/gtest.h>

#include "apps/stdlib.h"
#include "ir/builder.h"
#include "statsym/guidance.h"
#include "statsym/guided_searcher.h"
#include "statsym/report.h"
#include "symexec/executor.h"

namespace statsym::core {
namespace {

using ir::ModuleBuilder;
using ir::Reg;
using symexec::ExecOptions;
using symexec::SymExecutor;
using symexec::SymInputSpec;
using symexec::SymStr;

// main -> a -> b -> vuln(x): assert fails when first byte of argv[1] is 'X'.
ir::Module chain_module() {
  ModuleBuilder mb("chain");
  apps::emit_stdlib(mb);
  {
    auto f = mb.func("vuln", {"s"});
    const Reg c = f.load(f.param(0), f.ci(0));
    const auto bad = f.block();
    const auto ok = f.block();
    f.br(f.eqi(c, 'X'), bad, ok);
    f.at(bad);
    f.assert_true(f.ci(0));
    f.ret();
    f.at(ok);
    f.ret();
  }
  {
    auto f = mb.func("b", {"s"});
    f.call_void("vuln", {f.param(0)});
    f.ret();
  }
  {
    auto f = mb.func("a", {"s"});
    f.call_void("b", {f.param(0)});
    f.ret();
  }
  // A decoy subtree off the main chain.
  {
    auto f = mb.func("decoy3", {});
    f.ret();
  }
  {
    auto f = mb.func("decoy2", {});
    f.call_void("decoy3", {});
    f.ret();
  }
  {
    auto f = mb.func("decoy", {});
    f.call_void("decoy2", {});
    f.call_void("decoy2", {});
    f.ret();
  }
  {
    auto f = mb.func("main", {});
    f.call_void("decoy", {});
    f.call_void("a", {f.arg(f.ci(1))});
    f.ret(f.ci(0));
  }
  return mb.build();
}

monitor::LocId enter(const ir::Module& m, const std::string& fn) {
  return monitor::enter_loc(m.find_function(fn));
}
monitor::LocId leave(const ir::Module& m, const std::string& fn) {
  return monitor::leave_loc(m.find_function(fn));
}

stats::CandidatePath path_of(std::vector<monitor::LocId> nodes) {
  stats::CandidatePath cp;
  cp.nodes = std::move(nodes);
  return cp;
}

SymInputSpec spec_one_sym_arg() {
  SymInputSpec spec;
  spec.argv = {SymStr::fixed("p"), SymStr::sym("s", 8)};
  return spec;
}

TEST(Guidance, FollowsCandidatePathToFault) {
  const ir::Module m = chain_module();
  stats::CandidatePath cp = path_of(
      {enter(m, "main"), enter(m, "a"), enter(m, "b"), enter(m, "vuln")});
  CandidateGuidance g(m, cp, {}, {});
  ExecOptions opts;
  opts.wake_suspended = false;
  SymExecutor ex(m, spec_one_sym_arg(), opts);
  ex.set_guidance(&g);
  ex.set_searcher(std::make_unique<GuidedSearcher>());
  const auto r = ex.run();
  ASSERT_EQ(r.termination, symexec::Termination::kFoundFault);
  EXPECT_EQ(r.vuln->function, "vuln");
  EXPECT_EQ(g.max_matched(), 4);
}

TEST(Guidance, TightTauSuspendsDivergentStates) {
  const ir::Module m = chain_module();
  // The candidate path skips the decoy subtree; with tau = 0 any decoy
  // event suspends. The path itself stays feasible because decoy events
  // happen before `a` — so use a candidate that expects `a` immediately and
  // verify the decoy detour exhausts the hop budget.
  stats::CandidatePath cp = path_of(
      {enter(m, "main"), enter(m, "a"), enter(m, "b"), enter(m, "vuln")});
  GuidanceOptions gopts;
  gopts.tau = 0;
  CandidateGuidance g(m, cp, {}, gopts);
  ExecOptions opts;
  opts.wake_suspended = false;
  SymExecutor ex(m, spec_one_sym_arg(), opts);
  ex.set_guidance(&g);
  ex.set_searcher(std::make_unique<GuidedSearcher>());
  const auto r = ex.run();
  EXPECT_NE(r.termination, symexec::Termination::kFoundFault);
  EXPECT_GE(g.diverted_suspensions(), 1u);
}

TEST(Guidance, GenerousTauToleratesDetours) {
  const ir::Module m = chain_module();
  stats::CandidatePath cp = path_of(
      {enter(m, "main"), enter(m, "a"), enter(m, "b"), enter(m, "vuln")});
  GuidanceOptions gopts;
  gopts.tau = 10;  // paper default; decoy subtree is 6 events deep
  CandidateGuidance g(m, cp, {}, gopts);
  ExecOptions opts;
  opts.wake_suspended = false;
  SymExecutor ex(m, spec_one_sym_arg(), opts);
  ex.set_guidance(&g);
  ex.set_searcher(std::make_unique<GuidedSearcher>());
  EXPECT_EQ(ex.run().termination, symexec::Termination::kFoundFault);
}

TEST(Guidance, InfeasibleCandidateSuspendsEverything) {
  const ir::Module m = chain_module();
  // A path demanding vuln before a — impossible in real execution order
  // once tau is small.
  stats::CandidatePath cp =
      path_of({enter(m, "vuln"), enter(m, "a"), enter(m, "b")});
  GuidanceOptions gopts;
  gopts.tau = 1;
  CandidateGuidance g(m, cp, {}, gopts);
  ExecOptions opts;
  opts.wake_suspended = false;
  SymExecutor ex(m, spec_one_sym_arg(), opts);
  ex.set_guidance(&g);
  ex.set_searcher(std::make_unique<GuidedSearcher>());
  const auto r = ex.run();
  EXPECT_EQ(r.termination, symexec::Termination::kExhausted);
  EXPECT_EQ(r.stats.faults_found, 0u);
  EXPECT_GT(r.stats.suspensions, 0u);
}

TEST(Guidance, WakeFallbackEqualsPureSearch) {
  // Same bogus candidate path, but with wake_suspended on: the executor
  // falls back to pure symbolic execution and still finds the bug — the
  // paper's worst-case guarantee (§III-A footnote).
  const ir::Module m = chain_module();
  stats::CandidatePath cp =
      path_of({enter(m, "vuln"), enter(m, "a"), enter(m, "b")});
  GuidanceOptions gopts;
  gopts.tau = 1;
  CandidateGuidance g(m, cp, {}, gopts);
  ExecOptions opts;
  opts.wake_suspended = true;
  SymExecutor ex(m, spec_one_sym_arg(), opts);
  ex.set_guidance(&g);
  ex.set_searcher(std::make_unique<GuidedSearcher>());
  const auto r = ex.run();
  EXPECT_EQ(r.termination, symexec::Termination::kFoundFault);
  EXPECT_GE(r.stats.wakes, 1u);
}

TEST(Guidance, LibraryFunctionsInvisible) {
  ModuleBuilder mb("lib");
  apps::emit_stdlib(mb);
  {
    auto f = mb.func("user", {"s"});
    // Calls several library routines between candidate nodes.
    f.call_void("__strlen", {f.param(0)});
    f.call_void("__strlen", {f.param(0)});
    f.call_void("__strlen", {f.param(0)});
    const Reg c = f.load(f.param(0), f.ci(0));
    const auto bad = f.block();
    const auto ok = f.block();
    f.br(f.eqi(c, 'Q'), bad, ok);
    f.at(bad);
    f.assert_true(f.ci(0));
    f.ret();
    f.at(ok);
    f.ret();
  }
  {
    auto f = mb.func("main", {});
    f.call_void("user", {f.arg(f.ci(1))});
    f.ret(f.ci(0));
  }
  const ir::Module m = mb.build();
  stats::CandidatePath cp = path_of({enter(m, "main"), enter(m, "user")});
  GuidanceOptions gopts;
  gopts.tau = 0;  // library events would instantly suspend if visible
  CandidateGuidance g(m, cp, {}, gopts);
  ExecOptions opts;
  opts.wake_suspended = false;
  SymExecutor ex(m, spec_one_sym_arg(), opts);
  ex.set_guidance(&g);
  ex.set_searcher(std::make_unique<GuidedSearcher>());
  EXPECT_EQ(ex.run().termination, symexec::Termination::kFoundFault);
  EXPECT_EQ(g.diverted_suspensions(), 0u);
}

// Injection: a length predicate on the parameter must prune short-string
// paths (their termination forks become infeasible).
TEST(Guidance, LengthPredicateInjectionPrunesShortStrings) {
  ModuleBuilder mb("len");
  apps::emit_stdlib(mb);
  {
    auto f = mb.func("scan", {"s"});
    f.ret(f.call("__strlen", {f.param(0)}));
  }
  {
    auto f = mb.func("sink", {"s", "n"});
    const auto bad = f.block();
    const auto ok = f.block();
    f.br(f.gei(f.param(1), 6), bad, ok);
    f.at(bad);
    f.assert_true(f.ci(0));
    f.ret();
    f.at(ok);
    f.ret();
  }
  {
    auto f = mb.func("main", {});
    const Reg s = f.arg(f.ci(1));
    const Reg n = f.call("scan", {s});
    f.call_void("sink", {s, n});
    f.ret(f.ci(0));
  }
  const ir::Module m = mb.build();

  stats::Predicate p;
  p.loc = enter(m, "scan");
  p.var = "len(s FUNCPARAM)";
  p.kind = monitor::VarKind::kParam;
  p.is_len = true;
  p.pk = stats::PredKind::kGt;
  p.threshold = 5.5;
  p.score = 1.0;
  p.score_lcb = 1.0;

  stats::CandidatePath cp = path_of(
      {enter(m, "main"), enter(m, "scan"), leave(m, "scan"),
       enter(m, "sink")});

  SymInputSpec spec;
  spec.argv = {SymStr::fixed("p"), SymStr::sym("s", 16)};

  // Without injection: strlen forks once per length -> many paths.
  std::uint64_t paths_without = 0;
  {
    GuidanceOptions gopts;
    gopts.inject_predicates = false;
    CandidateGuidance g(m, cp, {p}, gopts);
    ExecOptions opts;
    opts.wake_suspended = false;
    SymExecutor ex(m, spec, opts);
    ex.set_guidance(&g);
    ex.set_searcher(std::make_unique<GuidedSearcher>());
    const auto r = ex.run();
    EXPECT_EQ(r.termination, symexec::Termination::kFoundFault);
    paths_without = r.stats.paths_explored;
  }
  // With injection: bytes 0..5 pinned non-NUL at scan entry -> the short
  // lengths never fork.
  {
    CandidateGuidance g(m, cp, {p}, {});
    ExecOptions opts;
    opts.wake_suspended = false;
    SymExecutor ex(m, spec, opts);
    ex.set_guidance(&g);
    ex.set_searcher(std::make_unique<GuidedSearcher>());
    const auto r = ex.run();
    ASSERT_EQ(r.termination, symexec::Termination::kFoundFault);
    EXPECT_LT(r.stats.paths_explored, paths_without);
    // The generated input respects the predicate.
    EXPECT_GE(r.vuln->input.argv[1].size(), 6u);
  }
}

TEST(Guidance, ConflictingPredicateSuspends) {
  const ir::Module m = chain_module();
  stats::Predicate p;
  p.loc = enter(m, "a");
  p.var = "len(s FUNCPARAM)";
  p.kind = monitor::VarKind::kParam;
  p.is_len = true;
  p.pk = stats::PredKind::kGt;
  p.threshold = 100.0;  // impossible: the buffer is 8 bytes
  p.score = 1.0;
  p.score_lcb = 1.0;
  stats::CandidatePath cp = path_of({enter(m, "main"), enter(m, "a")});
  CandidateGuidance g(m, cp, {p}, {});
  ExecOptions opts;
  opts.wake_suspended = false;
  SymExecutor ex(m, spec_one_sym_arg(), opts);
  ex.set_guidance(&g);
  ex.set_searcher(std::make_unique<GuidedSearcher>());
  const auto r = ex.run();
  EXPECT_EQ(r.stats.faults_found, 0u);
  EXPECT_GE(g.conflict_suspensions(), 1u);
}

TEST(Guidance, UnreachedPredicatesAreNotInjected) {
  const ir::Module m = chain_module();
  stats::Predicate p;
  p.loc = enter(m, "a");
  p.var = "len(s FUNCPARAM)";
  p.kind = monitor::VarKind::kParam;
  p.is_len = true;
  p.pk = stats::PredKind::kUnreached;
  p.score = 1.0;
  p.score_lcb = 1.0;
  stats::CandidatePath cp = path_of(
      {enter(m, "main"), enter(m, "a"), enter(m, "b"), enter(m, "vuln")});
  CandidateGuidance g(m, cp, {p}, {});
  ExecOptions opts;
  opts.wake_suspended = false;
  SymExecutor ex(m, spec_one_sym_arg(), opts);
  ex.set_guidance(&g);
  ex.set_searcher(std::make_unique<GuidedSearcher>());
  EXPECT_EQ(ex.run().termination, symexec::Termination::kFoundFault);
  EXPECT_EQ(g.conflict_suspensions(), 0u);
}

TEST(GuidedSearcher, PrefersMoreMatchedThenFewerDiverted) {
  GuidedSearcher s;
  symexec::State deep_but_diverted;
  deep_but_diverted.guide.diverted = 5;
  deep_but_diverted.guide.matched = 10;
  symexec::State shallow;
  shallow.guide.diverted = 0;
  shallow.guide.matched = 2;
  symexec::State mid;
  mid.guide.diverted = 0;
  mid.guide.matched = 7;
  s.add(&deep_but_diverted);
  s.add(&shallow);
  s.add(&mid);
  // Progress along the candidate path dominates; τ handles over-divergence.
  EXPECT_EQ(s.select(), &deep_but_diverted);
  EXPECT_EQ(s.select(), &mid);
  EXPECT_EQ(s.select(), &shallow);
  EXPECT_TRUE(s.empty());
}

TEST(GuidedSearcher, DivertedBreaksTiesAmongEquallyMatched) {
  GuidedSearcher s;
  symexec::State on_path;
  on_path.guide.diverted = 0;
  on_path.guide.matched = 4;
  symexec::State drifting;
  drifting.guide.diverted = 6;
  drifting.guide.matched = 4;
  s.add(&drifting);
  s.add(&on_path);
  EXPECT_EQ(s.select(), &on_path);
  EXPECT_EQ(s.select(), &drifting);
}

TEST(GuidedSearcher, WokenStatesRankLast) {
  GuidedSearcher s;
  symexec::State woken;
  woken.guide.diverted = -1;  // free-run marker
  woken.guide.matched = 100;
  symexec::State guided;
  guided.guide.diverted = 9;
  guided.guide.matched = 0;
  s.add(&woken);
  s.add(&guided);
  EXPECT_EQ(s.select(), &guided);
  EXPECT_EQ(s.select(), &woken);
}

}  // namespace
}  // namespace statsym::core

namespace statsym::core {
namespace {

// Reports render the paper-style artifacts without crashing on edge cases.
TEST(Report, FormatsPredicatesAndCandidates) {
  const ir::Module m = chain_module();
  stats::Predicate p;
  p.loc = enter(m, "vuln");
  p.var = "len(s FUNCPARAM)";
  p.pk = stats::PredKind::kGt;
  p.threshold = 536.5;
  p.score = 1.0;
  p.score_lcb = 1.0;
  const std::string preds = format_predicates(m, {p}, 10);
  EXPECT_NE(preds.find("len(s FUNCPARAM) > 536.5"), std::string::npos);
  EXPECT_NE(preds.find("vuln():enter"), std::string::npos);

  stats::PathConstruction pc;
  pc.failure = enter(m, "vuln");
  pc.skeleton = {enter(m, "main"), enter(m, "vuln")};
  stats::CandidatePath cand;
  cand.nodes = pc.skeleton;
  cand.avg_score = 0.5;
  pc.candidates.push_back(cand);
  const std::string cands = format_candidates(m, pc);
  EXPECT_NE(cands.find("Failure point: vuln():enter"), std::string::npos);
  EXPECT_NE(cands.find("Skeleton (2 nodes)"), std::string::npos);

  const std::string locs = format_locations(m);
  EXPECT_NE(locs.find("main():enter"), std::string::npos);
}

TEST(Report, FormatsVulnWithLongInputTruncated) {
  const ir::Module m = chain_module();
  symexec::VulnPath v;
  v.kind = interp::FaultKind::kOobStore;
  v.function = "vuln";
  v.input.argv = {"prog", std::string(600, 'A')};
  const std::string out = format_vuln(m, v);
  EXPECT_NE(out.find("oob-store in vuln()"), std::string::npos);
  EXPECT_NE(out.find("len 600"), std::string::npos);
  EXPECT_LT(out.size(), 700u);  // long args are elided, not dumped
}

TEST(Report, FormatsVulnEnvInputs) {
  const ir::Module m = chain_module();
  symexec::VulnPath v;
  v.kind = interp::FaultKind::kOobStore;
  v.function = "vuln";
  v.input.argv = {"prog"};
  v.input.env["STONESOUP_STACK_BUFFER_64"] = std::string(80, 'B');
  const std::string out = format_vuln(m, v);
  EXPECT_NE(out.find("env STONESOUP_STACK_BUFFER_64 len 80"),
            std::string::npos);
}

TEST(Report, FormatsDetours) {
  const ir::Module m = chain_module();
  stats::PathConstruction pc;
  pc.failure = enter(m, "vuln");
  pc.skeleton = {enter(m, "main"), enter(m, "a"), enter(m, "vuln")};
  stats::Detour d;
  d.start_idx = 0;
  d.end_idx = 1;
  d.via = {enter(m, "b")};
  d.avg_score = 0.75;
  pc.detours.push_back(d);
  const std::string out = format_candidates(m, pc);
  EXPECT_NE(out.find("Detours: 1"), std::string::npos);
  EXPECT_NE(out.find("forward 0->1 score 0.75"), std::string::npos);
  EXPECT_NE(out.find("via b():enter"), std::string::npos);
}

TEST(Report, FormatsSolverStats) {
  solver::SolverStats s;
  s.queries = 10;
  s.sat = 6;
  s.unsat = 4;
  s.slices = 20;
  s.multi_slice_queries = 3;
  s.cache_hits = 8;
  s.model_reuse_hits = 2;
  s.shared_cache_hits = 4;
  s.solves = 6;
  s.solve_seconds = 0.5;
  const std::string out = format_solver_stats(s);
  EXPECT_NE(out.find("10 queries (6 sat, 4 unsat, 0 unknown)"),
            std::string::npos);
  EXPECT_NE(out.find("20 slices (3 queries split)"), std::string::npos);
  EXPECT_NE(out.find("8 cache, 2 model-reuse (50.0% of slices)"),
            std::string::npos);
  // Shared hits and solves print as their schedule-invariant sum.
  EXPECT_NE(out.find("10 decided"), std::string::npos);

  // Degenerate: no slices means a 0% fast-path rate, not a division crash.
  const std::string empty = format_solver_stats(solver::SolverStats{});
  EXPECT_NE(empty.find("(0.0% of slices)"), std::string::npos);
}

TEST(Report, FormatsMetricsTable) {
  obs::MetricsRegistry reg;
  reg.add("engine.states_forked", 42);
  reg.set_gauge("engine.exec_wall_s", 1.25, obs::GaugeMerge::kSum);
  reg.observe("solver.query_s", 0.5);
  reg.observe("solver.query_s", 1.5);
  const std::string out = format_metrics(reg);
  EXPECT_NE(out.find("engine.states_forked"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("1.25"), std::string::npos);
  EXPECT_NE(out.find("2 obs, min 0.500, mean 1.000, max 1.500"),
            std::string::npos);
}

}  // namespace
}  // namespace statsym::core
