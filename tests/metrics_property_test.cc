// Property tests over fuzz-generated programs (ISSUE 5 satellite): the
// trace's state-accounting events and the metrics registry must agree with
// the executor's and solver's own counters on every program, and the
// metrics counters must be identical across thread counts.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "fuzz/program_gen.h"
#include "statsym/engine.h"
#include "symexec/executor.h"

namespace statsym::core {
namespace {

std::map<obs::EventKind, std::uint64_t> count_events(
    const obs::TraceBuffer& b) {
  std::map<obs::EventKind, std::uint64_t> n;
  for (const auto& ev : b.snapshot()) ++n[ev.kind];
  return n;
}

// State-lifecycle and solver-counter identities on one pure symbolic run:
//   forks + 1            == terminated + live-at-end
//   suspends - wakes     == suspended-at-end
//   solver-query events  == SolverStats.queries
//   per-level slice events == the matching SolverStats counters
TEST(MetricsProperty, PureExecutionTraceMatchesStats) {
  fuzz::GenOptions gopts;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    SCOPED_TRACE("fuzz seed " + std::to_string(seed));
    const fuzz::GeneratedProgram prog = fuzz::generate_program(seed, gopts);

    symexec::ExecOptions opts;
    opts.max_instructions = 50'000;
    opts.max_seconds = 30.0;
    opts.max_memory_bytes = 128ull << 20;

    obs::Tracer tracer;
    const symexec::ExecResult r = run_pure_symbolic(
        prog.app.module, prog.app.sym_spec, opts, &tracer.buffer());
    ASSERT_EQ(tracer.buffer().dropped(), 0u);
    auto n = count_events(tracer.buffer());

    EXPECT_EQ(n[obs::EventKind::kExecBegin], 1u);
    ASSERT_EQ(n[obs::EventKind::kExecEnd], 1u);
    EXPECT_EQ(n[obs::EventKind::kStateFork], r.stats.forks);
    EXPECT_EQ(n[obs::EventKind::kStateTerminate], r.stats.paths_completed);
    EXPECT_EQ(n[obs::EventKind::kStateSuspend], r.stats.suspensions);
    EXPECT_EQ(n[obs::EventKind::kStateWake], r.stats.wakes);

    // The kExecEnd payload closes the books: every state created (initial +
    // forks) either terminated or is still live, and the suspended set is
    // exactly the unwoken suspensions.
    const auto evs = tracer.buffer().snapshot();
    const auto& end = evs.back();
    ASSERT_EQ(end.kind, obs::EventKind::kExecEnd);
    EXPECT_EQ(r.stats.forks + 1,
              r.stats.paths_completed + static_cast<std::uint64_t>(end.b));
    EXPECT_EQ(r.stats.suspensions - r.stats.wakes,
              static_cast<std::uint64_t>(end.c));
    EXPECT_EQ(r.stats.paths_explored,
              r.stats.paths_completed + static_cast<std::uint64_t>(end.b));

    EXPECT_EQ(n[obs::EventKind::kSolverQuery], r.solver_stats.queries);
    // An unsat slice short-circuits its query, so slice events can trail the
    // up-front slice count, never exceed it.
    EXPECT_LE(n[obs::EventKind::kSolverSlice], r.solver_stats.slices);
    std::uint64_t level0 = 0;
    std::uint64_t level1 = 0;
    std::uint64_t level2 = 0;
    for (const auto& ev : evs) {
      if (ev.kind != obs::EventKind::kSolverSlice) continue;
      if (ev.a == 0) ++level0;
      if (ev.a == 1) ++level1;
      if (ev.a == 2) ++level2;
    }
    EXPECT_EQ(level0, r.solver_stats.cache_hits);
    EXPECT_EQ(level1, r.solver_stats.model_reuse_hits);
    EXPECT_EQ(level2,
              r.solver_stats.shared_cache_hits + r.solver_stats.solves);
  }
}

EngineOptions engine_opts(std::size_t threads) {
  EngineOptions o;
  o.monitor.sampling_rate = 0.3;
  o.target_correct_logs = 40;
  o.target_faulty_logs = 40;
  o.candidate_timeout_seconds = 60.0;
  o.exec.max_memory_bytes = 256ull << 20;
  o.num_threads = threads;
  o.candidate_portfolio_width = 4;
  o.seed = 424242;
  return o;
}

// The engine's metrics registry must agree with the EngineResult fields and
// with the trace's own event counts, program by program.
TEST(MetricsProperty, EngineMetricsMatchResultAndTrace) {
  fuzz::GenOptions gopts;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("fuzz seed " + std::to_string(seed));
    const fuzz::GeneratedProgram prog = fuzz::generate_program(seed, gopts);

    obs::Tracer tracer;
    StatSymEngine engine(prog.app.module, prog.app.sym_spec, engine_opts(2));
    engine.set_tracer(&tracer);
    engine.collect_logs(prog.app.workload);
    const EngineResult res = engine.run();
    auto n = count_events(tracer.buffer());

    const obs::MetricsRegistry& m = res.metrics;
    EXPECT_EQ(m.counter("log.correct"), res.num_correct_logs);
    EXPECT_EQ(m.counter("log.faulty"), res.num_faulty_logs);
    EXPECT_EQ(n[obs::EventKind::kLogAdmitted],
              res.num_correct_logs + res.num_faulty_logs);
    EXPECT_EQ(m.counter("stat.predicates"), res.predicates.size());
    EXPECT_EQ(n[obs::EventKind::kPredicateFit], res.predicates.size());
    EXPECT_EQ(m.counter("stat.candidates"),
              res.construction.candidates.size());
    EXPECT_EQ(n[obs::EventKind::kCandidateRanked],
              res.construction.candidates.size());
    EXPECT_EQ(m.counter("symexec.candidates_tried"), res.candidates_tried);
    EXPECT_EQ(n[obs::EventKind::kExecBegin], res.candidates_tried);
    EXPECT_EQ(n[obs::EventKind::kExecEnd], res.candidates_tried);
    EXPECT_EQ(m.counter("symexec.paths_explored"), res.paths_explored);
    EXPECT_EQ(m.counter("symexec.instructions"), res.instructions);
    EXPECT_EQ(m.counter("symexec.found"), res.found ? 1u : 0u);

    const solver::SolverStats& ss = res.solver_stats;
    EXPECT_EQ(m.counter("solver.queries"), ss.queries);
    EXPECT_EQ(n[obs::EventKind::kSolverQuery], ss.queries);
    EXPECT_EQ(m.counter("solver.slices"), ss.slices);
    EXPECT_EQ(m.counter("solver.local_cache_hits"), ss.cache_hits);
    EXPECT_EQ(m.counter("solver.model_reuse_hits"), ss.model_reuse_hits);
    EXPECT_EQ(m.counter("solver.canonical"),
              ss.shared_cache_hits + ss.solves);

    // Phase wall times exist and sum consistently.
    EXPECT_TRUE(m.has_gauge("phase.total.seconds"));
    EXPECT_NEAR(m.gauge("phase.total.seconds"),
                m.gauge("phase.log.seconds") + m.gauge("phase.stat.seconds") +
                    m.gauge("phase.symexec.seconds"),
                1e-9);
    // Histograms cover exactly the ranked sets.
    const obs::Histogram* hs = m.histogram("stat.predicate_score");
    if (!res.predicates.empty()) {
      ASSERT_NE(hs, nullptr);
      EXPECT_EQ(hs->count, res.predicates.size());
    }
  }
}

// Counters and histograms — everything except the `*.seconds` gauges — must
// be identical at any thread count.
TEST(MetricsProperty, MetricsScheduleInvariant) {
  fuzz::GenOptions gopts;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("fuzz seed " + std::to_string(seed));
    const fuzz::GeneratedProgram prog = fuzz::generate_program(seed, gopts);
    EngineResult results[2];
    const std::size_t jobs[2] = {1, 8};
    for (int i = 0; i < 2; ++i) {
      StatSymEngine engine(prog.app.module, prog.app.sym_spec,
                           engine_opts(jobs[i]));
      engine.collect_logs(prog.app.workload);
      results[i] = engine.run();
    }
    EXPECT_EQ(results[0].metrics.counters(), results[1].metrics.counters());
    ASSERT_EQ(results[0].metrics.histograms().size(),
              results[1].metrics.histograms().size());
    for (const auto& [name, h] : results[0].metrics.histograms()) {
      const obs::Histogram* other = results[1].metrics.histogram(name);
      ASSERT_NE(other, nullptr) << name;
      EXPECT_EQ(h.count, other->count) << name;
      EXPECT_DOUBLE_EQ(h.sum, other->sum) << name;
    }
  }
}

}  // namespace
}  // namespace statsym::core
