// Tests for the StatSym engine pipeline on the fast fig2 target: log
// collection, statistical outputs, candidate iteration, robustness to
// degenerate/corrupted inputs, and determinism.
#include <gtest/gtest.h>

#include <set>

#include "apps/registry.h"
#include "monitor/serialize.h"
#include "statsym/engine.h"

namespace statsym::core {
namespace {

EngineOptions fast_opts() {
  EngineOptions o;
  o.monitor.sampling_rate = 0.5;
  o.target_correct_logs = 60;
  o.target_faulty_logs = 60;
  o.candidate_timeout_seconds = 30.0;
  o.exec.max_memory_bytes = 128ull << 20;
  o.seed = 11;
  return o;
}

TEST(Engine, CollectLogsHitsTargets) {
  const apps::AppSpec app = apps::make_fig2();
  StatSymEngine engine(app.module, app.sym_spec, fast_opts());
  engine.collect_logs(app.workload);
  std::size_t faulty = 0;
  for (const auto& l : engine.logs()) faulty += l.faulty ? 1 : 0;
  EXPECT_EQ(engine.logs().size(), 120u);
  EXPECT_EQ(faulty, 60u);
}

TEST(Engine, EndToEndFindsFig2Assertion) {
  const apps::AppSpec app = apps::make_fig2();
  StatSymEngine engine(app.module, app.sym_spec, fast_opts());
  engine.collect_logs(app.workload);
  const EngineResult res = engine.run();
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.vuln->function, "vul_func");
  EXPECT_GE(res.winning_candidate, 1u);
  EXPECT_FALSE(res.predicates.empty());
  EXPECT_FALSE(res.construction.candidates.empty());
  // The generated input reproduces (m must land in the faulting window).
  const std::int64_t m = res.vuln->input.sym_ints.at("sym_m");
  EXPECT_GE(m, 4);
  EXPECT_LT(m, 1000);
}

TEST(Engine, TopPredicateMatchesPaperExample) {
  // Fig. 2's discussion: the statistics infer a lower bound on x at the
  // f1() boundary (our workload crashes iff 4 <= m < 1000, so the learned
  // threshold sits just below 4).
  const apps::AppSpec app = apps::make_fig2();
  StatSymEngine engine(app.module, app.sym_spec, fast_opts());
  engine.collect_logs(app.workload);
  const EngineResult res = engine.run();
  ASSERT_FALSE(res.predicates.empty());
  const auto& top = res.predicates.front();
  EXPECT_EQ(top.pk, stats::PredKind::kGt);
  // The learned lower bound sits between the largest observed correct value
  // and the smallest observed faulty one; sampling noise moves the exact
  // cut, but it must stay between the safe region (<= 3) and the deep end.
  EXPECT_GE(top.threshold, 2.0);
  EXPECT_LE(top.threshold, 16.0);
  EXPECT_DOUBLE_EQ(top.score, 1.0);
}

TEST(Engine, NoFaultyLogsIsGracefullyEmpty) {
  const apps::AppSpec app = apps::make_fig2();
  StatSymEngine engine(app.module, app.sym_spec, fast_opts());
  // Only correct runs: m pinned to a safe value.
  engine.collect_logs([](Rng&) {
    interp::RuntimeInput in;
    in.sym_ints["sym_m"] = 1;
    return in;
  });
  const EngineResult res = engine.run();
  EXPECT_FALSE(res.found);
  EXPECT_EQ(res.num_faulty_logs, 0u);
  EXPECT_EQ(res.candidates_tried, 0u);
}

TEST(Engine, EmptyLogsHandled) {
  const apps::AppSpec app = apps::make_fig2();
  StatSymEngine engine(app.module, app.sym_spec, fast_opts());
  engine.use_logs({});
  const EngineResult res = engine.run();
  EXPECT_FALSE(res.found);
}

TEST(Engine, LogsRoundTripThroughSerialisation) {
  // The engine consumes logs that went through the file format unchanged —
  // the decoupling the paper's log-file pipeline implies.
  const apps::AppSpec app = apps::make_fig2();
  StatSymEngine collector(app.module, app.sym_spec, fast_opts());
  collector.collect_logs(app.workload);
  const std::string text = monitor::serialize(collector.logs());
  std::vector<monitor::RunLog> back;
  ASSERT_TRUE(monitor::deserialize(text, back));

  StatSymEngine engine(app.module, app.sym_spec, fast_opts());
  engine.use_logs(std::move(back));
  EXPECT_TRUE(engine.run().found);
}

TEST(Engine, DeterministicForSameSeed) {
  const apps::AppSpec app = apps::make_fig2();
  auto run_once = [&] {
    StatSymEngine engine(app.module, app.sym_spec, fast_opts());
    engine.collect_logs(app.workload);
    return engine.run();
  };
  const EngineResult a = run_once();
  const EngineResult b = run_once();
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.paths_explored, b.paths_explored);
  EXPECT_EQ(a.predicates.size(), b.predicates.size());
  EXPECT_EQ(a.construction.skeleton, b.construction.skeleton);
}

TEST(Engine, SamplingRateAffectsLogVolume) {
  const apps::AppSpec app = apps::make_fig2();
  auto bytes_at = [&](double rate) {
    EngineOptions o = fast_opts();
    o.monitor.sampling_rate = rate;
    StatSymEngine engine(app.module, app.sym_spec, o);
    engine.collect_logs(app.workload);
    return monitor::serialize(engine.logs()).size();
  };
  EXPECT_LT(bytes_at(0.2), bytes_at(1.0));
}

TEST(Engine, LowSamplingStillFinds) {
  // The paper's headline sensitivity claim: effective even at 20% sampling.
  // Success at that rate is probabilistic in the sampled logs (Fig. 10), so
  // assert the success *rate* over several seeds rather than one seed's luck.
  const apps::AppSpec app = apps::make_fig2();
  int found = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EngineOptions o = fast_opts();
    o.monitor.sampling_rate = 0.2;
    o.seed = seed;
    StatSymEngine engine(app.module, app.sym_spec, o);
    engine.collect_logs(app.workload);
    found += engine.run().found ? 1 : 0;
  }
  EXPECT_GE(found, 6);
}

TEST(Engine, PureBaselineAlsoFindsFig2) {
  const apps::AppSpec app = apps::make_fig2();
  symexec::ExecOptions opts;
  const auto r = run_pure_symbolic(app.module, app.sym_spec, opts);
  EXPECT_EQ(r.termination, symexec::Termination::kFoundFault);
}

// §III-C: multiple vulnerabilities, identified one-by-one from clustered
// logs (run_all on the two-bug polymorph variant).
TEST(EngineMultiVuln, FindsBothBugsOneByOne) {
  const apps::AppSpec app = apps::make_polymorph_multibug();
  EngineOptions o = fast_opts();
  o.monitor.sampling_rate = 0.3;
  o.target_correct_logs = 80;
  o.target_faulty_logs = 80;
  StatSymEngine engine(app.module, app.sym_spec, o);
  engine.collect_logs(app.workload);

  const std::vector<EngineResult> all = engine.run_all();
  ASSERT_EQ(all.size(), 2u);
  std::set<std::string> functions;
  for (const auto& res : all) {
    ASSERT_TRUE(res.vuln.has_value());
    functions.insert(res.vuln->function);
    // Every finding replays concretely to the reported fault point.
    interp::Interpreter replay(app.module, res.vuln->input);
    const auto rr = replay.run();
    ASSERT_EQ(rr.outcome, interp::RunOutcome::kFault);
    EXPECT_EQ(rr.fault.function, res.vuln->function);
  }
  EXPECT_TRUE(functions.contains("set_outdir"));
  EXPECT_TRUE(functions.contains("convert_fileName"));
}

TEST(EngineMultiVuln, TargetFunctionSkipsOtherFaults) {
  // Hunt the deeper bug directly: the executor must pass through the
  // parse-time set_outdir overflow (ending those paths quietly) and still
  // reach convert_fileName.
  const apps::AppSpec app = apps::make_polymorph_multibug();
  EngineOptions o = fast_opts();
  o.exec.target_function = "convert_fileName";
  StatSymEngine engine(app.module, app.sym_spec, o);
  engine.collect_logs(app.workload);
  // Keep only the convert_fileName fault cluster plus correct runs, as
  // run_all would.
  std::vector<monitor::RunLog> subset;
  for (const auto& log : engine.logs()) {
    if (!log.faulty || log.fault_function == "convert_fileName") {
      subset.push_back(log);
    }
  }
  StatSymEngine hunter(app.module, app.sym_spec, o);
  hunter.use_logs(std::move(subset));
  const EngineResult res = hunter.run();
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.vuln->function, "convert_fileName");
}

TEST(EngineMultiVuln, RunAllOnSingleBugAppFindsExactlyOne) {
  const apps::AppSpec app = apps::make_fig2();
  StatSymEngine engine(app.module, app.sym_spec, fast_opts());
  engine.collect_logs(app.workload);
  const auto all = engine.run_all();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].vuln->function, "vul_func");
}

}  // namespace
}  // namespace statsym::core
