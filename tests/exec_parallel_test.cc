// Work-stealing intra-run parallelism: determinism and copy-on-write gates.
//
// The executor's contract (executor.h): with `batch` fixed, every
// observable output — termination, stats, findings, the stitched event
// trace — is byte-identical at any `jobs`. These tests pin that contract on
// real apps at jobs {1,2,4,8}, and check the copy-on-write fork layer
// actually copies less than an eager deep clone would.
//
// What is *deliberately not* compared: wall-clock seconds, SchedStats
// (steal counts are schedule-dependent by design), and the raw
// solves-vs-shared-cache-hits split (which worker solved first is the one
// schedule-dependent part of the solver cascade; their sum and every result
// are invariant).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/registry.h"
#include "obs/trace.h"
#include "statsym/engine.h"
#include "symexec/executor.h"

namespace statsym::core {
namespace {

struct RunOutput {
  symexec::ExecResult result;
  std::string trace_jsonl;
};

RunOutput run_app(const apps::AppSpec& app, std::size_t jobs,
                  std::uint32_t batch, symexec::SearcherKind searcher,
                  std::uint64_t max_instructions) {
  symexec::ExecOptions opts;
  opts.searcher = searcher;
  // Wall-clock is the one schedule-dependent budget; keep it from binding
  // even under TSan's ~15x slowdown so the instruction cap (schedule-
  // invariant: committed counts, not worker progress) is the real bound.
  opts.max_seconds = 900.0;
  opts.max_instructions = max_instructions;
  opts.max_memory_bytes = 256ull << 20;
  opts.jobs = jobs;
  opts.batch = batch;
  obs::Tracer tracer;
  RunOutput out;
  out.result = run_pure_symbolic(app.module, app.sym_spec, opts,
                                 &tracer.buffer());
  EXPECT_EQ(tracer.buffer().dropped(), 0u);
  out.trace_jsonl = tracer.to_jsonl();
  return out;
}

// Every schedule-invariant surface of two runs must agree exactly.
void expect_identical(const RunOutput& a, const RunOutput& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.result.termination, b.result.termination);
  const symexec::ExecStats& sa = a.result.stats;
  const symexec::ExecStats& sb = b.result.stats;
  EXPECT_EQ(sa.instructions, sb.instructions);
  EXPECT_EQ(sa.forks, sb.forks);
  EXPECT_EQ(sa.paths_completed, sb.paths_completed);
  EXPECT_EQ(sa.paths_ok, sb.paths_ok);
  EXPECT_EQ(sa.paths_infeasible, sb.paths_infeasible);
  EXPECT_EQ(sa.faults_found, sb.faults_found);
  EXPECT_EQ(sa.suspensions, sb.suspensions);
  EXPECT_EQ(sa.wakes, sb.wakes);
  EXPECT_EQ(sa.paths_explored, sb.paths_explored);
  EXPECT_EQ(sa.peak_live_states, sb.peak_live_states);
  EXPECT_EQ(sa.clone_bytes, sb.clone_bytes);
  EXPECT_EQ(sa.eager_clone_bytes, sb.eager_clone_bytes);

  const solver::SolverStats& qa = a.result.solver_stats;
  const solver::SolverStats& qb = b.result.solver_stats;
  EXPECT_EQ(qa.queries, qb.queries);
  EXPECT_EQ(qa.sat, qb.sat);
  EXPECT_EQ(qa.unsat, qb.unsat);
  EXPECT_EQ(qa.unknown, qb.unknown);
  EXPECT_EQ(qa.slices, qb.slices);
  EXPECT_EQ(qa.static_prunes, qb.static_prunes);
  // Which worker reaches a canonical slice first decides hit-vs-solve; the
  // combined count (and the answers) are invariant.
  EXPECT_EQ(qa.solves + qa.shared_cache_hits, qb.solves + qb.shared_cache_hits);

  ASSERT_EQ(a.result.vuln.has_value(), b.result.vuln.has_value());
  if (a.result.vuln.has_value()) {
    const symexec::VulnPath& va = *a.result.vuln;
    const symexec::VulnPath& vb = *b.result.vuln;
    EXPECT_EQ(va.kind, vb.kind);
    EXPECT_EQ(va.function, vb.function);
    EXPECT_EQ(va.detail, vb.detail);
    EXPECT_EQ(va.trace, vb.trace);
    EXPECT_EQ(va.model_valid, vb.model_valid);
    EXPECT_EQ(va.input.argv, vb.input.argv);
    EXPECT_EQ(va.input.env, vb.input.env);
    EXPECT_EQ(va.input.sym_ints, vb.input.sym_ints);
    EXPECT_EQ(va.input.sym_bufs, vb.input.sym_bufs);
  }

  EXPECT_EQ(a.trace_jsonl, b.trace_jsonl) << what << ": trace drifted";
}

TEST(ExecParallel, Fig2IdenticalAtAnyJobs) {
  const apps::AppSpec app = apps::make_fig2();
  const RunOutput base = run_app(app, 1, 4, symexec::SearcherKind::kDFS,
                                 400'000'000);
  EXPECT_EQ(base.result.termination, symexec::Termination::kFoundFault);
  for (std::size_t jobs : {2u, 4u, 8u}) {
    const RunOutput r = run_app(app, jobs, 4, symexec::SearcherKind::kDFS,
                                400'000'000);
    expect_identical(base, r, "fig2 dfs jobs=" + std::to_string(jobs));
  }
}

TEST(ExecParallel, PolymorphIdenticalAtAnyJobs) {
  // Bounded slice of a real overflow hunt; the instruction cap keeps the
  // run finite in either outcome, and the cap itself is schedule-invariant
  // (committed instruction counts, not worker progress).
  const apps::AppSpec app = apps::make_polymorph();
  const RunOutput base =
      run_app(app, 1, 8, symexec::SearcherKind::kDFS, 1'500'000);
  for (std::size_t jobs : {4u, 8u}) {
    const RunOutput r =
        run_app(app, jobs, 8, symexec::SearcherKind::kDFS, 1'500'000);
    expect_identical(base, r, "polymorph dfs jobs=" + std::to_string(jobs));
  }
}

TEST(ExecParallel, RandomPathPolicyIsAlsoJobsInvariant) {
  // The draw is sequential even at jobs>1, so stateful/randomized policies
  // see the identical select() sequence and stay schedule-invariant too.
  const apps::AppSpec app = apps::make_fig2();
  const RunOutput one = run_app(app, 1, 4, symexec::SearcherKind::kRandomPath,
                                400'000'000);
  const RunOutput eight = run_app(app, 8, 4,
                                  symexec::SearcherKind::kRandomPath,
                                  400'000'000);
  expect_identical(one, eight, "fig2 random-path jobs 1 vs 8");
}

TEST(ExecParallel, JobsZeroMeansHardwareAndStaysIdentical) {
  const apps::AppSpec app = apps::make_fig2();
  const RunOutput one = run_app(app, 1, 4, symexec::SearcherKind::kDFS,
                                400'000'000);
  const RunOutput hw = run_app(app, 0, 4, symexec::SearcherKind::kDFS,
                               400'000'000);
  expect_identical(one, hw, "fig2 jobs 0 (hardware)");
}

TEST(ExecParallel, CowForkCopiesStrictlyLessThanEagerClone) {
  // The point of the copy-on-write state layer: per-fork copied bytes must
  // be strictly below what eagerly deep-copying the parent would cost.
  for (const char* name : {"fig2", "polymorph"}) {
    const apps::AppSpec app = apps::make_app(name);
    const RunOutput r =
        run_app(app, 1, 1, symexec::SearcherKind::kDFS, 1'500'000);
    SCOPED_TRACE(name);
    ASSERT_GT(r.result.stats.forks, 0u);
    EXPECT_GT(r.result.stats.clone_bytes, 0u);
    EXPECT_LT(r.result.stats.clone_bytes, r.result.stats.eager_clone_bytes);
  }
}

TEST(ExecParallel, BatchOneMatchesClassicSequentialExploration) {
  // batch=1 must behave exactly like the pre-parallel sequential loop no
  // matter what jobs says (workers are capped by the batch width).
  const apps::AppSpec app = apps::make_fig2();
  const RunOutput narrow1 = run_app(app, 1, 1, symexec::SearcherKind::kDFS,
                                    400'000'000);
  const RunOutput narrow8 = run_app(app, 8, 1, symexec::SearcherKind::kDFS,
                                    400'000'000);
  expect_identical(narrow1, narrow8, "fig2 batch=1 jobs 1 vs 8");
}

TEST(ExecParallel, GuidedEngineIdenticalAcrossExecJobs) {
  // Full pipeline (workload -> statistics -> guided portfolio) with the
  // intra-candidate executor running wide: the engine verdict, witness and
  // accounting must not move with --exec-jobs.
  const apps::AppSpec app = apps::make_fig2();
  auto run_engine = [&](std::size_t exec_jobs) {
    EngineOptions o;
    o.monitor.sampling_rate = 0.5;
    o.target_correct_logs = 40;
    o.target_faulty_logs = 40;
    o.candidate_timeout_seconds = 60.0;
    o.exec.max_memory_bytes = 256ull << 20;
    o.exec.jobs = exec_jobs;
    o.exec.batch = 4;
    o.seed = 424242;
    StatSymEngine engine(app.module, app.sym_spec, o);
    engine.collect_logs(app.workload);
    return engine.run();
  };
  const EngineResult one = run_engine(1);
  const EngineResult eight = run_engine(8);
  EXPECT_EQ(one.found, eight.found);
  EXPECT_TRUE(one.found);
  EXPECT_EQ(one.winning_candidate, eight.winning_candidate);
  EXPECT_EQ(one.candidates_tried, eight.candidates_tried);
  EXPECT_EQ(one.paths_explored, eight.paths_explored);
  EXPECT_EQ(one.instructions, eight.instructions);
  EXPECT_EQ(one.solver_stats.queries, eight.solver_stats.queries);
  EXPECT_EQ(one.solver_stats.solves + one.solver_stats.shared_cache_hits,
            eight.solver_stats.solves + eight.solver_stats.shared_cache_hits);
  ASSERT_TRUE(one.vuln.has_value());
  ASSERT_TRUE(eight.vuln.has_value());
  EXPECT_EQ(one.vuln->function, eight.vuln->function);
  EXPECT_EQ(one.vuln->kind, eight.vuln->kind);
  EXPECT_EQ(one.vuln->input.argv, eight.vuln->input.argv);
  EXPECT_EQ(one.vuln->input.env, eight.vuln->input.env);
}

}  // namespace
}  // namespace statsym::core
